GO ?= go
FUZZTIME ?= 10s
CHAOSTIME ?= 20s
# External analyzers are pinned and run via `go run pkg@version` so no
# binary needs to be installed or vendored. They require module downloads;
# the targets below probe for availability and skip with a notice when the
# module cache is cold and there is no network (the in-repo 3dpro-lint
# suite always runs — it is stdlib-only).
STATICCHECK_PKG ?= honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK_PKG ?= golang.org/x/vuln/cmd/govulncheck@v1.1.4
# Benchmark reproducibility knobs: the Table 1 suite seeds its datasets
# (bench.QuickConfig, seed 42), and the counts are pinned so reruns are
# comparable. BENCHOUT is the committed artifact.
BENCHCOUNT ?= 3
BENCHOUT ?= BENCH_10.json
# Extra label=file pairs merged into BENCHOUT (e.g. a saved baseline run).
BENCHMERGE ?=
# bench-smoke tolerance: one unwarmed iteration is noisy, so the gate only
# catches order-of-magnitude regressions, not percent-level drift.
SMOKE_THRESHOLD ?= 200

.PHONY: build test vet lint lint-fixtures staticcheck govulncheck race fuzz-short fuzz chaos-short chaos-net ci bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Project-specific analyzers (hotalloc, ctxflow, atomiccounter, floateq,
# goleak, lockbalance, chandiscipline, wgbalance, statsexhaustive).
# Fails on any unsuppressed finding; see README "Static analysis".
lint:
	$(GO) run ./cmd/3dpro-lint ./...

# The analyzers' own test suites: every `// want` fixture, the CFG layer's
# unit tests, and the suppression-parser tables. -short skips the
# whole-repo smoke run, which `make lint` already covers.
lint-fixtures:
	$(GO) test -short ./internal/analysis/...

# Pinned staticcheck; skips (with a visible notice) when the module is not
# fetchable, e.g. offline with a cold module cache. CI has network and
# therefore actually enforces it.
staticcheck:
	@if $(GO) run $(STATICCHECK_PKG) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK_PKG) ./...; \
	else \
		echo "staticcheck: $(STATICCHECK_PKG) unavailable (offline, cold module cache?); skipping"; \
	fi

# Pinned govulncheck, same availability gating as staticcheck.
govulncheck:
	@if $(GO) run $(GOVULNCHECK_PKG) -version >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK_PKG) ./...; \
	else \
		echo "govulncheck: $(GOVULNCHECK_PKG) unavailable (offline, cold module cache?); skipping"; \
	fi

race:
	$(GO) test -race ./...

# Run just the seed corpus of every fuzz target (fast, deterministic; what CI runs).
fuzz-short:
	$(GO) test -run='^Fuzz' ./internal/ppvp ./internal/storage ./internal/analysis ./internal/faultinject

# Actual coverage-guided fuzzing, $(FUZZTIME) per target.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/ppvp
	$(GO) test -fuzz=FuzzDecodeTile -fuzztime=$(FUZZTIME) ./internal/storage
	$(GO) test -fuzz=FuzzCollectSuppressions -fuzztime=$(FUZZTIME) ./internal/analysis

# Seeded chaos campaign under the race detector: $(CHAOSTIME) of fresh-seed
# iterations of TestChaosCampaignExtended (corrupt tiles + probabilistic
# decode errors + decode panics; see internal/core/chaos_test.go), then the
# multi-shard campaign (shards killed/corrupted at the transport mid-query;
# see internal/shard/chaos_test.go).
chaos-short:
	_3DPRO_CHAOS=$(CHAOSTIME) $(GO) test -race -run 'TestChaosCampaign' -count=1 ./internal/core
	$(GO) test -race -run 'TestDeadShardsDegrade|TestRetryRecoversTransientFault|TestHedgedRequestBeatsStraggler|TestBreakerOpensAndRecovers|TestRecvCorruptionIsTransportError|TestAllShardsDead' -count=1 ./internal/shard

# The multi-process robustness ladder over real HTTP loopback workers, under
# the race detector: seeded retry/hedge/failover/breaker/rejoin campaign,
# replicated-placement failover, both-replicas-dead degradation, wire
# corruption, and graceful worker drain (see internal/shard/http_test.go
# and failover_test.go).
chaos-net:
	$(GO) test -race -run 'TestHTTPChaosCampaign|TestShardedEquivalenceHTTP|TestHTTPAnySingleWorkerDeathIsExact|TestHTTPBothReplicasDeadDegrades|TestHTTPRecvCorruptionIsTransportError|TestWorkerDrainPreservesInFlight|TestWorkerEchoesRequestID|TestReplicaFailoverExact|TestBothReplicasDeadDegrades|TestProberRejoinsShard' -count=1 ./internal/shard

ci: vet lint staticcheck govulncheck race fuzz-short chaos-short chaos-net bench-smoke

# One short iteration of the same benchmarks, diffed against the committed
# baseline via `benchjson -compare` with a generous threshold. This is a
# tripwire for order-of-magnitude perf regressions and bench bit-rot, not a
# substitute for `make bench`. The Table 1 FPR cells run under SchedMargin
# (the suite default), so the margin scheduler's full path — plan, jump,
# online calibration — is exercised on every smoke run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1_Cell' -count=1 -benchtime=1x . | tee /tmp/bench_smoke_table1.txt
	$(GO) test -run '^$$' -bench 'BenchmarkDecode|BenchmarkCacheHit' -count=1 -benchtime=100x ./internal/cache | tee /tmp/bench_smoke_decode.txt
	$(GO) run ./cmd/benchjson -o /tmp/bench_smoke.json table1=/tmp/bench_smoke_table1.txt decode=/tmp/bench_smoke_decode.txt
	$(GO) run ./cmd/benchjson -compare -threshold $(SMOKE_THRESHOLD) BENCH_10.json /tmp/bench_smoke.json

# Run the FPR query benchmarks (Table 1 cells) and the decode/cache
# micro-benchmarks, then fold the text output into $(BENCHOUT) as JSON.
# Results land under the "table1" and "decode" labels; pass
# BENCHMERGE="baseline=old.txt" to merge a saved run for comparison.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1_Cell' -benchmem -count=$(BENCHCOUNT) -benchtime=2x . | tee /tmp/bench_table1.txt
	$(GO) test -run '^$$' -bench 'BenchmarkDecode|BenchmarkCacheHit' -benchmem -count=$(BENCHCOUNT) ./internal/cache | tee /tmp/bench_decode.txt
	$(GO) run ./cmd/benchjson -o $(BENCHOUT) table1=/tmp/bench_table1.txt decode=/tmp/bench_decode.txt $(BENCHMERGE)
