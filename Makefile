GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet race fuzz-short fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run just the seed corpus of every fuzz target (fast, deterministic; what CI runs).
fuzz-short:
	$(GO) test -run='^Fuzz' ./internal/ppvp ./internal/storage

# Actual coverage-guided fuzzing, $(FUZZTIME) per target.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/ppvp
	$(GO) test -fuzz=FuzzDecodeTile -fuzztime=$(FUZZTIME) ./internal/storage

ci: vet race fuzz-short
