GO ?= go
FUZZTIME ?= 10s
# Benchmark reproducibility knobs: the Table 1 suite seeds its datasets
# (bench.QuickConfig, seed 42), and the counts are pinned so reruns are
# comparable. BENCHOUT is the committed artifact.
BENCHCOUNT ?= 3
BENCHOUT ?= BENCH_2.json
# Extra label=file pairs merged into BENCHOUT (e.g. a saved baseline run).
BENCHMERGE ?=

.PHONY: build test vet race fuzz-short fuzz ci bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run just the seed corpus of every fuzz target (fast, deterministic; what CI runs).
fuzz-short:
	$(GO) test -run='^Fuzz' ./internal/ppvp ./internal/storage

# Actual coverage-guided fuzzing, $(FUZZTIME) per target.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/ppvp
	$(GO) test -fuzz=FuzzDecodeTile -fuzztime=$(FUZZTIME) ./internal/storage

ci: vet race fuzz-short

# Run the FPR query benchmarks (Table 1 cells) and the decode/cache
# micro-benchmarks, then fold the text output into $(BENCHOUT) as JSON.
# Results land under the "table1" and "decode" labels; pass
# BENCHMERGE="baseline=old.txt" to merge a saved run for comparison.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1_Cell' -benchmem -count=$(BENCHCOUNT) -benchtime=2x . | tee /tmp/bench_table1.txt
	$(GO) test -run '^$$' -bench 'BenchmarkDecode|BenchmarkCacheHit' -benchmem -count=$(BENCHCOUNT) ./internal/cache | tee /tmp/bench_decode.txt
	$(GO) run ./cmd/benchjson -o $(BENCHOUT) table1=/tmp/bench_table1.txt decode=/tmp/bench_decode.txt $(BENCHMERGE)
