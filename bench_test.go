package repro

import (
	"io"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// The benchmarks share one suite (building it is ingest, not query work).
var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = bench.NewSuite(bench.QuickConfig())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkTable1 regenerates the paper's Table 1 grid: all five join tests
// under FR and FPR with every accelerator.
func BenchmarkTable1(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(io.Discard, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_Cell benchmarks single Table 1 cells, one sub-benchmark
// per test × paradigm on the brute-force column. Each cell also reports the
// decode cache's warm-start counters so runs prove (or disprove) that FPR's
// LOD-ladder misses reuse retained decoder state: rounds_skipped/op > 0
// means refinement decodes resumed instead of replaying from LOD 0.
func BenchmarkTable1_Cell(b *testing.B) {
	s := sharedSuite(b)
	for _, test := range bench.AllTests {
		for _, paradigm := range []core.Paradigm{core.FR, core.FPR} {
			b.Run(test.String()+"/"+paradigm.String(), func(b *testing.B) {
				var warm, applied, skipped, margin, bounds int64
				for i := 0; i < b.N; i++ {
					cell, err := s.RunCell(test, paradigm, core.BruteForce)
					if err != nil {
						b.Fatal(err)
					}
					warm += cell.Stats.WarmStarts
					applied += cell.Stats.RoundsApplied
					skipped += cell.Stats.RoundsSkipped
					margin += cell.Stats.LODsSkippedByMargin
					bounds += cell.Stats.BoundsDecisive
				}
				n := float64(b.N)
				b.ReportMetric(float64(warm)/n, "warm_starts/op")
				b.ReportMetric(float64(applied)/n, "rounds_applied/op")
				b.ReportMetric(float64(skipped)/n, "rounds_skipped/op")
				b.ReportMetric(float64(margin)/n, "lods_skipped_margin/op")
				b.ReportMetric(float64(bounds)/n, "bounds_decisive/op")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: decode time with and without the
// LRU decode cache.
func BenchmarkTable2(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9: compressed bytes per LOD.
func BenchmarkFig9(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Fig9(io.Discard)
	}
}

// BenchmarkFig10 regenerates Fig. 10: the filter/decode/geometry breakdown
// of a representative cell (WN-NN under both paradigms, brute force).
func BenchmarkFig10(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cells []bench.Cell
		for _, p := range []core.Paradigm{core.FR, core.FPR} {
			c, err := s.RunCell(bench.WNNN, p, core.BruteForce)
			if err != nil {
				b.Fatal(err)
			}
			cells = append(cells, c)
		}
		bench.Fig10(io.Discard, cells)
	}
}

// BenchmarkFig11 regenerates Fig. 11: remaining faces per decimation round.
func BenchmarkFig11(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig11(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12: pairs evaluated/pruned per LOD and
// the derived LOD schedules.
func BenchmarkFig12(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig12(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 regenerates Fig. 13: the SDBMS baseline versus 3DPro under
// FR and FPR.
func BenchmarkFig13(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig13(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStats regenerates the §6.2 dataset profile (compression ratio,
// protruding fractions, compression cost).
func BenchmarkStats(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Stats(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
