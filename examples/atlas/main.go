// Atlas: the 3D-atlas workflow the paper's introduction motivates (HuBMAP,
// HTAN) — ingest a tissue sample once into persistent storage, reload it
// later, and serve region and point lookups against it: "which structures
// lie in this region of interest?", "which structure contains this
// coordinate?".
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
)

func main() {
	dir, err := os.MkdirTemp("", "3dpro-atlas-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	nuclei, vessels := datagen.Tissue(datagen.TissueOptions{
		Nuclei:  datagen.NucleiOptions{Count: 48, Seed: 21},
		Vessels: datagen.VesselOptions{Count: 3, Seed: 22},
	})
	eng := eng()
	defer eng.Close()

	// Ingest once, persist as tiles + manifest.
	t0 := time.Now()
	ds, err := eng.BuildDataset("tissue", append(nuclei, vessels...), core.DatasetOptions{Cuboids: 27})
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SaveDataset(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d structures (%d nuclei + %d vessels) in %v, persisted %d B to %s\n",
		ds.Len(), len(nuclei), len(vessels), time.Since(t0).Round(time.Millisecond),
		ds.CompressedBytes(), dir)

	// A later session: load the atlas back.
	atlas, err := eng.LoadDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded atlas: %d structures, %d LODs each\n\n", atlas.Len(), atlas.MaxLOD()+1)

	// Region of interest: a cube in the middle of the tissue.
	roi := geom.Box3{Min: geom.V(35, 35, 35), Max: geom.V(65, 65, 65)}
	ids, stats, err := eng.RangeQuery(context.Background(), atlas, roi, core.QueryOptions{Paradigm: core.FPR})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query %v:\n  %d structures intersect the ROI (%v, %d candidates)\n",
		roi, len(ids), stats.Elapsed.Round(time.Millisecond), stats.Candidates)

	// Point lookups: which structure contains each probe coordinate?
	probes := []geom.Vec3{
		nucleusCentroid(eng, atlas, 0),
		geom.V(50, 50, 50),
		geom.V(5, 5, 95),
	}
	for _, p := range probes {
		owners, _, err := eng.ContainingObjects(context.Background(), atlas, p, core.QueryOptions{Paradigm: core.FPR, Accel: core.AABB})
		if err != nil {
			log.Fatal(err)
		}
		if len(owners) == 0 {
			fmt.Printf("point %v: in no structure (extracellular space)\n", p)
		} else {
			fmt.Printf("point %v: inside structure(s) %v\n", p, owners)
		}
	}
}

func eng() *core.Engine {
	return core.NewEngine(core.EngineOptions{})
}

func nucleusCentroid(e *core.Engine, d *core.Dataset, id int64) geom.Vec3 {
	m, err := d.Tileset.Object(id).Comp.Decode(d.MaxLOD())
	if err != nil {
		log.Fatal(err)
	}
	return m.Centroid()
}
