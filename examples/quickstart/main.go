// Quickstart: compress two polyhedra with PPVP, look at the LODs, and run
// an intersection query through the engine.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

func main() {
	// Build two overlapping blobby spheres (1280 faces each).
	a := mesh.Icosphere(10, 3)
	b := mesh.Icosphere(10, 3)
	b.Translate(geom.V(15, 2, 1)) // overlaps a

	// Compress one directly to see progressive LODs in action.
	comp, stats, err := ppvp.Compress(a, ppvp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	raw := a.NumVertices()*24 + a.NumFaces()*12
	fmt.Printf("compressed %d faces: %d B -> %d B (%.1fx), %d vertices removed over %d rounds\n",
		a.NumFaces(), raw, comp.TotalSize(), float64(raw)/float64(comp.TotalSize()),
		stats.VerticesRemoved, stats.RoundsRun)

	fmt.Println("progressive decode (every LOD is a subset of the next):")
	dec, err := comp.NewDecoder()
	if err != nil {
		log.Fatal(err)
	}
	for lod := 0; lod <= comp.MaxLOD(); lod++ {
		m, err := dec.DecodeTo(lod)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  LOD %d: %4d faces, volume %8.1f\n", lod, m.NumFaces(), m.Volume())
	}

	// Now the engine: ingest both objects as single-object datasets and ask
	// whether they intersect, under the Filter-Progressive-Refine paradigm.
	eng := core.NewEngine(core.EngineOptions{})
	defer eng.Close()

	dsA, err := eng.BuildDataset("A", []*mesh.Mesh{a}, core.DatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	dsB, err := eng.BuildDataset("B", []*mesh.Mesh{b}, core.DatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}

	pairs, qstats, err := eng.IntersectJoin(context.Background(), dsA, dsB, core.QueryOptions{
		Paradigm: core.FPR,
		Accel:    core.AABB,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintersection query: %d pair(s) found\n", len(pairs))
	fmt.Printf("engine stats: %s\n", qstats)
	for lod, n := range qstats.PairsPruned {
		if n > 0 {
			fmt.Printf("  -> settled %d candidate(s) at LOD %d without decoding further\n", n, lod)
		}
	}
}
