// Vessels: the paper's introduction workload — for every nucleus in a
// tissue sample, find its closest blood vessel (an all-nearest-neighbor
// join between a large set of simple objects and a small set of complex
// bifurcated ones), comparing the refinement accelerators.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	nuclei, vessels := datagen.Tissue(datagen.TissueOptions{
		Nuclei:  datagen.NucleiOptions{Count: 48, Seed: 11},
		Vessels: datagen.VesselOptions{Count: 4, Seed: 12},
	})
	var vesselFaces int
	for _, v := range vessels {
		vesselFaces += v.NumFaces()
	}
	fmt.Printf("tissue: %d nuclei (~320 faces each), %d vessels (avg %d faces)\n",
		len(nuclei), len(vessels), vesselFaces/len(vessels))

	eng := core.NewEngine(core.EngineOptions{})
	defer eng.Close()
	dsN, err := eng.BuildDataset("nuclei", nuclei, core.DatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	dsV, err := eng.BuildDataset("vessels", vessels, core.DatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Let profiling choose the LOD ladder, as §6.5 prescribes.
	lods, _, err := eng.ProfileLODs(context.Background(), dsN, dsV, core.NNKind, 0, core.QueryOptions{}, core.DefaultPruneThreshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled LOD schedule: %v\n\n", lods)

	var reference []core.Neighbor
	for _, accel := range []core.Accel{core.BruteForce, core.Partition, core.AABB, core.GPU, core.PartitionGPU} {
		eng.Cache().Clear()
		ns, stats, err := eng.NNJoin(context.Background(), dsN, dsV, core.QueryOptions{
			Paradigm: core.FPR, Accel: accel, LODs: lods,
		})
		if err != nil {
			log.Fatal(err)
		}
		if reference == nil {
			reference = ns
		} else if !sameAnswers(reference, ns) {
			log.Fatalf("accelerator %v returned different answers", accel)
		}
		fmt.Printf("%-14s %8v  (decode %v, geometry %v)\n",
			accel, stats.Elapsed.Round(time.Millisecond),
			stats.DecodeTime.Round(time.Millisecond), stats.GeomTime.Round(time.Millisecond))
	}

	fmt.Println("\nsample answers (nucleus -> closest vessel):")
	for i, nb := range reference {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", len(reference)-5)
			break
		}
		fmt.Printf("  nucleus %2d -> vessel %d at distance %.3f\n", nb.Target, nb.Source, nb.Dist)
	}
}

func sameAnswers(a, b []core.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Target != b[i].Target || a[i].Dist-b[i].Dist > 1e-9 || b[i].Dist-a[i].Dist > 1e-9 {
			return false
		}
	}
	return true
}
