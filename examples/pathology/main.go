// Pathology: the paper's §6.3 motivating workload — validate one image
// analysis algorithm against another by intersection-joining the nuclei
// each one segmented from the same tissue. High overlap between the two
// result sets means the algorithms agree.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
)

func main() {
	// Two "segmentation runs" of the same tissue: algorithm B sees the same
	// nuclei slightly displaced and re-noised.
	const n = 64
	genA := datagen.NucleiOptions{Count: n, Seed: 7}
	algorithmA := datagen.Nuclei(genA)
	genB := genA
	genB.Seed = 8
	genB.Offset = geom.V(1.5, 1.0, 0.7)
	algorithmB := datagen.Nuclei(genB)

	eng := core.NewEngine(core.EngineOptions{})
	defer eng.Close()

	t0 := time.Now()
	dsA, err := eng.BuildDataset("algorithmA", algorithmA, core.DatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	dsB, err := eng.BuildDataset("algorithmB", algorithmB, core.DatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested 2×%d nuclei in %v (compressed: %d + %d bytes)\n",
		n, time.Since(t0).Round(time.Millisecond), dsA.CompressedBytes(), dsB.CompressedBytes())

	// The agreement metric: how many of A's nuclei intersect at least one
	// of B's.
	for _, paradigm := range []core.Paradigm{core.FR, core.FPR} {
		eng.Cache().Clear()
		pairs, stats, err := eng.IntersectJoin(context.Background(), dsA, dsB, core.QueryOptions{Paradigm: paradigm})
		if err != nil {
			log.Fatal(err)
		}
		matched := map[int64]bool{}
		for _, p := range pairs {
			matched[p.Target] = true
		}
		fmt.Printf("\n%s paradigm: %v\n", paradigm, stats.Elapsed.Round(time.Millisecond))
		fmt.Printf("  %d intersecting pairs; %d/%d of A's nuclei matched by B (%.0f%% agreement)\n",
			len(pairs), len(matched), n, 100*float64(len(matched))/float64(n))
		fmt.Printf("  decode time %v, geometry time %v\n",
			stats.DecodeTime.Round(time.Millisecond), stats.GeomTime.Round(time.Millisecond))
		if paradigm == core.FPR {
			for lod, p := range stats.PairsPruned {
				if p > 0 {
					fmt.Printf("  LOD %d settled %d of %d evaluated pairs\n", lod, p, stats.PairsEvaluated[lod])
				}
			}
		}
	}
}
