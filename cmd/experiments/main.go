// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic workloads and prints paper-style rows.
//
// Usage:
//
//	experiments [-quick] [-exp all|table1|table2|fig9|fig10|fig11|fig12|fig13|stats]
//	            [-nuclei N] [-vessels N] [-workers N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "use the small smoke workload")
		exp     = flag.String("exp", "all", "experiment to run: all, table1, table2, fig9, fig10, fig11, fig12, fig13, stats")
		nuclei  = flag.Int("nuclei", 0, "override nuclei count per dataset")
		vessels = flag.Int("vessels", 0, "override vessel count")
		workers = flag.Int("workers", 0, "override query workers")
		seed    = flag.Int64("seed", 0, "override data seed")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *nuclei > 0 {
		cfg.NucleiCount = *nuclei
	}
	if *vessels > 0 {
		cfg.VesselCount = *vessels
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	if err := run(cfg, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(cfg bench.Config, exp string) error {
	t0 := time.Now()
	fmt.Printf("building suite (nuclei=%d×4 sets, vessels=%d, seed=%d)...\n",
		cfg.NucleiCount, cfg.VesselCount, cfg.Seed)
	s, err := bench.NewSuite(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Printf("suite ready in %v (nucleiA=%d nucleiB=%d nuclei1=%d nuclei2=%d tissue=%d vessels=%d)\n\n",
		s.BuildTime.Round(time.Millisecond),
		s.NucleiA.Len(), s.NucleiB.Len(), s.Nuclei1.Len(), s.Nuclei2.Len(),
		s.NucleiT.Len(), s.Vessels.Len())

	var cells []bench.Cell
	want := func(name string) bool { return exp == "all" || exp == name }

	if want("stats") {
		if _, err := s.Stats(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("fig9") {
		s.Fig9(os.Stdout)
		fmt.Println()
	}
	if want("fig11") {
		if _, err := s.Fig11(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("fig12") {
		if _, err := s.Fig12(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("table1") || want("fig10") {
		cells, err = s.Table1(os.Stdout, nil, nil)
		if err != nil {
			return err
		}
		bench.SpeedupSummary(os.Stdout, cells)
		fmt.Println()
	}
	if want("fig10") {
		// Restrict the breakdown to the brute and AABB columns, which is
		// what the paper's Fig. 10 bars show most clearly.
		var sel []bench.Cell
		for _, c := range cells {
			if c.Accel == core.BruteForce || c.Accel == core.AABB {
				sel = append(sel, c)
			}
		}
		bench.Fig10(os.Stdout, sel)
		fmt.Println()
	}
	if want("table2") {
		if _, err := s.Table2(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("fig13") {
		if _, err := s.Fig13(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if exp == "ablations" {
		if err := s.Ablations(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Printf("total experiment time: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}
