// Command 3dpro is the command-line interface to the 3DPro engine:
// generate synthetic datasets, compress meshes with PPVP, inspect and
// decode compressed blobs, and run the three spatial joins.
//
// Usage:
//
//	3dpro generate -kind nuclei|vessels -count N -out DIR [-seed S]
//	3dpro compress -in DIR -out DIR [-rounds N] [-policy ppvp|ppmc]
//	3dpro inspect  -in FILE.3dp
//	3dpro decode   -in FILE.3dp -lod L -out FILE.off
//	3dpro query    -kind intersect|within|nn -target DIR -source DIR
//	               [-dist D] [-paradigm fr|fpr] [-accel brute|aabb|partition|gpu|partition+gpu]
//	3dpro profile  -target DIR -source DIR -kind intersect|within|nn [-dist D]
//
// DIRs hold OFF meshes (generate/compress) or .3dp blobs (query/profile).
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "3dpro: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "3dpro:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `3dpro — progressive 3D spatial query engine

commands:
  generate   create a synthetic nuclei or vessel dataset as OFF files
  compress   PPVP-compress a directory of OFF meshes into .3dp blobs
  ingest     build a persistent dataset directory (tiles + manifest)
  inspect    print metadata of a .3dp blob
  decode     decode a .3dp blob at a chosen LOD back to OFF
  query      run an intersect/within/nn join between two datasets
  profile    recommend a progressive-refinement LOD schedule

run "3dpro <command> -h" for flags`)
}
