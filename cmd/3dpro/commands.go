package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "nuclei", "nuclei or vessels")
	count := fs.Int("count", 50, "object count")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "data", "output directory")
	level := fs.Int("level", 2, "nuclei subdivision level")
	fs.Parse(args)

	var meshes []*mesh.Mesh
	switch *kind {
	case "nuclei":
		meshes = datagen.Nuclei(datagen.NucleiOptions{Count: *count, Seed: *seed, SubdivisionLevel: *level})
	case "vessels":
		meshes = datagen.Vessels(datagen.VesselOptions{Count: *count, Seed: *seed})
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for i, m := range meshes {
		path := filepath.Join(*out, fmt.Sprintf("%s-%05d.off", *kind, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := m.WriteOFF(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d %s to %s\n", len(meshes), *kind, *out)
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "data", "directory of OFF meshes")
	out := fs.String("out", "compressed", "output directory for .3dp blobs")
	rounds := fs.Int("rounds", 10, "decimation rounds")
	policy := fs.String("policy", "ppvp", "ppvp (protruding-only) or ppmc (any vertex)")
	fs.Parse(args)

	opts := ppvp.DefaultOptions()
	opts.Rounds = *rounds
	switch *policy {
	case "ppvp":
		opts.Policy = ppvp.PruneProtruding
	case "ppmc":
		opts.Policy = ppvp.PruneAny
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	paths, err := filepath.Glob(filepath.Join(*in, "*.off"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .off files in %s", *in)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	var rawTotal, compTotal int64
	start := time.Now()
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		m, err := mesh.ReadOFF(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		c, _, err := ppvp.Compress(m, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dst := filepath.Join(*out, strings.TrimSuffix(filepath.Base(path), ".off")+".3dp")
		if err := os.WriteFile(dst, c.Bytes(), 0o644); err != nil {
			return err
		}
		rawTotal += int64(m.NumVertices())*24 + int64(m.NumFaces())*12
		compTotal += int64(c.TotalSize())
	}
	fmt.Printf("compressed %d meshes in %v: %d B -> %d B (%.1fx)\n",
		len(paths), time.Since(start).Round(time.Millisecond),
		rawTotal, compTotal, float64(rawTotal)/float64(compTotal))
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", ".3dp blob")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	c, err := ppvp.FromBytes(blob)
	if err != nil {
		return err
	}
	fmt.Printf("policy:   %s\n", c.PolicyUsed())
	fmt.Printf("LODs:     %d (0..%d)\n", c.NumLODs(), c.MaxLOD())
	fmt.Printf("rounds:   %d\n", c.NumRounds())
	fmt.Printf("MBB:      %v\n", c.MBB())
	fmt.Printf("size:     %d B total\n", c.TotalSize())
	for lod, b := range c.LODSizes() {
		fmt.Printf("  lod %d section: %d B\n", lod, b)
	}
	for lod := 0; lod <= c.MaxLOD(); lod++ {
		m, err := c.Decode(lod)
		if err != nil {
			return err
		}
		fmt.Printf("  lod %d mesh: %d vertices, %d faces, volume %.4g\n",
			lod, m.NumVertices(), m.NumFaces(), m.Volume())
	}
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("in", "", ".3dp blob")
	out := fs.String("out", "", "output file")
	lod := fs.Int("lod", -1, "LOD to decode (-1 = highest)")
	format := fs.String("format", "off", "output format: off, ply, or wkb")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	c, err := ppvp.FromBytes(blob)
	if err != nil {
		return err
	}
	l := *lod
	if l < 0 {
		l = c.MaxLOD()
	}
	m, err := c.Decode(l)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "off":
		err = m.WriteOFF(f)
	case "ply":
		err = m.WritePLY(f)
	case "wkb":
		err = m.WriteWKB(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("decoded LOD %d: %d vertices, %d faces -> %s (%s)\n", l, m.NumVertices(), m.NumFaces(), *out, *format)
	return nil
}

// cmdIngest builds a persistent dataset directory (tiles + manifest) from
// a directory of OFF meshes.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	in := fs.String("in", "data", "directory of OFF meshes")
	out := fs.String("out", "dataset", "output dataset directory")
	name := fs.String("name", "dataset", "dataset name")
	rounds := fs.Int("rounds", 10, "decimation rounds")
	cuboids := fs.Int("cuboids", 64, "space-partition cuboids")
	fs.Parse(args)

	e := core.NewEngine(core.EngineOptions{})
	defer e.Close()
	meshes, err := readOFFDir(*in)
	if err != nil {
		return err
	}
	opts := core.DatasetOptions{Cuboids: *cuboids}
	opts.Compression = ppvp.DefaultOptions()
	opts.Compression.Rounds = *rounds
	start := time.Now()
	d, err := e.BuildDataset(*name, meshes, opts)
	if err != nil {
		return err
	}
	if err := d.SaveDataset(*out); err != nil {
		return err
	}
	fmt.Printf("ingested %d objects into %s in %v (%d B compressed, %d LODs)\n",
		d.Len(), *out, time.Since(start).Round(time.Millisecond), d.CompressedBytes(), d.MaxLOD()+1)
	return nil
}

func readOFFDir(dir string) ([]*mesh.Mesh, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.off"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var meshes []*mesh.Mesh
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		m, err := mesh.ReadOFF(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		meshes = append(meshes, m)
	}
	if len(meshes) == 0 {
		return nil, fmt.Errorf("no .off files in %s", dir)
	}
	return meshes, nil
}

// loadDataset ingests a directory of .3dp blobs or .off meshes as a
// dataset, or loads a persisted dataset directory (dataset.json + tiles).
func loadDataset(e *core.Engine, name, dir string) (*core.Dataset, error) {
	if _, err := os.Stat(filepath.Join(dir, "dataset.json")); err == nil {
		return e.LoadDataset(dir)
	}
	offs, _ := filepath.Glob(filepath.Join(dir, "*.off"))
	blobs, _ := filepath.Glob(filepath.Join(dir, "*.3dp"))
	sort.Strings(offs)
	sort.Strings(blobs)

	var meshes []*mesh.Mesh
	for _, path := range offs {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		m, err := mesh.ReadOFF(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		meshes = append(meshes, m)
	}
	for _, path := range blobs {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		c, err := ppvp.FromBytes(blob)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		m, err := c.Decode(c.MaxLOD())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		meshes = append(meshes, m)
	}
	if len(meshes) == 0 {
		return nil, fmt.Errorf("no .off or .3dp files in %s", dir)
	}
	return e.BuildDataset(name, meshes, core.DatasetOptions{})
}

func parseParadigm(s string) (core.Paradigm, error) {
	switch strings.ToLower(s) {
	case "fr":
		return core.FR, nil
	case "fpr":
		return core.FPR, nil
	}
	return 0, fmt.Errorf("unknown paradigm %q", s)
}

func parseAccel(s string) (core.Accel, error) {
	switch strings.ToLower(s) {
	case "brute":
		return core.BruteForce, nil
	case "aabb":
		return core.AABB, nil
	case "partition":
		return core.Partition, nil
	case "gpu":
		return core.GPU, nil
	case "partition+gpu", "partitiongpu":
		return core.PartitionGPU, nil
	}
	return 0, fmt.Errorf("unknown accelerator %q", s)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	kind := fs.String("kind", "intersect", "intersect, within, or nn")
	targetDir := fs.String("target", "", "target dataset directory")
	sourceDir := fs.String("source", "", "source dataset directory")
	dist := fs.Float64("dist", 1, "distance for within queries")
	paradigmStr := fs.String("paradigm", "fpr", "fr or fpr")
	accelStr := fs.String("accel", "aabb", "brute, aabb, partition, gpu, partition+gpu")
	limit := fs.Int("limit", 20, "max result rows to print (0 = all)")
	fs.Parse(args)
	if *targetDir == "" || *sourceDir == "" {
		return fmt.Errorf("-target and -source are required")
	}

	paradigm, err := parseParadigm(*paradigmStr)
	if err != nil {
		return err
	}
	accel, err := parseAccel(*accelStr)
	if err != nil {
		return err
	}

	e := core.NewEngine(core.EngineOptions{})
	defer e.Close()
	target, err := loadDataset(e, "target", *targetDir)
	if err != nil {
		return err
	}
	source, err := loadDataset(e, "source", *sourceDir)
	if err != nil {
		return err
	}
	q := core.QueryOptions{Paradigm: paradigm, Accel: accel}

	switch *kind {
	case "intersect":
		pairs, stats, err := e.IntersectJoin(context.Background(), target, source, q)
		if err != nil {
			return err
		}
		printPairs(pairs, *limit)
		fmt.Printf("%d pairs; %s\n", len(pairs), stats)
	case "within":
		pairs, stats, err := e.WithinJoin(context.Background(), target, source, *dist, q)
		if err != nil {
			return err
		}
		printPairs(pairs, *limit)
		fmt.Printf("%d pairs; %s\n", len(pairs), stats)
	case "nn":
		ns, stats, err := e.NNJoin(context.Background(), target, source, q)
		if err != nil {
			return err
		}
		for i, n := range ns {
			if *limit > 0 && i >= *limit {
				fmt.Printf("  ... %d more\n", len(ns)-i)
				break
			}
			fmt.Printf("  target %d -> source %d (dist %.6g)\n", n.Target, n.Source, n.Dist)
		}
		fmt.Printf("%d results; %s\n", len(ns), stats)
	default:
		return fmt.Errorf("unknown query kind %q", *kind)
	}
	return nil
}

func printPairs(pairs []core.Pair, limit int) {
	for i, p := range pairs {
		if limit > 0 && i >= limit {
			fmt.Printf("  ... %d more\n", len(pairs)-i)
			return
		}
		fmt.Printf("  target %d ∩ source %d\n", p.Target, p.Source)
	}
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	kind := fs.String("kind", "within", "intersect, within, or nn")
	targetDir := fs.String("target", "", "target dataset directory")
	sourceDir := fs.String("source", "", "source dataset directory")
	dist := fs.Float64("dist", 1, "distance for within queries")
	threshold := fs.Float64("threshold", core.DefaultPruneThreshold, "pruned-fraction threshold (1/r²)")
	fs.Parse(args)
	if *targetDir == "" || *sourceDir == "" {
		return fmt.Errorf("-target and -source are required")
	}

	var qk core.QueryKind
	switch *kind {
	case "intersect":
		qk = core.IntersectKind
	case "within":
		qk = core.WithinKind
	case "nn":
		qk = core.NNKind
	default:
		return fmt.Errorf("unknown query kind %q", *kind)
	}

	e := core.NewEngine(core.EngineOptions{})
	defer e.Close()
	target, err := loadDataset(e, "target", *targetDir)
	if err != nil {
		return err
	}
	source, err := loadDataset(e, "source", *sourceDir)
	if err != nil {
		return err
	}
	lods, stats, err := e.ProfileLODs(context.Background(), target, source, qk, *dist, core.QueryOptions{}, *threshold)
	if err != nil {
		return err
	}
	fmt.Printf("recommended LOD schedule: %v\n", lods)
	for l := range stats.PairsEvaluated {
		if stats.PairsEvaluated[l] > 0 {
			fmt.Printf("  lod %d: pruned %d of %d (%.0f%%)\n",
				l, stats.PairsPruned[l], stats.PairsEvaluated[l], 100*stats.PrunedFraction(l))
		}
	}
	return nil
}
