// Command 3dpro-server serves 3DPro spatial queries over HTTP.
//
// Datasets come from persisted dataset directories (see `3dpro ingest`) via
// repeated -dataset flags, or -demo loads a synthetic tissue sample:
//
//	3dpro-server -addr :8080 -dataset nuclei=./nuclei-ds -dataset vessels=./vessel-ds
//	3dpro-server -demo
//
// The server runs hardened for production: per-query deadlines
// (-query-timeout), admission control (-max-inflight), request body limits
// (-max-body-bytes), /healthz, /readyz, and /statusz probes, per-request
// panic isolation, and graceful draining on SIGINT/SIGTERM
// (-shutdown-grace). Observability: /metrics serves Prometheus text,
// /debug/queries the recent-query ring, -pprof mounts the profiling
// endpoints (do not expose them to untrusted clients), and -log-format
// selects text or json structured access logs.
// -salvage loads damaged dataset directories in salvage
// mode (undamaged objects survive, the rest are quarantined);
// -quarantine-threshold and -quarantine-cooldown tune the per-object
// circuit breaker. Fault injection for resilience testing is available via
// -faults or the _3DPRO_FAULTS environment variable (see
// internal/faultinject).
//
// -shards N (N > 1) serves through the degrade-aware sharded tier
// (internal/shard): objects are space-partitioned across N in-process
// engine shards and every query is scatter-gathered with per-shard
// retries (-shard-retries, -shard-retry-backoff), optional hedging
// (-shard-hedge-after), per-attempt deadlines (-shard-attempt-timeout),
// and a per-shard circuit breaker (-shard-breaker-threshold,
// -shard-breaker-cooldown). A dead shard degrades Degrade-policy queries
// (its objects are reported uncertain) instead of failing them.
//
// Multi-process serving splits the tier across processes. Each shard runs
// as a worker:
//
//	3dpro-server -shard-worker -listen 127.0.0.1:7801
//
// and the frontend coordinates them over HTTP with replicated placement
// (-replicas copies of every home group, so killing any single worker
// still yields exact answers via failover) and an active health prober
// (-shard-probe-interval) that rejoins restarted workers without risking
// query traffic:
//
//	3dpro-server -shards 2 -replicas 2 \
//	    -shard-workers http://127.0.0.1:7801,http://127.0.0.1:7802 -demo
//
// See internal/server for the API and DESIGN.md §13 for the placement and
// failover semantics.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"
)

type datasetFlags []string

func (d *datasetFlags) String() string     { return strings.Join(*d, ",") }
func (d *datasetFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var datasets datasetFlags
	addr := flag.String("addr", "127.0.0.1:7333", "listen address")
	demo := flag.Bool("demo", false, "load a synthetic tissue demo (datasets 'nuclei' and 'vessels')")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-query deadline (0 disables)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently admitted queries (default 2×GOMAXPROCS)")
	maxBodyBytes := flag.Int64("max-body-bytes", 1<<20, "request body size limit in bytes")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "drain allowance on SIGINT/SIGTERM")
	faults := flag.String("faults", "", "fault-injection spec, e.g. 'ppvp.decode=sleep:50ms' (also env "+faultinject.EnvVar+")")
	salvage := flag.Bool("salvage", false, "load -dataset directories in salvage mode: skip and quarantine damaged objects instead of refusing the dataset")
	quarThreshold := flag.Int("quarantine-threshold", 0, "decode failures before an object is quarantined (default 3)")
	quarCooldown := flag.Duration("quarantine-cooldown", 0, "how long a quarantined object stays blocked before a probe is admitted (default 30s)")
	shards := flag.Int("shards", 1, "serve through N in-process shards with a degrade-aware coordinator (1 = single engine)")
	replicas := flag.Int("replicas", 2, "shards storing each home group in multi-process mode (failover tolerates replicas-1 dead workers per group; in-process mode defaults to 1)")
	shardWorkers := flag.String("shard-workers", "", "comma-separated worker base URLs; serve through these worker processes over HTTP instead of in-process shards")
	shardProbeInterval := flag.Duration("shard-probe-interval", 2*time.Second, "background health-probe interval for tripped shard breakers (0 disables the prober)")
	shardWorker := flag.Bool("shard-worker", false, "run as a shard worker process serving the shard protocol on -listen")
	listen := flag.String("listen", "127.0.0.1:7800", "worker listen address (with -shard-worker)")
	shardRetries := flag.Int("shard-retries", 0, "transport retries per shard call (default 2, negative disables)")
	shardBackoff := flag.Duration("shard-retry-backoff", 0, "initial retry backoff, doubling with jitter (default 5ms)")
	shardHedgeAfter := flag.Duration("shard-hedge-after", 0, "hedge a shard call with a second attempt after this delay (0 = off)")
	shardAttemptTimeout := flag.Duration("shard-attempt-timeout", 0, "per-attempt shard deadline, always capped by the query deadline (0 = query deadline only)")
	shardBreakerThreshold := flag.Int("shard-breaker-threshold", 0, "consecutive failures before a shard's circuit breaker opens (default 3)")
	shardBreakerCooldown := flag.Duration("shard-breaker-cooldown", 0, "how long an open shard breaker blocks calls before a probe (default 30s)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes memory contents; keep off on untrusted networks)")
	logFormat := flag.String("log-format", "text", "structured access-log format: text or json")
	flag.Var(&datasets, "dataset", "name=dir of a persisted dataset (repeatable)")
	flag.Parse()

	var slogger *slog.Logger
	switch *logFormat {
	case "text":
		slogger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		slogger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		log.Fatalf("bad -log-format %q, want text or json", *logFormat)
	}

	if *faults != "" {
		if err := faultinject.Parse(*faults); err != nil {
			log.Fatal(err)
		}
	}

	cfg := server.Config{
		QueryTimeout:  *queryTimeout,
		MaxInFlight:   *maxInFlight,
		MaxBodyBytes:  *maxBodyBytes,
		ShutdownGrace: *shutdownGrace,
		Slog:          slogger,
		EnablePprof:   *enablePprof,
	}
	if *queryTimeout == 0 {
		cfg.QueryTimeout = -1 // flag 0 = disabled; Config 0 = default
	}

	engOpts := core.EngineOptions{
		QuarantineThreshold: *quarThreshold,
		QuarantineCooldown:  *quarCooldown,
	}

	if *shardWorker {
		node := shard.NewNode(0, engOpts)
		defer node.Close()
		w := server.NewWorker(node, cfg)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		log.Printf("3dpro-server shard worker listening on http://%s", *listen)
		if err := w.Run(ctx, *listen); err != nil {
			log.Fatal(err)
		}
		log.Printf("3dpro-server: worker clean shutdown")
		return
	}

	// The loader engine builds/loads datasets; in sharded mode the queries
	// run on the coordinator's per-shard engines instead.
	eng := core.NewEngine(engOpts)
	defer eng.Close()

	// The -replicas default (2) targets multi-process serving, where a dead
	// worker is an expected event; plain -shards N keeps the single-copy
	// placement of the in-process tier unless -replicas is set explicitly.
	replicasSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "replicas" {
			replicasSet = true
		}
	})

	shardOpts := shard.Options{
		Retries:          *shardRetries,
		RetryBackoff:     *shardBackoff,
		HedgeAfter:       *shardHedgeAfter,
		AttemptTimeout:   *shardAttemptTimeout,
		BreakerThreshold: *shardBreakerThreshold,
		BreakerCooldown:  *shardBreakerCooldown,
	}

	var srv *server.Server
	switch {
	case *shardWorkers != "":
		addrs := strings.Split(*shardWorkers, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		if *shards > 1 && *shards != len(addrs) {
			log.Fatalf("-shards %d disagrees with the %d -shard-workers URLs; drop -shards or make them match", *shards, len(addrs))
		}
		tr := shard.NewHTTPTransport(addrs)
		defer tr.Close()
		shardOpts.Shards = len(addrs)
		shardOpts.Replicas = *replicas
		coord := shard.NewWithTransport(tr, shardOpts)
		defer coord.Close()
		coord.StartProber(*shardProbeInterval)
		srv = server.NewSharded(coord, cfg)
		log.Printf("sharded serving enabled: %d workers over HTTP, %d replicas per group", len(addrs), coord.Replicas())
	case *shards > 1:
		shardOpts.Shards = *shards
		if replicasSet {
			shardOpts.Replicas = *replicas
		}
		coord := shard.NewInProcess(engOpts, shardOpts)
		defer coord.Close()
		coord.StartProber(*shardProbeInterval)
		srv = server.NewSharded(coord, cfg)
		log.Printf("sharded serving enabled: %d shards, %d replicas per group", *shards, coord.Replicas())
	default:
		srv = server.NewWithConfig(eng, cfg)
	}

	loaded := 0
	for _, spec := range datasets {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad -dataset %q, want name=dir", spec)
		}
		var d *core.Dataset
		var err error
		if *salvage {
			var rep *storage.SalvageReport
			d, rep, err = eng.LoadDatasetSalvage(dir)
			if err != nil {
				log.Fatalf("salvage-loading %s: %v", dir, err)
			}
			if !rep.Clean() {
				log.Printf("salvaged %s: %d objects loaded, %d tiles skipped, %d objects dropped (quarantined)",
					dir, rep.ObjectsLoaded, len(rep.TilesSkipped), len(rep.ObjectsDropped))
				for _, dr := range rep.ObjectsDropped {
					log.Printf("  dropped object %d: %s", dr.ID, dr.Reason)
				}
			}
		} else {
			d, err = eng.LoadDataset(dir)
			if err != nil {
				log.Fatalf("loading %s: %v (is the directory damaged? try -salvage)", dir, err)
			}
		}
		d.Name = name
		if err := srv.AddDataset(d); err != nil {
			log.Fatalf("registering %s: %v", name, err)
		}
		log.Printf("loaded dataset %q: %d objects, %d LODs", name, d.Len(), d.MaxLOD()+1)
		loaded++
	}
	if *demo {
		nuclei, vessels := datagen.Tissue(datagen.TissueOptions{
			Nuclei:  datagen.NucleiOptions{Count: 64, Seed: 1},
			Vessels: datagen.VesselOptions{Count: 4, Seed: 2},
		})
		dn, err := eng.BuildDataset("nuclei", nuclei, core.DatasetOptions{})
		if err != nil {
			log.Fatal(err)
		}
		dv, err := eng.BuildDataset("vessels", vessels, core.DatasetOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.AddDataset(dn); err != nil {
			log.Fatal(err)
		}
		if err := srv.AddDataset(dv); err != nil {
			log.Fatal(err)
		}
		log.Printf("demo tissue loaded: %d nuclei, %d vessels", dn.Len(), dv.Len())
		loaded += 2
	}
	if loaded == 0 {
		log.Fatal("no datasets: pass -dataset name=dir or -demo")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("3dpro-server listening on http://%s", *addr)
	if err := srv.Run(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("3dpro-server: clean shutdown")
}
