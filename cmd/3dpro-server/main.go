// Command 3dpro-server serves 3DPro spatial queries over HTTP.
//
// Datasets come from persisted dataset directories (see `3dpro ingest`) via
// repeated -dataset flags, or -demo loads a synthetic tissue sample:
//
//	3dpro-server -addr :8080 -dataset nuclei=./nuclei-ds -dataset vessels=./vessel-ds
//	3dpro-server -demo
//
// See internal/server for the API.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/server"
)

type datasetFlags []string

func (d *datasetFlags) String() string     { return strings.Join(*d, ",") }
func (d *datasetFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var datasets datasetFlags
	addr := flag.String("addr", "127.0.0.1:7333", "listen address")
	demo := flag.Bool("demo", false, "load a synthetic tissue demo (datasets 'nuclei' and 'vessels')")
	flag.Var(&datasets, "dataset", "name=dir of a persisted dataset (repeatable)")
	flag.Parse()

	eng := core.NewEngine(core.EngineOptions{})
	defer eng.Close()
	srv := server.New(eng)

	loaded := 0
	for _, spec := range datasets {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad -dataset %q, want name=dir", spec)
		}
		d, err := eng.LoadDataset(dir)
		if err != nil {
			log.Fatalf("loading %s: %v", dir, err)
		}
		d.Name = name
		srv.AddDataset(d)
		log.Printf("loaded dataset %q: %d objects, %d LODs", name, d.Len(), d.MaxLOD()+1)
		loaded++
	}
	if *demo {
		nuclei, vessels := datagen.Tissue(datagen.TissueOptions{
			Nuclei:  datagen.NucleiOptions{Count: 64, Seed: 1},
			Vessels: datagen.VesselOptions{Count: 4, Seed: 2},
		})
		dn, err := eng.BuildDataset("nuclei", nuclei, core.DatasetOptions{})
		if err != nil {
			log.Fatal(err)
		}
		dv, err := eng.BuildDataset("vessels", vessels, core.DatasetOptions{})
		if err != nil {
			log.Fatal(err)
		}
		srv.AddDataset(dn)
		srv.AddDataset(dv)
		log.Printf("demo tissue loaded: %d nuclei, %d vessels", dn.Len(), dv.Len())
		loaded += 2
	}
	if loaded == 0 {
		log.Fatal("no datasets: pass -dataset name=dir or -demo")
	}

	fmt.Printf("3dpro-server listening on http://%s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
