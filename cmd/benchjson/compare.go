package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// errRegression marks a comparison that found at least one benchmark slower
// than the threshold allows; main exits non-zero so CI fails the build.
var errRegression = errors.New("benchmark regression over threshold")

// loadDoc reads a benchjson artifact (label → benchmark → summary).
func loadDoc(path string) (map[string]map[string]Summary, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]map[string]Summary
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc) == 0 {
		return nil, fmt.Errorf("%s: empty benchmark document", path)
	}
	return doc, nil
}

// compareRow is one benchmark's old-vs-new outcome.
type compareRow struct {
	label, name string
	oldMin      float64
	newMin      float64
	deltaPct    float64
	regressed   bool
}

// runCompare diffs two benchjson artifacts cell by cell and writes a delta
// table. A benchmark regresses when its new min ns/op exceeds the old one by
// more than thresholdPct percent — min-of-samples is the comparison basis
// because it is the least noise-sensitive statistic a bench run provides.
// Benchmarks present in only one artifact are reported but never fail the
// comparison. Returns errRegression if any cell regressed.
func runCompare(oldPath, newPath string, thresholdPct float64, stdout io.Writer) error {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return err
	}

	var rows []compareRow
	var onlyOld, onlyNew []string
	for label, oldBenches := range oldDoc {
		newBenches := newDoc[label]
		for name, o := range oldBenches {
			n, ok := newBenches[name]
			if !ok {
				onlyOld = append(onlyOld, label+"/"+name)
				continue
			}
			delta := math.Inf(1)
			if o.NsPerOpMin > 0 {
				delta = (n.NsPerOpMin - o.NsPerOpMin) / o.NsPerOpMin * 100
			}
			rows = append(rows, compareRow{
				label: label, name: name,
				oldMin: o.NsPerOpMin, newMin: n.NsPerOpMin,
				deltaPct:  delta,
				regressed: delta > thresholdPct,
			})
		}
	}
	for label, newBenches := range newDoc {
		oldBenches := oldDoc[label]
		for name := range newBenches {
			if _, ok := oldBenches[name]; !ok {
				onlyNew = append(onlyNew, label+"/"+name)
			}
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("no benchmarks in common between %s and %s", oldPath, newPath)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].label != rows[j].label {
			return rows[i].label < rows[j].label
		}
		return rows[i].name < rows[j].name
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)

	regressed := 0
	fmt.Fprintf(stdout, "%-60s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		mark := ""
		if r.regressed {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Fprintf(stdout, "%-60s %14.0f %14.0f %+8.1f%%%s\n",
			r.label+"/"+r.name, r.oldMin, r.newMin, r.deltaPct, mark)
	}
	for _, s := range onlyOld {
		fmt.Fprintf(stdout, "%-60s (removed)\n", s)
	}
	for _, s := range onlyNew {
		fmt.Fprintf(stdout, "%-60s (new)\n", s)
	}
	if regressed > 0 {
		return fmt.Errorf("%w: %d of %d cells above +%.1f%%", errRegression, regressed, len(rows), thresholdPct)
	}
	fmt.Fprintf(stdout, "OK: %d cells within +%.1f%%\n", len(rows), thresholdPct)
	return nil
}
