// Command benchjson converts `go test -bench` text output into a stable
// JSON document so benchmark runs can be committed and diffed.
//
// Usage:
//
//	benchjson -o BENCH.json label1=file1.txt label2=file2.txt ...
//	benchjson -compare [-threshold pct] old.json new.json
//
// Each labeled input file is parsed for benchmark result lines; repeated
// lines for one benchmark (from -count=N) are aggregated into min/mean
// statistics. The output maps label → benchmark name → summary.
//
// -compare diffs two artifacts cell by cell on min ns/op, prints the delta
// table, and exits non-zero when any common cell regressed by more than the
// threshold (default 5%) — so bench comparisons gate CI instead of being
// eyeballed.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchName matches the name field of a result line; the trailing -N
// (GOMAXPROCS suffix) is stripped so names stay stable across machines.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

// Summary aggregates the -count repetitions of one benchmark.
type Summary struct {
	Samples     int     `json:"samples"`
	Iterations  int64   `json:"iterations"` // total b.N across samples
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	// Allocation columns are present only when the run used -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the mean of any additional b.ReportMetric columns
	// (e.g. rounds_skipped/op), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type sample struct {
	iters   int64
	metrics map[string]float64 // unit → value, including ns/op
}

// parseLine parses one `go test -bench` result line: name, iteration count,
// then (value, unit) pairs. Returns ok=false for non-benchmark lines.
func parseLine(line string) (name string, s sample, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", sample{}, false
	}
	m := benchName.FindStringSubmatch(fields[0])
	if m == nil {
		return "", sample{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", sample{}, false
	}
	s = sample{iters: iters, metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		s.metrics[fields[i+1]] = v
	}
	if _, hasNs := s.metrics["ns/op"]; !hasNs {
		return "", sample{}, false
	}
	return m[1], s, true
}

func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if name, s, ok := parseLine(sc.Text()); ok {
			out[name] = append(out[name], s)
		}
	}
	return out, sc.Err()
}

func summarize(samples []sample) Summary {
	s := Summary{Samples: len(samples), NsPerOpMin: samples[0].metrics["ns/op"]}
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, sm := range samples {
		s.Iterations += sm.iters
		if ns := sm.metrics["ns/op"]; ns < s.NsPerOpMin {
			s.NsPerOpMin = ns
		}
		for unit, v := range sm.metrics {
			sums[unit] += v
			counts[unit]++
		}
	}
	n := len(samples)
	s.NsPerOpMean = sums["ns/op"] / float64(n)
	for unit, sum := range sums {
		if counts[unit] != n {
			continue // metric missing from some samples: not comparable
		}
		mean := sum / float64(n)
		switch unit {
		case "ns/op":
		case "B/op":
			s.BytesPerOp = &mean
		case "allocs/op":
			s.AllocsPerOp = &mean
		default:
			if s.Metrics == nil {
				s.Metrics = make(map[string]float64)
			}
			s.Metrics[unit] = mean
		}
	}
	return s
}

// usageError marks command-line mistakes, which exit 2 instead of 1.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func main() {
	out := flag.String("o", "", "output JSON path (default stdout)")
	compare := flag.Bool("compare", false, "compare two benchjson artifacts: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 5, "regression threshold in percent for -compare")
	flag.Parse()

	var err error
	if *compare {
		if flag.NArg() != 2 {
			err = &usageError{"-compare takes exactly two arguments: old.json new.json"}
		} else {
			err = runCompare(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout)
		}
	} else {
		err = run(flag.Args(), *out, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		var ue *usageError
		if errors.As(err, &ue) {
			fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] label=benchoutput.txt ...")
			fmt.Fprintln(os.Stderr, "       benchjson -compare [-threshold pct] old.json new.json")
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run converts the labeled bench-output files into one JSON document,
// written to outPath (or stdout when empty). An input file with no
// parsable benchmark result lines is an error: silently committing an
// empty artifact would make the next perf comparison vacuously "no
// regression".
func run(args []string, outPath string, stdout io.Writer) error {
	if len(args) == 0 {
		return &usageError{"no inputs"}
	}

	doc := make(map[string]map[string]Summary)
	for _, arg := range args {
		label, path, ok := strings.Cut(arg, "=")
		if !ok || label == "" || path == "" {
			return &usageError{fmt.Sprintf("argument %q is not label=file", arg)}
		}
		parsed, err := parseFile(path)
		if err != nil {
			return err
		}
		if len(parsed) == 0 {
			return fmt.Errorf("%s contains no benchmark result lines (empty or unparsable bench output); refusing to write an empty artifact", path)
		}
		if doc[label] == nil {
			doc[label] = make(map[string]Summary)
		}
		for name, samples := range parsed {
			doc[label][name] = summarize(samples)
		}
	}

	// Deterministic output: sorted keys via an ordered re-marshal.
	buf, err := marshalSorted(doc)
	if err != nil {
		return err
	}
	if outPath == "" {
		_, err := stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}

// marshalSorted renders the document with sorted labels and benchmark names
// (encoding/json already sorts map keys, but we indent for reviewability).
func marshalSorted(doc map[string]map[string]Summary) ([]byte, error) {
	var b strings.Builder
	labels := make([]string, 0, len(doc))
	for l := range doc {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	b.WriteString("{\n")
	for i, l := range labels {
		names := make([]string, 0, len(doc[l]))
		for n := range doc[l] {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  %q: {\n", l)
		for j, n := range names {
			enc, err := json.Marshal(doc[l][n])
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&b, "    %q: %s", n, enc)
			if j < len(names)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString("  }")
		if i < len(labels)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}
