package main

import (
	"errors"
	"strings"
	"testing"
)

const oldDoc = `{
  "table1": {
    "BenchmarkTable1_Cell/IN-FPR": {"samples":3,"iterations":9,"ns_per_op_min":1000000,"ns_per_op_mean":1100000},
    "BenchmarkTable1_Cell/WN-NN-FPR": {"samples":3,"iterations":9,"ns_per_op_min":2000000,"ns_per_op_mean":2100000},
    "BenchmarkTable1_Cell/Gone": {"samples":3,"iterations":9,"ns_per_op_min":500000,"ns_per_op_mean":500000}
  }
}`

const newDocOK = `{
  "table1": {
    "BenchmarkTable1_Cell/IN-FPR": {"samples":3,"iterations":9,"ns_per_op_min":1030000,"ns_per_op_mean":1200000},
    "BenchmarkTable1_Cell/WN-NN-FPR": {"samples":3,"iterations":9,"ns_per_op_min":1500000,"ns_per_op_mean":1600000},
    "BenchmarkTable1_Cell/Fresh": {"samples":3,"iterations":9,"ns_per_op_min":700000,"ns_per_op_mean":700000}
  }
}`

const newDocBad = `{
  "table1": {
    "BenchmarkTable1_Cell/IN-FPR": {"samples":3,"iterations":9,"ns_per_op_min":1300000,"ns_per_op_mean":1400000},
    "BenchmarkTable1_Cell/WN-NN-FPR": {"samples":3,"iterations":9,"ns_per_op_min":2000000,"ns_per_op_mean":2100000}
  }
}`

func TestCompareWithinThreshold(t *testing.T) {
	oldP := writeTemp(t, "old.json", oldDoc)
	newP := writeTemp(t, "new.json", newDocOK)
	var sb strings.Builder
	if err := runCompare(oldP, newP, 5, &sb); err != nil {
		t.Fatalf("compare within threshold failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	// +3% on IN-FPR is under the 5% threshold; -25% on WN-NN is a win.
	if !strings.Contains(out, "+3.0%") || !strings.Contains(out, "-25.0%") {
		t.Errorf("delta columns missing:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("spurious regression flag:\n%s", out)
	}
	if !strings.Contains(out, "(removed)") || !strings.Contains(out, "(new)") {
		t.Errorf("membership changes not reported:\n%s", out)
	}
	if !strings.Contains(out, "OK:") {
		t.Errorf("missing OK summary:\n%s", out)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	oldP := writeTemp(t, "old.json", oldDoc)
	newP := writeTemp(t, "new.json", newDocBad)
	var sb strings.Builder
	err := runCompare(oldP, newP, 5, &sb)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want errRegression\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("regression row not marked:\n%s", sb.String())
	}
	// The same comparison passes with a generous threshold.
	sb.Reset()
	if err := runCompare(oldP, newP, 50, &sb); err != nil {
		t.Fatalf("generous threshold still failed: %v", err)
	}
}

func TestCompareBadInputs(t *testing.T) {
	good := writeTemp(t, "good.json", oldDoc)
	if err := runCompare("/nonexistent.json", good, 5, &strings.Builder{}); err == nil {
		t.Error("missing old file must error")
	}
	empty := writeTemp(t, "empty.json", "{}")
	if err := runCompare(empty, good, 5, &strings.Builder{}); err == nil {
		t.Error("empty document must error")
	}
	disjoint := writeTemp(t, "disjoint.json", `{"other": {"BenchmarkX": {"samples":1,"iterations":1,"ns_per_op_min":1,"ns_per_op_mean":1}}}`)
	if err := runCompare(good, disjoint, 5, &strings.Builder{}); err == nil {
		t.Error("no common benchmarks must error")
	}
}
