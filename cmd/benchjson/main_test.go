package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const goodBench = `goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkIntersectJoin-8   	     100	  10000000 ns/op	  2048 B/op	      12 allocs/op
BenchmarkIntersectJoin-8   	     120	   8000000 ns/op	  2048 B/op	      12 allocs/op
BenchmarkKNN/k=4-8         	      50	  20000000 ns/op	     3.5 rounds/op
PASS
ok  	repro/internal/core	12.3s
`

func TestRunEmptyFile(t *testing.T) {
	p := writeTemp(t, "empty.txt", "")
	err := run([]string{"base=" + p}, "", &strings.Builder{})
	if err == nil {
		t.Fatal("empty input must be an error")
	}
	if !strings.Contains(err.Error(), "no benchmark result lines") {
		t.Errorf("error %q should explain that no result lines were found", err)
	}
	var ue *usageError
	if errors.As(err, &ue) {
		t.Error("empty input is a data error, not a usage error")
	}
}

func TestRunUnparsableFile(t *testing.T) {
	p := writeTemp(t, "garbage.txt", "this is not bench output\nneither is this\n")
	err := run([]string{"base=" + p}, "", &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "no benchmark result lines") {
		t.Fatalf("unparsable input must error about missing result lines, got %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"base=/nonexistent/bench.txt"}, "", &strings.Builder{}); err == nil {
		t.Fatal("missing input file must be an error")
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,                // no inputs at all
		{"notlabeled.txt"}, // missing label=
		{"=file.txt"},      // empty label
		{"label="},         // empty path
	} {
		err := run(args, "", &strings.Builder{})
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Errorf("run(%q) = %v, want usage error", args, err)
		}
	}
}

func TestRunGoodOutput(t *testing.T) {
	p := writeTemp(t, "good.txt", goodBench)
	var sb strings.Builder
	if err := run([]string{"base=" + p}, "", &sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]Summary
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	base := doc["base"]
	if base == nil {
		t.Fatal("missing label \"base\"")
	}
	ij := base["BenchmarkIntersectJoin"]
	if ij.Samples != 2 || ij.Iterations != 220 {
		t.Errorf("IntersectJoin samples/iters = %d/%d, want 2/220", ij.Samples, ij.Iterations)
	}
	if ij.NsPerOpMin != 8000000 || ij.NsPerOpMean != 9000000 {
		t.Errorf("IntersectJoin min/mean = %v/%v, want 8e6/9e6", ij.NsPerOpMin, ij.NsPerOpMean)
	}
	if ij.BytesPerOp == nil || *ij.BytesPerOp != 2048 || ij.AllocsPerOp == nil || *ij.AllocsPerOp != 12 {
		t.Errorf("IntersectJoin benchmem columns wrong: %+v", ij)
	}
	knn := base["BenchmarkKNN/k=4"]
	if knn.Samples != 1 || knn.Metrics["rounds/op"] != 3.5 {
		t.Errorf("KNN custom metric wrong: %+v", knn)
	}
}

func TestRunWritesFile(t *testing.T) {
	p := writeTemp(t, "good.txt", goodBench)
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"base=" + p}, out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf) {
		t.Fatalf("written file is not valid JSON:\n%s", buf)
	}
}
