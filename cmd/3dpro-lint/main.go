// Command 3dpro-lint runs the project's custom static analyzers (see
// internal/analysis) over the given package patterns and exits non-zero on
// any unsuppressed finding. It is wired into `make lint` and `make ci`.
//
// Usage:
//
//	3dpro-lint [-run names] [-v] [packages ...]
//
// -run takes a comma-separated list of anchored analyzer-name regexps
// (`goleak`, `goleak,wgbalance`, `.*balance`); an element matching no
// registered analyzer is an error, never a silent no-op. With no packages,
// ./... is analyzed. Findings print in the familiar
// file:line:col vet format. Vetted false positives are silenced in the
// source with
//
//	//lint:ignore <analyzer> <one-line justification>
//
// on (or directly above) the offending line; the justification is
// mandatory, and directives naming unknown analyzers are themselves
// reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	run := flag.String("run", "", "comma-separated anchored regexps selecting analyzers (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: 3dpro-lint [-run regexp] [-v] [packages ...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite.All {
			fmt.Printf("%-15s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers, err := suite.Select(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3dpro-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3dpro-lint:", err)
		os.Exit(2)
	}

	res, err := suite.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3dpro-lint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, d := range res.Suppressed {
			fmt.Fprintf(os.Stderr, "suppressed: %s\n", d)
		}
	}
	for _, d := range res.Findings {
		fmt.Println(d)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "3dpro-lint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
