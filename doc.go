// Package repro is a from-scratch Go reproduction of "3DPro: Querying
// Complex Three-Dimensional Data with Progressive Compression and
// Refinement" (EDBT 2022).
//
// The library lives under internal/: the geometric substrate (geom, mesh),
// the paper's PPVP progressive compression (ppvp), the spatial indexes
// (index/rtree, index/aabbtree), the refinement accelerators (partition,
// gpusim), the storage and caching layers (storage, cache), the query
// engine with the Filter-Progressive-Refine paradigm (core), the synthetic
// dataset generators (datagen), the PostGIS-like baseline (sdbms), and the
// experiment harness regenerating every table and figure of the paper's
// evaluation (bench).
//
// Entry points: cmd/3dpro (CLI), cmd/experiments (evaluation driver), and
// the runnable examples under examples/. The root-level benchmarks
// (bench_test.go) expose one testing.B benchmark per table and figure.
package repro
