package repro

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/ppvp"
	"repro/internal/sdbms"
)

// TestEndToEndPipeline drives the whole system the way a user would:
// generate → compress → persist → reload → query under both paradigms and
// all accelerators → cross-check against the SDBMS baseline.
func TestEndToEndPipeline(t *testing.T) {
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(80, 80, 80)}
	nuclei, vessels := datagen.Tissue(datagen.TissueOptions{
		Nuclei:  datagen.NucleiOptions{Count: 16, SubdivisionLevel: 1, Space: space, Seed: 99},
		Vessels: datagen.VesselOptions{Count: 2, Space: space, Seed: 100, RingSegments: 8, PathPoints: 8},
	})
	if len(nuclei) == 0 || len(vessels) == 0 {
		t.Fatal("tissue generation failed")
	}

	eng := core.NewEngine(core.EngineOptions{Workers: 2})
	defer eng.Close()

	comp := ppvp.DefaultOptions()
	comp.Rounds = 6
	dopts := core.DatasetOptions{Compression: comp, Cuboids: 8}

	dn, err := eng.BuildDataset("nuclei", nuclei, dopts)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := eng.BuildDataset("vessels", vessels, dopts)
	if err != nil {
		t.Fatal(err)
	}

	// Persist and reload the vessels; queries must be identical.
	dir := t.TempDir()
	if err := dv.SaveDataset(dir); err != nil {
		t.Fatal(err)
	}
	dvLoaded, err := eng.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}

	// NN join under every configuration and against the reloaded dataset.
	var ref []core.Neighbor
	for _, src := range []*core.Dataset{dv, dvLoaded} {
		for _, paradigm := range []core.Paradigm{core.FR, core.FPR} {
			for _, accel := range []core.Accel{core.BruteForce, core.AABB, core.Partition} {
				ns, _, err := eng.NNJoin(context.Background(), dn, src, core.QueryOptions{Paradigm: paradigm, Accel: accel})
				if err != nil {
					t.Fatalf("%v/%v: %v", paradigm, accel, err)
				}
				if ref == nil {
					ref = ns
					continue
				}
				if len(ns) != len(ref) {
					t.Fatalf("%v/%v: %d results, want %d", paradigm, accel, len(ns), len(ref))
				}
				for i := range ns {
					if ns[i].Target != ref[i].Target || math.Abs(ns[i].Dist-ref[i].Dist) > 1e-9 {
						t.Fatalf("%v/%v: result %d = %+v, want %+v", paradigm, accel, i, ns[i], ref[i])
					}
				}
			}
		}
	}

	// SDBMS baseline agrees on the within join.
	const dist = 10.0
	fullN := decodeTop(t, dn)
	fullV := decodeTop(t, dv)
	dbN, err := sdbms.New(fullN)
	if err != nil {
		t.Fatal(err)
	}
	dbV, err := sdbms.New(fullV)
	if err != nil {
		t.Fatal(err)
	}
	dbPairs, _, err := dbV.WithinJoin(dbN, dist)
	if err != nil {
		t.Fatal(err)
	}
	pairs, _, err := eng.WithinJoin(context.Background(), dn, dv, dist, core.QueryOptions{Paradigm: core.FPR, Accel: core.AABB})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(dbPairs) {
		t.Fatalf("3DPro found %d within pairs, SDBMS %d", len(pairs), len(dbPairs))
	}
	for i := range pairs {
		if pairs[i].Target != dbPairs[i].Target || pairs[i].Source != dbPairs[i].Source {
			t.Fatalf("pair %d: %v vs %v", i, pairs[i], dbPairs[i])
		}
	}
}

func decodeTop(t *testing.T, d *core.Dataset) []*mesh.Mesh {
	t.Helper()
	out := make([]*mesh.Mesh, d.Len())
	for i := range out {
		m, err := d.Tileset.Object(int64(i)).Comp.Decode(d.MaxLOD())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}
