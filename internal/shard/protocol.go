// Package shard implements the sharded serving tier: a coordinator that
// space-partitions object placement across N engine shards, scatter-gathers
// per-shard query execution, and merges results and statistics so that the
// sum of per-shard counters equals the coordinator's totals.
//
// Placement is by space-partition cuboid: an object whose cuboid index is c
// belongs to home group c mod N, and group g is stored on shards g, g+1,
// …, (g+R−1) mod N for replication factor R (Options.Replicas; R = 1 is
// the unreplicated tier of PR 6). A join query touches pairs that straddle
// groups, so the coordinator computes, per group, the set of non-home
// source objects whose MBBs could pair with the group's home targets (the
// cross-group candidate set, derived purely from the R-tree MBB summaries
// it keeps for every dataset) and loans those objects to the serving
// replica for the duration of the query. Each replica then evaluates
// home-targets × (home-sources ∪ loans) and the coordinator concatenates:
// target sets are disjoint across groups and loan sets never contain the
// group's home objects, so no pair is produced twice and none is missed —
// on whichever replica the group is served.
//
// Robustness is the point of the tier: per-shard attempt deadlines derived
// from the request context, bounded retries with jittered exponential
// backoff for transport-class errors, optional hedged requests for
// stragglers, replica failover (a group whose primary is dead, timed out,
// or breaker-open is retried on the next replica — identical data, so the
// failed-over answer is byte-identical), and a per-shard circuit breaker
// (a quarantine.Breaker keyed by physical shard index). Only when every
// replica of a group is down does the query degrade under core.Degrade:
// the group's home target objects are reported in
// Stats.UncertainIDs/Uncertain and the query's certain answer — sound by
// the PPVP guarantees independently of the missing group — is returned.
// See DESIGN.md §10 and §13.
package shard

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/storage"
)

// Kind names a query type carried by a Request.
type Kind string

const (
	KindIntersect Kind = "intersect"
	KindWithin    Kind = "within"
	KindKNN       Kind = "knn"
	KindRange     Kind = "range"
	KindContains  Kind = "contains"
)

// Request is one shard's share of a coordinated query. The coordinator
// resolves dataset names and computes the loan set; the shard node resolves
// the names against its local (home) datasets.
type Request struct {
	Kind   Kind   `json:"kind"`
	Target string `json:"target"`
	Source string `json:"source,omitempty"`

	// Group is the home group whose target objects this request evaluates.
	// A shard may hold replicas of several groups; the group selects which
	// one, so a failed-over request on a replica produces exactly the
	// primary's answer.
	Group int `json:"group"`

	// Dist is the within-distance threshold (KindWithin).
	Dist float64 `json:"dist,omitempty"`
	// Box is the range-query box (KindRange).
	Box geom.Box3 `json:"box,omitempty"`
	// Point is the containment probe (KindContains).
	Point geom.Vec3 `json:"point,omitempty"`

	Opts core.QueryOptions `json:"opts"`

	// Loans are the non-home source objects the coordinator determined this
	// shard may need: every source whose MBB summary pairs with one of the
	// shard's home targets under the query predicate. The in-process
	// transport passes them by reference; a wire transport would ship the
	// compressed blobs (they are immutable after ingest).
	Loans []*storage.Object `json:"-"`
}

// Response is one shard's answer. Exactly one of Pairs/Neighbors/IDs is
// populated depending on the request kind; Stats always is.
type Response struct {
	Pairs     []core.Pair     `json:"pairs,omitempty"`
	Neighbors []core.Neighbor `json:"neighbors,omitempty"`
	IDs       []int64         `json:"ids,omitempty"`
	Stats     *core.Stats     `json:"stats"`
}
