// Package shard implements the sharded serving tier: a coordinator that
// space-partitions object placement across N engine shards, scatter-gathers
// per-shard query execution, and merges results and statistics so that the
// sum of per-shard counters equals the coordinator's totals.
//
// Placement is by space-partition cuboid: an object whose cuboid index is c
// lives on shard c mod N ("home" shard). A join query touches pairs that
// straddle shards, so the coordinator computes, per shard, the set of
// non-home source objects whose MBBs could pair with the shard's home
// targets (the cross-shard candidate set, derived purely from the R-tree
// MBB summaries it keeps for every dataset) and loans those objects to the
// shard for the duration of the query. Each shard then evaluates
// home-targets × (home-sources ∪ loans) and the coordinator concatenates:
// target sets are disjoint across shards and loan sets never contain home
// objects, so no pair is produced twice and none is missed.
//
// Robustness is the point of the tier: per-shard attempt deadlines derived
// from the request context, bounded retries with jittered exponential
// backoff for transport-class errors, optional hedged requests for
// stragglers, and a per-shard circuit breaker (a quarantine.Breaker keyed
// by shard index). A shard that is dead, timed out, or breaker-open does
// not fail the query under core.Degrade: its home target objects are
// reported in Stats.UncertainIDs/Uncertain and the query's certain answer
// — sound by the PPVP guarantees independently of the missing shard — is
// returned. See DESIGN.md §10.
package shard

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/storage"
)

// Kind names a query type carried by a Request.
type Kind string

const (
	KindIntersect Kind = "intersect"
	KindWithin    Kind = "within"
	KindKNN       Kind = "knn"
	KindRange     Kind = "range"
	KindContains  Kind = "contains"
)

// Request is one shard's share of a coordinated query. The coordinator
// resolves dataset names and computes the loan set; the shard node resolves
// the names against its local (home) datasets.
type Request struct {
	Kind   Kind   `json:"kind"`
	Target string `json:"target"`
	Source string `json:"source,omitempty"`

	// Dist is the within-distance threshold (KindWithin).
	Dist float64 `json:"dist,omitempty"`
	// Box is the range-query box (KindRange).
	Box geom.Box3 `json:"box,omitempty"`
	// Point is the containment probe (KindContains).
	Point geom.Vec3 `json:"point,omitempty"`

	Opts core.QueryOptions `json:"opts"`

	// Loans are the non-home source objects the coordinator determined this
	// shard may need: every source whose MBB summary pairs with one of the
	// shard's home targets under the query predicate. The in-process
	// transport passes them by reference; a wire transport would ship the
	// compressed blobs (they are immutable after ingest).
	Loans []*storage.Object `json:"-"`
}

// Response is one shard's answer. Exactly one of Pairs/Neighbors/IDs is
// populated depending on the request kind; Stats always is.
type Response struct {
	Pairs     []core.Pair     `json:"pairs,omitempty"`
	Neighbors []core.Neighbor `json:"neighbors,omitempty"`
	IDs       []int64         `json:"ids,omitempty"`
	Stats     *core.Stats     `json:"stats"`
}
