package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/storage"
)

// ErrTransport is the base error of transport-layer failures: the shard was
// unreachable, the link injected a fault, or the response failed its
// integrity check. Transport errors are transient by contract — the
// coordinator retries them; application errors from the engine are not
// wrapped and are never retried.
var ErrTransport = errors.New("shard: transport error")

// Transport delivers a request to one shard and returns its response. The
// in-process implementation calls the node directly; an HTTP or TCP
// implementation is a drop-in replacement (the protocol types are
// JSON-serializable, loans travel as compressed blobs).
//
// Send must honor ctx: the coordinator derives per-attempt deadlines from
// the request context and cancels the loser of a hedged pair.
type Transport interface {
	Send(ctx context.Context, shard int, req *Request) (*Response, error)
}

// InProc is the single-binary transport: shards are Nodes in the same
// process and requests are delivered by function call. Fault-injection
// points wrap both directions so chaos tests can sever or degrade the
// "link" of any shard without touching the engine underneath:
//
//	shard.send / shard.send.<i>  — before the request reaches shard i
//	shard.recv / shard.recv.<i>  — on shard i's response path; a corrupt
//	                               fault mangles the encoded response,
//	                               which the transport detects and reports
//	                               as a transport error (the wire-level
//	                               equivalent of a checksum mismatch)
//
// The unnumbered points fire for every shard; the numbered variants target
// one shard, which is how a chaos campaign kills shard 2 while its
// neighbors keep serving.
type InProc struct {
	nodes []*Node
}

// NewInProc builds the in-process transport over the given nodes.
func NewInProc(nodes []*Node) *InProc { return &InProc{nodes: nodes} }

// Send implements Transport.
func (t *InProc) Send(ctx context.Context, shard int, req *Request) (*Response, error) {
	if shard < 0 || shard >= len(t.nodes) {
		return nil, fmt.Errorf("%w: no shard %d", ErrTransport, shard)
	}
	for _, p := range []string{faultinject.PointShardSend, shardPoint(faultinject.PointShardSend, shard)} {
		if err := faultinject.Fire(p); err != nil {
			return nil, fmt.Errorf("%w: send to shard %d: %v", ErrTransport, shard, err)
		}
	}
	// A send-side sleep fault may have consumed the attempt budget.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := t.nodes[shard].Handle(ctx, req)
	if err != nil {
		return nil, err
	}
	return t.recv(shard, resp)
}

// recv passes the response through the receive-side fault points. The
// response is only encoded when a fault is armed — in production the whole
// function is two atomic loads.
func (t *InProc) recv(shard int, resp *Response) (*Response, error) {
	points := [2]string{faultinject.PointShardRecv, shardPoint(faultinject.PointShardRecv, shard)}
	armed := false
	for _, p := range points {
		if faultinject.Armed(p) {
			armed = true
			break
		}
	}
	if !armed {
		return resp, nil
	}
	enc, merr := json.Marshal(resp)
	if merr != nil {
		// Nothing to corrupt; fall back to error-style faults only.
		enc = nil
	}
	for _, p := range points {
		out, err := faultinject.FireData(p, enc)
		if err != nil {
			return nil, fmt.Errorf("%w: recv from shard %d: %v", ErrTransport, shard, err)
		}
		if !bytes.Equal(out, enc) {
			return nil, fmt.Errorf("%w: recv from shard %d: response failed integrity check", ErrTransport, shard)
		}
	}
	return resp, nil
}

// InstallDataset implements DatasetInstaller: the group's objects are
// assembled into a tileset and installed on the node by function call.
func (t *InProc) InstallDataset(ctx context.Context, shard int, name string, group int, grid storage.Grid, objs []*storage.Object) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if shard < 0 || shard >= len(t.nodes) {
		return fmt.Errorf("%w: no shard %d", ErrTransport, shard)
	}
	return t.nodes[shard].AddDataset(name, group, tilesetFor(grid, objs))
}

// CheckHealth implements HealthChecker. The in-process node is alive by
// construction, so health is the health of its "link": the send-side fault
// points decide, which is how chaos tests keep a killed shard failing its
// probes until the campaign revives it.
func (t *InProc) CheckHealth(ctx context.Context, shard int) error {
	if shard < 0 || shard >= len(t.nodes) {
		return fmt.Errorf("%w: no shard %d", ErrTransport, shard)
	}
	for _, p := range []string{faultinject.PointShardSend, shardPoint(faultinject.PointShardSend, shard)} {
		if err := faultinject.Fire(p); err != nil {
			return fmt.Errorf("%w: probe of shard %d: %v", ErrTransport, shard, err)
		}
	}
	return ctx.Err()
}

// tilesetFor rebuilds a by-ID tileset (nil holes included) from one group's
// object list.
func tilesetFor(grid storage.Grid, objs []*storage.Object) *storage.Tileset {
	var maxID int64 = -1
	for _, o := range objs {
		if o.ID > maxID {
			maxID = o.ID
		}
	}
	ts := &storage.Tileset{
		Grid:    grid,
		Objects: make([]*storage.Object, maxID+1),
		Tiles:   make(map[int][]*storage.Object),
	}
	for _, o := range objs {
		ts.Objects[o.ID] = o
		ts.Tiles[o.Cuboid] = append(ts.Tiles[o.Cuboid], o)
	}
	return ts
}

// shardPoint derives the shard-specific variant of a fault point.
func shardPoint(base string, shard int) string {
	return fmt.Sprintf("%s.%d", base, shard)
}
