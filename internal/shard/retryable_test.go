package shard

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countingTransport records every Send and fails (or stalls) according to
// its mode, so the classification tests can count attempts precisely.
type countingTransport struct {
	calls atomic.Int64
	// perShard, when non-nil, decides each call's outcome by physical
	// shard; otherwise every call returns the context's error.
	perShard func(ctx context.Context, shard int) (*Response, error)
}

func (t *countingTransport) Send(ctx context.Context, shard int, req *Request) (*Response, error) {
	t.calls.Add(1)
	if t.perShard != nil {
		return t.perShard(ctx, shard)
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestExpiredParentContextFailsFast pins the retry/failover classification:
// when the query's own deadline has expired, the group call must fail fast
// — no retry, no backoff sleep, no replica failover. Only per-attempt
// timeouts (ErrAttemptTimeout) may earn extra attempts.
func TestExpiredParentContextFailsFast(t *testing.T) {
	tr := &countingTransport{}
	c := NewWithTransport(tr, Options{
		Shards:       2,
		Replicas:     2,
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	start := time.Now()
	resp, ss := c.callGroup(ctx, 0, &Request{})
	if resp != nil || ss.Status != "error" {
		t.Fatalf("expired-context call: resp=%v status=%q", resp, ss.Status)
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatal("test context should be expired")
	}
	if n := tr.calls.Load(); n > 1 {
		t.Fatalf("expired query made %d transport calls, want at most 1 (no retry, no failover)", n)
	}
	if ss.Attempts > 1 {
		t.Fatalf("expired query recorded %d attempts, want at most 1", ss.Attempts)
	}
	if m := c.Metrics(); m.Retries != 0 || m.Failovers != 0 {
		t.Fatalf("expired query earned extra attempts: %+v", m)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired query took %v; it burned backoff sleeps", elapsed)
	}
}

// TestAttemptTimeoutFailsOver proves the complementary path: a per-attempt
// timeout (the shard is merely slow, the query is alive) is rebranded
// ErrAttemptTimeout and does earn retries and replica failover.
func TestAttemptTimeoutFailsOver(t *testing.T) {
	tr := &countingTransport{
		perShard: func(ctx context.Context, shard int) (*Response, error) {
			if shard == 0 {
				<-ctx.Done() // black hole: only the attempt deadline ends it
				return nil, ctx.Err()
			}
			return &Response{}, nil
		},
	}
	c := NewWithTransport(tr, Options{
		Shards:         2,
		Replicas:       2,
		Retries:        1,
		RetryBackoff:   time.Millisecond,
		AttemptTimeout: 10 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	resp, ss := c.callGroup(ctx, 0, &Request{})
	if resp == nil || ss.Status != "ok" {
		t.Fatalf("slow-primary call failed: status=%q err=%q", ss.Status, ss.Err)
	}
	if ss.Replica != 1 {
		t.Fatalf("served by replica %d, want failover to 1", ss.Replica)
	}
	// Shard 0 black-holed: 1 primary + 1 retry; then shard 1 answered.
	if ss.Attempts != 3 {
		t.Fatalf("recorded %d attempts, want 3 (2 timed out + 1 failover)", ss.Attempts)
	}
	m := c.Metrics()
	if m.Retries != 1 || m.Failovers != 1 || m.FailoverWins != 1 {
		t.Fatalf("classification counters off: %+v", m)
	}
}

// TestErrAttemptTimeoutClassification pins retryable/failoverEligible
// directly: transport errors and attempt timeouts qualify, application
// errors and bare query-deadline expiry do not.
func TestErrAttemptTimeoutClassification(t *testing.T) {
	live := context.Background()
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()

	appErr := errors.New("engine: bad geometry")
	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want bool
	}{
		{"transport", live, ErrTransport, true},
		{"attempt-timeout", live, ErrAttemptTimeout, true},
		{"wrapped-attempt-timeout", live, &wrapErr{ErrAttemptTimeout}, true},
		{"application", live, appErr, false},
		{"bare-deadline", live, context.DeadlineExceeded, false},
		{"expired-parent", expired, ErrTransport, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.ctx, tc.err); got != tc.want {
			t.Errorf("retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
	if failoverEligible(context.DeadlineExceeded) {
		t.Error("bare query-deadline expiry must not be failover-eligible")
	}
	if !failoverEligible(ErrAttemptTimeout) || !failoverEligible(ErrTransport) {
		t.Error("attempt timeouts and transport errors must be failover-eligible")
	}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }
