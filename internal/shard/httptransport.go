package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ppvp"
	"repro/internal/storage"
)

// The HTTP shard protocol. A worker process (3dpro-server -shard-worker)
// serves one Node over three routes:
//
//	POST /shard/query   — a wireRequest; answers a wireResponse whose body
//	                      carries a CRC32 integrity header
//	PUT  /shard/dataset — a wireInstall shipping one home group's objects
//	                      as compressed blobs
//	GET  /readyz        — liveness/readiness (also the prober's probe)
//
// Everything rides JSON: the protocol types are small, the payload bulk is
// the compressed blobs, and Go's encoding base64s []byte fields — fine for
// the loopback/LAN deployments this tier targets.
const (
	queryPath   = "/shard/query"
	datasetPath = "/shard/dataset"

	// crcHeader carries the CRC32 (IEEE) of the response body in decimal.
	// The client recomputes over the received bytes; a mismatch is a
	// transport error — the wire equivalent of the in-process transport's
	// integrity check.
	crcHeader = "X-Body-Crc32"
	// ridHeader propagates the coordinator-side request ID to workers so
	// one query's scatter legs correlate across process logs.
	ridHeader = "X-Request-Id"
)

// wireLoan is one loaned source object: identity plus the immutable
// compressed blob.
type wireLoan struct {
	ID     int64  `json:"id"`
	Cuboid int    `json:"cuboid"`
	Blob   []byte `json:"blob"`
}

// wireRequest is the query envelope. Loans travel alongside the Request
// (whose own Loans field is json:"-" — object pointers don't serialize).
type wireRequest struct {
	Req   *Request   `json:"req"`
	Loans []wireLoan `json:"loans,omitempty"`
}

// wireResponse is the answer envelope. Error carries an application error
// (engine failure) verbatim; transport-class failures never produce a
// wireResponse — they surface as connection errors, non-200 statuses, or
// integrity mismatches.
type wireResponse struct {
	Resp  *Response `json:"resp,omitempty"`
	Error string    `json:"error,omitempty"`
}

// wireInstall ships one home group of a dataset to a worker.
type wireInstall struct {
	Name    string       `json:"name"`
	Group   int          `json:"group"`
	Grid    storage.Grid `json:"grid"`
	Objects []wireLoan   `json:"objects"`
}

// ridCtxKey carries the request ID a frontend attached for propagation to
// shard workers.
type ridCtxKey struct{}

// WithRequestID returns a context carrying the request ID the HTTP
// transport stamps on outgoing shard calls (ridHeader).
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ridCtxKey{}, id)
}

// requestIDFrom extracts the propagated request ID ("" if none).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridCtxKey{}).(string)
	return id
}

// HTTPTransport implements Transport, DatasetInstaller, and HealthChecker
// over HTTP: shard i is the process listening at addrs[i]. Connections are
// pooled per worker and reused across attempts; per-attempt deadlines ride
// the request context (the coordinator derives them), so the transport
// itself sets no timeouts.
//
// Fault-injection points mirror the in-process transport at the network
// layer:
//
//	shard.net.send / shard.net.send.<i> — before the request is written
//	shard.net.recv / shard.net.recv.<i> — over the raw response body; a
//	                                      corrupt fault flips bytes, which
//	                                      the CRC check catches and reports
//	                                      as a transport error
type HTTPTransport struct {
	addrs  []string
	client *http.Client
}

// NewHTTPTransport builds the transport over the worker base URLs
// (e.g. "http://127.0.0.1:7801"), indexed by shard.
func NewHTTPTransport(addrs []string) *HTTPTransport {
	return &HTTPTransport{
		addrs: addrs,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// Close releases the pooled connections.
func (t *HTTPTransport) Close() { t.client.CloseIdleConnections() }

// Shards returns the number of workers the transport addresses.
func (t *HTTPTransport) Shards() int { return len(t.addrs) }

// Send implements Transport.
func (t *HTTPTransport) Send(ctx context.Context, shard int, req *Request) (*Response, error) {
	if shard < 0 || shard >= len(t.addrs) {
		return nil, fmt.Errorf("%w: no shard %d", ErrTransport, shard)
	}
	wreq := wireRequest{Req: req, Loans: make([]wireLoan, len(req.Loans))}
	for i, o := range req.Loans {
		wreq.Loans[i] = wireLoan{ID: o.ID, Cuboid: o.Cuboid, Blob: o.Comp.Bytes()}
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		return nil, fmt.Errorf("shard: encoding request for shard %d: %w", shard, err)
	}
	raw, err := t.roundTrip(ctx, shard, http.MethodPost, queryPath, body)
	if err != nil {
		return nil, err
	}
	var wresp wireResponse
	if err := json.Unmarshal(raw, &wresp); err != nil {
		return nil, fmt.Errorf("%w: shard %d: undecodable response: %v", ErrTransport, shard, err)
	}
	if wresp.Error != "" {
		// The worker ran the request and the engine failed: an application
		// error, never retried and never failed over.
		return nil, fmt.Errorf("shard %d: %s", shard, wresp.Error)
	}
	if wresp.Resp == nil {
		return nil, fmt.Errorf("%w: shard %d: empty response", ErrTransport, shard)
	}
	return wresp.Resp, nil
}

// InstallDataset implements DatasetInstaller.
func (t *HTTPTransport) InstallDataset(ctx context.Context, shard int, name string, group int, grid storage.Grid, objs []*storage.Object) error {
	if shard < 0 || shard >= len(t.addrs) {
		return fmt.Errorf("%w: no shard %d", ErrTransport, shard)
	}
	inst := wireInstall{Name: name, Group: group, Grid: grid, Objects: make([]wireLoan, len(objs))}
	for i, o := range objs {
		inst.Objects[i] = wireLoan{ID: o.ID, Cuboid: o.Cuboid, Blob: o.Comp.Bytes()}
	}
	body, err := json.Marshal(inst)
	if err != nil {
		return fmt.Errorf("shard: encoding dataset %q for shard %d: %w", name, shard, err)
	}
	_, err = t.roundTrip(ctx, shard, http.MethodPut, datasetPath, body)
	return err
}

// CheckHealth implements HealthChecker: a healthy worker answers /readyz
// with 200. A draining or degraded worker answers 503, which keeps its
// breaker open until it is genuinely back.
func (t *HTTPTransport) CheckHealth(ctx context.Context, shard int) error {
	if shard < 0 || shard >= len(t.addrs) {
		return fmt.Errorf("%w: no shard %d", ErrTransport, shard)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.addrs[shard]+"/readyz", nil)
	if err != nil {
		return fmt.Errorf("%w: probe of shard %d: %v", ErrTransport, shard, err)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("%w: probe of shard %d: %v", ErrTransport, shard, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: probe of shard %d: status %d", ErrTransport, shard, resp.StatusCode)
	}
	return nil
}

// roundTrip performs one HTTP exchange with a worker: network fault
// points, request-ID propagation, status mapping, and the body CRC check.
func (t *HTTPTransport) roundTrip(ctx context.Context, shard int, method, path string, body []byte) ([]byte, error) {
	for _, p := range []string{faultinject.PointShardNetSend, shardPoint(faultinject.PointShardNetSend, shard)} {
		if err := faultinject.Fire(p); err != nil {
			return nil, fmt.Errorf("%w: send to shard %d: %v", ErrTransport, shard, err)
		}
	}
	// A send-side delay fault may have consumed the attempt budget.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, method, t.addrs[shard]+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: shard %d: %v", ErrTransport, shard, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id := requestIDFrom(ctx); id != "" {
		req.Header.Set(ridHeader, id)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		// The context verdict (attempt timeout, hedge-loser cancellation,
		// query deadline) outranks the wrapped url.Error: the coordinator
		// classifies those, not the transport.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: shard %d: %v", ErrTransport, shard, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: shard %d: reading response: %v", ErrTransport, shard, err)
	}
	for _, p := range []string{faultinject.PointShardNetRecv, shardPoint(faultinject.PointShardNetRecv, shard)} {
		out, ferr := faultinject.FireData(p, raw)
		if ferr != nil {
			return nil, fmt.Errorf("%w: recv from shard %d: %v", ErrTransport, shard, ferr)
		}
		raw = out
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("%w: shard %d: status %d: %s", ErrTransport, shard, resp.StatusCode, firstLine(string(raw)))
	}
	if h := resp.Header.Get(crcHeader); h != "" {
		want, perr := strconv.ParseUint(h, 10, 32)
		if perr != nil || uint32(want) != crc32.ChecksumIEEE(raw) {
			return nil, fmt.Errorf("%w: recv from shard %d: response failed integrity check", ErrTransport, shard)
		}
	}
	return raw, nil
}

// WorkerMux returns the HTTP routes of a shard worker serving node: the
// query and dataset-install endpoints of the shard protocol. Frontend
// concerns — body limits, panic recovery, request-ID logging, /readyz,
// graceful drain — belong to the server wrapper (internal/server.Worker).
func WorkerMux(node *Node) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc(queryPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var wreq wireRequest
		if err := json.NewDecoder(r.Body).Decode(&wreq); err != nil || wreq.Req == nil {
			http.Error(w, "bad request body", http.StatusBadRequest)
			return
		}
		req := wreq.Req
		req.Loans = make([]*storage.Object, 0, len(wreq.Loans))
		for _, l := range wreq.Loans {
			comp, err := ppvp.FromBytes(l.Blob)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad loan blob %d: %v", l.ID, err), http.StatusBadRequest)
				return
			}
			req.Loans = append(req.Loans, &storage.Object{ID: l.ID, Cuboid: l.Cuboid, Comp: comp})
		}
		var wresp wireResponse
		resp, err := node.Handle(r.Context(), req)
		if err != nil {
			wresp.Error = err.Error()
		} else {
			wresp.Resp = resp
		}
		writeWire(w, &wresp)
	})
	mux.HandleFunc(datasetPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			http.Error(w, "PUT only", http.StatusMethodNotAllowed)
			return
		}
		var inst wireInstall
		if err := json.NewDecoder(r.Body).Decode(&inst); err != nil || inst.Name == "" {
			http.Error(w, "bad install body", http.StatusBadRequest)
			return
		}
		objs := make([]*storage.Object, 0, len(inst.Objects))
		for _, l := range inst.Objects {
			comp, err := ppvp.FromBytes(l.Blob)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad object blob %d: %v", l.ID, err), http.StatusBadRequest)
				return
			}
			objs = append(objs, &storage.Object{ID: l.ID, Cuboid: l.Cuboid, Comp: comp})
		}
		if err := node.AddDataset(inst.Name, inst.Group, tilesetFor(inst.Grid, objs)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// writeWire encodes a wire response with its integrity header.
func writeWire(w http.ResponseWriter, wresp *wireResponse) {
	body, err := json.Marshal(wresp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(crcHeader, strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 10))
	_, _ = w.Write(body)
}
