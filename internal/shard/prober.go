package shard

import (
	"context"
	"time"
)

// HealthChecker is the transport capability the background prober uses: a
// cheap liveness probe of one shard that never touches query state. The
// in-process transport answers from the fault-injection table; the HTTP
// transport hits the worker's /readyz.
type HealthChecker interface {
	CheckHealth(ctx context.Context, shard int) error
}

// proberTimeout bounds one health probe so a black-holing shard cannot
// wedge the prober loop.
const proberTimeout = 2 * time.Second

// StartProber launches the background health prober: every interval it
// walks the shards whose breakers are non-closed and, when a breaker's
// cooldown has elapsed (half-open), spends the breaker's single trial call
// on a CheckHealth probe instead of a live query. A healthy answer releases
// the breaker — so a restarted shard rejoins the replica rotation without a
// client query ever being risked on it; a failed probe re-opens the breaker
// for another cooldown. No-op if the transport lacks HealthChecker, if
// interval is non-positive, or if a prober is already running.
func (c *Coordinator) StartProber(interval time.Duration) {
	hc, ok := c.tr.(HealthChecker)
	if !ok || interval <= 0 {
		return
	}
	c.proberMu.Lock()
	defer c.proberMu.Unlock()
	if c.proberStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.proberStop, c.proberDone = stop, done
	go func() {
		defer close(done)
		c.probeLoop(hc, interval, stop)
	}()
}

// StopProber stops the background prober and waits for its goroutine to
// exit. Safe to call when no prober is running, and idempotent.
func (c *Coordinator) StopProber() {
	c.proberMu.Lock()
	stop, done := c.proberStop, c.proberDone
	c.proberStop, c.proberDone = nil, nil
	c.proberMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// probeLoop is the prober goroutine body. It holds no locks across probes
// and exits promptly on stop.
func (c *Coordinator) probeLoop(hc HealthChecker, interval time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.probeOnce(hc)
		case <-stop:
			return
		}
	}
}

// probeOnce probes every shard whose breaker currently admits a trial call.
// Breaker.Allow is the gate: it returns false while the cooldown runs and
// consumes the half-open trial slot when it has elapsed, so the prober and
// concurrent queries cannot double-spend the same trial.
func (c *Coordinator) probeOnce(hc HealthChecker) {
	for _, e := range c.breaker.Entries() {
		s := e.Key
		if s < 0 || s >= c.opts.Shards {
			continue
		}
		if !c.breaker.Allow(s) {
			continue
		}
		c.probes.Add(1)
		ctx, cancel := context.WithTimeout(context.Background(), proberTimeout)
		err := hc.CheckHealth(ctx, s)
		cancel()
		if err != nil {
			c.probeFailures.Add(1)
			c.breaker.Failure(s, firstLine(err.Error()))
			continue
		}
		c.probeRecoveries.Add(1)
		c.breaker.Success(s)
	}
}
