package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index/rtree"
	"repro/internal/quarantine"
	"repro/internal/storage"
)

// ErrUnknownDataset is returned for a query naming a dataset the
// coordinator has never been given.
var ErrUnknownDataset = errors.New("shard: unknown dataset")

// ErrShardFailed is the base error of a fail-fast query aborted by a shard
// failure; HTTP frontends map it to 502 (the backend, not the request, is
// at fault).
var ErrShardFailed = errors.New("shard: shard failed")

// ErrAllShardsFailed is returned when no shard produced an answer — with
// every relevant shard dead there is nothing sound to degrade to.
var ErrAllShardsFailed = errors.New("shard: all shards failed")

// ErrAttemptTimeout marks a per-attempt deadline expiry (Options.
// AttemptTimeout) as opposed to the parent query deadline: the shard was
// merely slow, so the attempt is retryable and the group may fail over to
// a replica. A bare context.DeadlineExceeded — the query itself expiring —
// is deliberately NOT retryable; see retryable.
var ErrAttemptTimeout = errors.New("shard: attempt timed out")

// Options tunes the coordinator.
type Options struct {
	// Shards is the number of shards (default 1).
	Shards int
	// Replicas is how many shards store each home group: group g lives on
	// shards (g+k) mod Shards for k in [0, Replicas). Default 1 (no
	// replication); clamped to Shards. With R > 1 the coordinator fails a
	// group over to the next replica on transport errors, attempt
	// timeouts, and open breakers, and only degrades when every replica is
	// down — surviving-replica answers are byte-identical to the clean
	// run.
	Replicas int
	// AttemptTimeout bounds each transport attempt, always as a child of
	// the request context so a query deadline caps it (default 0 = only
	// the request deadline applies).
	AttemptTimeout time.Duration
	// Retries is how many extra attempts a transport-class failure earns
	// (default 2; negative disables retries). Application errors from the
	// engine never retry.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling each
	// attempt with ±50% jitter (default 5ms; negative disables).
	RetryBackoff time.Duration
	// HedgeAfter, when positive, launches one hedge attempt if the primary
	// has not answered after this long; the first success wins (0 = off).
	HedgeAfter time.Duration
	// BreakerThreshold and BreakerCooldown configure the per-shard health
	// breaker (defaults per package quarantine: 3 failures, 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed seeds the retry-jitter RNG (default 1, so runs are
	// reproducible; chaos campaigns pass their campaign seed).
	Seed int64
}

func (o *Options) setDefaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Replicas > o.Shards {
		o.Replicas = o.Shards
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 5 * time.Millisecond
	} else if o.RetryBackoff < 0 {
		o.RetryBackoff = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// dsEntry is the coordinator's record of one dataset: the full copy (for
// MBB summaries, loans, and degradation accounting) plus the placement.
type dsEntry struct {
	full *core.Dataset
	// homeIDs[g] lists the object IDs of home group g, sorted. Group g's
	// primary is shard g; its replicas are shards (g+k) mod Shards.
	homeIDs [][]int64
	// groupOf[id] is the home group of object id (-1 for nil holes).
	groupOf []int32
}

// Coordinator fans queries out over shards and merges the answers. It is
// safe for concurrent use.
type Coordinator struct {
	opts    Options
	tr      Transport
	nodes   []*Node // non-nil only for the in-process tier
	breaker *quarantine.Breaker[int]

	mu       sync.RWMutex
	datasets map[string]*dsEntry

	rngMu sync.Mutex
	rng   *rand.Rand

	queries         atomic.Int64
	shardCalls      atomic.Int64
	retriesN        atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	shardErrors     atomic.Int64
	openSkips       atomic.Int64
	degradedQueries atomic.Int64
	failovers       atomic.Int64
	failoverWins    atomic.Int64
	probes          atomic.Int64
	probeRecoveries atomic.Int64
	probeFailures   atomic.Int64

	// proberMu guards the prober lifecycle (StartProber/Close may race).
	proberMu   sync.Mutex
	proberStop chan struct{}
	proberDone chan struct{}
}

// NewInProcess builds the single-binary sharded tier: opts.Shards nodes,
// each with its own engine configured by engOpts, connected by the
// in-process transport.
func NewInProcess(engOpts core.EngineOptions, opts Options) *Coordinator {
	opts.setDefaults()
	nodes := make([]*Node, opts.Shards)
	for i := range nodes {
		nodes[i] = NewNode(i, engOpts)
	}
	c := NewWithTransport(NewInProc(nodes), opts)
	c.nodes = nodes
	return c
}

// NewWithTransport builds a coordinator over an externally managed
// transport — the multi-process tier (an HTTPTransport over worker
// processes) or a test double. The transport must implement
// DatasetInstaller for AddDataset to work.
func NewWithTransport(tr Transport, opts Options) *Coordinator {
	opts.setDefaults()
	return &Coordinator{
		opts: opts,
		tr:   tr,
		breaker: quarantine.NewBreaker[int](quarantine.Options{
			Threshold: opts.BreakerThreshold,
			Cooldown:  opts.BreakerCooldown,
		}),
		datasets: make(map[string]*dsEntry),
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
}

// Close stops the health prober (if running) and releases every in-process
// node's engine.
func (c *Coordinator) Close() {
	c.StopProber()
	for _, n := range c.nodes {
		n.Close()
	}
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return c.opts.Shards }

// Replicas returns the replication factor.
func (c *Coordinator) Replicas() int { return c.opts.Replicas }

// Nodes exposes the shard nodes (tests and statistics).
func (c *Coordinator) Nodes() []*Node { return c.nodes }

// Breaker exposes the per-shard health breaker.
func (c *Coordinator) Breaker() *quarantine.Breaker[int] { return c.breaker }

// DatasetInstaller is the transport capability AddDataset requires: it
// ships one home group's objects to one shard. The in-process transport
// installs by function call; the HTTP transport PUTs the compressed blobs
// to the worker.
type DatasetInstaller interface {
	InstallDataset(ctx context.Context, shard int, name string, group int, grid storage.Grid, objs []*storage.Object) error
}

// AddDataset places a fully built dataset across the shards: each object's
// home group is its cuboid index mod Shards, so spatial neighbors land
// together and per-group tilesets keep their cache locality; group g is
// installed on shards (g+k) mod Shards for k < Replicas. The coordinator
// retains the full dataset for loan computation; re-adding a name
// replaces it.
func (c *Coordinator) AddDataset(d *core.Dataset) error {
	inst, ok := c.tr.(DatasetInstaller)
	if !ok {
		return errors.New("shard: AddDataset requires a transport that installs datasets")
	}
	n := c.opts.Shards
	full := d.Tileset
	entry := &dsEntry{
		full:    d,
		homeIDs: make([][]int64, n),
		groupOf: make([]int32, len(full.Objects)),
	}
	parts := make([][]*storage.Object, n)
	for id, o := range full.Objects {
		if o == nil {
			entry.groupOf[id] = -1
			continue
		}
		g := o.Cuboid % n
		entry.groupOf[id] = int32(g)
		entry.homeIDs[g] = append(entry.homeIDs[g], o.ID)
		parts[g] = append(parts[g], o)
	}
	ctx := context.Background()
	for g := 0; g < n; g++ {
		if len(parts[g]) == 0 {
			continue
		}
		for k := 0; k < c.opts.Replicas; k++ {
			s := (g + k) % n
			if err := inst.InstallDataset(ctx, s, d.Name, g, full.Grid, parts[g]); err != nil {
				return fmt.Errorf("shard: installing %q group %d on shard %d: %w", d.Name, g, s, err)
			}
		}
	}
	c.mu.Lock()
	c.datasets[d.Name] = entry
	c.mu.Unlock()
	return nil
}

func (c *Coordinator) dataset(name string) (*dsEntry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return e, nil
}

// Datasets lists the dataset names the coordinator serves, sorted.
func (c *Coordinator) Datasets() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.datasets))
	for name := range c.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IntersectJoin is the sharded core.Engine.IntersectJoin.
func (c *Coordinator) IntersectJoin(ctx context.Context, target, source string, q core.QueryOptions) ([]core.Pair, *core.Stats, error) {
	resp, st, err := c.joinQuery(ctx, KindIntersect, target, source, 0, q)
	if err != nil {
		return nil, st, err
	}
	return resp, st, nil
}

// WithinJoin is the sharded core.Engine.WithinJoin.
func (c *Coordinator) WithinJoin(ctx context.Context, target, source string, dist float64, q core.QueryOptions) ([]core.Pair, *core.Stats, error) {
	return c.joinQuery(ctx, KindWithin, target, source, dist, q)
}

// NNJoin is the sharded core.Engine.NNJoin.
func (c *Coordinator) NNJoin(ctx context.Context, target, source string, q core.QueryOptions) ([]core.Neighbor, *core.Stats, error) {
	q.K = 1
	return c.KNNJoin(ctx, target, source, q)
}

// KNNJoin is the sharded core.Engine.KNNJoin.
func (c *Coordinator) KNNJoin(ctx context.Context, target, source string, q core.QueryOptions) ([]core.Neighbor, *core.Stats, error) {
	if q.K <= 0 {
		q.K = 1
	}
	tgt, reqs, err := c.prepareJoin(KindKNN, target, source, 0, q)
	if err != nil {
		return nil, nil, err
	}
	resps, st, err := c.scatter(ctx, tgt, target, KindKNN, q, reqs)
	if err != nil {
		return nil, st, err
	}
	// Targets are disjoint across shards, so concatenation needs no
	// per-target merge — only the canonical order.
	var out []core.Neighbor
	for _, r := range resps {
		if r != nil {
			out = append(out, r.Neighbors...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target != out[j].Target {
			return out[i].Target < out[j].Target
		}
		//lint:ignore floateq exact tie-break between settled distances; equality only routes to the deterministic ID order
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Source < out[j].Source
	})
	return out, st, nil
}

// RangeQuery is the sharded core.Engine.RangeQuery.
func (c *Coordinator) RangeQuery(ctx context.Context, name string, box geom.Box3, q core.QueryOptions) ([]int64, *core.Stats, error) {
	return c.idQuery(ctx, &Request{Kind: KindRange, Target: name, Box: box, Opts: q}, name)
}

// ContainingObjects is the sharded core.Engine.ContainingObjects.
func (c *Coordinator) ContainingObjects(ctx context.Context, name string, p geom.Vec3, q core.QueryOptions) ([]int64, *core.Stats, error) {
	return c.idQuery(ctx, &Request{Kind: KindContains, Target: name, Point: p, Opts: q}, name)
}

func (c *Coordinator) idQuery(ctx context.Context, proto *Request, name string) ([]int64, *core.Stats, error) {
	tgt, err := c.dataset(name)
	if err != nil {
		return nil, nil, err
	}
	reqs := make([]*Request, c.opts.Shards)
	for s := range reqs {
		if len(tgt.homeIDs[s]) == 0 {
			continue
		}
		r := *proto
		r.Group = s
		reqs[s] = &r
	}
	resps, st, err := c.scatter(ctx, tgt, name, proto.Kind, proto.Opts, reqs)
	if err != nil {
		return nil, st, err
	}
	var out []int64
	for _, r := range resps {
		if r != nil {
			out = append(out, r.IDs...)
		}
	}
	slices.Sort(out)
	return out, st, nil
}

func (c *Coordinator) joinQuery(ctx context.Context, kind Kind, target, source string, dist float64, q core.QueryOptions) ([]core.Pair, *core.Stats, error) {
	tgt, reqs, err := c.prepareJoin(kind, target, source, dist, q)
	if err != nil {
		return nil, nil, err
	}
	resps, st, err := c.scatter(ctx, tgt, target, kind, q, reqs)
	if err != nil {
		return nil, st, err
	}
	var out []core.Pair
	for _, r := range resps {
		if r != nil {
			out = append(out, r.Pairs...)
		}
	}
	sortPairs(out)
	return out, st, nil
}

// prepareJoin resolves the datasets and builds the per-shard requests,
// loans included. Shards with no home target objects get a nil request
// (recorded as "skipped").
func (c *Coordinator) prepareJoin(kind Kind, target, source string, dist float64, q core.QueryOptions) (*dsEntry, []*Request, error) {
	tgt, err := c.dataset(target)
	if err != nil {
		return nil, nil, err
	}
	src := tgt
	if source != target {
		if src, err = c.dataset(source); err != nil {
			return nil, nil, err
		}
	}
	reqs := make([]*Request, c.opts.Shards)
	for s := range reqs {
		if len(tgt.homeIDs[s]) == 0 {
			continue
		}
		reqs[s] = &Request{
			Kind: kind, Target: target, Source: source, Group: s, Dist: dist, Opts: q,
			Loans: c.loansFor(kind, tgt, src, s, dist, q.K),
		}
	}
	return tgt, reqs, nil
}

// loansFor computes the cross-group candidate set for home group g: every
// source object not homed in g whose MBB summary could pair with one of
// g's home targets under the query predicate. The computation runs
// entirely on the coordinator's R-tree — no shard is consulted — and is a
// superset of the true cross-shard result pairs, so shipping exactly these
// objects preserves completeness:
//
//   - intersect: sources whose MBB intersects a home target's MBB (the
//     same filter the single-engine join starts from);
//   - within: sources whose MBB is within dist of a home target's MBB
//     (MINDIST pruning, matching rtree.SearchWithin);
//   - knn: each home target's rtree.NNCandidates set. Every true top-k
//     source of a target appears in that set: its MINDIST lower-bounds its
//     true distance, which is at most the k-th smallest candidate MAXDIST
//     — the traversal's retention threshold.
//
// Loans depend only on the group, not on which replica serves it, so a
// failed-over request reuses the same loan set and produces the same
// answer.
func (c *Coordinator) loansFor(kind Kind, tgt, src *dsEntry, g int, dist float64, k int) []*storage.Object {
	if kind == KindKNN && k <= 0 {
		k = 1
	}
	selfJoin := tgt == src
	tree := src.full.Tree()
	seen := make(map[int64]struct{})
	var loans []*storage.Object
	collect := func(id int64) {
		if id < int64(len(src.groupOf)) && src.groupOf[id] == int32(g) {
			return // home in this group already
		}
		if _, dup := seen[id]; dup {
			return
		}
		seen[id] = struct{}{}
		loans = append(loans, src.full.Tileset.Object(id))
	}
	for _, tid := range tgt.homeIDs[g] {
		o := tgt.full.Tileset.Object(tid)
		switch kind {
		case KindIntersect:
			tree.SearchIntersect(o.MBB(), func(ent rtree.Entry) bool {
				collect(ent.ID)
				return true
			})
		case KindWithin:
			r := tree.SearchWithin(o.MBB(), dist)
			for _, ent := range r.Definite {
				collect(ent.ID)
			}
			for _, ent := range r.Candidates {
				collect(ent.ID)
			}
		case KindKNN:
			var skip func(rtree.Entry) bool
			if selfJoin {
				skip = func(ent rtree.Entry) bool { return ent.ID == o.ID }
			}
			for _, cand := range tree.NNCandidates(o.MBB(), k, skip) {
				collect(cand.ID)
			}
		}
	}
	return loans
}

// scatter fans the per-shard requests out, gathers the responses, and
// builds the merged Stats whose counters are exactly the sum of the
// per-shard Stats (Stats.Shards carries the per-shard breakdown). A shard
// that fails all attempts — or whose breaker is open — degrades the query
// under core.Degrade: its home target objects are recorded as uncertain.
// Under core.FailFast (the default) the first shard failure aborts the
// query, as a single engine's first object failure would.
func (c *Coordinator) scatter(ctx context.Context, tgt *dsEntry, targetName string, kind Kind, q core.QueryOptions, reqs []*Request) ([]*Response, *core.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	c.queries.Add(1)
	n := c.opts.Shards

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	resps := make([]*Response, n)
	shardStats := make([]core.ShardStat, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		if reqs[s] == nil {
			shardStats[s] = core.ShardStat{Shard: s, Status: "skipped", Replica: -1}
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			resp, ss := c.callGroup(ctx, s, reqs[s])
			resps[s], shardStats[s] = resp, ss
			if ss.Status != "ok" && q.OnError != core.Degrade {
				cancel() // fail fast: abort the other shards promptly
			}
		}(s)
	}
	wg.Wait()

	merged := &core.Stats{}
	succeeded, failed := 0, 0
	var firstErr error
	for s := 0; s < n; s++ {
		ss := &shardStats[s]
		switch ss.Status {
		case "ok":
			succeeded++
		case "skipped":
		default:
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: shard %d: %s", ErrShardFailed, s, ss.Err)
			}
			// Degraded accounting lives in a synthesized per-shard Stats so
			// the Σ-per-shard invariant covers the uncertainty lists too.
			ss.Stats = c.degradeStats(tgt, targetName, kind, s, ss.Err)
		}
		merged.Merge(ss.Stats)
	}
	merged.Shards = shardStats
	merged.Elapsed = time.Since(start)

	if failed > 0 {
		// The request itself expired or was abandoned: report that, not a
		// shard failure — the shards only died because the query did.
		if perr := parent.Err(); perr != nil {
			return nil, merged, perr
		}
		if q.OnError != core.Degrade {
			return nil, merged, firstErr
		}
		if succeeded == 0 {
			return nil, merged, fmt.Errorf("%w: %v", ErrAllShardsFailed, firstErr)
		}
		c.degradedQueries.Add(1)
	}
	return resps, merged, nil
}

// degradeStats synthesizes the degradation accounting of a failed shard:
// every home target object of the shard is unsettled. IDs go to
// UncertainIDs at object granularity; join kinds additionally record the
// pair-granularity marker {target, -1} ("unknown candidate set of that
// target", the convention core's degrader uses when a target decode
// fails). One Degraded entry records the shard failure itself.
func (c *Coordinator) degradeStats(tgt *dsEntry, targetName string, kind Kind, s int, errMsg string) *core.Stats {
	ids := tgt.homeIDs[s]
	st := &core.Stats{
		UncertainIDs: slices.Clone(ids),
		Degraded: []core.ObjectError{{
			Dataset: targetName,
			Object:  -1,
			Err:     firstLine(fmt.Sprintf("shard %d: %s", s, errMsg)),
		}},
	}
	switch kind {
	case KindIntersect, KindWithin, KindKNN:
		st.Uncertain = make([]core.Pair, len(ids))
		for i, id := range ids {
			st.Uncertain[i] = core.Pair{Target: id, Source: -1}
		}
	}
	return st
}

// callGroup serves one home group's request, walking its replica chain —
// physical shards (g+k) mod Shards for k < Replicas — until a replica
// answers. Each replica gets the full breaker/retry/hedge treatment of the
// unreplicated tier; the chain advances past a replica whose breaker is
// open or whose attempts exhausted on a transport-class error or attempt
// timeout. Application errors and parent-context expiry stop the chain:
// a replica holding identical data would fail identically, and a dead
// query must not burn more attempts. ShardStat.Shard is the group index;
// Replica records which link answered.
func (c *Coordinator) callGroup(ctx context.Context, g int, req *Request) (resp *Response, ss core.ShardStat) {
	ss = core.ShardStat{Shard: g, Replica: -1}
	start := time.Now()
	defer func() { ss.Elapsed = time.Since(start) }()

	var lastErr error
	for k := 0; k < c.opts.Replicas; k++ {
		s := (g + k) % c.opts.Shards
		if !c.breaker.Allow(s) {
			c.openSkips.Add(1)
			continue
		}
		if k > 0 {
			c.failovers.Add(1)
		}
		r, err := c.callReplica(ctx, s, req, &ss)
		if err == nil {
			ss.Status = "ok"
			ss.Replica = k
			ss.Stats = r.Stats
			if k > 0 {
				c.failoverWins.Add(1)
			}
			return r, ss
		}
		lastErr = err
		if ctx.Err() != nil || !failoverEligible(err) {
			break
		}
	}
	if lastErr == nil {
		// Every replica's breaker refused the call without a single attempt.
		ss.Status = "open"
		ss.Err = "circuit open"
		return nil, ss
	}
	ss.Status = "error"
	ss.Err = firstLine(lastErr.Error())
	return nil, ss
}

// callReplica runs one physical shard's request through the retry loop and
// optional hedging, maintaining the shard's breaker account.
func (c *Coordinator) callReplica(ctx context.Context, s int, req *Request, ss *core.ShardStat) (*Response, error) {
	backoff := c.opts.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		r, hedged, hedgeWon, n, err := c.attempt(ctx, s, req)
		c.shardCalls.Add(int64(n))
		ss.Attempts += n
		ss.Hedged = ss.Hedged || hedged
		if err == nil {
			if hedgeWon {
				ss.HedgeWon = true
				c.hedgeWins.Add(1)
			}
			c.breaker.Success(s)
			return r, nil
		}
		lastErr = err
		if attempt >= c.opts.Retries || !retryable(ctx, err) {
			break
		}
		c.retriesN.Add(1)
		if !sleepCtx(ctx, c.jitter(backoff)) {
			break
		}
		backoff *= 2
	}

	if ctx.Err() != nil {
		// The query itself is gone (deadline or fail-fast abort): don't
		// punish the shard — a canceled probe proves nothing about its
		// health.
		c.breaker.Release(s)
	} else {
		c.shardErrors.Add(1)
		c.breaker.Failure(s, firstLine(lastErr.Error()))
	}
	return nil, lastErr
}

// attempt runs one transport attempt, hedging it with a second concurrent
// attempt if the primary has not answered within HedgeAfter. The first
// success wins and the loser's context is canceled; attempts counts how
// many transports were launched (1 or 2).
func (c *Coordinator) attempt(ctx context.Context, s int, req *Request) (resp *Response, hedged, hedgeWon bool, attempts int, err error) {
	type result struct {
		resp  *Response
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(hedge bool) context.CancelFunc {
		// Always derive a cancelable context, even without an attempt
		// timeout: the deferred cancels below are how the losing attempt of
		// a hedged pair gets torn down. With the parent ctx passed through
		// unwrapped, the loser's transport call would keep running until
		// the whole query finished.
		var actx context.Context
		var cancel context.CancelFunc
		if c.opts.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.opts.AttemptTimeout)
		} else {
			actx, cancel = context.WithCancel(ctx)
		}
		go func() {
			r, e := c.tr.Send(actx, s, req)
			// A deadline expiry that came from the attempt context while the
			// parent is still alive is a per-attempt timeout: rebrand it so
			// retry/failover classification can tell it apart from the query
			// deadline expiring.
			if e != nil && ctx.Err() == nil && actx.Err() != nil && errors.Is(e, context.DeadlineExceeded) {
				e = fmt.Errorf("%w after %v: %v", ErrAttemptTimeout, c.opts.AttemptTimeout, e)
			}
			ch <- result{r, e, hedge}
		}()
		return cancel
	}
	cancelPrimary := launch(false)
	defer cancelPrimary()
	attempts, outstanding := 1, 1

	var hedgeC <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		t := time.NewTimer(c.opts.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				return r.resp, hedged, r.hedge, attempts, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, hedged, false, attempts, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			attempts++
			outstanding++
			c.hedges.Add(1)
			cancelHedge := launch(true)
			defer cancelHedge()
		case <-ctx.Done():
			return nil, hedged, false, attempts, ctx.Err()
		}
	}
}

// retryable classifies an attempt failure: transport-class errors and
// per-attempt timeouts are transient (retry); application errors and
// request cancellation are not. A bare context.DeadlineExceeded is the
// query's own deadline expiring — retrying (or failing over) a dead query
// would only burn attempts against its corpse, so it deliberately does not
// qualify; only the ErrAttemptTimeout rebrand (attempt deadline fired while
// the parent is alive) does.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return errors.Is(err, ErrTransport) || errors.Is(err, ErrAttemptTimeout)
}

// failoverEligible reports whether a replica's exhausted attempts justify
// advancing to the next replica: only transport-class failures and attempt
// timeouts do. An application error would reproduce identically on a
// replica holding the same data.
func failoverEligible(err error) bool {
	return errors.Is(err, ErrTransport) || errors.Is(err, ErrAttemptTimeout)
}

// jitter spreads a backoff uniformly over [d/2, 3d/2) so synchronized
// retries against a recovering shard don't stampede.
func (c *Coordinator) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

// sleepCtx sleeps for d, returning false if ctx expires first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// ShardHealth is one shard's health snapshot for /statusz.
type ShardHealth struct {
	Shard int `json:"shard"`
	// State is the breaker state: "closed" (healthy), "open", or
	// "half-open".
	State    string `json:"state"`
	Failures int    `json:"failures,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Objects counts the home objects placed on the shard across datasets.
	Objects int `json:"objects"`
}

// Health returns the per-shard health snapshot, ordered by shard index.
func (c *Coordinator) Health() []ShardHealth {
	out := make([]ShardHealth, c.opts.Shards)
	for s := range out {
		out[s] = ShardHealth{Shard: s, State: quarantine.Closed.String()}
	}
	for _, e := range c.breaker.Entries() {
		if e.Key < 0 || e.Key >= len(out) {
			continue
		}
		out[e.Key].State = c.breaker.State(e.Key).String()
		out[e.Key].Failures = e.Failures
		out[e.Key].Reason = e.Reason
	}
	c.mu.RLock()
	for _, e := range c.datasets {
		for g, ids := range e.homeIDs {
			for k := 0; k < c.opts.Replicas; k++ {
				out[(g+k)%c.opts.Shards].Objects += len(ids)
			}
		}
	}
	c.mu.RUnlock()
	return out
}

// Degraded reports whether any shard's breaker is currently non-closed —
// the condition under which /readyz reports degraded readiness.
func (c *Coordinator) Degraded() bool { return c.breaker.Len() > 0 }

// Metrics is a snapshot of the coordinator's counters, the source of the
// threedpro_shard_* metric families.
type Metrics struct {
	// Queries counts coordinated queries; DegradedQueries the subset that
	// lost at least one shard and returned a degraded answer.
	Queries         int64 `json:"queries"`
	DegradedQueries int64 `json:"degraded_queries"`
	// ShardCalls counts transport attempts (retries and hedges included);
	// Retries and Hedges count the extra attempts by cause, HedgeWins the
	// hedges whose response was accepted.
	ShardCalls int64 `json:"shard_calls"`
	Retries    int64 `json:"retries"`
	Hedges     int64 `json:"hedges"`
	HedgeWins  int64 `json:"hedge_wins"`
	// ShardErrors counts shard calls that exhausted their attempts;
	// OpenSkips counts calls refused by an open breaker.
	ShardErrors int64 `json:"shard_errors"`
	OpenSkips   int64 `json:"open_skips"`
	// Failovers counts replica-chain advances past a failed or breaker-open
	// replica; FailoverWins the advances whose replica produced the answer.
	Failovers    int64 `json:"failovers"`
	FailoverWins int64 `json:"failover_wins"`
	// Probes counts active health probes issued by the background prober;
	// ProbeRecoveries the probes whose success released a shard's breaker;
	// ProbeFailures the probes that failed.
	Probes          int64 `json:"probes"`
	ProbeRecoveries int64 `json:"probe_recoveries"`
	ProbeFailures   int64 `json:"probe_failures"`
}

// Metrics returns the counter snapshot.
func (c *Coordinator) Metrics() Metrics {
	return Metrics{
		Queries:         c.queries.Load(),
		DegradedQueries: c.degradedQueries.Load(),
		ShardCalls:      c.shardCalls.Load(),
		Retries:         c.retriesN.Load(),
		Hedges:          c.hedges.Load(),
		HedgeWins:       c.hedgeWins.Load(),
		ShardErrors:     c.shardErrors.Load(),
		OpenSkips:       c.openSkips.Load(),
		Failovers:       c.failovers.Load(),
		FailoverWins:    c.failoverWins.Load(),
		Probes:          c.probes.Load(),
		ProbeRecoveries: c.probeRecoveries.Load(),
		ProbeFailures:   c.probeFailures.Load(),
	}
}
