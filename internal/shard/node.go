package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// Node is one shard: an engine plus the home-group subsets of every
// dataset it replicates. A node only ever sees the objects of the groups
// placed on it and the per-query loans the coordinator ships; it has no
// knowledge of the other shards. Under replication a node holds several
// groups of the same dataset (its primary group plus the replica groups
// that wrap onto it), kept separate so a request serves exactly one
// group's targets.
type Node struct {
	id  int
	eng *core.Engine

	mu       sync.RWMutex
	datasets map[string]map[int]*core.Dataset // name → group → home subset
}

// NewNode creates a shard node with its own engine (decode cache, GPU
// device, and object quarantine are all per-shard).
func NewNode(id int, opts core.EngineOptions) *Node {
	return &Node{id: id, eng: core.NewEngine(opts), datasets: make(map[string]map[int]*core.Dataset)}
}

// ID returns the shard index.
func (n *Node) ID() int { return n.id }

// Engine exposes the node's engine (for statistics and tests).
func (n *Node) Engine() *core.Engine { return n.eng }

// Close releases the node's engine resources.
func (n *Node) Close() { n.eng.Close() }

// AddDataset installs one home group's subset of a dataset. A nil or empty
// tileset means no object of that group lives here; queries naming it
// return empty results. Re-adding a (name, group) replaces the subset.
func (n *Node) AddDataset(name string, group int, ts *storage.Tileset) error {
	if ts == nil || !hasObjects(ts) {
		return nil
	}
	d, err := n.eng.AssembleDataset(name, ts)
	if err != nil {
		return fmt.Errorf("shard %d: %w", n.id, err)
	}
	n.mu.Lock()
	if n.datasets[name] == nil {
		n.datasets[name] = make(map[int]*core.Dataset)
	}
	n.datasets[name][group] = d
	n.mu.Unlock()
	return nil
}

func hasObjects(ts *storage.Tileset) bool {
	for _, o := range ts.Objects {
		if o != nil {
			return true
		}
	}
	return false
}

func (n *Node) dataset(name string, group int) *core.Dataset {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.datasets[name][group]
}

// Handle executes one request against the requested group's home objects.
// Join kinds run home-targets × home-sources plus home-targets × loans and
// merge; the loan set never contains the group's home objects, so the two
// sub-joins partition the candidate pairs. The context carries the
// per-attempt deadline the coordinator derived from the request context;
// the engine honors it.
func (n *Node) Handle(ctx context.Context, req *Request) (*Response, error) {
	start := time.Now()
	target := n.dataset(req.Target, req.Group)
	if target == nil {
		// No home objects of the target dataset: an empty, well-formed
		// answer (the coordinator marks such shards "skipped" when it can
		// tell in advance).
		return &Response{Stats: &core.Stats{Elapsed: time.Since(start)}}, nil
	}
	switch req.Kind {
	case KindRange:
		ids, st, err := n.eng.RangeQuery(ctx, target, req.Box, req.Opts)
		if err != nil {
			return nil, err
		}
		return &Response{IDs: ids, Stats: st}, nil
	case KindContains:
		ids, st, err := n.eng.ContainingObjects(ctx, target, req.Point, req.Opts)
		if err != nil {
			return nil, err
		}
		return &Response{IDs: ids, Stats: st}, nil
	case KindIntersect, KindWithin, KindKNN:
		return n.handleJoin(ctx, target, req, start)
	default:
		return nil, fmt.Errorf("shard %d: unknown request kind %q", n.id, req.Kind)
	}
}

// handleJoin runs the two sub-joins of a join request and merges them.
func (n *Node) handleJoin(ctx context.Context, target *core.Dataset, req *Request, start time.Time) (*Response, error) {
	sources := make([]*core.Dataset, 0, 2)
	if home := n.dataset(req.Source, req.Group); home != nil {
		sources = append(sources, home)
	}
	if len(req.Loans) > 0 {
		loan, err := n.assembleLoans(req.Source, req.Loans)
		if err != nil {
			return nil, err
		}
		sources = append(sources, loan)
	}

	resp := &Response{Stats: &core.Stats{}}
	// Per-source neighbor lists are merged per target afterwards (KNN).
	var neighborParts [][]core.Neighbor
	for _, src := range sources {
		switch req.Kind {
		case KindIntersect:
			pairs, st, err := n.eng.IntersectJoin(ctx, target, src, req.Opts)
			if err != nil {
				return nil, err
			}
			resp.Pairs = append(resp.Pairs, pairs...)
			resp.Stats.Merge(st)
		case KindWithin:
			pairs, st, err := n.eng.WithinJoin(ctx, target, src, req.Dist, req.Opts)
			if err != nil {
				return nil, err
			}
			resp.Pairs = append(resp.Pairs, pairs...)
			resp.Stats.Merge(st)
		case KindKNN:
			nbrs, st, err := n.eng.KNNJoin(ctx, target, src, req.Opts)
			if err != nil {
				return nil, err
			}
			neighborParts = append(neighborParts, nbrs)
			resp.Stats.Merge(st)
		}
	}
	switch req.Kind {
	case KindIntersect, KindWithin:
		sortPairs(resp.Pairs)
	case KindKNN:
		k := req.Opts.K
		if k <= 0 {
			k = 1
		}
		resp.Neighbors = mergeTopK(neighborParts, k)
	}
	resp.Stats.Elapsed = time.Since(start)
	return resp, nil
}

// assembleLoans builds a per-query dataset from the loaned source objects.
// Object IDs are global (the coordinator's), so pairs produced against
// loans line up with pairs produced anywhere else.
func (n *Node) assembleLoans(source string, loans []*storage.Object) (*core.Dataset, error) {
	var maxID int64 = -1
	for _, o := range loans {
		if o.ID > maxID {
			maxID = o.ID
		}
	}
	ts := &storage.Tileset{
		Objects: make([]*storage.Object, maxID+1),
		Tiles:   make(map[int][]*storage.Object),
	}
	for _, o := range loans {
		ts.Objects[o.ID] = o
		ts.Tiles[o.Cuboid] = append(ts.Tiles[o.Cuboid], o)
	}
	return n.eng.AssembleDataset(source+"@loan", ts)
}

// mergeTopK merges per-source KNN result lists into the top k per target.
// Each part is a correct top-k against its own source subset and the
// subsets are disjoint, so the union's k smallest per target are the true
// top k against the union.
func mergeTopK(parts [][]core.Neighbor, k int) []core.Neighbor {
	if len(parts) == 1 {
		return parts[0]
	}
	var all []core.Neighbor
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Target != all[j].Target {
			return all[i].Target < all[j].Target
		}
		//lint:ignore floateq exact tie-break between settled distances; equality only routes to the deterministic ID order
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Source < all[j].Source
	})
	out := all[:0]
	var cur int64 = -1
	taken := 0
	for _, nb := range all {
		if nb.Target != cur {
			cur, taken = nb.Target, 0
		}
		if taken < k {
			out = append(out, nb)
			taken++
		}
	}
	return out
}

// sortPairs orders pairs by target then source — the same deterministic
// order the single-engine joins guarantee.
func sortPairs(pairs []core.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Target != pairs[j].Target {
			return pairs[i].Target < pairs[j].Target
		}
		return pairs[i].Source < pairs[j].Source
	})
}
