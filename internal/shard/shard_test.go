package shard_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/ppvp"
	"repro/internal/shard"
)

func testEngineOptions() core.EngineOptions {
	return core.EngineOptions{CacheBytes: 64 << 20, Workers: 4, GPUWorkers: 2, GPUBatch: 512}
}

func fastDatasetOptions() core.DatasetOptions {
	c := ppvp.DefaultOptions()
	c.Rounds = 6
	return core.DatasetOptions{Compression: c, Cuboids: 8, PartitionTargetFaces: 64}
}

// buildPair ingests two overlapping nuclei datasets (intersection work).
func buildPair(t *testing.T, e *core.Engine) (*core.Dataset, *core.Dataset) {
	t.Helper()
	gen := datagen.NucleiOptions{Count: 12, SubdivisionLevel: 1, Seed: 21}
	a, err := e.BuildDataset("nucleiA", datagen.Nuclei(gen), fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen2 := gen
	gen2.Seed = 22
	gen2.Offset = geom.V(2.5, 1.5, 1)
	b, err := e.BuildDataset("nucleiB", datagen.Nuclei(gen2), fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// buildDisjointPair ingests two interior-disjoint datasets (distance work).
func buildDisjointPair(t *testing.T, e *core.Engine) (*core.Dataset, *core.Dataset) {
	t.Helper()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(60, 60, 60)}
	ma, mb := datagen.NucleiPair(datagen.NucleiOptions{Count: 10, SubdivisionLevel: 1, Seed: 31, Space: space})
	a, err := e.BuildDataset("disjA", ma, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.BuildDataset("disjB", mb, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func testCoordinator(t *testing.T, opts shard.Options, datasets ...*core.Dataset) *shard.Coordinator {
	t.Helper()
	c := shard.NewInProcess(testEngineOptions(), opts)
	t.Cleanup(c.Close)
	for _, d := range datasets {
		if err := c.AddDataset(d); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// sameSlice compares result slices, treating nil and empty as equal (the
// coordinator concatenates into a nil slice when every shard is empty).
func sameSlice[T any](got, want []T) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

// TestShardedEquivalence proves the coordinator's scatter-gather returns
// byte-for-byte the single-engine answer for every query kind, including
// self-joins (whose cross-shard pairs exercise the loan path heavily).
func TestShardedEquivalence(t *testing.T) {
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	da, db := buildDisjointPair(t, e)
	c := testCoordinator(t, shard.Options{Shards: 4}, a, b, da, db)
	ctx := context.Background()
	q := core.QueryOptions{}

	t.Run("intersect", func(t *testing.T) {
		want, _, err := e.IntersectJoin(ctx, a, b, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("sharded intersect differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("intersect-self", func(t *testing.T) {
		want, _, err := e.IntersectJoin(ctx, a, a, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.IntersectJoin(ctx, "nucleiA", "nucleiA", q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("sharded self-intersect differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("within", func(t *testing.T) {
		want, _, err := e.WithinJoin(ctx, da, db, 8, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.WithinJoin(ctx, "disjA", "disjB", 8, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("sharded within differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("nn", func(t *testing.T) {
		want, _, err := e.NNJoin(ctx, da, db, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.NNJoin(ctx, "disjA", "disjB", q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("sharded nn differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("knn", func(t *testing.T) {
		kq := q
		kq.K = 3
		want, _, err := e.KNNJoin(ctx, da, db, kq)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.KNNJoin(ctx, "disjA", "disjB", kq)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("sharded knn differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("knn-self", func(t *testing.T) {
		kq := q
		kq.K = 2
		want, _, err := e.KNNJoin(ctx, da, da, kq)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.KNNJoin(ctx, "disjA", "disjA", kq)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("sharded self-knn differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("range", func(t *testing.T) {
		bounds := a.Tree().Bounds()
		box := geom.Box3{Min: bounds.Min, Max: bounds.Min.Lerp(bounds.Max, 0.5)}
		want, _, err := e.RangeQuery(ctx, a, box, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.RangeQuery(ctx, "nucleiA", box, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("sharded range differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("contains", func(t *testing.T) {
		p := a.Tileset.Object(0).MBB().Center()
		want, _, err := e.ContainingObjects(ctx, a, p, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.ContainingObjects(ctx, "nucleiA", p, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("sharded contains differs:\n got %v\nwant %v", got, want)
		}
	})
}

// counterSums extracts the additive counters checked by the Σ-invariant.
func counterSums(s *core.Stats) map[string]int64 {
	m := map[string]int64{
		"candidates":      s.Candidates,
		"results":         s.Results,
		"decodes":         s.Decodes,
		"cacheHits":       s.CacheHits,
		"warmStarts":      s.WarmStarts,
		"roundsApplied":   s.RoundsApplied,
		"roundsSkipped":   s.RoundsSkipped,
		"quarantineSkips": s.QuarantineSkips,
		"decodeRetries":   s.DecodeRetries,
		"decodeFailures":  s.DecodeFailures,
		"uncertain":       int64(len(s.Uncertain)),
		"uncertainIDs":    int64(len(s.UncertainIDs)),
		"degraded":        int64(len(s.Degraded)),
	}
	for _, v := range s.PairsEvaluated {
		m["pairsEvaluated"] += v
	}
	for _, v := range s.PairsPruned {
		m["pairsPruned"] += v
	}
	return m
}

// TestShardStatsInvariant asserts the exact-attribution contract of the
// tier: the coordinator's merged counters equal the sum of the per-shard
// Stats it reports in Stats.Shards.
func TestShardStatsInvariant(t *testing.T) {
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	c := testCoordinator(t, shard.Options{Shards: 4}, a, b)

	_, st, err := c.IntersectJoin(context.Background(), "nucleiA", "nucleiB", core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("Stats.Shards has %d entries, want 4", len(st.Shards))
	}
	sum := map[string]int64{}
	for _, ss := range st.Shards {
		if ss.Status != "ok" && ss.Status != "skipped" {
			t.Fatalf("shard %d status %q (%s)", ss.Shard, ss.Status, ss.Err)
		}
		if ss.Stats == nil {
			if ss.Status == "ok" {
				t.Fatalf("shard %d ok but has no stats", ss.Shard)
			}
			continue
		}
		for k, v := range counterSums(ss.Stats) {
			sum[k] += v
		}
	}
	total := counterSums(st)
	if !reflect.DeepEqual(sum, total) {
		t.Fatalf("Σ per-shard != coordinator totals:\n  Σ = %v\n  total = %v", sum, total)
	}
	if total["results"] == 0 {
		t.Fatal("join produced no results; fixture too sparse to prove anything")
	}
}

func TestUnknownDataset(t *testing.T) {
	c := testCoordinator(t, shard.Options{Shards: 2})
	_, _, err := c.IntersectJoin(context.Background(), "nope", "nope", core.QueryOptions{})
	if !errors.Is(err, shard.ErrUnknownDataset) {
		t.Fatalf("err = %v, want ErrUnknownDataset", err)
	}
	_, _, err = c.RangeQuery(context.Background(), "nope", geom.Box3{}, core.QueryOptions{})
	if !errors.Is(err, shard.ErrUnknownDataset) {
		t.Fatalf("range err = %v, want ErrUnknownDataset", err)
	}
}

// TestPlacementCoversAllObjects checks every object is homed on exactly one
// shard and the shard health snapshot agrees with the placement.
func TestPlacementCoversAllObjects(t *testing.T) {
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, _ := buildPair(t, e)
	c := testCoordinator(t, shard.Options{Shards: 3}, a)

	total := 0
	for _, h := range c.Health() {
		if h.State != "closed" {
			t.Fatalf("fresh shard %d state %q", h.Shard, h.State)
		}
		total += h.Objects
	}
	if total != a.Len() {
		t.Fatalf("placement covers %d objects, dataset has %d", total, a.Len())
	}
	if c.Degraded() {
		t.Fatal("fresh coordinator reports degraded")
	}
}
