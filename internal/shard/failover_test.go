package shard_test

// Replica failover over the in-process transport: with Replicas > 1 a dead
// shard must not cost any certainty — the group fails over to the next
// replica, whose answer is byte-identical. Only when every replica of a
// group is dead does the PR-6 degradation contract apply, and the active
// prober must rejoin a healed shard without query traffic.

import (
	"context"
	"slices"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/shard"
)

// TestReplicaFailoverExact kills one physical shard of a replicated tier
// and asserts the answer stays byte-equal to the clean run with zero
// uncertainty: the dead shard's home group is served by its replica.
func TestReplicaFailoverExact(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	const shards = 4
	ctx := context.Background()

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	c := testCoordinator(t, shard.Options{
		Shards:       shards,
		Replicas:     2,
		Retries:      1,
		RetryBackoff: time.Millisecond,
	}, a, b)
	faultinject.Arm(killPoint(1), faultinject.Fault{Err: faultinject.ErrInjected})

	// Even FailFast succeeds: failover is not degradation.
	got, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{})
	if err != nil {
		t.Fatalf("query with one dead replica failed: %v", err)
	}
	if !sameSlice(got, clean) {
		t.Fatalf("failed-over answer differs from clean:\n got %v\nwant %v", got, clean)
	}
	if len(st.Uncertain) != 0 || len(st.UncertainIDs) != 0 || len(st.Degraded) != 0 {
		t.Fatalf("failover surfaced uncertainty: %+v", st)
	}
	home := homeShards(a, shards)
	group1HasObjects := false
	for _, g := range home {
		if g == 1 {
			group1HasObjects = true
			break
		}
	}
	for _, ss := range st.Shards {
		switch {
		case ss.Shard == 1 && ss.Status == "ok":
			if ss.Replica != 1 {
				t.Fatalf("group 1 served by replica %d, want 1 (failover)", ss.Replica)
			}
		case ss.Status == "ok" && ss.Replica != 0:
			t.Fatalf("group %d served by replica %d with a live primary", ss.Shard, ss.Replica)
		case ss.Status != "ok" && ss.Status != "skipped":
			t.Fatalf("group %d status %q (%s)", ss.Shard, ss.Status, ss.Err)
		}
	}
	if m := c.Metrics(); group1HasObjects && (m.Failovers < 1 || m.FailoverWins < 1) {
		t.Fatalf("failover counters not advanced: %+v", m)
	}
}

// TestBothReplicasDeadDegrades kills both physical shards holding one home
// group and asserts exactly the single-copy degradation contract: the
// group's home objects go uncertain, every other group — including one
// whose primary died but whose replica survives — stays exact.
func TestBothReplicasDeadDegrades(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	const shards = 4
	home := homeShards(a, shards)
	ctx := context.Background()

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	c := testCoordinator(t, shard.Options{
		Shards:       shards,
		Replicas:     2,
		Retries:      -1,
		RetryBackoff: time.Millisecond,
	}, a, b)
	// Group 1 lives on shards 1 and 2: killing both makes it unreachable.
	// Group 2 (primary shard 2) must fail over to shard 3 and stay exact;
	// group 0 (shards 0, 1) is served by its primary.
	faultinject.Arm(killPoint(1), faultinject.Fault{Err: faultinject.ErrInjected})
	faultinject.Arm(killPoint(2), faultinject.Fault{Err: faultinject.ErrInjected})

	// FailFast: an unreachable group aborts the query.
	if _, _, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{}); err == nil {
		t.Fatal("FailFast query with an unreachable group did not fail")
	}

	got, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{OnError: core.Degrade})
	if err != nil {
		t.Fatalf("degraded query failed outright: %v", err)
	}
	var want []core.Pair
	for _, p := range clean {
		if home[p.Target] != 1 {
			want = append(want, p)
		}
	}
	if !sameSlice(got, want) {
		t.Fatalf("certain pairs:\n got %v\nwant %v", got, want)
	}
	for id, g := range home {
		if g == 1 && !slices.Contains(st.UncertainIDs, id) {
			t.Fatalf("unreachable group's object %d missing from UncertainIDs %v", id, st.UncertainIDs)
		}
		if g != 1 && slices.Contains(st.UncertainIDs, id) {
			t.Fatalf("object %d of live group %d reported uncertain", id, g)
		}
	}
	if len(st.Degraded) != 1 {
		t.Fatalf("Degraded has %d entries, want 1 (the unreachable group): %v", len(st.Degraded), st.Degraded)
	}
	for _, ss := range st.Shards {
		switch ss.Shard {
		case 1:
			if ss.Status != "error" {
				t.Fatalf("unreachable group 1 status %q", ss.Status)
			}
		case 2:
			if ss.Status == "ok" && ss.Replica != 1 {
				t.Fatalf("group 2 served by replica %d, want failover to shard 3", ss.Replica)
			}
		}
	}

	// Σ-per-shard invariant holds for the replicated degraded query too.
	sum := map[string]int64{}
	for _, ss := range st.Shards {
		if ss.Stats != nil {
			for k, v := range counterSums(ss.Stats) {
				sum[k] += v
			}
		}
	}
	for k, v := range counterSums(st) {
		if sum[k] != v {
			t.Fatalf("Σ per-shard %s = %d, coordinator total %d", k, sum[k], v)
		}
	}
}

// TestReplicatedPlacementCoverage checks Health() accounts every home
// object once per replica.
func TestReplicatedPlacementCoverage(t *testing.T) {
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, _ := buildPair(t, e)
	c := testCoordinator(t, shard.Options{Shards: 3, Replicas: 2}, a)

	total := 0
	for _, h := range c.Health() {
		total += h.Objects
	}
	if total != 2*a.Len() {
		t.Fatalf("replicated placement covers %d object copies, want %d", total, 2*a.Len())
	}
	if got := c.Replicas(); got != 2 {
		t.Fatalf("Replicas() = %d, want 2", got)
	}
}

// TestProberRejoinsShard trips a shard's breaker, heals the fault, and
// asserts the background prober closes the breaker again without any query
// being issued — then the first real query uses the primary again.
func TestProberRejoinsShard(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	ctx := context.Background()
	const cooldown = 30 * time.Millisecond

	c := testCoordinator(t, shard.Options{
		Shards:           4,
		Replicas:         2,
		Retries:          -1,
		BreakerThreshold: 1,
		BreakerCooldown:  cooldown,
	}, a, b)
	c.StartProber(10 * time.Millisecond)

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Kill shard 1, trip its breaker with one query (answers stay exact via
	// the replica).
	faultinject.Arm(killPoint(1), faultinject.Fault{Err: faultinject.ErrInjected})
	got, _, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSlice(got, clean) {
		t.Fatalf("failed-over answer differs from clean:\n got %v\nwant %v", got, clean)
	}
	if !c.Degraded() {
		t.Fatal("breaker not tracking the dead shard")
	}

	// While the fault stays armed the prober's probes must fail, not close
	// the breaker.
	deadline := time.Now().Add(time.Second)
	for c.Metrics().ProbeFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prober issued no failing probes: %+v", c.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Degraded() {
		t.Fatal("breaker closed while the shard was still dead")
	}

	// Heal the shard. The prober must rejoin it — no queries issued here.
	faultinject.Reset()
	queriesBefore := c.Metrics().Queries
	deadline = time.Now().Add(2 * time.Second)
	for c.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("prober did not rejoin the healed shard: %+v", c.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := c.Metrics()
	if m.Queries != queriesBefore {
		t.Fatalf("rejoin consumed query traffic: %d queries ran", m.Queries-queriesBefore)
	}
	if m.Probes < 1 || m.ProbeRecoveries < 1 {
		t.Fatalf("prober counters not advanced: %+v", m)
	}

	// The rejoined primary serves its group again.
	_, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ss := range st.Shards {
		if ss.Status == "ok" && ss.Replica != 0 {
			t.Fatalf("group %d still served by replica %d after rejoin", ss.Shard, ss.Replica)
		}
	}

	// Stopping twice is safe; Close stops it again harmlessly.
	c.StopProber()
	c.StopProber()
}
