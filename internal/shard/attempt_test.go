package shard

import (
	"context"
	"sync"
	"testing"
	"time"
)

// hedgeLoserTransport stalls the primary attempt until its context is
// canceled and answers the hedge immediately, capturing the primary's
// context so the test can verify the loser actually gets torn down.
type hedgeLoserTransport struct {
	mu      sync.Mutex
	calls   int
	primary context.Context
}

func (t *hedgeLoserTransport) Send(ctx context.Context, shard int, req *Request) (*Response, error) {
	t.mu.Lock()
	n := t.calls
	t.calls++
	if n == 0 {
		t.primary = ctx
	}
	t.mu.Unlock()
	if n == 0 {
		<-ctx.Done() // straggler: only cancellation unblocks it
		return nil, ctx.Err()
	}
	return &Response{}, nil
}

func (t *hedgeLoserTransport) primaryCtx() context.Context {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.primary
}

// TestHedgeLoserIsCanceled pins the fix for the hedged-request loser path:
// with no AttemptTimeout configured, attempt used to hand the transport
// the query context unwrapped with a no-op cancel, so the losing attempt
// kept running (holding its transport slot) until the whole query ended.
// Every attempt must get its own cancelable child context.
func TestHedgeLoserIsCanceled(t *testing.T) {
	tr := &hedgeLoserTransport{}
	c := &Coordinator{
		// No AttemptTimeout: the regression only shows on this path.
		opts: Options{HedgeAfter: time.Millisecond},
		tr:   tr,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	resp, hedged, hedgeWon, attempts, err := c.attempt(ctx, 0, &Request{})
	if err != nil || resp == nil {
		t.Fatalf("attempt failed: resp=%v err=%v", resp, err)
	}
	if !hedged || !hedgeWon || attempts != 2 {
		t.Fatalf("hedge should have won: hedged=%v hedgeWon=%v attempts=%d", hedged, hedgeWon, attempts)
	}

	pctx := tr.primaryCtx()
	if pctx == nil {
		t.Fatal("primary attempt never launched")
	}
	select {
	case <-pctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("losing primary attempt's context was never canceled; the straggler keeps running until the query ends")
	}
}
