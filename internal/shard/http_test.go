package shard_test

// Multi-process serving tests: real HTTP workers on loopback behind the
// HTTPTransport, driven through the same coordinator API as the in-process
// tier. The contract is identical — byte-equal answers, failover without
// uncertainty, single-copy degradation only when every replica of a group
// is dead — plus the process-level concerns the in-process tier cannot
// exercise: connection failures, CRC integrity over the wire, request-ID
// propagation, graceful drain, and prober-driven rejoin of a restarted
// worker.

import (
	"context"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"slices"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/server"
	"repro/internal/shard"
)

func quietServerConfig() server.Config {
	return server.Config{
		Logger: log.New(io.Discard, "", 0),
		Slog:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// httpCluster is a test fleet: n shard workers served over loopback HTTP
// plus a coordinator reaching them through the HTTP transport. Workers can
// be killed (hard connection close, like a crashed process) and restarted
// on the same port with their state intact — modeling a worker that
// restores its datasets before listening again.
type httpCluster struct {
	t     *testing.T
	nodes []*shard.Node
	addrs []string // listen addresses, stable across restarts
	srvs  []*http.Server
	tr    *shard.HTTPTransport
	coord *shard.Coordinator
}

// startHTTPCluster builds the fleet, installs the datasets through the
// transport's dataset endpoint, and registers teardown. Call
// leakcheck.Check before this: cleanups run LIFO, so the leak diff then
// runs after every engine and listener is closed.
func startHTTPCluster(t *testing.T, opts shard.Options, datasets ...*core.Dataset) *httpCluster {
	t.Helper()
	opts.Shards = max(opts.Shards, 1)
	cl := &httpCluster{
		t:     t,
		nodes: make([]*shard.Node, opts.Shards),
		addrs: make([]string, opts.Shards),
		srvs:  make([]*http.Server, opts.Shards),
	}
	urls := make([]string, opts.Shards)
	for i := range cl.nodes {
		cl.nodes[i] = shard.NewNode(i, testEngineOptions())
	}
	t.Cleanup(func() {
		for _, n := range cl.nodes {
			n.Close()
		}
	})
	for i := range cl.nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cl.addrs[i] = ln.Addr().String()
		urls[i] = "http://" + cl.addrs[i]
		cl.serveOn(i, ln)
	}
	t.Cleanup(func() {
		for _, srv := range cl.srvs {
			srv.Close()
		}
	})
	cl.tr = shard.NewHTTPTransport(urls)
	t.Cleanup(cl.tr.Close)
	cl.coord = shard.NewWithTransport(cl.tr, opts)
	t.Cleanup(cl.coord.Close)
	for _, d := range datasets {
		if err := cl.coord.AddDataset(d); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}

func (cl *httpCluster) serveOn(i int, ln net.Listener) {
	w := server.NewWorker(cl.nodes[i], quietServerConfig())
	srv := &http.Server{Handler: w.Handler(), ErrorLog: log.New(io.Discard, "", 0)}
	cl.srvs[i] = srv
	go func() { _ = srv.Serve(ln) }()
}

// kill hard-closes worker i's listener and connections, as a crashed
// process would.
func (cl *httpCluster) kill(i int) { cl.srvs[i].Close() }

// restart brings worker i back on its original port, reusing the node (a
// restarted worker restores its datasets before serving).
func (cl *httpCluster) restart(i int) {
	cl.t.Helper()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for {
		ln, err = net.Listen("tcp", cl.addrs[i])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			cl.t.Fatalf("restarting worker %d on %s: %v", i, cl.addrs[i], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cl.serveOn(i, ln)
}

// TestShardedEquivalenceHTTP proves the multi-process tier returns
// byte-for-byte the single-engine answer for every query kind, including
// self-joins, with replicated placement on — queries, loans, and answers
// all crossing real HTTP connections.
func TestShardedEquivalenceHTTP(t *testing.T) {
	leakcheck.Check(t)
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	da, db := buildDisjointPair(t, e)
	cl := startHTTPCluster(t, shard.Options{Shards: 4, Replicas: 2}, a, b, da, db)
	c := cl.coord
	ctx := context.Background()
	q := core.QueryOptions{}

	t.Run("intersect", func(t *testing.T) {
		want, _, err := e.IntersectJoin(ctx, a, b, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("HTTP intersect differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("intersect-self", func(t *testing.T) {
		want, _, err := e.IntersectJoin(ctx, a, a, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.IntersectJoin(ctx, "nucleiA", "nucleiA", q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("HTTP self-intersect differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("within", func(t *testing.T) {
		want, _, err := e.WithinJoin(ctx, da, db, 8, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.WithinJoin(ctx, "disjA", "disjB", 8, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("HTTP within differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("nn", func(t *testing.T) {
		want, _, err := e.NNJoin(ctx, da, db, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.NNJoin(ctx, "disjA", "disjB", q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("HTTP nn differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("knn", func(t *testing.T) {
		kq := q
		kq.K = 3
		want, _, err := e.KNNJoin(ctx, da, db, kq)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.KNNJoin(ctx, "disjA", "disjB", kq)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("HTTP knn differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("knn-self", func(t *testing.T) {
		kq := q
		kq.K = 2
		want, _, err := e.KNNJoin(ctx, da, da, kq)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.KNNJoin(ctx, "disjA", "disjA", kq)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("HTTP self-knn differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("range", func(t *testing.T) {
		bounds := a.Tree().Bounds()
		rbox := bounds
		rbox.Max = bounds.Min.Lerp(bounds.Max, 0.5)
		want, _, err := e.RangeQuery(ctx, a, rbox, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.RangeQuery(ctx, "nucleiA", rbox, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("HTTP range differs:\n got %v\nwant %v", got, want)
		}
	})
	t.Run("contains", func(t *testing.T) {
		p := a.Tileset.Object(0).MBB().Center()
		want, _, err := e.ContainingObjects(ctx, a, p, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.ContainingObjects(ctx, "nucleiA", p, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlice(got, want) {
			t.Fatalf("HTTP contains differs:\n got %v\nwant %v", got, want)
		}
	})
}

// TestHTTPChaosCampaign walks the whole robustness ladder over real HTTP
// workers with a seeded coordinator: transient network faults are retried,
// a straggling link is hedged past, a killed worker is failed over with
// zero uncertainty, its open breaker short-circuits the next query, and a
// restarted worker rejoins through the prober without query traffic.
func TestHTTPChaosCampaign(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	ctx := context.Background()

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cl := startHTTPCluster(t, shard.Options{
		Shards:           4,
		Replicas:         2,
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		HedgeAfter:       10 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  50 * time.Millisecond,
		Seed:             20260808, // the campaign seed: jitter is reproducible
	}, a, b)
	c := cl.coord
	c.StartProber(10 * time.Millisecond)

	mustExact := func(rung string) *core.Stats {
		t.Helper()
		got, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{})
		if err != nil {
			t.Fatalf("%s: query failed: %v", rung, err)
		}
		if !sameSlice(got, clean) {
			t.Fatalf("%s: answer differs from clean:\n got %v\nwant %v", rung, got, clean)
		}
		if len(st.Uncertain) != 0 || len(st.UncertainIDs) != 0 || len(st.Degraded) != 0 {
			t.Fatalf("%s: uncertainty surfaced: %+v", rung, st)
		}
		return st
	}

	// Rung 0: clean baseline over HTTP.
	mustExact("baseline")

	// Rung 1: transient network faults on the send path are retried away.
	before := c.Metrics()
	faultinject.Arm(faultinject.PointShardNetSend, faultinject.Fault{Err: faultinject.ErrInjected, Times: 2})
	mustExact("retry")
	if m := c.Metrics(); m.Retries <= before.Retries {
		t.Fatalf("retry rung earned no retries: %+v", m)
	}
	faultinject.Reset()

	// Rung 2: a straggling link is hedged past. The delay burns only the
	// first firing, so the hedge attempt goes through clean and wins.
	before = c.Metrics()
	faultinject.Arm("shard.net.send.2", faultinject.Fault{Delay: 300 * time.Millisecond, Times: 1})
	mustExact("hedge")
	if m := c.Metrics(); m.Hedges <= before.Hedges {
		t.Fatalf("hedge rung launched no hedges: %+v", m)
	}
	faultinject.Reset()

	// Rung 3: kill worker 1. Its home group fails over to the replica on
	// worker 2 — byte-equal, zero uncertainty, even though the connection
	// is refused outright.
	before = c.Metrics()
	cl.kill(1)
	st := mustExact("failover")
	for _, ss := range st.Shards {
		if ss.Shard == 1 && ss.Status == "ok" && ss.Replica != 1 {
			t.Fatalf("failover rung: group 1 served by replica %d, want 1", ss.Replica)
		}
	}
	if m := c.Metrics(); m.Failovers <= before.Failovers || m.FailoverWins <= before.FailoverWins {
		t.Fatalf("failover rung counters not advanced: %+v", m)
	}
	if !c.Degraded() {
		t.Fatal("failover rung: breaker not tracking the killed worker")
	}

	// Rung 4: the open breaker short-circuits the dead worker — the next
	// query skips straight to the replica without burning a connection
	// attempt, and the answer stays exact.
	before = c.Metrics()
	mustExact("breaker")
	if m := c.Metrics(); m.OpenSkips <= before.OpenSkips {
		t.Fatalf("breaker rung: open breaker did not short-circuit: %+v", m)
	}

	// While the worker is down the prober's probes must fail.
	deadline := time.Now().Add(2 * time.Second)
	for c.Metrics().ProbeFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prober issued no failing probes against the dead worker: %+v", c.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rung 5: restart the worker on its old port. The prober rejoins it
	// with no query traffic; the next query is served entirely by
	// primaries again.
	cl.restart(1)
	queriesBefore := c.Metrics().Queries
	deadline = time.Now().Add(5 * time.Second)
	for c.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("prober did not rejoin the restarted worker: %+v", c.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := c.Metrics()
	if m.Queries != queriesBefore {
		t.Fatalf("rejoin consumed query traffic: %d queries ran", m.Queries-queriesBefore)
	}
	if m.ProbeRecoveries < 1 {
		t.Fatalf("rejoin rung: no probe recovery recorded: %+v", m)
	}
	st = mustExact("rejoin")
	for _, ss := range st.Shards {
		if ss.Status == "ok" && ss.Replica != 0 {
			t.Fatalf("rejoin rung: group %d still served by replica %d", ss.Shard, ss.Replica)
		}
	}
}

// TestHTTPAnySingleWorkerDeathIsExact is the acceptance proof for the
// replicated tier: at -shards 4 -replicas 2, killing ANY single worker —
// each in turn — yields byte-equal results with zero uncertainty, and the
// restarted worker serves again.
func TestHTTPAnySingleWorkerDeathIsExact(t *testing.T) {
	leakcheck.Check(t)
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	const shards = 4
	ctx := context.Background()

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cl := startHTTPCluster(t, shard.Options{
		Shards:   shards,
		Replicas: 2,
		Retries:  1, RetryBackoff: time.Millisecond,
		// Keep breakers closed across the loop so each iteration tests the
		// failover path itself, not breaker state from the last kill.
		BreakerThreshold: 100,
	}, a, b)

	for victim := 0; victim < shards; victim++ {
		cl.kill(victim)
		got, st, err := cl.coord.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{})
		if err != nil {
			t.Fatalf("kill worker %d: query failed: %v", victim, err)
		}
		if !sameSlice(got, clean) {
			t.Fatalf("kill worker %d: answer differs from clean:\n got %v\nwant %v", victim, got, clean)
		}
		if len(st.Uncertain) != 0 || len(st.UncertainIDs) != 0 || len(st.Degraded) != 0 {
			t.Fatalf("kill worker %d: uncertainty surfaced: %+v", victim, st)
		}
		for _, ss := range st.Shards {
			if ss.Shard == victim && ss.Status == "ok" && ss.Replica != 1 {
				t.Fatalf("kill worker %d: its group served by replica %d, want 1", victim, ss.Replica)
			}
		}
		cl.restart(victim)
	}
}

// TestHTTPBothReplicasDeadDegrades kills both workers holding one home
// group: over HTTP exactly the single-copy degradation contract applies —
// that group's homes go uncertain, every other group stays exact (one of
// them via failover).
func TestHTTPBothReplicasDeadDegrades(t *testing.T) {
	leakcheck.Check(t)
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	const shards = 4
	home := homeShards(a, shards)
	ctx := context.Background()

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cl := startHTTPCluster(t, shard.Options{
		Shards:       shards,
		Replicas:     2,
		Retries:      -1,
		RetryBackoff: time.Millisecond,
	}, a, b)
	c := cl.coord
	// Group 1 lives on workers 1 and 2: killing both makes it unreachable.
	cl.kill(1)
	cl.kill(2)

	if _, _, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{}); err == nil {
		t.Fatal("FailFast query with an unreachable group did not fail")
	}

	got, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{OnError: core.Degrade})
	if err != nil {
		t.Fatalf("degraded query failed outright: %v", err)
	}
	var want []core.Pair
	for _, p := range clean {
		if home[p.Target] != 1 {
			want = append(want, p)
		}
	}
	if !sameSlice(got, want) {
		t.Fatalf("certain pairs:\n got %v\nwant %v", got, want)
	}
	for id, g := range home {
		if g == 1 && !slices.Contains(st.UncertainIDs, id) {
			t.Fatalf("unreachable group's object %d missing from UncertainIDs %v", id, st.UncertainIDs)
		}
		if g != 1 && slices.Contains(st.UncertainIDs, id) {
			t.Fatalf("object %d of live group %d reported uncertain", id, g)
		}
	}
	if len(st.Degraded) != 1 {
		t.Fatalf("Degraded has %d entries, want 1: %v", len(st.Degraded), st.Degraded)
	}
}

// TestHTTPRecvCorruptionIsTransportError flips bytes of a worker response
// on the wire: the CRC integrity header catches it, the attempt is a
// transport error, and the retry recovers the exact answer.
func TestHTTPRecvCorruptionIsTransportError(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	ctx := context.Background()

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl := startHTTPCluster(t, shard.Options{
		Shards:       2,
		Retries:      1,
		RetryBackoff: time.Millisecond,
	}, a, b)

	faultinject.Arm(faultinject.PointShardNetRecv, faultinject.Fault{Corrupt: true, Times: 1})
	got, _, err := cl.coord.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{})
	if err != nil {
		t.Fatalf("query with one corrupted response failed: %v", err)
	}
	if !sameSlice(got, clean) {
		t.Fatalf("answer after corruption retry differs:\n got %v\nwant %v", got, clean)
	}
	if m := cl.coord.Metrics(); m.Retries < 1 {
		t.Fatalf("corrupted response was not retried: %+v", m)
	}
}

// TestWorkerEchoesRequestID pins the correlation contract: the request ID
// a coordinator stamps on a scatter leg comes back on the worker response.
func TestWorkerEchoesRequestID(t *testing.T) {
	leakcheck.Check(t)
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, _ := buildPair(t, e)
	cl := startHTTPCluster(t, shard.Options{Shards: 1}, a)

	req, err := http.NewRequest(http.MethodGet, "http://"+cl.addrs[0]+"/readyz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "rid-campaign-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if got := resp.Header.Get("X-Request-Id"); got != "rid-campaign-7" {
		t.Fatalf("worker echoed request ID %q, want rid-campaign-7", got)
	}
	http.DefaultClient.CloseIdleConnections()
}

// TestWorkerDrainPreservesInFlight cancels a worker's run context while a
// scatter leg is being served and asserts the drain contract: /readyz
// flips to not-ready immediately, the in-flight query completes with the
// exact answer, and the worker exits cleanly within its grace.
func TestWorkerDrainPreservesInFlight(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	ctx := context.Background()

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	node := shard.NewNode(0, testEngineOptions())
	defer node.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietServerConfig()
	cfg.ShutdownGrace = 10 * time.Second
	w := server.NewWorker(node, cfg)
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	runErr := make(chan error, 1)
	go func() { runErr <- w.Serve(runCtx, ln) }()

	tr := shard.NewHTTPTransport([]string{"http://" + ln.Addr().String()})
	defer tr.Close()
	c := shard.NewWithTransport(tr, shard.Options{Shards: 1})
	defer c.Close()
	for _, d := range []*core.Dataset{a, b} {
		if err := c.AddDataset(d); err != nil {
			t.Fatal(err)
		}
	}

	// Hold the first decode inside the worker's engine so the scatter leg
	// is deterministically in flight when the drain begins.
	entered := make(chan struct{})
	hold := make(chan struct{})
	faultinject.Arm(faultinject.PointPPVPDecode, faultinject.Fault{Times: 1, Hook: func() error {
		close(entered)
		<-hold
		return nil
	}})

	type result struct {
		got []core.Pair
		err error
	}
	done := make(chan result, 1)
	go func() {
		got, _, err := c.IntersectJoin(context.Background(), "nucleiA", "nucleiB", core.QueryOptions{})
		done <- result{got, err}
	}()

	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("scatter leg never reached the worker's engine")
	}
	cancelRun() // begin the drain with the leg still held

	// The worker must stop reporting ready while it drains.
	deadline := time.Now().Add(2 * time.Second)
	for tr.CheckHealth(ctx, 0) == nil {
		if time.Now().After(deadline) {
			t.Fatal("draining worker still reports ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(hold) // release the leg; the drain lets it finish
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight query was dropped by the drain: %v", res.err)
	}
	if !sameSlice(res.got, clean) {
		t.Fatalf("drained query differs from clean:\n got %v\nwant %v", res.got, clean)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("worker drain failed: %v", err)
	}
}
