package shard_test

// Multi-shard chaos: shards are killed at the transport layer mid-workload
// and the coordinator must keep answering — certain results shrink by
// exactly the dead shards' home objects, which reappear in UncertainIDs.
// Transient faults must be absorbed by the retry loop without surfacing
// any uncertainty at all.

import (
	"context"
	"fmt"
	"slices"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/shard"
)

// homeShards maps every object ID of d to its home shard under n shards
// (the coordinator's placement rule: cuboid mod n).
func homeShards(d *core.Dataset, n int) map[int64]int {
	out := make(map[int64]int, d.Len())
	for _, o := range d.Tileset.Objects {
		if o != nil {
			out[o.ID] = o.Cuboid % n
		}
	}
	return out
}

// killPoint returns the faultinject spec point that severs one shard.
func killPoint(s int) string {
	return fmt.Sprintf("%s.%d", faultinject.PointShardSend, s)
}

// TestDeadShardsDegrade kills K of N shards at the transport and asserts
// the degraded-answer contract for K = 1 and K = 2.
func TestDeadShardsDegrade(t *testing.T) {
	leakcheck.Check(t)
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	const shards = 4
	home := homeShards(a, shards)
	ctx := context.Background()

	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, dead := range [][]int{{1}, {1, 3}} {
		t.Run(fmt.Sprintf("kill=%v", dead), func(t *testing.T) {
			defer faultinject.Reset()
			c := testCoordinator(t, shard.Options{
				Shards:       shards,
				Retries:      1,
				RetryBackoff: time.Millisecond,
			}, a, b)
			isDead := func(s int) bool { return slices.Contains(dead, s) }
			for _, s := range dead {
				faultinject.Arm(killPoint(s), faultinject.Fault{Err: faultinject.ErrInjected})
			}

			// FailFast: a dead shard aborts the query.
			if _, _, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{}); err == nil {
				t.Fatal("FailFast query with a dead shard did not fail")
			}

			// Degrade: certain answer minus the dead shards' home targets.
			got, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{OnError: core.Degrade})
			if err != nil {
				t.Fatalf("degraded query failed outright: %v", err)
			}
			var want []core.Pair
			var wantUncertain []int64
			for _, p := range clean {
				if !isDead(home[p.Target]) {
					want = append(want, p)
				}
			}
			for id, s := range home {
				if isDead(s) {
					wantUncertain = append(wantUncertain, id)
				}
			}
			if !sameSlice(got, want) {
				t.Fatalf("certain pairs:\n got %v\nwant %v", got, want)
			}
			// Every dead-shard home object must be flagged uncertain.
			for _, id := range wantUncertain {
				if !slices.Contains(st.UncertainIDs, id) {
					t.Fatalf("dead-shard object %d missing from UncertainIDs %v", id, st.UncertainIDs)
				}
			}
			if len(st.Degraded) != len(dead) {
				t.Fatalf("Degraded has %d entries, want %d (one per dead shard): %v", len(st.Degraded), len(dead), st.Degraded)
			}
			for _, ss := range st.Shards {
				if isDead(ss.Shard) {
					if ss.Status != "error" {
						t.Fatalf("dead shard %d status %q", ss.Shard, ss.Status)
					}
					if ss.Attempts != 2 { // 1 primary + 1 retry
						t.Fatalf("dead shard %d made %d attempts, want 2", ss.Shard, ss.Attempts)
					}
				} else if ss.Status != "ok" && ss.Status != "skipped" {
					t.Fatalf("live shard %d status %q (%s)", ss.Shard, ss.Status, ss.Err)
				}
			}

			// The Σ-per-shard invariant must hold for the degraded query too,
			// uncertainty lists included.
			sum := map[string]int64{}
			for _, ss := range st.Shards {
				if ss.Stats != nil {
					for k, v := range counterSums(ss.Stats) {
						sum[k] += v
					}
				}
			}
			for k, v := range counterSums(st) {
				if sum[k] != v {
					t.Fatalf("Σ per-shard %s = %d, coordinator total %d", k, sum[k], v)
				}
			}
		})
	}
}

// TestRetryRecoversTransientFault proves a transient transport failure is
// retried to success without surfacing any uncertainty.
func TestRetryRecoversTransientFault(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	ctx := context.Background()
	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	c := testCoordinator(t, shard.Options{
		Shards:       4,
		Retries:      3,
		RetryBackoff: time.Millisecond,
	}, a, b)
	// Two one-shot failures: whichever shards draw them recover on retry.
	faultinject.Arm(faultinject.PointShardSend, faultinject.Fault{Err: faultinject.ErrInjected, Times: 2})

	got, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{OnError: core.Degrade})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSlice(got, clean) {
		t.Fatalf("recovered query differs from clean:\n got %v\nwant %v", got, clean)
	}
	if len(st.Uncertain) != 0 || len(st.UncertainIDs) != 0 || len(st.Degraded) != 0 {
		t.Fatalf("transient fault surfaced as degradation: %+v", st)
	}
	if m := c.Metrics(); m.Retries < 1 {
		t.Fatalf("metrics show no retries: %+v", m)
	}
	for _, ss := range st.Shards {
		if ss.Status != "ok" && ss.Status != "skipped" {
			t.Fatalf("shard %d status %q after recovery", ss.Shard, ss.Status)
		}
	}
	// The shards recovered, so none should be tracked by the breaker.
	if c.Degraded() {
		t.Fatal("breaker tracks a shard after successful recovery")
	}
}

// TestHedgedRequestBeatsStraggler arms a one-shot sleep so one shard's
// primary attempt stalls; the hedge must win and the query must not block
// on the straggler.
func TestHedgedRequestBeatsStraggler(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	ctx := context.Background()
	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	c := testCoordinator(t, shard.Options{
		Shards:     4,
		HedgeAfter: 10 * time.Millisecond,
	}, a, b)
	faultinject.Arm(faultinject.PointShardSend, faultinject.Fault{Delay: 300 * time.Millisecond, Times: 1})

	start := time.Now()
	got, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSlice(got, clean) {
		t.Fatalf("hedged query differs from clean:\n got %v\nwant %v", got, clean)
	}
	if m := c.Metrics(); m.Hedges < 1 {
		t.Fatalf("no hedge launched: %+v (elapsed %v)", m, time.Since(start))
	}
	hedged := false
	for _, ss := range st.Shards {
		hedged = hedged || ss.Hedged
	}
	if !hedged {
		t.Fatalf("no shard reports a hedged attempt: %+v", st.Shards)
	}
}

// TestBreakerOpensAndRecovers drives the per-shard breaker through its
// full lifecycle: trip on a dead shard, reject while open (no transport
// attempts), and close again via a half-open probe once the shard heals.
func TestBreakerOpensAndRecovers(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	ctx := context.Background()
	const cooldown = 50 * time.Millisecond

	c := testCoordinator(t, shard.Options{
		Shards:           4,
		Retries:          -1, // no retries: each query is one attempt per shard
		BreakerThreshold: 1,
		BreakerCooldown:  cooldown,
	}, a, b)
	dq := core.QueryOptions{OnError: core.Degrade}

	// Trip: shard 0 dead, first degraded query records the failure.
	faultinject.Arm(killPoint(0), faultinject.Fault{Err: faultinject.ErrInjected})
	if _, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", dq); err != nil {
		t.Fatal(err)
	} else if st.Shards[0].Status != "error" {
		t.Fatalf("shard 0 status %q, want error", st.Shards[0].Status)
	}
	if !c.Degraded() {
		t.Fatal("breaker not tracking the dead shard")
	}

	// Open: the next query must not even attempt shard 0.
	calls := c.Metrics().ShardCalls
	_, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", dq)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards[0].Status != "open" {
		t.Fatalf("shard 0 status %q, want open", st.Shards[0].Status)
	}
	if st.Shards[0].Attempts != 0 {
		t.Fatalf("open shard was attempted %d times", st.Shards[0].Attempts)
	}
	if m := c.Metrics(); m.OpenSkips < 1 || m.ShardCalls-calls >= 4 {
		t.Fatalf("open shard consumed transport calls: %+v (delta %d)", m, m.ShardCalls-calls)
	}
	// Its home objects are still accounted as uncertain.
	if len(st.UncertainIDs) == 0 {
		t.Fatal("open shard produced no uncertainty accounting")
	}

	// Heal: disarm, wait out the cooldown, probe succeeds, breaker closes.
	faultinject.Reset()
	time.Sleep(cooldown + 10*time.Millisecond)
	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, st2, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", dq)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Shards[0].Status != "ok" {
		t.Fatalf("healed shard 0 status %q (%s)", st2.Shards[0].Status, st2.Shards[0].Err)
	}
	if !sameSlice(got, clean) {
		t.Fatalf("healed query differs from clean:\n got %v\nwant %v", got, clean)
	}
	if c.Degraded() {
		t.Fatal("breaker still tracking shard 0 after successful probe")
	}
}

// TestRecvCorruptionIsTransportError proves a corrupted response is caught
// by the transport integrity check and handled like any transient fault:
// retried (fresh responses are clean only if the fault disarms) or
// degraded, never silently accepted.
func TestRecvCorruptionIsTransportError(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)
	ctx := context.Background()
	clean, _, err := e.IntersectJoin(ctx, a, b, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	c := testCoordinator(t, shard.Options{
		Shards:       2,
		Retries:      2,
		RetryBackoff: time.Millisecond,
	}, a, b)
	// One corrupted response; the retry reads a clean one.
	faultinject.Arm(faultinject.PointShardRecv, faultinject.Fault{Corrupt: true, Times: 1})

	got, st, err := c.IntersectJoin(ctx, "nucleiA", "nucleiB", core.QueryOptions{OnError: core.Degrade})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSlice(got, clean) {
		t.Fatalf("post-corruption query differs from clean:\n got %v\nwant %v", got, clean)
	}
	if len(st.UncertainIDs) != 0 {
		t.Fatalf("corruption degraded the query despite retry: %v", st.UncertainIDs)
	}
	if m := c.Metrics(); m.Retries < 1 {
		t.Fatalf("corrupted response did not trigger a retry: %+v", m)
	}
}

// TestAllShardsDead asserts a query with every shard dead fails even under
// Degrade — with no survivor there is no sound certain answer.
func TestAllShardsDead(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	e := core.NewEngine(testEngineOptions())
	defer e.Close()
	a, b := buildPair(t, e)

	c := testCoordinator(t, shard.Options{Shards: 2, Retries: -1}, a, b)
	faultinject.Arm(faultinject.PointShardSend, faultinject.Fault{Err: faultinject.ErrInjected})

	_, _, err := c.IntersectJoin(context.Background(), "nucleiA", "nucleiB", core.QueryOptions{OnError: core.Degrade})
	if err == nil {
		t.Fatal("query with all shards dead succeeded")
	}
}
