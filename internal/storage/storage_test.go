package storage

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

func compress(t *testing.T, m *mesh.Mesh) *ppvp.Compressed {
	t.Helper()
	c, _, err := ppvp.Compress(m, ppvp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGridBasics(t *testing.T) {
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(100, 100, 100)}
	g := NewGrid(space, 27)
	if g.NumCuboids() < 8 || g.NumCuboids() > 64 {
		t.Errorf("NumCuboids = %d, want near 27", g.NumCuboids())
	}

	// Every point maps into range and its cuboid box contains it.
	pts := []geom.Vec3{
		{X: 0, Y: 0, Z: 0}, {X: 99.9, Y: 99.9, Z: 99.9}, {X: 50, Y: 1, Z: 99},
		{X: -5, Y: 50, Z: 50}, {X: 105, Y: 50, Z: 50}, // out of range → clamped
	}
	for _, p := range pts {
		i := g.CuboidOf(p)
		if i < 0 || i >= g.NumCuboids() {
			t.Fatalf("CuboidOf(%v) = %d out of range", p, i)
		}
		box := g.CuboidBox(i)
		clamped := space.ClosestPoint(p)
		if !box.Expand(1e-9).ContainsPoint(clamped) {
			t.Fatalf("cuboid %d box %v does not contain %v", i, box, clamped)
		}
	}

	// Cuboid boxes tile the space.
	var vol float64
	for i := 0; i < g.NumCuboids(); i++ {
		vol += g.CuboidBox(i).Volume()
	}
	if diff := vol - space.Volume(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("cuboid volumes sum to %v, space is %v", vol, space.Volume())
	}
}

func TestGridDegenerate(t *testing.T) {
	g := NewGrid(geom.EmptyBox(), 10)
	if g.NumCuboids() < 1 {
		t.Error("degenerate grid has no cuboids")
	}
	if i := g.CuboidOf(geom.V(1, 2, 3)); i < 0 || i >= g.NumCuboids() {
		t.Errorf("CuboidOf on degenerate grid = %d", i)
	}
	if NewGrid(geom.Box3{}, 0).NumCuboids() < 1 {
		t.Error("zero-cuboid request not clamped")
	}
}

func TestTilesetGrouping(t *testing.T) {
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(40, 40, 40)}
	grid := NewGrid(space, 8)

	var comps []*ppvp.Compressed
	centers := []geom.Vec3{{X: 5, Y: 5, Z: 5}, {X: 35, Y: 5, Z: 5}, {X: 5, Y: 35, Z: 35}, {X: 6, Y: 6, Z: 6}}
	for _, c := range centers {
		m := mesh.Icosphere(2, 2)
		m.Translate(c)
		comps = append(comps, compress(t, m))
	}
	ts := NewTileset(grid, comps)

	if len(ts.Objects) != 4 {
		t.Fatalf("objects = %d", len(ts.Objects))
	}
	for i, o := range ts.Objects {
		if o.ID != int64(i) {
			t.Errorf("object %d has ID %d", i, o.ID)
		}
		if ts.Object(o.ID) != o {
			t.Error("Object lookup broken")
		}
	}
	if ts.Object(-1) != nil || ts.Object(99) != nil {
		t.Error("out-of-range lookup should return nil")
	}
	// Objects at (5,5,5) and (6,6,6) share a cuboid; (35,5,5) does not.
	if ts.Objects[0].Cuboid != ts.Objects[3].Cuboid {
		t.Error("nearby objects in different cuboids")
	}
	if ts.Objects[0].Cuboid == ts.Objects[1].Cuboid {
		t.Error("distant objects share a cuboid")
	}
	if ts.CompressedBytes() <= 0 {
		t.Error("CompressedBytes not positive")
	}
}

func TestSaveLoadTiles(t *testing.T) {
	dir := t.TempDir()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(40, 40, 40)}
	grid := NewGrid(space, 8)

	var comps []*ppvp.Compressed
	for i := 0; i < 6; i++ {
		m := mesh.Icosphere(1.5, 2)
		m.Translate(geom.V(float64(i)*6+3, 20, 20))
		comps = append(comps, compress(t, m))
	}
	ts := NewTileset(grid, comps)
	if err := ts.SaveTiles(dir); err != nil {
		t.Fatalf("SaveTiles: %v", err)
	}

	got, err := LoadTiles(dir, grid)
	if err != nil {
		t.Fatalf("LoadTiles: %v", err)
	}
	if len(got.Objects) != len(ts.Objects) {
		t.Fatalf("loaded %d objects, want %d", len(got.Objects), len(ts.Objects))
	}
	for i := range ts.Objects {
		a, b := ts.Objects[i], got.Objects[i]
		if a.ID != b.ID || a.Cuboid != b.Cuboid {
			t.Fatalf("object %d metadata mismatch", i)
		}
		if a.MBB() != b.MBB() {
			t.Fatalf("object %d MBB mismatch", i)
		}
		// Decoded geometry identical.
		ma, err := a.Comp.Decode(0)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := b.Comp.Decode(0)
		if err != nil {
			t.Fatal(err)
		}
		if ma.NumFaces() != mb.NumFaces() {
			t.Fatalf("object %d decode mismatch", i)
		}
	}
}

func TestLoadTilesRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	grid := NewGrid(geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(10, 10, 10)}, 1)

	if err := os.WriteFile(filepath.Join(dir, "tile-000000.bin"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTiles(dir, grid); err == nil {
		t.Error("garbage tile accepted")
	}
}

func TestLoadTilesEmptyDir(t *testing.T) {
	grid := NewGrid(geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(10, 10, 10)}, 1)
	ts, err := LoadTiles(t.TempDir(), grid)
	if err != nil {
		t.Fatalf("empty dir: %v", err)
	}
	if len(ts.Objects) != 0 {
		t.Error("objects from empty dir")
	}
}

func TestNonFiniteCoordinatesClampToCuboidZero(t *testing.T) {
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(100, 100, 100)}
	g := NewGrid(space, 27)
	nan := math.NaN()
	for _, p := range []geom.Vec3{
		{X: nan, Y: nan, Z: nan},
		{X: nan, Y: 50, Z: 50},
		{X: math.Inf(-1), Y: 50, Z: 50},
	} {
		if i := g.CuboidOf(p); i < 0 || i >= g.NumCuboids() {
			t.Errorf("CuboidOf(%v) = %d out of range", p, i)
		}
	}
	// A fully-NaN point lands in cuboid 0, not an arbitrary index.
	if i := g.CuboidOf(geom.V(nan, nan, nan)); i != 0 {
		t.Errorf("CuboidOf(NaN) = %d, want 0", i)
	}
	if i := g.CuboidOf(geom.V(math.Inf(1), math.Inf(1), math.Inf(1))); i != g.NumCuboids()-1 {
		t.Errorf("CuboidOf(+Inf) = %d, want last cuboid", i)
	}
}

func TestNewGridNonFiniteSpace(t *testing.T) {
	nan := math.NaN()
	for _, space := range []geom.Box3{
		{Min: geom.V(nan, 0, 0), Max: geom.V(10, 10, 10)},
		{Min: geom.V(0, 0, 0), Max: geom.V(math.Inf(1), 10, 10)},
	} {
		g := NewGrid(space, 64)
		if g.NumCuboids() < 1 || g.NumCuboids() > 1<<21 {
			t.Errorf("NewGrid(%v) cuboids = %d", space, g.NumCuboids())
		}
		if i := g.CuboidOf(geom.V(1, 2, 3)); i < 0 || i >= g.NumCuboids() {
			t.Errorf("CuboidOf on non-finite grid = %d", i)
		}
	}
}

func TestTileChecksumDetectsBitrot(t *testing.T) {
	dir := t.TempDir()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(10, 10, 10)}
	grid := NewGrid(space, 1)
	m := mesh.Icosphere(2, 1)
	m.Translate(geom.V(5, 5, 5))
	ts := NewTileset(grid, []*ppvp.Compressed{compress(t, m)})
	if err := ts.SaveTiles(dir); err != nil {
		t.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "tile-*.bin"))
	if len(paths) != 1 {
		t.Fatalf("tiles = %d", len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Clean load works.
	if _, err := LoadTiles(dir, grid); err != nil {
		t.Fatalf("clean load: %v", err)
	}
	// Flip one bit in the middle of the payload.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTiles(dir, grid); err == nil {
		t.Error("bit-rotted tile accepted")
	}
}

// saveTileset builds n icospheres along a line and saves them as tiles.
func saveTileset(t *testing.T, dir string, grid Grid, n int) *Tileset {
	t.Helper()
	var comps []*ppvp.Compressed
	for i := 0; i < n; i++ {
		m := mesh.Icosphere(1.5, 1)
		m.Translate(geom.V(float64(i)*6+3, 5, 5))
		comps = append(comps, compress(t, m))
	}
	ts := NewTileset(grid, comps)
	if err := ts.SaveTiles(dir); err != nil {
		t.Fatalf("SaveTiles: %v", err)
	}
	return ts
}

func TestSaveTilesLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(40, 10, 10)}
	saveTileset(t, dir, NewGrid(space, 4), 6)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if ok, _ := filepath.Match("tile-*.bin", e.Name()); !ok {
			t.Errorf("stray file after SaveTiles: %s", e.Name())
		}
	}
}

func TestLoadTilesIgnoresPartialTemp(t *testing.T) {
	dir := t.TempDir()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(40, 10, 10)}
	grid := NewGrid(space, 4)
	ts := saveTileset(t, dir, grid, 6)
	// Simulate a crash mid-write: a half-written temp file left behind.
	tmp := filepath.Join(dir, "tile-000001.bin.tmp-1234")
	if err := os.WriteFile(tmp, []byte("half a tile"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTiles(dir, grid)
	if err != nil {
		t.Fatalf("LoadTiles with stray temp: %v", err)
	}
	if len(got.Objects) != len(ts.Objects) {
		t.Fatalf("loaded %d objects, want %d", len(got.Objects), len(ts.Objects))
	}
}

func TestAtomicWriteFileReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("new content"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "new content" {
		t.Fatalf("content = %q", data)
	}
}

// encodeTileV1 writes the legacy v1 layout (no per-record CRCs).
func encodeTileV1(objs []*Object) []byte {
	var buf []byte
	buf = append(buf, tileMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(objs)))
	for _, o := range objs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.ID))
		blob := o.Comp.Bytes()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

func TestV1TilesStillReadable(t *testing.T) {
	dir := t.TempDir()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(10, 10, 10)}
	grid := NewGrid(space, 1)
	m := mesh.Icosphere(2, 1)
	m.Translate(geom.V(5, 5, 5))
	ts := NewTileset(grid, []*ppvp.Compressed{compress(t, m)})
	v1 := encodeTileV1(ts.Tiles[ts.Objects[0].Cuboid])
	if err := os.WriteFile(filepath.Join(dir, "tile-000000.bin"), v1, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTiles(dir, grid)
	if err != nil {
		t.Fatalf("v1 tile rejected: %v", err)
	}
	if len(got.Objects) != 1 || got.Objects[0].MBB() != ts.Objects[0].MBB() {
		t.Fatal("v1 round-trip mismatch")
	}
	// Salvage mode reads v1 too (all-or-nothing).
	sts, rep, err := LoadTilesSalvage(dir, grid)
	if err != nil || !rep.Clean() || len(sts.Objects) != 1 {
		t.Fatalf("v1 salvage: err=%v report=%+v", err, rep)
	}
	// A damaged v1 tile is skipped wholesale: no per-record CRCs to trust.
	v1[len(v1)/2] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, "tile-000000.bin"), v1, 0o644); err != nil {
		t.Fatal(err)
	}
	sts, rep, err = LoadTilesSalvage(dir, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TilesSkipped) != 1 || len(sts.Objects) != 0 {
		t.Fatalf("damaged v1: report=%+v objects=%d", rep, len(sts.Objects))
	}
}

func TestSalvageKeepsUndamagedObjects(t *testing.T) {
	dir := t.TempDir()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(20, 20, 20)}
	grid := NewGrid(space, 1) // single tile holds all objects
	saveTileset(t, dir, grid, 3)
	paths, _ := filepath.Glob(filepath.Join(dir, "tile-*.bin"))
	if len(paths) != 1 {
		t.Fatalf("tiles = %d", len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Damage the blob of the first record (offset 8 = header, 12 = record
	// header, +10 lands inside the blob). Its CRC fails; later records are
	// intact.
	data[8+12+10] ^= 0xFF
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadTiles(dir, grid); err == nil {
		t.Fatal("strict load accepted damaged tile")
	}

	ts, rep, err := LoadTilesSalvage(dir, grid)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if rep.ObjectsLoaded != 2 || rep.TilesLoaded != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.ObjectsDropped) != 1 || rep.ObjectsDropped[0].ID != 0 ||
		rep.ObjectsDropped[0].Reason != "record checksum mismatch" {
		t.Fatalf("drops = %+v", rep.ObjectsDropped)
	}
	// Sparse IDs tolerated: slot 0 is a nil hole, 1 and 2 survive.
	if len(ts.Objects) != 3 || ts.Object(0) != nil {
		t.Fatalf("objects = %d, slot0 = %v", len(ts.Objects), ts.Object(0))
	}
	for id := int64(1); id <= 2; id++ {
		o := ts.Object(id)
		if o == nil || o.ID != id {
			t.Fatalf("object %d not salvaged", id)
		}
		if _, err := o.Comp.Decode(0); err != nil {
			t.Fatalf("salvaged object %d does not decode: %v", id, err)
		}
	}
	if ts.CompressedBytes() <= 0 {
		t.Error("CompressedBytes with nil holes")
	}
}

func TestSalvageSkipsUnreadableTile(t *testing.T) {
	dir := t.TempDir()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(40, 10, 10)}
	grid := NewGrid(space, 4)
	ts := saveTileset(t, dir, grid, 6)
	if err := os.WriteFile(filepath.Join(dir, "tile-999999.bin"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep, err := LoadTilesSalvage(dir, grid)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if len(rep.TilesSkipped) != 1 || rep.ObjectsLoaded != len(ts.Objects) {
		t.Fatalf("report = %+v", rep)
	}
	if len(got.Objects) != len(ts.Objects) {
		t.Fatalf("loaded %d objects, want %d", len(got.Objects), len(ts.Objects))
	}
}
