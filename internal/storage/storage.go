// Package storage implements the memory-centered data layout of the paper's
// §5.3: space is partitioned into fixed-size cuboids, the compressed blobs
// of the objects in one cuboid are stored contiguously in one tile (one
// file when persisted, one memory region when loaded), and object MBBs plus
// blob locations are exposed so the engine can build a single global R-tree
// over everything without decoding.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/ppvp"
)

// ErrBadTile is returned when a tile file cannot be parsed.
var ErrBadTile = errors.New("storage: corrupt tile file")

// Grid divides a space box into nx × ny × nz cuboids.
type Grid struct {
	Space      geom.Box3
	Nx, Ny, Nz int
}

// NewGrid builds a grid over space with roughly the requested number of
// cuboids, keeping cuboids close to cubical.
func NewGrid(space geom.Box3, cuboids int) Grid {
	if cuboids < 1 {
		cuboids = 1
	}
	size := space.Size()
	// Scale per-axis counts with the space aspect ratio. The comparison is
	// written !(vol > 0) so NaN volumes (a box with NaN coordinates) take
	// the degenerate path too.
	vol := size.X * size.Y * size.Z
	if !(vol > 0) || math.IsInf(vol, 1) {
		return Grid{Space: space, Nx: cuboids, Ny: 1, Nz: 1}
	}
	edge := math.Cbrt(vol / float64(cuboids))
	nx := axisCount(size.X, edge)
	ny := axisCount(size.Y, edge)
	nz := axisCount(size.Z, edge)
	return Grid{Space: space, Nx: nx, Ny: ny, Nz: nz}
}

// axisCount converts one axis extent into a cuboid count, clamping the
// non-finite cases (NaN extents, zero edge) to 1 instead of relying on
// undefined float→int conversion.
func axisCount(extent, edge float64) int {
	f := extent/edge + 0.5
	if !(f > 1) {
		return 1
	}
	if f > 1<<20 {
		return 1 << 20
	}
	return int(f)
}

// NumCuboids returns the total cuboid count.
func (g Grid) NumCuboids() int { return g.Nx * g.Ny * g.Nz }

// CuboidOf returns the cuboid index of a point (clamped into the grid).
func (g Grid) CuboidOf(p geom.Vec3) int {
	size := g.Space.Size()
	ix := clampIdx(p.X-g.Space.Min.X, size.X, g.Nx)
	iy := clampIdx(p.Y-g.Space.Min.Y, size.Y, g.Ny)
	iz := clampIdx(p.Z-g.Space.Min.Z, size.Z, g.Nz)
	return (iz*g.Ny+iy)*g.Nx + ix
}

func clampIdx(off, size float64, n int) int {
	if size <= 0 || n <= 1 {
		return 0
	}
	// Clamp in float space before converting: float→int conversion of NaN
	// or out-of-range values is undefined, so NaN coordinates (a damaged
	// object surviving a salvage load) go to cuboid 0 instead of anywhere.
	f := off / size * float64(n)
	if !(f > 0) { // NaN and negatives land here
		return 0
	}
	if f >= float64(n) {
		return n - 1
	}
	return int(f)
}

// CuboidBox returns the spatial extent of cuboid i.
func (g Grid) CuboidBox(i int) geom.Box3 {
	ix := i % g.Nx
	iy := (i / g.Nx) % g.Ny
	iz := i / (g.Nx * g.Ny)
	size := g.Space.Size()
	dx := size.X / float64(g.Nx)
	dy := size.Y / float64(g.Ny)
	dz := size.Z / float64(g.Nz)
	min := geom.V(
		g.Space.Min.X+float64(ix)*dx,
		g.Space.Min.Y+float64(iy)*dy,
		g.Space.Min.Z+float64(iz)*dz,
	)
	return geom.Box3{Min: min, Max: min.Add(geom.V(dx, dy, dz))}
}

// Object is one stored object: its ID, MBB, cuboid, and compressed form.
type Object struct {
	ID     int64
	Cuboid int
	Comp   *ppvp.Compressed
}

// MBB returns the object's minimal bounding box (from the compressed
// header; no decoding).
func (o *Object) MBB() geom.Box3 { return o.Comp.MBB() }

// Tileset holds the objects of one dataset grouped by cuboid, all in
// memory, mirroring the paper's load-everything-compressed design.
//
// Objects is indexed by ID (Objects[i] is nil or has ID == int64(i)).
// Strict loading guarantees dense IDs with no holes; salvage loading may
// leave nil holes where damaged objects were dropped.
type Tileset struct {
	Grid    Grid
	Objects []*Object         // by ID; may contain nil holes after salvage
	Tiles   map[int][]*Object // cuboid → objects
}

// NewTileset groups compressed objects into cuboids by MBB center and
// assigns sequential IDs.
func NewTileset(grid Grid, comps []*ppvp.Compressed) *Tileset {
	ts := &Tileset{Grid: grid, Tiles: make(map[int][]*Object)}
	for i, c := range comps {
		o := &Object{ID: int64(i), Cuboid: grid.CuboidOf(c.MBB().Center()), Comp: c}
		ts.Objects = append(ts.Objects, o)
		ts.Tiles[o.Cuboid] = append(ts.Tiles[o.Cuboid], o)
	}
	return ts
}

// Object returns the object with the given ID, or nil.
func (ts *Tileset) Object(id int64) *Object {
	if id < 0 || id >= int64(len(ts.Objects)) {
		return nil
	}
	return ts.Objects[id]
}

// CompressedBytes returns the total compressed footprint of the dataset.
func (ts *Tileset) CompressedBytes() int64 {
	var n int64
	for _, o := range ts.Objects {
		if o != nil {
			n += int64(o.Comp.TotalSize())
		}
	}
	return n
}

// Tile file layouts.
//
// v1 (magic "3DTL"): u32 count, then per object u64 id + u32 blob length +
// blob bytes, ending with a CRC-32 (IEEE) of everything before it. The file
// is all-or-nothing: any damage fails the whole tile.
//
// v2 (magic "3DT2", what SaveTiles writes): the same shape, but each record
// ends with its own CRC-32 over (id, length, blob), so salvage loading can
// keep the undamaged objects of a partially corrupted tile — a record whose
// CRC validates has a trustworthy ID. The trailing whole-file CRC is kept
// for fast strict validation. v1 files remain readable.
var (
	tileMagic   = [4]byte{'3', 'D', 'T', 'L'} // v1: whole-file CRC only
	tileMagicV2 = [4]byte{'3', 'D', 'T', '2'} // v2: adds per-record CRCs
)

// maxSalvageID bounds object IDs accepted during salvage: the Objects slice
// is sized by the largest surviving ID, so without strict loading's density
// check a single implausible ID must not force a giant allocation.
const maxSalvageID = 1 << 24

// SaveTiles persists each cuboid's objects as one file tile-<cuboid>.bin
// under dir (created if needed). Each tile is written atomically.
func (ts *Tileset) SaveTiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for cuboid, objs := range ts.Tiles {
		path := filepath.Join(dir, fmt.Sprintf("tile-%06d.bin", cuboid))
		if err := writeTile(path, objs); err != nil {
			return fmt.Errorf("storage: writing %s: %w", path, err)
		}
	}
	return nil
}

func writeTile(path string, objs []*Object) error {
	return AtomicWriteFile(path, encodeTile(objs), 0o644)
}

// AtomicWriteFile writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place, so a crash mid-write
// leaves either the old file or nothing — never a torn file. The temp name
// appends ".tmp-" to the base name, so abandoned temps never match the
// tile-*.bin load glob.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once the rename has happened
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

// encodeTile serializes one cuboid's objects in the v2 tile layout.
func encodeTile(objs []*Object) []byte {
	var buf []byte
	buf = append(buf, tileMagicV2[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(objs)))
	for _, o := range objs {
		start := len(buf)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.ID))
		blob := o.Comp.Bytes()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// LoadTiles reads every tile-*.bin under dir and rebuilds a Tileset using
// the given grid, strictly: any unreadable or corrupt tile fails the whole
// load, and object IDs must be dense 0..n-1.
func LoadTiles(dir string, grid Grid) (*Tileset, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "tile-*.bin"))
	if err != nil {
		return nil, err
	}
	byID := map[int64]*Object{}
	var maxID int64 = -1
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		objs, err := parseTile(data)
		if err != nil {
			return nil, fmt.Errorf("%w (%s)", err, path)
		}
		for _, o := range objs {
			byID[o.ID] = o
			if o.ID > maxID {
				maxID = o.ID
			}
		}
	}
	// IDs must be dense 0..n-1; checking before allocating keeps one tile
	// claiming a huge ID from forcing a huge slice.
	if int64(len(byID)) != maxID+1 {
		return nil, fmt.Errorf("%w: object IDs not dense (%d objects, max ID %d)", ErrBadTile, len(byID), maxID)
	}
	return assembleTileset(grid, byID, maxID), nil
}

// SalvageReport is the manifest of a LoadTilesSalvage run: what loaded,
// what was skipped wholesale, and which objects were dropped.
type SalvageReport struct {
	ObjectsLoaded  int             `json:"objects_loaded"`
	TilesLoaded    int             `json:"tiles_loaded"`
	TilesSkipped   []SkippedTile   `json:"tiles_skipped,omitempty"`
	ObjectsDropped []DroppedObject `json:"objects_dropped,omitempty"`
}

// Clean reports whether nothing was lost.
func (r *SalvageReport) Clean() bool {
	return len(r.TilesSkipped) == 0 && len(r.ObjectsDropped) == 0
}

// SkippedTile records one tile file dropped wholesale.
type SkippedTile struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
}

// DroppedObject records one object dropped from an otherwise loadable
// tile. ID is best-effort: a record whose checksum failed may report a
// garbage ID, and ID -1 marks records that could not be located at all.
type DroppedObject struct {
	Path   string `json:"path,omitempty"`
	ID     int64  `json:"id"`
	Reason string `json:"reason"`
}

// LoadTilesSalvage loads what it can from dir: tiles that cannot be read
// or parsed are skipped, records whose per-object CRC fails (v2 tiles) are
// dropped, and sparse IDs are tolerated — the returned Tileset's Objects
// slice has nil holes where objects were lost. The report lists everything
// lost; it errors only when dir itself is unusable.
func LoadTilesSalvage(dir string, grid Grid) (*Tileset, *SalvageReport, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "tile-*.bin"))
	if err != nil {
		return nil, nil, err
	}
	rep := &SalvageReport{}
	byID := map[int64]*Object{}
	var maxID int64 = -1
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			rep.TilesSkipped = append(rep.TilesSkipped, SkippedTile{Path: path, Reason: err.Error()})
			continue
		}
		objs, drops, err := salvageTile(data)
		if err != nil {
			rep.TilesSkipped = append(rep.TilesSkipped, SkippedTile{Path: path, Reason: err.Error()})
			continue
		}
		rep.TilesLoaded++
		for i := range drops {
			drops[i].Path = path
		}
		rep.ObjectsDropped = append(rep.ObjectsDropped, drops...)
		for _, o := range objs {
			if _, ok := byID[o.ID]; ok {
				rep.ObjectsDropped = append(rep.ObjectsDropped, DroppedObject{Path: path, ID: o.ID, Reason: "duplicate object ID"})
				continue
			}
			byID[o.ID] = o
			if o.ID > maxID {
				maxID = o.ID
			}
		}
	}
	rep.ObjectsLoaded = len(byID)
	return assembleTileset(grid, byID, maxID), rep, nil
}

func assembleTileset(grid Grid, byID map[int64]*Object, maxID int64) *Tileset {
	ts := &Tileset{Grid: grid, Tiles: make(map[int][]*Object)}
	ts.Objects = make([]*Object, maxID+1)
	for id, o := range byID {
		o.Cuboid = grid.CuboidOf(o.MBB().Center())
		ts.Objects[id] = o
		ts.Tiles[o.Cuboid] = append(ts.Tiles[o.Cuboid], o)
	}
	return ts
}

// parseTile strictly parses one tile file of either version.
func parseTile(data []byte) ([]*Object, error) {
	data = faultinject.Corrupt(faultinject.PointStorageTile, data)
	if len(data) < 12 {
		return nil, ErrBadTile
	}
	switch [4]byte(data[:4]) {
	case tileMagic:
		return parseTileV1(data)
	case tileMagicV2:
		return parseTileV2(data)
	}
	return nil, ErrBadTile
}

func parseTileV1(data []byte) ([]*Object, error) {
	payload := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadTile)
	}
	data = payload
	count := binary.LittleEndian.Uint32(data[4:8])
	// Every object needs at least a 12-byte header, so a larger count is
	// corrupt; checking first bounds the preallocation by the data present.
	if int64(count) > int64(len(data)-8)/12 {
		return nil, fmt.Errorf("%w: object count exceeds file size", ErrBadTile)
	}
	off := 8
	objs := make([]*Object, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+12 > len(data) {
			return nil, ErrBadTile
		}
		id := int64(binary.LittleEndian.Uint64(data[off:]))
		blobLen := int(binary.LittleEndian.Uint32(data[off+8:]))
		off += 12
		if off+blobLen > len(data) {
			return nil, ErrBadTile
		}
		comp, err := ppvp.FromBytes(data[off : off+blobLen])
		if err != nil {
			return nil, err
		}
		off += blobLen
		objs = append(objs, &Object{ID: id, Comp: comp})
	}
	if off != len(data) {
		return nil, ErrBadTile
	}
	return objs, nil
}

func parseTileV2(data []byte) ([]*Object, error) {
	payload := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadTile)
	}
	count := binary.LittleEndian.Uint32(payload[4:8])
	// A v2 record is at least 16 bytes (id + length + record CRC).
	if int64(count) > int64(len(payload)-8)/16 {
		return nil, fmt.Errorf("%w: object count exceeds file size", ErrBadTile)
	}
	off := 8
	objs := make([]*Object, 0, count)
	for i := uint32(0); i < count; i++ {
		o, next, err := parseRecordV2(payload, off)
		if err != nil {
			return nil, err
		}
		objs = append(objs, o)
		off = next
	}
	if off != len(payload) {
		return nil, ErrBadTile
	}
	return objs, nil
}

// parseRecordV2 reads one v2 record at off, verifying its CRC, and returns
// the object plus the offset of the next record.
func parseRecordV2(data []byte, off int) (*Object, int, error) {
	if off+16 > len(data) {
		return nil, 0, ErrBadTile
	}
	id := int64(binary.LittleEndian.Uint64(data[off:]))
	blobLen := int(binary.LittleEndian.Uint32(data[off+8:]))
	end := off + 12 + blobLen
	if end+4 > len(data) {
		return nil, 0, ErrBadTile
	}
	want := binary.LittleEndian.Uint32(data[end:])
	if crc32.ChecksumIEEE(data[off:end]) != want {
		return nil, 0, fmt.Errorf("%w: object %d checksum mismatch", ErrBadTile, id)
	}
	comp, err := ppvp.FromBytes(data[off+12 : end])
	if err != nil {
		return nil, 0, err
	}
	return &Object{ID: id, Comp: comp}, end + 4, nil
}

// salvageTile parses what it can of one tile. v1 tiles are all-or-nothing
// (there are no per-record CRCs to trust); v2 tiles are walked record by
// record, dropping records whose CRC fails and stopping when a corrupt
// length makes the rest of the file unwalkable.
func salvageTile(data []byte) ([]*Object, []DroppedObject, error) {
	data = faultinject.Corrupt(faultinject.PointStorageTile, data)
	if len(data) < 12 {
		return nil, nil, ErrBadTile
	}
	switch [4]byte(data[:4]) {
	case tileMagic:
		objs, err := parseTileV1(data)
		return objs, nil, err
	case tileMagicV2:
		objs, drops := salvageTileV2(data)
		return objs, drops, nil
	}
	return nil, nil, fmt.Errorf("%w: unknown magic", ErrBadTile)
}

func salvageTileV2(data []byte) ([]*Object, []DroppedObject) {
	// When the whole-file CRC holds, the count field and record layout are
	// trustworthy; otherwise walk the full file and let per-record CRCs
	// decide what survives (the count itself may be the corrupted field).
	crcOK := crc32.ChecksumIEEE(data[:len(data)-4]) == binary.LittleEndian.Uint32(data[len(data)-4:])
	limit := len(data)
	if crcOK {
		limit -= 4
	}
	count := int(binary.LittleEndian.Uint32(data[4:8]))
	var objs []*Object
	var drops []DroppedObject
	off, processed := 8, 0
	for off+16 <= limit && !(crcOK && processed >= count) {
		id := int64(binary.LittleEndian.Uint64(data[off:]))
		blobLen := int(binary.LittleEndian.Uint32(data[off+8:]))
		end := off + 12 + blobLen
		if end+4 > limit {
			// The length field cannot be trusted, so no record past this
			// point can be located.
			break
		}
		switch want := binary.LittleEndian.Uint32(data[end:]); {
		case crc32.ChecksumIEEE(data[off:end]) != want:
			drops = append(drops, DroppedObject{ID: id, Reason: "record checksum mismatch"})
		case id < 0 || id >= maxSalvageID:
			drops = append(drops, DroppedObject{ID: id, Reason: "implausible object ID"})
		default:
			if comp, err := ppvp.FromBytes(data[off+12 : end]); err != nil {
				drops = append(drops, DroppedObject{ID: id, Reason: "blob rejected: " + err.Error()})
			} else {
				objs = append(objs, &Object{ID: id, Comp: comp})
			}
		}
		off = end + 4
		processed++
	}
	if crcOK && processed < count {
		drops = append(drops, DroppedObject{ID: -1, Reason: fmt.Sprintf("%d trailing records unreadable", count-processed)})
	} else if !crcOK && off+16 <= len(data) {
		drops = append(drops, DroppedObject{ID: -1, Reason: "unreadable tail"})
	}
	return objs, drops
}
