// Package storage implements the memory-centered data layout of the paper's
// §5.3: space is partitioned into fixed-size cuboids, the compressed blobs
// of the objects in one cuboid are stored contiguously in one tile (one
// file when persisted, one memory region when loaded), and object MBBs plus
// blob locations are exposed so the engine can build a single global R-tree
// over everything without decoding.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/ppvp"
)

// ErrBadTile is returned when a tile file cannot be parsed.
var ErrBadTile = errors.New("storage: corrupt tile file")

// Grid divides a space box into nx × ny × nz cuboids.
type Grid struct {
	Space      geom.Box3
	Nx, Ny, Nz int
}

// NewGrid builds a grid over space with roughly the requested number of
// cuboids, keeping cuboids close to cubical.
func NewGrid(space geom.Box3, cuboids int) Grid {
	if cuboids < 1 {
		cuboids = 1
	}
	size := space.Size()
	// Scale per-axis counts with the space aspect ratio.
	vol := size.X * size.Y * size.Z
	if vol <= 0 {
		return Grid{Space: space, Nx: cuboids, Ny: 1, Nz: 1}
	}
	edge := cbrt(vol / float64(cuboids))
	nx := maxInt(1, int(size.X/edge+0.5))
	ny := maxInt(1, int(size.Y/edge+0.5))
	nz := maxInt(1, int(size.Z/edge+0.5))
	return Grid{Space: space, Nx: nx, Ny: ny, Nz: nz}
}

func cbrt(v float64) float64 {
	if v <= 0 {
		return 1
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (2*x + v/(x*x)) / 3
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NumCuboids returns the total cuboid count.
func (g Grid) NumCuboids() int { return g.Nx * g.Ny * g.Nz }

// CuboidOf returns the cuboid index of a point (clamped into the grid).
func (g Grid) CuboidOf(p geom.Vec3) int {
	size := g.Space.Size()
	ix := clampIdx(p.X-g.Space.Min.X, size.X, g.Nx)
	iy := clampIdx(p.Y-g.Space.Min.Y, size.Y, g.Ny)
	iz := clampIdx(p.Z-g.Space.Min.Z, size.Z, g.Nz)
	return (iz*g.Ny+iy)*g.Nx + ix
}

func clampIdx(off, size float64, n int) int {
	if size <= 0 || n <= 1 {
		return 0
	}
	i := int(off / size * float64(n))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// CuboidBox returns the spatial extent of cuboid i.
func (g Grid) CuboidBox(i int) geom.Box3 {
	ix := i % g.Nx
	iy := (i / g.Nx) % g.Ny
	iz := i / (g.Nx * g.Ny)
	size := g.Space.Size()
	dx := size.X / float64(g.Nx)
	dy := size.Y / float64(g.Ny)
	dz := size.Z / float64(g.Nz)
	min := geom.V(
		g.Space.Min.X+float64(ix)*dx,
		g.Space.Min.Y+float64(iy)*dy,
		g.Space.Min.Z+float64(iz)*dz,
	)
	return geom.Box3{Min: min, Max: min.Add(geom.V(dx, dy, dz))}
}

// Object is one stored object: its ID, MBB, cuboid, and compressed form.
type Object struct {
	ID     int64
	Cuboid int
	Comp   *ppvp.Compressed
}

// MBB returns the object's minimal bounding box (from the compressed
// header; no decoding).
func (o *Object) MBB() geom.Box3 { return o.Comp.MBB() }

// Tileset holds the objects of one dataset grouped by cuboid, all in
// memory, mirroring the paper's load-everything-compressed design.
type Tileset struct {
	Grid    Grid
	Objects []*Object         // by position; Objects[i].ID == int64(i)
	Tiles   map[int][]*Object // cuboid → objects
}

// NewTileset groups compressed objects into cuboids by MBB center and
// assigns sequential IDs.
func NewTileset(grid Grid, comps []*ppvp.Compressed) *Tileset {
	ts := &Tileset{Grid: grid, Tiles: make(map[int][]*Object)}
	for i, c := range comps {
		o := &Object{ID: int64(i), Cuboid: grid.CuboidOf(c.MBB().Center()), Comp: c}
		ts.Objects = append(ts.Objects, o)
		ts.Tiles[o.Cuboid] = append(ts.Tiles[o.Cuboid], o)
	}
	return ts
}

// Object returns the object with the given ID, or nil.
func (ts *Tileset) Object(id int64) *Object {
	if id < 0 || id >= int64(len(ts.Objects)) {
		return nil
	}
	return ts.Objects[id]
}

// CompressedBytes returns the total compressed footprint of the dataset.
func (ts *Tileset) CompressedBytes() int64 {
	var n int64
	for _, o := range ts.Objects {
		n += int64(o.Comp.TotalSize())
	}
	return n
}

// Tile file layout: magic "3DTL", u32 count, then per object: u64 id,
// u32 blob length, blob bytes; the file ends with a CRC-32 (IEEE) of
// everything before it, so torn or bit-rotted tiles fail loudly at load.
var tileMagic = [4]byte{'3', 'D', 'T', 'L'}

// SaveTiles persists each cuboid's objects as one file tile-<cuboid>.bin
// under dir (created if needed).
func (ts *Tileset) SaveTiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for cuboid, objs := range ts.Tiles {
		path := filepath.Join(dir, fmt.Sprintf("tile-%06d.bin", cuboid))
		if err := writeTile(path, objs); err != nil {
			return fmt.Errorf("storage: writing %s: %w", path, err)
		}
	}
	return nil
}

func writeTile(path string, objs []*Object) error {
	return os.WriteFile(path, encodeTile(objs), 0o644)
}

// encodeTile serializes one cuboid's objects in the tile file layout.
func encodeTile(objs []*Object) []byte {
	var buf []byte
	buf = append(buf, tileMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(objs)))
	for _, o := range objs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.ID))
		blob := o.Comp.Bytes()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// LoadTiles reads every tile-*.bin under dir and rebuilds a Tileset using
// the given grid. Object IDs are taken from the files.
func LoadTiles(dir string, grid Grid) (*Tileset, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "tile-*.bin"))
	if err != nil {
		return nil, err
	}
	byID := map[int64]*Object{}
	var maxID int64 = -1
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		objs, err := parseTile(data)
		if err != nil {
			return nil, fmt.Errorf("%w (%s)", err, path)
		}
		for _, o := range objs {
			byID[o.ID] = o
			if o.ID > maxID {
				maxID = o.ID
			}
		}
	}
	// IDs must be dense 0..n-1; checking before allocating keeps one tile
	// claiming a huge ID from forcing a huge slice.
	if int64(len(byID)) != maxID+1 {
		return nil, fmt.Errorf("%w: object IDs not dense (%d objects, max ID %d)", ErrBadTile, len(byID), maxID)
	}
	ts := &Tileset{Grid: grid, Tiles: make(map[int][]*Object)}
	ts.Objects = make([]*Object, maxID+1)
	for id, o := range byID {
		o.Cuboid = grid.CuboidOf(o.MBB().Center())
		ts.Objects[id] = o
		ts.Tiles[o.Cuboid] = append(ts.Tiles[o.Cuboid], o)
	}
	return ts, nil
}

func parseTile(data []byte) ([]*Object, error) {
	data = faultinject.Corrupt(faultinject.PointStorageTile, data)
	if len(data) < 12 || [4]byte(data[:4]) != tileMagic {
		return nil, ErrBadTile
	}
	payload := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadTile)
	}
	data = payload
	count := binary.LittleEndian.Uint32(data[4:8])
	// Every object needs at least a 12-byte header, so a larger count is
	// corrupt; checking first bounds the preallocation by the data present.
	if int64(count) > int64(len(data)-8)/12 {
		return nil, fmt.Errorf("%w: object count exceeds file size", ErrBadTile)
	}
	off := 8
	objs := make([]*Object, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+12 > len(data) {
			return nil, ErrBadTile
		}
		id := int64(binary.LittleEndian.Uint64(data[off:]))
		blobLen := int(binary.LittleEndian.Uint32(data[off+8:]))
		off += 12
		if off+blobLen > len(data) {
			return nil, ErrBadTile
		}
		comp, err := ppvp.FromBytes(data[off : off+blobLen])
		if err != nil {
			return nil, err
		}
		off += blobLen
		objs = append(objs, &Object{ID: id, Comp: comp})
	}
	if off != len(data) {
		return nil, ErrBadTile
	}
	return objs, nil
}
