package storage

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

func tileSeed(t testing.TB, n int) []byte {
	var objs []*Object
	for i := 0; i < n; i++ {
		c, _, err := ppvp.Compress(mesh.Icosphere(float64(i+1), 1), ppvp.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, &Object{ID: int64(i), Comp: c})
	}
	return encodeTile(objs)
}

// FuzzDecodeTile feeds arbitrary bytes through tile parsing and (for tiles
// that parse) first-LOD decoding. Corrupt input must surface as an error —
// never a panic or an allocation driven by a corrupt header count.
func FuzzDecodeTile(f *testing.F) {
	f.Add(tileSeed(f, 2))
	f.Add(tileSeed(f, 0))
	f.Add([]byte{})
	f.Add([]byte("TILE"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The salvage walk must never panic either, whatever the bytes.
		salvaged, _, _ := salvageTile(data)
		objs, err := parseTile(data)
		if err != nil {
			objs = salvaged
		}
		for _, o := range objs {
			d, err := o.Comp.NewDecoder()
			if err != nil {
				continue
			}
			d.DecodeTo(0)
		}
	})
}

// TestCorruptTileFaultDetected arms the storage.tile corrupt fault and
// checks the CRC catches the flipped bytes.
func TestCorruptTileFaultDetected(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	data := tileSeed(t, 2)
	if _, err := parseTile(data); err != nil {
		t.Fatalf("clean tile failed to parse: %v", err)
	}
	faultinject.Arm(faultinject.PointStorageTile, faultinject.Fault{Corrupt: true})
	if _, err := parseTile(data); !errors.Is(err, ErrBadTile) {
		t.Fatalf("corrupted tile err = %v, want ErrBadTile", err)
	}
}
