// Package quarantine implements circuit breakers for the engine's
// partial-failure tolerance. The original (and still primary) instantiation
// is the per-object registry: an object whose decode keeps failing (corrupt
// blob, geometry that panics the evaluator) is tripped open so later queries
// skip it — with a recorded reason — instead of burning retries or failing
// whole joins on it forever. The breaker core is generic over its key, so
// the same lifecycle also guards coarser failure domains: the sharded
// serving tier (internal/shard) keys a Breaker[int] by shard index, turning
// a dead or flapping shard into a degraded answer rather than a failed
// query.
//
// The lifecycle mirrors a classic circuit breaker:
//
//	Closed    healthy; failures accumulate toward Threshold
//	Open      quarantined; Allow reports false until Cooldown elapses
//	HalfOpen  probation; exactly one caller is let through as a probe —
//	          success closes the breaker, failure re-opens it
//
// Breakers are safe for concurrent use. The untracked fast path (no key has
// ever failed) is a single atomic load, so healthy workloads pay nothing.
package quarantine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one object of one dataset (by the engine's dataset
// sequence number, which also namespaces decode-cache keys).
type Key struct {
	Dataset int64
	Object  int64
}

// State is the breaker state of one key.
type State int

const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Options tunes the breaker.
type Options struct {
	// Threshold is the failure count that trips a key open
	// (default 3). Failures reset on any success.
	Threshold int
	// Cooldown is how long an open key stays fully blocked before a
	// half-open probe is allowed (default 30s).
	Cooldown time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (o *Options) setDefaults() {
	if o.Threshold <= 0 {
		o.Threshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Entry is a snapshot of one tracked object of the object Registry.
type Entry struct {
	Key         Key       `json:"-"`
	Dataset     int64     `json:"dataset_seq"`
	Object      int64     `json:"object"`
	State       string    `json:"state"`
	Failures    int       `json:"failures"`
	Reason      string    `json:"reason,omitempty"`
	TrippedAt   time.Time `json:"tripped_at,omitempty"`
	LastFailure time.Time `json:"last_failure,omitempty"`
}

// EntryOf is a snapshot of one tracked key of a generic Breaker.
type EntryOf[K comparable] struct {
	Key         K
	State       State
	Failures    int
	Reason      string
	TrippedAt   time.Time
	LastFailure time.Time
}

// Stats aggregates breaker counters. The server samples it at scrape time
// to back the threedpro_quarantine_* metric families, so /metrics, /statusz,
// and this snapshot always agree.
type Stats struct {
	// Open and HalfOpen count keys currently in those states.
	Open     int `json:"open"`
	HalfOpen int `json:"half_open"`
	// Tracked counts all keys with breaker records (including closed
	// ones that have failed but not tripped).
	Tracked int `json:"tracked"`
	// Failures counts every recorded failure; Trips every closed→open
	// transition; Probes every half-open admission; Reinstated every
	// successful probe that closed the breaker again.
	Failures   int64 `json:"failures"`
	Trips      int64 `json:"trips"`
	Probes     int64 `json:"probes"`
	Reinstated int64 `json:"reinstated"`
	// Skips counts Allow calls rejected because the key was open.
	Skips int64 `json:"skips"`
}

type object struct {
	state       State
	failures    int
	reason      string
	trippedAt   time.Time
	lastFailure time.Time
	probing     bool // a half-open probe is in flight
}

// Breaker is a generic circuit-breaker table keyed by any comparable
// failure-domain identifier: quarantine.Key for per-object decode health,
// a shard index for the sharded serving tier.
type Breaker[K comparable] struct {
	opts Options

	// tracked is the fast-path gate: zero means no key has ever
	// failed, so Allow/Success return without locking.
	tracked atomic.Int64

	mu   sync.Mutex
	objs map[K]*object

	failures   int64
	trips      int64
	probes     int64
	reinstated int64
	skips      atomic.Int64
}

// NewBreaker returns a generic breaker with the given options.
func NewBreaker[K comparable](opts Options) *Breaker[K] {
	b := &Breaker[K]{}
	b.init(opts)
	return b
}

// init prepares a zero Breaker in place (the value may be embedded, so the
// constructor cannot return it by copy once the mutex is live).
func (b *Breaker[K]) init(opts Options) {
	opts.setDefaults()
	b.opts = opts
	b.objs = make(map[K]*object)
}

// Registry is the engine-wide per-object breaker table (the original,
// object-keyed instantiation of Breaker).
type Registry struct {
	Breaker[Key]
}

// New returns an object registry with the given options.
func New(opts Options) *Registry {
	r := &Registry{}
	r.init(opts)
	return r
}

// Allow reports whether the key may be processed. Open keys are blocked
// until their cooldown elapses, at which point exactly one caller is
// admitted as a half-open probe; a Success or Failure from that probe
// settles the breaker.
func (b *Breaker[K]) Allow(k K) bool {
	if b.tracked.Load() == 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objs[k]
	if !ok || o.state == Closed {
		return true
	}
	now := b.opts.Now()
	if o.state == Open && now.Sub(o.trippedAt) >= b.opts.Cooldown {
		o.state = HalfOpen
		o.probing = false
	}
	if o.state == HalfOpen && !o.probing {
		o.probing = true
		b.probes++
		return true
	}
	b.skips.Add(1)
	return false
}

// Failure records one failure of the key, tripping it open when the
// threshold is reached (or immediately when it was half-open). It returns
// true when this call transitioned the key to Open.
func (b *Breaker[K]) Failure(k K, reason string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objs[k]
	if !ok {
		o = &object{}
		b.objs[k] = o
		b.tracked.Add(1)
	}
	b.failures++
	o.failures++
	o.lastFailure = b.opts.Now()
	if o.reason == "" || o.state != Open {
		o.reason = reason
	}
	switch o.state {
	case HalfOpen:
		// Failed probe: straight back to open, cooldown restarts.
		o.state = Open
		o.probing = false
		o.trippedAt = o.lastFailure
		b.trips++
		return true
	case Closed:
		if o.failures >= b.opts.Threshold {
			o.state = Open
			o.trippedAt = o.lastFailure
			b.trips++
			return true
		}
	}
	return false
}

// Trip quarantines the key immediately (used for objects dropped during
// salvage loading, where the damage is already proven).
func (b *Breaker[K]) Trip(k K, reason string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objs[k]
	if !ok {
		o = &object{}
		b.objs[k] = o
		b.tracked.Add(1)
	}
	if o.state != Open {
		b.trips++
	}
	o.state = Open
	o.probing = false
	o.failures = max(o.failures, b.opts.Threshold)
	o.reason = reason
	o.trippedAt = b.opts.Now()
	o.lastFailure = o.trippedAt
}

// Success records a healthy interaction: a successful half-open probe
// closes the breaker; a success on a closed key resets its failure
// count. Untracked keys return on the atomic fast path.
func (b *Breaker[K]) Success(k K) {
	if b.tracked.Load() == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objs[k]
	if !ok {
		return
	}
	switch o.state {
	case HalfOpen:
		b.reinstated++
		fallthrough
	case Closed:
		// Fully healthy again: forget the record so the fast path can
		// recover once every tracked key heals.
		delete(b.objs, k)
		b.tracked.Add(-1)
	case Open:
		// A success while open can only come from a caller that was
		// admitted before the trip; the breaker stays open.
	}
}

// Release cancels an in-flight half-open probe without a verdict (the
// caller was interrupted — query cancelled — before the key could prove
// or disprove itself). The next Allow re-admits a probe. No-op for keys
// in any other state.
func (b *Breaker[K]) Release(k K) {
	if b.tracked.Load() == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if o, ok := b.objs[k]; ok && o.state == HalfOpen {
		o.probing = false
	}
}

// Quarantined reports whether the key is currently open or half-open.
func (b *Breaker[K]) Quarantined(k K) bool {
	if b.tracked.Load() == 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objs[k]
	return ok && o.state != Closed
}

// State returns the key's current breaker state (Closed for untracked
// keys), applying the same cooldown transition Allow would: an open key
// whose cooldown has elapsed reports HalfOpen.
func (b *Breaker[K]) State(k K) State {
	if b.tracked.Load() == 0 {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objs[k]
	if !ok {
		return Closed
	}
	if o.state == Open && b.opts.Now().Sub(o.trippedAt) >= b.opts.Cooldown {
		return HalfOpen
	}
	return o.state
}

// Len returns the number of keys currently open or half-open.
func (b *Breaker[K]) Len() int {
	if b.tracked.Load() == 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, o := range b.objs {
		if o.state != Closed {
			n++
		}
	}
	return n
}

// Entries returns every tracked key's record, in map order: generic
// breakers cannot order arbitrary keys, so callers sort.
func (b *Breaker[K]) Entries() []EntryOf[K] {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]EntryOf[K], 0, len(b.objs))
	for k, o := range b.objs {
		out = append(out, EntryOf[K]{
			Key: k, State: o.state, Failures: o.failures, Reason: o.reason,
			TrippedAt: o.trippedAt, LastFailure: o.lastFailure,
		})
	}
	return out
}

// Snapshot returns every tracked object, ordered by (dataset, object).
func (r *Registry) Snapshot() []Entry {
	raw := r.Entries()
	out := make([]Entry, len(raw))
	for i, e := range raw {
		out[i] = Entry{
			Key: e.Key, Dataset: e.Key.Dataset, Object: e.Key.Object,
			State: e.State.String(), Failures: e.Failures, Reason: e.Reason,
			TrippedAt: e.TrippedAt, LastFailure: e.LastFailure,
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Dataset != out[j].Key.Dataset {
			return out[i].Key.Dataset < out[j].Key.Dataset
		}
		return out[i].Key.Object < out[j].Key.Object
	})
	return out
}

// Stats returns a snapshot of the counters.
func (b *Breaker[K]) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{
		Tracked:  len(b.objs),
		Failures: b.failures, Trips: b.trips,
		Probes: b.probes, Reinstated: b.reinstated,
		Skips: b.skips.Load(),
	}
	for _, o := range b.objs {
		switch o.state {
		case Open:
			st.Open++
		case HalfOpen:
			st.HalfOpen++
		}
	}
	return st
}

// Reset forgets every tracked key (counters included).
func (b *Breaker[K]) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracked.Store(0)
	b.objs = make(map[K]*object)
	b.failures, b.trips, b.probes, b.reinstated = 0, 0, 0, 0
	b.skips.Store(0)
}
