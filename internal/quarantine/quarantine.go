// Package quarantine implements a per-object circuit breaker for the query
// engine's partial-failure tolerance: an object whose decode keeps failing
// (corrupt blob, geometry that panics the evaluator) is tripped open so
// later queries skip it — with a recorded reason — instead of burning
// retries or failing whole joins on it forever.
//
// The lifecycle mirrors a classic circuit breaker:
//
//	Closed    healthy; failures accumulate toward Threshold
//	Open      quarantined; Allow reports false until Cooldown elapses
//	HalfOpen  probation; exactly one caller is let through as a probe —
//	          success closes the breaker, failure re-opens it
//
// The registry is engine-wide and safe for concurrent use. The untracked
// fast path (no object has ever failed) is a single atomic load, so healthy
// workloads pay nothing.
package quarantine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one object of one dataset (by the engine's dataset
// sequence number, which also namespaces decode-cache keys).
type Key struct {
	Dataset int64
	Object  int64
}

// State is the breaker state of one object.
type State int

const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Options tunes the breaker.
type Options struct {
	// Threshold is the failure count that trips an object open
	// (default 3). Failures reset on any success.
	Threshold int
	// Cooldown is how long an open object stays fully blocked before a
	// half-open probe is allowed (default 30s).
	Cooldown time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (o *Options) setDefaults() {
	if o.Threshold <= 0 {
		o.Threshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Entry is a snapshot of one tracked object.
type Entry struct {
	Key         Key       `json:"-"`
	Dataset     int64     `json:"dataset_seq"`
	Object      int64     `json:"object"`
	State       string    `json:"state"`
	Failures    int       `json:"failures"`
	Reason      string    `json:"reason,omitempty"`
	TrippedAt   time.Time `json:"tripped_at,omitempty"`
	LastFailure time.Time `json:"last_failure,omitempty"`
}

// Stats aggregates registry counters. The server samples it at scrape time
// to back the threedpro_quarantine_* metric families, so /metrics, /statusz,
// and this snapshot always agree.
type Stats struct {
	// Open and HalfOpen count objects currently in those states.
	Open     int `json:"open"`
	HalfOpen int `json:"half_open"`
	// Tracked counts all objects with breaker records (including closed
	// ones that have failed but not tripped).
	Tracked int `json:"tracked"`
	// Failures counts every recorded failure; Trips every closed→open
	// transition; Probes every half-open admission; Reinstated every
	// successful probe that closed the breaker again.
	Failures   int64 `json:"failures"`
	Trips      int64 `json:"trips"`
	Probes     int64 `json:"probes"`
	Reinstated int64 `json:"reinstated"`
	// Skips counts Allow calls rejected because the object was open.
	Skips int64 `json:"skips"`
}

type object struct {
	state       State
	failures    int
	reason      string
	trippedAt   time.Time
	lastFailure time.Time
	probing     bool // a half-open probe is in flight
}

// Registry is the engine-wide breaker table.
type Registry struct {
	opts Options

	// tracked is the fast-path gate: zero means no object has ever
	// failed, so Allow/Success return without locking.
	tracked atomic.Int64

	mu   sync.Mutex
	objs map[Key]*object

	failures   int64
	trips      int64
	probes     int64
	reinstated int64
	skips      atomic.Int64
}

// New returns a registry with the given options.
func New(opts Options) *Registry {
	opts.setDefaults()
	return &Registry{opts: opts, objs: make(map[Key]*object)}
}

// Allow reports whether the object may be processed. Open objects are
// blocked until their cooldown elapses, at which point exactly one caller
// is admitted as a half-open probe; a Success or Failure from that probe
// settles the breaker.
func (r *Registry) Allow(k Key) bool {
	if r.tracked.Load() == 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objs[k]
	if !ok || o.state == Closed {
		return true
	}
	now := r.opts.Now()
	if o.state == Open && now.Sub(o.trippedAt) >= r.opts.Cooldown {
		o.state = HalfOpen
		o.probing = false
	}
	if o.state == HalfOpen && !o.probing {
		o.probing = true
		r.probes++
		return true
	}
	r.skips.Add(1)
	return false
}

// Failure records one failure of the object, tripping it open when the
// threshold is reached (or immediately when it was half-open). It returns
// true when this call transitioned the object to Open.
func (r *Registry) Failure(k Key, reason string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objs[k]
	if !ok {
		o = &object{}
		r.objs[k] = o
		r.tracked.Add(1)
	}
	r.failures++
	o.failures++
	o.lastFailure = r.opts.Now()
	if o.reason == "" || o.state != Open {
		o.reason = reason
	}
	switch o.state {
	case HalfOpen:
		// Failed probe: straight back to open, cooldown restarts.
		o.state = Open
		o.probing = false
		o.trippedAt = o.lastFailure
		r.trips++
		return true
	case Closed:
		if o.failures >= r.opts.Threshold {
			o.state = Open
			o.trippedAt = o.lastFailure
			r.trips++
			return true
		}
	}
	return false
}

// Trip quarantines the object immediately (used for objects dropped during
// salvage loading, where the damage is already proven).
func (r *Registry) Trip(k Key, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objs[k]
	if !ok {
		o = &object{}
		r.objs[k] = o
		r.tracked.Add(1)
	}
	if o.state != Open {
		r.trips++
	}
	o.state = Open
	o.probing = false
	o.failures = max(o.failures, r.opts.Threshold)
	o.reason = reason
	o.trippedAt = r.opts.Now()
	o.lastFailure = o.trippedAt
}

// Success records a healthy interaction: a successful half-open probe
// closes the breaker; a success on a closed object resets its failure
// count. Untracked objects return on the atomic fast path.
func (r *Registry) Success(k Key) {
	if r.tracked.Load() == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objs[k]
	if !ok {
		return
	}
	switch o.state {
	case HalfOpen:
		r.reinstated++
		fallthrough
	case Closed:
		// Fully healthy again: forget the record so the fast path can
		// recover once every tracked object heals.
		delete(r.objs, k)
		r.tracked.Add(-1)
	case Open:
		// A success while open can only come from a caller that was
		// admitted before the trip; the breaker stays open.
	}
}

// Release cancels an in-flight half-open probe without a verdict (the
// caller was interrupted — query cancelled — before the object could prove
// or disprove itself). The next Allow re-admits a probe. No-op for objects
// in any other state.
func (r *Registry) Release(k Key) {
	if r.tracked.Load() == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if o, ok := r.objs[k]; ok && o.state == HalfOpen {
		o.probing = false
	}
}

// Quarantined reports whether the object is currently open or half-open.
func (r *Registry) Quarantined(k Key) bool {
	if r.tracked.Load() == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objs[k]
	return ok && o.state != Closed
}

// Len returns the number of objects currently open or half-open.
func (r *Registry) Len() int {
	if r.tracked.Load() == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, o := range r.objs {
		if o.state != Closed {
			n++
		}
	}
	return n
}

// Snapshot returns every tracked object, ordered by (dataset, object).
func (r *Registry) Snapshot() []Entry {
	r.mu.Lock()
	out := make([]Entry, 0, len(r.objs))
	for k, o := range r.objs {
		out = append(out, Entry{
			Key: k, Dataset: k.Dataset, Object: k.Object,
			State: o.state.String(), Failures: o.failures, Reason: o.reason,
			TrippedAt: o.trippedAt, LastFailure: o.lastFailure,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Dataset != out[j].Key.Dataset {
			return out[i].Key.Dataset < out[j].Key.Dataset
		}
		return out[i].Key.Object < out[j].Key.Object
	})
	return out
}

// Stats returns a snapshot of the counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Tracked:  len(r.objs),
		Failures: r.failures, Trips: r.trips,
		Probes: r.probes, Reinstated: r.reinstated,
		Skips: r.skips.Load(),
	}
	for _, o := range r.objs {
		switch o.state {
		case Open:
			st.Open++
		case HalfOpen:
			st.HalfOpen++
		}
	}
	return st
}

// Reset forgets every tracked object (counters included).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracked.Store(0)
	r.objs = make(map[Key]*object)
	r.failures, r.trips, r.probes, r.reinstated = 0, 0, 0, 0
	r.skips.Store(0)
}
