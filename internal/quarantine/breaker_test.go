package quarantine

import (
	"testing"
	"time"
)

// TestGenericBreakerIntKeys drives the full lifecycle through a Breaker[int]
// — the shard-health instantiation — proving the generic core behaves
// exactly like the object registry: threshold trip, cooldown, half-open
// probe, reinstatement.
func TestGenericBreakerIntKeys(t *testing.T) {
	c := &clock{t: time.Unix(1000, 0)}
	b := NewBreaker[int](Options{Threshold: 2, Cooldown: time.Minute, Now: c.now})

	if !b.Allow(3) {
		t.Fatal("untracked shard blocked")
	}
	if st := b.State(3); st != Closed {
		t.Fatalf("state = %v, want closed", st)
	}
	b.Failure(3, "conn refused")
	if tripped := b.Failure(3, "conn refused"); !tripped {
		t.Fatal("second failure did not trip with threshold 2")
	}
	if b.Allow(3) {
		t.Fatal("open shard admitted before cooldown")
	}
	if st := b.State(3); st != Open {
		t.Fatalf("state = %v, want open", st)
	}
	if !b.Allow(4) {
		t.Fatal("healthy shard blocked by a neighbor's breaker")
	}

	c.advance(time.Minute)
	if st := b.State(3); st != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	if !b.Allow(3) {
		t.Fatal("no probe admitted after cooldown")
	}
	if b.Allow(3) {
		t.Fatal("second probe admitted while first in flight")
	}
	b.Success(3)
	if st := b.State(3); st != Closed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if st := b.Stats(); st.Reinstated != 1 || st.Trips != 1 {
		t.Fatalf("stats = %+v, want 1 reinstated / 1 trip", st)
	}
}

// TestGenericBreakerEntries checks the unordered generic snapshot carries
// the key and state verbatim.
func TestGenericBreakerEntries(t *testing.T) {
	b := NewBreaker[int](Options{Threshold: 1, Cooldown: time.Minute})
	b.Failure(2, "rpc timeout")
	es := b.Entries()
	if len(es) != 1 {
		t.Fatalf("entries = %d, want 1", len(es))
	}
	e := es[0]
	if e.Key != 2 || e.State != Open || e.Failures != 1 || e.Reason != "rpc timeout" {
		t.Fatalf("entry = %+v", e)
	}
}

// TestRegistrySnapshotMatchesEntries proves the object registry's ordered
// Snapshot is a faithful view of the generic Entries.
func TestRegistrySnapshotMatchesEntries(t *testing.T) {
	r, _ := newTestRegistry(1, time.Minute)
	r.Failure(Key{Dataset: 2, Object: 9}, "bad blob")
	r.Failure(Key{Dataset: 1, Object: 5}, "bad blob")
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d entries, want 2", len(snap))
	}
	if snap[0].Dataset != 1 || snap[0].Object != 5 || snap[1].Dataset != 2 || snap[1].Object != 9 {
		t.Fatalf("snapshot not ordered by (dataset, object): %+v", snap)
	}
	if snap[0].State != "open" {
		t.Fatalf("state = %q, want open", snap[0].State)
	}
}
