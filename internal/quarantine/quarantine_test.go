package quarantine

import (
	"sync"
	"testing"
	"time"
)

// clock is a controllable time source.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestRegistry(threshold int, cooldown time.Duration) (*Registry, *clock) {
	c := &clock{t: time.Unix(1000, 0)}
	return New(Options{Threshold: threshold, Cooldown: cooldown, Now: c.now}), c
}

func TestHealthyFastPath(t *testing.T) {
	r, _ := newTestRegistry(3, time.Minute)
	k := Key{Dataset: 1, Object: 7}
	if !r.Allow(k) {
		t.Fatal("untracked object blocked")
	}
	r.Success(k) // no-op, must not create a record
	if st := r.Stats(); st.Tracked != 0 {
		t.Fatalf("tracked = %d after healthy traffic", st.Tracked)
	}
}

func TestTripAfterThreshold(t *testing.T) {
	r, _ := newTestRegistry(3, time.Minute)
	k := Key{Dataset: 1, Object: 7}
	for i := 0; i < 2; i++ {
		if tripped := r.Failure(k, "decode error"); tripped {
			t.Fatalf("tripped after %d failures", i+1)
		}
		if !r.Allow(k) {
			t.Fatalf("blocked before threshold (failure %d)", i+1)
		}
	}
	if !r.Failure(k, "decode error #3") {
		t.Fatal("third failure did not trip")
	}
	if r.Allow(k) {
		t.Fatal("open object allowed")
	}
	if !r.Quarantined(k) {
		t.Fatal("Quarantined false for open object")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].State != "open" || snap[0].Reason != "decode error #3" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSuccessResetsFailures(t *testing.T) {
	r, _ := newTestRegistry(3, time.Minute)
	k := Key{Dataset: 1, Object: 7}
	r.Failure(k, "transient")
	r.Failure(k, "transient")
	r.Success(k) // resets the count and forgets the record
	if st := r.Stats(); st.Tracked != 0 {
		t.Fatalf("tracked = %d after success", st.Tracked)
	}
	r.Failure(k, "x")
	r.Failure(k, "x")
	if r.Quarantined(k) {
		t.Fatal("tripped despite intervening success")
	}
}

func TestHalfOpenProbation(t *testing.T) {
	r, c := newTestRegistry(1, time.Minute)
	k := Key{Dataset: 2, Object: 3}
	r.Failure(k, "bad blob")
	if r.Allow(k) {
		t.Fatal("open object allowed before cooldown")
	}
	c.advance(61 * time.Second)
	// First caller after cooldown gets the probe; concurrent second caller
	// is still blocked.
	if !r.Allow(k) {
		t.Fatal("probe not admitted after cooldown")
	}
	if r.Allow(k) {
		t.Fatal("second caller admitted during probe")
	}
	// Successful probe reinstates the object fully.
	r.Success(k)
	if !r.Allow(k) || r.Quarantined(k) {
		t.Fatal("object not reinstated after successful probe")
	}
	if st := r.Stats(); st.Reinstated != 1 || st.Probes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailedProbeReopens(t *testing.T) {
	r, c := newTestRegistry(1, time.Minute)
	k := Key{Dataset: 2, Object: 3}
	r.Failure(k, "bad blob")
	c.advance(61 * time.Second)
	if !r.Allow(k) {
		t.Fatal("probe not admitted")
	}
	r.Failure(k, "still bad")
	if r.Allow(k) {
		t.Fatal("allowed right after failed probe")
	}
	// The cooldown restarted at the failed probe.
	c.advance(30 * time.Second)
	if r.Allow(k) {
		t.Fatal("allowed mid-cooldown after failed probe")
	}
	c.advance(31 * time.Second)
	if !r.Allow(k) {
		t.Fatal("second probe not admitted")
	}
}

func TestTripDirect(t *testing.T) {
	r, _ := newTestRegistry(5, time.Minute)
	k := Key{Dataset: 1, Object: 9}
	r.Trip(k, "dropped during salvage")
	if r.Allow(k) {
		t.Fatal("tripped object allowed")
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Reason != "dropped during salvage" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if st := r.Stats(); st.Trips != 1 || st.Open != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSkipCounter(t *testing.T) {
	r, _ := newTestRegistry(1, time.Minute)
	k := Key{Dataset: 1, Object: 1}
	r.Failure(k, "x")
	for i := 0; i < 4; i++ {
		r.Allow(k)
	}
	if st := r.Stats(); st.Skips != 4 {
		t.Fatalf("skips = %d, want 4", st.Skips)
	}
}

func TestReset(t *testing.T) {
	r, _ := newTestRegistry(1, time.Minute)
	r.Failure(Key{1, 1}, "x")
	r.Reset()
	if r.Len() != 0 || !r.Allow(Key{1, 1}) {
		t.Fatal("reset did not clear state")
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("counters survive reset: %+v", st)
	}
}

// TestConcurrentAccess hammers one key from many goroutines under -race.
func TestConcurrentAccess(t *testing.T) {
	r, c := newTestRegistry(3, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := Key{Dataset: int64(g % 2), Object: int64(g % 3)}
			for i := 0; i < 500; i++ {
				if r.Allow(k) {
					if i%3 == 0 {
						r.Failure(k, "f")
					} else {
						r.Success(k)
					}
				}
				if i%50 == 0 {
					c.advance(time.Millisecond)
				}
				r.Quarantined(k)
				r.Len()
			}
		}(g)
	}
	wg.Wait()
	r.Snapshot()
	r.Stats()
}
