// Package bench is the experiment harness: one driver per table and figure
// of the paper's evaluation (§6), each regenerating the corresponding rows
// or series on the synthetic datasets. Absolute numbers differ from the
// paper's testbed (simulated GPU, scaled datasets); the harness exists to
// reproduce the *shape* of every result: which technique wins, by roughly
// what factor, and where the crossovers sit.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

// Config scales the experiment workloads. The defaults run the full suite
// on a laptop in minutes; the paper's scales (10M nuclei, 50K vessels,
// 30K faces each) are reachable by raising the counts.
type Config struct {
	// NucleiCount objects per nuclei dataset (paper: ~10M total).
	NucleiCount int
	// NucleiLevel is the icosphere subdivision (2 → 320 faces ≈ paper's 300).
	NucleiLevel int
	// VesselCount objects in the vessel dataset (paper: ~50K).
	VesselCount int
	// VesselRingSegments / VesselPathPoints set vessel complexity
	// (paper: ~30K faces; defaults give ~2–3K).
	VesselRingSegments int
	VesselPathPoints   int
	// Space is the tissue cube.
	Space geom.Box3
	// WithinDist is the distance for within joins.
	WithinDist float64
	// Seed drives all data generation.
	Seed int64
	// Workers for query execution (0 = GOMAXPROCS).
	Workers int
	// CacheBytes for the decode cache.
	CacheBytes int64
	// Cuboids for space partitioning.
	Cuboids int
	// Rounds of PPVP decimation (10 → 6 LODs, as in the paper).
	Rounds int
}

// DefaultConfig returns the scaled-down workload documented in
// EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		NucleiCount:        96,
		NucleiLevel:        2,
		VesselCount:        8,
		VesselRingSegments: 12,
		VesselPathPoints:   12,
		Space:              geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(100, 100, 100)},
		WithinDist:         8,
		Seed:               42,
		Workers:            runtime.GOMAXPROCS(0),
		CacheBytes:         512 << 20,
		Cuboids:            27,
		Rounds:             10,
	}
}

// QuickConfig returns a smaller workload for smoke runs and unit tests.
func QuickConfig() Config {
	c := DefaultConfig()
	c.NucleiCount = 24
	c.NucleiLevel = 1
	c.VesselCount = 2
	c.VesselRingSegments = 8
	c.VesselPathPoints = 8
	c.Rounds = 8
	c.WithinDist = 12
	return c
}

// Suite owns the engine and the five datasets every experiment queries:
//
//	nucleiA, nucleiB — two overlapping "segmentation outputs" (INT-NN);
//	nuclei1, nuclei2 — two interior-disjoint nuclei sets (WN-NN, NN-NN);
//	nucleiT, vessels — one tissue: nuclei around vasculature (WN-NV, NN-NV).
type Suite struct {
	Cfg    Config
	Engine *core.Engine

	// Exec selects the refine executor RunCell uses (ExecAuto, the zero
	// value, picks the engine default — the batch pipeline). The parity
	// tests set it to pin pipeline and per-pair answers equal on the
	// benchmark workload itself.
	Exec core.Exec

	// Sched selects the LOD scheduler RunCell uses. SchedMargin (the zero
	// value, the engine default) lets the online calibrator derive each FPR
	// cell's ladder; SchedStatic pins the paper's §4.4 reference rule, with
	// the profiled per-test schedules applied exactly as before. The
	// equivalence tests run both and require byte-identical results.
	Sched core.Sched

	NucleiA *core.Dataset
	NucleiB *core.Dataset
	Nuclei1 *core.Dataset
	Nuclei2 *core.Dataset
	NucleiT *core.Dataset
	Vessels *core.Dataset

	// Raw meshes are kept for the SDBMS baseline and Fig. 11.
	MeshesA, MeshesB, Meshes1, Meshes2, MeshesT, MeshesV []*mesh.Mesh

	BuildTime time.Duration

	mu        sync.Mutex
	schedules map[TestID][]int
}

// ProfiledLODs returns (caching per test) the LOD schedule selected by the
// §4.4 rule from a single-cuboid profiling run.
func (s *Suite) ProfiledLODs(test TestID) ([]int, error) {
	s.mu.Lock()
	if s.schedules == nil {
		s.schedules = make(map[TestID][]int)
	}
	if lods, ok := s.schedules[test]; ok {
		s.mu.Unlock()
		return lods, nil
	}
	s.mu.Unlock()

	target, source := s.datasets(test)
	lods, _, err := s.Engine.ProfileLODs(context.Background(), target, source, test.Kind(), s.Cfg.WithinDist,
		core.QueryOptions{Workers: s.Cfg.Workers}, core.DefaultPruneThreshold)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.schedules[test] = lods
	s.mu.Unlock()
	return lods, nil
}

// NewSuite generates all datasets and ingests them. The build is
// deterministic in cfg.Seed.
func NewSuite(cfg Config) (*Suite, error) {
	start := time.Now()
	s := &Suite{Cfg: cfg}
	s.Engine = core.NewEngine(core.EngineOptions{
		CacheBytes: cfg.CacheBytes,
		Workers:    cfg.Workers,
	})

	// Overlapping pair for intersection joins.
	genA := datagen.NucleiOptions{
		Count: cfg.NucleiCount, SubdivisionLevel: cfg.NucleiLevel,
		Space: cfg.Space, Seed: cfg.Seed,
	}
	s.MeshesA = datagen.Nuclei(genA)
	genB := genA
	genB.Seed = cfg.Seed + 1
	cell := cfg.Space.Size().X / cbrtCeil(cfg.NucleiCount)
	genB.Offset = geom.V(0.22*cell, 0.16*cell, 0.12*cell)
	s.MeshesB = datagen.Nuclei(genB)

	// Disjoint pair for nuclei-nuclei distance joins.
	gen1 := genA
	gen1.Count = cfg.NucleiCount
	gen1.Seed = cfg.Seed + 2
	s.Meshes1, s.Meshes2 = datagen.NucleiPair(gen1)

	// Tissue for nuclei-vessel joins.
	s.MeshesT, s.MeshesV = datagen.Tissue(datagen.TissueOptions{
		Nuclei: datagen.NucleiOptions{
			Count: cfg.NucleiCount, SubdivisionLevel: cfg.NucleiLevel,
			Space: cfg.Space, Seed: cfg.Seed + 3,
		},
		Vessels: datagen.VesselOptions{
			Count: cfg.VesselCount, Space: cfg.Space, Seed: cfg.Seed + 4,
			RingSegments: cfg.VesselRingSegments, PathPoints: cfg.VesselPathPoints,
		},
	})

	comp := ppvp.DefaultOptions()
	comp.Rounds = cfg.Rounds
	dopts := core.DatasetOptions{Compression: comp, Cuboids: cfg.Cuboids}

	var err error
	for _, d := range []struct {
		dst    **core.Dataset
		name   string
		meshes []*mesh.Mesh
	}{
		{&s.NucleiA, "nucleiA", s.MeshesA},
		{&s.NucleiB, "nucleiB", s.MeshesB},
		{&s.Nuclei1, "nuclei1", s.Meshes1},
		{&s.Nuclei2, "nuclei2", s.Meshes2},
		{&s.NucleiT, "nucleiT", s.MeshesT},
		{&s.Vessels, "vessels", s.MeshesV},
	} {
		*d.dst, err = s.Engine.BuildDataset(d.name, d.meshes, dopts)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.name, err)
		}
	}
	s.BuildTime = time.Since(start)
	return s, nil
}

// Close releases engine resources.
func (s *Suite) Close() { s.Engine.Close() }

func cbrtCeil(n int) float64 {
	k := 1
	for k*k*k < n {
		k++
	}
	return float64(k)
}

// fprintf writes formatted output, ignoring nil writers.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
