package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// One suite shared across the package's tests — building it is expensive.
var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(QuickConfig())
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestSuiteDatasets(t *testing.T) {
	s := testSuite(t)
	for _, d := range []*core.Dataset{s.NucleiA, s.NucleiB, s.Nuclei1, s.Nuclei2, s.NucleiT, s.Vessels} {
		if d.Len() == 0 {
			t.Fatalf("dataset %s is empty", d.Name)
		}
		if d.MaxLOD() < 1 {
			t.Errorf("dataset %s has MaxLOD %d", d.Name, d.MaxLOD())
		}
	}
	if s.Vessels.Len() != s.Cfg.VesselCount {
		t.Errorf("vessels = %d, want %d", s.Vessels.Len(), s.Cfg.VesselCount)
	}
	if s.BuildTime <= 0 {
		t.Error("no build time recorded")
	}
}

func TestRunCellConsistentAcrossConfigs(t *testing.T) {
	s := testSuite(t)
	// Every paradigm/accelerator combination of one test must agree on the
	// result count.
	want := -1
	for _, p := range []core.Paradigm{core.FR, core.FPR} {
		for _, a := range []core.Accel{core.BruteForce, core.AABB, core.Partition} {
			cell, err := s.RunCell(WNNN, p, a)
			if err != nil {
				t.Fatal(err)
			}
			if want == -1 {
				want = cell.Results
			} else if cell.Results != want {
				t.Errorf("%v/%v: %d results, want %d", p, a, cell.Results, want)
			}
			if cell.Latency <= 0 {
				t.Errorf("%v/%v: no latency", p, a)
			}
		}
	}
	if want <= 0 {
		t.Error("WN-NN produced no results; workload too sparse")
	}
}

func TestTable1Printing(t *testing.T) {
	s := testSuite(t)
	var buf bytes.Buffer
	cells, err := s.Table1(&buf, []TestID{INTNN}, []core.Accel{core.BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 { // FR + FPR
		t.Fatalf("cells = %d", len(cells))
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "INT-NN", "FR", "FPR"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	SpeedupSummary(&buf2, cells)
	if !strings.Contains(buf2.String(), "INT-NN") {
		t.Errorf("speedup summary missing test: %s", buf2.String())
	}
}

func TestFig9Shape(t *testing.T) {
	s := testSuite(t)
	rows := s.Fig9(nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 || r.Raw <= r.Total {
			t.Errorf("%s: compression did not shrink (%d raw, %d compressed)", r.Dataset, r.Raw, r.Total)
		}
		var sum float64
		for _, p := range r.Portions {
			if p < 0 || p > 1 {
				t.Errorf("%s: portion %v out of range", r.Dataset, p)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: portions sum to %v", r.Dataset, sum)
		}
	}
}

func TestFig10Fractions(t *testing.T) {
	s := testSuite(t)
	cell, err := s.RunCell(NNNN, core.FPR, core.BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	rows := Fig10(nil, []Cell{cell})
	if len(rows) != 1 {
		t.Fatal("no rows")
	}
	total := rows[0].FilterFrac + rows[0].DecodeFrac + rows[0].GeomFrac
	if total < 0.999 || total > 1.001 {
		t.Errorf("fractions sum to %v", total)
	}
}

func TestFig11Halving(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Fig11(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.FacesPerRound) < 3 {
			t.Fatalf("%s: too few rounds: %v", r.Dataset, r.FacesPerRound)
		}
		for i := 1; i < len(r.FacesPerRound); i++ {
			if r.FacesPerRound[i] > r.FacesPerRound[i-1] {
				t.Errorf("%s: faces increased at round %d: %v", r.Dataset, i, r.FacesPerRound)
			}
		}
	}
}

func TestFig12SchedulesValid(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Fig12(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllTests) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Schedule) == 0 {
			t.Errorf("%v: empty schedule", r.Test)
		}
		for l := range r.Evaluated {
			if r.Pruned[l] > r.Evaluated[l] {
				t.Errorf("%v: pruned %d > evaluated %d at LOD %d", r.Test, r.Pruned[l], r.Evaluated[l], l)
			}
		}
	}
}

func TestTable2CacheHelps(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Compare decode *counts* — wall times jitter at this scale.
		if r.DecodesCached > r.DecodesNoCache {
			t.Errorf("%v: cached run decoded %d times, uncached %d", r.Test, r.DecodesCached, r.DecodesNoCache)
		}
	}
	// At least the vessel-involving joins must show cache hits.
	if rows[1].HitsCached == 0 && rows[3].HitsCached == 0 {
		t.Error("no cache hits on vessel joins")
	}
}

func TestFig13ResultsAgree(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Fig13(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The SDBMS and both 3DPro paradigms must return the same answers.
		if r.SDBMSN != r.FRN || r.FRN != r.FPRN {
			t.Errorf("%v: result counts diverge: sdbms=%d fr=%d fpr=%d", r.Test, r.SDBMSN, r.FRN, r.FPRN)
		}
	}
}

func TestStatsShape(t *testing.T) {
	s := testSuite(t)
	ds, err := s.Stats(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NucleiProtruding < 0.9 {
		t.Errorf("nuclei protruding %v, want >= 0.9 (paper: 0.99)", ds.NucleiProtruding)
	}
	if ds.VesselProtruding >= ds.NucleiProtruding {
		t.Errorf("vessels (%v) should protrude less than nuclei (%v)", ds.VesselProtruding, ds.NucleiProtruding)
	}
	if ds.Ratio <= 1 {
		t.Errorf("compression ratio %v", ds.Ratio)
	}
	if ds.NucleusCompressTime <= 0 || ds.VesselCompressTime <= 0 {
		t.Error("compression costs not measured")
	}
}

func TestProfiledLODsCached(t *testing.T) {
	s := testSuite(t)
	a, err := s.ProfiledLODs(WNNN)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ProfiledLODs(WNNN)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Errorf("schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cached schedule differs: %v vs %v", a, b)
		}
	}
}

// TestRunCellExecutorParity pins the batch pipeline and the per-pair
// reference executor to identical result counts on the actual benchmark
// workload — the same datasets and cells BENCH_*.json timings come from —
// so a pipeline speedup in the committed artifacts can never be the
// product of silently skipped work.
func TestRunCellExecutorParity(t *testing.T) {
	s := testSuite(t)
	for _, test := range AllTests {
		for _, p := range []core.Paradigm{core.FR, core.FPR} {
			s.Exec = core.ExecPerPair
			per, err := s.RunCell(test, p, core.BruteForce)
			if err != nil {
				t.Fatal(err)
			}
			s.Exec = core.ExecPipeline
			pipe, err := s.RunCell(test, p, core.BruteForce)
			if err != nil {
				t.Fatal(err)
			}
			s.Exec = core.ExecAuto
			if per.Results != pipe.Results {
				t.Errorf("%v/%v: per-pair %d results, pipeline %d", test, p, per.Results, pipe.Results)
			}
		}
	}
}
