package bench

import (
	"context"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/ppvp"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// quantization precision, the rounds-per-LOD granularity (the r of §4.4),
// the partition granularity, and the decode-cache budget.

// QuantAblationRow measures one quantization setting.
type QuantAblationRow struct {
	Bits       int
	Bytes      int
	VolumeErr  float64 // |V(quantized) - V(original)| / V(original)
	HausdorffU float64 // max vertex snap displacement (upper bound on error)
}

// AblationQuantBits compresses one representative nucleus at several
// quantization precisions, reporting size against geometric error.
func (s *Suite) AblationQuantBits(w io.Writer) ([]QuantAblationRow, error) {
	m := s.Meshes1[0]
	origVol := m.Volume()
	diag := m.Bounds().Diagonal()

	var rows []QuantAblationRow
	fprintf(w, "Ablation: quantization bits (one nucleus, %d faces)\n", m.NumFaces())
	for _, bits := range []int{8, 10, 12, 16, 20} {
		opts := ppvp.DefaultOptions()
		opts.Rounds = s.Cfg.Rounds
		opts.QuantBits = bits
		c, _, err := ppvp.Compress(m, opts)
		if err != nil {
			return nil, err
		}
		top, err := c.Decode(c.MaxLOD())
		if err != nil {
			return nil, err
		}
		// Max snap displacement: one grid cell diagonal.
		steps := float64(uint64(1)<<uint(bits)) - 1
		snap := diag / steps
		row := QuantAblationRow{
			Bits:       bits,
			Bytes:      c.TotalSize(),
			VolumeErr:  math.Abs(top.Volume()-origVol) / origVol,
			HausdorffU: snap,
		}
		rows = append(rows, row)
		fprintf(w, "  %2d bits: %6d B, volume error %.2e, max snap %.2e\n",
			row.Bits, row.Bytes, row.VolumeErr, row.HausdorffU)
	}
	return rows, nil
}

// RPLAblationRow measures one rounds-per-LOD setting.
type RPLAblationRow struct {
	RoundsPerLOD int
	NumLODs      int
	Latency      time.Duration
	Schedule     []int
}

// AblationRoundsPerLOD rebuilds the disjoint nuclei pair with 1, 2 and 3
// decimation rounds per LOD step and measures the profiled-FPR within-join
// latency. The paper's choice of 2 (r = 2) balances ladder length against
// the share of faces two consecutive LODs share.
func (s *Suite) AblationRoundsPerLOD(w io.Writer) ([]RPLAblationRow, error) {
	fprintf(w, "Ablation: rounds per LOD (WN-NN, profiled FPR)\n")
	var rows []RPLAblationRow
	for _, rpl := range []int{1, 2, 3} {
		comp := ppvp.DefaultOptions()
		comp.Rounds = s.Cfg.Rounds
		comp.RoundsPerLOD = rpl
		dopts := core.DatasetOptions{Compression: comp, Cuboids: s.Cfg.Cuboids}

		eng := core.NewEngine(core.EngineOptions{CacheBytes: s.Cfg.CacheBytes, Workers: s.Cfg.Workers})
		d1, err := eng.BuildDataset("abl1", s.Meshes1, dopts)
		if err != nil {
			eng.Close()
			return nil, err
		}
		d2, err := eng.BuildDataset("abl2", s.Meshes2, dopts)
		if err != nil {
			eng.Close()
			return nil, err
		}
		lods, _, err := eng.ProfileLODs(context.Background(), d1, d2, core.WithinKind, s.Cfg.WithinDist,
			core.QueryOptions{Workers: s.Cfg.Workers}, core.DefaultPruneThreshold)
		if err != nil {
			eng.Close()
			return nil, err
		}
		eng.Cache().Clear()
		_, stats, err := eng.WithinJoin(context.Background(), d1, d2, s.Cfg.WithinDist,
			core.QueryOptions{Paradigm: core.FPR, LODs: lods, Workers: s.Cfg.Workers})
		eng.Close()
		if err != nil {
			return nil, err
		}
		row := RPLAblationRow{RoundsPerLOD: rpl, NumLODs: d1.MaxLOD() + 1, Latency: stats.Elapsed, Schedule: lods}
		rows = append(rows, row)
		fprintf(w, "  rpl=%d (%d LODs): %v, schedule %v\n",
			rpl, row.NumLODs, row.Latency.Round(time.Millisecond), lods)
	}
	return rows, nil
}

// PartitionAblationRow measures one partition granularity.
type PartitionAblationRow struct {
	TargetFaces int
	Groups      int
	Latency     time.Duration
}

// AblationPartitionGranularity sweeps the sub-object size on the WN-NV
// test: too-coarse partitions behave like single MBBs, too-fine ones pay
// group-management overhead.
func (s *Suite) AblationPartitionGranularity(w io.Writer) ([]PartitionAblationRow, error) {
	fprintf(w, "Ablation: partition granularity (WN-NV, FPR/partition)\n")
	var rows []PartitionAblationRow
	for _, target := range []int{64, 256, 1024} {
		comp := ppvp.DefaultOptions()
		comp.Rounds = s.Cfg.Rounds
		dopts := core.DatasetOptions{Compression: comp, Cuboids: s.Cfg.Cuboids, PartitionTargetFaces: target}

		eng := core.NewEngine(core.EngineOptions{CacheBytes: s.Cfg.CacheBytes, Workers: s.Cfg.Workers})
		dn, err := eng.BuildDataset("ablN", s.MeshesT, dopts)
		if err != nil {
			eng.Close()
			return nil, err
		}
		dv, err := eng.BuildDataset("ablV", s.MeshesV, dopts)
		if err != nil {
			eng.Close()
			return nil, err
		}
		_, stats, err := eng.WithinJoin(context.Background(), dn, dv, s.Cfg.WithinDist,
			core.QueryOptions{Paradigm: core.FPR, Accel: core.Partition, Workers: s.Cfg.Workers})
		eng.Close()
		if err != nil {
			return nil, err
		}
		groups := 0
		for _, m := range s.MeshesV {
			groups += maxI(1, m.NumFaces()/target)
		}
		row := PartitionAblationRow{TargetFaces: target, Groups: groups, Latency: stats.Elapsed}
		rows = append(rows, row)
		fprintf(w, "  target=%4d faces (~%d vessel groups): %v\n",
			target, groups, row.Latency.Round(time.Millisecond))
	}
	return rows, nil
}

// CacheAblationRow measures one decode-cache budget.
type CacheAblationRow struct {
	Bytes      int64
	DecodeTime time.Duration
	Hits       int64
}

// AblationCacheBudget extends Table 2 into a sweep over cache sizes on the
// NN-NV test (the workload that re-decodes vessels the most).
func (s *Suite) AblationCacheBudget(w io.Writer) ([]CacheAblationRow, error) {
	fprintf(w, "Ablation: decode cache budget (NN-NV, FPR/aabb)\n")
	var rows []CacheAblationRow
	for _, budget := range []int64{-1, 64 << 10, 1 << 20, 64 << 20} {
		eng := core.NewEngine(core.EngineOptions{CacheBytes: budget, Workers: s.Cfg.Workers})
		dn, err := eng.BuildDataset("cabN", s.MeshesT, core.DatasetOptions{Cuboids: s.Cfg.Cuboids})
		if err != nil {
			eng.Close()
			return nil, err
		}
		dv, err := eng.BuildDataset("cabV", s.MeshesV, core.DatasetOptions{Cuboids: s.Cfg.Cuboids})
		if err != nil {
			eng.Close()
			return nil, err
		}
		_, stats, err := eng.NNJoin(context.Background(), dn, dv, core.QueryOptions{Paradigm: core.FPR, Accel: core.AABB, Workers: s.Cfg.Workers})
		eng.Close()
		if err != nil {
			return nil, err
		}
		row := CacheAblationRow{Bytes: budget, DecodeTime: stats.DecodeTime, Hits: stats.CacheHits}
		rows = append(rows, row)
		label := "disabled"
		if budget > 0 {
			label = byteLabel(budget)
		}
		fprintf(w, "  cache %-9s decode=%v hits=%d\n",
			label, row.DecodeTime.Round(time.Millisecond), row.Hits)
	}
	return rows, nil
}

func byteLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return itoa(b>>20) + "MiB"
	case b >= 1<<10:
		return itoa(b>>10) + "KiB"
	default:
		return itoa(b) + "B"
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Ablations runs all four ablation studies.
func (s *Suite) Ablations(w io.Writer) error {
	if _, err := s.AblationQuantBits(w); err != nil {
		return err
	}
	if _, err := s.AblationRoundsPerLOD(w); err != nil {
		return err
	}
	if _, err := s.AblationPartitionGranularity(w); err != nil {
		return err
	}
	if _, err := s.AblationCacheBudget(w); err != nil {
		return err
	}
	return nil
}
