package bench

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

// DataStats reproduces the §6.2 dataset profile: compression ratios,
// protruding-vertex fractions, and compression cost.
type DataStats struct {
	NucleiProtruding  float64
	VesselProtruding  float64
	OverallProtruding float64

	CompressedBytes int64
	RawBytes        int64
	Ratio           float64

	NucleusCompressTime time.Duration // average per nucleus
	VesselCompressTime  time.Duration // average per vessel

	// SharedFaceFraction is the average fraction of faces shared between
	// consecutive LODs (paper §6.4 reports ≈15.6 %).
	SharedFaceFraction float64
}

// Stats profiles the datasets. Protruding fractions use the first-round
// profile of a sample of objects (the statistic the paper reports as ≈99 %
// for nuclei, ≈75 % for vessels, 92 % overall).
func (s *Suite) Stats(w io.Writer) (DataStats, error) {
	var ds DataStats

	sampleN := s.Meshes1
	if len(sampleN) > 8 {
		sampleN = sampleN[:8]
	}
	var protN, totN int
	for _, m := range sampleN {
		p, e := ppvp.ProfileProtruding(m)
		protN += p
		totN += e
	}
	var protV, totV int
	for _, m := range s.MeshesV {
		p, e := ppvp.ProfileProtruding(m)
		protV += p
		totV += e
	}
	if totN > 0 {
		ds.NucleiProtruding = float64(protN) / float64(totN)
	}
	if totV > 0 {
		ds.VesselProtruding = float64(protV) / float64(totV)
	}
	if totN+totV > 0 {
		ds.OverallProtruding = float64(protN+protV) / float64(totN+totV)
	}

	for _, d := range []interface{ CompressedBytes() int64 }{s.NucleiA, s.NucleiB, s.Nuclei1, s.Nuclei2, s.NucleiT, s.Vessels} {
		ds.CompressedBytes += d.CompressedBytes()
	}
	for _, ms := range [][]*mesh.Mesh{s.MeshesA, s.MeshesB, s.Meshes1, s.Meshes2, s.MeshesT, s.MeshesV} {
		for _, m := range ms {
			ds.RawBytes += int64(m.NumVertices())*24 + int64(m.NumFaces())*12
		}
	}
	if ds.CompressedBytes > 0 {
		ds.Ratio = float64(ds.RawBytes) / float64(ds.CompressedBytes)
	}

	// Compression cost per object type.
	opts := ppvp.DefaultOptions()
	opts.Rounds = s.Cfg.Rounds
	t0 := time.Now()
	if _, _, err := ppvp.Compress(s.Meshes1[0], opts); err != nil {
		return ds, err
	}
	ds.NucleusCompressTime = time.Since(t0)
	t0 = time.Now()
	if _, _, err := ppvp.Compress(s.MeshesV[0], opts); err != nil {
		return ds, err
	}
	ds.VesselCompressTime = time.Since(t0)

	// Shared faces between consecutive LODs (paper §6.4), sampled over a
	// few objects of each kind.
	var fracSum float64
	var fracN int
	for _, d := range []*core.Dataset{s.Nuclei1, s.Vessels} {
		for i := 0; i < 3 && i < d.Len(); i++ {
			fs, err := ppvp.SharedFaceFractions(d.Tileset.Object(int64(i)).Comp)
			if err != nil {
				return ds, err
			}
			for _, f := range fs {
				fracSum += f
				fracN++
			}
		}
	}
	if fracN > 0 {
		ds.SharedFaceFraction = fracSum / float64(fracN)
	}

	fprintf(w, "Dataset profile (paper §6.2):\n")
	fprintf(w, "  protruding vertices: nuclei %.1f%%, vessels %.1f%%, overall %.1f%%\n",
		100*ds.NucleiProtruding, 100*ds.VesselProtruding, 100*ds.OverallProtruding)
	fprintf(w, "  compression: %d B raw -> %d B compressed (%.1fx)\n", ds.RawBytes, ds.CompressedBytes, ds.Ratio)
	fprintf(w, "  compression cost: %v per nucleus, %v per vessel\n",
		ds.NucleusCompressTime.Round(time.Microsecond), ds.VesselCompressTime.Round(time.Millisecond))
	fprintf(w, "  faces shared between consecutive LODs: %.1f%% (paper: ~15.6%%)\n",
		100*ds.SharedFaceFraction)
	return ds, nil
}
