package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// TestID names the five join tests of the paper's Table 1.
type TestID int

const (
	INTNN TestID = iota // intersection join, nuclei vs nuclei
	WNNN                // within join, nuclei vs nuclei
	WNNV                // within join, nuclei vs vessels
	NNNN                // nearest-neighbor join, nuclei vs nuclei
	NNNV                // nearest-neighbor join, nuclei vs vessels
)

// AllTests lists the Table 1 tests in paper order.
var AllTests = []TestID{INTNN, WNNN, WNNV, NNNN, NNNV}

func (t TestID) String() string {
	switch t {
	case INTNN:
		return "INT-NN"
	case WNNN:
		return "WN-NN"
	case WNNV:
		return "WN-NV"
	case NNNN:
		return "NN-NN"
	case NNNV:
		return "NN-NV"
	default:
		return "?"
	}
}

// Kind returns the query kind of the test.
func (t TestID) Kind() core.QueryKind {
	switch t {
	case INTNN:
		return core.IntersectKind
	case WNNN, WNNV:
		return core.WithinKind
	default:
		return core.NNKind
	}
}

// datasets returns the (target, source) pair of a test.
func (s *Suite) datasets(t TestID) (*core.Dataset, *core.Dataset) {
	switch t {
	case INTNN:
		return s.NucleiA, s.NucleiB
	case WNNN, NNNN:
		return s.Nuclei1, s.Nuclei2
	default:
		return s.NucleiT, s.Vessels
	}
}

// Cell is one Table 1 measurement.
type Cell struct {
	Test     TestID
	Paradigm core.Paradigm
	Accel    core.Accel
	Latency  time.Duration
	Results  int
	Stats    *core.Stats
}

// RunCell executes one test under one paradigm/accelerator combination.
// The decode cache is cleared first so cells are independent. Under
// SchedStatic, FPR runs use the test's profiled LOD schedule (§6.5),
// exactly as the paper does; under SchedMargin (the default) the engine's
// online calibrator derives the ladder instead, so no profiled schedule is
// pinned.
func (s *Suite) RunCell(test TestID, paradigm core.Paradigm, accel core.Accel) (Cell, error) {
	target, source := s.datasets(test)
	q := core.QueryOptions{Paradigm: paradigm, Accel: accel, Workers: s.Cfg.Workers, Exec: s.Exec, Sched: s.Sched}
	if paradigm == core.FPR && s.Sched == core.SchedStatic {
		lods, err := s.ProfiledLODs(test)
		if err != nil {
			return Cell{}, err
		}
		q.LODs = lods
	}
	s.Engine.Cache().Clear()

	var (
		stats *core.Stats
		n     int
		err   error
	)
	switch test.Kind() {
	case core.IntersectKind:
		var pairs []core.Pair
		pairs, stats, err = s.Engine.IntersectJoin(context.Background(), target, source, q)
		n = len(pairs)
	case core.WithinKind:
		var pairs []core.Pair
		pairs, stats, err = s.Engine.WithinJoin(context.Background(), target, source, s.Cfg.WithinDist, q)
		n = len(pairs)
	default:
		var ns []core.Neighbor
		ns, stats, err = s.Engine.NNJoin(context.Background(), target, source, q)
		n = len(ns)
	}
	if err != nil {
		return Cell{}, fmt.Errorf("bench: %v/%v/%v: %w", test, paradigm, accel, err)
	}
	return Cell{
		Test: test, Paradigm: paradigm, Accel: accel,
		Latency: stats.Elapsed, Results: n, Stats: stats,
	}, nil
}

// Table1 runs the full grid of the paper's Table 1 — every test × {FR, FPR}
// × the given accelerators — and prints the latency matrix. It returns all
// cells (also consumed by Fig. 10's breakdown).
func (s *Suite) Table1(w io.Writer, tests []TestID, accels []core.Accel) ([]Cell, error) {
	if len(tests) == 0 {
		tests = AllTests
	}
	if len(accels) == 0 {
		accels = []core.Accel{core.BruteForce, core.Partition, core.AABB, core.GPU, core.PartitionGPU}
	}

	fprintf(w, "Table 1: execution time of joins (this run; paper reports seconds on its testbed)\n")
	fprintf(w, "%-8s %-4s", "Test", "Par")
	for _, a := range accels {
		fprintf(w, " %14s", a)
	}
	fprintf(w, "\n")

	var cells []Cell
	for _, test := range tests {
		for _, paradigm := range []core.Paradigm{core.FR, core.FPR} {
			fprintf(w, "%-8s %-4s", test, paradigm)
			for _, accel := range accels {
				cell, err := s.RunCell(test, paradigm, accel)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
				fprintf(w, " %14s", cell.Latency.Round(time.Millisecond))
			}
			fprintf(w, "\n")
		}
	}
	return cells, nil
}

// SpeedupSummary prints FPR-over-FR speedups per test/accelerator from a
// set of cells (the paper's headline ratios).
func SpeedupSummary(w io.Writer, cells []Cell) {
	type key struct {
		t TestID
		a core.Accel
	}
	fr := map[key]time.Duration{}
	fpr := map[key]time.Duration{}
	var order []key
	for _, c := range cells {
		k := key{c.Test, c.Accel}
		switch c.Paradigm {
		case core.FR:
			if _, ok := fr[k]; !ok {
				order = append(order, k)
			}
			fr[k] = c.Latency
		case core.FPR:
			fpr[k] = c.Latency
		}
	}
	fprintf(w, "\nFPR speedup over FR:\n")
	for _, k := range order {
		f, ok1 := fr[k]
		p, ok2 := fpr[k]
		if !ok1 || !ok2 || p == 0 {
			continue
		}
		fprintf(w, "  %-8s %-14s %.2fx\n", k.t, k.a, float64(f)/float64(p))
	}
}
