package bench

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

// Fig9Row is the per-LOD share of the compressed representation for one
// dataset (paper's Fig. 9).
type Fig9Row struct {
	Dataset  string
	Portions []float64 // fraction of compressed bytes per LOD, sums to 1
	Total    int64     // compressed bytes
	Raw      int64     // uncompressed mesh bytes (24 B/vertex + 12 B/face)
}

// Fig9 aggregates compressed section sizes per LOD over the nuclei and
// vessel datasets.
func (s *Suite) Fig9(w io.Writer) []Fig9Row {
	rows := []Fig9Row{
		s.fig9Row("nuclei", s.Nuclei1, s.Meshes1),
		s.fig9Row("vessels", s.Vessels, s.MeshesV),
	}
	fprintf(w, "Fig 9: portion of compressed space per LOD\n")
	for _, r := range rows {
		fprintf(w, "  %-8s total=%dB raw=%dB ratio=%.1fx portions=", r.Dataset, r.Total, r.Raw, float64(r.Raw)/float64(r.Total))
		for lod, p := range r.Portions {
			fprintf(w, " lod%d:%.1f%%", lod, 100*p)
		}
		fprintf(w, "\n")
	}
	return rows
}

func (s *Suite) fig9Row(name string, d *core.Dataset, meshes []*mesh.Mesh) Fig9Row {
	var sizes []int64
	var total int64
	for _, o := range d.Tileset.Objects {
		ls := o.Comp.LODSizes()
		if len(sizes) < len(ls) {
			grown := make([]int64, len(ls))
			copy(grown, sizes)
			sizes = grown
		}
		for i, b := range ls {
			sizes[i] += int64(b)
			total += int64(b)
		}
	}
	var raw int64
	for _, m := range meshes {
		raw += int64(m.NumVertices())*24 + int64(m.NumFaces())*12
	}
	row := Fig9Row{Dataset: name, Total: d.CompressedBytes(), Raw: raw}
	for _, b := range sizes {
		row.Portions = append(row.Portions, float64(b)/float64(total))
	}
	return row
}

// BreakdownRow is one bar of the paper's Fig. 10: the filter / decode /
// geometry split of one Table 1 cell.
type BreakdownRow struct {
	Cell
	FilterFrac float64
	DecodeFrac float64
	GeomFrac   float64
}

// Fig10 derives the execution-time breakdown from Table 1 cells.
func Fig10(w io.Writer, cells []Cell) []BreakdownRow {
	fprintf(w, "Fig 10: execution time breakdown (filter/decode/geometry, %% of accounted time)\n")
	rows := make([]BreakdownRow, 0, len(cells))
	for _, c := range cells {
		total := c.Stats.FilterTime + c.Stats.DecodeTime + c.Stats.GeomTime
		r := BreakdownRow{Cell: c}
		if total > 0 {
			r.FilterFrac = float64(c.Stats.FilterTime) / float64(total)
			r.DecodeFrac = float64(c.Stats.DecodeTime) / float64(total)
			r.GeomFrac = float64(c.Stats.GeomTime) / float64(total)
		}
		rows = append(rows, r)
		fprintf(w, "  %-8s %-4s %-14s filter=%5.1f%% decode=%5.1f%% geom=%5.1f%%\n",
			c.Test, c.Paradigm, c.Accel, 100*r.FilterFrac, 100*r.DecodeFrac, 100*r.GeomFrac)
	}
	return rows
}

// Fig11Row is the remaining-face series of one representative object
// (paper's Fig. 11: faces halve roughly every two rounds).
type Fig11Row struct {
	Dataset       string
	FacesPerRound []int
}

// Fig11 recompresses one representative nucleus and one vessel, reporting
// the face count after each decimation round.
func (s *Suite) Fig11(w io.Writer) ([]Fig11Row, error) {
	opts := ppvp.DefaultOptions()
	opts.Rounds = s.Cfg.Rounds

	var rows []Fig11Row
	for _, src := range []struct {
		name string
		m    *mesh.Mesh
	}{
		{"nucleus", s.Meshes1[0]},
		{"vessel", s.MeshesV[0]},
	} {
		_, st, err := ppvp.Compress(src.m, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{Dataset: src.name, FacesPerRound: st.FacesPerRound})
	}
	fprintf(w, "Fig 11: remaining faces vs decimation rounds\n")
	for _, r := range rows {
		fprintf(w, "  %-8s", r.Dataset)
		for round, f := range r.FacesPerRound {
			fprintf(w, " r%d:%d", round, f)
		}
		fprintf(w, "\n")
	}
	return rows, nil
}

// Fig12Row is the per-LOD evaluated/pruned profile of one test (paper's
// Fig. 12) plus the LOD schedule the §4.4 rule selects from it.
type Fig12Row struct {
	Test      TestID
	Evaluated []int64
	Pruned    []int64
	Schedule  []int
}

// Fig12 profiles every test on a single-cuboid sample and derives the LOD
// schedules (threshold = 25 %, i.e. r = 2).
func (s *Suite) Fig12(w io.Writer) ([]Fig12Row, error) {
	fprintf(w, "Fig 12: object pairs evaluated/pruned per LOD (single-cuboid profile, threshold 25%%)\n")
	var rows []Fig12Row
	for _, test := range AllTests {
		target, source := s.datasets(test)
		s.Engine.Cache().Clear()
		lods, stats, err := s.Engine.ProfileLODs(context.Background(), target, source, test.Kind(), s.Cfg.WithinDist,
			core.QueryOptions{Workers: s.Cfg.Workers}, core.DefaultPruneThreshold)
		if err != nil {
			return nil, err
		}
		r := Fig12Row{Test: test, Evaluated: stats.PairsEvaluated, Pruned: stats.PairsPruned, Schedule: lods}
		rows = append(rows, r)
		fprintf(w, "  %-8s schedule=%v", test, lods)
		for l := range r.Evaluated {
			if r.Evaluated[l] > 0 {
				fprintf(w, " lod%d:%d/%d(%.0f%%)", l, r.Pruned[l], r.Evaluated[l], 100*stats.PrunedFraction(l))
			}
		}
		fprintf(w, "\n")
	}
	return rows, nil
}

// Table2Row is one row of the paper's Table 2: decode time with and without
// the LRU decode cache.
type Table2Row struct {
	Test           TestID
	DecodeCached   time.Duration
	DecodeNoCache  time.Duration
	HitsCached     int64
	DecodesCached  int64
	DecodesNoCache int64
}

// Table2 reruns the distance joins under FPR/brute with the decode cache
// enabled and disabled, comparing decode times.
func (s *Suite) Table2(w io.Writer) ([]Table2Row, error) {
	tests := []TestID{WNNN, WNNV, NNNN, NNNV}
	fprintf(w, "Table 2: decoding time with/without the LRU decode cache\n")

	// A cache-less engine shares nothing with the suite's engine but reads
	// the same datasets.
	noCache := core.NewEngine(core.EngineOptions{CacheBytes: -1, Workers: s.Cfg.Workers})
	defer noCache.Close()

	var rows []Table2Row
	for _, test := range tests {
		target, source := s.datasets(test)
		q := core.QueryOptions{Paradigm: core.FPR, Accel: core.AABB, Workers: s.Cfg.Workers}

		s.Engine.Cache().Clear()
		var cachedStats, plainStats *core.Stats
		var err error
		switch test.Kind() {
		case core.WithinKind:
			_, cachedStats, err = s.Engine.WithinJoin(context.Background(), target, source, s.Cfg.WithinDist, q)
			if err == nil {
				_, plainStats, err = noCache.WithinJoin(context.Background(), target, source, s.Cfg.WithinDist, q)
			}
		default:
			_, cachedStats, err = s.Engine.NNJoin(context.Background(), target, source, q)
			if err == nil {
				_, plainStats, err = noCache.NNJoin(context.Background(), target, source, q)
			}
		}
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Test:           test,
			DecodeCached:   cachedStats.DecodeTime,
			DecodeNoCache:  plainStats.DecodeTime,
			HitsCached:     cachedStats.CacheHits,
			DecodesCached:  cachedStats.Decodes,
			DecodesNoCache: plainStats.Decodes,
		}
		rows = append(rows, row)
		fprintf(w, "  %-8s cached=%v (hits=%d)  nocache=%v  reduction=%.1fx\n",
			test, row.DecodeCached.Round(time.Millisecond), row.HitsCached,
			row.DecodeNoCache.Round(time.Millisecond),
			ratio(row.DecodeNoCache, row.DecodeCached))
	}
	return rows, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
