package bench

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/sdbms"
	"repro/internal/storage"
)

// Fig13Row is one group of the paper's Fig. 13: the latency of one query on
// the SDBMS baseline versus 3DPro with the FR and FPR paradigms.
type Fig13Row struct {
	Test   TestID
	SDBMS  time.Duration
	FR     time.Duration
	FPR    time.Duration
	SDBMSN int // result count parity checks
	FRN    int
	FPRN   int
}

// Fig13 compares the PostGIS-like baseline with 3DPro under both paradigms
// on a single-cuboid sample, single-threaded and brute-force — the paper's
// §6.6 fairness setup. The NN buffer radius for the baseline is derived
// from 3DPro's own answers, exactly as the paper does.
func (s *Suite) Fig13(w io.Writer) ([]Fig13Row, error) {
	fprintf(w, "Fig 13: SDBMS baseline vs 3DPro FR vs FPR (single cuboid, 1 thread, brute force)\n")
	tests := []TestID{INTNN, WNNN, WNNV, NNNN, NNNV}
	var rows []Fig13Row
	for _, test := range tests {
		target, source := s.datasets(test)
		sample := target.SampleCuboid()

		// The SDBMS stores only the sampled targets and the full source.
		tgtMeshes, err := decodeDataset(sample, true)
		if err != nil {
			return nil, err
		}
		srcMeshes, err := decodeDataset(source, false)
		if err != nil {
			return nil, err
		}
		tgtDB, err := sdbms.New(tgtMeshes)
		if err != nil {
			return nil, err
		}
		srcDB, err := sdbms.New(srcMeshes)
		if err != nil {
			return nil, err
		}

		q := core.QueryOptions{Accel: core.BruteForce, Workers: 1}
		row := Fig13Row{Test: test}
		switch test.Kind() {
		case core.IntersectKind:
			pairs, st, err := s.Engine.IntersectJoin(context.Background(), sample, source, withParadigm(q, core.FR))
			if err != nil {
				return nil, err
			}
			row.FR, row.FRN = st.Elapsed, len(pairs)
			pairs, st, err = s.Engine.IntersectJoin(context.Background(), sample, source, withParadigm(q, core.FPR))
			if err != nil {
				return nil, err
			}
			row.FPR, row.FPRN = st.Elapsed, len(pairs)
			dbPairs, dbSt, err := srcDB.IntersectJoin(tgtDB)
			if err != nil {
				return nil, err
			}
			row.SDBMS, row.SDBMSN = dbSt.Elapsed, len(dbPairs)
		case core.WithinKind:
			pairs, st, err := s.Engine.WithinJoin(context.Background(), sample, source, s.Cfg.WithinDist, withParadigm(q, core.FR))
			if err != nil {
				return nil, err
			}
			row.FR, row.FRN = st.Elapsed, len(pairs)
			pairs, st, err = s.Engine.WithinJoin(context.Background(), sample, source, s.Cfg.WithinDist, withParadigm(q, core.FPR))
			if err != nil {
				return nil, err
			}
			row.FPR, row.FPRN = st.Elapsed, len(pairs)
			dbPairs, dbSt, err := srcDB.WithinJoin(tgtDB, s.Cfg.WithinDist)
			if err != nil {
				return nil, err
			}
			row.SDBMS, row.SDBMSN = dbSt.Elapsed, len(dbPairs)
		default:
			ns, st, err := s.Engine.NNJoin(context.Background(), sample, source, withParadigm(q, core.FR))
			if err != nil {
				return nil, err
			}
			row.FR, row.FRN = st.Elapsed, len(ns)
			ns2, st2, err := s.Engine.NNJoin(context.Background(), sample, source, withParadigm(q, core.FPR))
			if err != nil {
				return nil, err
			}
			row.FPR, row.FPRN = st2.Elapsed, len(ns2)
			// Buffer radius = largest true NN distance (from 3DPro).
			var radius float64
			for _, n := range ns {
				if n.Dist > radius {
					radius = n.Dist
				}
			}
			dbNs, dbSt, err := srcDB.NNJoin(tgtDB, radius*1.0001+1e-9)
			if err != nil {
				return nil, err
			}
			row.SDBMS, row.SDBMSN = dbSt.Elapsed, len(dbNs)
		}
		rows = append(rows, row)
		fprintf(w, "  %-8s sdbms=%-12v fr=%-12v fpr=%-12v (results %d/%d/%d; sdbms/fpr=%.1fx)\n",
			test, row.SDBMS.Round(time.Millisecond), row.FR.Round(time.Millisecond),
			row.FPR.Round(time.Millisecond), row.SDBMSN, row.FRN, row.FPRN,
			ratio(row.SDBMS, row.FPR))
	}
	return rows, nil
}

func withParadigm(q core.QueryOptions, p core.Paradigm) core.QueryOptions {
	q.Paradigm = p
	return q
}

// decodeDataset decodes every object of a dataset (or only the sampled
// cuboid's objects) at the highest LOD, in ID order for the sample.
func decodeDataset(d *core.Dataset, sampleOnly bool) ([]*mesh.Mesh, error) {
	var objs []*storage.Object
	if sampleOnly {
		for _, tile := range d.Tileset.Tiles {
			objs = append(objs, tile...)
		}
	} else {
		objs = d.Tileset.Objects
	}
	out := make([]*mesh.Mesh, 0, len(objs))
	for _, o := range objs {
		m, err := o.Comp.Decode(o.Comp.MaxLOD())
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
