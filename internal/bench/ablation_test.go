package bench

import "testing"

func TestAblationQuantBits(t *testing.T) {
	s := testSuite(t)
	rows, err := s.AblationQuantBits(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Bits <= rows[i-1].Bits {
			t.Fatal("bits not increasing")
		}
		// More bits → finer grid → smaller max snap.
		if rows[i].HausdorffU >= rows[i-1].HausdorffU {
			t.Errorf("snap bound not shrinking: %v", rows)
		}
	}
	// The coarsest setting must be measurably lossier than the finest.
	if rows[0].VolumeErr <= rows[len(rows)-1].VolumeErr {
		t.Logf("note: volume error not monotone (%v); acceptable for a single mesh", rows)
	}
	for _, r := range rows {
		if r.Bytes <= 0 {
			t.Errorf("bits=%d: no size", r.Bits)
		}
	}
}

func TestAblationRoundsPerLOD(t *testing.T) {
	s := testSuite(t)
	rows, err := s.AblationRoundsPerLOD(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More rounds per LOD → fewer LODs.
	for i := 1; i < len(rows); i++ {
		if rows[i].NumLODs > rows[i-1].NumLODs {
			t.Errorf("LOD count not decreasing: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.Latency <= 0 || len(r.Schedule) == 0 {
			t.Errorf("row %+v incomplete", r)
		}
	}
}

func TestAblationPartitionGranularity(t *testing.T) {
	s := testSuite(t)
	rows, err := s.AblationPartitionGranularity(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Groups > rows[i-1].Groups {
			t.Errorf("groups not decreasing with coarser target: %+v", rows)
		}
	}
}

func TestAblationCacheBudget(t *testing.T) {
	s := testSuite(t)
	rows, err := s.AblationCacheBudget(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The disabled cache must never record hits; the largest budget must.
	if rows[0].Hits != 0 {
		t.Errorf("disabled cache recorded %d hits", rows[0].Hits)
	}
	if rows[len(rows)-1].Hits == 0 {
		t.Error("large cache recorded no hits")
	}
	// Decode time with a large cache must not exceed the uncached time by
	// more than scheduling noise (the decode *counts* behind it differ by
	// construction whenever hits > 0).
	if rows[len(rows)-1].DecodeTime > rows[0].DecodeTime*2 {
		t.Errorf("large cache decode %v far above uncached %v",
			rows[len(rows)-1].DecodeTime, rows[0].DecodeTime)
	}
}
