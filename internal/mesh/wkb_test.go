package mesh

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/geom"
)

func TestWKBRoundTrip(t *testing.T) {
	orig := Icosphere(4, 2)
	var buf bytes.Buffer
	if err := orig.WriteWKB(&buf); err != nil {
		t.Fatalf("WriteWKB: %v", err)
	}
	got, err := ReadWKB(buf.Bytes())
	if err != nil {
		t.Fatalf("ReadWKB: %v", err)
	}
	if got.NumFaces() != orig.NumFaces() {
		t.Fatalf("faces: %d vs %d", got.NumFaces(), orig.NumFaces())
	}
	// Vertex merging must reconstruct the shared-vertex structure, so the
	// mesh is a valid closed manifold again.
	if got.NumVertices() != orig.NumVertices() {
		t.Fatalf("vertices: %d vs %d", got.NumVertices(), orig.NumVertices())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped mesh invalid: %v", err)
	}
	if math.Abs(got.Volume()-orig.Volume()) > 1e-9 {
		t.Errorf("volume: %v vs %v", got.Volume(), orig.Volume())
	}
}

func TestWKBHeaderShape(t *testing.T) {
	m := Tetrahedron(1)
	var buf bytes.Buffer
	if err := m.WriteWKB(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if b[0] != 1 {
		t.Error("not little endian")
	}
	if typ := binary.LittleEndian.Uint32(b[1:5]); typ != 1015 {
		t.Errorf("type = %d, want 1015 (POLYHEDRALSURFACE Z)", typ)
	}
	if n := binary.LittleEndian.Uint32(b[5:9]); n != 4 {
		t.Errorf("patches = %d, want 4", n)
	}
	// Each patch: 1 + 4 + 4 + 4 + 4*24 bytes.
	want := 9 + 4*(1+4+4+4+96)
	if len(b) != want {
		t.Errorf("blob size = %d, want %d", len(b), want)
	}
}

func TestReadWKBBigEndian(t *testing.T) {
	// Hand-encode one big-endian triangle patch.
	var buf bytes.Buffer
	buf.WriteByte(0) // big endian
	binary.Write(&buf, binary.BigEndian, uint32(1015))
	binary.Write(&buf, binary.BigEndian, uint32(1)) // one patch
	buf.WriteByte(0)
	binary.Write(&buf, binary.BigEndian, uint32(1003))
	binary.Write(&buf, binary.BigEndian, uint32(1)) // one ring
	binary.Write(&buf, binary.BigEndian, uint32(4))
	for _, p := range [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 0}} {
		for _, c := range p {
			binary.Write(&buf, binary.BigEndian, c)
		}
	}
	m, err := ReadWKB(buf.Bytes())
	if err != nil {
		t.Fatalf("ReadWKB: %v", err)
	}
	if m.NumFaces() != 1 || m.NumVertices() != 3 {
		t.Fatalf("got %v", m)
	}
	if m.Vertices[1] != geom.V(1, 0, 0) {
		t.Errorf("vertex decode: %v", m.Vertices[1])
	}
}

func TestReadWKBQuadPatch(t *testing.T) {
	// A quad patch fan-triangulates into two faces.
	var buf bytes.Buffer
	buf.WriteByte(1)
	binary.Write(&buf, binary.LittleEndian, uint32(1015))
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	buf.WriteByte(1)
	binary.Write(&buf, binary.LittleEndian, uint32(1003))
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	binary.Write(&buf, binary.LittleEndian, uint32(5))
	for _, p := range [][3]float64{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, {0, 0, 0}} {
		for _, c := range p {
			binary.Write(&buf, binary.LittleEndian, c)
		}
	}
	m, err := ReadWKB(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFaces() != 2 || m.NumVertices() != 4 {
		t.Fatalf("got %v", m)
	}
}

func TestReadWKBErrors(t *testing.T) {
	m := Tetrahedron(1)
	var buf bytes.Buffer
	m.WriteWKB(&buf)
	good := buf.Bytes()

	if _, err := ReadWKB(nil); err == nil {
		t.Error("empty blob accepted")
	}
	if _, err := ReadWKB(good[:len(good)/2]); err == nil {
		t.Error("truncated blob accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 7
	if _, err := ReadWKB(bad); err == nil {
		t.Error("bad byte order accepted")
	}
	// A POINT Z blob is not a surface.
	var pt bytes.Buffer
	pt.WriteByte(1)
	binary.Write(&pt, binary.LittleEndian, uint32(1001))
	binary.Write(&pt, binary.LittleEndian, [3]float64{1, 2, 3})
	if _, err := ReadWKB(pt.Bytes()); err == nil {
		t.Error("point blob accepted")
	}
}
