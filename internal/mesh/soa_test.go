package mesh

import (
	"testing"

	"repro/internal/geom"
)

func tetra() *Mesh {
	m := New(4, 4)
	m.Vertices = []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	m.Faces = []Face{{0, 2, 1}, {0, 1, 3}, {0, 3, 2}, {1, 2, 3}}
	return m
}

func TestSoAMatchesTriangles(t *testing.T) {
	m := tetra()
	s := m.SoA()
	if s.Len() != m.NumFaces() {
		t.Fatalf("SoA len %d want %d", s.Len(), m.NumFaces())
	}
	for i := 0; i < m.NumFaces(); i++ {
		if s.At(i) != m.Triangle(i) {
			t.Fatalf("face %d: SoA %v want %v", i, s.At(i), m.Triangle(i))
		}
	}
	if again := m.SoA(); again != s {
		t.Fatal("SoA not memoized: second call returned a different packing")
	}
}

func TestSoAInvalidatedByTransforms(t *testing.T) {
	m := tetra()
	before := m.SoA()
	m.Translate(geom.Vec3{X: 3})
	after := m.SoA()
	if after == before {
		t.Fatal("Translate did not invalidate the SoA memo")
	}
	if got, want := after.At(0), m.Triangle(0); got != want {
		t.Fatalf("post-translate SoA stale: %v want %v", got, want)
	}
	m.Scale(2)
	scaled := m.SoA()
	if scaled == after {
		t.Fatal("Scale did not invalidate the SoA memo")
	}
	if got, want := scaled.At(2), m.Triangle(2); got != want {
		t.Fatalf("post-scale SoA stale: %v want %v", got, want)
	}
}

func TestFootprintBytesGrowsWithMemos(t *testing.T) {
	m := tetra()
	base := m.FootprintBytes()
	if base != int64(len(m.Vertices))*24+int64(len(m.Faces))*12 {
		t.Fatalf("cold footprint %d unexpected", base)
	}
	m.TrianglesCached()
	withTris := m.FootprintBytes()
	if withTris != base+int64(m.NumFaces())*72 {
		t.Fatalf("footprint with tris %d want %d", withTris, base+int64(m.NumFaces())*72)
	}
	m.SoA()
	withSoA := m.FootprintBytes()
	if withSoA != withTris+int64(m.NumFaces())*15*8 {
		t.Fatalf("footprint with SoA %d want %d", withSoA, withTris+int64(m.NumFaces())*15*8)
	}
	m.Translate(geom.Vec3{Y: 1})
	if got := m.FootprintBytes(); got != base {
		t.Fatalf("footprint after invalidation %d want %d", got, base)
	}
}
