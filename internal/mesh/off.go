package mesh

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
)

// WriteOFF writes the mesh in the Object File Format used by most mesh
// processing toolchains (including CGAL, which the paper's implementation
// relied on). Faces with more than three vertices are never produced.
func (m *Mesh) WriteOFF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "OFF\n%d %d 0\n", len(m.Vertices), len(m.Faces)); err != nil {
		return err
	}
	for _, v := range m.Vertices {
		if _, err := fmt.Fprintf(bw, "%g %g %g\n", v.X, v.Y, v.Z); err != nil {
			return err
		}
	}
	for _, f := range m.Faces {
		if _, err := fmt.Fprintf(bw, "3 %d %d %d\n", f[0], f[1], f[2]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadOFF parses an OFF file. Polygonal faces with more than three vertices
// are fan-triangulated. Comment lines (#...) and blank lines are skipped.
func ReadOFF(r io.Reader) (*Mesh, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("mesh: reading OFF header: %w", err)
	}
	if header != "OFF" {
		return nil, fmt.Errorf("mesh: not an OFF file (header %q)", header)
	}

	countLine, err := next()
	if err != nil {
		return nil, fmt.Errorf("mesh: reading OFF counts: %w", err)
	}
	var nv, nf, ne int
	if _, err := fmt.Sscan(countLine, &nv, &nf, &ne); err != nil {
		return nil, fmt.Errorf("mesh: parsing OFF counts %q: %w", countLine, err)
	}
	if nv < 0 || nf < 0 {
		return nil, fmt.Errorf("mesh: negative OFF counts %d %d", nv, nf)
	}

	m := New(nv, nf)
	for i := 0; i < nv; i++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("mesh: reading vertex %d: %w", i, err)
		}
		var x, y, z float64
		if _, err := fmt.Sscan(line, &x, &y, &z); err != nil {
			return nil, fmt.Errorf("mesh: parsing vertex %d %q: %w", i, line, err)
		}
		m.Vertices = append(m.Vertices, geom.V(x, y, z))
	}
	for i := 0; i < nf; i++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("mesh: reading face %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("mesh: short face line %q", line)
		}
		var k int
		if _, err := fmt.Sscan(fields[0], &k); err != nil || k < 3 || len(fields) < 1+k {
			return nil, fmt.Errorf("mesh: bad face line %q", line)
		}
		idx := make([]int32, k)
		for j := 0; j < k; j++ {
			var v int
			if _, err := fmt.Sscan(fields[1+j], &v); err != nil {
				return nil, fmt.Errorf("mesh: bad face index in %q: %w", line, err)
			}
			if v < 0 || v >= nv {
				return nil, fmt.Errorf("mesh: face index %d out of range [0,%d)", v, nv)
			}
			idx[j] = int32(v)
		}
		for j := 1; j+1 < k; j++ {
			m.Faces = append(m.Faces, Face{idx[0], idx[j], idx[j+1]})
		}
	}
	return m, nil
}
