package mesh

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// Property: subdivision preserves the closed-manifold invariants and the
// Euler characteristic, quadruples faces, and never shrinks the volume of a
// convex shape (midpoints lie on chords, re-projection pushes them out).
func TestSubdivisionInvariants(t *testing.T) {
	m := Icosahedron(1)
	for level := 0; level < 3; level++ {
		next := subdivide(m)
		if next.NumFaces() != 4*m.NumFaces() {
			t.Fatalf("level %d: faces %d, want %d", level, next.NumFaces(), 4*m.NumFaces())
		}
		if err := next.Validate(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if next.EulerCharacteristic() != 2 {
			t.Fatalf("level %d: Euler characteristic %d", level, next.EulerCharacteristic())
		}
		// V - E + F = 2 with F = 4F₀ forces E = 2E₀ + 3F₀... just check
		// consistency with the handshake lemma: 2E = 3F.
		if 2*len(next.Edges()) != 3*next.NumFaces() {
			t.Fatalf("level %d: handshake violated", level)
		}
		m = next
	}
}

// Property: translating a mesh moves its centroid by exactly the offset and
// leaves volume and area unchanged; scaling by s scales volume by s³ and
// area by s².
func TestRigidMotionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		m := Ellipsoid(1+rng.Float64()*3, 1+rng.Float64()*3, 1+rng.Float64()*3, 1)
		vol, area, cen := m.Volume(), m.SurfaceArea(), m.Centroid()

		d := geom.V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
		moved := m.Clone()
		moved.Translate(d)
		if math.Abs(moved.Volume()-vol) > 1e-9*math.Abs(vol)+1e-9 {
			t.Fatalf("translation changed volume: %v vs %v", moved.Volume(), vol)
		}
		if math.Abs(moved.SurfaceArea()-area) > 1e-9*area {
			t.Fatalf("translation changed area")
		}
		if !moved.Centroid().ApproxEqual(cen.Add(d), 1e-6) {
			t.Fatalf("centroid moved to %v, want %v", moved.Centroid(), cen.Add(d))
		}

		s := 0.5 + rng.Float64()*2
		scaled := m.Clone()
		scaled.Scale(s)
		if math.Abs(scaled.Volume()-vol*s*s*s) > 1e-6*math.Abs(vol*s*s*s) {
			t.Fatalf("scale volume: %v vs %v", scaled.Volume(), vol*s*s*s)
		}
		if math.Abs(scaled.SurfaceArea()-area*s*s) > 1e-6*area*s*s {
			t.Fatalf("scale area")
		}
	}
}

// Property: for closed meshes, the divergence-theorem volume is independent
// of which vertex ordering rotation each face uses.
func TestVolumeRotationInvariant(t *testing.T) {
	m := Icosphere(2, 1)
	vol := m.Volume()
	rot := m.Clone()
	for i, f := range rot.Faces {
		switch i % 3 {
		case 1:
			rot.Faces[i] = Face{f[1], f[2], f[0]}
		case 2:
			rot.Faces[i] = Face{f[2], f[0], f[1]}
		}
	}
	if math.Abs(rot.Volume()-vol) > 1e-9 {
		t.Fatalf("volume changed under face rotation: %v vs %v", rot.Volume(), vol)
	}
	if err := rot.Validate(); err != nil {
		t.Fatalf("rotated faces broke validation: %v", err)
	}
}

// Property: every interior point sampled via barycentric interpolation of a
// face, pushed slightly inward along the inward normal, is contained in the
// closed mesh.
func TestSurfaceAdjacentContainment(t *testing.T) {
	m := Icosphere(3, 2)
	rng := rand.New(rand.NewSource(9))
	tris := m.Triangles()
	for i := 0; i < 200; i++ {
		tri := tris[rng.Intn(len(tris))]
		u := rng.Float64() * 0.8
		v := rng.Float64() * (0.8 - u)
		p := tri.A.Mul(1 - u - v).Add(tri.B.Mul(u)).Add(tri.C.Mul(v))
		inward := tri.UnitNormal().Neg()
		q := p.Add(inward.Mul(0.05))
		if !m.ContainsPoint(q) {
			t.Fatalf("inward-nudged surface point %v not contained", q)
		}
		out := p.Add(inward.Mul(-0.05))
		if m.ContainsPoint(out) {
			t.Fatalf("outward-nudged surface point %v contained", out)
		}
	}
}
