// Package mesh implements the polygonal-model substrate of 3DPro: indexed
// triangle meshes (polyhedrons), adjacency queries, manifold validation,
// surface measures, and OFF-format I/O.
//
// A polyhedron in the sense of the paper is a closed, orientable triangle
// mesh with CCW-ordered faces (outer side determined by the right-hand
// rule) and no unnecessary edge junctions.
package mesh

import (
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
)

// Face is a triangle referencing three vertex indices in CCW order as seen
// from outside the polyhedron.
type Face [3]int32

// Mesh is an indexed triangle mesh.
//
// Mesh contains an internal cache and must not be copied by value after
// first use; pass *Mesh around (as all the code in this module does).
type Mesh struct {
	Vertices []geom.Vec3
	Faces    []Face

	// tris lazily memoizes the materialized triangle slice for read-only
	// meshes (decoded LODs queried many times). Mutating methods drop it.
	tris atomic.Pointer[[]geom.Triangle]

	// soa lazily memoizes the struct-of-arrays triangle layout consumed by
	// the batch refinement executor. Same lifecycle as tris.
	soa atomic.Pointer[geom.TriSoA]
}

// New returns an empty mesh with the given capacities pre-allocated.
func New(nv, nf int) *Mesh {
	return &Mesh{
		Vertices: make([]geom.Vec3, 0, nv),
		Faces:    make([]Face, 0, nf),
	}
}

// Clone returns a deep copy of the mesh.
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{
		Vertices: make([]geom.Vec3, len(m.Vertices)),
		Faces:    make([]Face, len(m.Faces)),
	}
	copy(c.Vertices, m.Vertices)
	copy(c.Faces, m.Faces)
	return c
}

// NumVertices returns the vertex count.
func (m *Mesh) NumVertices() int { return len(m.Vertices) }

// NumFaces returns the face count.
func (m *Mesh) NumFaces() int { return len(m.Faces) }

// Triangle materializes face f as a geometric triangle.
func (m *Mesh) Triangle(f int) geom.Triangle {
	face := m.Faces[f]
	return geom.Triangle{
		A: m.Vertices[face[0]],
		B: m.Vertices[face[1]],
		C: m.Vertices[face[2]],
	}
}

// Triangles materializes all faces. The result aliases no mesh state.
func (m *Mesh) Triangles() []geom.Triangle {
	out := make([]geom.Triangle, len(m.Faces))
	for i := range m.Faces {
		out[i] = m.Triangle(i)
	}
	return out
}

// TrianglesCached returns the materialized triangle slice, building it at
// most once per mesh state and sharing the result across callers. The
// returned slice is read-only. Concurrent first calls may race to build; the
// duplicate work is benign and bounded to one extra materialization.
func (m *Mesh) TrianglesCached() []geom.Triangle {
	if p := m.tris.Load(); p != nil {
		return *p
	}
	t := m.Triangles()
	m.tris.Store(&t)
	return t
}

// SoA returns the struct-of-arrays triangle layout for the current mesh
// state, building it at most once per state and sharing the result across
// callers. The packing reuses TrianglesCached, so a mesh queried through
// both representations materializes each exactly once. The returned value
// is read-only; mutating methods drop it along with the triangle memo.
// Concurrent first calls may race to build; the duplicate work is benign
// and bounded to one extra packing.
func (m *Mesh) SoA() *geom.TriSoA {
	if p := m.soa.Load(); p != nil {
		return p
	}
	s := geom.SoAFromTriangles(m.TrianglesCached())
	m.soa.Store(s)
	return s
}

// FootprintBytes estimates the resident size of the mesh plus whatever
// derived memos (triangle slice, SoA lanes) are currently materialized.
// The cache uses it to account for decoded objects.
func (m *Mesh) FootprintBytes() int64 {
	b := int64(len(m.Vertices))*24 + int64(len(m.Faces))*12
	if p := m.tris.Load(); p != nil {
		b += int64(len(*p)) * 72
	}
	b += m.soa.Load().Bytes()
	return b
}

// invalidateTriangles drops the memoized derived layouts after a mutation.
func (m *Mesh) invalidateTriangles() {
	m.tris.Store(nil)
	m.soa.Store(nil)
}

// Bounds returns the mesh's minimal bounding box (MBB).
func (m *Mesh) Bounds() geom.Box3 {
	b := geom.EmptyBox()
	for _, v := range m.Vertices {
		b = b.ExtendPoint(v)
	}
	return b
}

// SurfaceArea returns the total area of all faces.
func (m *Mesh) SurfaceArea() float64 {
	var a float64
	for i := range m.Faces {
		a += m.Triangle(i).Area()
	}
	return a
}

// Volume returns the signed volume enclosed by the mesh via the divergence
// theorem. For a closed mesh with consistent CCW (outward) orientation the
// result is positive.
func (m *Mesh) Volume() float64 {
	var vol float64
	for _, f := range m.Faces {
		a := m.Vertices[f[0]]
		b := m.Vertices[f[1]]
		c := m.Vertices[f[2]]
		vol += a.Dot(b.Cross(c))
	}
	return vol / 6
}

// Centroid returns the volume centroid of the closed mesh.
func (m *Mesh) Centroid() geom.Vec3 {
	var c geom.Vec3
	var vol float64
	for _, f := range m.Faces {
		a := m.Vertices[f[0]]
		b := m.Vertices[f[1]]
		d := m.Vertices[f[2]]
		v := a.Dot(b.Cross(d))
		vol += v
		c = c.Add(a.Add(b).Add(d).Mul(v / 4))
	}
	if vol == 0 {
		// Fall back to the vertex average for degenerate meshes.
		for _, v := range m.Vertices {
			c = c.Add(v)
		}
		if len(m.Vertices) > 0 {
			return c.Mul(1 / float64(len(m.Vertices)))
		}
		return geom.Vec3{}
	}
	return c.Mul(1 / vol)
}

// ContainsPoint reports whether p lies strictly inside the closed mesh.
func (m *Mesh) ContainsPoint(p geom.Vec3) bool {
	if !m.Bounds().ContainsPoint(p) {
		return false
	}
	return geom.PointInTriangles(p, m.TrianglesCached())
}

// Translate moves every vertex by d.
func (m *Mesh) Translate(d geom.Vec3) {
	for i := range m.Vertices {
		m.Vertices[i] = m.Vertices[i].Add(d)
	}
	m.invalidateTriangles()
}

// Scale scales every vertex about the origin by s.
func (m *Mesh) Scale(s float64) {
	for i := range m.Vertices {
		m.Vertices[i] = m.Vertices[i].Mul(s)
	}
	m.invalidateTriangles()
}

// String implements fmt.Stringer.
func (m *Mesh) String() string {
	return fmt.Sprintf("mesh{%d vertices, %d faces}", len(m.Vertices), len(m.Faces))
}
