package mesh

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// WKB support for PostGIS interop: meshes serialize as the EWKB/ISO-WKB
// POLYHEDRALSURFACE Z geometry PostGIS's 3D functions consume (the paper
// loads its polyhedrons into PostGIS for the §6.6 comparison). Each
// triangle becomes one POLYGON Z patch whose ring repeats the first vertex
// at the end, exactly as ST_AsBinary emits it.

const (
	wkbPolyhedralSurfaceZ = 1015 // ISO type: PolyhedralSurface + 1000 (Z)
	wkbPolygonZ           = 1003 // ISO type: Polygon + 1000 (Z)
)

// WriteWKB writes the mesh as a little-endian ISO WKB POLYHEDRALSURFACE Z.
func (m *Mesh) WriteWKB(w io.Writer) error {
	buf := make([]byte, 0, 9+len(m.Faces)*(9+4+4*4*8))
	buf = append(buf, 1) // little endian
	buf = binary.LittleEndian.AppendUint32(buf, wkbPolyhedralSurfaceZ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Faces)))
	for _, f := range m.Faces {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint32(buf, wkbPolygonZ)
		buf = binary.LittleEndian.AppendUint32(buf, 1) // one ring
		buf = binary.LittleEndian.AppendUint32(buf, 4) // closed triangle ring
		for _, idx := range []int32{f[0], f[1], f[2], f[0]} {
			v := m.Vertices[idx]
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Y))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Z))
		}
	}
	_, err := w.Write(buf)
	return err
}

// wkbReader consumes WKB with either byte order, latching errors.
type wkbReader struct {
	b   []byte
	off int
	le  bool
	err error
}

func (r *wkbReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("mesh: "+format, args...)
	}
}

func (r *wkbReader) byteOrder() {
	if r.err != nil {
		return
	}
	if r.off >= len(r.b) {
		r.fail("truncated WKB")
		return
	}
	switch r.b[r.off] {
	case 0:
		r.le = false
	case 1:
		r.le = true
	default:
		r.fail("bad WKB byte order %d", r.b[r.off])
	}
	r.off++
}

func (r *wkbReader) uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail("truncated WKB")
		return 0
	}
	var v uint32
	if r.le {
		v = binary.LittleEndian.Uint32(r.b[r.off:])
	} else {
		v = binary.BigEndian.Uint32(r.b[r.off:])
	}
	r.off += 4
	return v
}

func (r *wkbReader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated WKB")
		return 0
	}
	var bits uint64
	if r.le {
		bits = binary.LittleEndian.Uint64(r.b[r.off:])
	} else {
		bits = binary.BigEndian.Uint64(r.b[r.off:])
	}
	r.off += 8
	return math.Float64frombits(bits)
}

// ReadWKB parses a POLYHEDRALSURFACE Z (or TIN Z, type 1016) WKB blob into
// a mesh. Polygon patches with more than three distinct vertices are
// fan-triangulated; vertices shared across patches are merged by exact
// coordinate equality so the result can satisfy the closed-manifold
// validation when the surface is watertight.
func ReadWKB(data []byte) (*Mesh, error) {
	r := &wkbReader{b: data}
	r.byteOrder()
	typ := r.uint32()
	// Accept the EWKB Z-flag form (0x80000000 | 15/16) too.
	const ewkbZ = 0x80000000
	base := typ &^ uint32(ewkbZ)
	hasZ := typ&ewkbZ != 0 || typ >= 1000
	if hasZ && base >= 1000 {
		base -= 1000
	}
	if base != 15 && base != 16 { // PolyhedralSurface, TIN
		return nil, fmt.Errorf("mesh: WKB type %d is not a polyhedral surface", typ)
	}
	nPatches := r.uint32()
	if r.err != nil {
		return nil, r.err
	}
	if nPatches > 1<<24 {
		return nil, fmt.Errorf("mesh: implausible WKB patch count %d", nPatches)
	}

	m := &Mesh{}
	vertIdx := make(map[geom.Vec3]int32)
	addVert := func(v geom.Vec3) int32 {
		if idx, ok := vertIdx[v]; ok {
			return idx
		}
		idx := int32(len(m.Vertices))
		m.Vertices = append(m.Vertices, v)
		vertIdx[v] = idx
		return idx
	}

	for p := uint32(0); p < nPatches; p++ {
		r.byteOrder()
		ptyp := r.uint32()
		pbase := ptyp &^ uint32(ewkbZ)
		if pbase >= 1000 {
			pbase -= 1000
		}
		if pbase != 3 && pbase != 17 { // Polygon, Triangle
			return nil, fmt.Errorf("mesh: WKB patch %d has type %d, want polygon/triangle", p, ptyp)
		}
		nRings := r.uint32()
		if r.err != nil {
			return nil, r.err
		}
		if nRings == 0 {
			continue
		}
		for ring := uint32(0); ring < nRings; ring++ {
			nPts := r.uint32()
			if r.err != nil {
				return nil, r.err
			}
			if nPts > 1<<20 {
				return nil, fmt.Errorf("mesh: implausible ring size %d", nPts)
			}
			pts := make([]geom.Vec3, 0, nPts)
			for i := uint32(0); i < nPts; i++ {
				x := r.float64()
				y := r.float64()
				z := r.float64()
				pts = append(pts, geom.V(x, y, z))
			}
			if r.err != nil {
				return nil, r.err
			}
			if ring > 0 {
				continue // interior rings (holes) are not supported; skip
			}
			// Drop the closing repeat.
			//lint:ignore floateq the WKB closing vertex is a byte-identical repeat of the first; exact equality is the spec'd test
			if len(pts) >= 2 && pts[0] == pts[len(pts)-1] {
				pts = pts[:len(pts)-1]
			}
			if len(pts) < 3 {
				return nil, fmt.Errorf("mesh: WKB patch %d ring too short", p)
			}
			idx := make([]int32, len(pts))
			for i, pt := range pts {
				idx[i] = addVert(pt)
			}
			for i := 1; i+1 < len(idx); i++ {
				m.Faces = append(m.Faces, Face{idx[0], idx[i], idx[i+1]})
			}
		}
	}
	return m, r.err
}
