package mesh

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestOFFRoundTrip(t *testing.T) {
	orig := Icosphere(2.5, 1)
	var buf bytes.Buffer
	if err := orig.WriteOFF(&buf); err != nil {
		t.Fatalf("WriteOFF: %v", err)
	}
	got, err := ReadOFF(&buf)
	if err != nil {
		t.Fatalf("ReadOFF: %v", err)
	}
	if got.NumVertices() != orig.NumVertices() || got.NumFaces() != orig.NumFaces() {
		t.Fatalf("round trip size mismatch: %v vs %v", got, orig)
	}
	for i, v := range orig.Vertices {
		if !got.Vertices[i].ApproxEqual(v, 1e-12) {
			t.Fatalf("vertex %d: %v != %v", i, got.Vertices[i], v)
		}
	}
	for i, f := range orig.Faces {
		if got.Faces[i] != f {
			t.Fatalf("face %d: %v != %v", i, got.Faces[i], f)
		}
	}
}

func TestReadOFFComments(t *testing.T) {
	src := `OFF
# a comment
4 4 0

0 0 0
1 0 0
0 1 0
# interleaved comment
0 0 1
3 0 2 1
3 0 1 3
3 0 3 2
3 1 2 3
`
	m, err := ReadOFF(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadOFF: %v", err)
	}
	if m.NumVertices() != 4 || m.NumFaces() != 4 {
		t.Fatalf("got %v", m)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("parsed mesh invalid: %v", err)
	}
}

func TestReadOFFQuadTriangulation(t *testing.T) {
	src := `OFF
4 1 0
0 0 0
1 0 0
1 1 0
0 1 0
4 0 1 2 3
`
	m, err := ReadOFF(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadOFF: %v", err)
	}
	if m.NumFaces() != 2 {
		t.Fatalf("quad should become 2 triangles, got %d", m.NumFaces())
	}
}

func TestReadOFFErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":     "PLY\n3 1 0\n",
		"missing counts": "OFF\n",
		"bad vertex":     "OFF\n1 0 0\nx y z\n",
		"short face":     "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1\n",
		"oob index":      "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 9\n",
		"truncated":      "OFF\n5 1 0\n0 0 0\n",
	}
	for name, src := range cases {
		if _, err := ReadOFF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteOFFFormat(t *testing.T) {
	m := &Mesh{
		Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)},
		Faces:    []Face{{0, 1, 2}},
	}
	var buf bytes.Buffer
	if err := m.WriteOFF(&buf); err != nil {
		t.Fatal(err)
	}
	want := "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 2\n"
	if buf.String() != want {
		t.Errorf("output:\n%q\nwant:\n%q", buf.String(), want)
	}
}
