package mesh

import (
	"math"

	"repro/internal/geom"
)

// Tetrahedron returns a regular tetrahedron with the given circumradius,
// centered at the origin, consistently wound outward.
func Tetrahedron(r float64) *Mesh {
	s := r / math.Sqrt(3)
	v := []geom.Vec3{
		geom.V(s, s, s),
		geom.V(s, -s, -s),
		geom.V(-s, s, -s),
		geom.V(-s, -s, s),
	}
	m := &Mesh{
		Vertices: v,
		Faces: []Face{
			{0, 1, 2},
			{0, 3, 1},
			{0, 2, 3},
			{1, 3, 2},
		},
	}
	return m
}

// Cube returns the axis-aligned cube [min, max]^3 triangulated into 12 faces
// with outward orientation.
func Cube(min, max geom.Vec3) *Mesh {
	v := []geom.Vec3{
		geom.V(min.X, min.Y, min.Z), geom.V(max.X, min.Y, min.Z),
		geom.V(max.X, max.Y, min.Z), geom.V(min.X, max.Y, min.Z),
		geom.V(min.X, min.Y, max.Z), geom.V(max.X, min.Y, max.Z),
		geom.V(max.X, max.Y, max.Z), geom.V(min.X, max.Y, max.Z),
	}
	quads := [][4]int32{
		{3, 2, 1, 0}, // bottom (-Z)
		{4, 5, 6, 7}, // top (+Z)
		{0, 1, 5, 4}, // front (-Y)
		{2, 3, 7, 6}, // back (+Y)
		{1, 2, 6, 5}, // right (+X)
		{3, 0, 4, 7}, // left (-X)
	}
	m := &Mesh{Vertices: v}
	for _, q := range quads {
		m.Faces = append(m.Faces, Face{q[0], q[1], q[2]}, Face{q[0], q[2], q[3]})
	}
	return m
}

// Icosahedron returns a regular icosahedron with the given circumradius,
// centered at the origin.
func Icosahedron(r float64) *Mesh {
	phi := (1 + math.Sqrt(5)) / 2
	n := math.Sqrt(1 + phi*phi)
	a, b := r/n, r*phi/n
	v := []geom.Vec3{
		geom.V(-a, b, 0), geom.V(a, b, 0), geom.V(-a, -b, 0), geom.V(a, -b, 0),
		geom.V(0, -a, b), geom.V(0, a, b), geom.V(0, -a, -b), geom.V(0, a, -b),
		geom.V(b, 0, -a), geom.V(b, 0, a), geom.V(-b, 0, -a), geom.V(-b, 0, a),
	}
	f := []Face{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	return &Mesh{Vertices: v, Faces: f}
}

// Icosphere returns a unit-sphere approximation of radius r produced by
// subdividing an icosahedron `level` times: level 0 has 20 faces, each
// level quadruples the face count (level 2 → 320 faces, the nucleus regime
// from the paper).
func Icosphere(r float64, level int) *Mesh {
	m := Icosahedron(1)
	for i := 0; i < level; i++ {
		m = subdivide(m)
		// Re-project onto the unit sphere.
		for j, v := range m.Vertices {
			m.Vertices[j] = v.Normalize()
		}
	}
	m.Scale(r)
	return m
}

// subdivide splits every face into 4 by inserting edge midpoints.
func subdivide(m *Mesh) *Mesh {
	out := &Mesh{Vertices: append([]geom.Vec3(nil), m.Vertices...)}
	mid := make(map[EdgeKey]int32, 3*len(m.Faces)/2)
	midpoint := func(a, b int32) int32 {
		key := MakeEdgeKey(a, b)
		if idx, ok := mid[key]; ok {
			return idx
		}
		idx := int32(len(out.Vertices))
		out.Vertices = append(out.Vertices, m.Vertices[a].Lerp(m.Vertices[b], 0.5))
		mid[key] = idx
		return idx
	}
	for _, f := range m.Faces {
		ab := midpoint(f[0], f[1])
		bc := midpoint(f[1], f[2])
		ca := midpoint(f[2], f[0])
		out.Faces = append(out.Faces,
			Face{f[0], ab, ca},
			Face{f[1], bc, ab},
			Face{f[2], ca, bc},
			Face{ab, bc, ca},
		)
	}
	return out
}

// Ellipsoid deforms an icosphere into an ellipsoid with semi-axes (a, b, c).
func Ellipsoid(a, b, c float64, level int) *Mesh {
	m := Icosphere(1, level)
	for i, v := range m.Vertices {
		m.Vertices[i] = geom.V(v.X*a, v.Y*b, v.Z*c)
	}
	return m
}

// Tube builds a closed triangulated tube around the polyline `path` with
// per-point radii. `segments` vertices are placed on each cross-section
// ring; the two ends are closed with vertex fans. The result is a closed
// 2-manifold as long as the path does not self-intersect.
func Tube(path []geom.Vec3, radii []float64, segments int) *Mesh {
	if len(path) != len(radii) || segments < 3 {
		return nil
	}
	// Drop (near-)duplicate consecutive path points: they would collapse
	// cross-section rings into degenerate faces.
	var cleanPath []geom.Vec3
	var cleanRadii []float64
	for i, p := range path {
		if i > 0 {
			prev := cleanPath[len(cleanPath)-1]
			if p.Dist(prev) <= 1e-9*(1+p.Len()+prev.Len()) {
				continue
			}
		}
		cleanPath = append(cleanPath, p)
		cleanRadii = append(cleanRadii, radii[i])
	}
	path, radii = cleanPath, cleanRadii
	if len(path) < 2 {
		return nil
	}
	m := &Mesh{}

	// A stable frame along the path: pick any normal for the first segment,
	// then parallel-transport it.
	dir := path[1].Sub(path[0]).Normalize()
	normal := perpendicular(dir)

	rings := make([][]int32, len(path))
	for i, p := range path {
		var d geom.Vec3
		switch {
		case i == 0:
			d = path[1].Sub(path[0])
		case i == len(path)-1:
			d = path[i].Sub(path[i-1])
		default:
			d = path[i+1].Sub(path[i-1])
		}
		d = d.Normalize()
		// Parallel transport: remove the component of normal along d.
		normal = normal.Sub(d.Mul(normal.Dot(d))).Normalize()
		if normal.Len2() < 0.5 { // degenerate transport, re-seed
			normal = perpendicular(d)
		}
		binormal := d.Cross(normal).Normalize()

		ring := make([]int32, segments)
		for s := 0; s < segments; s++ {
			theta := 2 * math.Pi * float64(s) / float64(segments)
			offset := normal.Mul(math.Cos(theta) * radii[i]).Add(binormal.Mul(math.Sin(theta) * radii[i]))
			ring[s] = int32(len(m.Vertices))
			m.Vertices = append(m.Vertices, p.Add(offset))
		}
		rings[i] = ring
	}

	// Side quads between consecutive rings.
	for i := 0; i+1 < len(rings); i++ {
		r0, r1 := rings[i], rings[i+1]
		for s := 0; s < segments; s++ {
			s2 := (s + 1) % segments
			// Outward orientation: with CCW rings seen along +d, winding
			// (r0[s], r0[s2], r1[s2]) faces outward.
			m.Faces = append(m.Faces,
				Face{r0[s], r0[s2], r1[s2]},
				Face{r0[s], r1[s2], r1[s]},
			)
		}
	}

	// End caps: fan from the path endpoints.
	capStart := int32(len(m.Vertices))
	m.Vertices = append(m.Vertices, path[0])
	for s := 0; s < segments; s++ {
		s2 := (s + 1) % segments
		m.Faces = append(m.Faces, Face{capStart, rings[0][s2], rings[0][s]})
	}
	capEnd := int32(len(m.Vertices))
	m.Vertices = append(m.Vertices, path[len(path)-1])
	last := rings[len(rings)-1]
	for s := 0; s < segments; s++ {
		s2 := (s + 1) % segments
		m.Faces = append(m.Faces, Face{capEnd, last[s], last[s2]})
	}

	// Orientation sanity: enclosed volume must be positive; flip if not.
	if m.Volume() < 0 {
		for i, f := range m.Faces {
			m.Faces[i] = Face{f[0], f[2], f[1]}
		}
	}
	return m
}

// perpendicular returns an arbitrary unit vector perpendicular to d.
func perpendicular(d geom.Vec3) geom.Vec3 {
	ref := geom.V(0, 0, 1)
	if math.Abs(d.Z) > 0.9 {
		ref = geom.V(1, 0, 0)
	}
	return d.Cross(ref).Normalize()
}
