package mesh

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestCubeMeasures(t *testing.T) {
	m := Cube(geom.V(0, 0, 0), geom.V(2, 2, 2))
	if err := m.Validate(); err != nil {
		t.Fatalf("cube invalid: %v", err)
	}
	if got := m.Volume(); math.Abs(got-8) > 1e-12 {
		t.Errorf("Volume = %v, want 8", got)
	}
	if got := m.SurfaceArea(); math.Abs(got-24) > 1e-12 {
		t.Errorf("SurfaceArea = %v, want 24", got)
	}
	if got := m.Centroid(); !got.ApproxEqual(geom.V(1, 1, 1), 1e-9) {
		t.Errorf("Centroid = %v, want (1,1,1)", got)
	}
	b := m.Bounds()
	if b.Min != geom.V(0, 0, 0) || b.Max != geom.V(2, 2, 2) {
		t.Errorf("Bounds = %v", b)
	}
	if got := m.EulerCharacteristic(); got != 2 {
		t.Errorf("Euler characteristic = %d, want 2", got)
	}
}

func TestTetrahedronValid(t *testing.T) {
	m := Tetrahedron(1)
	if err := m.Validate(); err != nil {
		t.Fatalf("tetrahedron invalid: %v", err)
	}
	if m.Volume() <= 0 {
		t.Errorf("Volume = %v, want > 0", m.Volume())
	}
	if got := m.EulerCharacteristic(); got != 2 {
		t.Errorf("Euler characteristic = %d, want 2", got)
	}
}

func TestIcosphere(t *testing.T) {
	for level, wantFaces := range map[int]int{0: 20, 1: 80, 2: 320, 3: 1280} {
		m := Icosphere(1, level)
		if got := m.NumFaces(); got != wantFaces {
			t.Errorf("level %d: faces = %d, want %d", level, got, wantFaces)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("level %d: invalid: %v", level, err)
		}
		// Volume should approach 4π/3 ≈ 4.18879 from below.
		vol := m.Volume()
		sphereVol := 4 * math.Pi / 3
		if vol <= 0 || vol > sphereVol {
			t.Errorf("level %d: volume %v out of (0, %v]", level, vol, sphereVol)
		}
		if level >= 2 && vol < 0.95*sphereVol {
			t.Errorf("level %d: volume %v too far from sphere %v", level, vol, sphereVol)
		}
		// All vertices on the sphere.
		for _, v := range m.Vertices {
			if math.Abs(v.Len()-1) > 1e-12 {
				t.Fatalf("level %d: vertex %v off sphere", level, v)
			}
		}
	}
}

func TestEllipsoid(t *testing.T) {
	m := Ellipsoid(3, 2, 1, 2)
	if err := m.Validate(); err != nil {
		t.Fatalf("ellipsoid invalid: %v", err)
	}
	want := 4 * math.Pi / 3 * 3 * 2 * 1
	if vol := m.Volume(); vol <= 0.9*want || vol > want {
		t.Errorf("volume = %v, want ≈ %v", vol, want)
	}
}

func TestTube(t *testing.T) {
	path := []geom.Vec3{geom.V(0, 0, 0), geom.V(0, 0, 1), geom.V(0, 0, 2), geom.V(0, 0.5, 3)}
	radii := []float64{0.3, 0.3, 0.3, 0.3}
	m := Tube(path, radii, 8)
	if m == nil {
		t.Fatal("Tube returned nil")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("tube invalid: %v", err)
	}
	if m.Volume() <= 0 {
		t.Errorf("tube volume %v, want > 0", m.Volume())
	}
	// Roughly π r² L for a straight tube (octagonal cross-section is smaller).
	if m.Volume() > math.Pi*0.09*3.3 {
		t.Errorf("tube volume %v too large", m.Volume())
	}

	// Bad inputs return nil.
	if Tube(path[:1], radii[:1], 8) != nil {
		t.Error("short path should return nil")
	}
	if Tube(path, radii[:2], 8) != nil {
		t.Error("mismatched radii should return nil")
	}
	if Tube(path, radii, 2) != nil {
		t.Error("segments<3 should return nil")
	}
}

func TestContainsPoint(t *testing.T) {
	m := Icosphere(1, 2)
	if !m.ContainsPoint(geom.V(0, 0, 0)) {
		t.Error("center should be inside")
	}
	if !m.ContainsPoint(geom.V(0.5, 0.2, 0.1)) {
		t.Error("interior point should be inside")
	}
	if m.ContainsPoint(geom.V(2, 0, 0)) {
		t.Error("exterior point should be outside")
	}
	if m.ContainsPoint(geom.V(0.9, 0.9, 0.9)) {
		t.Error("corner point outside sphere should be outside")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Cube(geom.V(0, 0, 0), geom.V(1, 1, 1))
	c := m.Clone()
	c.Vertices[0] = geom.V(99, 99, 99)
	c.Faces[0] = Face{0, 0, 0}
	if m.Vertices[0] == c.Vertices[0] || m.Faces[0] == c.Faces[0] {
		t.Error("Clone shares storage with original")
	}
}

func TestTranslateScale(t *testing.T) {
	m := Cube(geom.V(0, 0, 0), geom.V(1, 1, 1))
	m.Translate(geom.V(10, 0, 0))
	if got := m.Bounds().Min; got != geom.V(10, 0, 0) {
		t.Errorf("after Translate, Min = %v", got)
	}
	m2 := Cube(geom.V(0, 0, 0), geom.V(1, 1, 1))
	m2.Scale(3)
	if got := m2.Volume(); math.Abs(got-27) > 1e-9 {
		t.Errorf("after Scale, Volume = %v, want 27", got)
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	// Out-of-range index.
	bad := &Mesh{Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)}, Faces: []Face{{0, 1, 5}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range index not caught")
	}

	// Degenerate face.
	bad2 := &Mesh{Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)}, Faces: []Face{{0, 1, 1}}}
	if err := bad2.Validate(); err == nil {
		t.Error("degenerate face not caught")
	}

	// Open surface (single triangle).
	bad3 := &Mesh{Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)}, Faces: []Face{{0, 1, 2}}}
	if err := bad3.Validate(); err == nil {
		t.Error("open surface not caught")
	}

	// Inconsistent winding: flip one face of a tetrahedron.
	m := Tetrahedron(1)
	m.Faces[0] = Face{m.Faces[0][0], m.Faces[0][2], m.Faces[0][1]}
	if err := m.Validate(); err == nil {
		t.Error("inconsistent winding not caught")
	}

	// Inverted mesh (all faces inward).
	inv := Tetrahedron(1)
	for i, f := range inv.Faces {
		inv.Faces[i] = Face{f[0], f[2], f[1]}
	}
	if err := inv.Validate(); err == nil {
		t.Error("negative volume not caught")
	}
}

func TestIsClosed(t *testing.T) {
	if !Cube(geom.V(0, 0, 0), geom.V(1, 1, 1)).IsClosed() {
		t.Error("cube should be closed")
	}
	open := &Mesh{Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)}, Faces: []Face{{0, 1, 2}}}
	if open.IsClosed() {
		t.Error("single triangle should not be closed")
	}
}

func TestCompactVertices(t *testing.T) {
	m := Cube(geom.V(0, 0, 0), geom.V(1, 1, 1))
	// Add two orphan vertices.
	m.Vertices = append(m.Vertices, geom.V(50, 50, 50), geom.V(60, 60, 60))
	nBefore := m.NumVertices()
	remap := m.CompactVertices()
	if m.NumVertices() != nBefore-2 {
		t.Errorf("vertices after compact = %d, want %d", m.NumVertices(), nBefore-2)
	}
	if remap[nBefore-1] != -1 || remap[nBefore-2] != -1 {
		t.Error("orphan vertices not marked dropped")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("mesh invalid after compact: %v", err)
	}
}

func TestVolumeAdditivity(t *testing.T) {
	// Two disjoint cubes as one mesh: volume adds.
	a := Cube(geom.V(0, 0, 0), geom.V(1, 1, 1))
	b := Cube(geom.V(5, 0, 0), geom.V(6, 1, 1))
	combined := a.Clone()
	off := int32(len(combined.Vertices))
	combined.Vertices = append(combined.Vertices, b.Vertices...)
	for _, f := range b.Faces {
		combined.Faces = append(combined.Faces, Face{f[0] + off, f[1] + off, f[2] + off})
	}
	if got := combined.Volume(); math.Abs(got-2) > 1e-12 {
		t.Errorf("combined volume = %v, want 2", got)
	}
}
