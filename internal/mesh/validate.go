package mesh

import (
	"errors"
	"fmt"
)

// Validation errors.
var (
	ErrIndexOutOfRange  = errors.New("mesh: face references vertex out of range")
	ErrDegenerateFace   = errors.New("mesh: face repeats a vertex")
	ErrOpenEdge         = errors.New("mesh: edge with fewer than 2 incident faces (surface not closed)")
	ErrNonManifoldEdge  = errors.New("mesh: edge with more than 2 incident faces")
	ErrInconsistentWind = errors.New("mesh: inconsistent face orientation across an edge")
	ErrNegativeVolume   = errors.New("mesh: negative enclosed volume (faces wound inward)")
)

// Validate checks that the mesh is a closed, orientable, consistently wound
// 2-manifold — the polyhedron class assumed throughout the paper. It returns
// the first violation found, or nil.
func (m *Mesh) Validate() error {
	n := int32(len(m.Vertices))
	for fi, f := range m.Faces {
		for _, v := range f {
			if v < 0 || v >= n {
				return fmt.Errorf("%w: face %d vertex %d (n=%d)", ErrIndexOutOfRange, fi, v, n)
			}
		}
		if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
			return fmt.Errorf("%w: face %d = %v", ErrDegenerateFace, fi, f)
		}
	}

	// Each undirected edge must appear exactly twice, once per direction
	// (consistent winding).
	type dirCount struct{ fwd, rev int }
	counts := make(map[EdgeKey]*dirCount, 3*len(m.Faces)/2+1)
	for _, f := range m.Faces {
		for k := 0; k < 3; k++ {
			a, b := f[k], f[(k+1)%3]
			key := MakeEdgeKey(a, b)
			c := counts[key]
			if c == nil {
				c = &dirCount{}
				counts[key] = c
			}
			if a == key.Lo {
				c.fwd++
			} else {
				c.rev++
			}
		}
	}
	for e, c := range counts {
		total := c.fwd + c.rev
		switch {
		case total < 2:
			return fmt.Errorf("%w: edge %v", ErrOpenEdge, e)
		case total > 2:
			return fmt.Errorf("%w: edge %v has %d faces", ErrNonManifoldEdge, e, total)
		case c.fwd != 1 || c.rev != 1:
			return fmt.Errorf("%w: edge %v (fwd=%d rev=%d)", ErrInconsistentWind, e, c.fwd, c.rev)
		}
	}

	if len(m.Faces) > 0 && m.Volume() < 0 {
		return ErrNegativeVolume
	}
	return nil
}

// EulerCharacteristic returns V - E + F. A closed surface of genus g has
// characteristic 2 - 2g (2 for a topological sphere).
func (m *Mesh) EulerCharacteristic() int {
	return len(m.Vertices) - len(m.Edges()) + len(m.Faces)
}

// IsClosed reports whether every edge is shared by exactly two faces.
func (m *Mesh) IsClosed() bool {
	counts := make(map[EdgeKey]int, 3*len(m.Faces)/2+1)
	for _, f := range m.Faces {
		for k := 0; k < 3; k++ {
			counts[MakeEdgeKey(f[k], f[(k+1)%3])]++
		}
	}
	for _, c := range counts {
		if c != 2 {
			return false
		}
	}
	return true
}

// CompactVertices removes unreferenced vertices and remaps face indices.
// It returns the mapping from old vertex index to new index (-1 if dropped).
func (m *Mesh) CompactVertices() []int32 {
	used := make([]bool, len(m.Vertices))
	for _, f := range m.Faces {
		used[f[0]] = true
		used[f[1]] = true
		used[f[2]] = true
	}
	remap := make([]int32, len(m.Vertices))
	kept := m.Vertices[:0]
	var next int32
	for i, u := range used {
		if u {
			remap[i] = next
			kept = append(kept, m.Vertices[i])
			next++
		} else {
			remap[i] = -1
		}
	}
	m.Vertices = kept
	for i, f := range m.Faces {
		m.Faces[i] = Face{remap[f[0]], remap[f[1]], remap[f[2]]}
	}
	return remap
}
