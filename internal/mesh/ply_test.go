package mesh

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func TestPLYASCIIRoundTrip(t *testing.T) {
	orig := Icosphere(3, 2)
	var buf bytes.Buffer
	if err := orig.WritePLY(&buf); err != nil {
		t.Fatalf("WritePLY: %v", err)
	}
	got, err := ReadPLY(&buf)
	if err != nil {
		t.Fatalf("ReadPLY: %v", err)
	}
	if got.NumVertices() != orig.NumVertices() || got.NumFaces() != orig.NumFaces() {
		t.Fatalf("sizes: %v vs %v", got, orig)
	}
	for i, v := range orig.Vertices {
		if !got.Vertices[i].ApproxEqual(v, 1e-12) {
			t.Fatalf("vertex %d: %v vs %v", i, got.Vertices[i], v)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped mesh invalid: %v", err)
	}
}

func TestPLYBinaryLittleEndian(t *testing.T) {
	// Hand-build a binary PLY of a tetrahedron with float32 vertices plus
	// an extra property that must be skipped.
	tet := Tetrahedron(2)
	var buf bytes.Buffer
	buf.WriteString("ply\nformat binary_little_endian 1.0\n")
	buf.WriteString("element vertex 4\n")
	buf.WriteString("property float x\nproperty float y\nproperty float z\nproperty float quality\n")
	buf.WriteString("element face 4\n")
	buf.WriteString("property list uchar int vertex_indices\n")
	buf.WriteString("end_header\n")
	for _, v := range tet.Vertices {
		for _, c := range []float64{v.X, v.Y, v.Z, 0.5} {
			binary.Write(&buf, binary.LittleEndian, float32(c))
		}
	}
	for _, f := range tet.Faces {
		buf.WriteByte(3)
		for _, idx := range f {
			binary.Write(&buf, binary.LittleEndian, int32(idx))
		}
	}

	got, err := ReadPLY(&buf)
	if err != nil {
		t.Fatalf("ReadPLY: %v", err)
	}
	if got.NumVertices() != 4 || got.NumFaces() != 4 {
		t.Fatalf("got %v", got)
	}
	for i, v := range tet.Vertices {
		if math.Abs(got.Vertices[i].X-v.X) > 1e-6 {
			t.Fatalf("vertex %d mismatch", i)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("binary PLY mesh invalid: %v", err)
	}
}

func TestPLYQuadTriangulation(t *testing.T) {
	src := `ply
format ascii 1.0
element vertex 4
property double x
property double y
property double z
element face 1
property list uchar int vertex_indices
end_header
0 0 0
1 0 0
1 1 0
0 1 0
4 0 1 2 3
`
	m, err := ReadPLY(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFaces() != 2 {
		t.Errorf("faces = %d, want 2", m.NumFaces())
	}
}

func TestPLYSkipsUnknownElements(t *testing.T) {
	src := `ply
format ascii 1.0
comment has an edge element to skip
element vertex 3
property double x
property double y
property double z
element edge 2
property int vertex1
property int vertex2
end_header
0 0 0
1 0 0
0 1 0
0 1
1 2
`
	m, err := ReadPLY(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVertices() != 3 || m.NumFaces() != 0 {
		t.Errorf("got %v", m)
	}
}

func TestPLYErrors(t *testing.T) {
	cases := map[string]string{
		"not ply":     "off\n",
		"bad format":  "ply\nformat binary_big_endian 1.0\nend_header\n",
		"bad element": "ply\nformat ascii 1.0\nelement vertex x\nend_header\n",
		"oob index":   "ply\nformat ascii 1.0\nelement vertex 3\nproperty double x\nproperty double y\nproperty double z\nelement face 1\nproperty list uchar int vertex_indices\nend_header\n0 0 0\n1 0 0\n0 1 0\n3 0 1 9\n",
		"no xyz":      "ply\nformat ascii 1.0\nelement vertex 1\nproperty double a\nend_header\n1\n",
		"truncated":   "ply\nformat ascii 1.0\nelement vertex 5\nproperty double x\nproperty double y\nproperty double z\nend_header\n0 0 0\n",
		"prop orphan": "ply\nformat ascii 1.0\nproperty double x\nend_header\n",
		"unknown kw":  "ply\nformat ascii 1.0\nwhatever\nend_header\n",
	}
	for name, src := range cases {
		if _, err := ReadPLY(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPLYOFFEquivalence(t *testing.T) {
	// The same mesh written to both formats decodes identically.
	m := Ellipsoid(3, 2, 1, 1)
	var off, ply bytes.Buffer
	if err := m.WriteOFF(&off); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePLY(&ply); err != nil {
		t.Fatal(err)
	}
	a, err := ReadOFF(&off)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadPLY(&ply)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != b.NumVertices() || a.NumFaces() != b.NumFaces() {
		t.Fatal("format mismatch")
	}
	for i := range a.Vertices {
		if !a.Vertices[i].ApproxEqual(b.Vertices[i], 1e-12) {
			t.Fatalf("vertex %d differs between formats", i)
		}
	}
}
