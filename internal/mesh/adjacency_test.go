package mesh

import (
	"testing"

	"repro/internal/geom"
)

func TestBuildAdjacencyCube(t *testing.T) {
	m := Cube(geom.V(0, 0, 0), geom.V(1, 1, 1))
	a := BuildAdjacency(m)

	// 12 edges on a cube surface... actually a triangulated cube has
	// 12 quad-diagonal edges: V=8, F=12, so E = V+F-2 = 18.
	if got := len(a.EdgeFaces); got != 18 {
		t.Errorf("edge count = %d, want 18", got)
	}
	for e, faces := range a.EdgeFaces {
		if len(faces) != 2 {
			t.Errorf("edge %v has %d faces, want 2", e, len(faces))
		}
	}
	// Total vertex-face incidences = 3 × faces.
	var inc int
	for _, fs := range a.VertexFaces {
		inc += len(fs)
	}
	if inc != 3*m.NumFaces() {
		t.Errorf("incidences = %d, want %d", inc, 3*m.NumFaces())
	}
}

func TestOneRingIcosahedron(t *testing.T) {
	m := Icosahedron(1)
	a := BuildAdjacency(m)
	for v := int32(0); v < int32(m.NumVertices()); v++ {
		ring, ok := a.OneRing(m, v)
		if !ok {
			t.Fatalf("vertex %d: one-ring failed", v)
		}
		if len(ring) != 5 {
			t.Errorf("vertex %d: ring size %d, want 5", v, len(ring))
		}
		// Each consecutive ring pair must share an edge with v via a face.
		for i := range ring {
			j := (i + 1) % len(ring)
			key := MakeEdgeKey(ring[i], ring[j])
			if _, exists := a.EdgeFaces[key]; !exists {
				t.Errorf("vertex %d: ring edge %v-%v not in mesh", v, ring[i], ring[j])
			}
		}
		// Ring must not contain v or duplicates.
		seen := map[int32]bool{}
		for _, r := range ring {
			if r == v {
				t.Errorf("vertex %d appears in its own ring", v)
			}
			if seen[r] {
				t.Errorf("vertex %d: duplicate ring member %d", v, r)
			}
			seen[r] = true
		}
	}
}

func TestOneRingOrientation(t *testing.T) {
	// The ring of a sphere vertex, walked in order, should wind CCW when
	// viewed from outside: the polygon normal should point away from the
	// center (positive dot with the vertex direction).
	m := Icosphere(1, 1)
	a := BuildAdjacency(m)
	for v := int32(0); v < int32(m.NumVertices()); v++ {
		ring, ok := a.OneRing(m, v)
		if !ok {
			t.Fatalf("vertex %d: one-ring failed", v)
		}
		var normal geom.Vec3
		p0 := m.Vertices[ring[0]]
		for i := 1; i+1 < len(ring); i++ {
			e1 := m.Vertices[ring[i]].Sub(p0)
			e2 := m.Vertices[ring[i+1]].Sub(p0)
			normal = normal.Add(e1.Cross(e2))
		}
		if normal.Dot(m.Vertices[v]) <= 0 {
			t.Errorf("vertex %d: ring winds the wrong way", v)
		}
	}
}

func TestOneRingRejectsBoundary(t *testing.T) {
	// A single triangle's vertices have open fans.
	m := &Mesh{
		Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)},
		Faces:    []Face{{0, 1, 2}},
	}
	a := BuildAdjacency(m)
	if _, ok := a.OneRing(m, 0); ok {
		t.Error("boundary vertex should not yield a one-ring")
	}
}

func TestVertexNeighbors(t *testing.T) {
	m := Tetrahedron(1)
	a := BuildAdjacency(m)
	for v := int32(0); v < 4; v++ {
		nbrs := a.VertexNeighbors(m, v)
		if len(nbrs) != 3 {
			t.Errorf("vertex %d: %d neighbors, want 3", v, len(nbrs))
		}
	}
}

func TestEdgesSorted(t *testing.T) {
	m := Icosahedron(1)
	edges := m.Edges()
	if len(edges) != 30 {
		t.Errorf("icosahedron edges = %d, want 30", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.Lo > b.Lo || (a.Lo == b.Lo && a.Hi >= b.Hi) {
			t.Fatal("edges not strictly sorted")
		}
	}
}

func TestMakeEdgeKeyCanonical(t *testing.T) {
	if MakeEdgeKey(5, 2) != MakeEdgeKey(2, 5) {
		t.Error("edge key not canonical")
	}
	if k := MakeEdgeKey(2, 5); k.Lo != 2 || k.Hi != 5 {
		t.Errorf("key = %v", k)
	}
}
