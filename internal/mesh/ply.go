package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// PLY support covers the subset produced by common mesh tools: ascii 1.0
// and binary_little_endian 1.0 files with a vertex element carrying float32
// or float64 x/y/z properties (extra scalar properties are skipped) and a
// face element with a uchar/int list of vertex indices. Faces with more
// than three vertices are fan-triangulated.

type plyFormat int

const (
	plyASCII plyFormat = iota
	plyBinaryLE
)

type plyProp struct {
	name string
	typ  string // float, double, uchar, int, ...; "list" handled separately
	list bool
	countType,
	elemType string
}

type plyElement struct {
	name  string
	count int
	props []plyProp
}

// WritePLY writes the mesh as an ascii PLY 1.0 file.
func (m *Mesh) WritePLY(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ply\nformat ascii 1.0\ncomment produced by 3dpro\n")
	fmt.Fprintf(bw, "element vertex %d\n", len(m.Vertices))
	fmt.Fprintf(bw, "property double x\nproperty double y\nproperty double z\n")
	fmt.Fprintf(bw, "element face %d\n", len(m.Faces))
	fmt.Fprintf(bw, "property list uchar int vertex_indices\n")
	fmt.Fprintf(bw, "end_header\n")
	for _, v := range m.Vertices {
		fmt.Fprintf(bw, "%g %g %g\n", v.X, v.Y, v.Z)
	}
	for _, f := range m.Faces {
		fmt.Fprintf(bw, "3 %d %d %d\n", f[0], f[1], f[2])
	}
	return bw.Flush()
}

// ReadPLY parses an ascii or binary_little_endian PLY file.
func ReadPLY(r io.Reader) (*Mesh, error) {
	br := bufio.NewReader(r)

	line, err := readPLYLine(br)
	if err != nil || line != "ply" {
		return nil, fmt.Errorf("mesh: not a PLY file")
	}

	format := plyASCII
	var elements []plyElement
	var cur *plyElement
	for {
		line, err = readPLYLine(br)
		if err != nil {
			return nil, fmt.Errorf("mesh: reading PLY header: %w", err)
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "comment", "obj_info":
			continue
		case "format":
			if len(fields) < 2 {
				return nil, fmt.Errorf("mesh: bad PLY format line %q", line)
			}
			switch fields[1] {
			case "ascii":
				format = plyASCII
			case "binary_little_endian":
				format = plyBinaryLE
			default:
				return nil, fmt.Errorf("mesh: unsupported PLY format %q", fields[1])
			}
		case "element":
			if len(fields) != 3 {
				return nil, fmt.Errorf("mesh: bad element line %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("mesh: bad element count in %q", line)
			}
			elements = append(elements, plyElement{name: fields[1], count: n})
			cur = &elements[len(elements)-1]
		case "property":
			if cur == nil {
				return nil, fmt.Errorf("mesh: property before element")
			}
			switch {
			case len(fields) == 3:
				cur.props = append(cur.props, plyProp{name: fields[2], typ: fields[1]})
			case len(fields) == 5 && fields[1] == "list":
				cur.props = append(cur.props, plyProp{
					name: fields[4], list: true, countType: fields[2], elemType: fields[3],
				})
			default:
				return nil, fmt.Errorf("mesh: bad property line %q", line)
			}
		case "end_header":
			goto body
		default:
			return nil, fmt.Errorf("mesh: unknown PLY header keyword %q", fields[0])
		}
	}

body:
	m := &Mesh{}
	for _, el := range elements {
		switch el.name {
		case "vertex":
			if err := readPLYVertices(br, format, el, m); err != nil {
				return nil, err
			}
		case "face":
			if err := readPLYFaces(br, format, el, m); err != nil {
				return nil, err
			}
		default:
			if err := skipPLYElement(br, format, el); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func readPLYLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

func plyScalarSize(typ string) (int, error) {
	switch typ {
	case "char", "uchar", "int8", "uint8":
		return 1, nil
	case "short", "ushort", "int16", "uint16":
		return 2, nil
	case "int", "uint", "int32", "uint32", "float", "float32":
		return 4, nil
	case "double", "float64":
		return 8, nil
	default:
		return 0, fmt.Errorf("mesh: unknown PLY type %q", typ)
	}
}

func readPLYScalar(br *bufio.Reader, typ string) (float64, error) {
	size, err := plyScalarSize(typ)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, err
	}
	switch typ {
	case "char", "int8":
		return float64(int8(buf[0])), nil
	case "uchar", "uint8":
		return float64(buf[0]), nil
	case "short", "int16":
		return float64(int16(binary.LittleEndian.Uint16(buf))), nil
	case "ushort", "uint16":
		return float64(binary.LittleEndian.Uint16(buf)), nil
	case "int", "int32":
		return float64(int32(binary.LittleEndian.Uint32(buf))), nil
	case "uint", "uint32":
		return float64(binary.LittleEndian.Uint32(buf)), nil
	case "float", "float32":
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf))), nil
	default: // double
		return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
	}
}

func readPLYVertices(br *bufio.Reader, format plyFormat, el plyElement, m *Mesh) error {
	xi, yi, zi := -1, -1, -1
	for i, p := range el.props {
		if p.list {
			return fmt.Errorf("mesh: list property on vertex element unsupported")
		}
		switch p.name {
		case "x":
			xi = i
		case "y":
			yi = i
		case "z":
			zi = i
		}
	}
	if xi < 0 || yi < 0 || zi < 0 {
		return fmt.Errorf("mesh: PLY vertex element missing x/y/z")
	}
	m.Vertices = make([]geom.Vec3, 0, el.count)
	vals := make([]float64, len(el.props))
	for n := 0; n < el.count; n++ {
		if format == plyASCII {
			line, err := readPLYLine(br)
			if err != nil {
				return fmt.Errorf("mesh: reading vertex %d: %w", n, err)
			}
			fields := strings.Fields(line)
			if len(fields) < len(el.props) {
				return fmt.Errorf("mesh: short vertex line %q", line)
			}
			for i := range el.props {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return fmt.Errorf("mesh: bad vertex value %q", fields[i])
				}
				vals[i] = v
			}
		} else {
			for i, p := range el.props {
				v, err := readPLYScalar(br, p.typ)
				if err != nil {
					return fmt.Errorf("mesh: reading vertex %d: %w", n, err)
				}
				vals[i] = v
			}
		}
		m.Vertices = append(m.Vertices, geom.V(vals[xi], vals[yi], vals[zi]))
	}
	return nil
}

func readPLYFaces(br *bufio.Reader, format plyFormat, el plyElement, m *Mesh) error {
	if len(el.props) != 1 || !el.props[0].list {
		return fmt.Errorf("mesh: PLY face element must have exactly one list property")
	}
	p := el.props[0]
	nv := int32(len(m.Vertices))
	for n := 0; n < el.count; n++ {
		var idx []int32
		if format == plyASCII {
			line, err := readPLYLine(br)
			if err != nil {
				return fmt.Errorf("mesh: reading face %d: %w", n, err)
			}
			fields := strings.Fields(line)
			if len(fields) < 1 {
				return fmt.Errorf("mesh: empty face line")
			}
			k, err := strconv.Atoi(fields[0])
			if err != nil || k < 3 || len(fields) < 1+k {
				return fmt.Errorf("mesh: bad face line %q", line)
			}
			idx = make([]int32, k)
			for i := 0; i < k; i++ {
				v, err := strconv.Atoi(fields[1+i])
				if err != nil {
					return fmt.Errorf("mesh: bad face index %q", fields[1+i])
				}
				idx[i] = int32(v)
			}
		} else {
			cnt, err := readPLYScalar(br, p.countType)
			if err != nil {
				return fmt.Errorf("mesh: reading face %d count: %w", n, err)
			}
			k := int(cnt)
			if k < 3 || k > 1<<16 {
				return fmt.Errorf("mesh: bad face vertex count %d", k)
			}
			idx = make([]int32, k)
			for i := 0; i < k; i++ {
				v, err := readPLYScalar(br, p.elemType)
				if err != nil {
					return fmt.Errorf("mesh: reading face %d: %w", n, err)
				}
				idx[i] = int32(v)
			}
		}
		for _, v := range idx {
			if v < 0 || v >= nv {
				return fmt.Errorf("mesh: face index %d out of range [0,%d)", v, nv)
			}
		}
		for i := 1; i+1 < len(idx); i++ {
			m.Faces = append(m.Faces, Face{idx[0], idx[i], idx[i+1]})
		}
	}
	return nil
}

func skipPLYElement(br *bufio.Reader, format plyFormat, el plyElement) error {
	for n := 0; n < el.count; n++ {
		if format == plyASCII {
			if _, err := readPLYLine(br); err != nil {
				return err
			}
			continue
		}
		for _, p := range el.props {
			if p.list {
				cnt, err := readPLYScalar(br, p.countType)
				if err != nil {
					return err
				}
				size, err := plyScalarSize(p.elemType)
				if err != nil {
					return err
				}
				if _, err := io.CopyN(io.Discard, br, int64(size)*int64(cnt)); err != nil {
					return err
				}
				continue
			}
			size, err := plyScalarSize(p.typ)
			if err != nil {
				return err
			}
			if _, err := io.CopyN(io.Discard, br, int64(size)); err != nil {
				return err
			}
		}
	}
	return nil
}
