package mesh

import "sort"

// EdgeKey identifies an undirected edge by its sorted vertex pair.
type EdgeKey struct {
	Lo, Hi int32
}

// MakeEdgeKey returns the canonical key for the edge {a, b}.
func MakeEdgeKey(a, b int32) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{a, b}
}

// Adjacency holds the connectivity structures needed for decimation and
// validation: incident faces per vertex and per edge.
type Adjacency struct {
	// VertexFaces[v] lists the indices of faces incident to vertex v.
	VertexFaces [][]int32
	// EdgeFaces maps each undirected edge to the faces sharing it.
	EdgeFaces map[EdgeKey][]int32
}

// BuildAdjacency computes the adjacency structures of m.
func BuildAdjacency(m *Mesh) *Adjacency {
	a := &Adjacency{
		VertexFaces: make([][]int32, len(m.Vertices)),
		EdgeFaces:   make(map[EdgeKey][]int32, 3*len(m.Faces)/2+1),
	}
	for fi, f := range m.Faces {
		for k := 0; k < 3; k++ {
			v := f[k]
			a.VertexFaces[v] = append(a.VertexFaces[v], int32(fi))
			e := MakeEdgeKey(f[k], f[(k+1)%3])
			a.EdgeFaces[e] = append(a.EdgeFaces[e], int32(fi))
		}
	}
	return a
}

// VertexDegree returns the number of faces incident to v.
func (a *Adjacency) VertexDegree(v int32) int { return len(a.VertexFaces[v]) }

// OneRing returns the ordered cycle of neighbor vertices around v, walking
// the incident faces in CCW order as seen from outside. ok is false when the
// neighborhood is not a simple disk (non-manifold, boundary, or a duplicated
// neighbor), in which case v must not be removed by decimation.
//
// For a face (v, a, b) the ring contributes the directed edge a→b; chaining
// these directed edges yields the ring in consistent CCW orientation.
func (a *Adjacency) OneRing(m *Mesh, v int32) (ring []int32, ok bool) {
	faces := a.VertexFaces[v]
	if len(faces) < 3 {
		return nil, false
	}
	next := make(map[int32]int32, len(faces))
	for _, fi := range faces {
		f := m.Faces[fi]
		var from, to int32
		switch v {
		case f[0]:
			from, to = f[1], f[2]
		case f[1]:
			from, to = f[2], f[0]
		default:
			from, to = f[0], f[1]
		}
		if _, dup := next[from]; dup {
			return nil, false // non-manifold fan
		}
		next[from] = to
	}
	// Chain the directed edges into a single cycle.
	start := m.Faces[faces[0]].otherFirst(v)
	ring = make([]int32, 0, len(faces))
	cur := start
	for i := 0; i < len(faces); i++ {
		ring = append(ring, cur)
		n, exists := next[cur]
		if !exists {
			return nil, false // open fan (boundary vertex)
		}
		cur = n
	}
	if cur != start {
		return nil, false // edges do not close into one cycle
	}
	// All neighbors must be distinct.
	seen := make(map[int32]bool, len(ring))
	for _, r := range ring {
		if seen[r] {
			return nil, false
		}
		seen[r] = true
	}
	return ring, true
}

// otherFirst returns the ring-edge source vertex of face f relative to v
// (the vertex after v in CCW order).
func (f Face) otherFirst(v int32) int32 {
	switch v {
	case f[0]:
		return f[1]
	case f[1]:
		return f[2]
	default:
		return f[0]
	}
}

// Edges returns all undirected edges of the mesh, sorted for determinism.
func (m *Mesh) Edges() []EdgeKey {
	set := make(map[EdgeKey]struct{}, 3*len(m.Faces)/2+1)
	for _, f := range m.Faces {
		for k := 0; k < 3; k++ {
			set[MakeEdgeKey(f[k], f[(k+1)%3])] = struct{}{}
		}
	}
	edges := make([]EdgeKey, 0, len(set))
	for e := range set {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Lo != edges[j].Lo {
			return edges[i].Lo < edges[j].Lo
		}
		return edges[i].Hi < edges[j].Hi
	})
	return edges
}

// VertexNeighbors returns the set of vertices sharing an edge with v
// (unordered, deduplicated).
func (a *Adjacency) VertexNeighbors(m *Mesh, v int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, fi := range a.VertexFaces[v] {
		for _, w := range m.Faces[fi] {
			if w != v && !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}
