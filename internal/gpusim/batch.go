package gpusim

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
)

// StreamDepth is the number of launches a Stream keeps in flight before
// Submit applies backpressure: one batch evaluating while the next is
// queued, the simulated analogue of double-buffered kernel launches.
const StreamDepth = 2

// PairKind selects the kernel a PairTask runs.
type PairKind uint8

const (
	// PairIntersect asks "does any face of A intersect any face of B",
	// with box-gated pairs and early termination on the first hit.
	PairIntersect PairKind = iota
	// PairMinDist asks for the squared minimum pair distance, seeded with
	// Upper2 (a verdict D2 ≥ Upper2 only means "no pair beat the bound").
	PairMinDist
	// PairHost runs the task's Fn closure. It exists so refinement work
	// that cannot be expressed as a flat cross product (tree-accelerated
	// paths, partitioned evaluation) still rides the same batches and
	// keeps the pipeline's ordering and accounting. Host closures execute
	// on the EvalPairBatch caller's goroutine, never on a device worker:
	// a closure may itself launch device kernels (the GPU accelerators
	// do), and occupying a worker while waiting for sub-kernels would
	// deadlock a saturated pool.
	PairHost
)

// PairTask is one unit of refinement work in a batch: a full A×B face-pair
// cross product in SoA form, or a host closure.
type PairTask struct {
	Kind   PairKind
	A, B   *geom.TriSoA
	Upper2 float64
	// Tag is caller-owned correlation state, carried through untouched.
	Tag any
	// Fn is the host closure for PairHost tasks.
	Fn func() PairVerdict
}

// PairVerdict is the outcome of one PairTask. Err is non-nil only when a
// host closure returned an error or a kernel panicked; the geometry fields
// are then meaningless.
type PairVerdict struct {
	Hit bool
	D2  float64
	Err error
}

// numHistBuckets is the number of power-of-two pairs-per-batch buckets;
// the last bucket absorbs everything ≥ 2^(numHistBuckets-1).
const numHistBuckets = 24

// batchStats aggregates the device's batch-dispatch accounting.
type batchStats struct {
	batches    atomic.Int64
	batchPairs atomic.Int64
	// hist[k] counts batches whose total face-pair count p satisfies
	// 2^k ≤ p < 2^(k+1) (bucket 0 also takes p ≤ 1). Exposed raw so the
	// server can project it into an obs histogram at scrape time.
	hist [numHistBuckets]atomic.Int64
}

// BatchesDispatched returns the number of EvalPairBatch calls so far.
func (d *Device) BatchesDispatched() int64 { return d.batch.batches.Load() }

// BatchPairs returns the total face pairs across all dispatched batches.
func (d *Device) BatchPairs() int64 { return d.batch.batchPairs.Load() }

// PairsPerBatchBuckets returns the pairs-per-batch histogram as cumulative
// power-of-two buckets: element k counts batches with ≤ 2^(k+1)−1 pairs.
// The last element equals BatchesDispatched (the +Inf bucket).
func (d *Device) PairsPerBatchBuckets() []int64 {
	out := make([]int64, len(d.batch.hist))
	var cum int64
	for i := range d.batch.hist {
		cum += d.batch.hist[i].Load()
		out[i] = cum
	}
	return out
}

// taskState is the shared accumulator kernels of one task fold into.
type taskState struct {
	hit  atomic.Bool
	best atomicFloat
	err  atomic.Pointer[error]
}

func (st *taskState) setErr(err error) {
	if err != nil {
		st.err.CompareAndSwap(nil, &err)
	}
}

// EvalPairBatch evaluates tasks on the device, writing verdicts[i] for
// tasks[i]. Each SoA task's pair index space is split into batch-size
// kernel launches; kernels of one task share a hit flag (intersection
// early-exit) and a CAS-min accumulator (distance). A nil abort pointer
// disables cancellation; when abort becomes true, kernels not yet started
// return immediately and the corresponding verdicts are unspecified.
// Kernel panics are captured into the verdict's Err instead of killing
// device workers. verdicts must have len(tasks) elements.
func (d *Device) EvalPairBatch(tasks []PairTask, verdicts []PairVerdict, abort *atomic.Bool) {
	if len(verdicts) != len(tasks) {
		panic("gpusim: verdicts length does not match tasks")
	}
	if len(tasks) == 0 {
		return
	}
	states := d.getStates(len(tasks))
	defer d.putStates(states)

	var totalPairs int64
	var wg sync.WaitGroup
	launch := func(st *taskState, kernel func()) {
		wg.Add(1)
		d.kernelLaunches.Add(1)
		d.tasks <- func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					st.setErr(fmt.Errorf("gpusim: kernel panic: %v", r))
				}
			}()
			if abort != nil && abort.Load() {
				return
			}
			kernel()
		}
	}

	for ti := range tasks {
		t := &tasks[ti]
		st := &states[ti]
		// Reset the (possibly pooled) state: distance kernels are seeded
		// with the task's bound so they can prune against it from the
		// first pair on.
		st.hit.Store(false)
		st.err.Store(nil)
		seed := math.Inf(1)
		if t.Kind == PairMinDist && t.Upper2 < seed {
			seed = t.Upper2
		}
		st.best.bits.Store(math.Float64bits(seed))
		switch t.Kind {
		case PairHost:
			runHostTask(st, t, abort)
		case PairIntersect:
			total := t.A.Len() * t.B.Len()
			totalPairs += int64(total)
			for start := 0; start < total; start += d.batchSize {
				start := start
				end := min(start+d.batchSize, total)
				launch(st, func() {
					if st.hit.Load() {
						return
					}
					d.pairsEvaluated.Add(int64(end - start))
					if geom.IntersectsBatchRange(t.A, t.B, start, end) {
						st.hit.Store(true)
					}
				})
			}
		case PairMinDist:
			total := t.A.Len() * t.B.Len()
			totalPairs += int64(total)
			for start := 0; start < total; start += d.batchSize {
				start := start
				end := min(start+d.batchSize, total)
				launch(st, func() {
					d.pairsEvaluated.Add(int64(end - start))
					st.best.min(geom.MinDist2BatchRange(t.A, t.B, start, end, st.best.load()))
				})
			}
		}
	}
	wg.Wait()

	d.batch.batches.Add(1)
	d.batch.batchPairs.Add(totalPairs)
	d.batch.hist[histBucket(totalPairs)].Add(1)

	for ti := range tasks {
		st := &states[ti]
		v := &verdicts[ti]
		if ep := st.err.Load(); ep != nil {
			*v = PairVerdict{Err: *ep}
			continue
		}
		*v = PairVerdict{Hit: st.hit.Load(), D2: st.best.load()}
	}
}

// runHostTask executes a PairHost closure inline with the same abort gate
// and panic capture as a dispatched kernel.
func runHostTask(st *taskState, t *PairTask, abort *atomic.Bool) {
	defer func() {
		if r := recover(); r != nil {
			st.setErr(fmt.Errorf("gpusim: kernel panic: %v", r))
		}
	}()
	if abort != nil && abort.Load() {
		return
	}
	v := t.Fn()
	if v.Err != nil {
		st.setErr(v.Err)
		return
	}
	if v.Hit {
		st.hit.Store(true)
	}
	st.best.min(v.D2)
}

// histBucket maps a batch's pair count to its power-of-two bucket index.
func histBucket(pairs int64) int {
	if pairs <= 1 {
		return 0
	}
	b := bits.Len64(uint64(pairs)) - 1
	if b >= numHistBuckets {
		b = numHistBuckets - 1
	}
	return b
}

// getStates returns a taskState slice of length n from the pool. States are
// reset per task inside EvalPairBatch, so no zeroing happens here.
func (d *Device) getStates(n int) []taskState {
	if p, _ := d.statePool.Get().(*[]taskState); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]taskState, n)
}

func (d *Device) putStates(s []taskState) {
	d.statePool.Put(&s)
}

// GetVerdicts returns a pooled verdict slice of length n. Callers return it
// with PutVerdicts once the verdicts have been consumed.
func (d *Device) GetVerdicts(n int) []PairVerdict {
	if p, _ := d.verdictPool.Get().(*[]PairVerdict); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]PairVerdict, n)
}

// PutVerdicts returns a slice obtained from GetVerdicts to the pool.
func (d *Device) PutVerdicts(v []PairVerdict) {
	d.verdictPool.Put(&v)
}

// Stream is a double-buffered launch queue on a Device: Submit enqueues a
// batch and returns once fewer than StreamDepth launches are in flight;
// Collect returns completed launches in submission order. One goroutine
// submits and one collects; the two may be (and in the pipeline are)
// different goroutines.
type Stream struct {
	d        *Device
	inflight chan *launch
	abort    atomic.Bool

	// OnBatchDone, when set before the first Submit, receives each
	// launch's evaluation wall time. The callback runs on the launch
	// goroutine and must be cheap and concurrency-safe.
	OnBatchDone func(time.Duration)
}

type launch struct {
	tasks    []PairTask
	verdicts []PairVerdict
	done     chan struct{}
}

// NewStream returns a stream with StreamDepth launch slots.
func (d *Device) NewStream() *Stream {
	return &Stream{d: d, inflight: make(chan *launch, StreamDepth)}
}

// Submit launches tasks asynchronously. It blocks while StreamDepth
// launches are already in flight (submitted but not collected) — this is
// the pipeline's backpressure point. The tasks slice must not be mutated
// until Collect hands it back.
func (s *Stream) Submit(tasks []PairTask) {
	l := &launch{tasks: tasks, verdicts: s.d.GetVerdicts(len(tasks)), done: make(chan struct{})}
	s.inflight <- l
	go func() {
		defer close(l.done)
		t0 := time.Now()
		s.d.EvalPairBatch(l.tasks, l.verdicts, &s.abort)
		if s.OnBatchDone != nil {
			s.OnBatchDone(time.Since(t0))
		}
	}()
}

// CloseSubmit signals that no further batches will be submitted. Collect
// drains the in-flight launches and then reports ok=false.
func (s *Stream) CloseSubmit() { close(s.inflight) }

// Abort asks in-flight kernels to stop early. Launches still complete and
// must still be collected; their verdicts are unspecified.
func (s *Stream) Abort() { s.abort.Store(true) }

// Collect returns the oldest in-flight launch's tasks and verdicts, waiting
// for its kernels to finish. ok is false once the stream is closed and
// drained. The verdict slice should be returned via Device.PutVerdicts
// after processing.
func (s *Stream) Collect() (tasks []PairTask, verdicts []PairVerdict, ok bool) {
	l, open := <-s.inflight
	if !open {
		return nil, nil, false
	}
	<-l.done
	return l.tasks, l.verdicts, true
}
