package gpusim

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestIntersectsMatchesBrute(t *testing.T) {
	dev := New(4, 64)
	defer dev.Close()
	rng := rand.New(rand.NewSource(1))

	for trial := 0; trial < 30; trial++ {
		a := mesh.Icosphere(3, 1).Triangles()
		b := mesh.Icosphere(3, 1).Triangles()
		shift := geom.V(float64(trial)*0.4, 0, 0)
		for i := range b {
			b[i].A = b[i].A.Add(shift)
			b[i].B = b[i].B.Add(shift)
			b[i].C = b[i].C.Add(shift)
		}
		_ = rng
		want := false
	outer:
		for _, x := range a {
			for _, y := range b {
				if geom.TriTriIntersect(x, y) {
					want = true
					break outer
				}
			}
		}
		if got := dev.Intersects(a, b); got != want {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestMinDistMatchesBrute(t *testing.T) {
	dev := New(4, 128)
	defer dev.Close()

	for _, shift := range []float64{8, 12, 20} {
		a := mesh.Icosphere(3, 1).Triangles()
		b := mesh.Icosphere(3, 1).Triangles()
		for i := range b {
			b[i].A.X += shift
			b[i].B.X += shift
			b[i].C.X += shift
		}
		want := math.Inf(1)
		for _, x := range a {
			for _, y := range b {
				if d := geom.TriTriDist2(x, y); d < want {
					want = d
				}
			}
		}
		want = math.Sqrt(want)
		if got := dev.MinDist(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("shift %v: got %v, want %v", shift, got, want)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	dev := New(2, 0)
	defer dev.Close()
	tris := mesh.Icosphere(1, 0).Triangles()
	if dev.Intersects(nil, tris) || dev.Intersects(tris, nil) {
		t.Error("empty input intersects")
	}
	if !math.IsInf(dev.MinDist(nil, tris), 1) {
		t.Error("empty MinDist not +Inf")
	}
}

func TestCounters(t *testing.T) {
	dev := New(2, 32)
	defer dev.Close()
	a := mesh.Icosphere(1, 1).Triangles()
	b := mesh.Icosphere(1, 1).Triangles()
	for i := range b {
		b[i].A.X += 10
		b[i].B.X += 10
		b[i].C.X += 10
	}
	dev.MinDist(a, b)
	if dev.KernelLaunches() == 0 {
		t.Error("no kernel launches recorded")
	}
	if got := dev.PairsEvaluated(); got != int64(len(a)*len(b)) {
		t.Errorf("pairs evaluated = %d, want %d", got, len(a)*len(b))
	}
}

func TestBoundedMinDist(t *testing.T) {
	dev := New(2, 64)
	defer dev.Close()
	a := mesh.Icosphere(2, 1).Triangles()
	b := mesh.Icosphere(2, 1).Triangles()
	for i := range b {
		b[i].A.X += 9
		b[i].B.X += 9
		b[i].C.X += 9
	}
	unbounded := dev.MinDist2Bounded(a, b, math.Inf(1))
	bounded := dev.MinDist2Bounded(a, b, unbounded*4)
	if math.Abs(unbounded-bounded) > 1e-9 {
		t.Errorf("bounded %v != unbounded %v", bounded, unbounded)
	}
	// An upper bound below the true distance is returned unchanged.
	tight := dev.MinDist2Bounded(a, b, unbounded/4)
	if tight > unbounded/4+1e-12 {
		t.Errorf("tight bound grew: %v", tight)
	}
}

func TestConcurrentLaunches(t *testing.T) {
	dev := New(4, 64)
	defer dev.Close()
	a := mesh.Icosphere(2, 2).Triangles()
	b := mesh.Icosphere(2, 2).Triangles()
	for i := range b {
		b[i].A.X += 7
		b[i].B.X += 7
		b[i].C.X += 7
	}
	want := dev.MinDist(a, b)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := dev.MinDist(a, b); math.Abs(got-want) > 1e-9 {
				errs <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errs)
	for range errs {
		t.Fatal("concurrent MinDist mismatch")
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "mismatch" }

func TestCloseIdempotent(t *testing.T) {
	dev := New(1, 16)
	dev.Close()
	dev.Close() // must not panic
}

func BenchmarkDeviceMinDist(b *testing.B) {
	dev := New(0, 0)
	defer dev.Close()
	x := mesh.Icosphere(3, 3).Triangles()
	y := mesh.Icosphere(3, 3).Triangles()
	for i := range y {
		y[i].A.X += 10
		y[i].B.X += 10
		y[i].C.X += 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.MinDist(x, y)
	}
}
