package gpusim

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
)

func randSoA(rng *rand.Rand, n int, cx float64) *TriPair {
	ts := make([]geom.Triangle, n)
	for i := range ts {
		p := func() geom.Vec3 {
			return geom.Vec3{
				X: cx + (rng.Float64()*2-1)*2,
				Y: (rng.Float64()*2 - 1) * 2,
				Z: (rng.Float64()*2 - 1) * 2,
			}
		}
		ts[i] = geom.Triangle{A: p(), B: p(), C: p()}
	}
	return &TriPair{Tris: ts, SoA: geom.SoAFromTriangles(ts)}
}

// TriPair bundles the AoS and SoA views for the reference comparisons.
type TriPair struct {
	Tris []geom.Triangle
	SoA  *geom.TriSoA
}

func TestEvalPairBatchMatchesReference(t *testing.T) {
	d := New(2, 64) // small batch size to force multi-kernel tasks
	defer d.Close()
	rng := rand.New(rand.NewSource(7))

	for round := 0; round < 50; round++ {
		sep := 5.0 * (1 - float64(round)/40.0)
		a := randSoA(rng, 3+rng.Intn(15), 0)
		b := randSoA(rng, 3+rng.Intn(15), sep)

		wantHit := geom.IntersectsBatch(a.SoA, b.SoA)
		wantD2 := geom.MinDist2Batch(a.SoA, b.SoA, math.Inf(1))

		tasks := []PairTask{
			{Kind: PairIntersect, A: a.SoA, B: b.SoA},
			{Kind: PairMinDist, A: a.SoA, B: b.SoA, Upper2: math.Inf(1)},
			{Kind: PairMinDist, A: a.SoA, B: b.SoA, Upper2: wantD2 * 0.5},
		}
		verdicts := make([]PairVerdict, len(tasks))
		d.EvalPairBatch(tasks, verdicts, nil)

		if verdicts[0].Hit != wantHit {
			t.Fatalf("round %d: intersect verdict %v want %v", round, verdicts[0].Hit, wantHit)
		}
		if verdicts[1].D2 != wantD2 {
			t.Fatalf("round %d: exact dist %v want %v", round, verdicts[1].D2, wantD2)
		}
		// Bound tighter than the true minimum: the seed must come back.
		if wantD2 > 0 && verdicts[2].D2 != wantD2*0.5 {
			t.Fatalf("round %d: bounded dist %v want seed %v", round, verdicts[2].D2, wantD2*0.5)
		}
	}
	if d.BatchesDispatched() != 50 {
		t.Fatalf("BatchesDispatched=%d want 50", d.BatchesDispatched())
	}
	buckets := d.PairsPerBatchBuckets()
	if buckets[len(buckets)-1] != 50 {
		t.Fatalf("+Inf bucket %d want 50", buckets[len(buckets)-1])
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatal("histogram buckets not cumulative")
		}
	}
}

func TestEvalPairBatchHostClosures(t *testing.T) {
	d := New(2, 0)
	defer d.Close()
	boom := errors.New("boom")
	tasks := []PairTask{
		{Kind: PairHost, Fn: func() PairVerdict { return PairVerdict{Hit: true} }},
		{Kind: PairHost, Fn: func() PairVerdict { return PairVerdict{D2: 2.5} }},
		{Kind: PairHost, Fn: func() PairVerdict { return PairVerdict{Err: boom} }},
		{Kind: PairHost, Fn: func() PairVerdict { panic("kernel oops") }},
	}
	verdicts := make([]PairVerdict, len(tasks))
	d.EvalPairBatch(tasks, verdicts, nil)
	if !verdicts[0].Hit {
		t.Fatal("host hit verdict lost")
	}
	if verdicts[1].D2 != 2.5 {
		t.Fatalf("host dist verdict %v want 2.5", verdicts[1].D2)
	}
	if !errors.Is(verdicts[2].Err, boom) {
		t.Fatalf("host error verdict %v want boom", verdicts[2].Err)
	}
	if verdicts[3].Err == nil {
		t.Fatal("kernel panic not captured into verdict")
	}
}

func TestStreamOrderAndBackpressure(t *testing.T) {
	d := New(1, 0)
	defer d.Close()
	s := d.NewStream()

	// Submit more launches than StreamDepth from a second goroutine; the
	// main goroutine collects in order. Tags prove FIFO delivery.
	const n = StreamDepth * 3
	go func() {
		for i := 0; i < n; i++ {
			s.Submit([]PairTask{{Kind: PairHost, Tag: i, Fn: func() PairVerdict { return PairVerdict{Hit: true} }}})
		}
		s.CloseSubmit()
	}()
	for i := 0; i < n; i++ {
		tasks, verdicts, ok := s.Collect()
		if !ok {
			t.Fatalf("stream drained after %d launches, want %d", i, n)
		}
		if got := tasks[0].Tag.(int); got != i {
			t.Fatalf("launch %d collected out of order (tag %d)", i, got)
		}
		if !verdicts[0].Hit {
			t.Fatal("verdict lost in stream")
		}
		d.PutVerdicts(verdicts)
	}
	if _, _, ok := s.Collect(); ok {
		t.Fatal("Collect reported a launch after drain")
	}
}

func TestStreamAbortStopsKernels(t *testing.T) {
	d := New(2, 8)
	defer d.Close()
	s := d.NewStream()

	var ran atomic.Int64
	// A wide SoA task: many kernels. Abort before submission; every kernel
	// must see the flag and return without evaluating.
	rng := rand.New(rand.NewSource(9))
	a := randSoA(rng, 40, 0)
	b := randSoA(rng, 40, 100)
	s.Abort()
	before := d.PairsEvaluated()
	s.Submit([]PairTask{
		{Kind: PairMinDist, A: a.SoA, B: b.SoA, Upper2: math.Inf(1)},
		{Kind: PairHost, Fn: func() PairVerdict { ran.Add(1); return PairVerdict{} }},
	})
	s.CloseSubmit()
	for {
		_, verdicts, ok := s.Collect()
		if !ok {
			break
		}
		d.PutVerdicts(verdicts)
	}
	if got := d.PairsEvaluated() - before; got != 0 {
		t.Fatalf("aborted stream still evaluated %d pairs", got)
	}
	if ran.Load() != 0 {
		t.Fatal("aborted stream still ran host closure")
	}
}
