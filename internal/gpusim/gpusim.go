// Package gpusim simulates the GPU-based parallelization of the paper's
// §5.1–5.2. The original system packs face pairs into a computation buffer
// on the GPU and evaluates them with one kernel per fixed-size task; this
// package reproduces that execution model with a worker pool standing in
// for the streaming multiprocessors: geometric computations are grouped
// into tasks of a fixed number of face-pair evaluations and completed by
// whichever worker is free.
//
// The simulation exercises the same code path as the real device (pack →
// dispatch kernels → gather results, with early termination for
// intersection kernels) and preserves the relative behaviour the paper
// evaluates: batch evaluation outperforms a single-threaded pair loop on
// geometry-dominated queries. Absolute speedups naturally differ from the
// 4,352-core RTX 2080 Ti used in the paper; the substitution is recorded in
// DESIGN.md.
package gpusim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// DefaultBatchSize is the number of face-pair evaluations per kernel task.
const DefaultBatchSize = 4096

// Device is a simulated GPU: a pool of kernel workers consuming batched
// face-pair tasks. Create one with New and release it with Close. A Device
// is safe for concurrent use; concurrent launches share the worker pool the
// same way CUDA streams share the device.
type Device struct {
	workers   int
	batchSize int
	tasks     chan func()
	wg        sync.WaitGroup
	closed    atomic.Bool

	// KernelLaunches counts dispatched tasks, for the execution statistics
	// in the benchmark harness.
	kernelLaunches atomic.Int64
	pairsEvaluated atomic.Int64

	// Batch-executor state (see batch.go): dispatch accounting plus pools
	// for the per-launch scratch so steady-state batches allocate nothing.
	batch       batchStats
	statePool   sync.Pool
	verdictPool sync.Pool
}

// New returns a device with the given number of kernel workers (defaults to
// GOMAXPROCS when workers ≤ 0) and batch size (DefaultBatchSize when ≤ 0).
func New(workers, batchSize int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	d := &Device{
		workers:   workers,
		batchSize: batchSize,
		tasks:     make(chan func(), workers*4),
	}
	for i := 0; i < workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for task := range d.tasks {
				task()
			}
		}()
	}
	return d
}

// Close shuts the worker pool down. Pending tasks complete first.
func (d *Device) Close() {
	if d.closed.CompareAndSwap(false, true) {
		close(d.tasks)
		d.wg.Wait()
	}
}

// Workers returns the worker count.
func (d *Device) Workers() int { return d.workers }

// KernelLaunches returns the number of kernel tasks dispatched so far.
func (d *Device) KernelLaunches() int64 { return d.kernelLaunches.Load() }

// PairsEvaluated returns the number of face pairs evaluated so far.
func (d *Device) PairsEvaluated() int64 { return d.pairsEvaluated.Load() }

// Intersects evaluates the full cross product of face pairs between a and b
// on the device and reports whether any pair intersects. Kernels terminate
// early once a hit is found, mirroring the paper's intersection operator.
func (d *Device) Intersects(a, b []geom.Triangle) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	total := len(a) * len(b)
	var hit atomic.Bool
	var wg sync.WaitGroup

	// Each task scans a contiguous range of the pair index space.
	pairsPerTask := d.batchSize
	for start := 0; start < total; start += pairsPerTask {
		if hit.Load() {
			break
		}
		start := start
		end := start + pairsPerTask
		if end > total {
			end = total
		}
		wg.Add(1)
		d.kernelLaunches.Add(1)
		d.tasks <- func() {
			defer wg.Done()
			if hit.Load() {
				return
			}
			n := 0
			for idx := start; idx < end; idx++ {
				i, j := idx/len(b), idx%len(b)
				n++
				if geom.TriTriIntersect(a[i], b[j]) {
					hit.Store(true)
					break
				}
				if n%512 == 0 && hit.Load() {
					break
				}
			}
			d.pairsEvaluated.Add(int64(n))
		}
	}
	wg.Wait()
	return hit.Load()
}

// MinDist evaluates the full cross product of face pairs on the device and
// returns the minimum distance (zero when the sets intersect).
func (d *Device) MinDist(a, b []geom.Triangle) float64 {
	d2 := d.MinDist2Bounded(a, b, math.Inf(1))
	return math.Sqrt(d2)
}

// MinDist2Bounded returns the squared minimum pair distance, with kernels
// pruning pairs whose boxes cannot beat the running best (seeded by upper²,
// pass +Inf when unknown).
func (d *Device) MinDist2Bounded(a, b []geom.Triangle, upper2 float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	total := len(a) * len(b)
	best := newAtomicFloat(upper2)
	var wg sync.WaitGroup

	for start := 0; start < total; start += d.batchSize {
		start := start
		end := start + d.batchSize
		if end > total {
			end = total
		}
		wg.Add(1)
		d.kernelLaunches.Add(1)
		d.tasks <- func() {
			defer wg.Done()
			local := best.load()
			n := 0
			for idx := start; idx < end; idx++ {
				i, j := idx/len(b), idx%len(b)
				n++
				if d2 := geom.TriTriDist2(a[i], b[j]); d2 < local {
					local = d2
				}
			}
			d.pairsEvaluated.Add(int64(n))
			best.min(local)
		}
	}
	wg.Wait()
	return best.load()
}

// atomicFloat is a CAS-min accumulator for non-negative float64 values.
type atomicFloat struct {
	bits atomic.Uint64
}

func newAtomicFloat(v float64) *atomicFloat {
	a := &atomicFloat{}
	a.bits.Store(math.Float64bits(v))
	return a
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) min(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
