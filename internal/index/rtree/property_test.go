package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// Property: for random box sets and random query boxes, both construction
// methods return exactly the brute-force hit set.
func TestPropertyBothBuildsMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(120)
		es := randomEntries(rng, n, 40, 1+rng.Float64()*8)
		bulk := BulkLoad(es)
		ins := insertAll(es)

		for q := 0; q < 8; q++ {
			p := geom.V(rng.Float64()*50-5, rng.Float64()*50-5, rng.Float64()*50-5)
			query := geom.Box3{Min: p, Max: p.Add(geom.V(rng.Float64()*15, rng.Float64()*15, rng.Float64()*15))}

			want := map[int64]bool{}
			for _, e := range es {
				if e.Box.Intersects(query) {
					want[e.ID] = true
				}
			}
			for name, tr := range map[string]*Tree{"bulk": bulk, "insert": ins} {
				got := map[int64]bool{}
				tr.SearchIntersect(query, func(e Entry) bool {
					got[e.ID] = true
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("trial %d %s: %d hits, want %d", trial, name, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("trial %d %s: missing %d", trial, name, id)
					}
				}
			}
		}
	}
}

// Property: the within traversal is exact — Definite ∪ Candidates equals
// the MINDIST-filtered set and Definite is always sound.
func TestPropertyWithinExact(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(150)
		es := randomEntries(rng, n, 60, 2)
		tr := BulkLoad(es)
		p := geom.V(rng.Float64()*60, rng.Float64()*60, rng.Float64()*60)
		q := geom.Box3{Min: p, Max: p.Add(geom.V(3, 3, 3))}
		d := rng.Float64() * 25

		res := tr.SearchWithin(q, d)
		got := map[int64]bool{}
		for _, e := range res.Definite {
			if q.MaxDist(e.Box) > d+1e-9 {
				t.Fatalf("unsound definite entry")
			}
			got[e.ID] = true
		}
		for _, e := range res.Candidates {
			got[e.ID] = true
		}
		for _, e := range es {
			want := e.Box.MinDist(q) <= d
			if want != got[e.ID] {
				t.Fatalf("trial %d: entry %d present=%v want=%v", trial, e.ID, got[e.ID], want)
			}
		}
	}
}

// Property: inserting entries one by one never loses any (tree size and
// full enumeration agree with the input).
func TestPropertyInsertPreservesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		es := randomEntries(rng, n, 100, 3)
		tr := insertAll(es)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		seen := map[int64]bool{}
		tr.All(func(e Entry) bool { seen[e.ID] = true; return true })
		if len(seen) != n {
			t.Fatalf("enumerated %d of %d", len(seen), n)
		}
	}
}
