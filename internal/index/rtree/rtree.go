// Package rtree implements a 3D R-tree over object minimal bounding boxes —
// the global spatial index of the paper's filtering step. It supports STR
// bulk loading, quadratic-split insertion, box-intersection search, the
// within-distance traversal of §4.2 (MINDIST/MAXDIST pruning with early
// whole-subtree acceptance), and the nearest-neighbor candidate generation
// of §4.3 (MINMAXDIST-style pruning that returns every object whose distance
// range overlaps the best candidate's).
package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

const (
	// MaxEntries is the node fan-out M.
	MaxEntries = 16
	// MinEntries is the minimum node occupancy m after splits.
	MinEntries = 6
)

// Entry is one indexed object: its MBB and an opaque identifier.
type Entry struct {
	Box geom.Box3
	ID  int64
}

type node struct {
	box      geom.Box3
	leaf     bool
	entries  []Entry // valid when leaf
	children []*node // valid when !leaf
}

func (n *node) recomputeBox() {
	b := geom.EmptyBox()
	if n.leaf {
		for _, e := range n.entries {
			b = b.Union(e.Box)
		}
	} else {
		for _, c := range n.children {
			b = b.Union(c.box)
		}
	}
	n.box = b
}

// Tree is a 3D R-tree. The zero value is an empty usable tree. It is safe
// for concurrent readers once loading/insertion is complete.
type Tree struct {
	root *node
	size int
}

// New returns an empty R-tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Bounds returns the box covering all entries (empty box when empty).
func (t *Tree) Bounds() geom.Box3 {
	if t.root == nil {
		return geom.EmptyBox()
	}
	return t.root.box
}

// BulkLoad builds a tree from the given entries using Sort-Tile-Recursive
// packing, which yields well-shaped nodes for static datasets such as the
// paper's per-tissue object sets. Any existing contents are replaced.
func BulkLoad(entries []Entry) *Tree {
	t := &Tree{size: len(entries)}
	if len(entries) == 0 {
		t.root = &node{leaf: true}
		return t
	}
	es := append([]Entry(nil), entries...)
	leaves := strPackEntries(es)
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level)
	}
	t.root = level[0]
	return t
}

// strPackEntries tiles entries into leaf nodes of MaxEntries each.
func strPackEntries(es []Entry) []*node {
	n := len(es)
	leafCount := (n + MaxEntries - 1) / MaxEntries
	// Number of vertical slabs along X, then tiles along Y, runs along Z.
	sx := int(math.Ceil(math.Cbrt(float64(leafCount))))
	sy := sx

	sort.Slice(es, func(i, j int) bool { return es[i].Box.Center().X < es[j].Box.Center().X })
	perSlabX := (n + sx - 1) / sx
	var leaves []*node
	for x := 0; x < n; x += perSlabX {
		xe := es[x:minInt(x+perSlabX, n)]
		sort.Slice(xe, func(i, j int) bool { return xe[i].Box.Center().Y < xe[j].Box.Center().Y })
		perSlabY := (len(xe) + sy - 1) / sy
		for y := 0; y < len(xe); y += perSlabY {
			ye := xe[y:minInt(y+perSlabY, len(xe))]
			sort.Slice(ye, func(i, j int) bool { return ye[i].Box.Center().Z < ye[j].Box.Center().Z })
			for z := 0; z < len(ye); z += MaxEntries {
				ze := ye[z:minInt(z+MaxEntries, len(ye))]
				leaf := &node{leaf: true, entries: append([]Entry(nil), ze...)}
				leaf.recomputeBox()
				leaves = append(leaves, leaf)
			}
		}
	}
	return leaves
}

// strPackNodes tiles a level of nodes into parents, reusing the same STR
// scheme on node centers.
func strPackNodes(nodes []*node) []*node {
	n := len(nodes)
	parentCount := (n + MaxEntries - 1) / MaxEntries
	sx := int(math.Ceil(math.Cbrt(float64(parentCount))))
	sy := sx

	sort.Slice(nodes, func(i, j int) bool { return nodes[i].box.Center().X < nodes[j].box.Center().X })
	perSlabX := (n + sx - 1) / sx
	var parents []*node
	for x := 0; x < n; x += perSlabX {
		xe := nodes[x:minInt(x+perSlabX, n)]
		sort.Slice(xe, func(i, j int) bool { return xe[i].box.Center().Y < xe[j].box.Center().Y })
		perSlabY := (len(xe) + sy - 1) / sy
		for y := 0; y < len(xe); y += perSlabY {
			ye := xe[y:minInt(y+perSlabY, len(xe))]
			sort.Slice(ye, func(i, j int) bool { return ye[i].box.Center().Z < ye[j].box.Center().Z })
			for z := 0; z < len(ye); z += MaxEntries {
				ze := ye[z:minInt(z+MaxEntries, len(ye))]
				p := &node{children: append([]*node(nil), ze...)}
				p.recomputeBox()
				parents = append(parents, p)
			}
		}
	}
	return parents
}

// Insert adds an entry using the classic choose-leaf + quadratic-split
// algorithm.
func (t *Tree) Insert(e Entry) {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	split := insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &node{children: []*node{old, split}}
		t.root.recomputeBox()
	}
	t.size++
}

// insert descends to the best leaf and returns a new sibling when the node
// splits.
func insert(n *node, e Entry) *node {
	n.box = n.box.Union(e.Box)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > MaxEntries {
			return splitLeaf(n)
		}
		return nil
	}
	best := chooseSubtree(n.children, e.Box)
	split := insert(n.children[best], e)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > MaxEntries {
			return splitInner(n)
		}
	}
	return nil
}

// chooseSubtree picks the child needing the least volume enlargement
// (ties broken by smaller volume).
func chooseSubtree(children []*node, b geom.Box3) int {
	best := 0
	bestEnlarge := math.Inf(1)
	bestVol := math.Inf(1)
	for i, c := range children {
		vol := c.box.Volume()
		enlarge := c.box.Union(b).Volume() - vol
		if enlarge < bestEnlarge || (enlarge == bestEnlarge && vol < bestVol) {
			best, bestEnlarge, bestVol = i, enlarge, vol
		}
	}
	return best
}

// splitLeaf splits an overfull leaf with the quadratic method and returns
// the new sibling.
func splitLeaf(n *node) *node {
	boxes := make([]geom.Box3, len(n.entries))
	for i, e := range n.entries {
		boxes[i] = e.Box
	}
	g1, g2 := quadraticSplit(boxes)
	e1 := make([]Entry, 0, len(g1))
	e2 := make([]Entry, 0, len(g2))
	for _, i := range g1 {
		e1 = append(e1, n.entries[i])
	}
	for _, i := range g2 {
		e2 = append(e2, n.entries[i])
	}
	sib := &node{leaf: true, entries: e2}
	sib.recomputeBox()
	n.entries = e1
	n.recomputeBox()
	return sib
}

func splitInner(n *node) *node {
	boxes := make([]geom.Box3, len(n.children))
	for i, c := range n.children {
		boxes[i] = c.box
	}
	g1, g2 := quadraticSplit(boxes)
	c1 := make([]*node, 0, len(g1))
	c2 := make([]*node, 0, len(g2))
	for _, i := range g1 {
		c1 = append(c1, n.children[i])
	}
	for _, i := range g2 {
		c2 = append(c2, n.children[i])
	}
	sib := &node{children: c2}
	sib.recomputeBox()
	n.children = c1
	n.recomputeBox()
	return sib
}

// quadraticSplit partitions box indices into two groups per Guttman's
// quadratic algorithm, respecting MinEntries.
func quadraticSplit(boxes []geom.Box3) (g1, g2 []int) {
	n := len(boxes)
	// Pick seeds: the pair wasting the most volume if grouped.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := boxes[i].Union(boxes[j]).Volume() - boxes[i].Volume() - boxes[j].Volume()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	g1 = []int{s1}
	g2 = []int{s2}
	b1, b2 := boxes[s1], boxes[s2]
	assigned := make([]bool, n)
	assigned[s1], assigned[s2] = true, true
	remaining := n - 2

	for remaining > 0 {
		// Force-assign when a group must take all the rest.
		if len(g1)+remaining == MinEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g1 = append(g1, i)
					b1 = b1.Union(boxes[i])
					assigned[i] = true
				}
			}
			break
		}
		if len(g2)+remaining == MinEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g2 = append(g2, i)
					b2 = b2.Union(boxes[i])
					assigned[i] = true
				}
			}
			break
		}
		// Pick the unassigned box with the greatest preference difference.
		pick, pickDiff, pickTo1 := -1, -1.0, true
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			d1 := b1.Union(boxes[i]).Volume() - b1.Volume()
			d2 := b2.Union(boxes[i]).Volume() - b2.Volume()
			diff := math.Abs(d1 - d2)
			if diff > pickDiff {
				pick, pickDiff, pickTo1 = i, diff, d1 < d2
			}
		}
		if pickTo1 {
			g1 = append(g1, pick)
			b1 = b1.Union(boxes[pick])
		} else {
			g2 = append(g2, pick)
			b2 = b2.Union(boxes[pick])
		}
		assigned[pick] = true
		remaining--
	}
	return g1, g2
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
