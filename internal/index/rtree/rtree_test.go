package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randomEntries(rng *rand.Rand, n int, space, size float64) []Entry {
	es := make([]Entry, n)
	for i := range es {
		p := geom.V(rng.Float64()*space, rng.Float64()*space, rng.Float64()*space)
		q := p.Add(geom.V(rng.Float64()*size, rng.Float64()*size, rng.Float64()*size))
		es[i] = Entry{Box: geom.Box3{Min: p, Max: q}, ID: int64(i)}
	}
	return es
}

func idsOf(es []Entry) []int64 {
	ids := make([]int64, len(es))
	for i, e := range es {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	hits := 0
	tr.SearchIntersect(geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(1, 1, 1)}, func(Entry) bool {
		hits++
		return true
	})
	if hits != 0 {
		t.Error("hits in empty tree")
	}
	if got := tr.NNCandidates(geom.BoxOf(geom.V(0, 0, 0)), 1, nil); got != nil {
		t.Error("NN candidates in empty tree")
	}
	res := tr.SearchWithin(geom.BoxOf(geom.V(0, 0, 0)), 5)
	if len(res.Definite)+len(res.Candidates) != 0 {
		t.Error("within results in empty tree")
	}
	bl := BulkLoad(nil)
	if bl.Len() != 0 {
		t.Error("BulkLoad(nil) not empty")
	}
}

func TestSearchIntersectMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	es := randomEntries(rng, 500, 100, 5)

	for name, tr := range map[string]*Tree{"bulk": BulkLoad(es), "insert": insertAll(es)} {
		if tr.Len() != len(es) {
			t.Fatalf("%s: Len = %d", name, tr.Len())
		}
		for trial := 0; trial < 50; trial++ {
			p := geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
			q := geom.Box3{Min: p, Max: p.Add(geom.V(10, 10, 10))}

			var got []Entry
			tr.SearchIntersect(q, func(e Entry) bool {
				got = append(got, e)
				return true
			})
			var want []Entry
			for _, e := range es {
				if e.Box.Intersects(q) {
					want = append(want, e)
				}
			}
			if !sameIDs(idsOf(got), idsOf(want)) {
				t.Fatalf("%s trial %d: got %d hits, want %d", name, trial, len(got), len(want))
			}
		}
	}
}

func insertAll(es []Entry) *Tree {
	tr := New()
	for _, e := range es {
		tr.Insert(e)
	}
	return tr
}

func TestSearchIntersectEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := BulkLoad(randomEntries(rng, 200, 10, 5))
	count := 0
	tr.SearchIntersect(tr.Bounds(), func(Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
}

func TestSearchWithinCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	es := randomEntries(rng, 400, 100, 3)
	tr := BulkLoad(es)

	for trial := 0; trial < 40; trial++ {
		p := geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		q := geom.Box3{Min: p, Max: p.Add(geom.V(4, 4, 4))}
		d := rng.Float64() * 20

		res := tr.SearchWithin(q, d)

		// Soundness: definite entries must have MAXDIST ≤ d; candidates
		// must have MINDIST ≤ d.
		for _, e := range res.Definite {
			if q.MaxDist(e.Box) > d+1e-9 {
				t.Fatalf("definite entry with MAXDIST %v > %v", q.MaxDist(e.Box), d)
			}
		}
		for _, e := range res.Candidates {
			if e.Box.MinDist(q) > d+1e-9 {
				t.Fatalf("candidate with MINDIST > d")
			}
		}
		// Completeness: every entry with MINDIST ≤ d appears somewhere.
		want := 0
		for _, e := range es {
			if e.Box.MinDist(q) <= d {
				want++
			}
		}
		if got := len(res.Definite) + len(res.Candidates); got != want {
			t.Fatalf("trial %d: got %d entries, want %d", trial, got, want)
		}
	}
}

func TestNNCandidatesContainTrueNN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	es := randomEntries(rng, 300, 100, 2)
	tr := BulkLoad(es)

	for trial := 0; trial < 60; trial++ {
		p := geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		q := geom.BoxOf(p, p.Add(geom.V(1, 1, 1)))

		cands := tr.NNCandidates(q, 1, nil)
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		// The entry with the minimum MINDIST (a fortiori the true nearest
		// object whatever its geometry) must be among the candidates,
		// because its range overlaps every other range's upper bound.
		best := math.Inf(1)
		bestID := int64(-1)
		for _, e := range es {
			if d := e.Box.MinDist(q); d < best {
				best, bestID = d, e.ID
			}
		}
		found := false
		for _, c := range cands {
			if c.ID == bestID {
				found = true
			}
			if c.MinDist != c.Box.MinDist(q) {
				t.Fatal("candidate MinDist inconsistent")
			}
			if c.MaxDist < c.MinDist {
				t.Fatal("candidate MaxDist < MinDist")
			}
		}
		if !found {
			t.Fatalf("closest-MBB entry %d not among %d candidates", bestID, len(cands))
		}
		// Every non-candidate must be provably farther: its MINDIST must
		// exceed some candidate's MAXDIST.
		minmax := math.Inf(1)
		for _, c := range cands {
			if c.MaxDist < minmax {
				minmax = c.MaxDist
			}
		}
		inCands := map[int64]bool{}
		for _, c := range cands {
			inCands[c.ID] = true
		}
		for _, e := range es {
			if !inCands[e.ID] && e.Box.MinDist(q) <= minmax-1e-9 {
				t.Fatalf("entry %d excluded but MINDIST %v <= MINMAXDIST %v",
					e.ID, e.Box.MinDist(q), minmax)
			}
		}
	}
}

func TestNNCandidatesSkip(t *testing.T) {
	es := []Entry{
		{Box: geom.BoxOf(geom.V(0, 0, 0), geom.V(1, 1, 1)), ID: 1},
		{Box: geom.BoxOf(geom.V(5, 0, 0), geom.V(6, 1, 1)), ID: 2},
	}
	tr := BulkLoad(es)
	q := es[0].Box
	cands := tr.NNCandidates(q, 1, func(e Entry) bool { return e.ID == 1 })
	if len(cands) != 1 || cands[0].ID != 2 {
		t.Fatalf("skip failed: %+v", cands)
	}
}

func TestNNCandidatesK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	es := randomEntries(rng, 200, 50, 1)
	tr := BulkLoad(es)
	q := geom.BoxOf(geom.V(25, 25, 25))
	for _, k := range []int{1, 3, 10} {
		cands := tr.NNCandidates(q, k, nil)
		if len(cands) < k {
			t.Errorf("k=%d: only %d candidates", k, len(cands))
		}
	}
	if got := tr.NNCandidates(q, 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestInsertSplitsKeepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := New()
	es := randomEntries(rng, 1000, 100, 2)
	for _, e := range es {
		tr.Insert(e)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Every entry findable by its own box.
	for _, e := range es[:50] {
		found := false
		tr.SearchIntersect(e.Box, func(got Entry) bool {
			if got.ID == e.ID {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("entry %d not found after insert", e.ID)
		}
	}
	// Structural invariants: node boxes contain their contents.
	checkNode(t, tr.root)
	if tr.Height() < 2 {
		t.Errorf("height = %d for 1000 entries", tr.Height())
	}
}

func checkNode(t *testing.T, n *node) {
	t.Helper()
	if n.leaf {
		for _, e := range n.entries {
			if !n.box.Contains(e.Box) {
				t.Fatal("leaf box does not contain entry")
			}
		}
		return
	}
	for _, c := range n.children {
		if !n.box.Contains(c.box) {
			t.Fatal("inner box does not contain child")
		}
		checkNode(t, c)
	}
}

func TestAllVisitsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := randomEntries(rng, 321, 50, 1)
	tr := BulkLoad(es)
	seen := map[int64]bool{}
	tr.All(func(e Entry) bool {
		seen[e.ID] = true
		return true
	})
	if len(seen) != len(es) {
		t.Errorf("All visited %d of %d", len(seen), len(es))
	}
	// Early stop.
	count := 0
	tr.All(func(Entry) bool { count++; return false })
	if count != 1 {
		t.Errorf("All early-stop visited %d", count)
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	es := randomEntries(rng, 10000, 1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(es)
	}
}

func BenchmarkSearchIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := BulkLoad(randomEntries(rng, 10000, 1000, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.V(float64(i%990), float64((i*7)%990), float64((i*13)%990))
		q := geom.Box3{Min: p, Max: p.Add(geom.V(10, 10, 10))}
		tr.SearchIntersect(q, func(Entry) bool { return true })
	}
}

func BenchmarkNNCandidates(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := BulkLoad(randomEntries(rng, 10000, 1000, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.V(float64(i%990), float64((i*7)%990), float64((i*13)%990))
		tr.NNCandidates(geom.BoxOf(p), 1, nil)
	}
}

func TestNNCandidatesDuplicateIDs(t *testing.T) {
	// Sub-object indexing: one near object contributes several entries. The
	// k-th-MAXDIST threshold must range over distinct IDs, or the second
	// nearest OBJECT would be pruned by the near object's duplicates.
	es := []Entry{
		// Object 1: two tight sub-boxes right next to the query.
		{Box: geom.BoxOf(geom.V(1, 0, 0), geom.V(2, 1, 1)), ID: 1},
		{Box: geom.BoxOf(geom.V(2, 0, 0), geom.V(3, 1, 1)), ID: 1},
		// Object 2: farther away.
		{Box: geom.BoxOf(geom.V(30, 0, 0), geom.V(31, 1, 1)), ID: 2},
	}
	tr := BulkLoad(es)
	q := geom.BoxOf(geom.V(0, 0, 0), geom.V(0.5, 0.5, 0.5))

	cands := tr.NNCandidates(q, 2, nil)
	ids := map[int64]bool{}
	for _, c := range cands {
		ids[c.ID] = true
	}
	if !ids[1] || !ids[2] {
		t.Fatalf("k=2 candidates must cover both objects, got %v", cands)
	}
}
