package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// SearchIntersect visits every entry whose MBB intersects q. The visitor
// returns false to stop early.
func (t *Tree) SearchIntersect(q geom.Box3, visit func(Entry) bool) {
	if t.root == nil {
		return
	}
	searchIntersect(t.root, q, visit)
}

func searchIntersect(n *node, q geom.Box3, visit func(Entry) bool) bool {
	if !n.box.Intersects(q) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Box.Intersects(q) {
				if !visit(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchIntersect(c, q, visit) {
			return false
		}
	}
	return true
}

// WithinResult partitions the entries reachable within distance d of the
// query box, per the traversal of §4.2: Definite entries are guaranteed to
// be within d of the query object (the MAXDIST of the pair of MBBs is ≤ d),
// while Candidates need refinement with decoded geometry.
type WithinResult struct {
	Definite   []Entry
	Candidates []Entry
}

// SearchWithin runs the within-distance traversal: subtrees whose MINDIST
// to q exceeds d are pruned; subtrees whose MAXDIST is ≤ d are accepted
// wholesale; leaf entries in between become candidates.
func (t *Tree) SearchWithin(q geom.Box3, d float64) WithinResult {
	var res WithinResult
	if t.root == nil {
		return res
	}
	searchWithin(t.root, q, d, &res)
	return res
}

func searchWithin(n *node, q geom.Box3, d float64, res *WithinResult) {
	if n.box.MinDist(q) > d {
		return
	}
	if q.MaxDist(n.box) <= d {
		collectAll(n, &res.Definite)
		return
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Box.MinDist(q) > d {
				continue
			}
			if q.MaxDist(e.Box) <= d {
				res.Definite = append(res.Definite, e)
			} else {
				res.Candidates = append(res.Candidates, e)
			}
		}
		return
	}
	for _, c := range n.children {
		searchWithin(c, q, d, res)
	}
}

func collectAll(n *node, out *[]Entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectAll(c, out)
	}
}

// Candidate is a nearest-neighbor candidate with its distance range
// r = [MINDIST, MAXDIST] to the query box.
type Candidate struct {
	Entry
	MinDist float64
	MaxDist float64
}

// NNCandidates returns every entry whose distance range to q overlaps the
// best range seen — the candidate set of §4.3 that progressive refinement
// then narrows with decoded faces. k sets how many nearest neighbors the
// caller ultimately wants (k=1 for plain NN); at least k candidates are
// always retained. An optional skip callback excludes entries (e.g. the
// query object itself when joining a dataset with itself).
func (t *Tree) NNCandidates(q geom.Box3, k int, skip func(Entry) bool) []Candidate {
	if t.root == nil || t.size == 0 || k <= 0 {
		return nil
	}

	// Best-first traversal over nodes ordered by MINDIST, maintaining the
	// k-th smallest candidate MAXDIST as the pruning threshold (the paper's
	// MINMAXDIST variable for k = 1). With sub-object entries one object
	// can appear several times, and all its entries bound the SAME object
	// distance — so the threshold must range over distinct IDs (taking each
	// ID's tightest MAXDIST), or a duplicated near object would wrongly
	// evict the true k-th nearest.
	var cands []Candidate
	threshold := math.Inf(1)
	bestMax := map[int64]float64{}

	kth := func() float64 {
		if len(bestMax) < k {
			return math.Inf(1)
		}
		// k is tiny (1 for NN joins); a linear pass is cheaper than a heap.
		maxd := make([]float64, 0, len(bestMax))
		for _, d := range bestMax {
			maxd = append(maxd, d)
		}
		sort.Float64s(maxd)
		return maxd[k-1]
	}

	var walk func(n *node)
	walk = func(n *node) {
		if n.box.MinDist(q) > threshold {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				if skip != nil && skip(e) {
					continue
				}
				mind := e.Box.MinDist(q)
				if mind > threshold {
					continue
				}
				maxd := q.MaxDist(e.Box)
				cands = append(cands, Candidate{Entry: e, MinDist: mind, MaxDist: maxd})
				if prev, ok := bestMax[e.ID]; !ok || maxd < prev {
					bestMax[e.ID] = maxd
				}
				threshold = kth()
			}
			return
		}
		// Visit children in MINDIST order for faster threshold tightening.
		order := make([]int, len(n.children))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return n.children[order[a]].box.MinDist(q) < n.children[order[b]].box.MinDist(q)
		})
		for _, i := range order {
			walk(n.children[i])
		}
	}
	walk(t.root)

	// Final prune with the settled threshold.
	out := cands[:0]
	for _, c := range cands {
		if c.MinDist <= threshold {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MinDist < out[j].MinDist })
	return out
}

// All visits every entry in the tree.
func (t *Tree) All(visit func(Entry) bool) {
	if t.root == nil {
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.leaf {
			for _, e := range n.entries {
				if !visit(e) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Height returns the height of the tree (1 for a single leaf root).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}
