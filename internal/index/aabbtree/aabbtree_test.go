package aabbtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func randomTris(rng *rand.Rand, n int, space, size float64) []geom.Triangle {
	tris := make([]geom.Triangle, n)
	for i := range tris {
		base := geom.V(rng.Float64()*space, rng.Float64()*space, rng.Float64()*space)
		r := func() geom.Vec3 {
			return base.Add(geom.V(rng.Float64()*size, rng.Float64()*size, rng.Float64()*size))
		}
		tris[i] = geom.Tri(r(), r(), r())
	}
	return tris
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.NumTriangles() != 0 {
		t.Error("NumTriangles != 0")
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("Bounds not empty")
	}
	if tr.IntersectsTriangle(geom.Tri(geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0))) {
		t.Error("intersection in empty tree")
	}
	if !math.IsInf(tr.DistToTree(Build(nil)), 1) {
		t.Error("distance between empty trees should be +Inf")
	}
	if tr.ContainsPoint(geom.V(0, 0, 0)) {
		t.Error("point inside empty tree")
	}
}

func TestIntersectsTriangleMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tris := randomTris(rng, 300, 20, 2)
	tr := Build(tris)
	if tr.NumTriangles() != 300 {
		t.Fatalf("NumTriangles = %d", tr.NumTriangles())
	}

	for trial := 0; trial < 200; trial++ {
		base := geom.V(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20)
		q := geom.Tri(base,
			base.Add(geom.V(rng.Float64()*3, rng.Float64()*3, rng.Float64()*3)),
			base.Add(geom.V(rng.Float64()*3, rng.Float64()*3, rng.Float64()*3)))

		want := false
		for _, x := range tris {
			if geom.TriTriIntersect(x, q) {
				want = true
				break
			}
		}
		if got := tr.IntersectsTriangle(q); got != want {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestIntersectsTreeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		a := randomTris(rng, 60, 10, 2)
		// Shift the second set progressively further away so both outcomes occur.
		shift := float64(trial) * 0.5
		b := randomTris(rng, 60, 10, 2)
		for i := range b {
			b[i].A.X += shift
			b[i].B.X += shift
			b[i].C.X += shift
		}
		want := false
	outer:
		for _, x := range a {
			for _, y := range b {
				if geom.TriTriIntersect(x, y) {
					want = true
					break outer
				}
			}
		}
		ta, tb := Build(a), Build(b)
		if got := ta.IntersectsTree(tb); got != want {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
		if got := tb.IntersectsTree(ta); got != want {
			t.Fatalf("trial %d (sym): got %v, want %v", trial, got, want)
		}
	}
}

func TestDistToTreeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		a := randomTris(rng, 50, 10, 2)
		b := randomTris(rng, 50, 10, 2)
		shift := 5 + float64(trial)
		for i := range b {
			b[i].A.X += shift
			b[i].B.X += shift
			b[i].C.X += shift
		}
		want := math.Inf(1)
		for _, x := range a {
			for _, y := range b {
				if d := geom.TriTriDist2(x, y); d < want {
					want = d
				}
			}
		}
		want = math.Sqrt(want)
		got := Build(a).DistToTree(Build(b))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestDistToTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tris := randomTris(rng, 100, 10, 2)
	tr := Build(tris)
	for trial := 0; trial < 50; trial++ {
		base := geom.V(rng.Float64()*30-10, rng.Float64()*30-10, rng.Float64()*30-10)
		q := geom.Tri(base, base.Add(geom.V(1, 0, 0)), base.Add(geom.V(0, 1, 0)))
		want := math.Inf(1)
		for _, x := range tris {
			if d := geom.TriTriDist2(x, q); d < want {
				want = d
			}
		}
		want = math.Sqrt(want)
		got := tr.DistToTriangle(q, math.Inf(1))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("got %v, want %v", got, want)
		}
		// With a tight upper bound the result is still correct when the
		// bound is not smaller than the true distance.
		got2 := tr.DistToTriangle(q, want*1.001+1e-9)
		if math.Abs(got2-want) > 1e-9 {
			t.Fatalf("bounded: got %v, want %v", got2, want)
		}
	}
}

func TestContainsPointSphere(t *testing.T) {
	m := mesh.Icosphere(5, 3)
	tr := Build(m.Triangles())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		p := geom.V(rng.Float64()*12-6, rng.Float64()*12-6, rng.Float64()*12-6)
		r := p.Len()
		if r > 4.99 && r < 5.01 {
			continue // too close to the surface
		}
		want := geom.PointInTriangles(p, m.Triangles())
		if got := tr.ContainsPoint(p); got != want {
			t.Fatalf("point %v: tree=%v brute=%v", p, got, want)
		}
	}
}

func TestTriangleAccessor(t *testing.T) {
	tris := []geom.Triangle{geom.Tri(geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0))}
	tr := Build(tris)
	if tr.Triangle(0) != tris[0] {
		t.Error("Triangle(0) mismatch")
	}
	// Build must not retain the caller's slice.
	tris[0].A = geom.V(9, 9, 9)
	if tr.Triangle(0).A == tris[0].A {
		t.Error("Build retained input slice")
	}
}

func BenchmarkBuild(b *testing.B) {
	m := mesh.Icosphere(5, 4) // 5120 faces
	tris := m.Triangles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(tris)
	}
}

func BenchmarkDistToTree(b *testing.B) {
	a := mesh.Icosphere(5, 3)
	c := mesh.Icosphere(5, 3)
	c.Translate(geom.V(15, 3, 1))
	ta, tc := Build(a.Triangles()), Build(c.Triangles())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta.DistToTree(tc)
	}
}

func BenchmarkIntersectsTree(b *testing.B) {
	a := mesh.Icosphere(5, 3)
	c := mesh.Icosphere(5, 3)
	c.Translate(geom.V(7, 0, 0))
	ta, tc := Build(a.Triangles()), Build(c.Triangles())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta.IntersectsTree(tc)
	}
}

func TestContainsPointMultiComponent(t *testing.T) {
	// Multi-component surfaces (like the vessel tube unions) must keep
	// containment parity working: build two disjoint cubes as one mesh.
	c1 := mesh.Cube(geom.V(0, 0, 0), geom.V(2, 2, 2))
	c2 := mesh.Cube(geom.V(5, 0, 0), geom.V(8, 3, 3))
	v := c1.Clone()
	off := int32(len(v.Vertices))
	v.Vertices = append(v.Vertices, c2.Vertices...)
	for _, f := range c2.Faces {
		v.Faces = append(v.Faces, mesh.Face{f[0] + off, f[1] + off, f[2] + off})
	}
	tr := Build(v.Triangles())
	rng := rand.New(rand.NewSource(8))
	b := v.Bounds().Expand(1)
	tris := v.Triangles()
	agree, total := 0, 0
	for i := 0; i < 1500; i++ {
		p := geom.V(
			b.Min.X+rng.Float64()*b.Size().X,
			b.Min.Y+rng.Float64()*b.Size().Y,
			b.Min.Z+rng.Float64()*b.Size().Z,
		)
		want := geom.PointInTriangles(p, tris)
		got := tr.ContainsPoint(p)
		total++
		if got == want {
			agree++
		} else {
			t.Fatalf("point %v: tree=%v brute=%v", p, got, want)
		}
	}
	if total == 0 || agree != total {
		t.Fatalf("agreement %d/%d", agree, total)
	}
}

// TestDistToTreeBounded: with an upper bound above the true distance the
// result is exact; with a bound below it the result must exceed the bound
// (the "greater than upper" contract that lets distance joins prune).
func TestDistToTreeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		a := randomTris(rng, 50, 10, 2)
		b := randomTris(rng, 50, 10, 2)
		shift := 5 + float64(trial)
		for i := range b {
			b[i].A.X += shift
			b[i].B.X += shift
			b[i].C.X += shift
		}
		ta, tb := Build(a), Build(b)
		exact := ta.DistToTree(tb)

		// Generous bound: exact answer.
		if got := ta.DistToTreeBounded(tb, exact*2+1); math.Abs(got-exact) > 1e-9 {
			t.Fatalf("trial %d: bounded(loose) = %v, want %v", trial, got, exact)
		}
		// Bound exactly at the distance (plus epsilon): still found.
		if got := ta.DistToTreeBounded(tb, exact*(1+1e-9)); math.Abs(got-exact) > 1e-6 {
			t.Fatalf("trial %d: bounded(tight) = %v, want %v", trial, got, exact)
		}
		// Bound below the distance: anything > bound is acceptable.
		low := exact / 2
		if low > 0 {
			if got := ta.DistToTreeBounded(tb, low); got <= low*(1-1e-12) {
				t.Fatalf("trial %d: bounded(low) = %v, want > %v", trial, got, low)
			}
		}
		// Infinite bound degenerates to the exact descent.
		if got := ta.DistToTreeBounded(tb, math.Inf(1)); math.Abs(got-exact) > 1e-9 {
			t.Fatalf("trial %d: bounded(inf) = %v, want %v", trial, got, exact)
		}
	}
}

func TestBuildSoAMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tris := randomTris(rng, 200, 20, 2)
	aos := Build(tris)
	soa := BuildSoA(geom.SoAFromTriangles(tris))

	if soa.NumTriangles() != aos.NumTriangles() {
		t.Fatalf("NumTriangles = %d want %d", soa.NumTriangles(), aos.NumTriangles())
	}
	if soa.Bounds() != aos.Bounds() {
		t.Fatalf("Bounds = %v want %v", soa.Bounds(), aos.Bounds())
	}
	// Both constructions must answer identically: same split rule over the
	// same boxes yields the same tree, so query results agree exactly.
	for trial := 0; trial < 100; trial++ {
		other := BuildSoA(geom.SoAFromTriangles(randomTris(rng, 30, 20, 2)))
		if got, want := soa.IntersectsTree(other), aos.IntersectsTree(other); got != want {
			t.Fatalf("trial %d: IntersectsTree = %v want %v", trial, got, want)
		}
		if got, want := soa.DistToTree(other), aos.DistToTree(other); got != want {
			t.Fatalf("trial %d: DistToTree = %v want %v", trial, got, want)
		}
		p := geom.V(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20)
		if got, want := soa.ContainsPoint(p), aos.ContainsPoint(p); got != want {
			t.Fatalf("trial %d: ContainsPoint = %v want %v", trial, got, want)
		}
	}
}

func TestBuildSoAEmpty(t *testing.T) {
	tr := BuildSoA(geom.SoAFromTriangles(nil))
	if tr.NumTriangles() != 0 || !tr.Bounds().IsEmpty() {
		t.Fatal("empty SoA tree not empty")
	}
}
