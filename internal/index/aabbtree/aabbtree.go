// Package aabbtree implements a hierarchical Axis-Aligned Bounding Box tree
// over triangle primitives, the intra-geometry index of the paper's §5.1.
// Building the tree over one decoded polyhedron's faces reduces the cost of
// evaluating two geometries from O(N·N') to O(N·log N') for intersection
// detection and distance calculation.
package aabbtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// maxLeafSize is the number of triangles kept per leaf.
const maxLeafSize = 4

// node is a binary tree node over a contiguous range of the reordered
// triangle slice.
type node struct {
	box         geom.Box3
	left, right int32 // children indices, -1 for leaves
	start, end  int32 // triangle range [start, end) for leaves
}

// Tree is an immutable AABB tree over a set of triangles. It is safe for
// concurrent queries after Build.
type Tree struct {
	tris  []geom.Triangle
	boxes []geom.Box3
	nodes []node
	root  int32
}

// Build constructs a tree over the given triangles. The input slice is not
// retained; an internal copy is reordered during construction. Build returns
// an empty tree for no triangles.
func Build(tris []geom.Triangle) *Tree {
	t := &Tree{
		tris:  append([]geom.Triangle(nil), tris...),
		boxes: make([]geom.Box3, len(tris)),
		root:  -1,
	}
	for i, tr := range t.tris {
		t.boxes[i] = tr.Bounds()
	}
	if len(t.tris) > 0 {
		t.nodes = make([]node, 0, 2*len(tris)/maxLeafSize+1)
		t.root = t.build(0, int32(len(t.tris)))
	}
	return t
}

// BuildSoA constructs a tree from an SoA triangle set, reusing the
// precomputed per-triangle bounding boxes in its lanes instead of
// recomputing Bounds for every face. The SoA is not retained.
func BuildSoA(s *geom.TriSoA) *Tree {
	n := s.Len()
	t := &Tree{
		tris:  make([]geom.Triangle, n),
		boxes: make([]geom.Box3, n),
		root:  -1,
	}
	for i := 0; i < n; i++ {
		t.tris[i] = s.At(i)
		t.boxes[i] = geom.Box3{
			Min: geom.Vec3{X: s.MinX[i], Y: s.MinY[i], Z: s.MinZ[i]},
			Max: geom.Vec3{X: s.MaxX[i], Y: s.MaxY[i], Z: s.MaxZ[i]},
		}
	}
	if n > 0 {
		t.nodes = make([]node, 0, 2*n/maxLeafSize+1)
		t.root = t.build(0, int32(n))
	}
	return t
}

// NumTriangles returns the number of indexed triangles.
func (t *Tree) NumTriangles() int { return len(t.tris) }

// Bounds returns the bounding box of all indexed triangles.
func (t *Tree) Bounds() geom.Box3 {
	if t.root < 0 {
		return geom.EmptyBox()
	}
	return t.nodes[t.root].box
}

// build recursively partitions the triangle range [lo, hi) by the median
// centroid along the longest axis.
func (t *Tree) build(lo, hi int32) int32 {
	box := geom.EmptyBox()
	for i := lo; i < hi; i++ {
		box = box.Union(t.boxes[i])
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{box: box, left: -1, right: -1, start: lo, end: hi})
	if hi-lo <= maxLeafSize {
		return idx
	}
	axis := box.LongestAxis()
	mid := (lo + hi) / 2
	// Median split by centroid along the chosen axis.
	sort.Sort(&triSorter{t: t, lo: lo, n: int(hi - lo), axis: axis})
	left := t.build(lo, mid)
	right := t.build(mid, hi)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// triSorter co-sorts the triangle and box ranges by centroid along an axis.
type triSorter struct {
	t    *Tree
	lo   int32
	n    int
	axis int
}

func (s *triSorter) Len() int { return s.n }
func (s *triSorter) Less(i, j int) bool {
	return s.t.tris[s.lo+int32(i)].Centroid().Component(s.axis) <
		s.t.tris[s.lo+int32(j)].Centroid().Component(s.axis)
}
func (s *triSorter) Swap(i, j int) {
	a, b := s.lo+int32(i), s.lo+int32(j)
	s.t.tris[a], s.t.tris[b] = s.t.tris[b], s.t.tris[a]
	s.t.boxes[a], s.t.boxes[b] = s.t.boxes[b], s.t.boxes[a]
}

// IntersectsTriangle reports whether any indexed triangle intersects q.
func (t *Tree) IntersectsTriangle(q geom.Triangle) bool {
	if t.root < 0 {
		return false
	}
	qb := q.Bounds()
	return t.intersectsTriangleRec(t.root, q, qb)
}

func (t *Tree) intersectsTriangleRec(ni int32, q geom.Triangle, qb geom.Box3) bool {
	n := &t.nodes[ni]
	if !n.box.Intersects(qb) {
		return false
	}
	if n.left < 0 {
		for i := n.start; i < n.end; i++ {
			if t.boxes[i].Intersects(qb) && geom.TriTriIntersect(t.tris[i], q) {
				return true
			}
		}
		return false
	}
	return t.intersectsTriangleRec(n.left, q, qb) || t.intersectsTriangleRec(n.right, q, qb)
}

// IntersectsTree reports whether any triangle of t intersects any triangle
// of o, using simultaneous descent of both trees.
func (t *Tree) IntersectsTree(o *Tree) bool {
	if t.root < 0 || o.root < 0 {
		return false
	}
	return intersectsDual(t, t.root, o, o.root)
}

func intersectsDual(a *Tree, ai int32, b *Tree, bi int32) bool {
	an, bn := &a.nodes[ai], &b.nodes[bi]
	if !an.box.Intersects(bn.box) {
		return false
	}
	aLeaf, bLeaf := an.left < 0, bn.left < 0
	switch {
	case aLeaf && bLeaf:
		for i := an.start; i < an.end; i++ {
			for j := bn.start; j < bn.end; j++ {
				if a.boxes[i].Intersects(b.boxes[j]) &&
					geom.TriTriIntersect(a.tris[i], b.tris[j]) {
					return true
				}
			}
		}
		return false
	case bLeaf || (!aLeaf && an.box.Volume() >= bn.box.Volume()):
		return intersectsDual(a, an.left, b, bi) || intersectsDual(a, an.right, b, bi)
	default:
		return intersectsDual(a, ai, b, bn.left) || intersectsDual(a, ai, b, bn.right)
	}
}

// DistToTriangle returns the minimum distance from q to the indexed set,
// pruned with an optional upper bound: pass math.Inf(1) when unknown.
func (t *Tree) DistToTriangle(q geom.Triangle, upper float64) float64 {
	if t.root < 0 {
		return math.Inf(1)
	}
	best := upper * upper
	if math.IsInf(upper, 1) {
		best = math.Inf(1)
	}
	best = t.distTriRec(t.root, q, q.Bounds(), best)
	return math.Sqrt(best)
}

func (t *Tree) distTriRec(ni int32, q geom.Triangle, qb geom.Box3, best float64) float64 {
	n := &t.nodes[ni]
	if d2 := n.box.MinDist2(qb); d2 >= best {
		return best
	}
	if n.left < 0 {
		for i := n.start; i < n.end; i++ {
			if t.boxes[i].MinDist2(qb) >= best {
				continue
			}
			if d2 := geom.TriTriDist2(t.tris[i], q); d2 < best {
				best = d2
			}
		}
		return best
	}
	// Visit the closer child first for tighter pruning.
	l, r := n.left, n.right
	if t.nodes[l].box.MinDist2(qb) > t.nodes[r].box.MinDist2(qb) {
		l, r = r, l
	}
	best = t.distTriRec(l, q, qb, best)
	best = t.distTriRec(r, q, qb, best)
	return best
}

// DistToTree returns the minimum distance between the two triangle sets via
// branch-and-bound simultaneous descent. It is zero when they intersect.
func (t *Tree) DistToTree(o *Tree) float64 {
	return t.DistToTreeBounded(o, math.Inf(1))
}

// DistToTreeBounded is DistToTree with the descent seeded by an upper bound:
// subtree pairs whose box distance is ≥ upper are pruned without ever
// touching their triangles. When the true distance exceeds upper the
// returned value is ≥ upper but otherwise meaningless — callers must treat
// it as "greater than upper" only. Pass math.Inf(1) for an exact distance.
func (t *Tree) DistToTreeBounded(o *Tree, upper float64) float64 {
	if t.root < 0 || o.root < 0 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	if !math.IsInf(upper, 1) {
		best = upper * upper
	}
	best = distDual(t, t.root, o, o.root, best)
	return math.Sqrt(best)
}

func distDual(a *Tree, ai int32, b *Tree, bi int32, best float64) float64 {
	an, bn := &a.nodes[ai], &b.nodes[bi]
	if d2 := an.box.MinDist2(bn.box); d2 >= best {
		return best
	}
	aLeaf, bLeaf := an.left < 0, bn.left < 0
	switch {
	case aLeaf && bLeaf:
		for i := an.start; i < an.end; i++ {
			for j := bn.start; j < bn.end; j++ {
				if a.boxes[i].MinDist2(b.boxes[j]) >= best {
					continue
				}
				if d2 := geom.TriTriDist2(a.tris[i], b.tris[j]); d2 < best {
					best = d2
				}
			}
		}
		return best
	case bLeaf || (!aLeaf && an.box.Volume() >= bn.box.Volume()):
		// Descend a; nearer child first.
		l, r := an.left, an.right
		if a.nodes[l].box.MinDist2(bn.box) > a.nodes[r].box.MinDist2(bn.box) {
			l, r = r, l
		}
		best = distDual(a, l, b, bi, best)
		best = distDual(a, r, b, bi, best)
		return best
	default:
		l, r := bn.left, bn.right
		if b.nodes[l].box.MinDist2(an.box) > b.nodes[r].box.MinDist2(an.box) {
			l, r = r, l
		}
		best = distDual(a, ai, b, l, best)
		best = distDual(a, ai, b, r, best)
		return best
	}
}

// ContainsPoint reports whether p is inside the closed surface indexed by
// the tree, by counting ray crossings. Degenerate hits (edges, vertices,
// parallel faces) trigger a re-cast along a different direction, exactly as
// geom.PointInTriangles does, but each cast costs O(log N) instead of O(N).
func (t *Tree) ContainsPoint(p geom.Vec3) bool {
	if t.root < 0 || !t.Bounds().ContainsPoint(p) {
		return false
	}
	parity := false
	for _, dir := range geom.RayDirections() {
		r := geom.Ray{Origin: p, Dir: dir}
		crossings, ok := t.countCrossings(t.root, r)
		parity = crossings%2 == 1
		if ok {
			return parity
		}
	}
	return parity
}

func (t *Tree) countCrossings(ni int32, r geom.Ray) (int, bool) {
	n := &t.nodes[ni]
	if !r.IntersectBox(n.box) {
		return 0, true
	}
	if n.left < 0 {
		total := 0
		for i := n.start; i < n.end; i++ {
			c, ok := geom.RayCrossesTriangle(r, t.tris[i])
			if !ok {
				return 0, false
			}
			total += c
		}
		return total, true
	}
	lc, ok := t.countCrossings(n.left, r)
	if !ok {
		return 0, false
	}
	rc, ok := t.countCrossings(n.right, r)
	if !ok {
		return 0, false
	}
	return lc + rc, true
}

// Triangle returns the i-th triangle in tree order.
func (t *Tree) Triangle(i int) geom.Triangle { return t.tris[i] }
