package partition

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestSkeletonCounts(t *testing.T) {
	m := mesh.Icosphere(5, 2)
	for _, k := range []int{1, 3, 8} {
		pts := Skeleton(m, k)
		if len(pts) != k {
			t.Errorf("Skeleton(%d) returned %d points", k, len(pts))
		}
		for _, p := range pts {
			if !p.IsFinite() {
				t.Errorf("non-finite skeleton point %v", p)
			}
		}
	}
	// Clamping.
	if got := Skeleton(m, 0); len(got) != 1 {
		t.Errorf("k=0 should clamp to 1, got %d", len(got))
	}
	if got := Skeleton(m, m.NumFaces()+100); len(got) != m.NumFaces() {
		t.Errorf("k beyond faces should clamp, got %d", len(got))
	}
	if got := Skeleton(&mesh.Mesh{}, 3); got != nil {
		t.Error("empty mesh should yield nil skeleton")
	}
}

func TestPartitionCoversAllFaces(t *testing.T) {
	m := mesh.Tube(
		[]geom.Vec3{geom.V(0, 0, 0), geom.V(0, 0, 5), geom.V(2, 0, 10), geom.V(2, 2, 15)},
		[]float64{1, 1.3, 1, 0.8}, 12)
	groups := PartitionMesh(m, 4)
	if len(groups) == 0 || len(groups) > 4 {
		t.Fatalf("group count = %d", len(groups))
	}
	seen := make([]bool, m.NumFaces())
	for _, g := range groups {
		if len(g.Faces) == 0 {
			t.Error("empty group returned")
		}
		for _, f := range g.Faces {
			if seen[f] {
				t.Fatalf("face %d in two groups", f)
			}
			seen[f] = true
			if !g.Box.Contains(m.Triangle(int(f)).Bounds()) {
				t.Fatalf("group box does not contain face %d", f)
			}
		}
	}
	for f, s := range seen {
		if !s {
			t.Fatalf("face %d unassigned", f)
		}
	}
}

func TestPartitionTightensBoxes(t *testing.T) {
	// For an elongated object, the union volume of group boxes should be
	// far below the single-MBB volume — the whole point of the technique.
	m := mesh.Tube(
		[]geom.Vec3{geom.V(0, 0, 0), geom.V(0, 0, 10), geom.V(8, 0, 20), geom.V(8, 8, 30)},
		[]float64{1, 1, 1, 1}, 12)
	groups := PartitionMesh(m, 8)
	var sum float64
	for _, g := range groups {
		sum += g.Box.Volume()
	}
	if whole := m.Bounds().Volume(); sum > 0.8*whole {
		t.Errorf("group boxes (%v) barely tighter than MBB (%v)", sum, whole)
	}
}

func TestGroupCount(t *testing.T) {
	if GroupCount(100, 256) != 1 {
		t.Error("simple object should stay unpartitioned")
	}
	if GroupCount(3000, 256) != 11 {
		t.Errorf("GroupCount(3000,256) = %d", GroupCount(3000, 256))
	}
	if GroupCount(1000, 0) != 3 {
		t.Errorf("default target wrong: %d", GroupCount(1000, 0))
	}
}

func TestGroupTriangles(t *testing.T) {
	m := mesh.Icosphere(2, 1)
	groups := PartitionMesh(m, 2)
	total := 0
	for _, g := range groups {
		tris := GroupTriangles(m, g)
		if len(tris) != len(g.Faces) {
			t.Fatal("triangle count mismatch")
		}
		total += len(tris)
	}
	if total != m.NumFaces() {
		t.Errorf("total triangles %d != faces %d", total, m.NumFaces())
	}
}

func TestAssignFacesEmpty(t *testing.T) {
	m := mesh.Icosphere(1, 1)
	if got := AssignFaces(m, nil); got != nil {
		t.Error("nil skeleton should return nil")
	}
	if got := AssignFaces(&mesh.Mesh{}, []geom.Vec3{{}}); got != nil {
		t.Error("empty mesh should return nil")
	}
}
