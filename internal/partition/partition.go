// Package partition implements the skeleton-based object partitioning of
// the paper's §5.1: a complex object is split into simple sub-objects, each
// approximated by its own MBB. Indexing those finer boxes instead of one
// coarse MBB both tightens filtering and shrinks the face sets evaluated in
// the refinement step — the technique that gives the paper its 39×
// improvement for brute-force within joins on vessels.
//
// Skeleton extraction here is farthest-point sampling over face centroids
// followed by a few Lloyd iterations, a deterministic stand-in for the
// curve-skeleton extraction of the original implementation: what matters to
// the query engine is that faces are grouped into spatially coherent
// clusters with tight boxes, which this provides.
package partition

import (
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// Group is one sub-object: the indices of the faces assigned to a skeleton
// point and their bounding box.
type Group struct {
	Faces []int32
	Box   geom.Box3
}

// Skeleton returns k skeleton points for the mesh: farthest-point samples
// of the face centroids refined with Lloyd iterations. k is clamped to
// [1, number of faces].
func Skeleton(m *mesh.Mesh, k int) []geom.Vec3 {
	nf := m.NumFaces()
	if nf == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > nf {
		k = nf
	}
	centroids := make([]geom.Vec3, nf)
	for i := 0; i < nf; i++ {
		centroids[i] = m.Triangle(i).Centroid()
	}

	// Farthest-point sampling, seeded at the centroid-closest face for
	// determinism.
	mean := geom.Vec3{}
	for _, c := range centroids {
		mean = mean.Add(c)
	}
	mean = mean.Mul(1 / float64(nf))
	seed := 0
	best := math.Inf(1)
	for i, c := range centroids {
		if d := c.Dist2(mean); d < best {
			best, seed = d, i
		}
	}

	pts := []geom.Vec3{centroids[seed]}
	minDist := make([]float64, nf)
	for i := range minDist {
		minDist[i] = centroids[i].Dist2(pts[0])
	}
	for len(pts) < k {
		far, farD := 0, -1.0
		for i, d := range minDist {
			if d > farD {
				far, farD = i, d
			}
		}
		p := centroids[far]
		pts = append(pts, p)
		for i := range minDist {
			if d := centroids[i].Dist2(p); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	// Lloyd refinement: move each skeleton point to the mean of its
	// assigned centroids.
	assign := make([]int, nf)
	for iter := 0; iter < 4; iter++ {
		for i, c := range centroids {
			bestJ, bestD := 0, math.Inf(1)
			for j, p := range pts {
				if d := c.Dist2(p); d < bestD {
					bestJ, bestD = j, d
				}
			}
			assign[i] = bestJ
		}
		sums := make([]geom.Vec3, len(pts))
		counts := make([]int, len(pts))
		for i, c := range centroids {
			sums[assign[i]] = sums[assign[i]].Add(c)
			counts[assign[i]]++
		}
		for j := range pts {
			if counts[j] > 0 {
				pts[j] = sums[j].Mul(1 / float64(counts[j]))
			}
		}
	}
	return pts
}

// PartitionMesh assigns every face of m to its nearest of k skeleton points
// and returns the non-empty groups with their boxes.
func PartitionMesh(m *mesh.Mesh, k int) []Group {
	pts := Skeleton(m, k)
	return AssignFaces(m, pts)
}

// AssignFaces groups the faces of m by nearest skeleton point.
func AssignFaces(m *mesh.Mesh, skeleton []geom.Vec3) []Group {
	if len(skeleton) == 0 || m.NumFaces() == 0 {
		return nil
	}
	groups := make([]Group, len(skeleton))
	for i := range groups {
		groups[i].Box = geom.EmptyBox()
	}
	for f := 0; f < m.NumFaces(); f++ {
		tri := m.Triangle(f)
		c := tri.Centroid()
		bestJ, bestD := 0, math.Inf(1)
		for j, p := range skeleton {
			if d := c.Dist2(p); d < bestD {
				bestJ, bestD = j, d
			}
		}
		groups[bestJ].Faces = append(groups[bestJ].Faces, int32(f))
		groups[bestJ].Box = groups[bestJ].Box.Union(tri.Bounds())
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g.Faces) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// GroupCount returns the number of sub-objects to use for a mesh with the
// given face count: roughly one group per targetFaces faces, minimum one.
// Simple objects (≤ targetFaces faces) stay unpartitioned, matching the
// paper's observation that partitioning only pays off for complex shapes.
func GroupCount(faces, targetFaces int) int {
	if targetFaces <= 0 {
		targetFaces = 256
	}
	k := faces / targetFaces
	if k < 1 {
		k = 1
	}
	return k
}

// GroupTriangles materializes the triangles of one group.
func GroupTriangles(m *mesh.Mesh, g Group) []geom.Triangle {
	tris := make([]geom.Triangle, len(g.Faces))
	for i, f := range g.Faces {
		tris[i] = m.Triangle(int(f))
	}
	return tris
}
