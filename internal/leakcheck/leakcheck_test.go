package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// blockForever is the leak shape the detector must catch: parked on a
// channel nothing sends to.
func blockForever(ch chan struct{}, started chan<- struct{}) {
	started <- struct{}{}
	<-ch
}

func TestDetectsLeakedGoroutine(t *testing.T) {
	before := liveIDs(capture())

	ch := make(chan struct{})
	started := make(chan struct{})
	go blockForever(ch, started)
	<-started
	defer close(ch) // release it so THIS test doesn't leak

	leaked := settle(before, 50*time.Millisecond)
	if len(leaked) == 0 {
		t.Fatal("a goroutine parked on a never-closed channel was not detected")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g.stack, "blockForever") {
			found = true
			if g.state != "chan receive" && g.state != "chan send" {
				t.Errorf("leaked goroutine state = %q, want a chan park", g.state)
			}
		}
	}
	if !found {
		t.Fatalf("leak report misses blockForever: %v", leaked)
	}
}

func TestSettleWaitsForStragglers(t *testing.T) {
	before := liveIDs(capture())

	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond) // straggler: exits within the grace window
		close(done)
	}()

	if leaked := settle(before, 2*time.Second); len(leaked) != 0 {
		t.Fatalf("straggler that exits within the window reported as leak: %v", leaked)
	}
	<-done
}

func TestParseDump(t *testing.T) {
	dump := "goroutine 1 [running]:\nmain.main()\n\t/src/main.go:10 +0x20\n\n" +
		"goroutine 42 [chan receive, 3 minutes]:\npkg.worker(0x0)\n\t/src/pkg/w.go:5 +0x11\n\n" +
		"garbage without a header\n\n" +
		"goroutine bad [running]:\nframes\n"
	gs := parseDump(dump)
	if len(gs) != 2 {
		t.Fatalf("parsed %d records, want 2: %+v", len(gs), gs)
	}
	if gs[0].id != 1 || gs[0].state != "running" {
		t.Errorf("record 0 = %+v", gs[0])
	}
	if gs[1].id != 42 || gs[1].state != "chan receive, 3 minutes" || !strings.Contains(gs[1].stack, "pkg.worker") {
		t.Errorf("record 1 = %+v", gs[1])
	}
}

// recorder captures Errorf calls so Check's cleanup can be asserted on
// without failing the real test.
type recorder struct {
	cleanups []func()
	errors   []string
}

func (r *recorder) Helper() {}

func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }

func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, format)
}

func (r *recorder) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestCheckCleanTest(t *testing.T) {
	r := &recorder{}
	Check(r)
	r.runCleanups()
	if len(r.errors) != 0 {
		t.Fatalf("clean test reported leaks: %v", r.errors)
	}
}
