// Package leakcheck is a runtime goroutine-leak detector for tests,
// independent of the static analyzers in internal/analysis: the goleak
// analyzer proves every goroutine has a termination *path*, this helper
// proves the paths are actually *taken* under the schedules a test drives.
//
// Usage, first line of a test:
//
//	leakcheck.Check(t)
//
// Check snapshots the IDs of every live goroutine and registers a cleanup
// that re-snapshots after the test (and any later-registered cleanups, such
// as an engine Close) have run. Goroutines that appeared during the test get
// a grace window to finish — workers legitimately race with the cleanup
// that unblocks them — and whatever survives the window is reported with its
// full stack.
//
// The diff is by goroutine ID, so pre-existing runtime and testing
// machinery is never reported, and tests sharing a binary do not interfere
// as long as each checks only its own window.
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// testingTB is the subset of testing.TB the checker needs; taking the
// interface keeps the package importable from any test without a testing
// dependency cycle and makes the checker itself testable.
type testingTB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Defaults for the grace window: long enough for a canceled worker to
// observe ctx.Done() and unwind even under -race scheduling, short enough
// not to drag the suite.
const (
	defaultWait = 2 * time.Second
	pollEvery   = 10 * time.Millisecond
)

// Check arms the leak detector for the current test. Call it before any
// helper that registers its own cleanup (testing cleanups run last-in
// first-out, and the diff must run after the engine/coordinator Close).
func Check(t testingTB) {
	t.Helper()
	before := liveIDs(capture())
	t.Cleanup(func() {
		for _, g := range settle(before, defaultWait) {
			t.Errorf("leaked goroutine %d [%s]:\n%s", g.id, g.state, g.stack)
		}
	})
}

// goroutine is one parsed record of a runtime.Stack(buf, true) dump.
type goroutine struct {
	id    uint64
	state string // the bracketed scheduler state: "running", "chan receive", ...
	stack string // the frames, without the header line
}

// capture parses the full-process stack dump, growing the buffer until the
// dump fits.
func capture() []goroutine {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return parseDump(string(buf[:n]))
		}
		buf = make([]byte, len(buf)*2)
	}
}

// parseDump splits a dump into records. Each record starts with a header of
// the form "goroutine 42 [chan receive]:"; records are separated by blank
// lines. Unparseable records are skipped rather than guessed at.
func parseDump(dump string) []goroutine {
	var out []goroutine
	for _, rec := range strings.Split(dump, "\n\n") {
		rec = strings.TrimSpace(rec)
		header, frames, _ := strings.Cut(rec, "\n")
		id, state, ok := parseHeader(header)
		if !ok {
			continue
		}
		out = append(out, goroutine{id: id, state: state, stack: frames})
	}
	return out
}

// parseHeader extracts the ID and scheduler state from one header line.
func parseHeader(line string) (id uint64, state string, ok bool) {
	rest, found := strings.CutPrefix(line, "goroutine ")
	if !found {
		return 0, "", false
	}
	idStr, rest, found := strings.Cut(rest, " [")
	if !found {
		return 0, "", false
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		return 0, "", false
	}
	state, _, found = strings.Cut(rest, "]")
	if !found {
		return 0, "", false
	}
	return id, state, true
}

func liveIDs(gs []goroutine) map[uint64]bool {
	out := make(map[uint64]bool, len(gs))
	for _, g := range gs {
		out[g.id] = true
	}
	return out
}

// settle polls until every goroutine not present in before has exited, or
// the wait budget runs out; it returns the stragglers (empty means clean).
func settle(before map[uint64]bool, wait time.Duration) []goroutine {
	deadline := time.Now().Add(wait)
	for {
		leaked := diff(capture(), before)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(pollEvery)
	}
}

// diff returns the goroutines of now that are not in before and not benign.
func diff(now []goroutine, before map[uint64]bool) []goroutine {
	var out []goroutine
	for _, g := range now {
		if before[g.id] || benign(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// benign filters goroutines that are new since the snapshot but are not the
// test's fault: the runtime and the testing framework start helpers on
// their own schedule (GC workers, timer goroutines mid-fire, the goroutine
// running this very check when cleanup hops goroutines).
func benign(g goroutine) bool {
	for _, marker := range []string{
		"runtime.gc",
		"runtime.bgscavenge",
		"runtime.bgsweep",
		"runtime/trace.Start",
		"testing.runTests",
		"testing.(*T).Run",
		"time.goFunc", // a time.AfterFunc body caught mid-fire
	} {
		if strings.Contains(g.stack, marker) {
			return true
		}
	}
	return false
}

// String makes diagnostics from helpers readable in verbose failures.
func (g goroutine) String() string {
	return fmt.Sprintf("goroutine %d [%s]", g.id, g.state)
}
