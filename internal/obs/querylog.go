package obs

import (
	"sync"
	"time"
)

// QuerySummary is the ring-buffer record of one served query — the
// /debug/queries line an operator reads to reconstruct what the server was
// doing when a latency spike or failure landed.
type QuerySummary struct {
	// ID is the request ID the server middleware assigned (also returned in
	// the X-Request-ID response header).
	ID        string    `json:"id,omitempty"`
	Kind      string    `json:"kind"`
	Start     time.Time `json:"start"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Status    string    `json:"status"` // "ok" | "error"
	Error     string    `json:"error,omitempty"`

	Candidates     int64 `json:"candidates"`
	Results        int64 `json:"results"`
	Decodes        int64 `json:"decodes"`
	CacheHits      int64 `json:"cache_hits"`
	WarmStarts     int64 `json:"warm_starts"`
	DecodeFailures int64 `json:"decode_failures"`
	Degraded       int   `json:"degraded"`

	// Trace carries the query's span timeline when tracing was requested.
	Trace []TraceEvent `json:"trace,omitempty"`
}

// QueryLog is a fixed-capacity ring buffer of the most recent query
// summaries. Safe for concurrent use.
type QueryLog struct {
	mu    sync.Mutex
	buf   []QuerySummary
	next  int
	count int
	total uint64
}

// NewQueryLog returns a log retaining the last capacity summaries
// (minimum 1).
func NewQueryLog(capacity int) *QueryLog {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryLog{buf: make([]QuerySummary, capacity)}
}

// Record appends one summary, evicting the oldest when full.
func (l *QueryLog) Record(s QuerySummary) {
	l.mu.Lock()
	l.buf[l.next] = s
	l.next = (l.next + 1) % len(l.buf)
	if l.count < len(l.buf) {
		l.count++
	}
	l.total++
	l.mu.Unlock()
}

// Snapshot returns the retained summaries, newest first.
func (l *QueryLog) Snapshot() []QuerySummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QuerySummary, 0, l.count)
	for i := 1; i <= l.count; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// Total returns how many summaries were ever recorded (including evicted
// ones).
func (l *QueryLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
