package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderAggregatesSpans(t *testing.T) {
	start := time.Now()
	r := NewRecorder(start)

	r.Observe("decode", 0, start.Add(1*time.Millisecond), 2*time.Millisecond)
	r.Observe("decode", 0, start.Add(5*time.Millisecond), 1*time.Millisecond)
	r.Observe("decode", 1, start.Add(8*time.Millisecond), 1*time.Millisecond)
	r.Observe("filter", NoLOD, start, 500*time.Microsecond)
	r.Count("settle", 0, 3)

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	// Ordered by first activity: filter starts at 0.
	if evs[0].Name != "filter" || evs[0].LOD != NoLOD {
		t.Errorf("first event = %+v, want filter", evs[0])
	}
	var dec0 *TraceEvent
	for i := range evs {
		if evs[i].Name == "decode" && evs[i].LOD == 0 {
			dec0 = &evs[i]
		}
	}
	if dec0 == nil {
		t.Fatal("decode lod=0 event missing")
	}
	if dec0.Count != 2 {
		t.Errorf("decode lod=0 count = %d, want 2", dec0.Count)
	}
	if dec0.FirstUS != 1000 {
		t.Errorf("decode lod=0 first = %dus, want 1000", dec0.FirstUS)
	}
	if dec0.LastUS != 6000 {
		t.Errorf("decode lod=0 last = %dus, want 6000", dec0.LastUS)
	}
	if dec0.TotalUS != 3000 {
		t.Errorf("decode lod=0 total = %dus, want 3000", dec0.TotalUS)
	}
}

func TestNilRecorderIsSilent(t *testing.T) {
	var r *Recorder
	r.Observe("x", 0, time.Now(), time.Millisecond) // must not panic
	r.Count("y", 0, 1)
	if evs := r.Events(); evs != nil {
		t.Errorf("nil recorder returned events: %v", evs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(time.Now())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe("geom", i%3, time.Now(), time.Microsecond)
				r.Count("settle", i%3, 1)
			}
		}()
	}
	wg.Wait()
	var spans, counts int64
	for _, e := range r.Events() {
		switch e.Name {
		case "geom":
			spans += e.Count
		case "settle":
			counts += e.Count
		}
	}
	if spans != 4000 || counts != 4000 {
		t.Errorf("spans=%d counts=%d, want 4000 each", spans, counts)
	}
}

func TestQueryLogRing(t *testing.T) {
	l := NewQueryLog(3)
	for i := 0; i < 5; i++ {
		l.Record(QuerySummary{Kind: "nn", Results: int64(i)})
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Newest first: 4, 3, 2.
	for i, want := range []int64{4, 3, 2} {
		if snap[i].Results != want {
			t.Errorf("snap[%d].Results = %d, want %d", i, snap[i].Results, want)
		}
	}
	if l.Total() != 5 {
		t.Errorf("Total() = %d, want 5", l.Total())
	}

	// Partial fill keeps order too.
	l2 := NewQueryLog(8)
	l2.Record(QuerySummary{Results: 1})
	l2.Record(QuerySummary{Results: 2})
	snap2 := l2.Snapshot()
	if len(snap2) != 2 || snap2[0].Results != 2 || snap2[1].Results != 1 {
		t.Errorf("partial snapshot wrong: %+v", snap2)
	}
}
