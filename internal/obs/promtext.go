package obs

import (
	"strconv"
	"strings"
)

// ParsePrometheusText is a minimal validator of the text exposition format
// used by this package's tests and the server's metrics smoke test: it
// returns the family name -> type map and errors on any malformed line.
func ParsePrometheusText(s string) (map[string]string, error) {
	fams := make(map[string]string)
	for _, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, errLine(line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, errLine(line)
			}
			fams[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name[{labels}] value
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.LastIndexByte(rest, '}')
			if j < i {
				return nil, errLine(line)
			}
			rest = rest[:i] + rest[j+1:]
		}
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return nil, errLine(line)
		}
		if parts[1] != "+Inf" && parts[1] != "-Inf" && parts[1] != "NaN" {
			if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
				return nil, errLine(line)
			}
		}
	}
	return fams, nil
}

type parseErr string

func (e parseErr) Error() string { return "bad exposition line: " + string(e) }

func errLine(l string) error { return parseErr(l) }
