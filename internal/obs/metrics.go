// Package obs is the engine's observability layer: a dependency-free
// Prometheus-text-format metrics registry, a span-style per-query trace
// recorder, and a ring buffer of recent query summaries.
//
// The package is intentionally stdlib-only — the repository bakes in no
// third-party modules — and implements the subset of the Prometheus
// exposition format (text format version 0.0.4) the server needs: counters,
// gauges, and histograms, optionally with a fixed label set per family.
// Callback-backed families (CounterFunc / GaugeFunc) sample external
// cumulative counters (the decode cache, the quarantine registry) at scrape
// time, so those subsystems need no push-side instrumentation at all.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one registered family: everything needed to expose it.
type metric struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"
	// write appends the family's sample lines (without HELP/TYPE).
	write func(w io.Writer)
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Families appear in registration order; series within a
// family are sorted by label values. All registration methods panic on an
// invalid or duplicate name — metric registration is programmer-controlled
// startup code, not input handling.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) register(m *metric) {
	mustValidName(m.name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.names[m.name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a cumulative counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", write: func(w io.Writer) {
		writeSample(w, name, "", c.Value())
	}})
	return c
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := newCounterVec(name, labels)
	r.register(&metric{name: name, help: help, typ: "counter", write: v.write})
	return v
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — for cumulative counters owned by another subsystem.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "counter", write: func(w io.Writer) {
		writeSample(w, name, "", fn())
	}})
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", write: func(w io.Writer) {
		writeSample(w, name, "", fn())
	}})
}

// Histogram registers a histogram with the given upper bucket bounds
// (ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&metric{name: name, help: help, typ: "histogram", write: func(w io.Writer) {
		h.write(w, name, "")
	}})
	return h
}

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{name: name, labels: labels, buckets: buckets, children: make(map[string]*labeledHistogram)}
	r.register(&metric{name: name, help: help, typ: "histogram", write: v.write})
	return v
}

// WritePrometheus renders every registered family in the text exposition
// format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.write(w)
	}
}

// Handler returns an http.Handler serving the registry (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, b.String())
	})
}

// Counter is a cumulative float64 counter (atomic, lock-free).
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v (v must be ≥ 0 for Prometheus counter
// semantics; this is not enforced).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		val := math.Float64frombits(old) + v
		if c.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// CounterVec is a counter family over a fixed set of label names.
type CounterVec struct {
	name   string
	labels []string

	mu       sync.Mutex
	children map[string]*labeledCounter
}

type labeledCounter struct {
	labels string // rendered {k="v",...} fragment
	c      Counter
}

func newCounterVec(name string, labels []string) *CounterVec {
	for _, l := range labels {
		mustValidName(l)
	}
	return &CounterVec{name: name, labels: labels, children: make(map[string]*labeledCounter)}
}

// With returns the child counter for the given label values (created on
// first use). The number of values must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	ls := renderLabels(v.name, v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[ls]
	if !ok {
		ch = &labeledCounter{labels: ls}
		v.children[ls] = ch
	}
	return &ch.c
}

func (v *CounterVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeSample(w, v.name, k, v.children[k].c.Value())
	}
	v.mu.Unlock()
}

// Histogram is a fixed-bucket histogram of float64 observations.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // per-bucket counts, len = len(bounds)+1
	sum    Counter
	count  atomic.Int64
}

// NewHistogram returns a standalone histogram with the given upper bucket
// bounds (ascending; the +Inf bucket is implicit) that is not registered
// with any Registry — for subsystems that consume observations themselves
// (via Snapshot) rather than exposing them for scraping.
func NewHistogram(buckets []float64) *Histogram { return newHistogram(buckets) }

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time read-back of a histogram's state:
// the bucket bounds, the per-bucket counts (non-cumulative; the final
// element is the +Inf bucket), and the running sum/count.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Mean returns the mean observation (0 before any observation).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot reads the histogram back for programmatic consumers (the
// engine's online LOD-schedule calibrator, /statusz). Buckets are read
// individually without a global lock, so a snapshot taken during
// concurrent Observe calls is approximate: each bucket value is atomically
// consistent, but Count may briefly disagree with the bucket total.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Value(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", addLabel(labels, "le", formatFloat(b)), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", addLabel(labels, "le", "+Inf"), float64(cum))
	writeSample(w, name+"_sum", labels, h.sum.Value())
	writeSample(w, name+"_count", labels, float64(h.count.Load()))
}

// HistogramVec is a histogram family over a fixed set of label names.
type HistogramVec struct {
	name    string
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]*labeledHistogram
}

type labeledHistogram struct {
	labels string
	h      *Histogram
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	ls := renderLabels(v.name, v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[ls]
	if !ok {
		ch = &labeledHistogram{labels: ls, h: newHistogram(v.buckets)}
		v.children[ls] = ch
	}
	return ch.h
}

func (v *HistogramVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*labeledHistogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for _, ch := range children {
		ch.h.write(w, v.name, ch.labels)
	}
}

// DurationBuckets are the default latency buckets (seconds), spanning 1 ms
// to 30 s — the server's query-deadline range.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// RoundBuckets are the default decode-round-count buckets (rounds per
// query).
var RoundBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// renderLabels builds the sorted-by-registration `k="v",...` fragment.
func renderLabels(name string, labels, values []string) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", name, len(labels), len(values)))
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func addLabel(labels, k, v string) string {
	frag := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return frag
	}
	return labels + "," + frag
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// mustValidName enforces the Prometheus metric/label name charset.
func mustValidName(s string) {
	if s == "" {
		panic("obs: empty metric or label name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				panic(fmt.Sprintf("obs: invalid metric or label name %q", s))
			}
		default:
			panic(fmt.Sprintf("obs: invalid metric or label name %q", s))
		}
	}
}
