package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndVecExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A counter.")
	c.Inc()
	c.Add(2.5)

	v := r.CounterVec("test_by_kind_total", "A labeled counter.", "kind", "status")
	v.With("nn", "ok").Add(3)
	v.With("intersect", "error").Inc()
	// Same child twice must accumulate, not reset.
	v.With("nn", "ok").Inc()

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		"test_total 3.5",
		"# TYPE test_by_kind_total counter",
		`test_by_kind_total{kind="intersect",status="error"} 1`,
		`test_by_kind_total{kind="nn",status="ok"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Series within a family are sorted: intersect before nn.
	if strings.Index(out, `kind="intersect"`) > strings.Index(out, `kind="nn"`) {
		t.Error("label series not sorted")
	}
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	val := 41.0
	r.GaugeFunc("test_gauge", "Sampled gauge.", func() float64 { return val })
	r.CounterFunc("test_fn_total", "Sampled counter.", func() float64 { return 7 })

	val = 42
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "# TYPE test_gauge gauge") || !strings.Contains(out, "test_gauge 42") {
		t.Errorf("gauge not sampled at scrape time:\n%s", out)
	}
	if !strings.Contains(out, "test_fn_total 7") {
		t.Errorf("counter func missing:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 56.05",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}

	// An observation exactly on a bound lands in that bound's bucket.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(1)
	if got := h2.counts[0].Load(); got != 1 {
		t.Errorf("boundary observation landed in bucket %v", h2.counts)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_hv_seconds", "Latency by kind.", []float64{1}, "kind")
	v.With("nn").Observe(0.5)
	v.With("nn").Observe(2)
	v.With("within").Observe(0.1)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_hv_seconds_bucket{kind="nn",le="1"} 1`,
		`test_hv_seconds_bucket{kind="nn",le="+Inf"} 2`,
		`test_hv_seconds_count{kind="nn"} 2`,
		`test_hv_seconds_count{kind="within"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value() = %v, want 8000", c.Value())
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0starts_with_digit", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %q did not panic", bad)
				}
			}()
			r.Counter(bad, "x")
		}()
	}
	r.Counter("dup_total", "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		r.Counter("dup_total", "x")
	}()
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "x", "path")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

// TestHandlerServesParseableText scrapes the HTTP handler and runs every
// sample line through a minimal text-format parser.
func TestHandlerServesParseableText(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "x").Add(2)
	r.Histogram("h_seconds", "y", DurationBuckets).Observe(0.42)
	r.GaugeFunc("h_gauge", "z", func() float64 { return -1.5 })

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheusText(buf.String())
	if err != nil {
		t.Fatalf("unparseable exposition: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"h_total", "h_seconds", "h_gauge"} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %q missing from scrape", want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Mean() != 0 {
		t.Fatalf("virgin snapshot not zero: %+v", s)
	}
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got, want := s.Bounds, []float64{1, 2, 4}; len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	// Buckets are non-cumulative: one observation each in (≤1], (1,2], (2,4]
	// and one in the implicit +Inf bucket.
	wantCounts := []int64{1, 1, 1, 1}
	for i, c := range s.Counts {
		if c != wantCounts[i] {
			t.Errorf("counts[%d] = %d, want %d (all: %v)", i, c, wantCounts[i], s.Counts)
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if want := 0.5 + 1.5 + 3 + 100; s.Sum != want {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	if want := (0.5 + 1.5 + 3 + 100) / 4; s.Mean() != want {
		t.Errorf("mean = %v, want %v", s.Mean(), want)
	}
	// The snapshot is a copy: mutating it must not touch the histogram.
	s.Counts[0] = 99
	s.Bounds[0] = 99
	if s2 := h.Snapshot(); s2.Counts[0] != 1 || s2.Bounds[0] != 1 {
		t.Errorf("snapshot aliases histogram state: %+v", s2)
	}
}
