package obs

import (
	"sort"
	"sync"
	"time"
)

// NoLOD marks a trace event that is not tied to one LOD (the filter phase,
// for example).
const NoLOD = -1

// TraceEvent is one aggregated span family of a traced query: every span
// with the same (name, lod) folds into a single event carrying the count,
// the window it was active in, and the summed duration across workers.
// Offsets are microseconds since the query started; Total can exceed the
// window width because workers overlap.
type TraceEvent struct {
	Name string `json:"name"`
	// LOD is the refinement level the spans ran at, or -1 (NoLOD) when the
	// phase is not LOD-specific.
	LOD   int   `json:"lod"`
	Count int64 `json:"count"`
	// FirstUS is the offset of the earliest span start; LastUS the offset
	// of the latest span end.
	FirstUS int64 `json:"first_us"`
	LastUS  int64 `json:"last_us"`
	// TotalUS is the summed span duration across all workers (CPU-time
	// flavored, like the per-phase stats).
	TotalUS int64 `json:"total_us"`
}

type traceKey struct {
	name string
	lod  int
}

// Recorder aggregates span-style events for one traced query. It is safe
// for concurrent use by the query's workers; a nil *Recorder ignores every
// call, so instrumentation points need no guards.
type Recorder struct {
	start time.Time

	mu     sync.Mutex
	events map[traceKey]*TraceEvent
}

// NewRecorder returns a recorder whose event offsets are measured from
// start.
func NewRecorder(start time.Time) *Recorder {
	return &Recorder{start: start, events: make(map[traceKey]*TraceEvent)}
}

// Observe folds one span (begun at t0, lasting dur) into the (name, lod)
// event.
func (r *Recorder) Observe(name string, lod int, t0 time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	first := t0.Sub(r.start).Microseconds()
	last := first + dur.Microseconds()
	r.mu.Lock()
	e := r.slot(name, lod, first)
	e.Count++
	if first < e.FirstUS {
		e.FirstUS = first
	}
	if last > e.LastUS {
		e.LastUS = last
	}
	e.TotalUS += dur.Microseconds()
	r.mu.Unlock()
}

// Count folds n instantaneous occurrences of (name, lod) happening now.
func (r *Recorder) Count(name string, lod int, n int64) {
	if r == nil {
		return
	}
	at := time.Since(r.start).Microseconds()
	r.mu.Lock()
	e := r.slot(name, lod, at)
	e.Count += n
	if at < e.FirstUS {
		e.FirstUS = at
	}
	if at > e.LastUS {
		e.LastUS = at
	}
	r.mu.Unlock()
}

// slot returns (creating if needed) the event for (name, lod). Callers hold
// r.mu.
func (r *Recorder) slot(name string, lod int, first int64) *TraceEvent {
	k := traceKey{name: name, lod: lod}
	e, ok := r.events[k]
	if !ok {
		e = &TraceEvent{Name: name, LOD: lod, FirstUS: first, LastUS: first}
		r.events[k] = e
	}
	return e
}

// Events returns the aggregated timeline, ordered by first activity (ties
// by name then LOD). Nil recorders return nil.
func (r *Recorder) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]TraceEvent, 0, len(r.events))
	for _, e := range r.events {
		out = append(out, *e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstUS != out[j].FirstUS {
			return out[i].FirstUS < out[j].FirstUS
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].LOD < out[j].LOD
	})
	return out
}
