// Package faultinject provides gated fault-injection points for resilience
// testing: the storage, ppvp, and core packages call into it at well-known
// points, and tests (or an operator, via the _3DPRO_FAULTS environment
// variable or the server's -faults flag) arm faults at those points to
// simulate corrupt tile bytes, slow decodes, injected errors, and forced
// panics.
//
// When nothing is armed — the production state — every hook reduces to a
// single atomic load, so the injection points are effectively free.
//
// Known points:
//
//	core.decode    — the engine's per-object decode (Fire: error/panic/sleep)
//	ppvp.decode    — progressive mesh decoding (Fire: error/panic/sleep)
//	storage.tile   — tile file parsing (Corrupt: bit-flips the bytes)
//	shard.send     — coordinator→shard request dispatch (error/panic/sleep)
//	shard.recv     — shard→coordinator response path (error/panic/sleep and
//	                 corrupt, which mangles the encoded response)
//	shard.net.send — the HTTP transport's wire-level request path
//	shard.net.recv — the HTTP transport's wire-level response path (corrupt
//	                 mangles the body bytes before the CRC check, so the
//	                 fault surfaces exactly as a real flaky link would)
//
// Spec strings (_3DPRO_FAULTS, -faults) are comma-separated point=mode items:
//
//	_3DPRO_FAULTS='ppvp.decode=sleep:50ms,core.decode=panic'
//
// with modes error[:msg], panic[:msg], sleep:duration, and corrupt. A mode
// may be prefixed with modifiers: prob:P (fire with probability P per
// opportunity, 0 < P ≤ 1), times:N (disarm after N firings), and delay:DUR
// (sleep DUR before the mode applies — latency composed with any failure),
// in any order:
//
//	_3DPRO_FAULTS='ppvp.decode=prob:0.05:error,core.decode=times:3:panic'
//	_3DPRO_FAULTS='shard.net.send.2=prob:0.3:delay:20ms:error:flaky link'
//
// Probabilistic faults draw from a package-level RNG seeded with 1; chaos
// campaigns call Seed for reproducible runs.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection-point names. Call sites use these constants so tests
// and operators can discover them.
const (
	PointCoreDecode  = "core.decode"
	PointPPVPDecode  = "ppvp.decode"
	PointStorageTile = "storage.tile"
	// Shard-transport fault points (internal/shard): send fires before a
	// request reaches a shard (error/panic/sleep kill or delay the call);
	// recv fires on the response path and additionally supports corrupt,
	// which mangles the encoded response so it fails integrity checking —
	// the wire-level equivalent of a flaky link.
	PointShardSend = "shard.send"
	PointShardRecv = "shard.recv"
	// Wire-level variants of the shard transport points, fired by the HTTP
	// transport around the actual network exchange: net.send before the
	// request leaves the coordinator (delay = link latency, error =
	// blackhole/partition), net.recv on the raw response bytes before the
	// CRC integrity check (corrupt = damaged frame). Both support the
	// per-shard ".N" suffix, so a campaign can partition one worker away
	// while its replicas keep serving.
	PointShardNetSend = "shard.net.send"
	PointShardNetRecv = "shard.net.recv"
)

// EnvVar is the environment variable parsed at process start.
const EnvVar = "_3DPRO_FAULTS"

// ErrInjected is the base error of faults armed in error mode; injected
// errors satisfy errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// Fault describes what happens when an armed point fires.
type Fault struct {
	// Delay, if positive, makes the firing sleep first.
	Delay time.Duration
	// Err, if non-nil, is returned by Fire.
	Err error
	// Panic, if non-empty, makes the firing panic with this message.
	Panic string
	// Corrupt makes Corrupt flip bytes of the data passing through.
	Corrupt bool
	// Hook, if non-nil, is called by Fire after Delay and before
	// Panic/Err are applied; it may block (tests use this to hold a
	// request inside the engine deterministically). A non-nil return
	// short-circuits Fire.
	Hook func() error
	// Times bounds how often the fault fires; 0 means unlimited. The
	// point disarms itself after the last firing.
	Times int
	// Prob, when in (0, 1), makes each opportunity fire with that
	// probability (an opportunity that does not fire consumes no Times
	// budget). 0 (or ≥ 1) fires every time.
	Prob float64
}

var (
	armed  atomic.Int32 // number of armed points; the fast-path gate
	mu     sync.Mutex
	points map[string]*state
	rng    = rand.New(rand.NewSource(1)) // guarded by mu
)

// Seed reseeds the RNG behind probabilistic faults, making a chaos campaign
// reproducible.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

type state struct {
	f    Fault
	left int
}

// Enabled reports whether any point is armed. Call sites may use it to skip
// preparing arguments for a hook; the hooks themselves are already gated.
func Enabled() bool { return armed.Load() > 0 }

// Arm installs (or replaces) the fault at a point.
func Arm(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*state)
	}
	if _, ok := points[point]; !ok {
		armed.Add(1)
	}
	points[point] = &state{f: f, left: f.Times}
}

// Disarm removes the fault at a point, if any.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armed.Add(-1)
	}
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = nil
}

// take consumes one firing of the fault at point, disarming it when its
// Times budget runs out. Probabilistic faults roll the RNG first: a roll
// that does not fire leaves the Times budget untouched.
func take(point string) (Fault, bool) {
	mu.Lock()
	defer mu.Unlock()
	st, ok := points[point]
	if !ok {
		return Fault{}, false
	}
	if st.f.Prob > 0 && st.f.Prob < 1 && rng.Float64() >= st.f.Prob {
		return Fault{}, false
	}
	if st.f.Times > 0 {
		st.left--
		if st.left <= 0 {
			delete(points, point)
			armed.Add(-1)
		}
	}
	return st.f, true
}

// Fire triggers the fault armed at point: it sleeps Delay, runs Hook,
// panics if Panic is set, and returns Err. With nothing armed it is a
// single atomic load.
func Fire(point string) error {
	if armed.Load() == 0 {
		return nil
	}
	f, ok := take(point)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Hook != nil {
		if err := f.Hook(); err != nil {
			return err
		}
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
	return f.Err
}

// Armed reports whether a fault is currently armed at point. Callers that
// must pay real work just to give a fault something to chew on (e.g. the
// shard transport encoding a response so corrupt has bytes to flip) check
// this first and skip the work in the common unarmed case. The check is
// advisory: a concurrent Disarm can win the race, in which case the
// subsequent Fire/FireData is simply a no-op.
func Armed(point string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := points[point]
	return ok
}

// FireData combines Fire and Corrupt for points where both error-style and
// data-corruption faults make sense (the shard transport's receive path):
// it sleeps Delay, runs Hook, panics if Panic is set, returns Err if set,
// and otherwise passes data through a Corrupt fault's bit-flipper. With
// nothing armed it returns (data, nil) after a single atomic load.
func FireData(point string, data []byte) ([]byte, error) {
	if armed.Load() == 0 {
		return data, nil
	}
	f, ok := take(point)
	if !ok {
		return data, nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Hook != nil {
		if err := f.Hook(); err != nil {
			return data, err
		}
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
	if f.Err != nil {
		return data, f.Err
	}
	if !f.Corrupt || len(data) == 0 {
		return data, nil
	}
	return flipBytes(data), nil
}

// Corrupt passes data through the fault armed at point: a Corrupt fault
// returns a bit-flipped copy (the input is never modified); Panic and Delay
// apply as in Fire. With nothing armed it returns data untouched after a
// single atomic load.
func Corrupt(point string, data []byte) []byte {
	if armed.Load() == 0 {
		return data
	}
	f, ok := take(point)
	if !ok {
		return data
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
	if !f.Corrupt || len(data) == 0 {
		return data
	}
	return flipBytes(data)
}

// flipBytes returns a bit-flipped copy of data (the input is never
// modified). Deterministic damage: flip bytes at a few interior offsets,
// enough to defeat any checksum without depending on a RNG.
func flipBytes(data []byte) []byte {
	out := append([]byte(nil), data...)
	for _, at := range []int{len(out) / 4, len(out) / 2, 3 * len(out) / 4} {
		out[at] ^= 0x5A
	}
	return out
}

// Parse arms faults from a spec string: comma-separated point=mode items,
// where mode is error[:msg], panic[:msg], sleep:duration, or corrupt,
// optionally prefixed by prob:P and/or times:N modifiers.
func Parse(spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		point, mode, ok := strings.Cut(item, "=")
		if !ok || point == "" {
			return fmt.Errorf("faultinject: bad spec item %q, want point=mode", item)
		}
		var f Fault
		// Strip leading prob:/times:/delay: modifiers; what remains is the
		// verb.
		for {
			verb, rest, _ := strings.Cut(mode, ":")
			if verb != "prob" && verb != "times" && verb != "delay" {
				break
			}
			val, rest2, ok := strings.Cut(rest, ":")
			if !ok {
				// `prob:0.5` with nothing after the value: the value is
				// the whole rest and no verb remains.
				val, rest2 = rest, ""
			}
			switch verb {
			case "prob":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p <= 0 || p > 1 {
					return fmt.Errorf("faultinject: bad prob %q in %q, want (0,1]", val, item)
				}
				f.Prob = p
			case "times":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return fmt.Errorf("faultinject: bad times %q in %q, want ≥ 1", val, item)
				}
				f.Times = n
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return fmt.Errorf("faultinject: bad delay %q in %q, want a non-negative duration", val, item)
				}
				f.Delay = d
			}
			mode = rest2
		}
		if mode == "" {
			return fmt.Errorf("faultinject: missing mode in %q (modifiers need a mode, e.g. prob:0.1:error)", item)
		}
		verb, arg, _ := strings.Cut(mode, ":")
		switch verb {
		case "error":
			if arg == "" {
				arg = point
			}
			f.Err = fmt.Errorf("%w: %s", ErrInjected, arg)
		case "panic":
			if arg == "" {
				arg = "injected panic at " + point
			}
			f.Panic = arg
		case "sleep":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faultinject: bad sleep duration in %q: %v", item, err)
			}
			f.Delay = d
		case "corrupt":
			f.Corrupt = true
		default:
			return fmt.Errorf("faultinject: unknown mode %q in %q", verb, item)
		}
		Arm(point, f)
	}
	return nil
}

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Parse(spec); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v (ignored)\n", EnvVar, err)
		}
	}
}
