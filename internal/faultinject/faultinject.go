// Package faultinject provides gated fault-injection points for resilience
// testing: the storage, ppvp, and core packages call into it at well-known
// points, and tests (or an operator, via the _3DPRO_FAULTS environment
// variable or the server's -faults flag) arm faults at those points to
// simulate corrupt tile bytes, slow decodes, injected errors, and forced
// panics.
//
// When nothing is armed — the production state — every hook reduces to a
// single atomic load, so the injection points are effectively free.
//
// Known points:
//
//	core.decode   — the engine's per-object decode (Fire: error/panic/sleep)
//	ppvp.decode   — progressive mesh decoding (Fire: error/panic/sleep)
//	storage.tile  — tile file parsing (Corrupt: bit-flips the bytes)
//
// Spec strings (_3DPRO_FAULTS, -faults) are comma-separated point=mode items:
//
//	_3DPRO_FAULTS='ppvp.decode=sleep:50ms,core.decode=panic'
//
// with modes error[:msg], panic[:msg], sleep:duration, and corrupt.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection-point names. Call sites use these constants so tests
// and operators can discover them.
const (
	PointCoreDecode  = "core.decode"
	PointPPVPDecode  = "ppvp.decode"
	PointStorageTile = "storage.tile"
)

// EnvVar is the environment variable parsed at process start.
const EnvVar = "_3DPRO_FAULTS"

// ErrInjected is the base error of faults armed in error mode; injected
// errors satisfy errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// Fault describes what happens when an armed point fires.
type Fault struct {
	// Delay, if positive, makes the firing sleep first.
	Delay time.Duration
	// Err, if non-nil, is returned by Fire.
	Err error
	// Panic, if non-empty, makes the firing panic with this message.
	Panic string
	// Corrupt makes Corrupt flip bytes of the data passing through.
	Corrupt bool
	// Hook, if non-nil, is called by Fire after Delay and before
	// Panic/Err are applied; it may block (tests use this to hold a
	// request inside the engine deterministically). A non-nil return
	// short-circuits Fire.
	Hook func() error
	// Times bounds how often the fault fires; 0 means unlimited. The
	// point disarms itself after the last firing.
	Times int
}

var (
	armed  atomic.Int32 // number of armed points; the fast-path gate
	mu     sync.Mutex
	points map[string]*state
)

type state struct {
	f    Fault
	left int
}

// Enabled reports whether any point is armed. Call sites may use it to skip
// preparing arguments for a hook; the hooks themselves are already gated.
func Enabled() bool { return armed.Load() > 0 }

// Arm installs (or replaces) the fault at a point.
func Arm(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*state)
	}
	if _, ok := points[point]; !ok {
		armed.Add(1)
	}
	points[point] = &state{f: f, left: f.Times}
}

// Disarm removes the fault at a point, if any.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armed.Add(-1)
	}
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = nil
}

// take consumes one firing of the fault at point, disarming it when its
// Times budget runs out.
func take(point string) (Fault, bool) {
	mu.Lock()
	defer mu.Unlock()
	st, ok := points[point]
	if !ok {
		return Fault{}, false
	}
	if st.f.Times > 0 {
		st.left--
		if st.left <= 0 {
			delete(points, point)
			armed.Add(-1)
		}
	}
	return st.f, true
}

// Fire triggers the fault armed at point: it sleeps Delay, runs Hook,
// panics if Panic is set, and returns Err. With nothing armed it is a
// single atomic load.
func Fire(point string) error {
	if armed.Load() == 0 {
		return nil
	}
	f, ok := take(point)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Hook != nil {
		if err := f.Hook(); err != nil {
			return err
		}
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
	return f.Err
}

// Corrupt passes data through the fault armed at point: a Corrupt fault
// returns a bit-flipped copy (the input is never modified); Panic and Delay
// apply as in Fire. With nothing armed it returns data untouched after a
// single atomic load.
func Corrupt(point string, data []byte) []byte {
	if armed.Load() == 0 {
		return data
	}
	f, ok := take(point)
	if !ok {
		return data
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
	if !f.Corrupt || len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	// Deterministic damage: flip bytes at a few interior offsets, enough to
	// defeat any checksum without depending on a RNG.
	for _, at := range []int{len(out) / 4, len(out) / 2, 3 * len(out) / 4} {
		out[at] ^= 0x5A
	}
	return out
}

// Parse arms faults from a spec string: comma-separated point=mode items,
// where mode is error[:msg], panic[:msg], sleep:duration, or corrupt.
func Parse(spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		point, mode, ok := strings.Cut(item, "=")
		if !ok || point == "" {
			return fmt.Errorf("faultinject: bad spec item %q, want point=mode", item)
		}
		verb, arg, _ := strings.Cut(mode, ":")
		var f Fault
		switch verb {
		case "error":
			if arg == "" {
				arg = point
			}
			f.Err = fmt.Errorf("%w: %s", ErrInjected, arg)
		case "panic":
			if arg == "" {
				arg = "injected panic at " + point
			}
			f.Panic = arg
		case "sleep":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faultinject: bad sleep duration in %q: %v", item, err)
			}
			f.Delay = d
		case "corrupt":
			f.Corrupt = true
		default:
			return fmt.Errorf("faultinject: unknown mode %q in %q", verb, item)
		}
		Arm(point, f)
	}
	return nil
}

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Parse(spec); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v (ignored)\n", EnvVar, err)
		}
	}
}
