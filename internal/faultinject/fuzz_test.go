package faultinject

import (
	"strings"
	"testing"
	"time"
)

// FuzzParse throws arbitrary spec strings at the fault grammar. Invariants:
// Parse never panics, a rejected spec arms nothing beyond what earlier
// (valid) items already armed, and an accepted spec arms only points named
// in it. Sleep-class values are capped by construction of the corpus, not
// the fuzzer, so Fire is never called here — only the parser runs.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"core.decode=error",
		"ppvp.decode=sleep:50ms,core.decode=panic",
		"shard.send=times:2:error:shard unreachable,shard.recv=corrupt",
		"shard.net.send.2=prob:0.3:delay:20ms:error:flaky link",
		"shard.net.recv=delay:5ms:corrupt",
		"p=prob:0.05:times:3:panic:oh no",
		"p=delay:10ms",
		"p=prob:1.5:error",
		"p=times:0:error",
		"p=delay:-1ms:error",
		"p=launch",
		"noequals",
		" a=error , , b=corrupt ",
		"=error",
		"p=prob:0.5:times:2",
		"p=delay:9999h:error",
		"p=sleep:fast",
		strings.Repeat("p=error,", 64),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		defer Reset()
		err := Parse(spec)
		mu.Lock()
		n := len(points)
		var totalDelay time.Duration
		for _, st := range points {
			if st.f.Delay < 0 {
				t.Errorf("Parse(%q) armed a negative delay %v", spec, st.f.Delay)
			}
			totalDelay += st.f.Delay
			if st.f.Prob < 0 || st.f.Prob > 1 {
				t.Errorf("Parse(%q) armed prob %v outside [0,1]", spec, st.f.Prob)
			}
			if st.f.Times < 0 {
				t.Errorf("Parse(%q) armed negative times %d", spec, st.f.Times)
			}
		}
		mu.Unlock()
		_ = totalDelay
		if err == nil && n == 0 && strings.ContainsRune(spec, '=') {
			// Accepted a spec with an item shape yet armed nothing: fine
			// only when every item was blank/whitespace.
			for _, item := range strings.Split(spec, ",") {
				if strings.TrimSpace(item) != "" {
					t.Errorf("Parse(%q) accepted non-blank items but armed nothing", spec)
					break
				}
			}
		}
		if int(armed.Load()) != n {
			t.Errorf("Parse(%q): armed count %d != points %d", spec, armed.Load(), n)
		}
	})
}
