package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with nothing armed")
	}
	if err := Fire("core.decode"); err != nil {
		t.Fatalf("Fire with nothing armed: %v", err)
	}
	data := []byte("hello")
	if out := Corrupt("storage.tile", data); !bytes.Equal(out, data) {
		t.Fatalf("Corrupt with nothing armed changed data: %q", out)
	}
}

func TestErrorFaultAndTimes(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Err: errors.New("boom"), Times: 2})
	if !Enabled() {
		t.Fatal("not enabled after Arm")
	}
	for i := 0; i < 2; i++ {
		if err := Fire("p"); err == nil || err.Error() != "boom" {
			t.Fatalf("firing %d: %v", i, err)
		}
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("fault should have disarmed after 2 firings: %v", err)
	}
	if Enabled() {
		t.Fatal("still enabled after self-disarm")
	}
}

func TestPanicFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Panic: "kaboom", Times: 1})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic")
		}
	}()
	Fire("p")
}

func TestSleepFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Delay: 30 * time.Millisecond, Times: 1})
	t0 := time.Now()
	if err := Fire("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
}

func TestHookFault(t *testing.T) {
	t.Cleanup(Reset)
	called := false
	Arm("p", Fault{Hook: func() error { called = true; return errors.New("from hook") }})
	if err := Fire("p"); err == nil || err.Error() != "from hook" {
		t.Fatalf("hook error: %v", err)
	}
	if !called {
		t.Fatal("hook not called")
	}
}

func TestCorruptFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Corrupt: true})
	data := []byte("a perfectly healthy tile file payload")
	orig := append([]byte(nil), data...)
	out := Corrupt("p", data)
	if bytes.Equal(out, data) {
		t.Fatal("data not corrupted")
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("input modified in place")
	}
}

func TestParse(t *testing.T) {
	t.Cleanup(Reset)
	spec := "a=error:bad, b=sleep:1ms ,c=panic:oh no,d=corrupt"
	if err := Parse(spec); err != nil {
		t.Fatal(err)
	}
	if err := Fire("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a: %v", err)
	}
	if err := Fire("b"); err != nil {
		t.Fatalf("b: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("c did not panic")
			}
		}()
		Fire("c")
	}()
	if out := Corrupt("d", []byte("0123456789")); bytes.Equal(out, []byte("0123456789")) {
		t.Error("d did not corrupt")
	}

	for _, bad := range []string{"noequals", "x=launch", "y=sleep:fast"} {
		if err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseWhitespaceOnlyItems(t *testing.T) {
	t.Cleanup(Reset)
	// Whitespace-only and empty items are skipped, not errors.
	if err := Parse("  ,\t, ,"); err != nil {
		t.Fatalf("whitespace-only spec rejected: %v", err)
	}
	if Enabled() {
		t.Fatal("whitespace-only spec armed something")
	}
	if err := Parse(" a=error , , b=corrupt "); err != nil {
		t.Fatalf("spec with blank items rejected: %v", err)
	}
	if err := Fire("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a not armed: %v", err)
	}
}

func TestParseDuplicatePointLastWins(t *testing.T) {
	t.Cleanup(Reset)
	if err := Parse("p=error:first,p=error:second"); err != nil {
		t.Fatal(err)
	}
	err := Fire("p")
	if err == nil || !strings.Contains(err.Error(), "second") {
		t.Fatalf("duplicate point did not take the last spec: %v", err)
	}
	// Only one armed point, not two.
	Disarm("p")
	if Enabled() {
		t.Fatal("duplicate arming leaked an armed count")
	}
}

func TestParseTimesModifier(t *testing.T) {
	t.Cleanup(Reset)
	if err := Parse("p=times:2:error:boom"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Fire("p"); err == nil {
			t.Fatalf("firing %d returned nil", i)
		}
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("times:2 fault fired a third time: %v", err)
	}
}

func TestParseProbModifier(t *testing.T) {
	t.Cleanup(Reset)
	Seed(42)
	if err := Parse("p=prob:0.5:error"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 1000; i++ {
		if Fire("p") != nil {
			fired++
		}
	}
	if fired < 350 || fired > 650 {
		t.Fatalf("prob:0.5 fired %d/1000 times", fired)
	}
	// Reseeding reproduces the exact sequence.
	Seed(7)
	var seq1 []bool
	for i := 0; i < 50; i++ {
		seq1 = append(seq1, Fire("p") != nil)
	}
	Seed(7)
	for i, want := range seq1 {
		if got := Fire("p") != nil; got != want {
			t.Fatalf("firing %d not reproducible after Seed: got %v want %v", i, got, want)
		}
	}
}

func TestParseProbTimesCombined(t *testing.T) {
	t.Cleanup(Reset)
	Seed(3)
	// Misses must not consume the times budget: exactly 2 firings happen
	// even though the probability skips many opportunities.
	if err := Parse("p=prob:0.2:times:2:error"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 500; i++ {
		if Fire("p") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("prob+times fired %d times, want exactly 2", fired)
	}
	if Enabled() {
		t.Fatal("point still armed after times budget spent")
	}
}

func TestParseModifierErrors(t *testing.T) {
	t.Cleanup(Reset)
	for _, bad := range []string{
		"p=prob:error",       // prob value missing / not a number
		"p=prob:0:error",     // prob out of range
		"p=prob:1.5:error",   // prob out of range
		"p=times:0:error",    // times < 1
		"p=times:x:error",    // times not a number
		"p=prob:0.5",         // modifier with no mode
		"p=times:3",          // modifier with no mode
		"p=prob:0.5:times:2", // two modifiers, still no mode
		"p=delay:error",      // delay value not a duration
		"p=delay:-5ms:error", // negative delay
		"p=delay:10ms",       // delay with no mode (pure latency is sleep:DUR)
		"p=delay:10ms:prob:0.5", // delay+prob, still no mode
	} {
		if err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestParseDelayModifier proves delay:DUR composes with a failure mode: the
// firing sleeps first, then the mode applies.
func TestParseDelayModifier(t *testing.T) {
	t.Cleanup(Reset)
	if err := Parse("p=delay:30ms:error:slow link down"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	err := Fire("p")
	if err == nil || !strings.Contains(err.Error(), "slow link down") {
		t.Fatalf("delayed error mode: %v", err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("delay:30ms slept only %v before the error", d)
	}
}

// TestParseDelayCorrupt composes wire latency with wire damage — the
// corrupt-slow-link shape the HTTP chaos campaign arms.
func TestParseDelayCorrupt(t *testing.T) {
	t.Cleanup(Reset)
	if err := Parse("p=delay:20ms:corrupt"); err != nil {
		t.Fatal(err)
	}
	data := []byte("response frame on a damaged slow link")
	t0 := time.Now()
	out, err := FireData("p", data)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out, data) {
		t.Fatal("delay:corrupt did not corrupt")
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("delay:20ms slept only %v", d)
	}
}

// TestParseDelayProbTimes stacks all three modifiers: the delay applies
// only to the firings the probability admits, and the times budget counts
// firings, not opportunities.
func TestParseDelayProbTimes(t *testing.T) {
	t.Cleanup(Reset)
	Seed(11)
	if err := Parse("p=prob:0.5:delay:1ms:times:2:error"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 200; i++ {
		if Fire("p") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("prob+delay+times fired %d times, want exactly 2", fired)
	}
	if Enabled() {
		t.Fatal("point still armed after times budget spent")
	}
}

func TestParseNetPoints(t *testing.T) {
	t.Cleanup(Reset)
	if err := Parse("shard.net.send.1=error:partitioned,shard.net.recv=corrupt"); err != nil {
		t.Fatal(err)
	}
	if !Armed(PointShardNetSend+".1") || !Armed(PointShardNetRecv) {
		t.Fatal("net points not armed by Parse")
	}
	if err := Fire(PointShardNetSend + ".1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("shard.net.send.1: %v", err)
	}
	out, err := FireData(PointShardNetRecv, []byte("wire frame bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out, []byte("wire frame bytes")) {
		t.Fatal("net.recv corrupt did not fire")
	}
}

// TestCorruptWithNonCorruptFault arms a non-corrupt fault at a point whose
// call site uses Corrupt: the data must pass through untouched.
func TestCorruptWithNonCorruptFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Err: errors.New("boom")})
	data := []byte("pristine tile bytes")
	if out := Corrupt("p", data); !bytes.Equal(out, data) {
		t.Fatalf("error-mode fault corrupted data at a Corrupt point: %q", out)
	}
	Reset()
	Arm("p", Fault{Delay: time.Millisecond, Times: 1})
	if out := Corrupt("p", data); !bytes.Equal(out, data) {
		t.Fatalf("sleep-mode fault corrupted data: %q", out)
	}
}

func TestArmed(t *testing.T) {
	t.Cleanup(Reset)
	if Armed("shard.recv") {
		t.Fatal("armed with nothing installed")
	}
	Arm(PointShardRecv, Fault{Corrupt: true})
	if !Armed(PointShardRecv) {
		t.Fatal("not armed after Arm")
	}
	if Armed(PointShardSend) {
		t.Fatal("neighboring point reported armed")
	}
	Disarm(PointShardRecv)
	if Armed(PointShardRecv) {
		t.Fatal("still armed after Disarm")
	}
}

func TestFireDataDisabledIsNoop(t *testing.T) {
	Reset()
	data := []byte("response bytes")
	out, err := FireData(PointShardRecv, data)
	if err != nil {
		t.Fatalf("FireData with nothing armed: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("FireData with nothing armed changed data: %q", out)
	}
}

func TestFireDataErrorMode(t *testing.T) {
	t.Cleanup(Reset)
	Arm(PointShardRecv, Fault{Err: errors.New("link down"), Times: 1})
	if _, err := FireData(PointShardRecv, []byte("x")); err == nil || err.Error() != "link down" {
		t.Fatalf("err = %v, want link down", err)
	}
	// Times budget consumed: the next call passes through.
	out, err := FireData(PointShardRecv, []byte("x"))
	if err != nil || string(out) != "x" {
		t.Fatalf("after self-disarm: %q, %v", out, err)
	}
}

func TestFireDataCorruptMode(t *testing.T) {
	t.Cleanup(Reset)
	Arm(PointShardRecv, Fault{Corrupt: true})
	data := []byte("a JSON-encoded shard response travelling the wire")
	orig := append([]byte(nil), data...)
	out, err := FireData(PointShardRecv, data)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out, data) {
		t.Fatal("data not corrupted")
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("input modified in place")
	}
	// Same damage as Corrupt: deterministic offsets, so the two entry
	// points are interchangeable for a given payload.
	if want := Corrupt(PointShardRecv, orig); !bytes.Equal(out, want) {
		t.Fatalf("FireData damage %q differs from Corrupt damage %q", out, want)
	}
}

func TestFireDataPanicMode(t *testing.T) {
	t.Cleanup(Reset)
	Arm(PointShardSend, Fault{Panic: "wire fire", Times: 1})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic")
		}
	}()
	FireData(PointShardSend, []byte("x"))
}

func TestParseShardPoints(t *testing.T) {
	t.Cleanup(Reset)
	if err := Parse("shard.send=times:2:error:shard unreachable,shard.recv=corrupt"); err != nil {
		t.Fatal(err)
	}
	if !Armed(PointShardSend) || !Armed(PointShardRecv) {
		t.Fatal("shard points not armed by Parse")
	}
	if err := Fire(PointShardSend); !errors.Is(err, ErrInjected) {
		t.Fatalf("shard.send: %v", err)
	}
	if !strings.Contains(Fire(PointShardSend).Error(), "shard unreachable") {
		t.Fatal("error message lost")
	}
	out, err := FireData(PointShardRecv, []byte("payload bytes here"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out, []byte("payload bytes here")) {
		t.Fatal("recv corrupt did not fire")
	}
}
