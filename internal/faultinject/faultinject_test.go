package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with nothing armed")
	}
	if err := Fire("core.decode"); err != nil {
		t.Fatalf("Fire with nothing armed: %v", err)
	}
	data := []byte("hello")
	if out := Corrupt("storage.tile", data); !bytes.Equal(out, data) {
		t.Fatalf("Corrupt with nothing armed changed data: %q", out)
	}
}

func TestErrorFaultAndTimes(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Err: errors.New("boom"), Times: 2})
	if !Enabled() {
		t.Fatal("not enabled after Arm")
	}
	for i := 0; i < 2; i++ {
		if err := Fire("p"); err == nil || err.Error() != "boom" {
			t.Fatalf("firing %d: %v", i, err)
		}
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("fault should have disarmed after 2 firings: %v", err)
	}
	if Enabled() {
		t.Fatal("still enabled after self-disarm")
	}
}

func TestPanicFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Panic: "kaboom", Times: 1})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic")
		}
	}()
	Fire("p")
}

func TestSleepFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Delay: 30 * time.Millisecond, Times: 1})
	t0 := time.Now()
	if err := Fire("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
}

func TestHookFault(t *testing.T) {
	t.Cleanup(Reset)
	called := false
	Arm("p", Fault{Hook: func() error { called = true; return errors.New("from hook") }})
	if err := Fire("p"); err == nil || err.Error() != "from hook" {
		t.Fatalf("hook error: %v", err)
	}
	if !called {
		t.Fatal("hook not called")
	}
}

func TestCorruptFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Fault{Corrupt: true})
	data := []byte("a perfectly healthy tile file payload")
	orig := append([]byte(nil), data...)
	out := Corrupt("p", data)
	if bytes.Equal(out, data) {
		t.Fatal("data not corrupted")
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("input modified in place")
	}
}

func TestParse(t *testing.T) {
	t.Cleanup(Reset)
	spec := "a=error:bad, b=sleep:1ms ,c=panic:oh no,d=corrupt"
	if err := Parse(spec); err != nil {
		t.Fatal(err)
	}
	if err := Fire("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a: %v", err)
	}
	if err := Fire("b"); err != nil {
		t.Fatalf("b: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("c did not panic")
			}
		}()
		Fire("c")
	}()
	if out := Corrupt("d", []byte("0123456789")); bytes.Equal(out, []byte("0123456789")) {
		t.Error("d did not corrupt")
	}

	for _, bad := range []string{"noequals", "x=launch", "y=sleep:fast"} {
		if err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
