package geom

import (
	"math/rand"
	"testing"
)

// unitCubeTris returns the 12 CCW-oriented triangles of the axis-aligned
// cube [0,1]^3 with outward normals.
func unitCubeTris() []Triangle {
	v := []Vec3{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, // bottom z=0
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}, // top z=1
	}
	quads := [][4]int{
		{3, 2, 1, 0}, // bottom (normal -Z)
		{4, 5, 6, 7}, // top (+Z)
		{0, 1, 5, 4}, // front (-Y)
		{2, 3, 7, 6}, // back (+Y)
		{1, 2, 6, 5}, // right (+X)
		{3, 0, 4, 7}, // left (-X)
	}
	var tris []Triangle
	for _, q := range quads {
		tris = append(tris,
			Tri(v[q[0]], v[q[1]], v[q[2]]),
			Tri(v[q[0]], v[q[2]], v[q[3]]))
	}
	return tris
}

func TestRayIntersectTriangle(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	r := Ray{Origin: V(0.3, 0.3, -1), Dir: V(0, 0, 1)}
	tt, ok := r.IntersectTriangle(tr)
	if !ok || tt != 1 {
		t.Errorf("hit = %v,%v, want t=1,true", tt, ok)
	}

	// Miss.
	r2 := Ray{Origin: V(5, 5, -1), Dir: V(0, 0, 1)}
	if _, ok := r2.IntersectTriangle(tr); ok {
		t.Error("miss reported as hit")
	}

	// Ray pointing away.
	r3 := Ray{Origin: V(0.3, 0.3, -1), Dir: V(0, 0, -1)}
	if _, ok := r3.IntersectTriangle(tr); ok {
		t.Error("backward ray reported as hit")
	}
}

func TestRayIntersectBox(t *testing.T) {
	b := box(0, 0, 0, 1, 1, 1)
	if !(Ray{Origin: V(-1, 0.5, 0.5), Dir: V(1, 0, 0)}).IntersectBox(b) {
		t.Error("head-on ray missed box")
	}
	if (Ray{Origin: V(-1, 5, 0.5), Dir: V(1, 0, 0)}).IntersectBox(b) {
		t.Error("offset ray hit box")
	}
	if (Ray{Origin: V(2, 0.5, 0.5), Dir: V(1, 0, 0)}).IntersectBox(b) {
		t.Error("ray pointing away hit box")
	}
	// Origin inside the box.
	if !(Ray{Origin: V(0.5, 0.5, 0.5), Dir: V(0, 1, 0)}).IntersectBox(b) {
		t.Error("ray from inside missed box")
	}
	// Axis-parallel, zero direction component within slab.
	if !(Ray{Origin: V(0.5, -1, 0.5), Dir: V(0, 1, 0)}).IntersectBox(b) {
		t.Error("axis-parallel ray missed box")
	}
}

func TestPointInTrianglesCube(t *testing.T) {
	tris := unitCubeTris()
	inside := []Vec3{
		{0.5, 0.5, 0.5}, {0.1, 0.1, 0.1}, {0.9, 0.9, 0.9}, {0.5, 0.2, 0.8},
	}
	outside := []Vec3{
		{1.5, 0.5, 0.5}, {-0.1, 0.5, 0.5}, {0.5, 0.5, 2}, {2, 2, 2}, {-1, -1, -1},
	}
	for _, p := range inside {
		if !PointInTriangles(p, tris) {
			t.Errorf("point %v should be inside the cube", p)
		}
	}
	for _, p := range outside {
		if PointInTriangles(p, tris) {
			t.Errorf("point %v should be outside the cube", p)
		}
	}
}

// Property: random points classified against the cube must match the
// analytic box containment (excluding a thin shell near the boundary where
// robustness is not promised).
func TestPointInTrianglesMatchesBox(t *testing.T) {
	tris := unitCubeTris()
	b := box(0, 0, 0, 1, 1, 1)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		p := V(rng.Float64()*3-1, rng.Float64()*3-1, rng.Float64()*3-1)
		if b.Expand(-1e-6).ContainsPoint(p) != b.ContainsPoint(p) {
			continue // too close to the boundary, skip
		}
		nearBoundary := b.Expand(1e-6).ContainsPoint(p) && !b.Expand(-1e-6).ContainsPoint(p)
		if nearBoundary {
			continue
		}
		want := b.ContainsPoint(p)
		if got := PointInTriangles(p, tris); got != want {
			t.Fatalf("point %v: got inside=%v, want %v", p, got, want)
		}
	}
}
