package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestTriTriIntersectBasic(t *testing.T) {
	// Two triangles crossing like a plus sign.
	t1 := Tri(V(-1, 0, -1), V(1, 0, -1), V(0, 0, 1))
	t2 := Tri(V(0, -1, -1), V(0, 1, -1), V(0, 0, 1))
	if !TriTriIntersect(t1, t2) {
		t.Error("crossing triangles reported disjoint")
	}

	// Far apart.
	t3 := Tri(V(10, 10, 10), V(11, 10, 10), V(10, 11, 10))
	if TriTriIntersect(t1, t3) {
		t.Error("distant triangles reported intersecting")
	}

	// Parallel planes, no intersection.
	t4 := Tri(V(-1, 0, 0), V(1, 0, 0), V(0, 1, 0))
	t5 := Tri(V(-1, 0, 1), V(1, 0, 1), V(0, 1, 1))
	if TriTriIntersect(t4, t5) {
		t.Error("parallel offset triangles reported intersecting")
	}
}

func TestTriTriIntersectCoplanar(t *testing.T) {
	// Overlapping coplanar triangles.
	t1 := Tri(V(0, 0, 0), V(4, 0, 0), V(0, 4, 0))
	t2 := Tri(V(1, 1, 0), V(5, 1, 0), V(1, 5, 0))
	if !TriTriIntersect(t1, t2) {
		t.Error("overlapping coplanar triangles reported disjoint")
	}

	// Coplanar, one contains the other.
	t3 := Tri(V(1, 1, 0), V(2, 1, 0), V(1, 2, 0))
	if !TriTriIntersect(t1, t3) {
		t.Error("contained coplanar triangle reported disjoint")
	}

	// Coplanar, disjoint.
	t4 := Tri(V(10, 10, 0), V(12, 10, 0), V(10, 12, 0))
	if TriTriIntersect(t1, t4) {
		t.Error("disjoint coplanar triangles reported intersecting")
	}
}

func TestTriTriIntersectTouching(t *testing.T) {
	// Sharing exactly one vertex.
	t1 := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	t2 := Tri(V(0, 0, 0), V(-1, 0, 1), V(0, -1, 1))
	if !TriTriIntersect(t1, t2) {
		t.Error("vertex-touching triangles reported disjoint")
	}
	// One vertex of t2 piercing t1's plane through its interior.
	t3 := Tri(V(0.2, 0.2, -1), V(0.3, 0.2, 1), V(0.2, 0.3, 1))
	if !TriTriIntersect(t1, t3) {
		t.Error("piercing triangle reported disjoint")
	}
}

func TestTriTriIntersectSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := randomTriangle(rng, 2)
		b := randomTriangle(rng, 2)
		if a.IsDegenerate() || b.IsDegenerate() {
			continue
		}
		if TriTriIntersect(a, b) != TriTriIntersect(b, a) {
			t.Fatalf("asymmetric result for %v vs %v", a, b)
		}
	}
}

func TestTriTriDistBasic(t *testing.T) {
	t1 := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	t2 := Tri(V(0, 0, 2), V(1, 0, 2), V(0, 1, 2))
	if got := TriTriDist(t1, t2); math.Abs(got-2) > 1e-12 {
		t.Errorf("parallel dist = %v, want 2", got)
	}

	// Intersecting triangles have zero distance.
	t3 := Tri(V(0.2, 0.2, -1), V(0.3, 0.2, 1), V(0.2, 0.3, 1))
	if got := TriTriDist(t1, t3); got != 0 {
		t.Errorf("intersecting dist = %v, want 0", got)
	}

	// Closest features are edges.
	t4 := Tri(V(2, -1, 1), V(2, 1, 1), V(3, 0, 1))
	want := math.Sqrt(1 + 1) // from edge x=1 side of t1 to vertex region (2,0,1)
	got := TriTriDist(t1, t4)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("edge-edge dist = %v, want %v", got, want)
	}
}

// Property: distance is symmetric, non-negative, and no sampled point pair
// is closer than the reported distance.
func TestTriTriDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		a := randomTriangle(rng, 3)
		b := randomTriangle(rng, 3)
		if a.IsDegenerate() || b.IsDegenerate() {
			continue
		}
		d := TriTriDist(a, b)
		if d < 0 {
			t.Fatal("negative distance")
		}
		if math.Abs(d-TriTriDist(b, a)) > 1e-9 {
			t.Fatal("asymmetric distance")
		}
		for j := 0; j < 40; j++ {
			u := rng.Float64()
			v := rng.Float64() * (1 - u)
			p := a.A.Mul(1 - u - v).Add(a.B.Mul(u)).Add(a.C.Mul(v))
			u2 := rng.Float64()
			v2 := rng.Float64() * (1 - u2)
			q := b.A.Mul(1 - u2 - v2).Add(b.B.Mul(u2)).Add(b.C.Mul(v2))
			if got := p.Dist(q); got < d-1e-9 {
				t.Fatalf("sampled pair dist %v < reported %v", got, d)
			}
		}
	}
}

// Property: separated triangles (positive distance) must not be reported as
// intersecting, and the distance must drop to 0 when we translate one
// triangle onto the other.
func TestTriTriDistConsistentWithIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		a := randomTriangle(rng, 2)
		b := randomTriangle(rng, 2)
		if a.IsDegenerate() || b.IsDegenerate() {
			continue
		}
		inter := TriTriIntersect(a, b)
		d := TriTriDist(a, b)
		if inter && d != 0 {
			t.Fatalf("intersecting but dist=%v", d)
		}
		if !inter && d <= 0 {
			t.Fatalf("disjoint but dist=%v", d)
		}
	}
}

func BenchmarkTriTriIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tris := make([]Triangle, 256)
	for i := range tris {
		tris[i] = randomTriangle(rng, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TriTriIntersect(tris[i%256], tris[(i+7)%256])
	}
}

func BenchmarkTriTriDist(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tris := make([]Triangle, 256)
	for i := range tris {
		tris[i] = randomTriangle(rng, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TriTriDist2(tris[i%256], tris[(i+7)%256])
	}
}
