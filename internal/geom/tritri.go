package geom

import "math"

// TriTriIntersect reports whether triangles t1 and t2 intersect (share at
// least one point). It implements Möller's interval-overlap test ("A Fast
// Triangle-Triangle Intersection Test", 1997) with a coplanar fallback.
//
// This is the primitive operation evaluated pairwise in the refinement step
// of intersection joins; the engine calls it millions of times, so it avoids
// allocation entirely.
func TriTriIntersect(t1, t2 Triangle) bool {
	// Degenerate (zero-area) triangles have no usable plane; the interval
	// test would misclassify them as coplanar. Since a degenerate triangle
	// has no interior to penetrate, the feature-pair distance is exact:
	// they intersect iff it is zero.
	if t1.IsDegenerate() || t2.IsDegenerate() {
		return featureDist2(t1, t2) == 0
	}

	// Plane of t2: n2 · x + d2 = 0.
	n2 := t2.Normal()
	d2 := -n2.Dot(t2.A)

	// Signed distances of t1's vertices to t2's plane.
	du0 := n2.Dot(t1.A) + d2
	du1 := n2.Dot(t1.B) + d2
	du2 := n2.Dot(t1.C) + d2

	// Robustness: treat near-zero distances as zero (scaled tolerance).
	eps := 1e-12 * n2.Len()
	if math.Abs(du0) < eps {
		du0 = 0
	}
	if math.Abs(du1) < eps {
		du1 = 0
	}
	if math.Abs(du2) < eps {
		du2 = 0
	}
	du0du1 := du0 * du1
	du0du2 := du0 * du2
	if du0du1 > 0 && du0du2 > 0 {
		return false // t1 entirely on one side of t2's plane
	}

	// Plane of t1.
	n1 := t1.Normal()
	d1 := -n1.Dot(t1.A)
	dv0 := n1.Dot(t2.A) + d1
	dv1 := n1.Dot(t2.B) + d1
	dv2 := n1.Dot(t2.C) + d1
	eps = 1e-12 * n1.Len()
	if math.Abs(dv0) < eps {
		dv0 = 0
	}
	if math.Abs(dv1) < eps {
		dv1 = 0
	}
	if math.Abs(dv2) < eps {
		dv2 = 0
	}
	dv0dv1 := dv0 * dv1
	dv0dv2 := dv0 * dv2
	if dv0dv1 > 0 && dv0dv2 > 0 {
		return false
	}

	// Direction of the intersection line of the two planes.
	dir := n1.Cross(n2)

	if dir.Len2() <= Epsilon*math.Max(n1.Len2(), n2.Len2()) {
		// Planes are (nearly) parallel. If all plane distances are zero the
		// triangles are coplanar; otherwise they cannot intersect.
		if du0 == 0 && du1 == 0 && du2 == 0 {
			return coplanarTriTri(n1, t1, t2)
		}
		return false
	}

	// Project onto the dominant axis of dir.
	axis := 0
	m := math.Abs(dir.X)
	if math.Abs(dir.Y) > m {
		axis, m = 1, math.Abs(dir.Y)
	}
	if math.Abs(dir.Z) > m {
		axis = 2
	}

	vp0 := t1.A.Component(axis)
	vp1 := t1.B.Component(axis)
	vp2 := t1.C.Component(axis)
	up0 := t2.A.Component(axis)
	up1 := t2.B.Component(axis)
	up2 := t2.C.Component(axis)

	isect1lo, isect1hi, ok1 := computeIntervals(vp0, vp1, vp2, du0, du1, du2, du0du1, du0du2)
	if !ok1 {
		return coplanarTriTri(n1, t1, t2)
	}
	isect2lo, isect2hi, ok2 := computeIntervals(up0, up1, up2, dv0, dv1, dv2, dv0dv1, dv0dv2)
	if !ok2 {
		return coplanarTriTri(n1, t1, t2)
	}

	if isect1lo > isect1hi {
		isect1lo, isect1hi = isect1hi, isect1lo
	}
	if isect2lo > isect2hi {
		isect2lo, isect2hi = isect2hi, isect2lo
	}
	return isect1hi >= isect2lo && isect2hi >= isect1lo
}

// computeIntervals returns the projection interval of a triangle on the
// plane-intersection line. ok is false when the triangle is coplanar with
// the other triangle's plane.
func computeIntervals(vv0, vv1, vv2, d0, d1, d2, d0d1, d0d2 float64) (lo, hi float64, ok bool) {
	switch {
	case d0d1 > 0:
		// d0, d1 same side, d2 on the other (or on the plane).
		return isectEnd(vv2, vv0, d2, d0), isectEnd(vv2, vv1, d2, d1), true
	case d0d2 > 0:
		return isectEnd(vv1, vv0, d1, d0), isectEnd(vv1, vv2, d1, d2), true
	case d1*d2 > 0 || d0 != 0:
		return isectEnd(vv0, vv1, d0, d1), isectEnd(vv0, vv2, d0, d2), true
	case d1 != 0:
		return isectEnd(vv1, vv0, d1, d0), isectEnd(vv1, vv2, d1, d2), true
	case d2 != 0:
		return isectEnd(vv2, vv0, d2, d0), isectEnd(vv2, vv1, d2, d1), true
	default:
		return 0, 0, false // coplanar
	}
}

// isectEnd computes one endpoint of the projection interval: the crossing
// parameter between the isolated vertex (v0, plane distance d0) and another
// vertex (v1, plane distance d1).
func isectEnd(v0, v1, d0, d1 float64) float64 {
	return v0 + (v1-v0)*d0/(d0-d1)
}

// segCrossesFace reports whether segment ab crosses the face of tri
// (endpoints on opposite sides of the plane, crossing point inside the
// triangle). Degenerate triangles have no face to cross.
func segCrossesFace(a, b Vec3, tri Triangle) bool {
	n := tri.Normal()
	n2 := n.Len2()
	if n2 == 0 {
		return false
	}
	da := n.Dot(a.Sub(tri.A))
	db := n.Dot(b.Sub(tri.A))
	//lint:ignore floateq with da*db <= 0, da == db only when both are zero (coplanar segment) or underflow-equal; the exact test also guards the da/(da-db) division below
	if da*db > 0 || da == db {
		return false
	}
	p := a.Lerp(b, da/(da-db))
	return tri.ClosestPointToPoint(p).Dist2(p) <= 1e-24*n2
}

// coplanarTriTri handles the coplanar case: project both triangles onto the
// dominant plane of n and run 2D edge tests plus containment checks.
func coplanarTriTri(n Vec3, t1, t2 Triangle) bool {
	// Choose projection axes: drop the dominant normal component.
	var i0, i1 int
	ax, ay, az := math.Abs(n.X), math.Abs(n.Y), math.Abs(n.Z)
	switch {
	case ax >= ay && ax >= az:
		i0, i1 = 1, 2
	case ay >= az:
		i0, i1 = 0, 2
	default:
		i0, i1 = 0, 1
	}

	p := [3][2]float64{
		{t1.A.Component(i0), t1.A.Component(i1)},
		{t1.B.Component(i0), t1.B.Component(i1)},
		{t1.C.Component(i0), t1.C.Component(i1)},
	}
	q := [3][2]float64{
		{t2.A.Component(i0), t2.A.Component(i1)},
		{t2.B.Component(i0), t2.B.Component(i1)},
		{t2.C.Component(i0), t2.C.Component(i1)},
	}

	// Any pair of edges crossing?
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if segSeg2D(p[i], p[(i+1)%3], q[j], q[(j+1)%3]) {
				return true
			}
		}
	}
	// One triangle fully inside the other?
	return pointInTri2D(p[0], q) || pointInTri2D(q[0], p)
}

func segSeg2D(a, b, c, d [2]float64) bool {
	d1 := cross2D(c, d, a)
	d2 := cross2D(c, d, b)
	d3 := cross2D(a, b, c)
	d4 := cross2D(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	if d1 == 0 && onSeg2D(c, d, a) {
		return true
	}
	if d2 == 0 && onSeg2D(c, d, b) {
		return true
	}
	if d3 == 0 && onSeg2D(a, b, c) {
		return true
	}
	if d4 == 0 && onSeg2D(a, b, d) {
		return true
	}
	return false
}

func cross2D(a, b, p [2]float64) float64 {
	return (b[0]-a[0])*(p[1]-a[1]) - (b[1]-a[1])*(p[0]-a[0])
}

func onSeg2D(a, b, p [2]float64) bool {
	return math.Min(a[0], b[0]) <= p[0] && p[0] <= math.Max(a[0], b[0]) &&
		math.Min(a[1], b[1]) <= p[1] && p[1] <= math.Max(a[1], b[1])
}

func pointInTri2D(p [2]float64, t [3][2]float64) bool {
	d1 := cross2D(t[0], t[1], p)
	d2 := cross2D(t[1], t[2], p)
	d3 := cross2D(t[2], t[0], p)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

// TriTriDist returns the minimum distance between two triangles. It is zero
// when they intersect. The computation examines the 6 vertex-to-triangle and
// 9 edge-to-edge candidate pairs, matching the classical approach the paper
// inherits for its distance refinements.
func TriTriDist(t1, t2 Triangle) float64 {
	return math.Sqrt(TriTriDist2(t1, t2))
}

// TriTriDist2 returns the squared minimum distance between two triangles.
func TriTriDist2(t1, t2 Triangle) float64 {
	if TriTriIntersect(t1, t2) {
		return 0
	}
	return featureDist2(t1, t2)
}

// featureDist2 returns the minimum squared distance over the 6
// vertex-triangle and 9 edge-edge feature pairs, plus an explicit
// edge-through-face crossing test. The crossing test is what makes the
// result exact even for degenerate inputs: a needle triangle can pierce
// the other triangle's interior without any vertex or edge pair coming
// close.
func featureDist2(t1, t2 Triangle) float64 {
	for i := 0; i < 3; i++ {
		if segCrossesFace(t1.Vertex(i), t1.Vertex((i+1)%3), t2) ||
			segCrossesFace(t2.Vertex(i), t2.Vertex((i+1)%3), t1) {
			return 0
		}
	}
	best := math.Inf(1)

	// Vertices of t1 against t2 and vice versa.
	for i := 0; i < 3; i++ {
		v := t1.Vertex(i)
		d := t2.ClosestPointToPoint(v).Dist2(v)
		if d < best {
			best = d
		}
		w := t2.Vertex(i)
		d = t1.ClosestPointToPoint(w).Dist2(w)
		if d < best {
			best = d
		}
	}

	// All 9 edge pairs.
	for i := 0; i < 3; i++ {
		e1 := Segment{t1.Vertex(i), t1.Vertex((i + 1) % 3)}
		for j := 0; j < 3; j++ {
			e2 := Segment{t2.Vertex(j), t2.Vertex((j + 1) % 3)}
			_, _, d := e1.ClosestPoints(e2)
			if d < best {
				best = d
			}
		}
	}
	return best
}
