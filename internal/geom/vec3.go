// Package geom provides the 3D geometric primitives and predicates that the
// rest of 3DPro is built on: vectors, axis-aligned boxes, triangles,
// intersection tests, and distance computations.
//
// All coordinates are float64. The package is allocation-free on its hot
// paths (triangle-triangle tests and distances) so it can be called millions
// of times per query during the refinement step.
package geom

import (
	"fmt"
	"math"
)

// Epsilon is the default tolerance used by the predicates in this package.
// Coordinates produced by the data generators are O(1)..O(1e4), so a fixed
// absolute tolerance is adequate.
const Epsilon = 1e-12

// Vec3 is a point or direction in 3D space.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Mul returns v scaled by s.
func (v Vec3) Mul(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared length of v.
func (v Vec3) Len2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Len() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Len2() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Mul(1 / l)
}

// Lerp linearly interpolates between v and w by t (t=0 → v, t=1 → w).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Component returns the i-th component (0=X, 1=Y, 2=Z).
func (v Vec3) Component(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// SetComponent returns a copy of v with the i-th component set to x.
func (v Vec3) SetComponent(i int, x float64) Vec3 {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	default:
		v.Z = x
	}
	return v
}

// ApproxEqual reports whether v and w agree within tol in every component.
func (v Vec3) ApproxEqual(w Vec3, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol &&
		math.Abs(v.Y-w.Y) <= tol &&
		math.Abs(v.Z-w.Z) <= tol
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z)
}
