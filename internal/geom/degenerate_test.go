package geom

import (
	"math"
	"math/rand"
	"testing"
)

// Degenerate triangles (needles, points, collinear slivers) show up in
// damaged meshes; the predicates must stay sound on them (a needle far away
// must not report an intersection — this exact false positive once broke
// the engine's accelerator-consistency tests).

func needle(a, b Vec3) Triangle {
	mid := a.Lerp(b, 0.5)
	return Tri(a, mid, b)
}

func TestDegenerateTriTriIntersectFarApart(t *testing.T) {
	solid := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	farNeedle := needle(V(10, 10, 10), V(10, 11, 10))
	if TriTriIntersect(solid, farNeedle) {
		t.Error("distant needle reported intersecting")
	}
	if TriTriIntersect(farNeedle, solid) {
		t.Error("distant needle reported intersecting (swapped)")
	}
	point := Tri(V(5, 5, 5), V(5, 5, 5), V(5, 5, 5))
	if TriTriIntersect(solid, point) {
		t.Error("distant point-triangle reported intersecting")
	}
}

func TestDegenerateTriTriIntersectTouching(t *testing.T) {
	solid := Tri(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	// Needle piercing the triangle's plane inside its area, endpoints on
	// opposite sides — as a segment it crosses; as a zero-area triangle it
	// touches the solid triangle at the crossing point.
	crossing := needle(V(0.5, 0.5, -1), V(0.5, 0.5, 1))
	if !TriTriIntersect(solid, crossing) {
		t.Error("crossing needle reported disjoint")
	}
	// Needle lying inside the triangle's plane across its interior.
	inPlane := needle(V(-1, 0.5, 0), V(3, 0.5, 0))
	if !TriTriIntersect(solid, inPlane) {
		t.Error("in-plane needle reported disjoint")
	}
	// Needle touching exactly at a vertex.
	atVertex := needle(V(0, 0, 0), V(-1, -1, 0))
	if !TriTriIntersect(solid, atVertex) {
		t.Error("vertex-touching needle reported disjoint")
	}
}

func TestDegenerateTriTriDist(t *testing.T) {
	solid := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	n := needle(V(0.25, 0.25, 3), V(0.25, 0.25, 5))
	if got := TriTriDist(solid, n); math.Abs(got-3) > 1e-12 {
		t.Errorf("needle dist = %v, want 3", got)
	}
	// Two needles.
	n2 := needle(V(0, 0, 0), V(1, 0, 0))
	n3 := needle(V(0, 2, 0), V(1, 2, 0))
	if got := TriTriDist(n2, n3); math.Abs(got-2) > 1e-12 {
		t.Errorf("needle-needle dist = %v, want 2", got)
	}
	// Point triangle.
	p := Tri(V(0, 0, 7), V(0, 0, 7), V(0, 0, 7))
	if got := TriTriDist(solid, p); math.Abs(got-7) > 1e-12 {
		t.Errorf("point dist = %v, want 7", got)
	}
}

// Property: for random pairs where one triangle is squashed flat, the
// distance must equal the distance computed against the needle's spine
// segment — and intersection must agree with distance == 0.
func TestDegenerateConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		solid := randomTriangle(rng, 3)
		if solid.IsDegenerate() {
			continue
		}
		a := V(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*8-4)
		b := V(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*8-4)
		nd := needle(a, b)

		inter := TriTriIntersect(solid, nd)
		d := TriTriDist(solid, nd)
		if inter != (d == 0) {
			t.Fatalf("needle intersect=%v but dist=%v", inter, d)
		}
		// Reference: min over segment endpoints/edges.
		want := math.Min(solid.DistToPoint(a), solid.DistToPoint(b))
		seg := Segment{a, b}
		for e := 0; e < 3; e++ {
			edge := Segment{solid.Vertex(e), solid.Vertex((e + 1) % 3)}
			if sd := seg.Dist(edge); sd < want {
				want = sd
			}
		}
		// A segment can also pierce the face: then distance 0 via the
		// crossing; detect with a crossing test.
		if crossesFace(solid, a, b) {
			want = 0
		}
		if math.Abs(d-want) > 1e-9 {
			t.Fatalf("needle dist=%v, reference=%v (solid=%v needle=%v)", d, want, solid, nd)
		}
	}
}

// crossesFace reports whether segment ab crosses the (open) face of tri.
func crossesFace(tri Triangle, a, b Vec3) bool {
	n := tri.Normal()
	da := n.Dot(a.Sub(tri.A))
	db := n.Dot(b.Sub(tri.A))
	if da*db > 0 {
		return false
	}
	if da == db {
		return false // parallel in plane; edge distances cover it
	}
	t := da / (da - db)
	p := a.Lerp(b, t)
	return tri.ClosestPointToPoint(p).Dist(p) < 1e-12
}
