package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func box(x0, y0, z0, x1, y1, z1 float64) Box3 {
	return Box3{Min: V(x0, y0, z0), Max: V(x1, y1, z1)}
}

func TestEmptyBox(t *testing.T) {
	e := EmptyBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBox not empty")
	}
	if e.Volume() != 0 || e.SurfaceArea() != 0 || e.Diagonal() != 0 {
		t.Error("empty box should have zero measures")
	}
	b := e.ExtendPoint(V(1, 2, 3))
	if b.IsEmpty() || b.Min != V(1, 2, 3) || b.Max != V(1, 2, 3) {
		t.Errorf("ExtendPoint from empty = %v", b)
	}
}

func TestBoxOf(t *testing.T) {
	b := BoxOf(V(1, 5, 2), V(-1, 0, 4), V(0, 3, 3))
	if b.Min != V(-1, 0, 2) || b.Max != V(1, 5, 4) {
		t.Errorf("BoxOf = %v", b)
	}
}

func TestBoxUnionIntersects(t *testing.T) {
	a := box(0, 0, 0, 1, 1, 1)
	b := box(2, 2, 2, 3, 3, 3)
	c := box(0.5, 0.5, 0.5, 2.5, 2.5, 2.5)

	if a.Intersects(b) {
		t.Error("disjoint boxes reported intersecting")
	}
	if !a.Intersects(c) || !b.Intersects(c) {
		t.Error("overlapping boxes reported disjoint")
	}
	// Touching counts as intersecting.
	d := box(1, 0, 0, 2, 1, 1)
	if !a.Intersects(d) {
		t.Error("touching boxes reported disjoint")
	}

	u := a.Union(b)
	if u.Min != V(0, 0, 0) || u.Max != V(3, 3, 3) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Union(EmptyBox()); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := EmptyBox().Union(a); got != a {
		t.Errorf("empty Union a = %v", got)
	}
}

func TestBoxContains(t *testing.T) {
	a := box(0, 0, 0, 10, 10, 10)
	b := box(1, 1, 1, 2, 2, 2)
	if !a.Contains(b) {
		t.Error("containment missed")
	}
	if b.Contains(a) {
		t.Error("reverse containment reported")
	}
	if !a.Contains(a) {
		t.Error("box should contain itself")
	}
	if !a.ContainsPoint(V(5, 5, 5)) || a.ContainsPoint(V(11, 5, 5)) {
		t.Error("ContainsPoint wrong")
	}
}

func TestBoxMeasures(t *testing.T) {
	b := box(0, 0, 0, 2, 3, 4)
	if got := b.Volume(); got != 24 {
		t.Errorf("Volume = %v", got)
	}
	if got := b.SurfaceArea(); got != 2*(6+12+8) {
		t.Errorf("SurfaceArea = %v", got)
	}
	if got := b.Diagonal(); math.Abs(got-math.Sqrt(4+9+16)) > 1e-12 {
		t.Errorf("Diagonal = %v", got)
	}
	if got := b.Center(); got != V(1, 1.5, 2) {
		t.Errorf("Center = %v", got)
	}
	if got := b.LongestAxis(); got != 2 {
		t.Errorf("LongestAxis = %v", got)
	}
}

func TestBoxMinDist(t *testing.T) {
	a := box(0, 0, 0, 1, 1, 1)
	b := box(4, 0, 0, 5, 1, 1)
	if got := a.MinDist(b); got != 3 {
		t.Errorf("MinDist along axis = %v, want 3", got)
	}
	c := box(4, 4, 0, 5, 5, 1)
	if got := a.MinDist(c); math.Abs(got-3*math.Sqrt2) > 1e-12 {
		t.Errorf("MinDist diagonal = %v, want %v", got, 3*math.Sqrt2)
	}
	// Overlapping boxes: distance zero.
	d := box(0.5, 0.5, 0.5, 2, 2, 2)
	if got := a.MinDist(d); got != 0 {
		t.Errorf("MinDist overlap = %v, want 0", got)
	}
	// Symmetry.
	if a.MinDist(c) != c.MinDist(a) {
		t.Error("MinDist not symmetric")
	}
}

func TestBoxMaxDist(t *testing.T) {
	a := box(0, 0, 0, 1, 1, 1)
	b := box(3, 0, 0, 4, 1, 1)
	want := math.Sqrt(16 + 1 + 1) // diagonal of union [0..4]×[0..1]×[0..1]
	if got := a.MaxDist(b); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxDist = %v, want %v", got, want)
	}
	// MINDIST ≤ MAXDIST always.
	if a.MinDist(b) > a.MaxDist(b) {
		t.Error("MinDist > MaxDist")
	}
}

func TestBoxFarDist(t *testing.T) {
	a := box(0, 0, 0, 1, 0, 0)
	b := box(3, 0, 0, 4, 0, 0)
	if got := a.FarDist(b); got != 4 {
		t.Errorf("FarDist = %v, want 4", got)
	}
	if got := a.FarDist(a); got != 1 {
		t.Errorf("FarDist self = %v, want 1", got)
	}
}

func TestBoxClosestPoint(t *testing.T) {
	b := box(0, 0, 0, 1, 1, 1)
	cases := []struct{ p, want Vec3 }{
		{V(0.5, 0.5, 0.5), V(0.5, 0.5, 0.5)}, // inside
		{V(2, 0.5, 0.5), V(1, 0.5, 0.5)},     // beyond +X face
		{V(-1, -1, -1), V(0, 0, 0)},          // beyond corner
	}
	for _, c := range cases {
		if got := b.ClosestPoint(c.p); got != c.want {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := b.DistToPoint(V(3, 0.5, 0.5)); got != 2 {
		t.Errorf("DistToPoint = %v, want 2", got)
	}
}

func TestBoxCorners(t *testing.T) {
	b := box(0, 0, 0, 1, 2, 3)
	seen := map[Vec3]bool{}
	for i := 0; i < 8; i++ {
		c := b.Corner(i)
		if !b.ContainsPoint(c) {
			t.Errorf("corner %d (%v) outside box", i, c)
		}
		seen[c] = true
	}
	if len(seen) != 8 {
		t.Errorf("expected 8 distinct corners, got %d", len(seen))
	}
}

func TestBoxExpand(t *testing.T) {
	b := box(0, 0, 0, 1, 1, 1).Expand(0.5)
	if b.Min != V(-0.5, -0.5, -0.5) || b.Max != V(1.5, 1.5, 1.5) {
		t.Errorf("Expand = %v", b)
	}
}

// Property: MinDist between random boxes equals the brute-force min over
// the corner-sampled closest points (we verify MinDist ≤ sampled distances
// and MinDist achieves it via ClosestPoint on corner of one box).
func TestBoxMinDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randBox := func() Box3 {
		p := V(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5)
		q := p.Add(V(rng.Float64()*3, rng.Float64()*3, rng.Float64()*3))
		return Box3{Min: p, Max: q}
	}
	for i := 0; i < 500; i++ {
		a, b := randBox(), randBox()
		md := a.MinDist(b)
		// Sample random point pairs and verify no pair gets closer than MinDist.
		for j := 0; j < 20; j++ {
			pa := a.Min.Add(V(rng.Float64()*a.Size().X, rng.Float64()*a.Size().Y, rng.Float64()*a.Size().Z))
			pb := b.Min.Add(V(rng.Float64()*b.Size().X, rng.Float64()*b.Size().Y, rng.Float64()*b.Size().Z))
			if d := pa.Dist(pb); d < md-1e-9 {
				t.Fatalf("point pair dist %v < MinDist %v", d, md)
			}
			if d := pa.Dist(pb); d > a.FarDist(b)+1e-9 {
				t.Fatalf("point pair dist %v > FarDist %v", d, a.FarDist(b))
			}
		}
	}
}

// Property: union contains both operands; intersects is symmetric.
func TestBoxAlgebraProperties(t *testing.T) {
	gen := func(vals []float64) Box3 {
		p := V(clampf(vals[0]), clampf(vals[1]), clampf(vals[2]))
		q := V(clampf(vals[3]), clampf(vals[4]), clampf(vals[5]))
		return Box3{Min: p.Min(q), Max: p.Max(q)}
	}
	f := func(a0, a1, a2, a3, a4, a5, b0, b1, b2, b3, b4, b5 float64) bool {
		a := gen([]float64{a0, a1, a2, a3, a4, a5})
		b := gen([]float64{b0, b1, b2, b3, b4, b5})
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
