package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestTriangleBasics(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	if got := tr.Area(); got != 0.5 {
		t.Errorf("Area = %v, want 0.5", got)
	}
	if got := tr.UnitNormal(); got != V(0, 0, 1) {
		t.Errorf("UnitNormal = %v, want +Z", got)
	}
	want := V(1.0/3, 1.0/3, 0)
	if got := tr.Centroid(); !got.ApproxEqual(want, 1e-15) {
		t.Errorf("Centroid = %v, want %v", got, want)
	}
	b := tr.Bounds()
	if b.Min != V(0, 0, 0) || b.Max != V(1, 1, 0) {
		t.Errorf("Bounds = %v", b)
	}
	for i := 0; i < 3; i++ {
		if tr.Vertex(i) != [3]Vec3{tr.A, tr.B, tr.C}[i] {
			t.Errorf("Vertex(%d) wrong", i)
		}
	}
}

func TestTriangleDegenerate(t *testing.T) {
	if Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0)).IsDegenerate() {
		t.Error("proper triangle reported degenerate")
	}
	if !Tri(V(0, 0, 0), V(1, 0, 0), V(2, 0, 0)).IsDegenerate() {
		t.Error("collinear triangle not reported degenerate")
	}
	if !Tri(V(1, 1, 1), V(1, 1, 1), V(1, 1, 1)).IsDegenerate() {
		t.Error("point triangle not reported degenerate")
	}
}

func TestClosestPointToPoint(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	cases := []struct {
		p, want Vec3
	}{
		{V(0.5, 0.5, 1), V(0.5, 0.5, 0)},     // above the interior
		{V(-1, -1, 0), V(0, 0, 0)},           // vertex A region
		{V(3, -1, 0), V(2, 0, 0)},            // vertex B region
		{V(-1, 3, 0), V(0, 2, 0)},            // vertex C region
		{V(1, -1, 0), V(1, 0, 0)},            // edge AB region
		{V(-1, 1, 0), V(0, 1, 0)},            // edge AC region
		{V(2, 2, 0), V(1, 1, 0)},             // edge BC region
		{V(0.25, 0.25, 0), V(0.25, 0.25, 0)}, // on the face
	}
	for _, c := range cases {
		if got := tr.ClosestPointToPoint(c.p); !got.ApproxEqual(c.want, 1e-12) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := tr.DistToPoint(V(0.5, 0.5, 3)); got != 3 {
		t.Errorf("DistToPoint = %v, want 3", got)
	}
}

// Property: the closest point returned is on the triangle and no sampled
// barycentric point is closer.
func TestClosestPointIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		tr := randomTriangle(rng, 5)
		if tr.IsDegenerate() {
			continue
		}
		p := V(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5)
		cp := tr.ClosestPointToPoint(p)
		best := cp.Dist(p)
		for j := 0; j < 50; j++ {
			u := rng.Float64()
			v := rng.Float64() * (1 - u)
			q := tr.A.Mul(1 - u - v).Add(tr.B.Mul(u)).Add(tr.C.Mul(v))
			if d := q.Dist(p); d < best-1e-9 {
				t.Fatalf("sampled point closer: %v < %v", d, best)
			}
		}
	}
}

func TestSegmentClosestPoints(t *testing.T) {
	// Crossing segments (in projection), distance 1 apart in Z.
	s1 := Segment{V(-1, 0, 0), V(1, 0, 0)}
	s2 := Segment{V(0, -1, 1), V(0, 1, 1)}
	if got := s1.Dist(s2); math.Abs(got-1) > 1e-12 {
		t.Errorf("Dist = %v, want 1", got)
	}

	// Parallel segments.
	s3 := Segment{V(0, 0, 0), V(1, 0, 0)}
	s4 := Segment{V(0, 2, 0), V(1, 2, 0)}
	if got := s3.Dist(s4); math.Abs(got-2) > 1e-12 {
		t.Errorf("parallel Dist = %v, want 2", got)
	}

	// Collinear, disjoint.
	s5 := Segment{V(0, 0, 0), V(1, 0, 0)}
	s6 := Segment{V(3, 0, 0), V(4, 0, 0)}
	if got := s5.Dist(s6); math.Abs(got-2) > 1e-12 {
		t.Errorf("collinear Dist = %v, want 2", got)
	}

	// Degenerate: both are points.
	s7 := Segment{V(0, 0, 0), V(0, 0, 0)}
	s8 := Segment{V(0, 3, 4), V(0, 3, 4)}
	if got := s7.Dist(s8); got != 5 {
		t.Errorf("point-point Dist = %v, want 5", got)
	}

	// One degenerate.
	s9 := Segment{V(0.5, 5, 0), V(0.5, 5, 0)}
	if got := s3.Dist(s9); math.Abs(got-5) > 1e-12 {
		t.Errorf("point-segment Dist = %v, want 5", got)
	}
}

// Property: segment distance is symmetric and the returned points lie on
// their segments.
func TestSegmentDistSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randSeg := func() Segment {
		return Segment{
			V(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5),
			V(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5),
		}
	}
	for i := 0; i < 500; i++ {
		a, b := randSeg(), randSeg()
		d1 := a.Dist(b)
		d2 := b.Dist(a)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
		// No sampled pair should be closer.
		for j := 0; j < 30; j++ {
			p := a.P.Lerp(a.Q, rng.Float64())
			q := b.P.Lerp(b.Q, rng.Float64())
			if d := p.Dist(q); d < d1-1e-9 {
				t.Fatalf("sampled pair closer: %v < %v", d, d1)
			}
		}
	}
}

func randomTriangle(rng *rand.Rand, scale float64) Triangle {
	r := func() Vec3 {
		return V(rng.Float64()*2*scale-scale, rng.Float64()*2*scale-scale, rng.Float64()*2*scale-scale)
	}
	return Tri(r(), r(), r())
}
