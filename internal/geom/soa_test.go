package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randTriNear returns a random triangle whose vertices lie within spread of
// center — used to generate near-miss/near-hit pairs where box pruning and
// the exact kernels genuinely disagree unless the pruning is conservative.
func randTriNear(rng *rand.Rand, center Vec3, spread float64) Triangle {
	p := func() Vec3 {
		return Vec3{
			center.X + (rng.Float64()*2-1)*spread,
			center.Y + (rng.Float64()*2-1)*spread,
			center.Z + (rng.Float64()*2-1)*spread,
		}
	}
	return Triangle{A: p(), B: p(), C: p()}
}

func randSoA(rng *rand.Rand, n int, center Vec3, spread float64) ([]Triangle, *TriSoA) {
	ts := make([]Triangle, n)
	for i := range ts {
		ts[i] = randTriNear(rng, center, spread)
		if rng.Intn(8) == 0 {
			// Mix in degenerate triangles: repeated vertex or collinear.
			switch rng.Intn(3) {
			case 0:
				ts[i].B = ts[i].A
			case 1:
				ts[i].C = ts[i].A
			case 2:
				ts[i].C = ts[i].A.Add(ts[i].B.Sub(ts[i].A).Mul(0.5))
			}
		}
	}
	return ts, SoAFromTriangles(ts)
}

func TestSoARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts, s := randSoA(rng, 37, Vec3{}, 5)
	if s.Len() != len(ts) {
		t.Fatalf("Len=%d want %d", s.Len(), len(ts))
	}
	for i, want := range ts {
		if got := s.At(i); got != want {
			t.Fatalf("At(%d)=%v want %v", i, got, want)
		}
		b := want.Bounds()
		if s.MinX[i] != b.Min.X || s.MinY[i] != b.Min.Y || s.MinZ[i] != b.Min.Z ||
			s.MaxX[i] != b.Max.X || s.MaxY[i] != b.Max.Y || s.MaxZ[i] != b.Max.Z {
			t.Fatalf("box lanes for %d disagree with Bounds()", i)
		}
	}
}

// bruteIntersects is the reference pairwise loop the batch kernel must match.
func bruteIntersects(as, bs []Triangle) bool {
	for _, ta := range as {
		for _, tb := range bs {
			if TriTriIntersect(ta, tb) {
				return true
			}
		}
	}
	return false
}

func bruteMinDist2(as, bs []Triangle, best float64) float64 {
	for _, ta := range as {
		for _, tb := range bs {
			if d2 := TriTriDist2(ta, tb); d2 < best {
				best = d2
			}
		}
	}
	return best
}

func TestIntersectsBatchMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 200; round++ {
		// Two clusters whose separation shrinks with the round index, so the
		// suite sweeps from clearly-separated through touching to overlapping.
		sep := 4.0 * (1 - float64(round)/150.0)
		as, sa := randSoA(rng, 1+rng.Intn(12), Vec3{}, 2)
		bs, sb := randSoA(rng, 1+rng.Intn(12), Vec3{X: sep}, 2)
		want := bruteIntersects(as, bs)
		if got := IntersectsBatch(sa, sb); got != want {
			t.Fatalf("round %d: IntersectsBatch=%v pairwise=%v", round, got, want)
		}
	}
}

func TestMinDist2BatchMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 200; round++ {
		sep := 6.0 * (1 - float64(round)/150.0)
		as, sa := randSoA(rng, 1+rng.Intn(10), Vec3{}, 2)
		bs, sb := randSoA(rng, 1+rng.Intn(10), Vec3{X: sep, Y: sep / 2}, 2)

		// Exact minimum (infinite seed) must be bit-identical: both paths run
		// the same TriTriDist2 on every pair that can be the minimum.
		want := bruteMinDist2(as, bs, math.Inf(1))
		if got := MinDist2Batch(sa, sb, math.Inf(1)); got != want {
			t.Fatalf("round %d: exact MinDist2Batch=%v pairwise=%v", round, got, want)
		}

		// Bound-seeded: when the true minimum beats the bound the value must
		// be exact; otherwise the seed comes back unchanged.
		for _, upper2 := range []float64{0, want * 0.5, want, want * 1.5, want + 1} {
			got := MinDist2Batch(sa, sb, upper2)
			if want < upper2 {
				if got != want {
					t.Fatalf("round %d upper2=%v: got %v want exact %v", round, upper2, got, want)
				}
			} else if got != upper2 {
				t.Fatalf("round %d upper2=%v: got %v want seed back", round, upper2, got)
			}
		}
	}
}

// TestBatchRangeCoversCrossProduct splits the pair index space at arbitrary
// points, the way the gpusim device launches kernels, and checks the split
// scan agrees with the whole scan.
func TestBatchRangeCoversCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 100; round++ {
		_, sa := randSoA(rng, 1+rng.Intn(8), Vec3{}, 2)
		_, sb := randSoA(rng, 1+rng.Intn(8), Vec3{X: rng.Float64() * 5}, 2)
		total := sa.Len() * sb.Len()
		cut := rng.Intn(total + 1)

		wantHit := IntersectsBatch(sa, sb)
		gotHit := IntersectsBatchRange(sa, sb, 0, cut) || IntersectsBatchRange(sa, sb, cut, total)
		if gotHit != wantHit {
			t.Fatalf("round %d cut=%d: split intersect %v want %v", round, cut, gotHit, wantHit)
		}

		wantD := MinDist2Batch(sa, sb, math.Inf(1))
		d1 := MinDist2BatchRange(sa, sb, 0, cut, math.Inf(1))
		gotD := MinDist2BatchRange(sa, sb, cut, total, d1)
		if gotD != wantD {
			t.Fatalf("round %d cut=%d: split dist %v want %v", round, cut, gotD, wantD)
		}
	}
}

func TestBatchEmptyInputs(t *testing.T) {
	_, sa := randSoA(rand.New(rand.NewSource(5)), 3, Vec3{}, 1)
	empty := SoAFromTriangles(nil)
	if IntersectsBatch(sa, empty) || IntersectsBatch(empty, sa) || IntersectsBatch(empty, empty) {
		t.Fatal("empty SoA must never intersect")
	}
	if got := MinDist2Batch(sa, empty, 42); got != 42 {
		t.Fatalf("empty b: got %v want seed", got)
	}
	if got := MinDist2Batch(empty, sa, 42); got != 42 {
		t.Fatalf("empty a: got %v want seed", got)
	}
	if empty.Bytes() != 0 || sa.Bytes() != 15*3*8 {
		t.Fatalf("Bytes: empty=%d sa=%d", empty.Bytes(), sa.Bytes())
	}
}
