package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)

	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(2); got != V(2, 4, 6) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != 1*4+2*(-5)+3*6 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVecCross(t *testing.T) {
	x := V(1, 0, 0)
	y := V(0, 1, 0)
	z := V(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x × y = %v, want %v", got, z)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y × z = %v, want %v", got, x)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z × x = %v, want %v", got, y)
	}
}

func TestVecCrossOrthogonal(t *testing.T) {
	// Property: v × w is orthogonal to both v and w.
	f := func(vx, vy, vz, wx, wy, wz float64) bool {
		v := V(clampf(vx), clampf(vy), clampf(vz))
		w := V(clampf(wx), clampf(wy), clampf(wz))
		c := v.Cross(w)
		scale := v.Len() * w.Len() * c.Len()
		tol := 1e-9 * (scale + 1)
		return math.Abs(c.Dot(v)) <= tol && math.Abs(c.Dot(w)) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecCrossAnticommutative(t *testing.T) {
	f := func(vx, vy, vz, wx, wy, wz float64) bool {
		v := V(clampf(vx), clampf(vy), clampf(vz))
		w := V(clampf(wx), clampf(wy), clampf(wz))
		return v.Cross(w).ApproxEqual(w.Cross(v).Neg(), 1e-9*(v.Len()*w.Len()+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecLen(t *testing.T) {
	if got := V(3, 4, 0).Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := V(1, 2, 2).Len(); got != 3 {
		t.Errorf("Len = %v, want 3", got)
	}
	if got := V(3, 4, 0).Len2(); got != 25 {
		t.Errorf("Len2 = %v, want 25", got)
	}
}

func TestVecNormalize(t *testing.T) {
	v := V(10, 0, 0).Normalize()
	if v != V(1, 0, 0) {
		t.Errorf("Normalize = %v", v)
	}
	// Zero vector stays zero.
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Errorf("Normalize(0) = %v", z)
	}
	// Property: unit length after normalize for non-zero input.
	f := func(x, y, z float64) bool {
		v := V(clampf(x), clampf(y), clampf(z))
		if v.Len() < 1e-9 {
			return true
		}
		return math.Abs(v.Normalize().Len()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecLerp(t *testing.T) {
	a := V(0, 0, 0)
	b := V(10, 20, 30)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, 10, 15) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestVecMinMaxComponent(t *testing.T) {
	a := V(1, 5, 3)
	b := V(2, 4, 6)
	if got := a.Min(b); got != V(1, 4, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(2, 5, 6) {
		t.Errorf("Max = %v", got)
	}
	for i, want := range []float64{1, 5, 3} {
		if got := a.Component(i); got != want {
			t.Errorf("Component(%d) = %v, want %v", i, got, want)
		}
	}
	if got := a.SetComponent(1, 9); got != V(1, 9, 3) {
		t.Errorf("SetComponent = %v", got)
	}
}

func TestVecDist(t *testing.T) {
	a := V(1, 1, 1)
	b := V(4, 5, 1)
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

// clampf maps an arbitrary quick-generated float into a tame range so
// property tests don't explode on astronomically large values.
func clampf(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e4)
}
