package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randBoxPair builds two random non-empty boxes from quick-generated floats.
func randBoxPair(v [12]float64) (Box3, Box3) {
	c := func(x float64) float64 { return clampf(x) }
	a := Box3{
		Min: V(c(v[0]), c(v[1]), c(v[2])),
		Max: V(c(v[0])+math.Abs(c(v[3])), c(v[1])+math.Abs(c(v[4])), c(v[2])+math.Abs(c(v[5]))),
	}
	b := Box3{
		Min: V(c(v[6]), c(v[7]), c(v[8])),
		Max: V(c(v[6])+math.Abs(c(v[9])), c(v[7])+math.Abs(c(v[10])), c(v[8])+math.Abs(c(v[11]))),
	}
	return a, b
}

// Property: the box distance bounds nest: MinDist ≤ FarDist ≤ MaxDist
// (cross-pair distances are a subset of union pairs, whose diameter is the
// union diagonal), and MinDist is zero exactly when the boxes intersect.
func TestBoxDistanceBoundsNest(t *testing.T) {
	f := func(v [12]float64) bool {
		a, b := randBoxPair(v)
		mind := a.MinDist(b)
		maxd := a.MaxDist(b)
		fard := a.FarDist(b)
		if mind > fard+1e-9 || fard > maxd+1e-9 {
			return false
		}
		if a.Intersects(b) != (mind == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: box distance functions are symmetric.
func TestBoxDistanceSymmetry(t *testing.T) {
	f := func(v [12]float64) bool {
		a, b := randBoxPair(v)
		return math.Abs(a.MinDist(b)-b.MinDist(a)) < 1e-9 &&
			math.Abs(a.MaxDist(b)-b.MaxDist(a)) < 1e-9 &&
			math.Abs(a.FarDist(b)-b.FarDist(a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the triangle inequality holds for box MinDist through a shared
// witness point: dist(p, a) + dist(p, b) ≥ MinDist(a, b).
func TestBoxMinDistWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		var v [12]float64
		for j := range v {
			v[j] = rng.Float64()*40 - 20
		}
		a, b := randBoxPair(v)
		p := V(rng.Float64()*60-30, rng.Float64()*60-30, rng.Float64()*60-30)
		if a.DistToPoint(p)+b.DistToPoint(p) < a.MinDist(b)-1e-9 {
			t.Fatalf("witness inequality violated: %v + %v < %v",
				a.DistToPoint(p), b.DistToPoint(p), a.MinDist(b))
		}
	}
}

// Property: triangle-triangle distance obeys the triangle inequality via a
// third triangle: d(A,C) ≤ d(A,B) + diam(B) + d(B,C).
func TestTriTriDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	diam := func(tr Triangle) float64 {
		return math.Max(tr.A.Dist(tr.B), math.Max(tr.B.Dist(tr.C), tr.C.Dist(tr.A)))
	}
	for i := 0; i < 300; i++ {
		A := randomTriangle(rng, 4)
		B := randomTriangle(rng, 4)
		C := randomTriangle(rng, 4)
		if A.IsDegenerate() || B.IsDegenerate() || C.IsDegenerate() {
			continue
		}
		dac := TriTriDist(A, C)
		bound := TriTriDist(A, B) + diam(B) + TriTriDist(B, C)
		if dac > bound+1e-9 {
			t.Fatalf("triangle inequality violated: %v > %v", dac, bound)
		}
	}
}

// Property: translating both triangles leaves their distance unchanged;
// translating one by t along the line between closest points changes the
// distance by at most |t|.
func TestTriTriDistTranslationStability(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 300; i++ {
		A := randomTriangle(rng, 4)
		B := randomTriangle(rng, 4)
		d := TriTriDist(A, B)

		off := V(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5)
		A2 := Tri(A.A.Add(off), A.B.Add(off), A.C.Add(off))
		B2 := Tri(B.A.Add(off), B.B.Add(off), B.C.Add(off))
		if math.Abs(TriTriDist(A2, B2)-d) > 1e-9 {
			t.Fatalf("joint translation changed distance")
		}

		small := V(rng.Float64()*0.2-0.1, rng.Float64()*0.2-0.1, rng.Float64()*0.2-0.1)
		B3 := Tri(B.A.Add(small), B.B.Add(small), B.C.Add(small))
		if math.Abs(TriTriDist(A, B3)-d) > small.Len()+1e-9 {
			t.Fatalf("distance moved more than the translation: |Δ|=%v > %v",
				math.Abs(TriTriDist(A, B3)-d), small.Len())
		}
	}
}
