package geom

import "math"

// Triangle is an oriented triangle in 3D space. Vertices are listed
// counter-clockwise when seen from the outer side (right-hand rule), matching
// the paper's face orientation convention.
type Triangle struct {
	A, B, C Vec3
}

// Tri is shorthand for constructing a Triangle.
func Tri(a, b, c Vec3) Triangle { return Triangle{a, b, c} }

// Normal returns the (non-unit) normal of the triangle: (B-A) × (C-A).
// Its direction points to the outer side for CCW-oriented faces.
func (t Triangle) Normal() Vec3 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A))
}

// UnitNormal returns the unit-length outward normal, or the zero vector for
// degenerate triangles.
func (t Triangle) UnitNormal() Vec3 { return t.Normal().Normalize() }

// Area returns the triangle's area.
func (t Triangle) Area() float64 { return t.Normal().Len() / 2 }

// Centroid returns the triangle's centroid.
func (t Triangle) Centroid() Vec3 {
	return Vec3{
		(t.A.X + t.B.X + t.C.X) / 3,
		(t.A.Y + t.B.Y + t.C.Y) / 3,
		(t.A.Z + t.B.Z + t.C.Z) / 3,
	}
}

// Bounds returns the triangle's axis-aligned bounding box.
func (t Triangle) Bounds() Box3 { return BoxOf(t.A, t.B, t.C) }

// Vertex returns the i-th vertex (0=A, 1=B, 2=C).
func (t Triangle) Vertex(i int) Vec3 {
	switch i {
	case 0:
		return t.A
	case 1:
		return t.B
	default:
		return t.C
	}
}

// IsDegenerate reports whether the triangle has (nearly) zero area.
func (t Triangle) IsDegenerate() bool {
	// Compare squared area against the squared longest edge scaled by a
	// relative tolerance so the test is scale-invariant.
	n2 := t.Normal().Len2()
	e := math.Max(t.A.Dist2(t.B), math.Max(t.B.Dist2(t.C), t.C.Dist2(t.A)))
	return n2 <= 1e-24*e*e
}

// ClosestPointToPoint returns the point on the triangle (including its
// boundary) closest to p. Implementation follows Ericson, "Real-Time
// Collision Detection", §5.1.5.
func (t Triangle) ClosestPointToPoint(p Vec3) Vec3 {
	ab := t.B.Sub(t.A)
	ac := t.C.Sub(t.A)
	ap := p.Sub(t.A)

	d1 := ab.Dot(ap)
	d2 := ac.Dot(ap)
	if d1 <= 0 && d2 <= 0 {
		return t.A // vertex region A
	}

	bp := p.Sub(t.B)
	d3 := ab.Dot(bp)
	d4 := ac.Dot(bp)
	if d3 >= 0 && d4 <= d3 {
		return t.B // vertex region B
	}

	vc := d1*d4 - d3*d2
	if vc <= 0 && d1 >= 0 && d3 <= 0 {
		v := d1 / (d1 - d3)
		return t.A.Add(ab.Mul(v)) // edge region AB
	}

	cp := p.Sub(t.C)
	d5 := ab.Dot(cp)
	d6 := ac.Dot(cp)
	if d6 >= 0 && d5 <= d6 {
		return t.C // vertex region C
	}

	vb := d5*d2 - d1*d6
	if vb <= 0 && d2 >= 0 && d6 <= 0 {
		w := d2 / (d2 - d6)
		return t.A.Add(ac.Mul(w)) // edge region AC
	}

	va := d3*d6 - d5*d4
	if va <= 0 && (d4-d3) >= 0 && (d5-d6) >= 0 {
		w := (d4 - d3) / ((d4 - d3) + (d5 - d6))
		return t.B.Add(t.C.Sub(t.B).Mul(w)) // edge region BC
	}

	// Inside face region.
	denom := 1 / (va + vb + vc)
	v := vb * denom
	w := vc * denom
	return t.A.Add(ab.Mul(v)).Add(ac.Mul(w))
}

// DistToPoint returns the distance from p to the triangle.
func (t Triangle) DistToPoint(p Vec3) float64 {
	return t.ClosestPointToPoint(p).Dist(p)
}

// Segment is a line segment between two points.
type Segment struct {
	P, Q Vec3
}

// ClosestPoints returns the closest pair of points (one on each segment) and
// the squared distance between them. Implementation follows Ericson §5.1.9.
func (s Segment) ClosestPoints(o Segment) (onS, onO Vec3, dist2 float64) {
	d1 := s.Q.Sub(s.P) // direction of s
	d2 := o.Q.Sub(o.P) // direction of o
	r := s.P.Sub(o.P)
	a := d1.Len2()
	e := d2.Len2()
	f := d2.Dot(r)

	var t, u float64
	switch {
	case a <= Epsilon && e <= Epsilon:
		// Both segments degenerate to points.
		onS, onO = s.P, o.P
		return onS, onO, onS.Dist2(onO)
	case a <= Epsilon:
		t = 0
		u = clamp(f/e, 0, 1)
	default:
		c := d1.Dot(r)
		if e <= Epsilon {
			u = 0
			t = clamp(-c/a, 0, 1)
		} else {
			b := d1.Dot(d2)
			denom := a*e - b*b
			if denom > Epsilon {
				t = clamp((b*f-c*e)/denom, 0, 1)
			} else {
				t = 0 // parallel: pick arbitrary t, recompute u
			}
			u = (b*t + f) / e
			if u < 0 {
				u = 0
				t = clamp(-c/a, 0, 1)
			} else if u > 1 {
				u = 1
				t = clamp((b-c)/a, 0, 1)
			}
		}
	}
	onS = s.P.Add(d1.Mul(t))
	onO = o.P.Add(d2.Mul(u))
	return onS, onO, onS.Dist2(onO)
}

// Dist returns the minimum distance between the two segments.
func (s Segment) Dist(o Segment) float64 {
	_, _, d2 := s.ClosestPoints(o)
	return math.Sqrt(d2)
}
