package geom

import "math"

// Ray is a half-line starting at Origin in direction Dir (not necessarily
// unit length).
type Ray struct {
	Origin, Dir Vec3
}

// hitKind classifies a ray-triangle intersection for the robust
// point-in-polyhedron test.
type hitKind int

const (
	hitNone       hitKind = iota // no intersection
	hitInside                    // crossing strictly inside the triangle
	hitDegenerate                // grazing a vertex/edge or parallel — re-cast
)

// IntersectTriangle runs the Möller–Trumbore ray-triangle intersection.
// It returns the parameter t (point = Origin + t*Dir) when the ray crosses
// the triangle's interior with t > 0.
func (r Ray) IntersectTriangle(t Triangle) (float64, bool) {
	tt, kind := r.intersectTriangleEx(t)
	return tt, kind == hitInside
}

func (r Ray) intersectTriangleEx(tri Triangle) (float64, hitKind) {
	const eps = 1e-12
	e1 := tri.B.Sub(tri.A)
	e2 := tri.C.Sub(tri.A)
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	scale := e1.Len() * e2.Len() * r.Dir.Len()
	if math.Abs(det) <= eps*scale {
		// Ray parallel to (or in) the triangle plane: cannot count crossings
		// reliably. Check whether the ray origin is extremely close to the
		// plane; either way, signal a re-cast.
		return 0, hitDegenerate
	}
	inv := 1 / det
	s := r.Origin.Sub(tri.A)
	u := s.Dot(p) * inv
	if u < 0 || u > 1 {
		if u > -1e-9 && u < 1+1e-9 {
			return 0, hitDegenerate
		}
		return 0, hitNone
	}
	q := s.Cross(e1)
	v := r.Dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		if v > -1e-9 && u+v < 1+1e-9 {
			return 0, hitDegenerate
		}
		return 0, hitNone
	}
	t := e2.Dot(q) * inv
	if t <= 0 {
		if t > -1e-12 {
			return 0, hitDegenerate // origin on the surface
		}
		return 0, hitNone
	}
	// Grazing hits near edges/vertices are degenerate: they may be counted
	// by two adjacent triangles.
	const edgeEps = 1e-9
	if u < edgeEps || v < edgeEps || u+v > 1-edgeEps {
		return t, hitDegenerate
	}
	return t, hitInside
}

// IntersectBox reports whether the ray intersects the box, using the slab
// method. Used by AABB-tree ray traversal.
func (r Ray) IntersectBox(b Box3) bool {
	tmin, tmax := 0.0, math.Inf(1)
	for i := 0; i < 3; i++ {
		o := r.Origin.Component(i)
		d := r.Dir.Component(i)
		lo := b.Min.Component(i)
		hi := b.Max.Component(i)
		if math.Abs(d) < 1e-300 {
			if o < lo || o > hi {
				return false
			}
			continue
		}
		inv := 1 / d
		t1 := (lo - o) * inv
		t2 := (hi - o) * inv
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tmin {
			tmin = t1
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return false
		}
	}
	return true
}

// rayDirections is a set of well-spread directions tried in order by
// PointInMesh when a cast hits a degenerate configuration.
var rayDirections = []Vec3{
	{1, 0, 0},
	{0.5370861555295747, 0.8435650784534205, 0.011327694223452235},
	{-0.2886751345948129, 0.5773502691896258, 0.7637626158259733},
	{0.9341723589627157, -0.3568220897730899, 0.0138937305841684},
	{-0.1812615574, 0.3625231148, -0.9141623913},
	{0.7071067811865476, -0.1414213562373095, 0.6928203230275509},
	{-0.6, 0.64, 0.48},
	{0.4242640687119285, 0.565685424949238, -0.7071067811865476},
}

// RayDirections returns the well-spread cast directions used by the robust
// point-in-polyhedron tests. Callers iterate them in order, re-casting after
// a degenerate hit. The returned slice must not be modified.
func RayDirections() []Vec3 { return rayDirections }

// RayCrossesTriangle reports whether r crosses the interior of tri
// (crossings = 1) or misses it (0). ok is false when the configuration is
// degenerate (grazing an edge or vertex, origin on the surface, or a
// parallel ray) and the caller should re-cast along a different direction.
func RayCrossesTriangle(r Ray, tri Triangle) (crossings int, ok bool) {
	_, kind := r.intersectTriangleEx(tri)
	switch kind {
	case hitInside:
		return 1, true
	case hitDegenerate:
		return 0, false
	default:
		return 0, true
	}
}

// PointInTriangles reports whether p lies inside the closed surface defined
// by tris, using ray casting with crossing parity. Degenerate hits trigger a
// re-cast along a different direction; if every direction degenerates (which
// in practice never happens for valid closed meshes) the last parity is
// returned.
//
// The tris slice must describe a closed, watertight surface for the answer
// to be meaningful.
func PointInTriangles(p Vec3, tris []Triangle) bool {
	parity := false
	for _, dir := range rayDirections {
		r := Ray{Origin: p, Dir: dir}
		crossings := 0
		ok := true
		for _, t := range tris {
			_, kind := r.intersectTriangleEx(t)
			switch kind {
			case hitInside:
				crossings++
			case hitDegenerate:
				ok = false
			}
			if !ok {
				break
			}
		}
		parity = crossings%2 == 1
		if ok {
			return parity
		}
	}
	return parity
}
