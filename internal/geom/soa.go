package geom

import "math"

// TriSoA is a struct-of-arrays triangle set: nine vertex-coordinate lanes
// plus six per-triangle bounding-box lanes, all contiguous []float64. It is
// the packed representation the batch refinement executor ships to the
// batch kernels below and to the simulated GPU: iterating flat lanes keeps
// the tri-tri inner loops walking sequential memory instead of chasing
// []Triangle elements, and the box lanes let a kernel skip a face pair with
// six comparisons before touching any vertex math.
//
// A TriSoA is immutable after construction and safe for concurrent reads.
type TriSoA struct {
	AX, AY, AZ []float64
	BX, BY, BZ []float64
	CX, CY, CZ []float64

	// Per-triangle AABB lanes. MinX[i]..MaxZ[i] bound triangle i; the batch
	// kernels use them to prune pairs that provably cannot change the
	// result (disjoint boxes cannot intersect; a box distance at or above
	// the running best cannot improve it).
	MinX, MinY, MinZ []float64
	MaxX, MaxY, MaxZ []float64
}

// Len returns the number of triangles.
func (s *TriSoA) Len() int { return len(s.AX) }

// At materializes triangle i.
func (s *TriSoA) At(i int) Triangle {
	return Triangle{
		A: Vec3{s.AX[i], s.AY[i], s.AZ[i]},
		B: Vec3{s.BX[i], s.BY[i], s.BZ[i]},
		C: Vec3{s.CX[i], s.CY[i], s.CZ[i]},
	}
}

// Bytes returns the memory footprint of the lanes.
func (s *TriSoA) Bytes() int64 {
	if s == nil {
		return 0
	}
	return int64(15 * len(s.AX) * 8)
}

// SoAFromTriangles packs ts into freshly allocated lanes.
func SoAFromTriangles(ts []Triangle) *TriSoA {
	n := len(ts)
	// One backing array, sliced into the 15 lanes, keeps the whole packing
	// a single allocation and the lanes adjacent in memory.
	back := make([]float64, 15*n)
	lane := func(k int) []float64 { return back[k*n : (k+1)*n : (k+1)*n] }
	s := &TriSoA{
		AX: lane(0), AY: lane(1), AZ: lane(2),
		BX: lane(3), BY: lane(4), BZ: lane(5),
		CX: lane(6), CY: lane(7), CZ: lane(8),
		MinX: lane(9), MinY: lane(10), MinZ: lane(11),
		MaxX: lane(12), MaxY: lane(13), MaxZ: lane(14),
	}
	for i, t := range ts {
		s.AX[i], s.AY[i], s.AZ[i] = t.A.X, t.A.Y, t.A.Z
		s.BX[i], s.BY[i], s.BZ[i] = t.B.X, t.B.Y, t.B.Z
		s.CX[i], s.CY[i], s.CZ[i] = t.C.X, t.C.Y, t.C.Z
		s.MinX[i] = math.Min(t.A.X, math.Min(t.B.X, t.C.X))
		s.MinY[i] = math.Min(t.A.Y, math.Min(t.B.Y, t.C.Y))
		s.MinZ[i] = math.Min(t.A.Z, math.Min(t.B.Z, t.C.Z))
		s.MaxX[i] = math.Max(t.A.X, math.Max(t.B.X, t.C.X))
		s.MaxY[i] = math.Max(t.A.Y, math.Max(t.B.Y, t.C.Y))
		s.MaxZ[i] = math.Max(t.A.Z, math.Max(t.B.Z, t.C.Z))
	}
	return s
}

// boxesDisjoint reports whether the boxes of a[i] and b[j] are strictly
// disjoint. Touching boxes count as overlapping, matching Box3.Intersects,
// so a pair skipped here can never intersect.
func boxesDisjoint(a *TriSoA, i int, b *TriSoA, j int) bool {
	return a.MinX[i] > b.MaxX[j] || b.MinX[j] > a.MaxX[i] ||
		a.MinY[i] > b.MaxY[j] || b.MinY[j] > a.MaxY[i] ||
		a.MinZ[i] > b.MaxZ[j] || b.MinZ[j] > a.MaxZ[i]
}

// boxDist2 returns the squared distance between the boxes of a[i] and b[j],
// a lower bound on the distance between the triangles themselves.
func boxDist2(a *TriSoA, i int, b *TriSoA, j int) float64 {
	var d2 float64
	if d := b.MinX[j] - a.MaxX[i]; d > 0 {
		d2 += d * d
	} else if d := a.MinX[i] - b.MaxX[j]; d > 0 {
		d2 += d * d
	}
	if d := b.MinY[j] - a.MaxY[i]; d > 0 {
		d2 += d * d
	} else if d := a.MinY[i] - b.MaxY[j]; d > 0 {
		d2 += d * d
	}
	if d := b.MinZ[j] - a.MaxZ[i]; d > 0 {
		d2 += d * d
	} else if d := a.MinZ[i] - b.MaxZ[j]; d > 0 {
		d2 += d * d
	}
	return d2
}

// IntersectsBatch reports whether any triangle of a intersects any triangle
// of b. It is the batch variant of TriTriIntersect over the full cross
// product, with per-pair box gating, and returns exactly what the pairwise
// loop would: a pair whose boxes are disjoint cannot intersect, and every
// surviving pair runs the same TriTriIntersect primitive.
func IntersectsBatch(a, b *TriSoA) bool {
	return IntersectsBatchRange(a, b, 0, a.Len()*b.Len())
}

// IntersectsBatchRange scans pair indices [start, end) of the a×b cross
// product (row-major: index = i*b.Len() + j) and reports whether any pair
// intersects. The range form is the kernel the simulated GPU launches.
func IntersectsBatchRange(a, b *TriSoA, start, end int) bool {
	bn := b.Len()
	if bn == 0 {
		return false
	}
	for idx := start; idx < end; {
		i := idx / bn
		j0 := idx % bn
		jEnd := j0 + (end - idx)
		if jEnd > bn {
			jEnd = bn
		}
		ta := a.At(i)
		for j := j0; j < jEnd; j++ {
			if boxesDisjoint(a, i, b, j) {
				continue
			}
			if TriTriIntersect(ta, b.At(j)) {
				return true
			}
		}
		idx += jEnd - j0
	}
	return false
}

// MinDist2Batch returns the squared minimum distance over all a×b triangle
// pairs, seeded with upper2: when every pair's true squared distance is
// ≥ upper2 the seed is returned unchanged, so callers must treat any result
// ≥ upper2 as "no pair beat the bound" only. Pass math.Inf(1) for an exact
// minimum. The bound plus the per-pair box pruning skips the feature-pair
// math for every pair that provably cannot improve the running best; the
// pairs that do run use the same TriTriDist2 primitive as the pairwise
// loop, so any result < upper2 is exact.
func MinDist2Batch(a, b *TriSoA, upper2 float64) float64 {
	return MinDist2BatchRange(a, b, 0, a.Len()*b.Len(), upper2)
}

// MinDist2BatchRange is MinDist2Batch over pair indices [start, end) of the
// row-major a×b cross product, the kernel form the simulated GPU launches.
func MinDist2BatchRange(a, b *TriSoA, start, end int, best float64) float64 {
	bn := b.Len()
	if bn == 0 {
		return best
	}
	for idx := start; idx < end; {
		i := idx / bn
		j0 := idx % bn
		jEnd := j0 + (end - idx)
		if jEnd > bn {
			jEnd = bn
		}
		ta := a.At(i)
		for j := j0; j < jEnd; j++ {
			if boxDist2(a, i, b, j) >= best {
				continue
			}
			if d2 := TriTriDist2(ta, b.At(j)); d2 < best {
				best = d2
			}
		}
		idx += jEnd - j0
	}
	return best
}
