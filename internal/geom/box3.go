package geom

import (
	"fmt"
	"math"
)

// Box3 is an axis-aligned bounding box in 3D, the "MBB" of the paper.
// An empty box has Min > Max in every component.
type Box3 struct {
	Min, Max Vec3
}

// EmptyBox returns the canonical empty box: extending it with any point
// yields the box of just that point.
func EmptyBox() Box3 {
	return Box3{
		Min: Vec3{math.Inf(1), math.Inf(1), math.Inf(1)},
		Max: Vec3{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
}

// BoxOf returns the smallest box containing all the given points.
func BoxOf(pts ...Vec3) Box3 {
	b := EmptyBox()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// IsEmpty reports whether the box contains no points.
func (b Box3) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// ExtendPoint returns the box grown to include p.
func (b Box3) ExtendPoint(p Vec3) Box3 {
	return Box3{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Union returns the smallest box containing both b and c.
func (b Box3) Union(c Box3) Box3 {
	if b.IsEmpty() {
		return c
	}
	if c.IsEmpty() {
		return b
	}
	return Box3{Min: b.Min.Min(c.Min), Max: b.Max.Max(c.Max)}
}

// Intersects reports whether b and c share at least one point
// (touching boxes count as intersecting).
func (b Box3) Intersects(c Box3) bool {
	if b.IsEmpty() || c.IsEmpty() {
		return false
	}
	return b.Min.X <= c.Max.X && c.Min.X <= b.Max.X &&
		b.Min.Y <= c.Max.Y && c.Min.Y <= b.Max.Y &&
		b.Min.Z <= c.Max.Z && c.Min.Z <= b.Max.Z
}

// Contains reports whether b fully contains c.
func (b Box3) Contains(c Box3) bool {
	if b.IsEmpty() || c.IsEmpty() {
		return false
	}
	return b.Min.X <= c.Min.X && c.Max.X <= b.Max.X &&
		b.Min.Y <= c.Min.Y && c.Max.Y <= b.Max.Y &&
		b.Min.Z <= c.Min.Z && c.Max.Z <= b.Max.Z
}

// ContainsPoint reports whether p lies inside or on the boundary of b.
func (b Box3) ContainsPoint(p Vec3) bool {
	return b.Min.X <= p.X && p.X <= b.Max.X &&
		b.Min.Y <= p.Y && p.Y <= b.Max.Y &&
		b.Min.Z <= p.Z && p.Z <= b.Max.Z
}

// Center returns the centroid of the box.
func (b Box3) Center() Vec3 {
	return Vec3{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2, (b.Min.Z + b.Max.Z) / 2}
}

// Size returns the extent of the box along each axis.
func (b Box3) Size() Vec3 {
	if b.IsEmpty() {
		return Vec3{}
	}
	return b.Max.Sub(b.Min)
}

// Volume returns the volume of the box (zero for empty or degenerate boxes).
func (b Box3) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// SurfaceArea returns the total surface area of the box.
func (b Box3) SurfaceArea() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return 2 * (s.X*s.Y + s.Y*s.Z + s.Z*s.X)
}

// Diagonal returns the length of the box's main diagonal. This is the
// MAXDIST ingredient from the paper: the diagonal of the union of two MBBs
// bounds the distance between any points covered by them.
func (b Box3) Diagonal() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.Size().Len()
}

// Expand returns the box grown by d in every direction.
func (b Box3) Expand(d float64) Box3 {
	if b.IsEmpty() {
		return b
	}
	e := Vec3{d, d, d}
	return Box3{Min: b.Min.Sub(e), Max: b.Max.Add(e)}
}

// ClosestPoint returns the point in b closest to p (p itself if inside).
func (b Box3) ClosestPoint(p Vec3) Vec3 {
	return Vec3{
		clamp(p.X, b.Min.X, b.Max.X),
		clamp(p.Y, b.Min.Y, b.Max.Y),
		clamp(p.Z, b.Min.Z, b.Max.Z),
	}
}

// DistToPoint returns the minimum distance from p to the box (0 if inside).
func (b Box3) DistToPoint(p Vec3) float64 {
	return b.ClosestPoint(p).Dist(p)
}

// MinDist returns the minimum possible distance between any point of b and
// any point of c — the MINDIST of the paper's distance range r. It is zero
// when the boxes intersect.
func (b Box3) MinDist(c Box3) float64 {
	return math.Sqrt(b.MinDist2(c))
}

// MinDist2 returns the squared MINDIST between b and c.
func (b Box3) MinDist2(c Box3) float64 {
	var d2 float64
	for i := 0; i < 3; i++ {
		gap := math.Max(c.Min.Component(i)-b.Max.Component(i), b.Min.Component(i)-c.Max.Component(i))
		if gap > 0 {
			d2 += gap * gap
		}
	}
	return d2
}

// MaxDist returns the paper's MAXDIST estimate between two object MBBs: the
// length of the diagonal of the union of the two boxes. It is an upper bound
// of the distance between the two objects as long as each object touches its
// own MBB, which is always true for minimal bounding boxes.
func (b Box3) MaxDist(c Box3) float64 {
	return b.Union(c).Diagonal()
}

// FarDist returns the maximum possible distance between any point of b and
// any point of c (the supremum over point pairs). This is a looser bound
// than MaxDist for object distance but is exact for point sets filling the
// boxes; it is used by the R-tree's MINMAXDIST-style pruning tests.
func (b Box3) FarDist(c Box3) float64 {
	var d2 float64
	for i := 0; i < 3; i++ {
		lo := math.Abs(b.Min.Component(i) - c.Max.Component(i))
		hi := math.Abs(b.Max.Component(i) - c.Min.Component(i))
		m := math.Max(lo, hi)
		d2 += m * m
	}
	return math.Sqrt(d2)
}

// Corner returns the i-th corner of the box (i in [0,8)). Bit k of i selects
// Min (0) or Max (1) along axis k.
func (b Box3) Corner(i int) Vec3 {
	p := b.Min
	if i&1 != 0 {
		p.X = b.Max.X
	}
	if i&2 != 0 {
		p.Y = b.Max.Y
	}
	if i&4 != 0 {
		p.Z = b.Max.Z
	}
	return p
}

// LongestAxis returns the axis index (0, 1 or 2) with the largest extent.
func (b Box3) LongestAxis() int {
	s := b.Size()
	if s.X >= s.Y && s.X >= s.Z {
		return 0
	}
	if s.Y >= s.Z {
		return 1
	}
	return 2
}

// String implements fmt.Stringer.
func (b Box3) String() string {
	return fmt.Sprintf("[%v .. %v]", b.Min, b.Max)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
