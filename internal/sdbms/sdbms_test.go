package sdbms

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestIntersectJoin(t *testing.T) {
	a := mesh.Icosphere(2, 1)
	b := mesh.Icosphere(2, 1) // overlaps a
	b.Translate(geom.V(3, 0, 0))
	c := mesh.Icosphere(2, 1) // far away
	c.Translate(geom.V(50, 0, 0))

	src, err := New([]*mesh.Mesh{a})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := New([]*mesh.Mesh{b, c})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := src.IntersectJoin(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (Pair{Target: 0, Source: 0}) {
		t.Errorf("got %v", got)
	}
	if stats.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}

func TestIntersectJoinContainment(t *testing.T) {
	big := mesh.Icosphere(10, 1)
	small := mesh.Icosphere(1, 1)

	outer, _ := New([]*mesh.Mesh{big})
	inner, _ := New([]*mesh.Mesh{small})
	got, _, err := outer.IntersectJoin(inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("containment missed: %v", got)
	}
	// Reverse direction.
	got2, _, err := inner.IntersectJoin(outer)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 {
		t.Errorf("reverse containment missed: %v", got2)
	}
}

func TestSelfJoinSkipsSelf(t *testing.T) {
	nuclei := datagen.Nuclei(datagen.NucleiOptions{Count: 8, SubdivisionLevel: 1, Seed: 4})
	e, err := New(nuclei)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.IntersectJoin(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("disjoint dataset self-join returned %v", got)
	}
}

func TestWithinAndNNJoin(t *testing.T) {
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(60, 60, 60)}
	ma, mb := datagen.NucleiPair(datagen.NucleiOptions{Count: 6, SubdivisionLevel: 1, Seed: 9, Space: space})
	ta, err := New(ma)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := New(mb)
	if err != nil {
		t.Fatal(err)
	}

	const dist = 14.0
	got, _, err := sb.WithinJoin(ta, dist)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Pair]bool{}
	for i := range ma {
		for j := range mb {
			if sb.distanceCross(ta, int64(i), int64(j)) <= dist {
				want[Pair{int64(i), int64(j)}] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("vacuous within test")
	}
	if len(got) != len(want) {
		t.Fatalf("within join: %d pairs, want %d", len(got), len(want))
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("spurious pair %v", p)
		}
	}

	// NN with a generous buffer matches brute force.
	ns, _, err := sb.NNJoin(ta, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != len(ma) {
		t.Fatalf("NN join returned %d results, want %d", len(ns), len(ma))
	}
	for _, n := range ns {
		best := math.Inf(1)
		for j := range mb {
			if d := sb.distanceCross(ta, n.Target, int64(j)); d < best {
				best = d
			}
		}
		if math.Abs(n.Dist-best) > 1e-9 {
			t.Errorf("target %d: NN dist %v, want %v", n.Target, n.Dist, best)
		}
	}

	// A buffer radius of ~zero misses neighbors whose MBBs are far away.
	short, _, err := sb.NNJoin(ta, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) >= len(ns) {
		t.Log("note: tiny buffer still found all neighbors (MBBs overlap)")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty input accepted")
	}
	open := &mesh.Mesh{
		Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)},
		Faces:    []mesh.Face{{0, 1, 2}},
	}
	if _, err := New([]*mesh.Mesh{open}); err == nil {
		t.Error("invalid mesh accepted")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	a := mesh.Icosphere(2, 1)
	b := mesh.Icosphere(2, 1)
	b.Translate(geom.V(9, 1, 0))
	e, err := New([]*mesh.Mesh{a, b})
	if err != nil {
		t.Fatal(err)
	}
	d1 := e.Distance(0, 1)
	d2 := e.Distance(1, 0)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
	if d1 < 4.5 || d1 > 5.5 {
		t.Errorf("distance %v implausible (want ≈ 5)", d1)
	}
	if !e.Intersects(0, 0) {
		t.Error("object should intersect itself")
	}
}
