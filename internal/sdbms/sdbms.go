// Package sdbms is the reference spatial-DBMS baseline of the paper's §6.6:
// an engine with PostGIS-style 3D query processing. It stores every object
// at full resolution (no compression, no LODs), filters candidates with an
// R-tree over MBBs (PostGIS's GiST index), and refines with brute-force
// geometry — no AABB-trees over faces, no object partitioning, no GPU.
//
// Nearest-neighbor queries follow the paper's emulation: PostGIS cannot
// filter NN candidates through the index, so a buffer box with a caller-
// provided radius is intersected with the index and every hit's exact
// distance is computed (the paper derives the radius from 3DPro's answers;
// the harness does the same).
//
// Queries run single-threaded by default, matching the paper's Fig. 13
// comparison setup.
package sdbms

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/index/rtree"
	"repro/internal/mesh"
)

// Engine is a PostGIS-like in-memory 3D store.
type Engine struct {
	meshes []*mesh.Mesh
	tris   [][]geom.Triangle
	boxes  []geom.Box3
	tree   *rtree.Tree
}

// New loads the meshes (all data in memory, as in the paper's tests).
func New(meshes []*mesh.Mesh) (*Engine, error) {
	if len(meshes) == 0 {
		return nil, fmt.Errorf("sdbms: no objects")
	}
	e := &Engine{
		meshes: meshes,
		tris:   make([][]geom.Triangle, len(meshes)),
		boxes:  make([]geom.Box3, len(meshes)),
	}
	entries := make([]rtree.Entry, len(meshes))
	for i, m := range meshes {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("sdbms: object %d: %w", i, err)
		}
		e.tris[i] = m.Triangles()
		e.boxes[i] = m.Bounds()
		entries[i] = rtree.Entry{Box: e.boxes[i], ID: int64(i)}
	}
	e.tree = rtree.BulkLoad(entries)
	return e, nil
}

// Len returns the object count.
func (e *Engine) Len() int { return len(e.meshes) }

// Pair is one join result.
type Pair struct {
	Target int64
	Source int64
}

// Stats carries the wall time of a query.
type Stats struct {
	Elapsed time.Duration
}

// Intersects is ST_3DIntersects: surface intersection or containment.
func (e *Engine) Intersects(i, j int64) bool {
	if !e.boxes[i].Intersects(e.boxes[j]) {
		return false
	}
	for _, a := range e.tris[i] {
		for _, b := range e.tris[j] {
			if geom.TriTriIntersect(a, b) {
				return true
			}
		}
	}
	return e.contains(i, j) || e.contains(j, i)
}

func (e *Engine) contains(outer, inner int64) bool {
	if !e.boxes[outer].Contains(e.boxes[inner]) {
		return false
	}
	return geom.PointInTriangles(e.meshes[inner].Vertices[0], e.tris[outer])
}

// Distance is ST_3DDistance: the minimum distance between the surfaces.
func (e *Engine) Distance(i, j int64) float64 {
	best := math.Inf(1)
	for _, a := range e.tris[i] {
		for _, b := range e.tris[j] {
			if d := geom.TriTriDist2(a, b); d < best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

// IntersectJoin returns every pair (t, s) with t from targets and s from e
// whose geometries intersect. targets may be the engine itself; identical
// indices are skipped in that case.
func (e *Engine) IntersectJoin(targets *Engine) ([]Pair, Stats, error) {
	start := time.Now()
	var out []Pair
	for t := range targets.meshes {
		tid := int64(t)
		e.tree.SearchIntersect(targets.boxes[t], func(ent rtree.Entry) bool {
			if targets == e && ent.ID == tid {
				return true
			}
			if e.intersectsCross(targets, tid, ent.ID) {
				out = append(out, Pair{Target: tid, Source: ent.ID})
			}
			return true
		})
	}
	sortPairs(out)
	return out, Stats{Elapsed: time.Since(start)}, nil
}

func (e *Engine) intersectsCross(targets *Engine, t, s int64) bool {
	for _, a := range targets.tris[t] {
		for _, b := range e.tris[s] {
			if geom.TriTriIntersect(a, b) {
				return true
			}
		}
	}
	return containsCross(e, s, targets, t) || containsCross(targets, t, e, s)
}

// containsCross reports whether outerE's object outerID fully contains
// innerE's object innerID, assuming their surfaces do not intersect.
func containsCross(outerE *Engine, outerID int64, innerE *Engine, innerID int64) bool {
	if !outerE.boxes[outerID].Contains(innerE.boxes[innerID]) {
		return false
	}
	return geom.PointInTriangles(innerE.meshes[innerID].Vertices[0], outerE.tris[outerID])
}

// WithinJoin is an ST_3DDWithin join: pairs within dist of each other.
func (e *Engine) WithinJoin(targets *Engine, dist float64) ([]Pair, Stats, error) {
	start := time.Now()
	var out []Pair
	for t := range targets.meshes {
		tid := int64(t)
		e.tree.SearchIntersect(targets.boxes[t].Expand(dist), func(ent rtree.Entry) bool {
			if targets == e && ent.ID == tid {
				return true
			}
			if e.distanceCross(targets, tid, ent.ID) <= dist {
				out = append(out, Pair{Target: tid, Source: ent.ID})
			}
			return true
		})
	}
	sortPairs(out)
	return out, Stats{Elapsed: time.Since(start)}, nil
}

func (e *Engine) distanceCross(targets *Engine, t, s int64) float64 {
	best := math.Inf(1)
	for _, a := range targets.tris[t] {
		for _, b := range e.tris[s] {
			if d := geom.TriTriDist2(a, b); d < best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

// Neighbor is one NN result.
type Neighbor struct {
	Target int64
	Source int64
	Dist   float64
}

// NNJoin emulates a PostGIS nearest-neighbor join: for each target, a
// buffer box of the given radius is intersected with the index and every
// hit's exact distance is computed; the minimum wins. The radius must be
// at least the largest true NN distance or results will be missing — the
// paper obtains it from 3DPro's own answers, as does the harness.
func (e *Engine) NNJoin(targets *Engine, bufferRadius float64) ([]Neighbor, Stats, error) {
	start := time.Now()
	var out []Neighbor
	for t := range targets.meshes {
		tid := int64(t)
		best := Neighbor{Target: tid, Source: -1, Dist: math.Inf(1)}
		e.tree.SearchIntersect(targets.boxes[t].Expand(bufferRadius), func(ent rtree.Entry) bool {
			if targets == e && ent.ID == tid {
				return true
			}
			d := e.distanceCross(targets, tid, ent.ID)
			if d < best.Dist || (d == best.Dist && ent.ID < best.Source) {
				best.Source, best.Dist = ent.ID, d
			}
			return true
		})
		if best.Source >= 0 {
			out = append(out, best)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out, Stats{Elapsed: time.Since(start)}, nil
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Target != ps[j].Target {
			return ps[i].Target < ps[j].Target
		}
		return ps[i].Source < ps[j].Source
	})
}
