package ppvp

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// quantizer snaps coordinates to a per-axis uniform grid spanning the mesh
// bounds with 2^bits cells, the "adaptive quantization" stage of the paper's
// compression pipeline.
type quantizer struct {
	origin geom.Vec3
	cell   geom.Vec3
}

func newQuantizer(b geom.Box3, bits int) quantizer {
	steps := float64(uint64(1)<<uint(bits)) - 1
	size := b.Size()
	cell := geom.V(size.X/steps, size.Y/steps, size.Z/steps)
	if cell.X <= 0 {
		cell.X = 1
	}
	if cell.Y <= 0 {
		cell.Y = 1
	}
	if cell.Z <= 0 {
		cell.Z = 1
	}
	return quantizer{origin: b.Min, cell: cell}
}

func (q quantizer) encode(p geom.Vec3) (x, y, z uint32) {
	return uint32(math.Round((p.X - q.origin.X) / q.cell.X)),
		uint32(math.Round((p.Y - q.origin.Y) / q.cell.Y)),
		uint32(math.Round((p.Z - q.origin.Z) / q.cell.Z))
}

func (q quantizer) decode(x, y, z uint32) geom.Vec3 {
	return geom.V(
		q.origin.X+float64(x)*q.cell.X,
		q.origin.Y+float64(y)*q.cell.Y,
		q.origin.Z+float64(z)*q.cell.Z,
	)
}

func (q quantizer) snap(p geom.Vec3) geom.Vec3 {
	return q.decode(q.encode(p))
}

// Compress encodes m with progressive protruding-vertex pruning (or PPMC
// when opts.Policy is PruneAny). The mesh must be a closed 2-manifold.
// Vertex coordinates are quantized before decimation, so decoding the
// highest LOD reproduces the quantized mesh exactly.
func Compress(m *mesh.Mesh, opts Options) (*Compressed, Stats, error) {
	opts.setDefaults()
	var stats Stats
	if err := m.Validate(); err != nil {
		return nil, stats, fmt.Errorf("%w: %v", ErrInvalidMesh, err)
	}
	bounds := m.Bounds()
	quant := newQuantizer(bounds, opts.QuantBits)

	// Snap all vertices to the quantization grid up front so every stage of
	// the pipeline (including the protruding test) sees the stored values.
	qm := m.Clone()
	for i, v := range qm.Vertices {
		qm.Vertices[i] = quant.snap(v)
	}

	w := newWork(qm)
	stats.FacesPerRound = append(stats.FacesPerRound, len(w.faces))

	var encodeRounds []round
	for r := 0; r < opts.Rounds; r++ {
		ops := w.decimateRound(opts.Policy, opts.MinFaces, &stats)
		if len(ops) == 0 {
			break
		}
		encodeRounds = append(encodeRounds, round{ops: ops})
		stats.FacesPerRound = append(stats.FacesPerRound, len(w.faces))
		stats.RoundsRun++
	}

	// Base mesh: compact the surviving vertices; permanent IDs start with
	// the base vertices in ascending original order.
	base := w.snapshotMesh().Clone()
	perm := make([]int32, len(w.verts))
	for i := range perm {
		perm[i] = -1
	}
	var next int32
	for i, a := range w.alive {
		if a {
			perm[i] = next
			next++
		}
	}
	baseVerts := make([]geom.Vec3, next)
	for i, a := range w.alive {
		if a {
			baseVerts[perm[i]] = w.verts[i]
		}
	}
	for i, f := range base.Faces {
		base.Faces[i] = mesh.Face{perm[f[0]], perm[f[1]], perm[f[2]]}
	}
	base.Vertices = baseVerts

	// Decode order: undo the last encode round first. Removed vertices are
	// assigned permanent IDs in that order. A ring member of an op was
	// locked during that op's encode round, so it is either a base vertex
	// or a vertex removed in a *later* encode round — i.e. one re-inserted
	// in an *earlier* decode round — so after the first pass below every
	// ring reference has a permanent ID.
	decodeRounds := make([]round, 0, len(encodeRounds))
	for r := len(encodeRounds) - 1; r >= 0; r-- {
		decodeRounds = append(decodeRounds, encodeRounds[r])
	}
	for _, rd := range decodeRounds {
		for i := range rd.ops {
			perm[rd.ops[i].origIdx] = next
			next++
		}
	}
	for _, rd := range decodeRounds {
		for i := range rd.ops {
			for j, rv := range rd.ops[i].ring {
				rd.ops[i].ring[j] = perm[rv]
			}
		}
	}

	c, err := assemble(base, decodeRounds, quant, opts, bounds, len(m.Vertices), len(m.Faces))
	if err != nil {
		return nil, stats, err
	}
	return c, stats, nil
}
