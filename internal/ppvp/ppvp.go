// Package ppvp implements the paper's primary contribution: Progressive
// Protruding-Vertex Pruning (PPVP) mesh compression.
//
// PPVP compresses a polyhedron in rounds of decimation. Each round removes
// an independent set of vertices (no two removed vertices share an edge) and
// retriangulates the resulting holes. Unlike classic progressive compression
// (PPMC), PPVP removes only *protruding* vertices — vertices whose removal
// can only cut solid tetrahedra off the object, never fill pits — so every
// lower level-of-detail (LOD) polyhedron is a progressive approximation
// (spatial subset) of every higher LOD. That guarantee powers the
// Filter-Progressive-Refine query paradigm:
//
//   - if two objects intersect at a lower LOD they intersect at every
//     higher LOD;
//   - the distance between two objects at a lower LOD is an upper bound of
//     their distance at every higher LOD.
//
// The compressed format stores a quantized base mesh (LOD 0) plus, per
// decimation round, the information needed to re-insert the removed
// vertices. Decoding is progressive: reconstructing LOD k reads only the
// base section and the round sections up to k.
package ppvp

import (
	"errors"

	"repro/internal/geom"
)

// Policy selects which vertices the encoder may remove.
type Policy int

const (
	// PruneProtruding is the PPVP policy: only protruding vertices are
	// removed, guaranteeing progressive approximations at every LOD.
	PruneProtruding Policy = iota
	// PruneAny is the classic PPMC-style policy: any vertex with a valid
	// simple one-ring may be removed. LODs carry no subset guarantee.
	PruneAny
)

func (p Policy) String() string {
	switch p {
	case PruneProtruding:
		return "ppvp"
	case PruneAny:
		return "ppmc"
	default:
		return "unknown"
	}
}

// Options configures compression.
type Options struct {
	// Rounds is the total number of decimation rounds (default 10).
	Rounds int
	// RoundsPerLOD groups this many rounds into one LOD step (default 2,
	// matching the paper's choice so consecutive LODs share few faces and
	// the face count roughly halves per LOD, r = 2).
	RoundsPerLOD int
	// QuantBits is the number of bits per coordinate for quantization
	// (default 16). Vertices are snapped to the grid before decimation, so
	// decoding the highest LOD is bit-exact with the quantized input.
	QuantBits int
	// MinFaces stops decimation when the mesh would drop below this many
	// faces (default 8).
	MinFaces int
	// Policy selects protruding-only (PPVP) or any-vertex (PPMC) pruning.
	Policy Policy
}

// DefaultOptions returns the paper's configuration: 10 rounds, 2 rounds per
// LOD (6 LODs: 1 base + 5 refinement steps), 16-bit quantization.
func DefaultOptions() Options {
	return Options{Rounds: 10, RoundsPerLOD: 2, QuantBits: 16, MinFaces: 8, Policy: PruneProtruding}
}

func (o *Options) setDefaults() {
	if o.Rounds <= 0 {
		o.Rounds = 10
	}
	if o.RoundsPerLOD <= 0 {
		o.RoundsPerLOD = 2
	}
	if o.QuantBits <= 0 {
		o.QuantBits = 16
	}
	if o.QuantBits > 30 {
		o.QuantBits = 30
	}
	if o.MinFaces <= 4 {
		o.MinFaces = 4
	}
}

// Errors returned by this package.
var (
	ErrInvalidMesh   = errors.New("ppvp: input mesh is not a closed 2-manifold")
	ErrCorruptBlob   = errors.New("ppvp: corrupt compressed blob")
	ErrLODOutOfRange = errors.New("ppvp: requested LOD out of range")
)

// Stats reports what the encoder did; the paper profiles these numbers in
// §6.2 (protruding fraction) and Fig. 11 (faces per round).
type Stats struct {
	// VerticesExamined counts candidate vertices whose one-ring was simple
	// enough to consider removing.
	VerticesExamined int
	// VerticesProtruding counts examined candidates that passed the
	// protruding test.
	VerticesProtruding int
	// VerticesRemoved counts vertices actually removed over all rounds.
	VerticesRemoved int
	// FacesPerRound[i] is the face count after round i; FacesPerRound[0]
	// holds the original count (so len = rounds+1).
	FacesPerRound []int
	// RoundsRun is the number of rounds that removed at least one vertex.
	RoundsRun int
}

// ProtrudingFraction returns the fraction of examined vertices that were
// protruding (the paper reports ≈99 % for nuclei, ≈75 % for vessels).
func (s Stats) ProtrudingFraction() float64 {
	if s.VerticesExamined == 0 {
		return 0
	}
	return float64(s.VerticesProtruding) / float64(s.VerticesExamined)
}

// op records one vertex removal. Decoding re-inserts the vertex by deleting
// the patch triangles and restoring the original fan around the vertex.
type op struct {
	pos  geom.Vec3 // removed vertex position (already quantized)
	ring []int32   // ordered CCW one-ring, as permanent vertex IDs
	// strat records which hole triangulation the encoder chose: 0 is the
	// ear-clipping result, k ≥ 1 is the fan rooted at ring vertex k-1. The
	// decoder re-derives the patch from the ring positions and this byte,
	// so the triangles themselves need not be stored.
	strat   uint16
	patch   [][3]uint16 // encode-time cache of the chosen triangulation
	origIdx int32       // encode-time original vertex index (not serialized)
}

// round groups the independent removals of one decimation round.
type round struct {
	ops []op
}
