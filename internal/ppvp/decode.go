package ppvp

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/mesh"
)

// Decoder incrementally reconstructs a compressed object from LOD 0 upward.
// Decoding to LOD k and later to LOD k+1 reuses the LOD-k state, which is
// exactly how the engine's progressive refinement consumes it. A Decoder is
// not safe for concurrent use; the Compressed it reads from is.
type Decoder struct {
	c             *Compressed
	verts         []geom.Vec3
	faces         []mesh.Face
	faceIdx       map[faceKey]int32
	roundsApplied int
}

// NewDecoder returns a decoder positioned at LOD 0.
func (c *Compressed) NewDecoder() (*Decoder, error) {
	base, err := c.parseBase()
	if err != nil {
		return nil, err
	}
	// The header totals are only capacity hints; clamp them by what the
	// blob could possibly inflate to (DEFLATE expands ≤ ~1032×, a vertex
	// costs ≥ 3 raw bytes) so a corrupt header cannot force a huge
	// allocation before the sections are even parsed.
	vcap := clampCap(c.nVertsTotal, len(base.Vertices), len(c.blob))
	fcap := clampCap(c.nFacesTotal, len(base.Faces), len(c.blob))
	d := &Decoder{
		c:       c,
		verts:   append(make([]geom.Vec3, 0, vcap), base.Vertices...),
		faces:   append(make([]mesh.Face, 0, fcap), base.Faces...),
		faceIdx: make(map[faceKey]int32, fcap),
	}
	for i, f := range d.faces {
		d.faceIdx[keyOf(f)] = int32(i)
	}
	return d, nil
}

// clampCap bounds a header-claimed element count to what blobLen bytes of
// DEFLATE input could actually encode, but never below the already-parsed
// base count.
func clampCap(claimed, have, blobLen int) int {
	limit := blobLen * 344 // 1032× max expansion / 3 bytes per element
	if limit < 0 {
		limit = claimed // overflow: blob already huge, trust the header
	}
	if claimed > limit {
		claimed = limit
	}
	if claimed < have {
		claimed = have
	}
	return claimed
}

// CurrentLOD returns the LOD the decoder state currently represents.
func (d *Decoder) CurrentLOD() int {
	return (d.roundsApplied + d.c.roundsPerLOD - 1) / d.c.roundsPerLOD
}

// RoundsApplied returns how many decode rounds the decoder has replayed so
// far. A warm-start consumer resuming this decoder skips exactly this many
// rounds compared to a cold decode.
func (d *Decoder) RoundsApplied() int { return d.roundsApplied }

// CanAdvanceTo reports whether DecodeTo(lod) is legal for this decoder:
// progressive decoding can only move forward, so the rounds required by lod
// must be at or beyond the rounds already applied.
func (d *Decoder) CanAdvanceTo(lod int) bool {
	return lod >= 0 && lod <= d.c.MaxLOD() && d.c.roundsForLOD(lod) >= d.roundsApplied
}

// DecodeTo advances the decoder to the given LOD (which must be ≥ the
// current LOD) and returns an independent snapshot of the mesh at that LOD.
func (d *Decoder) DecodeTo(lod int) (*mesh.Mesh, error) {
	if err := faultinject.Fire(faultinject.PointPPVPDecode); err != nil {
		return nil, err
	}
	if lod < 0 || lod > d.c.MaxLOD() {
		return nil, fmt.Errorf("%w: lod %d of [0,%d]", ErrLODOutOfRange, lod, d.c.MaxLOD())
	}
	target := d.c.roundsForLOD(lod)
	if target < d.roundsApplied {
		return nil, fmt.Errorf("ppvp: decoder cannot rewind (at round %d, want %d); use a new decoder", d.roundsApplied, target)
	}
	for d.roundsApplied < target {
		rd, err := d.c.parseRound(d.roundsApplied)
		if err != nil {
			return nil, err
		}
		for i := range rd.ops {
			if err := d.applyOp(&rd.ops[i]); err != nil {
				return nil, err
			}
		}
		d.roundsApplied++
	}
	return d.snapshot(), nil
}

// snapshot clones the current mesh state.
func (d *Decoder) snapshot() *mesh.Mesh {
	m := &mesh.Mesh{
		Vertices: append([]geom.Vec3(nil), d.verts...),
		Faces:    append([]mesh.Face(nil), d.faces...),
	}
	return m
}

// applyOp re-inserts one removed vertex: the deterministic ear-clipping is
// re-run on the ring positions to identify the patch triangles to delete,
// then the original fan around the vertex is restored.
func (d *Decoder) applyOp(o *op) error {
	n := int32(len(d.verts))
	ringPts := make([]geom.Vec3, len(o.ring))
	for i, id := range o.ring {
		if id < 0 || id >= n {
			return fmt.Errorf("%w: ring reference %d out of %d vertices", ErrCorruptBlob, id, n)
		}
		ringPts[i] = d.verts[id]
	}
	// Recompute the patch triangulation from the recorded strategy; do not
	// cache it on the shared op, several decoders may work off the same
	// Compressed concurrently.
	patch := o.patch
	if patch == nil {
		var ok bool
		patch, ok = patchForStrategy(ringPts, o.strat)
		if !ok {
			return fmt.Errorf("%w: ring cannot be retriangulated", ErrCorruptBlob)
		}
	}

	// Delete the patch faces.
	for _, t := range patch {
		f := mesh.Face{o.ring[t[0]], o.ring[t[1]], o.ring[t[2]]}
		key := keyOf(f)
		idx, ok := d.faceIdx[key]
		if !ok {
			return fmt.Errorf("%w: patch face %v missing from mesh", ErrCorruptBlob, f)
		}
		last := int32(len(d.faces) - 1)
		if idx != last {
			d.faces[idx] = d.faces[last]
			d.faceIdx[keyOf(d.faces[idx])] = idx
		}
		d.faces = d.faces[:last]
		delete(d.faceIdx, key)
	}

	// Restore the vertex and its fan.
	vid := n
	d.verts = append(d.verts, o.pos)
	for i := range o.ring {
		f := mesh.Face{vid, o.ring[i], o.ring[(i+1)%len(o.ring)]}
		d.faceIdx[keyOf(f)] = int32(len(d.faces))
		d.faces = append(d.faces, f)
	}
	return nil
}

// Decode reconstructs the object at the given LOD with a fresh decoder.
// Prefer NewDecoder + DecodeTo when walking several LODs upward.
func (c *Compressed) Decode(lod int) (*mesh.Mesh, error) {
	d, err := c.NewDecoder()
	if err != nil {
		return nil, err
	}
	return d.DecodeTo(lod)
}
