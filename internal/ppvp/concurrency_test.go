package ppvp

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestConcurrentDecoders(t *testing.T) {
	// Many goroutines walking their own decoders over one shared
	// Compressed must all reconstruct identical meshes (run under -race in
	// CI to catch section-parse races).
	m := mesh.Icosphere(6, 3)
	c, _, err := Compress(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*mesh.Mesh, c.MaxLOD()+1)
	for lod := range want {
		want[lod], err = c.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec, err := c.NewDecoder()
			if err != nil {
				errs <- err.Error()
				return
			}
			for lod := 0; lod <= c.MaxLOD(); lod++ {
				got, err := dec.DecodeTo(lod)
				if err != nil {
					errs <- err.Error()
					return
				}
				if got.NumVertices() != want[lod].NumVertices() || got.NumFaces() != want[lod].NumFaces() {
					errs <- "decode size mismatch"
					return
				}
				for i, v := range want[lod].Vertices {
					if got.Vertices[i] != v {
						errs <- "decode vertex mismatch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestQuantizerRoundTripProperty(t *testing.T) {
	b := geom.Box3{Min: geom.V(-100, -50, 0), Max: geom.V(100, 50, 30)}
	q := newQuantizer(b, 16)
	cellDiag := q.cell.Len()

	f := func(fx, fy, fz float64) bool {
		// Map arbitrary floats into the box.
		p := geom.V(
			b.Min.X+mod1(fx)*b.Size().X,
			b.Min.Y+mod1(fy)*b.Size().Y,
			b.Min.Z+mod1(fz)*b.Size().Z,
		)
		s := q.snap(p)
		// Snapping moves a point at most one cell diagonal, and snapping
		// is idempotent.
		if s.Dist(p) > cellDiag {
			return false
		}
		return q.snap(s) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod1(x float64) float64 {
	if x != x || x > 1e300 || x < -1e300 {
		return 0.5
	}
	v := x - float64(int64(x))
	if v < 0 {
		v++
	}
	return v
}

func TestQuantizerDegenerateAxis(t *testing.T) {
	// A flat box (zero Z extent) must not divide by zero.
	b := geom.Box3{Min: geom.V(0, 0, 5), Max: geom.V(10, 10, 5)}
	q := newQuantizer(b, 12)
	p := q.snap(geom.V(3, 4, 5))
	if !p.IsFinite() {
		t.Fatalf("snap produced %v", p)
	}
	if p.Z != 5 {
		t.Errorf("flat axis moved: %v", p)
	}
}
