package ppvp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func compressSphere(t *testing.T, radius float64, level int, opts Options) (*mesh.Mesh, *Compressed, Stats) {
	t.Helper()
	m := mesh.Icosphere(radius, level)
	c, st, err := Compress(m, opts)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	return m, c, st
}

func TestCompressBasics(t *testing.T) {
	m, c, st := compressSphere(t, 10, 2, DefaultOptions())

	if st.RoundsRun == 0 || st.VerticesRemoved == 0 {
		t.Fatalf("no decimation happened: %+v", st)
	}
	if c.MaxLOD() < 1 {
		t.Fatalf("MaxLOD = %d, want >= 1", c.MaxLOD())
	}
	if c.NumLODs() != c.MaxLOD()+1 {
		t.Errorf("NumLODs inconsistent with MaxLOD")
	}
	if c.PolicyUsed() != PruneProtruding {
		t.Errorf("policy = %v", c.PolicyUsed())
	}
	if got := c.MBB(); got != m.Bounds() {
		t.Errorf("MBB = %v, want %v", got, m.Bounds())
	}
	// Compression must actually shrink the data.
	raw := len(m.Vertices)*24 + len(m.Faces)*12
	if c.TotalSize() >= raw {
		t.Errorf("compressed %d >= raw %d", c.TotalSize(), raw)
	}
}

func TestAllLODsAreValidManifolds(t *testing.T) {
	_, c, _ := compressSphere(t, 5, 3, DefaultOptions())
	for lod := 0; lod <= c.MaxLOD(); lod++ {
		g, err := c.Decode(lod)
		if err != nil {
			t.Fatalf("Decode(%d): %v", lod, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("LOD %d invalid: %v", lod, err)
		}
	}
}

func TestHighestLODLossless(t *testing.T) {
	// Decoding the highest LOD must reproduce the quantized input exactly:
	// identical vertex multiset and identical face set (up to reindexing).
	m, c, _ := compressSphere(t, 7, 2, DefaultOptions())
	got, err := c.Decode(c.MaxLOD())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != m.NumVertices() || got.NumFaces() != m.NumFaces() {
		t.Fatalf("size mismatch: %v vs %v", got, m)
	}

	quant := newQuantizer(m.Bounds(), 16)
	type key [9]float64
	faceSet := func(mm *mesh.Mesh, snap bool) map[key]int {
		set := make(map[key]int, mm.NumFaces())
		for _, f := range mm.Faces {
			var pts [3]geom.Vec3
			for i := 0; i < 3; i++ {
				p := mm.Vertices[f[i]]
				if snap {
					p = quant.snap(p)
				}
				pts[i] = p
			}
			// Rotate so the lexicographically smallest vertex leads,
			// preserving orientation.
			lead := 0
			for i := 1; i < 3; i++ {
				if less(pts[i], pts[lead]) {
					lead = i
				}
			}
			var k key
			for i := 0; i < 3; i++ {
				p := pts[(lead+i)%3]
				k[3*i], k[3*i+1], k[3*i+2] = p.X, p.Y, p.Z
			}
			set[k]++
		}
		return set
	}
	want := faceSet(m, true)
	have := faceSet(got, false)
	if len(want) != len(have) {
		t.Fatalf("face set sizes differ: %d vs %d", len(want), len(have))
	}
	for k, n := range want {
		if have[k] != n {
			t.Fatalf("face %v count mismatch: want %d, have %d", k, n, have[k])
		}
	}
}

func less(a, b geom.Vec3) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.Z < b.Z
}

func TestProgressiveApproximationProperty(t *testing.T) {
	// The PPVP guarantee: each LOD is a spatial subset of the next. We test
	// it two ways: non-decreasing volume, and sampled containment.
	shapes := map[string]*mesh.Mesh{
		"sphere":    mesh.Icosphere(10, 3),
		"ellipsoid": mesh.Ellipsoid(8, 5, 3, 3),
		"tube": mesh.Tube(
			[]geom.Vec3{geom.V(0, 0, 0), geom.V(0, 1, 3), geom.V(1, 1, 6), geom.V(1, 0, 9)},
			[]float64{1, 1.2, 1.1, 0.9}, 10),
	}
	rng := rand.New(rand.NewSource(123))
	for name, m := range shapes {
		c, _, err := Compress(m, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var meshes []*mesh.Mesh
		dec, err := c.NewDecoder()
		if err != nil {
			t.Fatal(err)
		}
		for lod := 0; lod <= c.MaxLOD(); lod++ {
			g, err := dec.DecodeTo(lod)
			if err != nil {
				t.Fatalf("%s lod %d: %v", name, lod, err)
			}
			meshes = append(meshes, g)
		}
		for lod := 1; lod < len(meshes); lod++ {
			lo, hi := meshes[lod-1], meshes[lod]
			if lo.Volume() > hi.Volume()+1e-9 {
				t.Errorf("%s: volume decreased from LOD %d (%v) to %d (%v)",
					name, lod-1, lo.Volume(), lod, hi.Volume())
			}
			// Sample interior points of the lower LOD; all must be inside
			// the higher LOD.
			hiTris := hi.Triangles()
			b := lo.Bounds()
			checked := 0
			for i := 0; i < 3000 && checked < 60; i++ {
				p := geom.V(
					b.Min.X+rng.Float64()*b.Size().X,
					b.Min.Y+rng.Float64()*b.Size().Y,
					b.Min.Z+rng.Float64()*b.Size().Z,
				)
				if !lo.ContainsPoint(p) {
					continue
				}
				checked++
				if !geom.PointInTriangles(p, hiTris) {
					t.Fatalf("%s: point %v inside LOD %d but outside LOD %d", name, p, lod-1, lod)
				}
			}
			if checked == 0 {
				t.Fatalf("%s: no interior samples found for LOD %d", name, lod-1)
			}
		}
	}
}

func TestDistanceMonotonicity(t *testing.T) {
	// Paper §3.2 property 2: distance between two objects at a lower LOD is
	// ≥ distance at a higher LOD.
	a := mesh.Icosphere(5, 3)
	b := mesh.Icosphere(5, 3)
	b.Translate(geom.V(14, 2, 1))

	ca, _, err := Compress(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cb, _, err := Compress(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	maxLOD := ca.MaxLOD()
	if cb.MaxLOD() < maxLOD {
		maxLOD = cb.MaxLOD()
	}
	prev := math.Inf(1)
	for lod := 0; lod <= maxLOD; lod++ {
		ga, err := ca.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := cb.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
		d := bruteDist(ga, gb)
		if d > prev+1e-9 {
			t.Fatalf("distance increased at LOD %d: %v > %v", lod, d, prev)
		}
		prev = d
	}
	// At the highest LOD the spheres are 14.25-10=4.25ish apart; sanity.
	if prev <= 0 || prev > 10 {
		t.Errorf("final distance %v implausible", prev)
	}
}

func bruteDist(a, b *mesh.Mesh) float64 {
	ta, tb := a.Triangles(), b.Triangles()
	best := math.Inf(1)
	for _, x := range ta {
		for _, y := range tb {
			if d := geom.TriTriDist2(x, y); d < best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

func TestIntersectionMonotonicity(t *testing.T) {
	// Property 1: intersection at a lower LOD implies intersection at every
	// higher LOD. Build two overlapping blobs and check every LOD pair.
	a := mesh.Icosphere(6, 3)
	b := mesh.Icosphere(6, 3)
	b.Translate(geom.V(8, 0, 0)) // overlapping

	ca, _, _ := Compress(a, DefaultOptions())
	cb, _, _ := Compress(b, DefaultOptions())
	maxLOD := min(ca.MaxLOD(), cb.MaxLOD())
	prevIntersect := false
	for lod := 0; lod <= maxLOD; lod++ {
		ga, _ := ca.Decode(lod)
		gb, _ := cb.Decode(lod)
		inter := bruteIntersect(ga, gb)
		if prevIntersect && !inter {
			t.Fatalf("intersected at LOD %d but not at LOD %d", lod-1, lod)
		}
		prevIntersect = inter
	}
	if !prevIntersect {
		t.Error("spheres overlapping by construction never intersected")
	}
}

func bruteIntersect(a, b *mesh.Mesh) bool {
	ta, tb := a.Triangles(), b.Triangles()
	for _, x := range ta {
		for _, y := range tb {
			if geom.TriTriIntersect(x, y) {
				return true
			}
		}
	}
	return false
}

func TestSerializationRoundTrip(t *testing.T) {
	_, c, _ := compressSphere(t, 4, 2, DefaultOptions())
	blob := c.Bytes()
	c2, err := FromBytes(blob)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if c2.MaxLOD() != c.MaxLOD() || c2.TotalSize() != c.TotalSize() {
		t.Fatalf("metadata mismatch after round trip")
	}
	if c2.MBB() != c.MBB() {
		t.Errorf("MBB mismatch: %v vs %v", c2.MBB(), c.MBB())
	}
	for lod := 0; lod <= c.MaxLOD(); lod++ {
		g1, err := c.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := c2.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
		if g1.NumVertices() != g2.NumVertices() || g1.NumFaces() != g2.NumFaces() {
			t.Fatalf("LOD %d: decoded sizes differ", lod)
		}
		for i, v := range g1.Vertices {
			if v != g2.Vertices[i] {
				t.Fatalf("LOD %d vertex %d: %v vs %v", lod, i, v, g2.Vertices[i])
			}
		}
	}
}

func TestFromBytesRejectsCorruption(t *testing.T) {
	_, c, _ := compressSphere(t, 4, 1, DefaultOptions())
	blob := append([]byte(nil), c.Bytes()...)

	// Bad magic.
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := FromBytes(bad); err == nil {
		t.Error("bad magic accepted")
	}

	// Bad version.
	bad = append([]byte(nil), blob...)
	bad[4] = 99
	if _, err := FromBytes(bad); err == nil {
		t.Error("bad version accepted")
	}

	// Truncated.
	if _, err := FromBytes(blob[:len(blob)/2]); err == nil {
		t.Error("truncated blob accepted")
	}

	// Empty.
	if _, err := FromBytes(nil); err == nil {
		t.Error("empty blob accepted")
	}
}

func TestDecoderSemantics(t *testing.T) {
	_, c, _ := compressSphere(t, 4, 2, DefaultOptions())
	d, err := c.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	if d.CurrentLOD() != 0 {
		t.Errorf("fresh decoder LOD = %d", d.CurrentLOD())
	}
	if _, err := d.DecodeTo(2); err != nil {
		t.Fatal(err)
	}
	if d.CurrentLOD() != 2 {
		t.Errorf("LOD after DecodeTo(2) = %d", d.CurrentLOD())
	}
	// Rewinding is refused.
	if _, err := d.DecodeTo(1); err == nil {
		t.Error("rewind accepted")
	}
	// Same LOD is fine.
	if _, err := d.DecodeTo(2); err != nil {
		t.Errorf("re-decode same LOD: %v", err)
	}
	// Out of range.
	if _, err := d.DecodeTo(c.MaxLOD() + 1); err == nil {
		t.Error("out-of-range LOD accepted")
	}
	if _, err := d.DecodeTo(-1); err == nil {
		t.Error("negative LOD accepted")
	}
}

func TestDecodeSnapshotsIndependent(t *testing.T) {
	_, c, _ := compressSphere(t, 4, 2, DefaultOptions())
	d, _ := c.NewDecoder()
	g1, _ := d.DecodeTo(0)
	v0 := g1.Vertices[0]
	g2, _ := d.DecodeTo(1)
	g1.Vertices[0] = geom.V(1e9, 0, 0)
	g3, _ := d.DecodeTo(1)
	if g2.Vertices[0] != g3.Vertices[0] {
		t.Error("snapshots share storage across DecodeTo calls")
	}
	g4, _ := c.Decode(0)
	if g4.Vertices[0] != v0 {
		t.Error("mutating a snapshot corrupted the compressed object")
	}
}

func TestPruneAnyPolicy(t *testing.T) {
	// PPMC-style compression must round-trip too, and usually removes at
	// least as many vertices as PPVP.
	m := mesh.Ellipsoid(6, 4, 3, 3)
	optsAny := DefaultOptions()
	optsAny.Policy = PruneAny
	cAny, stAny, err := Compress(m, optsAny)
	if err != nil {
		t.Fatal(err)
	}
	_, stPPVP, err := Compress(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stAny.VerticesRemoved < stPPVP.VerticesRemoved {
		t.Errorf("PruneAny removed %d < PPVP %d", stAny.VerticesRemoved, stPPVP.VerticesRemoved)
	}
	for lod := 0; lod <= cAny.MaxLOD(); lod++ {
		g, err := cAny.Decode(lod)
		if err != nil {
			t.Fatalf("lod %d: %v", lod, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("lod %d invalid: %v", lod, err)
		}
	}
	// Highest LOD still lossless.
	top, _ := cAny.Decode(cAny.MaxLOD())
	if top.NumFaces() != m.NumFaces() {
		t.Errorf("PruneAny top LOD faces = %d, want %d", top.NumFaces(), m.NumFaces())
	}
}

func TestCompressRejectsInvalidMesh(t *testing.T) {
	open := &mesh.Mesh{
		Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)},
		Faces:    []mesh.Face{{0, 1, 2}},
	}
	if _, _, err := Compress(open, DefaultOptions()); err == nil {
		t.Error("open mesh accepted")
	}
}

func TestLODSizes(t *testing.T) {
	_, c, _ := compressSphere(t, 10, 3, DefaultOptions())
	sizes := c.LODSizes()
	if len(sizes) != c.NumLODs() {
		t.Fatalf("LODSizes len = %d, want %d", len(sizes), c.NumLODs())
	}
	var sum int
	for lod, s := range sizes {
		if s <= 0 {
			t.Errorf("LOD %d size %d", lod, s)
		}
		sum += s
	}
	if sum >= c.TotalSize() {
		t.Errorf("sections %d >= total %d (header missing?)", sum, c.TotalSize())
	}
	ss := c.SectionSizes()
	if len(ss) != 1+c.NumRounds() {
		t.Errorf("SectionSizes len = %d", len(ss))
	}
}

func TestFacesHalveEveryTwoRounds(t *testing.T) {
	// Fig. 11: for a nucleus-like mesh the face count roughly halves every
	// two rounds of decimation while decimation is unconstrained.
	m := mesh.Icosphere(10, 3) // 1280 faces
	_, st, err := Compress(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.FacesPerRound) < 5 {
		t.Fatalf("too few rounds: %v", st.FacesPerRound)
	}
	// Check the first two LOD steps (4 rounds): ratio in [1.5, 3] per step.
	for step := 0; step < 2; step++ {
		f0 := float64(st.FacesPerRound[2*step])
		f1 := float64(st.FacesPerRound[2*step+2])
		r := f0 / f1
		if r < 1.5 || r > 3.2 {
			t.Errorf("LOD step %d: face ratio %v outside [1.5, 3.2] (%v)", step, r, st.FacesPerRound)
		}
	}
}

func TestProfileProtruding(t *testing.T) {
	// A convex-ish sphere should be ~100 % protruding.
	sphere := mesh.Icosphere(10, 2)
	p, e := ProfileProtruding(sphere)
	if e == 0 {
		t.Fatal("nothing examined")
	}
	if frac := float64(p) / float64(e); frac < 0.95 {
		t.Errorf("sphere protruding fraction = %v, want >= 0.95", frac)
	}

	// A bifurcated tube has recessing joints: fraction must be lower than a
	// sphere's but still majority-protruding.
	tube := mesh.Tube(
		[]geom.Vec3{geom.V(0, 0, 0), geom.V(0, 0, 2), geom.V(0, 1, 4), geom.V(0, 0, 6), geom.V(0, -1, 8)},
		[]float64{0.5, 0.8, 0.5, 0.9, 0.5}, 12)
	p2, e2 := ProfileProtruding(tube)
	if e2 == 0 {
		t.Fatal("nothing examined on tube")
	}
	if frac := float64(p2) / float64(e2); frac < 0.4 {
		t.Errorf("tube protruding fraction = %v suspiciously low", frac)
	}
}

func TestStatsProtrudingFraction(t *testing.T) {
	var s Stats
	if s.ProtrudingFraction() != 0 {
		t.Error("empty stats fraction should be 0")
	}
	s.VerticesExamined = 10
	s.VerticesProtruding = 9
	if got := s.ProtrudingFraction(); got != 0.9 {
		t.Errorf("fraction = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.Rounds != 10 || o.RoundsPerLOD != 2 || o.QuantBits != 16 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{QuantBits: 99}
	o.setDefaults()
	if o.QuantBits > 30 {
		t.Errorf("QuantBits not clamped: %d", o.QuantBits)
	}
}

func TestPolicyString(t *testing.T) {
	if PruneProtruding.String() != "ppvp" || PruneAny.String() != "ppmc" {
		t.Error("Policy String() wrong")
	}
	if Policy(42).String() != "unknown" {
		t.Error("unknown policy String() wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSharedFaceFractions(t *testing.T) {
	_, c, _ := compressSphere(t, 8, 3, DefaultOptions())
	fs, err := SharedFaceFractions(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != c.MaxLOD() {
		t.Fatalf("fractions = %d, want %d", len(fs), c.MaxLOD())
	}
	for i, f := range fs {
		if f < 0 || f > 1 {
			t.Errorf("fraction %d = %v out of range", i, f)
		}
	}
	// With 2 rounds per LOD, most faces should be replaced between LODs
	// (the paper's figure is ~15.6% shared).
	var avg float64
	for _, f := range fs {
		avg += f
	}
	avg /= float64(len(fs))
	if avg > 0.6 {
		t.Errorf("average shared fraction %v suspiciously high", avg)
	}
}
