package ppvp

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// Blob layout (version 1):
//
//	magic "PPVP" | version u8 | policy u8 | quantBits u8 | roundsPerLOD u8
//	nRounds uvarint
//	origin 3×f64 | cell 3×f64 | boundsMax 3×f64
//	nVertsTotal uvarint | nFacesTotal uvarint
//	sectionLens (1+nRounds)×uvarint
//	sections... (each DEFLATE-compressed)
//
// Section 0 is the base mesh (LOD 0); section 1+i is decode round i (the
// inverse of encode round nRounds-i). Patch triangulations are not stored:
// the decoder re-runs the deterministic ear-clipping on the ring positions,
// which reproduces the encoder's choice exactly because both sides operate
// on the same quantized coordinates.
const (
	formatVersion = 1
)

var magic = [4]byte{'P', 'P', 'V', 'P'}

// wbuf is an append-only varint writer.
type wbuf struct{ b []byte }

func (w *wbuf) uvarint(v uint64)  { w.b = binary.AppendUvarint(w.b, v) }
func (w *wbuf) zigzag(v int64)    { w.b = binary.AppendUvarint(w.b, uint64((v<<1)^(v>>63))) }
func (w *wbuf) float64(f float64) { w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(f)) }
func (w *wbuf) byte(v byte)       { w.b = append(w.b, v) }

// rbuf is the matching reader; it latches the first error.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = ErrCorruptBlob
	}
}

func (r *rbuf) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *rbuf) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *rbuf) float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *rbuf) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Compressed is a PPVP-compressed polyhedron: a self-contained blob plus
// lazily parsed sections shared by all decoders.
type Compressed struct {
	blob []byte

	policy       Policy
	quantBits    int
	roundsPerLOD int
	nRounds      int
	bounds       geom.Box3
	quant        quantizer
	nVertsTotal  int
	nFacesTotal  int

	sectionOff []int // offsets into blob, len = nSections+1

	mu     sync.Mutex
	base   *mesh.Mesh // parsed LOD-0 mesh (permanent numbering); treat as read-only
	rounds []*round   // parsed decode rounds, nil until needed
}

// deflate compresses raw with DEFLATE (the entropy-coding stage).
func deflate(raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// maxSectionBytes caps the inflated size of one section; a blob claiming
// more is corrupt (or hostile), not a real object.
const maxSectionBytes = 1 << 30

func inflate(comp []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	raw, err := io.ReadAll(io.LimitReader(fr, maxSectionBytes+1))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptBlob, err)
	}
	if len(raw) > maxSectionBytes {
		return nil, fmt.Errorf("%w: section exceeds %d bytes", ErrCorruptBlob, maxSectionBytes)
	}
	return raw, nil
}

// assemble serializes the base mesh and decode rounds into a blob.
func assemble(base *mesh.Mesh, decodeRounds []round, quant quantizer, opts Options, bounds geom.Box3, nv, nf int) (*Compressed, error) {
	sections := make([][]byte, 0, 1+len(decodeRounds))

	// Base section.
	var bw wbuf
	bw.uvarint(uint64(len(base.Vertices)))
	var px, py, pz uint32
	for _, v := range base.Vertices {
		x, y, z := quant.encode(v)
		bw.zigzag(int64(x) - int64(px))
		bw.zigzag(int64(y) - int64(py))
		bw.zigzag(int64(z) - int64(pz))
		px, py, pz = x, y, z
	}
	bw.uvarint(uint64(len(base.Faces)))
	var prev int64
	for _, f := range base.Faces {
		for _, idx := range f {
			bw.zigzag(int64(idx) - prev)
			prev = int64(idx)
		}
	}
	sections = append(sections, bw.b)

	// Round sections.
	for _, rd := range decodeRounds {
		var rw wbuf
		rw.uvarint(uint64(len(rd.ops)))
		var ox, oy, oz uint32
		for _, o := range rd.ops {
			x, y, z := quant.encode(o.pos)
			rw.zigzag(int64(x) - int64(ox))
			rw.zigzag(int64(y) - int64(oy))
			rw.zigzag(int64(z) - int64(oz))
			ox, oy, oz = x, y, z
			rw.uvarint(uint64(o.strat))
			rw.uvarint(uint64(len(o.ring)))
			var pr int64
			for _, id := range o.ring {
				rw.zigzag(int64(id) - pr)
				pr = int64(id)
			}
		}
		sections = append(sections, rw.b)
	}

	// Header + compressed sections.
	var hw wbuf
	hw.b = append(hw.b, magic[:]...)
	hw.byte(formatVersion)
	hw.byte(byte(opts.Policy))
	hw.byte(byte(opts.QuantBits))
	hw.byte(byte(opts.RoundsPerLOD))
	hw.uvarint(uint64(len(decodeRounds)))
	hw.float64(quant.origin.X)
	hw.float64(quant.origin.Y)
	hw.float64(quant.origin.Z)
	hw.float64(quant.cell.X)
	hw.float64(quant.cell.Y)
	hw.float64(quant.cell.Z)
	hw.float64(bounds.Max.X)
	hw.float64(bounds.Max.Y)
	hw.float64(bounds.Max.Z)
	hw.uvarint(uint64(nv))
	hw.uvarint(uint64(nf))

	comp := make([][]byte, len(sections))
	for i, s := range sections {
		c, err := deflate(s)
		if err != nil {
			return nil, err
		}
		comp[i] = c
		hw.uvarint(uint64(len(c)))
	}
	blob := hw.b
	offsets := make([]int, len(comp)+1)
	offsets[0] = len(blob)
	for i, c := range comp {
		blob = append(blob, c...)
		offsets[i+1] = len(blob)
	}

	c := &Compressed{
		blob:         blob,
		policy:       opts.Policy,
		quantBits:    opts.QuantBits,
		roundsPerLOD: opts.RoundsPerLOD,
		nRounds:      len(decodeRounds),
		bounds:       bounds,
		quant:        quant,
		nVertsTotal:  nv,
		nFacesTotal:  nf,
		sectionOff:   offsets,
		base:         base,
		rounds:       make([]*round, len(decodeRounds)),
	}
	for i := range decodeRounds {
		rd := decodeRounds[i]
		c.rounds[i] = &rd
	}
	return c, nil
}

// Bytes returns the serialized blob. The caller must not modify it.
func (c *Compressed) Bytes() []byte { return c.blob }

// TotalSize returns the blob size in bytes.
func (c *Compressed) TotalSize() int { return len(c.blob) }

// FromBytes parses a blob produced by Bytes. Sections are parsed lazily on
// first decode.
func FromBytes(blob []byte) (*Compressed, error) {
	r := &rbuf{b: blob}
	var m [4]byte
	for i := range m {
		m[i] = r.byte()
	}
	if r.err != nil || m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptBlob)
	}
	if v := r.byte(); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptBlob, v)
	}
	c := &Compressed{blob: blob}
	c.policy = Policy(r.byte())
	c.quantBits = int(r.byte())
	c.roundsPerLOD = int(r.byte())
	c.nRounds = int(r.uvarint())
	c.quant.origin = geom.V(r.float64(), r.float64(), r.float64())
	c.quant.cell = geom.V(r.float64(), r.float64(), r.float64())
	maxPt := geom.V(r.float64(), r.float64(), r.float64())
	c.bounds = geom.Box3{Min: c.quant.origin, Max: maxPt}
	c.nVertsTotal = int(r.uvarint())
	c.nFacesTotal = int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if c.nRounds < 0 || c.nRounds > 1<<20 || c.roundsPerLOD <= 0 {
		return nil, ErrCorruptBlob
	}
	if c.nVertsTotal < 0 || c.nVertsTotal > 1<<28 || c.nFacesTotal < 0 || c.nFacesTotal > 1<<28 {
		return nil, fmt.Errorf("%w: implausible vertex/face totals", ErrCorruptBlob)
	}
	nSections := 1 + c.nRounds
	lens := make([]int, nSections)
	for i := range lens {
		l := int(r.uvarint())
		// A negative (overflowed) or oversized length would make the
		// section offsets non-monotonic and slicing would panic.
		if l < 0 || l > len(blob) {
			return nil, fmt.Errorf("%w: bad section length", ErrCorruptBlob)
		}
		lens[i] = l
	}
	if r.err != nil {
		return nil, r.err
	}
	c.sectionOff = make([]int, nSections+1)
	c.sectionOff[0] = r.off
	for i, l := range lens {
		c.sectionOff[i+1] = c.sectionOff[i] + l
	}
	if c.sectionOff[nSections] != len(blob) {
		return nil, fmt.Errorf("%w: section lengths do not match blob size", ErrCorruptBlob)
	}
	c.rounds = make([]*round, c.nRounds)
	return c, nil
}

// MBB returns the minimal bounding box of the object at its highest LOD.
// Because PPVP LODs are progressive approximations, every LOD fits inside
// this box, so it is the correct box to index in the global R-tree.
func (c *Compressed) MBB() geom.Box3 { return c.bounds }

// NumRounds returns the number of stored decimation rounds.
func (c *Compressed) NumRounds() int { return c.nRounds }

// MaxLOD returns the highest LOD index; LOD MaxLOD reproduces the quantized
// original mesh.
func (c *Compressed) MaxLOD() int {
	return (c.nRounds + c.roundsPerLOD - 1) / c.roundsPerLOD
}

// NumLODs returns the number of distinct LODs (MaxLOD + 1).
func (c *Compressed) NumLODs() int { return c.MaxLOD() + 1 }

// PolicyUsed returns the pruning policy the blob was encoded with.
func (c *Compressed) PolicyUsed() Policy { return c.policy }

// RoundsForLOD returns how many decode rounds reconstruct the given LOD —
// the unit behind the engine's RoundsApplied/RoundsSkipped counters.
func (c *Compressed) RoundsForLOD(lod int) int { return c.roundsForLOD(lod) }

// roundsForLOD returns how many decode rounds reconstruct the given LOD.
func (c *Compressed) roundsForLOD(lod int) int {
	n := lod * c.roundsPerLOD
	if n > c.nRounds {
		n = c.nRounds
	}
	return n
}

// SectionSizes returns the compressed byte length of each section: index 0
// is the base (LOD 0), index 1+i is decode round i. This is the data behind
// the paper's Fig. 9.
func (c *Compressed) SectionSizes() []int {
	out := make([]int, len(c.sectionOff)-1)
	for i := range out {
		out[i] = c.sectionOff[i+1] - c.sectionOff[i]
	}
	return out
}

// LODSizes aggregates SectionSizes per LOD: index 0 is the base section,
// index k>0 sums the rounds that lift LOD k-1 to LOD k.
func (c *Compressed) LODSizes() []int {
	out := make([]int, c.NumLODs())
	ss := c.SectionSizes()
	out[0] = ss[0]
	for i := 0; i < c.nRounds; i++ {
		lod := i/c.roundsPerLOD + 1
		out[lod] += ss[1+i]
	}
	return out
}

// section returns the raw (inflated) bytes of section i.
func (c *Compressed) section(i int) ([]byte, error) {
	return inflate(c.blob[c.sectionOff[i]:c.sectionOff[i+1]])
}

// parseBase parses (and caches) the base mesh. The returned mesh must be
// treated as read-only.
func (c *Compressed) parseBase() (*mesh.Mesh, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.base != nil {
		return c.base, nil
	}
	raw, err := c.section(0)
	if err != nil {
		return nil, err
	}
	r := &rbuf{b: raw}
	nv := int(r.uvarint())
	// Each vertex takes at least three delta bytes, so a count beyond the
	// raw section size is corrupt; checking before mesh.New bounds the
	// allocation by data actually present.
	if r.err != nil || nv < 0 || nv > 1<<28 || nv > len(raw) {
		return nil, ErrCorruptBlob
	}
	m := mesh.New(nv, 0)
	var px, py, pz int64
	for i := 0; i < nv; i++ {
		px += r.zigzag()
		py += r.zigzag()
		pz += r.zigzag()
		m.Vertices = append(m.Vertices, c.quant.decode(uint32(px), uint32(py), uint32(pz)))
	}
	nf := int(r.uvarint())
	if r.err != nil || nf < 0 || nf > 1<<28 || nf > len(raw) {
		return nil, ErrCorruptBlob
	}
	var prev int64
	for i := 0; i < nf; i++ {
		var f mesh.Face
		for k := 0; k < 3; k++ {
			prev += r.zigzag()
			if prev < 0 || prev >= int64(nv) {
				return nil, ErrCorruptBlob
			}
			f[k] = int32(prev)
		}
		m.Faces = append(m.Faces, f)
	}
	if r.err != nil {
		return nil, r.err
	}
	c.base = m
	return m, nil
}

// parseRound parses (and caches) decode round i.
func (c *Compressed) parseRound(i int) (*round, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rounds[i] != nil {
		return c.rounds[i], nil
	}
	raw, err := c.section(1 + i)
	if err != nil {
		return nil, err
	}
	r := &rbuf{b: raw}
	nOps := int(r.uvarint())
	// Each op takes at least ~6 bytes, so bound the count (and thus the
	// slice preallocation) by the section size.
	if r.err != nil || nOps < 0 || nOps > 1<<26 || nOps > len(raw) {
		return nil, ErrCorruptBlob
	}
	rd := &round{ops: make([]op, 0, nOps)}
	var ox, oy, oz int64
	for j := 0; j < nOps; j++ {
		ox += r.zigzag()
		oy += r.zigzag()
		oz += r.zigzag()
		pos := c.quant.decode(uint32(ox), uint32(oy), uint32(oz))
		strat := r.uvarint()
		if strat > 1<<16 {
			return nil, ErrCorruptBlob
		}
		ringLen := int(r.uvarint())
		if r.err != nil || ringLen < 3 || ringLen > 1<<16 || ringLen > len(raw)-r.off {
			return nil, ErrCorruptBlob
		}
		ring := make([]int32, ringLen)
		var pr int64
		for k := 0; k < ringLen; k++ {
			pr += r.zigzag()
			if pr < 0 || pr > 1<<30 {
				return nil, ErrCorruptBlob
			}
			ring[k] = int32(pr)
		}
		rd.ops = append(rd.ops, op{pos: pos, ring: ring, strat: uint16(strat)})
	}
	if r.err != nil {
		return nil, r.err
	}
	c.rounds[i] = rd
	return rd, nil
}
