package ppvp

import (
	"repro/internal/geom"
	"repro/internal/mesh"
)

// ProfileProtruding examines every vertex of a mesh once (as the first
// decimation round would) and reports how many are protruding. This is the
// dataset profile from the paper's §6.2: ≈99 % of nucleus vertices and
// ≈75 % of vessel vertices are protruding.
//
// A vertex counts as examined when its one-ring is a simple disk and at
// least one candidate triangulation of the hole is manifold-safe; it counts
// as protruding when at least one safe triangulation passes the protruding
// test.
// SharedFaceFractions reports, for each consecutive LOD pair (k, k+1), the
// fraction of LOD-k faces that survive unchanged into LOD k+1 — the
// statistic behind the paper's §6.4 "repeated face pair evaluation"
// discussion (their datasets average ≈15.6 %). A face shared between two
// LODs is evaluated twice when both LODs are refined, so low sharing keeps
// the progressive refinement's redundant work small.
func SharedFaceFractions(c *Compressed) ([]float64, error) {
	dec, err := c.NewDecoder()
	if err != nil {
		return nil, err
	}
	prev, err := dec.DecodeTo(0)
	if err != nil {
		return nil, err
	}
	// Faces are compared by their vertex coordinates (permanent indices
	// are stable across LODs, but coordinate keys also guard against any
	// reindexing).
	key := func(m *mesh.Mesh, f mesh.Face) [9]float64 {
		var k [9]float64
		for i := 0; i < 3; i++ {
			v := m.Vertices[f[i]]
			k[3*i], k[3*i+1], k[3*i+2] = v.X, v.Y, v.Z
		}
		return k
	}
	canonical := func(m *mesh.Mesh, f mesh.Face) [9]float64 {
		// Rotate the smallest vertex (lexicographically) to the front,
		// preserving orientation.
		ks := [3][3]float64{}
		for i := 0; i < 3; i++ {
			v := m.Vertices[f[i]]
			ks[i] = [3]float64{v.X, v.Y, v.Z}
		}
		lead := 0
		for i := 1; i < 3; i++ {
			if ks[i] != ks[lead] && lessTriple(ks[i], ks[lead]) {
				lead = i
			}
		}
		return key(m, mesh.Face{f[(lead)%3], f[(lead+1)%3], f[(lead+2)%3]})
	}

	var fractions []float64
	for lod := 1; lod <= c.MaxLOD(); lod++ {
		cur, err := dec.DecodeTo(lod)
		if err != nil {
			return nil, err
		}
		curSet := make(map[[9]float64]bool, len(cur.Faces))
		for _, f := range cur.Faces {
			curSet[canonical(cur, f)] = true
		}
		shared := 0
		for _, f := range prev.Faces {
			if curSet[canonical(prev, f)] {
				shared++
			}
		}
		if len(prev.Faces) > 0 {
			fractions = append(fractions, float64(shared)/float64(len(prev.Faces)))
		} else {
			fractions = append(fractions, 0)
		}
		prev = cur
	}
	return fractions, nil
}

func lessTriple(a, b [3]float64) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func ProfileProtruding(m *mesh.Mesh) (protruding, examined int) {
	w := newWork(m)
	snap := w.snapshotMesh()
	adj := mesh.BuildAdjacency(snap)

	for v := int32(0); int(v) < len(w.verts); v++ {
		ring, ok := adj.OneRing(snap, v)
		if !ok {
			continue
		}
		pts := make([]geom.Vec3, len(ring))
		for i, r := range ring {
			pts[i] = w.verts[r]
		}
		valid, prot := false, false
		check := func(patch [][3]uint16) {
			if patch == nil || !w.patchValid(ring, patch) {
				return
			}
			valid = true
			if isProtruding(w.verts[v], pts, patch) {
				prot = true
			}
		}
		if ear, ok := triangulateRing(pts); ok {
			check(ear)
		}
		for apex := 0; apex < len(ring) && !prot; apex++ {
			check(fanTriangulation(len(ring), apex))
		}
		if valid {
			examined++
			if prot {
				protruding++
			}
		}
	}
	return protruding, examined
}
