package ppvp

import (
	"repro/internal/geom"
	"repro/internal/index/aabbtree"
)

// tet is one carved-off tetrahedron: a patch face (a, b, c) plus the removed
// vertex v above it. The four plane normals point outward so inside tests
// are four sign checks.
type tet struct {
	box    geom.Box3
	planes [4]plane
}

type plane struct {
	n geom.Vec3
	d float64 // n·x <= d inside
}

func planeThrough(a, b, c, inside geom.Vec3) plane {
	n := b.Sub(a).Cross(c.Sub(a))
	d := n.Dot(a)
	if n.Dot(inside) > d {
		n = n.Neg()
		d = -d
	}
	return plane{n: n, d: d}
}

func makeTet(a, b, c, v geom.Vec3) tet {
	centroid := a.Add(b).Add(c).Add(v).Mul(0.25)
	return tet{
		box: geom.BoxOf(a, b, c, v),
		planes: [4]plane{
			planeThrough(a, b, c, centroid),
			planeThrough(a, b, v, centroid),
			planeThrough(b, c, v, centroid),
			planeThrough(c, a, v, centroid),
		},
	}
}

// contains reports whether p is strictly inside the tetrahedron, with a
// small tolerance pulling the boundary inward so points exactly on a carved
// face do not count as removed.
func (t tet) contains(p geom.Vec3, tol float64) bool {
	if !t.box.ContainsPoint(p) {
		return false
	}
	for _, pl := range t.planes {
		// Scale-normalize so tol compares a true distance.
		l := pl.n.Len()
		if l == 0 {
			return false
		}
		if pl.n.Dot(p) > pl.d-tol*l {
			return false
		}
	}
	return true
}

// patchContained verifies the progressive-subset guarantee for a candidate
// removal: sampled points on the new patch surface, nudged slightly inward,
// must lie inside the round-start solid and outside every tetrahedron
// already carved out this round.
func patchContained(pts []geom.Vec3, patch [][3]uint16, tree *aabbtree.Tree, carved []tet, diag float64) bool {
	if tree == nil {
		return true
	}
	eps := 1e-9 * (diag + 1)
	for _, t := range patch {
		tri := geom.Triangle{A: pts[t[0]], B: pts[t[1]], C: pts[t[2]]}
		inward := tri.UnitNormal().Neg()
		if inward == (geom.Vec3{}) {
			return false
		}
		cen := tri.Centroid()
		samples := [7]geom.Vec3{
			cen,
			tri.A.Lerp(cen, 0.5),
			tri.B.Lerp(cen, 0.5),
			tri.C.Lerp(cen, 0.5),
			tri.A.Lerp(tri.B, 0.5).Lerp(cen, 0.15),
			tri.B.Lerp(tri.C, 0.5).Lerp(cen, 0.15),
			tri.C.Lerp(tri.A, 0.5).Lerp(cen, 0.15),
		}
		for _, s := range samples {
			p := s.Add(inward.Mul(eps))
			if !tree.ContainsPoint(p) {
				return false
			}
			for _, ct := range carved {
				if ct.contains(p, eps) {
					return false
				}
			}
		}
	}
	return true
}
