package ppvp

import (
	"math"

	"repro/internal/geom"
)

// triangulateRing triangulates the hole left by removing a vertex whose
// ordered CCW one-ring is given by pts. The result is a list of triangles as
// ring-local index triples, wound CCW in the projection plane so that their
// outward orientation is consistent with the surrounding mesh.
//
// The polygon is projected onto its best-fit plane and ear-clipped. ok is
// false when the projected polygon is degenerate or self-intersecting in a
// way that leaves no clippable ear.
func triangulateRing(pts []geom.Vec3) (tris [][3]uint16, ok bool) {
	n := len(pts)
	if n < 3 || n > 65535 {
		return nil, false
	}
	if n == 3 {
		return [][3]uint16{{0, 1, 2}}, true
	}

	// Newell's method for the polygon normal: robust for non-planar rings.
	var normal geom.Vec3
	for i := 0; i < n; i++ {
		p := pts[i]
		q := pts[(i+1)%n]
		normal.X += (p.Y - q.Y) * (p.Z + q.Z)
		normal.Y += (p.Z - q.Z) * (p.X + q.X)
		normal.Z += (p.X - q.X) * (p.Y + q.Y)
	}
	if normal.Len2() < 1e-30 {
		return nil, false
	}
	normal = normal.Normalize()

	// Build a 2D basis in the projection plane.
	u := perpTo(normal)
	v := normal.Cross(u)
	xy := make([][2]float64, n)
	for i, p := range pts {
		xy[i] = [2]float64{p.Dot(u), p.Dot(v)}
	}

	// Ear clipping over the index list.
	idx := make([]uint16, n)
	for i := range idx {
		idx[i] = uint16(i)
	}
	tris = make([][3]uint16, 0, n-2)
	guard := 0
	for len(idx) > 3 {
		clipped := false
		for i := 0; i < len(idx); i++ {
			prev := idx[(i+len(idx)-1)%len(idx)]
			cur := idx[i]
			next := idx[(i+1)%len(idx)]
			if !isEar(xy, idx, prev, cur, next) {
				continue
			}
			tris = append(tris, [3]uint16{prev, cur, next})
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			guard++
			if guard > 1 {
				return nil, false // no ear: degenerate/self-intersecting ring
			}
			// Relax: clip the corner with the largest cross product even if
			// a point lies on its boundary (colinear configurations).
			best, bestCross := -1, 0.0
			for i := 0; i < len(idx); i++ {
				prev := idx[(i+len(idx)-1)%len(idx)]
				cur := idx[i]
				next := idx[(i+1)%len(idx)]
				c := cross2(xy[prev], xy[cur], xy[next])
				if c > bestCross {
					best, bestCross = i, c
				}
			}
			if best < 0 {
				return nil, false
			}
			prev := idx[(best+len(idx)-1)%len(idx)]
			cur := idx[best]
			next := idx[(best+1)%len(idx)]
			tris = append(tris, [3]uint16{prev, cur, next})
			idx = append(idx[:best], idx[best+1:]...)
		}
	}
	tris = append(tris, [3]uint16{idx[0], idx[1], idx[2]})
	return tris, true
}

// isEar reports whether corner (prev, cur, next) is a clippable ear: convex
// and containing no other remaining polygon vertex.
func isEar(xy [][2]float64, idx []uint16, prev, cur, next uint16) bool {
	a, b, c := xy[prev], xy[cur], xy[next]
	if cross2(a, b, c) <= 1e-18 {
		return false // reflex or degenerate corner
	}
	for _, j := range idx {
		if j == prev || j == cur || j == next {
			continue
		}
		if pointInTri2(xy[j], a, b, c) {
			return false
		}
	}
	return true
}

func cross2(a, b, c [2]float64) float64 {
	return (b[0]-a[0])*(c[1]-a[1]) - (b[1]-a[1])*(c[0]-a[0])
}

func pointInTri2(p, a, b, c [2]float64) bool {
	d1 := cross2(a, b, p)
	d2 := cross2(b, c, p)
	d3 := cross2(c, a, p)
	return d1 >= 0 && d2 >= 0 && d3 >= 0
}

// fanTriangulation triangulates the ring polygon as a fan rooted at ring
// vertex `apex`, preserving the CCW orientation of the ring.
func fanTriangulation(n, apex int) [][3]uint16 {
	if n < 3 || apex < 0 || apex >= n {
		return nil
	}
	tris := make([][3]uint16, 0, n-2)
	for i := 1; i+1 < n; i++ {
		tris = append(tris, [3]uint16{
			uint16(apex),
			uint16((apex + i) % n),
			uint16((apex + i + 1) % n),
		})
	}
	return tris
}

// patchForStrategy materializes the patch selected by an op's strategy
// byte: 0 re-runs ear clipping, k ≥ 1 builds the fan rooted at k-1.
func patchForStrategy(pts []geom.Vec3, strat uint16) ([][3]uint16, bool) {
	if strat == 0 {
		return triangulateRing(pts)
	}
	apex := int(strat) - 1
	if apex >= len(pts) {
		return nil, false
	}
	return fanTriangulation(len(pts), apex), true
}

// perpTo returns an arbitrary unit vector perpendicular to n.
func perpTo(n geom.Vec3) geom.Vec3 {
	ref := geom.V(0, 0, 1)
	if math.Abs(n.Z) > 0.9 {
		ref = geom.V(1, 0, 0)
	}
	return n.Cross(ref).Normalize()
}
