package ppvp

import (
	"testing"

	"repro/internal/mesh"
)

// meshesEqual compares two meshes exactly (same vertex order, same faces).
func meshesEqual(a, b *mesh.Mesh) bool {
	if len(a.Vertices) != len(b.Vertices) || len(a.Faces) != len(b.Faces) {
		return false
	}
	for i := range a.Vertices {
		if a.Vertices[i] != b.Vertices[i] {
			return false
		}
	}
	for i := range a.Faces {
		if a.Faces[i] != b.Faces[i] {
			return false
		}
	}
	return true
}

// TestWarmStartEquivalence is the warm-start soundness property: for every
// pair j ≤ k, a decoder advanced to LOD j and later resumed to LOD k must
// produce exactly the mesh a cold Decode(k) produces. The engine's decode
// cache relies on this to resume retained decoders on misses.
func TestWarmStartEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *mesh.Mesh
	}{
		{"sphere", mesh.Icosphere(10, 3)},
		{"small", mesh.Icosphere(3, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, _, err := Compress(tc.m, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			cold := make([]*mesh.Mesh, c.NumLODs())
			for k := 0; k <= c.MaxLOD(); k++ {
				cold[k], err = c.Decode(k)
				if err != nil {
					t.Fatal(err)
				}
			}
			for j := 0; j <= c.MaxLOD(); j++ {
				for k := j; k <= c.MaxLOD(); k++ {
					d, err := c.NewDecoder()
					if err != nil {
						t.Fatal(err)
					}
					mj, err := d.DecodeTo(j)
					if err != nil {
						t.Fatalf("DecodeTo(%d): %v", j, err)
					}
					if !meshesEqual(mj, cold[j]) {
						t.Fatalf("warm intermediate at LOD %d differs from cold", j)
					}
					if !d.CanAdvanceTo(k) {
						t.Fatalf("decoder at LOD %d cannot advance to %d", j, k)
					}
					mk, err := d.DecodeTo(k)
					if err != nil {
						t.Fatalf("resume DecodeTo(%d) from %d: %v", k, j, err)
					}
					if !meshesEqual(mk, cold[k]) {
						t.Errorf("warm decode %d→%d differs from cold Decode(%d)", j, k, k)
					}
				}
			}
		})
	}
}

// TestRoundsAccounting pins the decoder's round bookkeeping: the rounds a
// resumed decode applies plus the rounds it skipped must equal the cold
// cost, which is what makes the cache's RoundsApplied/RoundsSkipped
// counters sum to the cold-path total.
func TestRoundsAccounting(t *testing.T) {
	m := mesh.Icosphere(8, 3)
	c, _, err := Compress(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	top := c.MaxLOD()
	d, err := c.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	if d.RoundsApplied() != 0 {
		t.Fatalf("fresh decoder has %d rounds applied", d.RoundsApplied())
	}
	mid := top / 2
	if _, err := d.DecodeTo(mid); err != nil {
		t.Fatal(err)
	}
	skipped := d.RoundsApplied()
	if skipped != c.RoundsForLOD(mid) {
		t.Errorf("RoundsApplied = %d after LOD %d, want %d", skipped, mid, c.RoundsForLOD(mid))
	}
	if _, err := d.DecodeTo(top); err != nil {
		t.Fatal(err)
	}
	applied := d.RoundsApplied() - skipped
	if skipped+applied != c.RoundsForLOD(top) {
		t.Errorf("skipped %d + applied %d != cold cost %d", skipped, applied, c.RoundsForLOD(top))
	}
	// Rewinding is refused, not silently wrong.
	if d.CanAdvanceTo(0) {
		t.Error("CanAdvanceTo(0) true on an advanced decoder")
	}
	if _, err := d.DecodeTo(0); err == nil {
		t.Error("DecodeTo(0) on advanced decoder did not error")
	}
}
