package ppvp

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// FuzzDecode feeds arbitrary blobs through the full parse+decode path. The
// invariant under fuzzing: corrupt input returns an error, it never panics
// and never allocates unboundedly from header-claimed sizes.
func FuzzDecode(f *testing.F) {
	seed := func(m *mesh.Mesh, opts Options) {
		c, _, err := Compress(m, opts)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(c.Bytes())
	}
	seed(mesh.Icosphere(1, 1), DefaultOptions())
	seed(mesh.Icosphere(2, 2), Options{Rounds: 8, RoundsPerLOD: 2, QuantBits: 12})
	seed(mesh.Cube(geom.V(0, 0, 0), geom.V(1, 1, 1)), DefaultOptions())
	f.Add([]byte{})
	f.Add([]byte("3DPR"))

	f.Fuzz(func(t *testing.T, blob []byte) {
		c, err := FromBytes(blob)
		if err != nil {
			return
		}
		d, err := c.NewDecoder()
		if err != nil {
			return
		}
		m, err := d.DecodeTo(c.MaxLOD())
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("DecodeTo returned nil mesh and nil error")
		}
	})
}
