package ppvp

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/index/aabbtree"
	"repro/internal/mesh"
)

// faceKey identifies a face by its sorted vertex triple. In a valid manifold
// mesh no two faces share the same vertex set, so the sorted key is unique;
// the oriented face is kept as the map value.
type faceKey [3]int32

func keyOf(f mesh.Face) faceKey {
	a, b, c := f[0], f[1], f[2]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return faceKey{a, b, c}
}

// work is the mutable mesh state threaded through the decimation rounds.
// Vertices are tombstoned (never reindexed) so ops can reference original
// indices throughout the encode.
type work struct {
	verts []geom.Vec3
	alive []bool
	faces map[faceKey]mesh.Face
	edges map[mesh.EdgeKey]int // incidence count per undirected edge
}

func newWork(m *mesh.Mesh) *work {
	w := &work{
		verts: append([]geom.Vec3(nil), m.Vertices...),
		alive: make([]bool, len(m.Vertices)),
		faces: make(map[faceKey]mesh.Face, len(m.Faces)),
		edges: make(map[mesh.EdgeKey]int, 3*len(m.Faces)/2+1),
	}
	for i := range w.alive {
		w.alive[i] = true
	}
	for _, f := range m.Faces {
		w.addFace(f)
	}
	return w
}

func (w *work) addFace(f mesh.Face) {
	w.faces[keyOf(f)] = f
	for k := 0; k < 3; k++ {
		w.edges[mesh.MakeEdgeKey(f[k], f[(k+1)%3])]++
	}
}

func (w *work) removeFace(f mesh.Face) {
	delete(w.faces, keyOf(f))
	for k := 0; k < 3; k++ {
		e := mesh.MakeEdgeKey(f[k], f[(k+1)%3])
		if w.edges[e]--; w.edges[e] == 0 {
			delete(w.edges, e)
		}
	}
}

// snapshotMesh materializes the current face set as a mesh that still uses
// the original (tombstoned) vertex indexing. Faces are emitted in sorted key
// order for determinism.
func (w *work) snapshotMesh() *mesh.Mesh {
	keys := make([]faceKey, 0, len(w.faces))
	for k := range w.faces {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	m := &mesh.Mesh{Vertices: w.verts, Faces: make([]mesh.Face, 0, len(keys))}
	for _, k := range keys {
		m.Faces = append(m.Faces, w.faces[k])
	}
	return m
}

// decimateRound runs one round of decimation: it removes a maximal
// independent set of removable vertices (under the policy) in ascending
// index order. The returned ops record the removals in application order.
func (w *work) decimateRound(policy Policy, minFaces int, stats *Stats) []op {
	snap := w.snapshotMesh()
	adj := mesh.BuildAdjacency(snap)

	// The acute-angle test of §3.1 is evaluated per patch face; with a
	// folded hole triangulation it can pass even though part of the patch
	// pokes outside the solid, which would break the progressive-subset
	// guarantee. Under the PPVP policy every accepted patch is therefore
	// verified against the round-start surface (indexed by an AABB tree)
	// minus the tetrahedra already carved out this round.
	var tree *aabbtree.Tree
	var carved []tet
	var diag float64
	if policy == PruneProtruding {
		tree = aabbtree.Build(snap.Triangles())
		diag = tree.Bounds().Diagonal()
	}

	locked := make([]bool, len(w.verts))
	var ops []op

	for v := int32(0); int(v) < len(w.verts); v++ {
		if !w.alive[v] || locked[v] {
			continue
		}
		if len(w.faces)-2 < minFaces {
			break // removing any vertex would shrink the mesh below the floor
		}
		ring, ok := adj.OneRing(snap, v)
		if !ok {
			continue
		}
		pts := make([]geom.Vec3, len(ring))
		for i, r := range ring {
			pts[i] = w.verts[r]
		}

		// The prune-only guarantee depends on the hole triangulation: a
		// folded patch can fail the protruding test even for a vertex that
		// is geometrically protruding. Try the ear-clipping result first,
		// then every fan, and keep the first triangulation that is both
		// manifold-safe and (under PPVP) protruding.
		var chosen [][3]uint16
		var strat uint16
		validSeen, protrudingSeen := false, false
		tryPatch := func(patch [][3]uint16, s uint16) bool {
			if patch == nil || !w.patchValid(ring, patch) {
				return false
			}
			validSeen = true
			prot := isProtruding(w.verts[v], pts, patch)
			if prot {
				protrudingSeen = true
			}
			if policy == PruneProtruding && !prot {
				return false
			}
			if policy == PruneProtruding && !patchContained(pts, patch, tree, carved, diag) {
				return false
			}
			chosen, strat = patch, s
			return true
		}
		if ear, ok := triangulateRing(pts); !ok || !tryPatch(ear, 0) {
			for apex := 0; apex < len(ring); apex++ {
				if tryPatch(fanTriangulation(len(ring), apex), uint16(apex+1)) {
					break
				}
			}
		}
		if !validSeen {
			continue
		}
		stats.VerticesExamined++
		if protrudingSeen {
			stats.VerticesProtruding++
		}
		if chosen == nil {
			continue
		}

		// Apply the removal: delete the fan, add the patch.
		for i := range ring {
			w.removeFace(mesh.Face{v, ring[i], ring[(i+1)%len(ring)]})
		}
		for _, t := range chosen {
			w.addFace(mesh.Face{ring[t[0]], ring[t[1]], ring[t[2]]})
		}
		w.alive[v] = false
		for _, r := range ring {
			locked[r] = true
		}
		if policy == PruneProtruding {
			for _, t := range chosen {
				carved = append(carved, makeTet(pts[t[0]], pts[t[1]], pts[t[2]], w.verts[v]))
			}
		}
		stats.VerticesRemoved++
		ops = append(ops, op{pos: w.verts[v], ring: append([]int32(nil), ring...), patch: chosen, strat: strat, origIdx: v})
	}
	return ops
}

// patchValid checks that inserting the patch keeps the mesh a 2-manifold:
//
//   - every patch triangle is non-degenerate,
//   - no patch triangle duplicates an existing face (in either orientation),
//   - every interior diagonal is a brand-new edge used by exactly two patch
//     triangles, and every ring boundary edge is used by exactly one.
func (w *work) patchValid(ring []int32, patch [][3]uint16) bool {
	n := len(ring)
	ringEdge := make(map[mesh.EdgeKey]bool, n)
	for i := 0; i < n; i++ {
		ringEdge[mesh.MakeEdgeKey(ring[i], ring[(i+1)%n])] = true
	}
	edgeUse := make(map[mesh.EdgeKey]int, 2*n)
	for _, t := range patch {
		f := mesh.Face{ring[t[0]], ring[t[1]], ring[t[2]]}
		if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
			return false
		}
		if _, dup := w.faces[keyOf(f)]; dup {
			return false
		}
		tri := geom.Triangle{A: w.verts[f[0]], B: w.verts[f[1]], C: w.verts[f[2]]}
		if tri.IsDegenerate() {
			return false
		}
		for k := 0; k < 3; k++ {
			e := mesh.MakeEdgeKey(f[k], f[(k+1)%3])
			edgeUse[e]++
			if !ringEdge[e] {
				// Interior diagonal: must not already exist in the mesh.
				if w.edges[e] > 0 {
					return false
				}
			}
		}
	}
	for e, c := range edgeUse {
		if ringEdge[e] {
			if c != 1 {
				return false
			}
		} else if c != 2 {
			return false
		}
	}
	return true
}

// isProtruding implements the paper's §3.1 test: vertex v is protruding iff
// for every newly added (patch) face, the angle between the face's outward
// normal and the vector from the face to v is acute or right — i.e. removal
// only cuts solid tetrahedra off the polyhedron (or has no impact), never
// fills a pit.
func isProtruding(v geom.Vec3, pts []geom.Vec3, patch [][3]uint16) bool {
	for _, t := range patch {
		tri := geom.Triangle{A: pts[t[0]], B: pts[t[1]], C: pts[t[2]]}
		n := tri.Normal()
		d := v.Sub(tri.Centroid())
		dot := n.Dot(d)
		// Scaled tolerance: treat |dot| below noise as the "no impact" case.
		tol := 1e-12 * n.Len() * (d.Len() + 1)
		if dot < -tol {
			return false
		}
	}
	return true
}
