package cache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mesh"
)

func sphere(r float64) *mesh.Mesh { return mesh.Icosphere(r, 1) }

func TestHitMiss(t *testing.T) {
	c := New(1 << 20)
	decodes := 0
	decode := func() (*mesh.Mesh, error) { decodes++; return sphere(1), nil }

	m1, err := c.GetOrDecode(Key{1, 0}, decode)
	if err != nil || m1 == nil {
		t.Fatalf("first get: %v", err)
	}
	m2, err := c.GetOrDecode(Key{1, 0}, decode)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("cache returned a different mesh")
	}
	if decodes != 1 {
		t.Errorf("decodes = %d, want 1", decodes)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.BytesUsed <= 0 {
		t.Error("BytesUsed not tracked")
	}
}

func TestDistinctLODsAreDistinctEntries(t *testing.T) {
	c := New(1 << 20)
	for lod := 0; lod < 3; lod++ {
		lod := lod
		if _, err := c.GetOrDecode(Key{7, lod}, func() (*mesh.Mesh, error) {
			return sphere(float64(lod + 1)), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestEviction(t *testing.T) {
	one := meshBytes(sphere(1))
	c := New(3*one + 10) // room for 3 spheres
	for i := int64(0); i < 5; i++ {
		if _, err := c.GetOrDecode(Key{i, 0}, func() (*mesh.Mesh, error) { return sphere(1), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 3 {
		t.Errorf("Len = %d after eviction, want <= 3", c.Len())
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	// LRU order: the most recent entries survive.
	if c.Get(Key{4, 0}) == nil {
		t.Error("most recent entry evicted")
	}
	if c.Get(Key{0, 0}) != nil {
		t.Error("oldest entry survived")
	}
}

func TestLRUOrderUpdatedByAccess(t *testing.T) {
	one := meshBytes(sphere(1))
	c := New(2*one + 10)
	c.GetOrDecode(Key{1, 0}, func() (*mesh.Mesh, error) { return sphere(1), nil })
	c.GetOrDecode(Key{2, 0}, func() (*mesh.Mesh, error) { return sphere(1), nil })
	// Touch 1 so 2 becomes LRU.
	c.Get(Key{1, 0})
	c.GetOrDecode(Key{3, 0}, func() (*mesh.Mesh, error) { return sphere(1), nil })
	if c.Get(Key{1, 0}) == nil {
		t.Error("recently touched entry evicted")
	}
	if c.Get(Key{2, 0}) != nil {
		t.Error("LRU entry survived")
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	calls := 0
	decode := func() (*mesh.Mesh, error) { calls++; return nil, boom }
	if _, err := c.GetOrDecode(Key{9, 0}, decode); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	ok := func() (*mesh.Mesh, error) { calls++; return sphere(1), nil }
	if m, err := c.GetOrDecode(Key{9, 0}, ok); err != nil || m == nil {
		t.Fatalf("retry after error failed: %v", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

func TestZeroCapacityDisablesCaching(t *testing.T) {
	c := New(0)
	calls := 0
	decode := func() (*mesh.Mesh, error) { calls++; return sphere(1), nil }
	c.GetOrDecode(Key{1, 0}, decode)
	c.GetOrDecode(Key{1, 0}, decode)
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (cache disabled)", calls)
	}
	if c.Len() != 0 {
		t.Error("disabled cache stored entries")
	}
}

func TestSingleFlightDeduplication(t *testing.T) {
	c := New(1 << 20)
	var decodes atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c.GetOrDecode(Key{42, 1}, func() (*mesh.Mesh, error) {
				decodes.Add(1)
				return sphere(2), nil
			})
		}()
	}
	close(start)
	wg.Wait()
	if n := decodes.Load(); n != 1 {
		t.Errorf("decodes = %d, want 1 (single-flight)", n)
	}
}

func TestInvalidateObject(t *testing.T) {
	c := New(1 << 20)
	for lod := 0; lod < 3; lod++ {
		c.GetOrDecode(Key{5, lod}, func() (*mesh.Mesh, error) { return sphere(1), nil })
	}
	c.GetOrDecode(Key{6, 0}, func() (*mesh.Mesh, error) { return sphere(1), nil })
	c.InvalidateObject(5)
	if c.Get(Key{5, 0}) != nil || c.Get(Key{5, 2}) != nil {
		t.Error("invalidated entries still present")
	}
	if c.Get(Key{6, 0}) == nil {
		t.Error("unrelated entry dropped")
	}
}

func TestClear(t *testing.T) {
	c := New(1 << 20)
	c.GetOrDecode(Key{1, 0}, func() (*mesh.Mesh, error) { return sphere(1), nil })
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear left entries")
	}
	if c.Stats().BytesUsed != 0 {
		t.Error("Clear left bytes")
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	c := New(10 * meshBytes(sphere(1)))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := Key{int64(i % 20), g % 3}
				m, err := c.GetOrDecode(key, func() (*mesh.Mesh, error) { return sphere(1), nil })
				if err != nil || m == nil {
					t.Errorf("GetOrDecode: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDecodePanicDoesNotPoisonKey: a decode that panics must unblock
// concurrent waiters with an error and leave the key retryable — not a
// permanently hung entry.
func TestDecodePanicDoesNotPoisonKey(t *testing.T) {
	c := New(1 << 20)
	key := Key{7, 1}

	entered := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		<-entered
		// Second caller for the same key: must not block forever.
		_, err := c.GetOrDecode(key, func() (*mesh.Mesh, error) { return sphere(1), nil })
		waiterDone <- err
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		c.GetOrDecode(key, func() (*mesh.Mesh, error) {
			close(entered)
			time.Sleep(10 * time.Millisecond) // let the waiter attach
			panic("decode exploded")
		})
	}()

	// The waiter either attached to the failed entry (error) or arrived
	// after cleanup and decoded fresh (nil); both are fine — what must
	// never happen is a hang.
	select {
	case <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked on panicked decode")
	}

	// The key must be retryable afterwards.
	m, err := c.GetOrDecode(key, func() (*mesh.Mesh, error) { return sphere(1), nil })
	if err != nil || m == nil {
		t.Fatalf("retry after panic: %v", err)
	}
}
