package cache

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mesh"
	"repro/internal/ppvp"
)

func compressSphere(t testing.TB, r float64, level int) *ppvp.Compressed {
	t.Helper()
	c, _, err := ppvp.Compress(mesh.Icosphere(r, level), ppvp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func meshesEqual(a, b *mesh.Mesh) bool {
	if len(a.Vertices) != len(b.Vertices) || len(a.Faces) != len(b.Faces) {
		return false
	}
	for i := range a.Vertices {
		if a.Vertices[i] != b.Vertices[i] {
			return false
		}
	}
	for i := range a.Faces {
		if a.Faces[i] != b.Faces[i] {
			return false
		}
	}
	return true
}

// TestProgressiveWarmStartMatchesCold walks one object's LOD ladder upward
// through the cache (the FPR access pattern) and checks every warm-started
// mesh is identical to a cold Decode at that LOD, and that the counters
// prove the reuse: rounds applied + skipped never exceeds the cold cost.
func TestProgressiveWarmStartMatchesCold(t *testing.T) {
	comp := compressSphere(t, 10, 3)
	c := New(1 << 20)
	coldRounds := 0
	for lod := 0; lod <= comp.MaxLOD(); lod++ {
		m, err := c.GetOrDecodeProgressive(Key{Object: 1, LOD: lod}, comp, nil)
		if err != nil {
			t.Fatalf("lod %d: %v", lod, err)
		}
		cold, err := comp.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
		if !meshesEqual(m, cold) {
			t.Fatalf("warm-started mesh at LOD %d differs from cold decode", lod)
		}
		coldRounds += comp.RoundsForLOD(lod)
	}
	s := c.Stats()
	if s.WarmStarts != int64(comp.MaxLOD()) {
		t.Errorf("WarmStarts = %d, want %d (every miss above LOD 0)", s.WarmStarts, comp.MaxLOD())
	}
	if s.RoundsApplied != int64(comp.RoundsForLOD(comp.MaxLOD())) {
		t.Errorf("RoundsApplied = %d, want %d (each round replayed once)",
			s.RoundsApplied, comp.RoundsForLOD(comp.MaxLOD()))
	}
	wantSkipped := int64(coldRounds - comp.RoundsForLOD(comp.MaxLOD()))
	if s.RoundsSkipped != wantSkipped {
		t.Errorf("RoundsSkipped = %d, want %d", s.RoundsSkipped, wantSkipped)
	}
	if c.NumDecoders() != 1 {
		t.Errorf("NumDecoders = %d, want 1", c.NumDecoders())
	}
}

// TestProgressiveDownwardMiss requests a high LOD first and a lower one
// second: the retained decoder cannot rewind, so the second miss must cold
// decode — correctly — and must not clobber the more advanced retained
// state.
func TestProgressiveDownwardMiss(t *testing.T) {
	comp := compressSphere(t, 10, 3)
	top := comp.MaxLOD()
	c := New(1 << 20)
	if _, err := c.GetOrDecodeProgressive(Key{Object: 1, LOD: top}, comp, nil); err != nil {
		t.Fatal(err)
	}
	m, err := c.GetOrDecodeProgressive(Key{Object: 1, LOD: 1}, comp, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := comp.Decode(1)
	if !meshesEqual(m, cold) {
		t.Fatal("downward miss returned wrong mesh")
	}
	s := c.Stats()
	if s.WarmStarts != 0 {
		t.Errorf("WarmStarts = %d, want 0 (rewind is a cold decode)", s.WarmStarts)
	}
	// The retained decoder must still be the advanced one: a later request
	// at top+0 LOD... resume from it without replaying everything.
	before := c.Stats().RoundsApplied
	if _, err := c.GetOrDecodeProgressive(Key{Object: 1, LOD: top - 1}, comp, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().RoundsApplied - before; got != int64(comp.RoundsForLOD(top-1)) {
		t.Errorf("third miss applied %d rounds, want full cold %d (decoder beyond target)",
			got, comp.RoundsForLOD(top-1))
	}
}

// TestProgressiveOnMissError checks onMiss failures propagate and do not
// poison the key or the decoder pool.
func TestProgressiveOnMissError(t *testing.T) {
	comp := compressSphere(t, 5, 2)
	c := New(1 << 20)
	boom := errors.New("boom")
	if _, err := c.GetOrDecodeProgressive(Key{Object: 3, LOD: 1}, comp, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	m, err := c.GetOrDecodeProgressive(Key{Object: 3, LOD: 1}, comp, nil)
	if err != nil || m == nil {
		t.Fatalf("retry after onMiss error: %v", err)
	}
}

// TestProgressiveZeroCapacity: a disabled cache still decodes correctly
// (cold every time, no retained decoders).
func TestProgressiveZeroCapacity(t *testing.T) {
	comp := compressSphere(t, 5, 2)
	c := New(0)
	for i := 0; i < 2; i++ {
		m, err := c.GetOrDecodeProgressive(Key{Object: 1, LOD: 2}, comp, nil)
		if err != nil {
			t.Fatal(err)
		}
		cold, _ := comp.Decode(2)
		if !meshesEqual(m, cold) {
			t.Fatal("disabled-cache decode differs from cold")
		}
	}
	if c.NumDecoders() != 0 {
		t.Errorf("disabled cache retained %d decoders", c.NumDecoders())
	}
}

// TestDecoderPoolConcurrentHammer races many goroutines over every LOD of a
// handful of objects through one cache (run under -race): single-flight on
// the decoder slots must serialize pool access, and every returned mesh
// must match its cold decode.
func TestDecoderPoolConcurrentHammer(t *testing.T) {
	comp := compressSphere(t, 10, 2)
	cold := make([]*mesh.Mesh, comp.NumLODs())
	for lod := range cold {
		var err error
		cold[lod], err = comp.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Small capacity forces evictions and re-decodes mid-hammer.
	c := New(8 * meshBytes(cold[len(cold)-1]))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 100; i++ {
				lod := rng.Intn(comp.NumLODs())
				obj := int64(rng.Intn(3))
				m, err := c.GetOrDecodeProgressive(Key{Object: obj, LOD: lod}, comp, nil)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !meshesEqual(m, cold[lod]) {
					t.Errorf("goroutine %d: wrong mesh at lod %d", g, lod)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.RoundsApplied == 0 {
		t.Error("no rounds applied under hammer")
	}
}

// TestDecoderPoolBounded checks the pool evicts LRU decoders past its cap.
func TestDecoderPoolBounded(t *testing.T) {
	comp := compressSphere(t, 5, 1)
	c := NewSharded(1<<24, 1) // one shard: pool cap is exact
	for i := 0; i < 3*maxDecodersPerShard; i++ {
		if _, err := c.GetOrDecodeProgressive(Key{Object: int64(i), LOD: 1}, comp, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.NumDecoders(); n > maxDecodersPerShard {
		t.Errorf("pool holds %d decoders, cap %d", n, maxDecodersPerShard)
	}
}

// TestShardingSpreadsObjects sanity-checks the sharded constructor: entries
// land in multiple shards and per-object affinity keeps warm starts working.
func TestShardingSpreadsObjects(t *testing.T) {
	comp := compressSphere(t, 5, 1)
	c := NewSharded(64<<20, 8)
	if c.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", c.NumShards())
	}
	for obj := int64(0); obj < 32; obj++ {
		for lod := 0; lod <= comp.MaxLOD(); lod++ {
			if _, err := c.GetOrDecodeProgressive(Key{Object: obj, LOD: lod}, comp, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := c.Stats()
	if s.WarmStarts != 32*int64(comp.MaxLOD()) {
		t.Errorf("WarmStarts = %d, want %d (sharding must not break per-object affinity)",
			s.WarmStarts, 32*int64(comp.MaxLOD()))
	}
}
