package cache

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// sumCounters folds a set of per-request Counters into a Stats value so it
// can be compared against the cache-wide delta field by field.
func sumCounters(cs []*Counters) Stats {
	var s Stats
	for _, c := range cs {
		s.Hits += c.Hits.Load()
		s.Misses += c.Misses.Load()
		s.WarmStarts += c.WarmStarts.Load()
		s.RoundsApplied += c.RoundsApplied.Load()
		s.RoundsSkipped += c.RoundsSkipped.Load()
		s.DecodeFailures += c.DecodeFailures.Load()
	}
	return s
}

// TestCountersMatchGlobalDelta is the attribution invariant at the cache
// layer: when every caller passes its own Counters, the sum across callers
// equals the cache-wide Stats delta exactly — even with single-flight
// sharing, warm starts, evictions, and decode failures happening
// concurrently. This is the property the engine relies on to report exact
// per-query stats.
func TestCountersMatchGlobalDelta(t *testing.T) {
	comp := compressSphere(t, 10, 2)
	cold, err := comp.Decode(comp.MaxLOD())
	if err != nil {
		t.Fatal(err)
	}
	// Small capacity forces evictions and re-decodes mid-hammer.
	c := New(8 * meshBytes(cold))
	before := c.Stats()

	boom := errors.New("boom")
	const goroutines = 16
	ctrs := make([]*Counters, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		ctrs[g] = new(Counters)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 150; i++ {
				key := Key{Object: int64(rng.Intn(4)), LOD: rng.Intn(comp.NumLODs())}
				var onMiss func() error
				if rng.Intn(10) == 0 {
					onMiss = func() error { return boom }
				}
				m, err := c.GetOrDecodeProgressiveCounted(key, comp, onMiss, ctrs[g])
				if err != nil && !errors.Is(err, boom) {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if err == nil && m == nil {
					t.Errorf("goroutine %d: nil mesh without error", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	delta := c.Stats().Sub(before)
	// The cache-wide delta also moves Evictions and BytesUsed, which are not
	// per-request notions; compare only the attributed fields.
	delta.Evictions, delta.BytesUsed = 0, 0
	got := sumCounters(ctrs)
	if got != delta {
		t.Errorf("per-request counter sum diverges from global delta:\n  sum   = %+v\n  delta = %+v", got, delta)
	}
	if got.Hits == 0 || got.WarmStarts == 0 || got.DecodeFailures == 0 {
		t.Errorf("hammer did not exercise all paths: %+v", got)
	}
}

// TestCountersDisabledCache covers the zero-capacity path: every request is
// a miss, failures are attributed, and the sum still matches the delta.
func TestCountersDisabledCache(t *testing.T) {
	comp := compressSphere(t, 5, 1)
	c := New(0)
	before := c.Stats()
	var ctr Counters
	boom := errors.New("boom")
	if _, err := c.GetOrDecodeProgressiveCounted(Key{Object: 1, LOD: 1}, comp, nil, &ctr); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrDecodeProgressiveCounted(Key{Object: 1, LOD: 1}, comp, func() error { return boom }, &ctr); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	delta := c.Stats().Sub(before)
	delta.Evictions, delta.BytesUsed = 0, 0
	got := sumCounters([]*Counters{&ctr})
	if got != delta {
		t.Errorf("disabled-cache sum %+v != delta %+v", got, delta)
	}
	if got.Misses != 2 || got.DecodeFailures != 1 {
		t.Errorf("got %+v, want 2 misses / 1 failure", got)
	}
}
