package cache

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/ppvp"
)

// benchComp builds one deterministic compressed object for the decode
// micro-benchmarks (fixed geometry, no RNG).
func benchComp(b *testing.B) *ppvp.Compressed {
	b.Helper()
	c, _, err := ppvp.Compress(mesh.Icosphere(10, 3), ppvp.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkDecodeColdLadder is the pre-warm-start engine behavior: every
// LOD of the ladder decoded from scratch (replaying rounds from LOD 0).
func BenchmarkDecodeColdLadder(b *testing.B) {
	comp := benchComp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lod := 0; lod <= comp.MaxLOD(); lod++ {
			if _, err := comp.Decode(lod); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDecodeWarmLadder walks the same ladder through one progressive
// decoder, the warm-start path: each round is applied exactly once.
func BenchmarkDecodeWarmLadder(b *testing.B) {
	comp := benchComp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := comp.NewDecoder()
		if err != nil {
			b.Fatal(err)
		}
		for lod := 0; lod <= comp.MaxLOD(); lod++ {
			if _, err := d.DecodeTo(lod); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDecodeCacheLadder measures the full cache miss path (entry
// single-flight + decoder pool checkout + warm decode) over the ladder,
// clearing between iterations so every request is a miss.
func BenchmarkDecodeCacheLadder(b *testing.B) {
	comp := benchComp(b)
	c := New(64 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lod := 0; lod <= comp.MaxLOD(); lod++ {
			key := Key{Object: int64(i), LOD: lod} // fresh object: all misses
			if _, err := c.GetOrDecodeProgressive(key, comp, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCacheHit measures the sharded hit path.
func BenchmarkCacheHit(b *testing.B) {
	comp := benchComp(b)
	c := New(64 << 20)
	key := Key{Object: 1, LOD: comp.MaxLOD()}
	if _, err := c.GetOrDecodeProgressive(key, comp, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetOrDecodeProgressive(key, comp, nil); err != nil {
			b.Fatal(err)
		}
	}
}
