// Package cache implements the LRU decoding cache of the paper's §5.3: a
// byte-budgeted, thread-safe map from (object ID, LOD) to the decoded faces
// of that object at that LOD. Decoding is compute-intensive, so reusing a
// recently decoded representation — one vessel can be the candidate of
// hundreds of nuclei — dominates the decode cost of distance joins
// (Table 2 of the paper).
//
// Concurrent requests for the same key are deduplicated: the first caller
// decodes while the others wait, matching the paper's decoder/geometry-
// computer handshake ("sends a request to the object decoder and waits for
// the data to be decoded").
//
// Two refinements on top of the paper's design:
//
//   - Warm-start decoding (GetOrDecodeProgressive): the cache retains one
//     progressive ppvp.Decoder per object, so a miss at LOD k resumes from
//     the highest previously decoded LOD instead of replaying every round
//     from LOD 0. Under Filter-Progressive-Refine a candidate walks the LOD
//     ladder upward, so nearly every refinement decode becomes incremental.
//     The win is visible in Stats: RoundsSkipped counts rounds the warm
//     starts did not replay.
//
//   - Sharding: large caches split the key space across independently
//     locked shards (all LODs of one object land in one shard), so decode
//     misses and hits on different objects do not contend on one mutex at
//     high worker counts. Small caches (< minShardedCapacity) stay on a
//     single shard and keep exact global LRU semantics.
package cache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mesh"
	"repro/internal/ppvp"
)

// Key identifies a decoded representation: one object at one LOD.
type Key struct {
	Object int64
	LOD    int
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// BytesUsed is the current estimated footprint of cached meshes.
	BytesUsed int64

	// WarmStarts counts misses served by resuming a retained progressive
	// decoder instead of decoding from LOD 0.
	WarmStarts int64
	// RoundsApplied counts decode rounds actually replayed by misses;
	// RoundsSkipped counts rounds that warm starts reused from retained
	// decoder state. Cold-decoding everything would have cost
	// RoundsApplied + RoundsSkipped.
	RoundsApplied int64
	RoundsSkipped int64

	// DecodeFailures counts miss-path decodes that returned an error or
	// panicked. Failures are never cached, so each retry of a bad object
	// counts again — a growing value under steady load is the cache-level
	// symptom of corrupt or hostile blobs.
	DecodeFailures int64
}

// Counters is a per-request attribution sink: a caller that owns a unit of
// work spanning many cache calls (one query) passes the same *Counters into
// each GetOrDecodeProgressiveCounted call, and the cache increments it at
// exactly the points it increments its own shard counters. Summing every
// concurrent caller's Counters therefore reproduces the cache-wide Stats
// delta exactly — no global-snapshot diffing, no bleed between concurrent
// callers. All fields are atomics; a Counters value is safe for the many
// workers of one query to share.
type Counters struct {
	Hits           atomic.Int64
	Misses         atomic.Int64
	WarmStarts     atomic.Int64
	RoundsApplied  atomic.Int64
	RoundsSkipped  atomic.Int64
	DecodeFailures atomic.Int64
}

func (s Stats) add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.BytesUsed += o.BytesUsed
	s.WarmStarts += o.WarmStarts
	s.RoundsApplied += o.RoundsApplied
	s.RoundsSkipped += o.RoundsSkipped
	s.DecodeFailures += o.DecodeFailures
	return s
}

// Sub returns s - o field-wise; used to attribute a window of cache activity
// (for example one query) out of the engine-lifetime counters.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:           s.Hits - o.Hits,
		Misses:         s.Misses - o.Misses,
		Evictions:      s.Evictions - o.Evictions,
		BytesUsed:      s.BytesUsed,
		WarmStarts:     s.WarmStarts - o.WarmStarts,
		RoundsApplied:  s.RoundsApplied - o.RoundsApplied,
		RoundsSkipped:  s.RoundsSkipped - o.RoundsSkipped,
		DecodeFailures: s.DecodeFailures - o.DecodeFailures,
	}
}

type entry struct {
	key   Key
	mesh  *mesh.Mesh
	bytes int64
	elem  *list.Element

	ready chan struct{} // closed when mesh is available
	err   error
}

// decoderSlot retains one object's progressive decoder between misses. The
// slot mutex is the per-object single-flight: concurrent misses at different
// LODs of the same object serialize here, each advancing (or replacing) the
// retained decoder.
type decoderSlot struct {
	mu   sync.Mutex
	dec  *ppvp.Decoder
	elem *list.Element // position in the shard's decoder LRU
	refs int           // checked-out count; slots with refs > 0 are not evicted
}

// maxDecodersPerShard bounds the decoder pool: each retained decoder holds
// the mesh state of its current LOD, so the pool is capped and evicted LRU.
const maxDecodersPerShard = 64

// shard is one independently locked slice of the cache.
type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[Key]*entry
	lru      *list.List // front = most recent; stores *entry
	stats    Stats

	decoders map[int64]*decoderSlot
	decLRU   *list.List // front = most recent; stores *decoderSlot keyed back by object
	decObj   map[*decoderSlot]int64
}

func newShard(capacity int64) *shard {
	return &shard{
		capacity: capacity,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		decoders: make(map[int64]*decoderSlot),
		decLRU:   list.New(),
		decObj:   make(map[*decoderSlot]int64),
	}
}

// Cache is a byte-budgeted, sharded LRU cache of decoded meshes with a
// per-object progressive decoder pool.
type Cache struct {
	shards []*shard
	mask   uint64
}

// minShardedCapacity is the budget below which the cache stays on a single
// shard: sharding a tiny cache would split the budget into slices smaller
// than one mesh and evict everything immediately.
const minShardedCapacity = 16 << 20

// defaultShards is the shard count for large caches (power of two).
const defaultShards = 16

// New returns a cache with the given capacity in (estimated) bytes. A
// capacity ≤ 0 disables caching: every GetOrDecode call decodes.
func New(capacity int64) *Cache {
	n := defaultShards
	if capacity < minShardedCapacity {
		n = 1
	}
	return NewSharded(capacity, n)
}

// NewSharded returns a cache with the byte budget split evenly across the
// given number of shards (rounded up to a power of two, min 1). All LODs of
// one object share a shard.
func NewSharded(capacity int64, shards int) *Cache {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1)}
	per := capacity / int64(n)
	if capacity > 0 && per <= 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = newShard(per)
	}
	return c
}

// NumShards returns the shard count.
func (c *Cache) NumShards() int { return len(c.shards) }

// shardFor hashes the object ID (not the LOD) so that every LOD of one
// object — and its decoder slot — lives in one shard.
func (c *Cache) shardFor(object int64) *shard {
	h := uint64(object)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return c.shards[h&c.mask]
}

// meshBytes estimates the memory footprint of a decoded mesh, including any
// derived memos (triangle slice, SoA lanes) materialized at admission time.
// Memos built after admission are not re-accounted; they are bounded by a
// small constant factor of the mesh itself.
func meshBytes(m *mesh.Mesh) int64 {
	return m.FootprintBytes() + 64
}

// lookupOrReserve returns the existing entry for key (found=true) or
// reserves a new in-flight entry owned by the caller (found=false).
func (s *shard) lookupOrReserve(key Key) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
		s.stats.Hits++
		return e, true
	}
	e := &entry{key: key, ready: make(chan struct{})}
	s.entries[key] = e
	s.stats.Misses++
	return e, false
}

// complete publishes the decode outcome of an owned in-flight entry.
func (s *shard) complete(e *entry, m *mesh.Mesh, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.mesh, e.err = m, err
	close(e.ready)
	if err != nil {
		// Do not cache failures.
		s.stats.DecodeFailures++
		delete(s.entries, e.key)
		return
	}
	e.bytes = meshBytes(m)
	e.elem = s.lru.PushFront(e)
	s.used += e.bytes
	s.evictLocked()
}

// fail aborts an owned in-flight entry after a panic in decode.
func (s *shard) fail(e *entry, r any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.err = fmt.Errorf("cache: decode panicked: %v", r)
	close(e.ready)
	s.stats.DecodeFailures++
	delete(s.entries, e.key)
}

// noteDecodeFailure records a decode failure on the cache-disabled path,
// where no entry lifecycle runs.
func (s *shard) noteDecodeFailure() {
	s.mu.Lock()
	s.stats.DecodeFailures++
	s.mu.Unlock()
}

// GetOrDecode returns the cached mesh for key, or runs decode to produce it.
// Concurrent callers of the same key share a single decode. The returned
// mesh must be treated as read-only.
func (c *Cache) GetOrDecode(key Key, decode func() (*mesh.Mesh, error)) (*mesh.Mesh, error) {
	s := c.shardFor(key.Object)
	if s.capacity <= 0 {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		m, err := decode()
		if err != nil {
			s.noteDecodeFailure()
		}
		return m, err
	}

	e, found := s.lookupOrReserve(key)
	if found {
		<-e.ready
		return e.mesh, e.err
	}

	// If decode panics, fail the entry before letting the panic continue:
	// otherwise its ready channel never closes and every later request for
	// this key blocks forever.
	m, err := func() (m *mesh.Mesh, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.fail(e, r)
				panic(r)
			}
		}()
		return decode()
	}()
	s.complete(e, m, err)
	return m, err
}

// GetOrDecodeProgressive is GetOrDecodeProgressiveCounted without a
// per-request counter sink.
func (c *Cache) GetOrDecodeProgressive(key Key, comp *ppvp.Compressed, onMiss func() error) (*mesh.Mesh, error) {
	return c.GetOrDecodeProgressiveCounted(key, comp, onMiss, nil)
}

// GetOrDecodeProgressiveCounted returns the cached mesh for key, decoding
// through the per-object progressive decoder pool on a miss: if a retained
// decoder for key.Object sits at a LOD ≤ key.LOD, decoding resumes from its
// state (a warm start) instead of replaying every round from LOD 0. onMiss,
// when non-nil, runs once before any decode work — the caller's hook for
// fault injection and decode accounting; a non-nil error from it fails the
// request without touching the decoder pool.
//
// req, when non-nil, receives per-request attribution: every counter the
// call moves on the shard is also added to req, so a caller owning several
// concurrent cache calls (one query) gets exact numbers even while other
// callers hammer the same cache. The decode work of a shared in-flight
// entry is attributed to the caller that performs it; waiters record a hit.
//
// Concurrent misses for different LODs of one object serialize on the
// object's decoder slot; concurrent callers of the same key share a single
// decode exactly as GetOrDecode does.
func (c *Cache) GetOrDecodeProgressiveCounted(key Key, comp *ppvp.Compressed, onMiss func() error, req *Counters) (*mesh.Mesh, error) {
	s := c.shardFor(key.Object)
	if s.capacity <= 0 {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		req.miss()
		if onMiss != nil {
			if err := onMiss(); err != nil {
				s.noteDecodeFailure()
				req.decodeFailure()
				return nil, err
			}
		}
		m, err := comp.Decode(key.LOD)
		if err != nil {
			s.noteDecodeFailure()
			req.decodeFailure()
		}
		return m, err
	}

	e, found := s.lookupOrReserve(key)
	if found {
		req.hit()
		<-e.ready
		return e.mesh, e.err
	}
	req.miss()

	m, err := func() (m *mesh.Mesh, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.fail(e, r)
				req.decodeFailure()
				panic(r)
			}
		}()
		if onMiss != nil {
			if err := onMiss(); err != nil {
				return nil, err
			}
		}
		return s.decodeWarm(c, key, comp, req)
	}()
	s.complete(e, m, err)
	if err != nil {
		req.decodeFailure()
	}
	return m, err
}

// hit/miss/decodeFailure are nil-safe increment helpers so the cache's
// accounting points stay one-liners.
func (r *Counters) hit() {
	if r != nil {
		r.Hits.Add(1)
	}
}

func (r *Counters) miss() {
	if r != nil {
		r.Misses.Add(1)
	}
}

func (r *Counters) decodeFailure() {
	if r != nil {
		r.DecodeFailures.Add(1)
	}
}

// decodeWarm performs the miss-path decode through the shard's decoder pool.
func (s *shard) decodeWarm(c *Cache, key Key, comp *ppvp.Compressed, req *Counters) (*mesh.Mesh, error) {
	slot := s.checkoutDecoder(key.Object)
	defer s.releaseDecoder(slot)

	slot.mu.Lock()
	defer slot.mu.Unlock()

	warm := slot.dec != nil && slot.dec.CanAdvanceTo(key.LOD)
	var dec *ppvp.Decoder
	if warm {
		dec = slot.dec
	} else {
		var err error
		dec, err = comp.NewDecoder()
		if err != nil {
			return nil, err
		}
	}

	before := dec.RoundsApplied()
	m, err := dec.DecodeTo(key.LOD)
	if err != nil {
		// The decoder state may be mid-round; drop it rather than resume it.
		if warm {
			slot.dec = nil
		}
		return nil, err
	}

	s.mu.Lock()
	s.stats.RoundsApplied += int64(dec.RoundsApplied() - before)
	if warm {
		s.stats.WarmStarts++
		s.stats.RoundsSkipped += int64(before)
	}
	s.mu.Unlock()
	if req != nil {
		req.RoundsApplied.Add(int64(dec.RoundsApplied() - before))
		if warm {
			req.WarmStarts.Add(1)
			req.RoundsSkipped.Add(int64(before))
		}
	}

	// Retain whichever decoder state reaches furthest: a cold decode below
	// the retained decoder's LOD must not clobber the more advanced state.
	if slot.dec == nil || dec.RoundsApplied() >= slot.dec.RoundsApplied() {
		slot.dec = dec
	}
	return m, nil
}

// checkoutDecoder pins (creating if needed) the decoder slot for an object.
func (s *shard) checkoutDecoder(object int64) *decoderSlot {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.decoders[object]
	if !ok {
		slot = &decoderSlot{}
		s.decoders[object] = slot
		s.decObj[slot] = object
		slot.elem = s.decLRU.PushFront(slot)
		s.evictDecodersLocked()
	} else {
		s.decLRU.MoveToFront(slot.elem)
	}
	slot.refs++
	return slot
}

// releaseDecoder unpins a checked-out slot.
func (s *shard) releaseDecoder(slot *decoderSlot) {
	s.mu.Lock()
	slot.refs--
	s.mu.Unlock()
}

// evictDecodersLocked trims the decoder pool to its cap, skipping slots that
// are currently checked out.
func (s *shard) evictDecodersLocked() {
	for elem := s.decLRU.Back(); elem != nil && s.decLRU.Len() > maxDecodersPerShard; {
		prev := elem.Prev()
		slot := elem.Value.(*decoderSlot)
		if slot.refs == 0 {
			s.decLRU.Remove(elem)
			obj := s.decObj[slot]
			delete(s.decoders, obj)
			delete(s.decObj, slot)
		}
		elem = prev
	}
}

// dropDecoderLocked removes an object's decoder slot if it is not in use.
func (s *shard) dropDecoderLocked(object int64) {
	if slot, ok := s.decoders[object]; ok && slot.refs == 0 {
		s.decLRU.Remove(slot.elem)
		delete(s.decoders, object)
		delete(s.decObj, slot)
	}
}

// Get returns the cached mesh if present (nil otherwise) without decoding.
func (c *Cache) Get(key Key) *mesh.Mesh {
	s := c.shardFor(key.Object)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok || e.elem == nil {
		s.mu.Unlock()
		return nil
	}
	s.lru.MoveToFront(e.elem)
	s.stats.Hits++
	s.mu.Unlock()
	<-e.ready
	return e.mesh
}

// evictLocked drops least-recently-used complete entries until the budget
// holds. In-flight entries (elem == nil) are never evicted.
func (s *shard) evictLocked() {
	for s.used > s.capacity {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.used -= e.bytes
		s.stats.Evictions++
	}
}

// InvalidateObject removes every cached LOD of the given object, and its
// retained decoder.
func (c *Cache) InvalidateObject(obj int64) {
	s := c.shardFor(obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, e := range s.entries {
		if key.Object == obj && e.elem != nil {
			s.lru.Remove(e.elem)
			delete(s.entries, key)
			s.used -= e.bytes
		}
	}
	s.dropDecoderLocked(obj)
}

// Clear drops all complete entries and every idle retained decoder.
func (c *Cache) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		for key, e := range s.entries {
			if e.elem != nil {
				s.lru.Remove(e.elem)
				delete(s.entries, key)
				s.used -= e.bytes
			}
		}
		for obj := range s.decoders {
			s.dropDecoderLocked(obj)
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the counters, aggregated over shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st := s.stats
		st.BytesUsed = s.used
		s.mu.Unlock()
		out = out.add(st)
	}
	return out
}

// Len returns the number of complete cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// NumDecoders returns the number of retained progressive decoders.
func (c *Cache) NumDecoders() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.decLRU.Len()
		s.mu.Unlock()
	}
	return n
}
