// Package cache implements the LRU decoding cache of the paper's §5.3: a
// byte-budgeted, thread-safe map from (object ID, LOD) to the decoded faces
// of that object at that LOD. Decoding is compute-intensive, so reusing a
// recently decoded representation — one vessel can be the candidate of
// hundreds of nuclei — dominates the decode cost of distance joins
// (Table 2 of the paper).
//
// Concurrent requests for the same key are deduplicated: the first caller
// decodes while the others wait, matching the paper's decoder/geometry-
// computer handshake ("sends a request to the object decoder and waits for
// the data to be decoded").
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/mesh"
)

// Key identifies a decoded representation: one object at one LOD.
type Key struct {
	Object int64
	LOD    int
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// BytesUsed is the current estimated footprint of cached meshes.
	BytesUsed int64
}

type entry struct {
	key   Key
	mesh  *mesh.Mesh
	bytes int64
	elem  *list.Element

	ready chan struct{} // closed when mesh is available
	err   error
}

// Cache is a byte-budgeted LRU cache of decoded meshes.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[Key]*entry
	lru      *list.List // front = most recent; stores *entry
	stats    Stats
}

// New returns a cache with the given capacity in (estimated) bytes. A
// capacity ≤ 0 disables caching: every GetOrDecode call decodes.
func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
	}
}

// meshBytes estimates the memory footprint of a decoded mesh.
func meshBytes(m *mesh.Mesh) int64 {
	return int64(len(m.Vertices))*24 + int64(len(m.Faces))*12 + 64
}

// GetOrDecode returns the cached mesh for key, or runs decode to produce it.
// Concurrent callers of the same key share a single decode. The returned
// mesh must be treated as read-only.
func (c *Cache) GetOrDecode(key Key, decode func() (*mesh.Mesh, error)) (*mesh.Mesh, error) {
	if c.capacity <= 0 {
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		return decode()
	}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.stats.Hits++
		c.mu.Unlock()
		<-e.ready
		return e.mesh, e.err
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.mu.Unlock()

	// If decode panics, fail the entry before letting the panic continue:
	// otherwise its ready channel never closes and every later request for
	// this key blocks forever.
	m, err := func() (m *mesh.Mesh, err error) {
		defer func() {
			if r := recover(); r != nil {
				c.mu.Lock()
				e.err = fmt.Errorf("cache: decode panicked: %v", r)
				close(e.ready)
				delete(c.entries, key)
				c.mu.Unlock()
				panic(r)
			}
		}()
		return decode()
	}()

	c.mu.Lock()
	e.mesh, e.err = m, err
	close(e.ready)
	if err != nil {
		// Do not cache failures.
		delete(c.entries, key)
		c.mu.Unlock()
		return nil, err
	}
	e.bytes = meshBytes(m)
	e.elem = c.lru.PushFront(e)
	c.used += e.bytes
	c.evictLocked()
	c.mu.Unlock()
	return m, nil
}

// Get returns the cached mesh if present (nil otherwise) without decoding.
func (c *Cache) Get(key Key) *mesh.Mesh {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || e.elem == nil {
		c.mu.Unlock()
		return nil
	}
	c.lru.MoveToFront(e.elem)
	c.stats.Hits++
	c.mu.Unlock()
	<-e.ready
	return e.mesh
}

// evictLocked drops least-recently-used complete entries until the budget
// holds. In-flight entries (elem == nil) are never evicted.
func (c *Cache) evictLocked() {
	for c.used > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.bytes
		c.stats.Evictions++
	}
}

// InvalidateObject removes every cached LOD of the given object.
func (c *Cache) InvalidateObject(obj int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if key.Object == obj && e.elem != nil {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			c.used -= e.bytes
		}
	}
}

// Clear drops all complete entries.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if e.elem != nil {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			c.used -= e.bytes
		}
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesUsed = c.used
	return s
}

// Len returns the number of complete cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
