package core

import (
	"cmp"
	"context"
	"fmt"
	"runtime/debug"
	"slices"
	"sync"

	"repro/internal/storage"
)

// runPerTarget executes fn for every object of the target dataset,
// parallelized over cuboids so that objects sharing a cuboid are processed
// together — the batching of §5.3 that gives the decode cache its spatial
// locality.
//
// fn receives the worker slot index w in [0, workers): at any instant at
// most one goroutine runs with a given w, so callbacks may use w to index
// per-worker scratch state (filter buffers, result shards) without locking.
//
// The first error (or a cancellation of ctx) cancels a derived context, so
// the spawning loop and every worker abort promptly; already-running fn
// calls finish. A panic inside fn — a bad geometry, a corrupt blob tripping
// an unchecked path — is recovered per object and surfaces as an error for
// this query instead of crashing the process.
//
// onErr, when non-nil, intercepts each per-object error (including
// recovered panics) before it aborts the run: returning nil swallows the
// failure and the worker continues with the next object (degraded-mode
// execution); returning an error — the same or another — aborts as before.
// Nil onErr preserves strict fail-fast semantics.
func runPerTarget(ctx context.Context, target *Dataset, workers int, fn func(w int, o *storage.Object) error, onErr func(w int, o *storage.Object, err error) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	cuboids := make([]int, 0, len(target.Tileset.Tiles))
	for c := range target.Tileset.Tiles {
		cuboids = append(cuboids, c)
	}
	slices.Sort(cuboids)

	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel(err)
		})
	}
	// slots doubles as the concurrency semaphore and the worker-index pool:
	// a goroutine owns index w for the duration of its cuboid batch.
	slots := make(chan int, workers)
	for i := 0; i < workers; i++ {
		//lint:ignore chandiscipline semaphore fill: the channel was just made with capacity workers, so these workers sends cannot block
		slots <- i
	}
spawn:
	for _, c := range cuboids {
		objs := target.Tileset.Tiles[c]
		var w int
		select {
		case w = <-slots:
		case <-ctx.Done():
			break spawn
		}
		wg.Add(1)
		go func(w int, objs []*storage.Object) {
			defer wg.Done()
			//lint:ignore chandiscipline slot return: at most `workers` slots are ever outstanding, so the buffered semaphore always has room; the send cannot block
			defer func() { slots <- w }()
			for _, o := range objs {
				if ctx.Err() != nil {
					return
				}
				if err := callRecovered(fn, w, o); err != nil {
					if onErr != nil {
						err = onErr(w, o, err)
					}
					if err != nil {
						fail(err)
						return
					}
				}
			}
		}(w, objs)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// callRecovered runs fn(w, o), converting a panic into an error so one bad
// object fails the query, not the process.
func callRecovered(fn func(w int, o *storage.Object) error, w int, o *storage.Object) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: worker panic on object %d: %v\n%s", o.ID, r, debug.Stack())
		}
	}()
	return fn(w, o)
}

// resultSink collects pairs from concurrent workers into per-worker buffers
// (no locking on the hot path) and merges them in a deterministic order.
type resultSink struct {
	buf [][]Pair
}

func newResultSink(workers int) *resultSink {
	if workers < 1 {
		workers = 1
	}
	return &resultSink{buf: make([][]Pair, workers)}
}

// add appends a pair to worker w's buffer. Safe without locking because
// runPerTarget guarantees slot exclusivity.
func (r *resultSink) add(w int, p Pair) {
	r.buf[w] = append(r.buf[w], p)
}

func (r *resultSink) sorted() []Pair {
	n := 0
	for _, b := range r.buf {
		n += len(b)
	}
	pairs := make([]Pair, 0, n)
	for _, b := range r.buf {
		pairs = append(pairs, b...)
	}
	slices.SortFunc(pairs, comparePairs)
	return pairs
}

// comparePairs orders pairs by target then source — the deterministic
// result order every join guarantees regardless of worker interleaving.
func comparePairs(a, b Pair) int {
	if c := cmp.Compare(a.Target, b.Target); c != 0 {
		return c
	}
	return cmp.Compare(a.Source, b.Source)
}
