package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/storage"
)

// runPerTarget executes fn for every object of the target dataset,
// parallelized over cuboids so that objects sharing a cuboid are processed
// together — the batching of §5.3 that gives the decode cache its spatial
// locality. The first error aborts remaining work (already running cuboids
// finish).
func runPerTarget(ctx context.Context, target *Dataset, workers int, fn func(o *storage.Object) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	cuboids := make([]int, 0, len(target.Tileset.Tiles))
	for c := range target.Tileset.Tiles {
		cuboids = append(cuboids, c)
	}
	sort.Ints(cuboids)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	sem := make(chan struct{}, workers)
	for _, c := range cuboids {
		objs := target.Tileset.Tiles[c]
		wg.Add(1)
		sem <- struct{}{}
		go func(objs []*storage.Object) {
			defer wg.Done()
			defer func() { <-sem }()
			for _, o := range objs {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				abort := firstEr != nil
				mu.Unlock()
				if abort {
					return
				}
				if err := fn(o); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
			}
		}(objs)
	}
	wg.Wait()
	return firstEr
}

// resultSink collects pairs from concurrent workers and returns them in a
// deterministic order.
type resultSink struct {
	mu    sync.Mutex
	pairs []Pair
}

func (r *resultSink) add(p Pair) {
	r.mu.Lock()
	r.pairs = append(r.pairs, p)
	r.mu.Unlock()
}

func (r *resultSink) sorted() []Pair {
	sort.Slice(r.pairs, func(i, j int) bool {
		if r.pairs[i].Target != r.pairs[j].Target {
			return r.pairs[i].Target < r.pairs[j].Target
		}
		return r.pairs[i].Source < r.pairs[j].Source
	})
	return r.pairs
}

// timed wraps a phase measurement.
func timed(dst interface{ Add(int64) int64 }, fn func()) {
	t0 := time.Now()
	fn()
	dst.Add(time.Since(t0).Nanoseconds())
}
