package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/storage"
)

// runPerTarget executes fn for every object of the target dataset,
// parallelized over cuboids so that objects sharing a cuboid are processed
// together — the batching of §5.3 that gives the decode cache its spatial
// locality.
//
// The first error (or a cancellation of ctx) cancels a derived context, so
// the spawning loop and every worker abort promptly; already-running fn
// calls finish. A panic inside fn — a bad geometry, a corrupt blob tripping
// an unchecked path — is recovered per object and surfaces as an error for
// this query instead of crashing the process.
func runPerTarget(ctx context.Context, target *Dataset, workers int, fn func(o *storage.Object) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	cuboids := make([]int, 0, len(target.Tileset.Tiles))
	for c := range target.Tileset.Tiles {
		cuboids = append(cuboids, c)
	}
	sort.Ints(cuboids)

	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel(err)
		})
	}
	sem := make(chan struct{}, workers)
spawn:
	for _, c := range cuboids {
		objs := target.Tileset.Tiles[c]
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break spawn
		}
		wg.Add(1)
		go func(objs []*storage.Object) {
			defer wg.Done()
			defer func() { <-sem }()
			for _, o := range objs {
				if ctx.Err() != nil {
					return
				}
				if err := callRecovered(fn, o); err != nil {
					fail(err)
					return
				}
			}
		}(objs)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// callRecovered runs fn(o), converting a panic into an error so one bad
// object fails the query, not the process.
func callRecovered(fn func(o *storage.Object) error, o *storage.Object) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: worker panic on object %d: %v\n%s", o.ID, r, debug.Stack())
		}
	}()
	return fn(o)
}

// resultSink collects pairs from concurrent workers and returns them in a
// deterministic order.
type resultSink struct {
	mu    sync.Mutex
	pairs []Pair
}

func (r *resultSink) add(p Pair) {
	r.mu.Lock()
	r.pairs = append(r.pairs, p)
	r.mu.Unlock()
}

func (r *resultSink) sorted() []Pair {
	sort.Slice(r.pairs, func(i, j int) bool {
		if r.pairs[i].Target != r.pairs[j].Target {
			return r.pairs[i].Target < r.pairs[j].Target
		}
		return r.pairs[i].Source < r.pairs[j].Source
	})
	return r.pairs
}

// timed wraps a phase measurement.
func timed(dst interface{ Add(int64) int64 }, fn func()) {
	t0 := time.Now()
	fn()
	dst.Add(time.Since(t0).Nanoseconds())
}
