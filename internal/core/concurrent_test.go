package core

import (
	"context"
	"sync"
	"testing"
)

// TestConcurrentQueriesShareEngine runs different joins concurrently on one
// engine (sharing the decode cache and the simulated GPU) and checks every
// run returns the same answers as a serial reference. Run with -race in CI.
func TestConcurrentQueriesShareEngine(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	ctx := context.Background()

	refWithin, _, err := e.WithinJoin(ctx, a, b, 12, QueryOptions{Paradigm: FPR, Accel: AABB})
	if err != nil {
		t.Fatal(err)
	}
	refNN, _, err := e.NNJoin(ctx, a, b, QueryOptions{Paradigm: FPR, Accel: AABB})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				switch g % 3 {
				case 0:
					got, _, err := e.WithinJoin(ctx, a, b, 12, QueryOptions{Paradigm: FPR, Accel: AABB})
					if err != nil {
						errs <- err
						return
					}
					if len(got) != len(refWithin) {
						errs <- errMismatch{}
						return
					}
				case 1:
					got, _, err := e.NNJoin(ctx, a, b, QueryOptions{Paradigm: FR, Accel: GPU})
					if err != nil {
						errs <- err
						return
					}
					if len(got) != len(refNN) {
						errs <- errMismatch{}
						return
					}
					for j := range got {
						if diff := got[j].Dist - refNN[j].Dist; diff > 1e-9 || diff < -1e-9 {
							errs <- errMismatch{}
							return
						}
					}
				default:
					got, _, err := e.IntersectJoin(ctx, a, b, QueryOptions{Paradigm: FPR, Accel: Partition})
					if err != nil {
						errs <- err
						return
					}
					if len(got) != 0 { // disjoint datasets never intersect
						errs <- errMismatch{}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "concurrent query result mismatch" }
