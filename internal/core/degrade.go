package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/quarantine"
	"repro/internal/storage"
)

// ErrorPolicy selects how a query reacts to per-object failures (corrupt
// blobs, decode errors, evaluator panics).
type ErrorPolicy int

const (
	// FailFast aborts the whole query on the first object failure — today's
	// strict behavior, and the default.
	FailFast ErrorPolicy = iota
	// Degrade skips failing objects and keeps the query running: results
	// that the PPVP progressive-approximation properties prove independently
	// of the failed objects are returned as certain, pairs the failure left
	// unsettled are reported as uncertain, and every skipped object is
	// listed in Stats.Degraded. An error budget bounds how much damage a
	// query tolerates before giving up anyway.
	Degrade
)

func (p ErrorPolicy) String() string {
	if p == Degrade {
		return "degrade"
	}
	return "fail-fast"
}

// ObjectError records one object a Degrade-policy query skipped.
type ObjectError struct {
	Dataset string `json:"dataset"`
	Object  int64  `json:"object"`
	Err     string `json:"error"`
}

// ErrQuarantined marks decode refusals caused by the engine's quarantine
// registry (the object's circuit breaker is open, or the object was dropped
// during salvage loading). Under Degrade these skips are recorded but do not
// consume the error budget — the condition is already known and bounded.
var ErrQuarantined = errors.New("quarantined")

// errBudgetExceeded aborts a Degrade-policy query once more distinct objects
// failed than the budget allows.
var errBudgetExceeded = errors.New("core: degraded-mode error budget exceeded")

// defaultErrorBudget is the distinct-failed-object budget when
// QueryOptions.ErrorBudget is zero.
const defaultErrorBudget = 64

// degrader collects per-object failures and unsettled pairs for one
// Degrade-policy query. Buffers are per worker slot (runPerTarget guarantees
// slot exclusivity), so the hot path records failures without locking; the
// distinct-object dedup set is the only shared state.
type degrader struct {
	budget int64 // distinct failed objects allowed; <0 = unlimited

	failed sync.Map // quarantine.Key -> struct{} (dedup across workers)
	count  atomic.Int64

	errsBuf [][]ObjectError
	uncBuf  [][]Pair
	uncIDs  []int64 // single-object queries only (not under runPerTarget)
}

func newDegrader(workers, budget int) *degrader {
	if workers < 1 {
		workers = 1
	}
	b := int64(budget)
	if budget == 0 {
		b = defaultErrorBudget
	} else if budget < 0 {
		b = -1
	}
	return &degrader{
		budget:  b,
		errsBuf: make([][]ObjectError, workers),
		uncBuf:  make([][]Pair, workers),
	}
}

// fail records one failed object. The first failure of each distinct object
// is appended to the worker's degraded list; quarantine skips are recorded
// but don't consume the budget. A non-nil return aborts the query (budget
// exceeded).
func (d *degrader) fail(w int, ds *Dataset, id int64, err error) error {
	k := quarantine.Key{Dataset: ds.seq, Object: id}
	if _, seen := d.failed.LoadOrStore(k, struct{}{}); seen {
		return nil
	}
	d.errsBuf[w] = append(d.errsBuf[w], ObjectError{Dataset: ds.Name, Object: id, Err: err.Error()})
	if errors.Is(err, ErrQuarantined) {
		return nil
	}
	if n := d.count.Add(1); d.budget >= 0 && n > d.budget {
		return fmt.Errorf("%w: %d objects failed (budget %d; last: object %d of %q: %v)",
			errBudgetExceeded, n, d.budget, id, ds.Name, err)
	}
	return nil
}

// uncertain marks one (target, source) pair as unsettled: the failure left
// the predicate neither proven nor disproven. Source -1 means the failure
// hid an unknown set of candidates of the target.
func (d *degrader) uncertain(w int, p Pair) {
	d.uncBuf[w] = append(d.uncBuf[w], p)
}

// uncertainAll marks every remaining candidate of a target as unsettled
// (the target object itself failed mid-refinement).
func (d *degrader) uncertainAll(w int, target int64, ids []int64) {
	for _, id := range ids {
		d.uncertain(w, Pair{Target: target, Source: id})
	}
}

// uncertainID marks one object of a single-dataset query as unsettled. Only
// used by the single-threaded query paths (ContainingObjects, RangeQuery).
func (d *degrader) uncertainID(id int64) {
	d.uncIDs = append(d.uncIDs, id)
}

// fill merges the per-worker buffers into the query stats, deterministically
// ordered. Safe on a nil receiver (FailFast queries).
func (d *degrader) fill(st *Stats) {
	if d == nil {
		return
	}
	for _, b := range d.errsBuf {
		st.Degraded = append(st.Degraded, b...)
	}
	sort.Slice(st.Degraded, func(i, j int) bool {
		if st.Degraded[i].Dataset != st.Degraded[j].Dataset {
			return st.Degraded[i].Dataset < st.Degraded[j].Dataset
		}
		return st.Degraded[i].Object < st.Degraded[j].Object
	})
	for _, b := range d.uncBuf {
		st.Uncertain = append(st.Uncertain, b...)
	}
	slices.SortFunc(st.Uncertain, comparePairs)
	st.UncertainIDs = append(st.UncertainIDs, d.uncIDs...)
	slices.Sort(st.UncertainIDs)
}

// backstop returns the runPerTarget error hook for this query: under
// Degrade, a panic or error that escaped a worker callback (a geometry
// evaluator blowing up on a decoded mesh) quarantines the target object and
// converts the abort into a per-object degradation. Nil under FailFast,
// preserving strict semantics.
func (d *degrader) backstop(e *Engine, ds *Dataset) func(w int, o *storage.Object, err error) error {
	if d == nil {
		return nil
	}
	return func(w int, o *storage.Object, err error) error {
		if isCtxErr(err) || errors.Is(err, errBudgetExceeded) {
			return err
		}
		e.quar.Failure(quarantine.Key{Dataset: ds.seq, Object: o.ID}, firstLine(err.Error()))
		if aerr := d.fail(w, ds, o.ID, err); aerr != nil {
			return aerr
		}
		// The callback died mid-target: which candidates were left is
		// unknown, so the whole target is marked unsettled.
		d.uncertain(w, Pair{Target: o.ID, Source: -1})
		return nil
	}
}

// degradeErr centralizes per-candidate decode-error handling: under
// FailFast (or on context expiry) the error aborts the query; under Degrade
// the object is recorded and the caller skips it. skip=true means "drop the
// object and continue", otherwise abort with the returned error.
func (c *evalCtx) degradeErr(w int, ds *Dataset, id int64, err error) (skip bool, abort error) {
	if c.deg == nil || isCtxErr(err) {
		return false, err
	}
	if aerr := c.deg.fail(w, ds, id, err); aerr != nil {
		return false, aerr
	}
	return true, nil
}

// isCtxErr reports whether err is a context cancellation or deadline —
// never attributable to an object, so it always aborts and never counts
// against quarantine or the error budget.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// firstLine truncates an error message to its first line (capped), keeping
// quarantine reasons and degradation reports readable when the failure was
// a panic with a full stack trace attached.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			s = s[:i]
			break
		}
	}
	const maxReason = 200
	if len(s) > maxReason {
		s = s[:maxReason]
	}
	return s
}
