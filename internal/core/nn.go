package core

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/index/rtree"
	"repro/internal/storage"
)

// nnCand is one nearest-neighbor candidate with its live distance range
// r = [MINDIST, MAXDIST] (Alg. 3 of the paper). MINDIST starts as the MBB
// MINDIST and collapses to the exact distance at the highest LOD; MAXDIST
// starts as the MBB-union diagonal and only decreases as lower-LOD
// distances are measured (PPVP property 2 makes every measured distance an
// upper bound of the true distance).
type nnCand struct {
	id      int64
	minDist float64
	maxDist float64
	exact   bool
}

// NNJoin returns, for each object of target, its nearest neighbor in
// source (self excluded when the datasets are identical). Targets with no
// candidate (empty source) are omitted.
func (e *Engine) NNJoin(ctx context.Context, target, source *Dataset, q QueryOptions) ([]Neighbor, *Stats, error) {
	q.K = 1
	return e.KNNJoin(ctx, target, source, q)
}

// KNNJoin returns, for each object of target, its q.K nearest neighbors in
// source, closest first. Results are sorted by target then rank.
func (e *Engine) KNNJoin(ctx context.Context, target, source *Dataset, q QueryOptions) ([]Neighbor, *Stats, error) {
	if q.K <= 0 {
		q.K = 1
	}
	start := time.Now()
	col := newCollector(source.maxLOD, q, start)
	ec := newEvalCtx(e, q, col)
	lods := e.schedule(&q, minInt(target.maxLOD, source.maxLOD), NNKind)
	tree := source.filterTree(q.Accel)

	// Per-worker neighbor buffers, merged after the run (no lock on the
	// hot path; runPerTarget guarantees slot exclusivity).
	sinkBuf := make([][]Neighbor, maxInt(q.workers(e), 1))

	err := runPerTarget(ctx, target, q.workers(e), func(w int, o *storage.Object) error {
		// Filtering step: R-tree NN candidate generation with
		// MINMAXDIST-style pruning. With the sub-object tree one object can
		// yield several entries; they merge by taking the minimum of both
		// range endpoints.
		var cands []*nnCand
		col.filterPhase(func() {
			skip := func(ent rtree.Entry) bool { return target.seq == source.seq && ent.ID == o.ID }
			raw := tree.NNCandidates(o.MBB(), q.K, skip)
			byID := make(map[int64]*nnCand, len(raw))
			for _, rc := range raw {
				c, ok := byID[rc.ID]
				if !ok {
					c = &nnCand{id: rc.ID, minDist: rc.MinDist, maxDist: rc.MaxDist}
					byID[rc.ID] = c
					cands = append(cands, c)
					continue
				}
				c.minDist = math.Min(c.minDist, rc.MinDist)
				c.maxDist = math.Min(c.maxDist, rc.MaxDist)
			}
		})
		col.candidates.Add(int64(len(cands)))
		if len(cands) == 0 {
			return nil
		}
		if q.marginSched() {
			// Margin ordering: evaluate the most promising candidates (by
			// MBB MINDIST) first so their measured distances tighten the
			// MINMAXDIST threshold before the long-shot candidates come up —
			// those then fall to the pre-decode prune and are never decoded.
			// Order only shifts which LOD settles a pair, never the verdict.
			sort.Slice(cands, func(i, j int) bool {
				//lint:ignore floateq MBB bound tie-break; equality only routes to the deterministic ID order
				if cands[i].minDist != cands[j].minDist {
					return cands[i].minDist < cands[j].minDist
				}
				return cands[i].id < cands[j].id
			})
		} else {
			sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
		}

		// Degrade bookkeeping: candidates whose decode failed are parked
		// here with their last known MINDIST (a lower bound of the true
		// distance) so the final ranking can tell which of them could still
		// belong in the top k. targetFailed means nothing more can be
		// ranked for this target at all.
		var failed []*nnCand
		targetFailed := false

		// Progressive refinement (Alg. 3): measure candidate distances at
		// ascending LODs, shrinking MAXDISTs and pruning with the k-th
		// smallest MAXDIST, until only k candidates survive or the highest
		// LOD settles everything.
		sc := &ec.scratch[w]
		// kthOver returns the k-th smallest MAXDIST over the two candidate
		// slices — a sound MINMAXDIST threshold: each MAXDIST upper-bounds
		// its candidate's true distance, so at least k candidates lie within
		// the k-th smallest of them, and anything whose MINDIST exceeds it is
		// provably out of the top k. The two-slice form lets the eval pass
		// pass disjoint views (kept so far + not yet visited) of its
		// in-place-filtered array without double-counting a candidate.
		kthOver := func(a, b []*nnCand) float64 {
			if len(a)+len(b) < q.K {
				return math.Inf(1)
			}
			maxd := sc.maxd[:0]
			for _, c := range a {
				maxd = append(maxd, c.maxDist)
			}
			for _, c := range b {
				maxd = append(maxd, c.maxDist)
			}
			sort.Float64s(maxd)
			sc.maxd = maxd
			return maxd[q.K-1]
		}
		kth := func() float64 { return kthOver(cands, nil) }
		minmax := kth()

		// prevEvalLOD tracks the last LOD whose evaluations tightened
		// MINMAXDIST; prunes triggered by that tightening are attributed
		// to it in the Fig. 12 statistics. -1 means the R-tree filter.
		prevEvalLOD := -1
		for li, lod := range lods {
			if len(cands) <= q.K && allExact(cands) {
				break
			}
			last := li == len(lods)-1
			// Once no more candidates can be pruned, intermediate LODs are
			// pure overhead: jump straight to the highest LOD for the exact
			// distances.
			if len(cands) <= q.K && !last {
				continue
			}
			to, err := ec.decode(target, o.ID, lod)
			if err != nil {
				skip, aerr := ec.degradeErr(w, target, o.ID, err)
				if !skip {
					return aerr
				}
				targetFailed = true
				break
			}
			kept := cands[:0]
			for ci := 0; ci < len(cands); ci++ {
				c := cands[ci]
				// MINMAXDIST keeps decreasing; re-check before decoding.
				// A candidate dropped here was settled by the previous
				// LOD's refinement (or by the filter when none ran yet) —
				// its decode at this LOD never happens, which is where the
				// margin ordering's savings come from.
				if c.minDist > minmax*(1+1e-12) {
					col.boundsDecided()
					if prevEvalLOD >= 0 {
						col.settlePair(prevEvalLOD)
					}
					continue
				}
				so, err := ec.decode(source, c.id, lod)
				if err != nil {
					skip, aerr := ec.degradeErr(w, source, c.id, err)
					if !skip {
						return aerr
					}
					failed = append(failed, c)
					continue
				}
				col.evalPair(lod)
				d := ec.minDist(to, so, c.maxDist*(1+1e-12))
				if d < c.maxDist {
					c.maxDist = d
				}
				if last {
					// The range collapses to the exact distance.
					c.minDist = math.Min(d, c.maxDist)
					c.maxDist = c.minDist
					c.exact = true
				}
				kept = append(kept, c)
				if q.marginSched() {
					// In-pass tightening for any k: the live candidate set is
					// exactly kept ∪ cands[ci+1:] (disjoint views of the
					// in-place filter — the full cands slice would count a
					// dropped slot twice and over-tighten unsoundly).
					minmax = kthOver(kept, cands[ci+1:])
				} else if q.K == 1 && c.maxDist < minmax {
					// Static reference semantics: in-pass tightening only for
					// k = 1; for larger k the threshold is recomputed between
					// passes.
					minmax = c.maxDist
				}
			}
			cands = kept
			minmax = kth()
			// Post-pass prune (steps 14–16).
			kept = cands[:0]
			for _, c := range cands {
				if c.minDist > minmax*(1+1e-12) {
					col.settlePair(lod)
					continue
				}
				kept = append(kept, c)
			}
			cands = kept
			prevEvalLOD = lod
		}

		// Settle any remainder exactly (only reachable when the candidate
		// list shrank to k before the top LOD — their current MAXDISTs are
		// upper bounds, but ranking requires exact values).
		if !targetFailed && !allExact(cands) {
			top := lods[len(lods)-1]
			to, err := ec.decode(target, o.ID, top)
			if err != nil {
				skip, aerr := ec.degradeErr(w, target, o.ID, err)
				if !skip {
					return aerr
				}
				targetFailed = true
			} else {
				kept := cands[:0]
				for _, c := range cands {
					if c.exact {
						kept = append(kept, c)
						continue
					}
					so, err := ec.decode(source, c.id, top)
					if err != nil {
						skip, aerr := ec.degradeErr(w, source, c.id, err)
						if !skip {
							return aerr
						}
						failed = append(failed, c)
						continue
					}
					col.evalPair(top)
					d := ec.minDist(to, so, c.maxDist*(1+1e-12))
					c.minDist = math.Min(d, c.maxDist)
					c.maxDist = c.minDist
					c.exact = true
					kept = append(kept, c)
				}
				cands = kept
			}
		}

		if targetFailed {
			// Nothing can be ranked without the target's geometry: every
			// surviving and parked candidate is unsettled.
			for _, c := range cands {
				ec.deg.uncertain(w, Pair{Target: o.ID, Source: c.id})
			}
			for _, c := range failed {
				ec.deg.uncertain(w, Pair{Target: o.ID, Source: c.id})
			}
			return nil
		}

		sort.Slice(cands, func(i, j int) bool {
			//lint:ignore floateq exact tie-break between settled distances; equality only routes to the deterministic ID order
			if cands[i].minDist != cands[j].minDist {
				return cands[i].minDist < cands[j].minDist
			}
			return cands[i].id < cands[j].id
		})
		k := q.K
		if k > len(cands) {
			k = len(cands)
		}
		for _, c := range cands[:k] {
			sinkBuf[w] = append(sinkBuf[w], Neighbor{Target: o.ID, Source: c.id, Dist: c.minDist})
			col.results.Add(1)
		}
		// Degrade: a parked candidate whose MINDIST lower bound does not
		// exceed the k-th reported distance could displace a neighbor, so
		// the (target, candidate) relation is unsettled. Lower bounds above
		// the cut prove the candidate out of the top k — certain exclusion.
		if len(failed) > 0 {
			cut := math.Inf(1)
			if len(cands) >= q.K {
				cut = cands[k-1].minDist
			}
			for _, c := range failed {
				if len(cands) < q.K || c.minDist <= cut*(1+1e-12) {
					ec.deg.uncertain(w, Pair{Target: o.ID, Source: c.id})
				}
			}
		}
		return nil
	}, ec.deg.backstop(e, target))
	if err != nil {
		return nil, ec.finish(start), err
	}

	var sink []Neighbor
	for _, b := range sinkBuf {
		sink = append(sink, b...)
	}
	sort.Slice(sink, func(i, j int) bool {
		if sink[i].Target != sink[j].Target {
			return sink[i].Target < sink[j].Target
		}
		//lint:ignore floateq exact tie-break between settled distances; equality only routes to the deterministic ID order
		if sink[i].Dist != sink[j].Dist {
			return sink[i].Dist < sink[j].Dist
		}
		return sink[i].Source < sink[j].Source
	})
	st := ec.finish(start)
	if q.Paradigm == FPR {
		e.cal.observe(NNKind, st)
	}
	return sink, st, nil
}

func allExact(cands []*nnCand) bool {
	for _, c := range cands {
		if !c.exact {
			return false
		}
	}
	return true
}
