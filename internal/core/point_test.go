package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestContainingObjectsMatchesBrute(t *testing.T) {
	e := testEngine(t)
	a, _ := buildPair(t, e)
	meshes := decodeAll(t, a)

	rng := rand.New(rand.NewSource(8))
	space := a.Tree().Bounds()
	tested := 0
	for i := 0; i < 400 && tested < 150; i++ {
		p := geom.V(
			space.Min.X+rng.Float64()*space.Size().X,
			space.Min.Y+rng.Float64()*space.Size().Y,
			space.Min.Z+rng.Float64()*space.Size().Z,
		)
		var want []int64
		for j, m := range meshes {
			if m.ContainsPoint(p) {
				want = append(want, int64(j))
			}
		}
		tested++
		for _, paradigm := range []Paradigm{FR, FPR} {
			got, stats, err := e.ContainingObjects(context.Background(), a, p, QueryOptions{Paradigm: paradigm, Accel: AABB})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v point %v: got %v, want %v", paradigm, p, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("%v point %v: got %v, want %v", paradigm, p, got, want)
				}
			}
			if stats == nil {
				t.Fatal("nil stats")
			}
		}
	}
}

func TestContainingObjectsEarlySettle(t *testing.T) {
	// A point at an object's centroid is inside every LOD, so FPR settles
	// it at LOD 0.
	e := testEngine(t)
	a, _ := buildPair(t, e)
	m, err := a.Tileset.Object(0).Comp.Decode(a.MaxLOD())
	if err != nil {
		t.Fatal(err)
	}
	p := m.Centroid()
	if !m.ContainsPoint(p) {
		t.Skip("centroid outside the object (unusual shape)")
	}
	got, stats, err := e.ContainingObjects(context.Background(), a, p, QueryOptions{Paradigm: FPR})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("got %v", got)
	}
	var below int64
	for l := 0; l < len(stats.PairsPruned)-1; l++ {
		below += stats.PairsPruned[l]
	}
	if below == 0 {
		// The heavily pruned low LODs may genuinely not contain the
		// centroid; only the correctness above is guaranteed.
		t.Skip("containment settled only at the top LOD for this shape")
	}
}

func TestRangeQueryMatchesBrute(t *testing.T) {
	e := testEngine(t)
	a, _ := buildPair(t, e)
	meshes := decodeAll(t, a)
	boxTris := func(b geom.Box3) []geom.Triangle { return boxTriangles(b) }

	rng := rand.New(rand.NewSource(12))
	space := a.Tree().Bounds()
	for trial := 0; trial < 25; trial++ {
		lo := geom.V(
			space.Min.X+rng.Float64()*space.Size().X,
			space.Min.Y+rng.Float64()*space.Size().Y,
			space.Min.Z+rng.Float64()*space.Size().Z,
		)
		sz := 2 + rng.Float64()*25
		box := geom.Box3{Min: lo, Max: lo.Add(geom.V(sz, sz, sz))}

		var want []int64
		for j, m := range meshes {
			if !m.Bounds().Intersects(box) {
				continue
			}
			hit := false
			for _, tri := range m.Triangles() {
				if box.ContainsPoint(tri.A) {
					hit = true
					break
				}
				for _, bt := range boxTris(box) {
					if geom.TriTriIntersect(tri, bt) {
						hit = true
						break
					}
				}
				if hit {
					break
				}
			}
			if !hit && m.ContainsPoint(box.Center()) {
				hit = true // object swallows the box
			}
			if hit {
				want = append(want, int64(j))
			}
		}

		for _, paradigm := range []Paradigm{FR, FPR} {
			got, _, err := e.RangeQuery(context.Background(), a, box, QueryOptions{Paradigm: paradigm})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v box %v: got %v, want %v", paradigm, box, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("%v box %v: got %v, want %v", paradigm, box, got, want)
				}
			}
		}
	}
}

func TestRangeQuerySwallowedBox(t *testing.T) {
	// A tiny box fully inside an object: no surface contact, but the
	// object must be reported.
	e := testEngine(t)
	big := mesh.Icosphere(10, 2)
	d, err := e.BuildDataset("big", []*mesh.Mesh{big}, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	box := geom.Box3{Min: geom.V(-0.5, -0.5, -0.5), Max: geom.V(0.5, 0.5, 0.5)}
	got, _, err := e.RangeQuery(context.Background(), d, box, QueryOptions{Paradigm: FPR})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("swallowed box: got %v", got)
	}

	// And a box fully containing the object.
	huge := geom.Box3{Min: geom.V(-20, -20, -20), Max: geom.V(20, 20, 20)}
	got2, _, err := e.RangeQuery(context.Background(), d, huge, QueryOptions{Paradigm: FPR})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 {
		t.Fatalf("containing box: got %v", got2)
	}
}
