package core

import (
	"fmt"
	"sync"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/index/rtree"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/ppvp"
	"repro/internal/storage"
)

// DatasetOptions configures ingestion of a mesh collection.
type DatasetOptions struct {
	// Compression configures the PPVP encoder.
	Compression ppvp.Options
	// Cuboids is the number of space-partition cuboids (paper: 1,000 for
	// the full tissue; default 64 here). Objects in one cuboid are stored
	// and batch-processed together for cache locality.
	Cuboids int
	// PartitionTargetFaces enables skeleton partitioning at ingest: objects
	// with more than this many faces are split into sub-objects of roughly
	// this size, and the sub-object boxes are indexed in a second global
	// R-tree used by the Partition accelerators. Zero uses the default
	// (256); negative disables partitioning.
	PartitionTargetFaces int
}

func (o *DatasetOptions) setDefaults() {
	if o.Compression.Rounds == 0 {
		o.Compression = ppvp.DefaultOptions()
	}
	if o.Cuboids <= 0 {
		o.Cuboids = 64
	}
	if o.PartitionTargetFaces == 0 {
		o.PartitionTargetFaces = 256
	}
}

// Dataset is an ingested, compressed, indexed object collection.
type Dataset struct {
	Name string
	// seq is the engine-unique dataset number, used to namespace decode
	// cache keys.
	seq int64

	Tileset *storage.Tileset
	// tree indexes whole-object MBBs.
	tree *rtree.Tree
	// partTree indexes sub-object boxes for partitioned objects (and the
	// whole MBB for unpartitioned ones); nil when partitioning is off.
	partTree *rtree.Tree
	// skeletons[id] holds the skeleton points of partitioned objects
	// (nil entry = object too simple to partition).
	skeletons [][]geom.Vec3
	// partitionTargetFaces records the ingest-time partition granularity
	// (0 when partitioning is disabled), persisted by SaveDataset.
	partitionTargetFaces int

	maxLOD int
	// CompressStats aggregates encoder statistics over all objects.
	CompressStats ppvp.Stats
}

// MaxLOD returns the highest LOD shared by all objects of the dataset.
func (d *Dataset) MaxLOD() int { return d.maxLOD }

// Seq returns the engine-unique dataset sequence number — the namespace of
// the dataset's decode-cache and quarantine keys.
func (d *Dataset) Seq() int64 { return d.seq }

// Len returns the object count.
func (d *Dataset) Len() int { return len(d.Tileset.Objects) }

// Tree exposes the whole-object R-tree.
func (d *Dataset) Tree() *rtree.Tree { return d.tree }

// CompressedBytes returns the total compressed footprint.
func (d *Dataset) CompressedBytes() int64 { return d.Tileset.CompressedBytes() }

// BuildDataset compresses, stores, partitions, and indexes a collection of
// meshes. Meshes are compressed in parallel (the paper's 48-thread ingest).
func (e *Engine) BuildDataset(name string, meshes []*mesh.Mesh, opts DatasetOptions) (*Dataset, error) {
	opts.setDefaults()
	if len(meshes) == 0 {
		return nil, fmt.Errorf("core: dataset %q has no objects", name)
	}

	comps := make([]*ppvp.Compressed, len(meshes))
	stats := make([]ppvp.Stats, len(meshes))
	errs := make([]error, len(meshes))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.opts.Workers)
	for i := range meshes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			comps[i], stats[i], errs[i] = ppvp.Compress(meshes[i], opts.Compression)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: compressing object %d of %q: %w", i, name, err)
		}
	}

	space := geom.EmptyBox()
	for _, c := range comps {
		space = space.Union(c.MBB())
	}
	grid := storage.NewGrid(space, opts.Cuboids)
	ts := storage.NewTileset(grid, comps)

	d := &Dataset{Name: name, seq: e.nextSeq.Add(1), Tileset: ts, maxLOD: comps[0].MaxLOD()}
	if opts.PartitionTargetFaces > 0 {
		d.partitionTargetFaces = opts.PartitionTargetFaces
	}
	for i, c := range comps {
		if c.MaxLOD() < d.maxLOD {
			d.maxLOD = c.MaxLOD()
		}
		d.CompressStats.VerticesExamined += stats[i].VerticesExamined
		d.CompressStats.VerticesProtruding += stats[i].VerticesProtruding
		d.CompressStats.VerticesRemoved += stats[i].VerticesRemoved
	}

	// Whole-object index.
	entries := make([]rtree.Entry, len(comps))
	for i, c := range comps {
		entries[i] = rtree.Entry{Box: c.MBB(), ID: int64(i)}
	}
	d.tree = rtree.BulkLoad(entries)

	// Skeleton partitioning + sub-object index.
	if opts.PartitionTargetFaces > 0 {
		d.skeletons = make([][]geom.Vec3, len(meshes))
		var partEntries []rtree.Entry
		var mu sync.Mutex
		var pwg sync.WaitGroup
		perr := make([]error, len(meshes))
		for i := range meshes {
			pwg.Add(1)
			go func(i int) {
				defer pwg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				k := partition.GroupCount(meshes[i].NumFaces(), opts.PartitionTargetFaces)
				if k <= 1 {
					mu.Lock()
					partEntries = append(partEntries, rtree.Entry{Box: comps[i].MBB(), ID: int64(i)})
					mu.Unlock()
					return
				}
				skel := partition.Skeleton(meshes[i], k)
				groups := partition.AssignFaces(meshes[i], skel)
				mu.Lock()
				d.skeletons[i] = skel
				for _, g := range groups {
					partEntries = append(partEntries, rtree.Entry{Box: g.Box, ID: int64(i)})
				}
				mu.Unlock()
			}(i)
		}
		pwg.Wait()
		for _, err := range perr {
			if err != nil {
				return nil, err
			}
		}
		d.partTree = rtree.BulkLoad(partEntries)
	}
	return d, nil
}

// AssembleDataset builds a queryable dataset directly from an existing
// tileset: object IDs are preserved verbatim (nil holes allowed, as after a
// salvage load), nothing is re-encoded, and only the whole-object R-tree is
// rebuilt. Skeleton partitioning is not recomputed — the Partition
// accelerators transparently fall back to the whole-object tree — keeping
// assembly cheap enough for the sharded serving tier, which assembles one
// sub-tileset per shard (and per-query loan sets) out of blobs that already
// exist in memory.
func (e *Engine) AssembleDataset(name string, ts *storage.Tileset) (*Dataset, error) {
	d := &Dataset{Name: name, seq: e.nextSeq.Add(1), Tileset: ts, maxLOD: -1}
	var entries []rtree.Entry
	for _, o := range ts.Objects {
		if o == nil {
			continue
		}
		if d.maxLOD < 0 || o.Comp.MaxLOD() < d.maxLOD {
			d.maxLOD = o.Comp.MaxLOD()
		}
		entries = append(entries, rtree.Entry{Box: o.MBB(), ID: o.ID})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("core: dataset %q has no objects", name)
	}
	d.tree = rtree.BulkLoad(entries)
	return d, nil
}

// filterTree returns the R-tree the filtering step should use for the given
// accelerator: the sub-object tree for partition-based refinement when it
// exists, otherwise the whole-object tree.
func (d *Dataset) filterTree(a Accel) *rtree.Tree {
	if a.UsesPartition() && d.partTree != nil {
		return d.partTree
	}
	return d.tree
}

// BuildNucleiDataset is a convenience ingest of synthetic nuclei.
func (e *Engine) BuildNucleiDataset(name string, gen datagen.NucleiOptions, opts DatasetOptions) (*Dataset, error) {
	return e.BuildDataset(name, datagen.Nuclei(gen), opts)
}

// BuildVesselDataset is a convenience ingest of synthetic vessels.
func (e *Engine) BuildVesselDataset(name string, gen datagen.VesselOptions, opts DatasetOptions) (*Dataset, error) {
	return e.BuildDataset(name, datagen.Vessels(gen), opts)
}
