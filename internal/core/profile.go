package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/storage"
)

// QueryKind names one of the three supported join predicates.
type QueryKind int

const (
	IntersectKind QueryKind = iota
	WithinKind
	NNKind
)

func (k QueryKind) String() string {
	switch k {
	case IntersectKind:
		return "intersect"
	case WithinKind:
		return "within"
	default:
		return "nn"
	}
}

// DefaultPruneThreshold is the paper's §4.4 criterion with r = 2: refining
// at a LOD pays off when more than 1/r² = 25 % of the evaluated pairs are
// settled there.
const DefaultPruneThreshold = 0.25

// SampleCuboid returns a shallow view of the dataset restricted to its most
// populated cuboid — the paper's §6.5 profiling sample. The view shares the
// indexes and objects of the original, so queries against it behave as if
// only those targets were asked about.
func (d *Dataset) SampleCuboid() *Dataset {
	best, bestN := -1, -1
	for c, objs := range d.Tileset.Tiles {
		if len(objs) > bestN || (len(objs) == bestN && c < best) {
			best, bestN = c, len(objs)
		}
	}
	if best < 0 {
		return d
	}
	view := *d
	ts := *d.Tileset
	ts.Tiles = map[int][]*storage.Object{best: d.Tileset.Tiles[best]}
	view.Tileset = &ts
	return &view
}

// ProfileLODs runs the given join on a single-cuboid sample of the target
// with refinement at every LOD, then returns the LOD schedule the §4.4
// rule selects: every LOD whose pruned fraction exceeds threshold, plus the
// highest LOD. dist is only used for WithinKind. The sample's statistics
// are returned for inspection (Fig. 12).
func (e *Engine) ProfileLODs(ctx context.Context, target, source *Dataset, kind QueryKind, dist float64, q QueryOptions, threshold float64) ([]int, *Stats, error) {
	if threshold <= 0 {
		threshold = DefaultPruneThreshold
	}
	sample := target.SampleCuboid()
	pq := q
	pq.Paradigm = FPR
	pq.LODs = nil // visit every LOD

	var (
		stats *Stats
		err   error
	)
	switch kind {
	case IntersectKind:
		_, stats, err = e.IntersectJoin(ctx, sample, source, pq)
	case WithinKind:
		_, stats, err = e.WithinJoin(ctx, sample, source, dist, pq)
	case NNKind:
		_, stats, err = e.NNJoin(ctx, sample, source, pq)
	default:
		return nil, nil, fmt.Errorf("core: unknown query kind %d", kind)
	}
	if err != nil {
		return nil, nil, err
	}

	maxLOD := minInt(target.maxLOD, source.maxLOD)
	var lods []int
	for l := 0; l < maxLOD; l++ {
		if stats.PrunedFraction(l) >= threshold {
			lods = append(lods, l)
		}
	}
	lods = append(lods, maxLOD)
	sort.Ints(lods)
	return lods, stats, nil
}
