package core

import (
	"context"
	"fmt"

	"repro/internal/storage"
)

// QueryKind names one of the three supported join predicates.
type QueryKind int

const (
	IntersectKind QueryKind = iota
	WithinKind
	NNKind
)

func (k QueryKind) String() string {
	switch k {
	case IntersectKind:
		return "intersect"
	case WithinKind:
		return "within"
	default:
		return "nn"
	}
}

// DefaultPruneThreshold is the paper's §4.4 criterion with r = 2: refining
// at a LOD pays off when more than 1/r² = 25 % of the evaluated pairs are
// settled there.
const DefaultPruneThreshold = 0.25

// SampleCuboid returns a shallow view of the dataset restricted to its most
// populated cuboid — the paper's §6.5 profiling sample. The view shares the
// indexes and objects of the original, so queries against it behave as if
// only those targets were asked about.
//
// Aliasing contract: the view is shallow on purpose. It shares the original
// Tileset's object map, compressed payloads, R-trees, and skeletons — only
// the Tiles map is replaced with the single-cuboid restriction — and it
// keeps the dataset's seq, so profiling decodes hit the same engine cache
// entries as live queries (that sharing is what makes the profile cheap and
// representative). Both views must be treated as read-only; this is safe
// concurrently because queries never mutate dataset state, and per-query
// statistics stay exact because every query attributes cache activity
// through its own private counter sink (collector.cacheCtrs), never by
// diffing shared counters. obs_test.go pins that profiling alongside live
// queries does not perturb their counters.
func (d *Dataset) SampleCuboid() *Dataset {
	best, bestN := -1, -1
	for c, objs := range d.Tileset.Tiles {
		if len(objs) > bestN || (len(objs) == bestN && c < best) {
			best, bestN = c, len(objs)
		}
	}
	if best < 0 {
		return d
	}
	view := *d
	ts := *d.Tileset
	ts.Tiles = map[int][]*storage.Object{best: d.Tileset.Tiles[best]}
	view.Tileset = &ts
	return &view
}

// ProfileLODs runs the given join on a single-cuboid sample of the target
// with refinement at every LOD, then returns the LOD schedule the §4.4
// rule selects: every LOD whose pruned fraction exceeds threshold, plus the
// highest LOD. dist is only used for WithinKind. The sample's statistics
// are returned for inspection (Fig. 12).
func (e *Engine) ProfileLODs(ctx context.Context, target, source *Dataset, kind QueryKind, dist float64, q QueryOptions, threshold float64) ([]int, *Stats, error) {
	if threshold <= 0 {
		threshold = DefaultPruneThreshold
	}
	sample := target.SampleCuboid()
	pq := q
	pq.Paradigm = FPR
	pq.LODs = nil // visit every LOD
	// Profile under the static schedule: margin routing sends reject-leaning
	// pairs straight to the top LOD, which would zero out the intermediate
	// LODs' evaluation counts and bias the measured pruned fractions — the
	// profile must measure the paper's quantity.
	pq.Sched = SchedStatic

	var (
		stats *Stats
		err   error
	)
	switch kind {
	case IntersectKind:
		_, stats, err = e.IntersectJoin(ctx, sample, source, pq)
	case WithinKind:
		_, stats, err = e.WithinJoin(ctx, sample, source, dist, pq)
	case NNKind:
		_, stats, err = e.NNJoin(ctx, sample, source, pq)
	default:
		return nil, nil, fmt.Errorf("core: unknown query kind %d", kind)
	}
	if err != nil {
		return nil, nil, err
	}

	return selectLODs(stats, minInt(target.maxLOD, source.maxLOD), threshold), stats, nil
}

// selectLODs applies the §4.4 rule to a profiled run's statistics: keep
// every LOD below maxLOD whose pruned fraction strictly exceeds threshold
// (the rule is "more than 1/r² of the pairs settle", so a fraction exactly
// at the threshold does not qualify), plus the highest LOD, ascending.
// LODs that evaluated zero pairs are skipped explicitly: PrunedFraction
// reports 0 for them, and an unevaluated LOD carries no evidence that
// refining there pays off.
func selectLODs(stats *Stats, maxLOD int, threshold float64) []int {
	var lods []int
	for l := 0; l < maxLOD; l++ {
		if l >= len(stats.PairsEvaluated) || stats.PairsEvaluated[l] == 0 {
			continue
		}
		if stats.PrunedFraction(l) > threshold {
			lods = append(lods, l)
		}
	}
	return append(lods, maxLOD)
}
