package core

import (
	"context"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/index/rtree"
)

// ContainingObjects returns the IDs of every object of d whose interior
// contains the point p.
//
// This is the point-containment primitive the paper's §4.1 notes can also
// be accelerated by the Filter-Progressive-Refine paradigm: because every
// PPVP LOD is a subset of the next, a point found inside a *low* LOD is
// certainly inside the object, so candidates settle positively without
// decoding further. Only points outside every intermediate LOD must be
// checked at full resolution.
func (e *Engine) ContainingObjects(ctx context.Context, d *Dataset, p geom.Vec3, q QueryOptions) ([]int64, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	col := newCollector(d.maxLOD, q, start)
	ec := newEvalCtx(e, q, col)
	lods := q.lodSchedule(d.maxLOD, q.Paradigm)

	// Filtering: only objects whose MBB covers p can contain it.
	var cands []int64
	col.filterPhase(func() {
		d.tree.SearchIntersect(geom.BoxOf(p), func(ent rtree.Entry) bool {
			cands = append(cands, ent.ID)
			return true
		})
	})
	col.candidates.Add(int64(len(cands)))
	sortIDs(cands)

	var out []int64
	remaining := cands
	for li, lod := range lods {
		if len(remaining) == 0 {
			break
		}
		last := li == len(lods)-1
		next := remaining[:0]
		for _, id := range remaining {
			// Unlike the join paths, this loop does not run under
			// runPerTarget, so it must observe the query deadline itself.
			if err := ctx.Err(); err != nil {
				return nil, ec.finish(start), err
			}
			o, err := ec.decode(d, id, lod)
			if err != nil {
				// Single-threaded path: worker slot 0 owns the degrade
				// buffers.
				skip, aerr := ec.degradeErr(0, d, id, err)
				if !skip {
					return nil, ec.finish(start), aerr
				}
				ec.deg.uncertainID(id)
				continue
			}
			col.evalPair(lod)
			inside := ec.pointInside(o, p)
			if inside {
				// Subset property: inside a low LOD ⇒ inside the object.
				col.settlePair(lod)
				out = append(out, id)
				col.results.Add(1)
				continue
			}
			if last {
				col.settlePair(lod)
				continue
			}
			next = append(next, id)
		}
		remaining = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, ec.finish(start), nil
}

// pointInside tests point containment against a decoded object, with the
// AABB accelerator when selected.
func (c *evalCtx) pointInside(o obj, p geom.Vec3) bool {
	defer c.col.geomDone(o.lod, time.Now())
	if c.opts.Accel == AABB {
		return c.tree(o).ContainsPoint(p)
	}
	if !o.mesh.Bounds().ContainsPoint(p) {
		return false
	}
	return geom.PointInTriangles(p, o.mesh.TrianglesCached())
}

// RangeQuery returns the IDs of every object of d whose geometry intersects
// the axis-aligned query box (surface touching or containment in either
// direction counts).
//
// Progressive refinement applies through the intersection property: a
// low-LOD face intersecting the box settles the candidate immediately.
// Candidates whose surface never meets the box are resolved at the highest
// LOD: the object may contain the box, or — when the object's MBB lies
// inside the box — be wholly contained by it.
func (e *Engine) RangeQuery(ctx context.Context, d *Dataset, box geom.Box3, q QueryOptions) ([]int64, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	col := newCollector(d.maxLOD, q, start)
	ec := newEvalCtx(e, q, col)
	lods := q.lodSchedule(d.maxLOD, q.Paradigm)

	var cands []int64
	var definite []int64
	col.filterPhase(func() {
		d.tree.SearchIntersect(box, func(ent rtree.Entry) bool {
			if box.Contains(ent.Box) {
				// The whole MBB (hence the object) is inside the box.
				definite = append(definite, ent.ID)
			} else {
				cands = append(cands, ent.ID)
			}
			return true
		})
	})
	col.candidates.Add(int64(len(cands) + len(definite)))
	out := append([]int64(nil), definite...)
	col.results.Add(int64(len(definite)))
	sortIDs(cands)

	boxTris := boxTriangles(box)
	remaining := cands
	for li, lod := range lods {
		if len(remaining) == 0 {
			break
		}
		last := li == len(lods)-1
		next := remaining[:0]
		for _, id := range remaining {
			// Not under runPerTarget: observe the query deadline here.
			if err := ctx.Err(); err != nil {
				return nil, ec.finish(start), err
			}
			o, err := ec.decode(d, id, lod)
			if err != nil {
				skip, aerr := ec.degradeErr(0, d, id, err)
				if !skip {
					return nil, ec.finish(start), aerr
				}
				ec.deg.uncertainID(id)
				continue
			}
			col.evalPair(lod)
			hit := func() bool {
				defer col.geomDone(lod, time.Now())
				for i := range o.mesh.Faces {
					tri := o.mesh.Triangle(i)
					if !tri.Bounds().Intersects(box) {
						continue
					}
					for _, bt := range boxTris {
						if geom.TriTriIntersect(tri, bt) {
							return true
						}
					}
					// A face whose bounds intersect the box without touching
					// its surface can still be inside the box entirely.
					if box.ContainsPoint(tri.A) {
						return true
					}
				}
				return false
			}()
			if hit {
				col.settlePair(lod)
				out = append(out, id)
				col.results.Add(1)
				continue
			}
			if last {
				// No surface contact at full resolution: the object might
				// still contain the whole box.
				if ec.pointInside(o, box.Center()) {
					out = append(out, id)
					col.results.Add(1)
				}
				col.settlePair(lod)
				continue
			}
			next = append(next, id)
		}
		remaining = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, ec.finish(start), nil
}

// boxTriangles triangulates the six faces of a box (12 triangles).
func boxTriangles(b geom.Box3) []geom.Triangle {
	c := func(i int) geom.Vec3 { return b.Corner(i) }
	quads := [][4]int{
		{0, 2, 3, 1}, // z = min
		{4, 5, 7, 6}, // z = max
		{0, 1, 5, 4}, // y = min
		{2, 6, 7, 3}, // y = max
		{0, 4, 6, 2}, // x = min
		{1, 3, 7, 5}, // x = max
	}
	tris := make([]geom.Triangle, 0, 12)
	for _, q := range quads {
		tris = append(tris,
			geom.Tri(c(q[0]), c(q[1]), c(q[2])),
			geom.Tri(c(q[0]), c(q[2]), c(q[3])),
		)
	}
	return tris
}
