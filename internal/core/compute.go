package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/index/aabbtree"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/quarantine"
	"repro/internal/storage"
)

// evalCtx is the per-join geometry computer: it decodes objects through the
// engine cache, lazily builds the accelerator structures (AABB-trees,
// partition groups) for decoded representations, and dispatches the
// pairwise evaluations to the selected accelerator.
type evalCtx struct {
	e    *Engine
	opts QueryOptions
	col  *collector

	// mu guards only the slot maps below; tree and group construction runs
	// outside it, single-flighted per key by the slot's sync.Once so two
	// workers never duplicate a build.
	mu     sync.Mutex
	trees  map[ctxKey]*treeSlot
	groups map[ctxKey]*groupSlot

	// scratch holds per-worker filter buffers, indexed by the worker slot
	// runPerTarget hands to each callback; no locking needed.
	scratch []filterScratch

	// deg collects per-object failures when the query runs under the
	// Degrade error policy; nil under FailFast.
	deg *degrader
}

type ctxKey struct {
	seq int64
	id  int64
	lod int
}

type treeSlot struct {
	once sync.Once
	t    *aabbtree.Tree
}

type groupSlot struct {
	once sync.Once
	g    []triGroup
}

// filterScratch is one worker's reusable filter-step state: the dedup set
// and the candidate ID buffer that would otherwise be allocated per target
// object.
type filterScratch struct {
	seen map[int64]struct{}
	ids  []int64
	def  []int64
	// dir collects the candidates the margin scheduler routes straight to
	// the top LOD (planDirect in sched.go); always empty under SchedStatic.
	dir []int64
	// maxd is the KNN refinement's MAXDIST sort buffer (see kth in
	// KNNJoin); reused across targets so the k-th-distance computation
	// doesn't allocate per call.
	maxd []float64
}

// reset clears the scratch for the next target and returns it.
func (f *filterScratch) reset() *filterScratch {
	if f.seen == nil {
		f.seen = make(map[int64]struct{}, 32)
	} else {
		clear(f.seen)
	}
	f.ids = f.ids[:0]
	f.def = f.def[:0]
	f.dir = f.dir[:0]
	return f
}

// triGroup is one sub-object at one LOD: the decoded faces assigned to a
// skeleton point, with their box.
type triGroup struct {
	tris []geom.Triangle
	box  geom.Box3
}

func newEvalCtx(e *Engine, opts QueryOptions, col *collector) *evalCtx {
	c := &evalCtx{
		e:       e,
		opts:    opts,
		col:     col,
		trees:   make(map[ctxKey]*treeSlot),
		groups:  make(map[ctxKey]*groupSlot),
		scratch: make([]filterScratch, opts.workers(e)),
	}
	if opts.OnError == Degrade {
		c.deg = newDegrader(opts.workers(e), opts.ErrorBudget)
	}
	return c
}

// obj identifies one object of one dataset at one LOD, with its decoded
// mesh attached.
type obj struct {
	ds   *Dataset
	id   int64
	lod  int
	mesh *mesh.Mesh
}

func (c *evalCtx) key(o obj) ctxKey { return ctxKey{seq: o.ds.seq, id: o.id, lod: o.lod} }

// decode fetches the mesh of (ds, id) at lod through the engine cache,
// accounting decode time and cache hits. Misses resume the object's
// retained progressive decoder when one sits at a lower LOD (the cache's
// warm-start protocol), so an FPR candidate walking the LOD ladder replays
// each decode round at most once.
//
// Decodes are gated by the engine's quarantine registry: an object whose
// breaker is open is refused with ErrQuarantined, and every outcome
// (success, error, panic) is reported back so repeat offenders trip open.
// Under the Degrade error policy, transient failures are retried with
// backoff and decode panics are converted to per-object errors; under
// FailFast both propagate unchanged, preserving strict fault semantics.
func (c *evalCtx) decode(ds *Dataset, id int64, lod int) (obj, error) {
	sto := ds.Tileset.Object(id)
	if sto == nil {
		// A hole left by salvage loading; the quarantine registry normally
		// has it tripped already, but refuse regardless.
		return obj{}, fmt.Errorf("core: object %d of %q is not loaded: %w", id, ds.Name, ErrQuarantined)
	}
	qk := quarantine.Key{Dataset: ds.seq, Object: id}
	if !c.e.quar.Allow(qk) {
		c.col.quarantineSkips.Add(1)
		return obj{}, fmt.Errorf("core: object %d of %q skipped: %w", id, ds.Name, ErrQuarantined)
	}
	o, err := c.decodeGuarded(ds, sto, id, lod, qk)
	if err != nil {
		return obj{}, fmt.Errorf("core: decoding object %d of %q at LOD %d: %w", id, ds.Name, lod, err)
	}
	return o, nil
}

// decodeGuarded runs the decode attempts for one admitted object and settles
// its breaker verdict. Exactly one of Success/Failure/Release reaches the
// registry: success and exhausted retries settle the breaker; a context
// expiry mid-attempt charges nothing but frees any half-open probe; a panic
// under FailFast records the failure before resuming the unwind (the cache
// has already cleaned its own state by re-panicking).
func (c *evalCtx) decodeGuarded(ds *Dataset, sto *storage.Object, id int64, lod int, qk quarantine.Key) (o obj, err error) {
	settled := false
	defer func() {
		if settled {
			return
		}
		if r := recover(); r != nil {
			c.e.quar.Failure(qk, firstLine(fmt.Sprint(r)))
			panic(r)
		}
		c.e.quar.Release(qk)
	}()

	attempts := 1
	if c.deg != nil {
		attempts += c.e.opts.DecodeRetries
	}
	for try := 0; ; try++ {
		var m *mesh.Mesh
		m, err = c.decodeOnce(sto, ds.seq, id, lod)
		if err == nil {
			settled = true
			c.e.quar.Success(qk)
			return obj{ds: ds, id: id, lod: lod, mesh: m}, nil
		}
		if isCtxErr(err) {
			return obj{}, err
		}
		if try+1 >= attempts {
			break
		}
		c.col.decodeRetries.Add(1)
		if b := c.e.opts.DecodeRetryBackoff; b > 0 {
			time.Sleep(b << uint(try))
		}
	}
	settled = true
	c.e.quar.Failure(qk, firstLine(err.Error()))
	return obj{}, err
}

// decodeOnce is a single decode attempt through the engine cache. Under
// Degrade, a panic out of the decoder (or the cache's re-panic after its own
// cleanup) is converted into an error so the attempt can be retried or the
// object skipped; under FailFast panics propagate to callRecovered.
func (c *evalCtx) decodeOnce(sto *storage.Object, seq, id int64, lod int) (m *mesh.Mesh, err error) {
	if c.deg != nil {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("decode panic: %v", r)
			}
		}()
	}
	key := cache.Key{Object: seq<<40 | id, LOD: lod}
	missed := false
	t0 := time.Now()
	m, err = c.e.cache.GetOrDecodeProgressiveCounted(key, sto.Comp, func() error {
		missed = true
		c.col.decodes.Add(1)
		return faultinject.Fire(faultinject.PointCoreDecode)
	}, &c.col.cacheCtrs)
	if err != nil {
		return nil, err
	}
	if missed {
		c.col.decodeMiss(lod, t0)
	} else {
		c.col.cacheHit(lod)
	}
	return m, nil
}

// finish snapshots the query's statistics, folding in the degrade
// bookkeeping. Both the success path and every abort path (context expiry,
// exhausted error budget) go through it, so even a failed query hands back
// its phase times and exact cache attribution.
func (c *evalCtx) finish(start time.Time) *Stats {
	st := c.col.snapshot(time.Since(start))
	c.deg.fill(st)
	return st
}

// tree returns (building if needed) the AABB-tree of an object at a LOD.
// Builds are single-flighted per key: concurrent requesters block on the
// same sync.Once instead of racing to build duplicates.
func (c *evalCtx) tree(o obj) *aabbtree.Tree {
	k := c.key(o)
	c.mu.Lock()
	s, ok := c.trees[k]
	if !ok {
		s = &treeSlot{}
		c.trees[k] = s
	}
	c.mu.Unlock()
	s.once.Do(func() { s.t = aabbtree.BuildSoA(o.mesh.SoA()) })
	return s.t
}

// groupsOf returns the partition groups of an object at a LOD: decoded
// faces assigned to the object's ingest-time skeleton points. Objects
// without a skeleton form a single group. Like tree, builds are
// single-flighted per key.
func (c *evalCtx) groupsOf(o obj) []triGroup {
	k := c.key(o)
	c.mu.Lock()
	s, ok := c.groups[k]
	if !ok {
		s = &groupSlot{}
		c.groups[k] = s
	}
	c.mu.Unlock()
	s.once.Do(func() { s.g = c.buildGroups(o) })
	return s.g
}

func (c *evalCtx) buildGroups(o obj) []triGroup {
	var skel []geom.Vec3
	if o.ds.skeletons != nil && o.id >= 0 && o.id < int64(len(o.ds.skeletons)) {
		skel = o.ds.skeletons[o.id]
	}
	if len(skel) <= 1 {
		return []triGroup{{tris: o.mesh.TrianglesCached(), box: o.mesh.Bounds()}}
	}
	pgs := partition.AssignFaces(o.mesh, skel)
	out := make([]triGroup, 0, len(pgs))
	for _, pg := range pgs {
		out = append(out, triGroup{tris: partition.GroupTriangles(o.mesh, pg), box: pg.Box})
	}
	return out
}

// intersects reports whether the two decoded objects' surfaces intersect
// (shared faces touching counts), using the configured accelerator.
func (c *evalCtx) intersects(a, b obj) bool {
	defer c.col.geomDone(a.lod, time.Now())

	switch c.opts.Accel {
	case AABB:
		return c.tree(a).IntersectsTree(c.tree(b))
	case GPU:
		return c.e.dev.Intersects(a.mesh.TrianglesCached(), b.mesh.TrianglesCached())
	case Partition, PartitionGPU:
		return c.intersectsPartitioned(a, b)
	default:
		return bruteIntersects(a.mesh.TrianglesCached(), b.mesh.TrianglesCached())
	}
}

func bruteIntersects(ta, tb []geom.Triangle) bool {
	for i := range ta {
		for j := range tb {
			if geom.TriTriIntersect(ta[i], tb[j]) {
				return true
			}
		}
	}
	return false
}

func (c *evalCtx) intersectsPartitioned(a, b obj) bool {
	ga, gb := c.groupsOf(a), c.groupsOf(b)
	for i := range ga {
		for j := range gb {
			if !ga[i].box.Intersects(gb[j].box) {
				continue
			}
			if c.opts.Accel == PartitionGPU {
				if c.e.dev.Intersects(ga[i].tris, gb[j].tris) {
					return true
				}
			} else if bruteIntersects(ga[i].tris, gb[j].tris) {
				return true
			}
		}
	}
	return false
}

// minDist returns the distance between the two decoded objects' surfaces
// when it is ≤ upper; when the true distance exceeds upper the returned
// value is still ≥ the true distance is NOT guaranteed — callers must treat
// any result > upper as "greater than upper" only. Pass math.Inf(1) for an
// exact distance.
func (c *evalCtx) minDist(a, b obj, upper float64) float64 {
	defer c.col.geomDone(a.lod, time.Now())

	switch c.opts.Accel {
	case AABB:
		// Dual-tree descent, seeded with the upper bound so subtree pairs
		// provably out of range are pruned without touching triangles.
		return c.tree(a).DistToTreeBounded(c.tree(b), upper*nextAfterFactor)
	case GPU:
		up2 := math.Inf(1)
		if !math.IsInf(upper, 1) {
			up2 = upper * upper * nextAfterFactor
		}
		d2 := c.e.dev.MinDist2Bounded(a.mesh.TrianglesCached(), b.mesh.TrianglesCached(), up2)
		return math.Sqrt(d2)
	case Partition, PartitionGPU:
		return c.minDistPartitioned(a, b, upper)
	default:
		return bruteMinDist(a.mesh.TrianglesCached(), b.mesh.TrianglesCached())
	}
}

// nextAfterFactor slightly inflates squared upper bounds so that a true
// distance exactly equal to the bound is still found.
const nextAfterFactor = 1 + 1e-12

func bruteMinDist(ta, tb []geom.Triangle) float64 {
	best := math.Inf(1)
	for i := range ta {
		for j := range tb {
			if d := geom.TriTriDist2(ta[i], tb[j]); d < best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

// groupPair is one (sub-object group, sub-object group) pair queued for
// minDistPartitioned's branch-and-bound, ordered by box distance.
type groupPair struct {
	i, j int
	d2   float64
}

// groupPairPool recycles minDistPartitioned's pair buffers: the function
// runs once per candidate pair on the refine hot path and would otherwise
// allocate a len(ga)*len(gb) slice each time (flagged by hotalloc).
var groupPairPool = sync.Pool{New: func() any { return new([]groupPair) }}

// minDistPartitioned runs branch-and-bound over sub-object group pairs
// ordered by box distance, evaluating pairs until no remaining pair's box
// can beat the best distance found.
func (c *evalCtx) minDistPartitioned(a, b obj, upper float64) float64 {
	ga, gb := c.groupsOf(a), c.groupsOf(b)
	buf := groupPairPool.Get().(*[]groupPair)
	defer func() {
		groupPairPool.Put(buf)
	}()
	pairs := (*buf)[:0]
	for i := range ga {
		for j := range gb {
			pairs = append(pairs, groupPair{i, j, ga[i].box.MinDist2(gb[j].box)})
		}
	}
	*buf = pairs
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].d2 < pairs[y].d2 })

	best2 := math.Inf(1)
	if !math.IsInf(upper, 1) {
		best2 = upper * upper * nextAfterFactor
	}
	found := math.Inf(1)
	for _, p := range pairs {
		if p.d2 >= best2 || p.d2 >= found {
			break
		}
		var d2 float64
		if c.opts.Accel == PartitionGPU {
			d2 = c.e.dev.MinDist2Bounded(ga[p.i].tris, gb[p.j].tris, math.Min(best2, found))
		} else {
			d2 = bruteMinDist2(ga[p.i].tris, gb[p.j].tris)
		}
		if d2 < found {
			found = d2
		}
	}
	return math.Sqrt(found)
}

func bruteMinDist2(ta, tb []geom.Triangle) float64 {
	best := math.Inf(1)
	for i := range ta {
		for j := range tb {
			if d := geom.TriTriDist2(ta[i], tb[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// containsObject reports whether outer fully contains inner, given that
// their surfaces do not intersect: one vertex inside decides (Alg. 1,
// steps 8–12 of the paper).
func (c *evalCtx) containsObject(outer, inner obj) bool {
	if !outer.ds.Tileset.Object(outer.id).MBB().Contains(inner.ds.Tileset.Object(inner.id).MBB()) {
		return false
	}
	if len(inner.mesh.Vertices) == 0 {
		return false
	}
	defer c.col.geomDone(outer.lod, time.Now())
	p := inner.mesh.Vertices[0]
	if c.opts.Accel == AABB {
		return c.tree(outer).ContainsPoint(p)
	}
	return geom.PointInTriangles(p, outer.mesh.TrianglesCached())
}
