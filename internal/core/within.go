package core

import (
	"context"
	"math"
	"time"

	"repro/internal/storage"
)

// WithinJoin returns, for each object o of target, every object of source
// whose distance to o is ≤ dist. When target and source are the same
// dataset an object never matches itself.
//
// The filtering step (§4.2) uses MINDIST/MAXDIST pruning on the R-tree:
// subtrees provably out of range are skipped and subtrees provably within
// range are accepted without any decoding. Under FPR (Alg. 2) the remaining
// candidates are settled early: if the distance at a low LOD is already
// ≤ dist, the true distance can only be smaller (PPVP property 2), so the
// candidate is reported without decoding higher LODs. A low-LOD distance
// above dist is inconclusive, so unsettled candidates ride up to the
// highest LOD where the decision is exact.
func (e *Engine) WithinJoin(ctx context.Context, target, source *Dataset, dist float64, q QueryOptions) ([]Pair, *Stats, error) {
	if q.usePipeline() {
		return e.pipelinedJoin(ctx, joinWithin, target, source, dist, q)
	}
	start := time.Now()
	col := newCollector(source.maxLOD, q, start)
	ec := newEvalCtx(e, q, col)
	lods := e.schedule(&q, minInt(target.maxLOD, source.maxLOD), WithinKind)
	tree := source.filterTree(q.Accel)
	sink := newResultSink(q.workers(e))

	err := runPerTarget(ctx, target, q.workers(e), func(w int, o *storage.Object) error {
		// Per-worker scratch: sc.def collects whole-subtree acceptances,
		// sc.ids the candidates needing refinement; sc.seen dedups both.
		sc := ec.scratch[w].reset()
		col.filterPhase(func() {
			r := tree.SearchWithin(o.MBB(), dist)
			for _, ent := range r.Definite {
				if target.seq == source.seq && ent.ID == o.ID {
					continue
				}
				if _, dup := sc.seen[ent.ID]; dup {
					continue
				}
				sc.seen[ent.ID] = struct{}{}
				sc.def = append(sc.def, ent.ID)
			}
			for _, ent := range r.Candidates {
				if target.seq == source.seq && ent.ID == o.ID {
					continue
				}
				if _, dup := sc.seen[ent.ID]; dup {
					continue
				}
				sc.seen[ent.ID] = struct{}{}
				sc.ids = append(sc.ids, ent.ID)
			}
		})
		col.candidates.Add(int64(len(sc.def) + len(sc.ids)))

		// Whole-subtree acceptances need no geometry at all.
		sortIDs(sc.def)
		for _, id := range sc.def {
			col.boundsDecided()
			sink.add(w, Pair{Target: o.ID, Source: id})
			col.results.Add(1)
		}

		remaining := sc.ids
		sortIDs(remaining)
		margin := q.marginSched()
		var dir []int64
		if margin {
			// Margin plan: settle bounds-decisive pairs with no decode at
			// all; the rest walk the ladder, with reject-leaning pairs
			// detected mid-ladder from their measured distance and jumped
			// to the top LOD (see sched.go). Routing never changes a
			// verdict, only where it is reached.
			tb := o.MBB()
			dir = sc.dir
			keep := remaining[:0]
			for _, id := range remaining {
				so := source.Tileset.Object(id)
				if so == nil {
					keep = append(keep, id) // let decode surface the error
					continue
				}
				switch planWithin(tb, so.MBB(), dist) {
				case planAccept:
					col.boundsDecided()
					sink.add(w, Pair{Target: o.ID, Source: id})
					col.results.Add(1)
				case planReject:
					col.boundsDecided()
				default:
					keep = append(keep, id)
				}
			}
			remaining = keep
		}
		for li, lod := range lods {
			last := li == len(lods)-1
			if last && len(dir) > 0 {
				// Direct-routed pairs join the walkers for the exact pass.
				remaining = append(remaining, dir...)
				sortIDs(remaining)
				dir = dir[:0]
			}
			if len(remaining) == 0 {
				if len(dir) == 0 {
					break
				}
				continue
			}
			to, err := ec.decode(target, o.ID, lod)
			if err != nil {
				// Degrade: low-LOD acceptances (including the MBB-proven
				// definite set) stay certain; the rest can't be settled.
				skip, aerr := ec.degradeErr(w, target, o.ID, err)
				if !skip {
					return aerr
				}
				ec.deg.uncertainAll(w, o.ID, remaining)
				ec.deg.uncertainAll(w, o.ID, dir)
				return nil
			}
			// Under margin scheduling the search bound is widened so a
			// measured distance up to marginJumpFactor·dist is exact — the
			// jump signal; accepts still require d ≤ dist. Widening only
			// pays when a jump can actually skip a ladder entry (li two or
			// more below the top); at the final two rungs the deeper search
			// would buy nothing.
			canJump := margin && li < len(lods)-2
			upper := dist
			if canJump {
				upper = dist * marginJumpFactor
			}
			next := remaining[:0]
			for _, id := range remaining {
				so, err := ec.decode(source, id, lod)
				if err != nil {
					skip, aerr := ec.degradeErr(w, source, id, err)
					if !skip {
						return aerr
					}
					ec.deg.uncertain(w, Pair{Target: o.ID, Source: id})
					continue
				}
				col.evalPair(lod)
				d := ec.minDist(to, so, upper*(1+1e-12))
				if d <= dist {
					col.settlePair(lod)
					sink.add(w, Pair{Target: o.ID, Source: id})
					col.results.Add(1)
					continue
				}
				if last {
					col.settlePair(lod) // settled by rejection at top LOD
					continue
				}
				if canJump && d > dist*marginJumpFactor {
					// Still over twice the budget after this LOD's shrink:
					// overwhelmingly a reject, which only the top LOD can
					// decide — skip the intermediate ladder entries.
					col.skipLODs(len(lods) - 2 - li)
					dir = append(dir, id)
					sc.dir = dir
					continue
				}
				next = append(next, id)
			}
			remaining = next
		}
		return nil
	}, ec.deg.backstop(e, target))
	if err != nil {
		return nil, ec.finish(start), err
	}
	st := ec.finish(start)
	if q.Paradigm == FPR {
		e.cal.observe(WithinKind, st)
	}
	return sink.sorted(), st, nil
}

// Dist is a convenience exact distance between two stored objects at the
// highest LOD (used by examples and tests).
func (e *Engine) ExactDistance(a *Dataset, aid int64, b *Dataset, bid int64, q QueryOptions) (float64, error) {
	col := newCollector(maxInt(a.maxLOD, b.maxLOD), q, time.Now())
	ec := newEvalCtx(e, q, col)
	ao, err := ec.decode(a, aid, a.maxLOD)
	if err != nil {
		return 0, err
	}
	bo, err := ec.decode(b, bid, b.maxLOD)
	if err != nil {
		return 0, err
	}
	return ec.minDist(ao, bo, math.Inf(1)), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
