package core_test

// The chaos campaign is the acceptance drill for the partial-failure layer:
// with tile corruption, probabilistic ppvp decode errors, and unconditional
// core decode panics armed at once, the process must survive, a FailFast
// join must name a failing object, a Degrade join must return exactly the
// clean run's certain pairs minus the failed objects, and /readyz must
// report degraded (not dead). It lives in package core_test so it can drive
// the HTTP server against the same engine without an import cycle.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/ppvp"
	"repro/internal/server"
	"repro/internal/storage"
)

// chaosSpec is the acceptance fault mix, in the operator spec grammar.
const chaosSpec = "storage.tile=corrupt,ppvp.decode=prob:0.05:error,core.decode=panic"

func chaosEngine() *core.Engine {
	return core.NewEngine(core.EngineOptions{CacheBytes: 64 << 20, Workers: 4})
}

// chaosDatasetOptions uses a single cuboid so each dataset is one tile: the
// corrupt fault's three byte flips then damage a bounded number of records
// and salvage always keeps a usable remainder.
func chaosDatasetOptions() core.DatasetOptions {
	comp := ppvp.DefaultOptions()
	comp.Rounds = 6
	return core.DatasetOptions{Compression: comp, Cuboids: 1, PartitionTargetFaces: 64}
}

func buildChaosPair(t *testing.T, e *core.Engine) (*core.Dataset, *core.Dataset) {
	t.Helper()
	gen := datagen.NucleiOptions{Count: 12, SubdivisionLevel: 1, Seed: 21}
	a, err := e.BuildDataset("chaosA", datagen.Nuclei(gen), chaosDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen.Seed = 22
	gen.Offset = geom.V(2.5, 1.5, 1)
	b, err := e.BuildDataset("chaosB", datagen.Nuclei(gen), chaosDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestChaosCampaign(t *testing.T) {
	runChaosCampaign(t, 1)
}

// TestChaosCampaignExtended repeats the campaign with fresh seeds for the
// duration in _3DPRO_CHAOS (make chaos-short sets 20s); unset it skips.
func TestChaosCampaignExtended(t *testing.T) {
	budget := os.Getenv("_3DPRO_CHAOS")
	if budget == "" {
		t.Skip("set _3DPRO_CHAOS to a duration (e.g. 20s) to run the extended campaign")
	}
	d, err := time.ParseDuration(budget)
	if err != nil {
		t.Fatalf("_3DPRO_CHAOS = %q: %v", budget, err)
	}
	deadline := time.Now().Add(d)
	for seed := int64(2); time.Now().Before(deadline); seed++ {
		ok := t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosCampaign(t, seed)
		})
		if !ok {
			return
		}
	}
}

// chaosHoles returns the IDs that did not survive the salvage load and
// checks each one is accounted for in the report.
func chaosHoles(t *testing.T, d *core.Dataset, rep *storage.SalvageReport) map[int64]bool {
	t.Helper()
	reported := make(map[int64]bool, len(rep.ObjectsDropped))
	for _, dr := range rep.ObjectsDropped {
		reported[dr.ID] = true
	}
	holes := map[int64]bool{}
	for i, o := range d.Tileset.Objects {
		if o == nil {
			holes[int64(i)] = true
			if !reported[int64(i)] {
				t.Fatalf("hole %d of %q missing from the salvage report %+v", i, d.Name, rep.ObjectsDropped)
			}
		}
	}
	return holes
}

func runChaosCampaign(t *testing.T, seed int64) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	ctx := context.Background()

	// Clean phase: build, query, and persist without faults.
	e1 := chaosEngine()
	a1, b1 := buildChaosPair(t, e1)
	clean, _, err := e1.IntersectJoin(ctx, a1, b1, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("clean workload produced no pairs")
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := a1.SaveDataset(dirA); err != nil {
		t.Fatal(err)
	}
	if err := b1.SaveDataset(dirB); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// Chaos phase: arm the acceptance fault mix and salvage-load into a
	// fresh engine. Every tile read is corrupted, so both loads must drop
	// objects yet still come up.
	faultinject.Seed(seed)
	if err := faultinject.Parse(chaosSpec); err != nil {
		t.Fatal(err)
	}
	e2 := chaosEngine()
	t.Cleanup(e2.Close)
	a2, repA, err := e2.LoadDatasetSalvage(dirA)
	if err != nil {
		t.Fatalf("salvage load A: %v (report %+v)", err, repA)
	}
	b2, repB, err := e2.LoadDatasetSalvage(dirB)
	if err != nil {
		t.Fatalf("salvage load B: %v (report %+v)", err, repB)
	}
	if repA.Clean() || len(repA.ObjectsDropped) == 0 {
		t.Fatalf("corrupt tile fault left report A clean: %+v", repA)
	}
	if len(a2.Tileset.Objects) != a1.Len() || len(b2.Tileset.Objects) != b1.Len() {
		t.Fatalf("salvage lost track of the object count: %d/%d, want %d/%d",
			len(a2.Tileset.Objects), len(b2.Tileset.Objects), a1.Len(), b1.Len())
	}
	// The authoritative drop set is the holes: a corrupted record reports a
	// garbage ID, but the loader's report must still cover every hole.
	badA, badB := chaosHoles(t, a2, repA), chaosHoles(t, b2, repB)

	// FailFast surfaces the first failure, naming the object.
	_, _, ffErr := e2.IntersectJoin(ctx, a2, b2, core.QueryOptions{})
	if ffErr == nil {
		t.Fatal("fail-fast join succeeded under armed faults")
	}
	if !strings.Contains(ffErr.Error(), "object ") {
		t.Fatalf("fail-fast error does not name an object: %v", ffErr)
	}

	// Degrade survives and answers with exactly the certain pairs: the
	// clean answer minus every pair touching a dropped or failed object.
	got, st, err := e2.IntersectJoin(ctx, a2, b2,
		core.QueryOptions{OnError: core.Degrade, ErrorBudget: -1})
	if err != nil {
		t.Fatalf("degrade join died: %v", err)
	}
	for _, d := range st.Degraded {
		switch d.Dataset {
		case a2.Name:
			badA[d.Object] = true
		case b2.Name:
			badB[d.Object] = true
		default:
			t.Fatalf("degraded entry names unknown dataset: %+v", d)
		}
	}
	want := make([]core.Pair, 0, len(clean))
	for _, p := range clean {
		if !badA[p.Target] && !badB[p.Source] {
			want = append(want, p)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("certain pairs = %d, want %d (clean %d, degraded %d)\ngot  %v\nwant %v\ndegraded %+v\nuncertain %v\ndroppedA %v droppedB %v",
			len(got), len(want), len(clean), len(st.Degraded), got, want,
			st.Degraded, st.Uncertain, repA.ObjectsDropped, repB.ObjectsDropped)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("certain[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// The quarantine is non-empty (salvage tripped the dropped objects), so
	// /readyz must report degraded while staying in rotation.
	if e2.Quarantine().Len() == 0 {
		t.Fatal("quarantine empty after salvage drops")
	}
	srv := server.New(e2)
	srv.AddDataset(a2)
	srv.AddDataset(b2)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("/readyz = %d %q, want 200 degraded", resp.StatusCode, body)
	}
}
