package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// nearMissMeshes builds the warm-start stress workload: pairs of icospheres
// whose MBBs overlap (offset along the space diagonal) while their surfaces
// barely miss or barely graze. Such candidates cannot be settled at a low
// LOD — an intersection join finds no low-LOD face contact and a within
// join's low-LOD distance stays inconclusive — so they ride the FPR ladder
// through several refinement decodes, which is exactly the access pattern
// the cache's warm-start protocol accelerates. centerDist is the
// center-to-center distance of each pair (sphere radius is 4, so 8 means
// touching); pairs are spaced far apart so they never cross-match.
func nearMissMeshes(centerDists []float64) (ta, sa []*mesh.Mesh) {
	for i, cd := range centerDists {
		base := geom.V(float64(i)*40, 0, 0)
		a := mesh.Icosphere(4, 2)
		a.Translate(base)
		ta = append(ta, a)
		b := mesh.Icosphere(4, 2)
		d := cd / math.Sqrt(3)
		b.Translate(base.Add(geom.V(d, d, d)))
		sa = append(sa, b)
	}
	return ta, sa
}

func buildNearMissPair(t *testing.T, e *Engine, centerDists []float64) (*Dataset, *Dataset) {
	t.Helper()
	ma, mb := nearMissMeshes(centerDists)
	a, err := e.BuildDataset("nearA", ma, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.BuildDataset("nearB", mb, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestFPRWarmStartsProveReuse runs the same join under FR and FPR on one
// engine each and checks (a) identical results, (b) the FPR run's misses
// warm-start off retained decoders (RoundsSkipped > 0), and (c) FPR's
// decoded rounds stay below the cold-path cost RoundsApplied + RoundsSkipped
// — the measurable form of "decoding to LOD k and later to LOD k+1 reuses
// the LOD-k state".
func TestFPRWarmStartsProveReuse(t *testing.T) {
	// Two grazing pairs (centers 7.7 < 8: thin overlap, invisible at low
	// LODs) and two near-miss pairs (8.5: disjoint, never settle positive).
	dists := []float64{7.7, 8.5, 7.7, 8.5}
	eFR, eFPR := testEngine(t), testEngine(t)
	runs := make(map[Paradigm]*Stats)
	var pairsFR, pairsFPR []Pair
	{
		a, b := buildNearMissPair(t, eFR, dists)
		var err error
		pairsFR, runs[FR], err = eFR.IntersectJoin(context.Background(), a, b, QueryOptions{Paradigm: FR})
		if err != nil {
			t.Fatal(err)
		}
	}
	{
		a, b := buildNearMissPair(t, eFPR, dists)
		var err error
		pairsFPR, runs[FPR], err = eFPR.IntersectJoin(context.Background(), a, b, QueryOptions{Paradigm: FPR})
		if err != nil {
			t.Fatal(err)
		}
	}

	if len(pairsFR) == 0 {
		t.Fatal("workload produced no intersecting pairs; grazing spheres should intersect at full LOD")
	}
	if len(pairsFR) != len(pairsFPR) {
		t.Fatalf("FR found %d pairs, FPR %d", len(pairsFR), len(pairsFPR))
	}
	for i := range pairsFR {
		if pairsFR[i] != pairsFPR[i] {
			t.Fatalf("pair %d: FR %v != FPR %v", i, pairsFR[i], pairsFPR[i])
		}
	}

	fpr := runs[FPR]
	if fpr.WarmStarts == 0 {
		t.Error("FPR run recorded no warm starts")
	}
	if fpr.RoundsSkipped == 0 {
		t.Error("FPR run skipped no rounds: decode state is not being reused")
	}
	if fpr.RoundsApplied == 0 {
		t.Error("FPR run applied no rounds")
	}
	// The warm-start win: replayed rounds < what a cold engine would replay
	// for the same misses.
	coldCost := fpr.RoundsApplied + fpr.RoundsSkipped
	if fpr.RoundsApplied >= coldCost {
		t.Errorf("RoundsApplied %d >= cold cost %d", fpr.RoundsApplied, coldCost)
	}

	// FR decodes only the top LOD cold: it must skip nothing.
	if runs[FR].RoundsSkipped != 0 {
		t.Errorf("FR run skipped %d rounds, want 0", runs[FR].RoundsSkipped)
	}
}

// TestWithinJoinWarmStarts checks the within-distance join also reuses
// decoder state under FPR with the AABB accelerator (the bounded dual-tree
// path).
func TestWithinJoinWarmStarts(t *testing.T) {
	// Threshold 6 between radius-4 spheres: surface gaps of ~5.6 and ~6.4
	// straddle it, so low-LOD distances (always ≥ the true distance) stay
	// above 6 and the candidates refine upward.
	dists := []float64{13.6, 14.4, 13.6, 14.4}
	e := testEngine(t)
	a, b := buildNearMissPair(t, e, dists)
	pairsFPR, st, err := e.WithinJoin(context.Background(), a, b, 6, QueryOptions{Paradigm: FPR, Accel: AABB})
	if err != nil {
		t.Fatal(err)
	}
	if st.RoundsSkipped == 0 {
		t.Error("FPR within join skipped no rounds")
	}
	if len(pairsFPR) == 0 {
		t.Fatal("no pairs within 6; gap-5.6 pairs should match")
	}
	// Same answer as brute-force FR on a fresh engine.
	e2 := testEngine(t)
	a2, b2 := buildNearMissPair(t, e2, dists)
	pairsFR, _, err := e2.WithinJoin(context.Background(), a2, b2, 6, QueryOptions{Paradigm: FR})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairsFR) != len(pairsFPR) {
		t.Fatalf("FR found %d pairs, FPR+AABB %d", len(pairsFR), len(pairsFPR))
	}
	for i := range pairsFR {
		if pairsFR[i] != pairsFPR[i] {
			t.Fatalf("pair %d: FR %v != FPR %v", i, pairsFR[i], pairsFPR[i])
		}
	}
}
