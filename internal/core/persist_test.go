package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/quarantine"
)

func TestSaveLoadDatasetRoundTrip(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)

	dir := t.TempDir()
	if err := a.SaveDataset(dir); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "dataset.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}

	loaded, err := e.LoadDataset(dir)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if loaded.Len() != a.Len() || loaded.MaxLOD() != a.MaxLOD() || loaded.Name != a.Name {
		t.Fatalf("metadata mismatch: %d/%d objects, maxLOD %d/%d",
			loaded.Len(), a.Len(), loaded.MaxLOD(), a.MaxLOD())
	}

	// Queries against the loaded dataset must match the original exactly.
	q := QueryOptions{Paradigm: FPR, Accel: Partition}
	want, _, err := e.WithinJoin(context.Background(), a, b, 12, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.WithinJoin(context.Background(), loaded, b, 12, q)
	if err != nil {
		t.Fatal(err)
	}
	sameSets(t, "loaded dataset", got, pairsToSet(want))

	wantNN, _, err := e.NNJoin(context.Background(), a, b, q)
	if err != nil {
		t.Fatal(err)
	}
	gotNN, _, err := e.NNJoin(context.Background(), loaded, b, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantNN) != len(gotNN) {
		t.Fatalf("NN counts differ: %d vs %d", len(gotNN), len(wantNN))
	}
	for i := range wantNN {
		if gotNN[i].Target != wantNN[i].Target || gotNN[i].Dist != wantNN[i].Dist {
			t.Fatalf("NN result %d differs: %+v vs %+v", i, gotNN[i], wantNN[i])
		}
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	e := testEngine(t)
	if _, err := e.LoadDataset(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "dataset.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.LoadDataset(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

// TestLoadDatasetSalvage damages one record of a saved dataset and checks
// the strict load refuses it while the salvage load recovers the rest,
// quarantines the hole, and still answers queries.
func TestLoadDatasetSalvage(t *testing.T) {
	e := testEngine(t)
	a, b := buildPair(t, e)

	clean, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := a.SaveDataset(dir); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the first record's blob of one tile.
	tiles, err := filepath.Glob(filepath.Join(dir, "tile-*.bin"))
	if err != nil || len(tiles) == 0 {
		t.Fatalf("no tiles saved: %v", err)
	}
	data, err := os.ReadFile(tiles[0])
	if err != nil {
		t.Fatal(err)
	}
	data[8+12+10] ^= 0xFF
	if err := os.WriteFile(tiles[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := e.LoadDataset(dir); err == nil {
		t.Fatal("strict load accepted a damaged tile")
	}
	d2, rep, err := e.LoadDatasetSalvage(dir)
	if err != nil {
		t.Fatalf("salvage load: %v (report %+v)", err, rep)
	}
	if rep.Clean() || len(rep.ObjectsDropped) == 0 {
		t.Fatalf("report claims clean load: %+v", rep)
	}
	if len(d2.Tileset.Objects) != a.Len() {
		t.Fatalf("salvaged object slots = %d, want %d (manifest count)", len(d2.Tileset.Objects), a.Len())
	}
	var holes []int64
	for i, o := range d2.Tileset.Objects {
		if o == nil {
			holes = append(holes, int64(i))
		}
	}
	if len(holes) != 1 {
		t.Fatalf("holes = %v, want exactly one", holes)
	}
	if !e.Quarantine().Quarantined(quarantine.Key{Dataset: d2.Seq(), Object: holes[0]}) {
		t.Fatalf("hole %d not quarantined", holes[0])
	}

	// A Degrade query answers with the clean pairs not touching the hole.
	got, st, err := e.IntersectJoin(context.Background(), d2, b, QueryOptions{OnError: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Pair, 0, len(clean))
	for _, p := range clean {
		if p.Target != holes[0] {
			want = append(want, p)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("degrade pairs = %d, want %d (stats %v)", len(got), len(want), st)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
