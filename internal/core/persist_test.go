package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadDatasetRoundTrip(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)

	dir := t.TempDir()
	if err := a.SaveDataset(dir); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "dataset.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}

	loaded, err := e.LoadDataset(dir)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if loaded.Len() != a.Len() || loaded.MaxLOD() != a.MaxLOD() || loaded.Name != a.Name {
		t.Fatalf("metadata mismatch: %d/%d objects, maxLOD %d/%d",
			loaded.Len(), a.Len(), loaded.MaxLOD(), a.MaxLOD())
	}

	// Queries against the loaded dataset must match the original exactly.
	q := QueryOptions{Paradigm: FPR, Accel: Partition}
	want, _, err := e.WithinJoin(context.Background(), a, b, 12, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.WithinJoin(context.Background(), loaded, b, 12, q)
	if err != nil {
		t.Fatal(err)
	}
	sameSets(t, "loaded dataset", got, pairsToSet(want))

	wantNN, _, err := e.NNJoin(context.Background(), a, b, q)
	if err != nil {
		t.Fatal(err)
	}
	gotNN, _, err := e.NNJoin(context.Background(), loaded, b, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantNN) != len(gotNN) {
		t.Fatalf("NN counts differ: %d vs %d", len(gotNN), len(wantNN))
	}
	for i := range wantNN {
		if gotNN[i].Target != wantNN[i].Target || gotNN[i].Dist != wantNN[i].Dist {
			t.Fatalf("NN result %d differs: %+v vs %+v", i, gotNN[i], wantNN[i])
		}
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	e := testEngine(t)
	if _, err := e.LoadDataset(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "dataset.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.LoadDataset(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
}
