package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestConcurrentQueriesExactAttribution is the regression test for the
// cross-query stats bleed: N queries overlap on one engine, and every
// query's cache counters must sum exactly to the cache-wide delta — under
// the old snapshot-diff scheme each query instead saw a slice of everyone
// else's activity. Run under -race this also proves the attribution path is
// data-race free.
func TestConcurrentQueriesExactAttribution(t *testing.T) {
	e := testEngine(t)
	// Near-miss pairs ride the LOD ladder, so the concurrent queries mix
	// cold decodes, warm starts, and plain hits on the shared cache.
	a, b := buildNearMissPair(t, e, []float64{7.7, 8.5, 7.7, 8.5})
	before := e.Cache().Stats()

	const n = 8
	stats := make([]*Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := QueryOptions{Paradigm: FPR}
			if i%2 == 1 {
				q.Accel = AABB
			}
			_, st, err := e.IntersectJoin(context.Background(), a, b, q)
			if err != nil {
				t.Error(err)
				return
			}
			stats[i] = st
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	delta := e.Cache().Stats().Sub(before)
	var hits, misses, warm, applied, skipped, failures int64
	for _, st := range stats {
		hits += st.CacheHits
		misses += st.Decodes
		warm += st.WarmStarts
		applied += st.RoundsApplied
		skipped += st.RoundsSkipped
		failures += st.DecodeFailures
	}
	if warm != delta.WarmStarts {
		t.Errorf("sum of per-query WarmStarts = %d, cache delta = %d", warm, delta.WarmStarts)
	}
	if applied != delta.RoundsApplied {
		t.Errorf("sum of per-query RoundsApplied = %d, cache delta = %d", applied, delta.RoundsApplied)
	}
	if skipped != delta.RoundsSkipped {
		t.Errorf("sum of per-query RoundsSkipped = %d, cache delta = %d", skipped, delta.RoundsSkipped)
	}
	if failures != delta.DecodeFailures || failures != 0 {
		t.Errorf("DecodeFailures sum = %d, cache delta = %d, want 0", failures, delta.DecodeFailures)
	}
	if hits != delta.Hits {
		t.Errorf("sum of per-query CacheHits = %d, cache delta = %d", hits, delta.Hits)
	}
	if misses != delta.Misses {
		t.Errorf("sum of per-query Decodes = %d, cache Misses delta = %d", misses, delta.Misses)
	}
	// The workload must actually exercise the reuse paths or the equalities
	// above prove nothing.
	if delta.WarmStarts == 0 || delta.Hits == 0 {
		t.Errorf("workload too weak: delta = %+v", delta)
	}
}

// TestConcurrentProfilingDoesNotPerturbAttribution pins the SampleCuboid
// aliasing contract (see profile.go): the profiling sample is a shallow view
// sharing the original's objects, indexes, and seq, so its decodes land in
// the same cache entries live queries use — and per-query attribution must
// still be exact. ProfileLODs runs concurrently with live joins and every
// participant's cache counters (the profiling runs' included) must sum
// exactly to the cache-wide delta.
func TestConcurrentProfilingDoesNotPerturbAttribution(t *testing.T) {
	e := testEngine(t)
	a, b := buildNearMissPair(t, e, []float64{7.7, 8.5, 7.7, 8.5})
	before := e.Cache().Stats()

	const n = 8
	stats := make([]*Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 1 {
				// Odd slots profile: same engine, same cache entries via the
				// shallow sample view.
				_, st, err := e.ProfileLODs(context.Background(), a, b, IntersectKind, 0,
					QueryOptions{}, DefaultPruneThreshold)
				if err != nil {
					t.Error(err)
					return
				}
				stats[i] = st
				return
			}
			_, st, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Paradigm: FPR})
			if err != nil {
				t.Error(err)
				return
			}
			stats[i] = st
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	delta := e.Cache().Stats().Sub(before)
	var hits, misses, warm, applied, skipped int64
	for _, st := range stats {
		hits += st.CacheHits
		misses += st.Decodes
		warm += st.WarmStarts
		applied += st.RoundsApplied
		skipped += st.RoundsSkipped
	}
	if hits != delta.Hits {
		t.Errorf("sum of per-run CacheHits = %d, cache delta = %d", hits, delta.Hits)
	}
	if misses != delta.Misses {
		t.Errorf("sum of per-run Decodes = %d, cache Misses delta = %d", misses, delta.Misses)
	}
	if warm != delta.WarmStarts {
		t.Errorf("sum of per-run WarmStarts = %d, cache delta = %d", warm, delta.WarmStarts)
	}
	if applied != delta.RoundsApplied {
		t.Errorf("sum of per-run RoundsApplied = %d, cache delta = %d", applied, delta.RoundsApplied)
	}
	if skipped != delta.RoundsSkipped {
		t.Errorf("sum of per-run RoundsSkipped = %d, cache delta = %d", skipped, delta.RoundsSkipped)
	}
	// Profiling must actually share cache entries with the live queries, or
	// the exactness above proves nothing about the aliasing.
	if delta.Hits == 0 {
		t.Errorf("workload too weak: no shared cache activity, delta = %+v", delta)
	}
}

// TestStatsOnCancellation: a query cancelled mid-flight must still hand back
// its statistics — phase times and exact cache attribution up to the point
// it stopped — alongside the error.
func TestStatsOnCancellation(t *testing.T) {
	e := testEngine(t)
	a, b := buildPair(t, e)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Hook: func() error {
		// Cancel during the first decode: the workers notice before their
		// next object and the query aborts with context.Canceled.
		once.Do(cancel)
		return nil
	}})
	defer faultinject.Reset()

	_, st, err := e.IntersectJoin(ctx, a, b, QueryOptions{Paradigm: FPR})
	if err == nil {
		t.Fatal("cancelled query returned no error")
	}
	if st == nil {
		t.Fatal("cancelled query returned nil stats")
	}
	if st.Elapsed <= 0 {
		t.Error("cancelled query reported no elapsed time")
	}
	if st.Decodes == 0 {
		t.Error("cancelled query reported no decodes; the hook fired inside one")
	}
	if len(st.PairsEvaluated) == 0 {
		t.Error("cancelled query lost its LOD table")
	}
}

// TestStatsOnCancellationSingleThreaded covers the non-runPerTarget paths
// (ContainingObjects / RangeQuery), which observe the deadline themselves.
func TestStatsOnCancellationSingleThreaded(t *testing.T) {
	e := testEngine(t)
	a, _ := buildPair(t, e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st, err := e.ContainingObjects(ctx, a, a.Tileset.Object(0).MBB().Center(), QueryOptions{Paradigm: FPR})
	if err == nil {
		t.Fatal("cancelled query returned no error")
	}
	if st == nil {
		t.Fatal("cancelled query returned nil stats")
	}
	if st.FilterTime <= 0 {
		t.Error("filter phase ran before the deadline check but was not reported")
	}
}

// TestStatsStringDecodeFailures: the one-line summary must surface non-zero
// decode failures (it used to print the degraded clause without them).
func TestStatsStringDecodeFailures(t *testing.T) {
	s := &Stats{DecodeFailures: 3}
	if got := s.String(); !strings.Contains(got, "decodeFailures=3") {
		t.Errorf("String() omits decode failures: %q", got)
	}
	clean := &Stats{}
	if got := clean.String(); strings.Contains(got, "decodeFailures") {
		t.Errorf("clean query should not print the degraded clause: %q", got)
	}
}

// TestQueryTrace checks the opt-in span recording: a traced query returns an
// aggregated timeline whose counts reconcile with the scalar statistics,
// and an untraced query pays nothing and returns none.
func TestQueryTrace(t *testing.T) {
	e := testEngine(t)
	a, b := buildPair(t, e)

	_, st, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Paradigm: FPR, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) == 0 {
		t.Fatal("traced query returned no events")
	}
	byName := map[string]int64{}
	sawFilterNoLOD := false
	for _, ev := range st.Trace {
		byName[ev.Name] += ev.Count
		if ev.Name == "filter" && ev.LOD == obs.NoLOD {
			sawFilterNoLOD = true
		}
		if ev.LastUS < ev.FirstUS {
			t.Errorf("event %q lod=%d has last < first: %+v", ev.Name, ev.LOD, ev)
		}
	}
	if !sawFilterNoLOD {
		t.Error("no filter event with LOD=NoLOD")
	}
	var evaluated, settled int64
	for i := range st.PairsEvaluated {
		evaluated += st.PairsEvaluated[i]
		settled += st.PairsPruned[i]
	}
	if byName["evaluate"] != evaluated {
		t.Errorf("trace evaluate count = %d, stats say %d", byName["evaluate"], evaluated)
	}
	if byName["settle"] != settled {
		t.Errorf("trace settle count = %d, stats say %d", byName["settle"], settled)
	}
	if byName["decode"] != st.Decodes {
		t.Errorf("trace decode count = %d, stats say %d", byName["decode"], st.Decodes)
	}
	if byName["cache_hit"] != st.CacheHits {
		t.Errorf("trace cache_hit count = %d, stats say %d", byName["cache_hit"], st.CacheHits)
	}
	if byName["geom"] == 0 {
		t.Error("no geometry spans recorded")
	}

	_, st2, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Paradigm: FPR})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Trace != nil {
		t.Errorf("untraced query returned %d events", len(st2.Trace))
	}
}
