package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// runJoin executes one join kind under q and returns its results in a
// comparable form plus the stats.
func runJoin(t *testing.T, e *Engine, kind QueryKind, target, source *Dataset, dist float64, q QueryOptions) (any, *Stats) {
	t.Helper()
	switch kind {
	case IntersectKind:
		pairs, st, err := e.IntersectJoin(context.Background(), target, source, q)
		if err != nil {
			t.Fatal(err)
		}
		return pairs, st
	case WithinKind:
		pairs, st, err := e.WithinJoin(context.Background(), target, source, dist, q)
		if err != nil {
			t.Fatal(err)
		}
		return pairs, st
	default:
		ns, st, err := e.NNJoin(context.Background(), target, source, q)
		if err != nil {
			t.Fatal(err)
		}
		return ns, st
	}
}

// TestMarginStaticEquivalence is the margin scheduler's core contract: for
// every query kind, both executors, and the Degrade policy (no faults
// injected), SchedMargin returns byte-identical results to the SchedStatic
// reference — including repeated margin runs, which exercise the
// online-calibrated ladders the first run seeds.
func TestMarginStaticEquivalence(t *testing.T) {
	e := testEngine(t)
	ia, ib := buildPair(t, e)         // overlapping: intersection workload
	wa, wb := buildDisjointPair(t, e) // interior-disjoint: distance workloads
	const dist = 12.0

	cases := []struct {
		kind           QueryKind
		target, source *Dataset
	}{
		{IntersectKind, ia, ib},
		{WithinKind, wa, wb},
		{NNKind, wa, wb},
		// Self-joins: every candidate pair straddles the d(x,x)=0 /
		// intersects(x,x) edge, where an unsound bound shortcut would show.
		{IntersectKind, ia, ia},
		{WithinKind, wa, wa},
	}
	for _, c := range cases {
		for _, exec := range []Exec{ExecAuto, ExecPerPair} {
			for _, policy := range []ErrorPolicy{FailFast, Degrade} {
				q := QueryOptions{Paradigm: FPR, Exec: exec, OnError: policy}
				q.Sched = SchedStatic
				want, _ := runJoin(t, e, c.kind, c.target, c.source, dist, q)
				// Three margin runs: run 1 on the uncalibrated full ladder,
				// runs 2-3 on ladders derived from the calibrator it fed.
				for i := 0; i < 3; i++ {
					q.Sched = SchedMargin
					got, _ := runJoin(t, e, c.kind, c.target, c.source, dist, q)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%v/%v/%v margin run %d: results differ from static\n got %v\nwant %v",
							c.kind, exec, policy, i, got, want)
					}
				}
			}
		}
	}
}

// TestMarginSkipsLODsOnNearMisses pins the tentpole's work-saving mechanism:
// on a workload of box-overlapping near-misses whose measured distance sits
// far above the threshold at every LOD, the margin scheduler routes pairs
// straight to the top LOD (LODsSkippedByMargin > 0) while returning exactly
// the static answer.
func TestMarginSkipsLODsOnNearMisses(t *testing.T) {
	e := testEngine(t)
	// Radius-4 spheres, centers 8.5 and 9.5 apart: boxes overlap (the filter
	// keeps the pairs) but surface gaps are ~0.5 and ~1.5. With dist = 0.2
	// every measured distance exceeds marginJumpFactor·dist, so each pair
	// jumps past the intermediate LODs it would otherwise walk.
	a, b := buildNearMissPair(t, e, []float64{8.5, 9.5, 8.5})
	const dist = 0.2

	// Margin runs first, on the uncalibrated full ladder: each pair starts
	// at LOD 0 and jumps. (After a run has fed the calibrator, the ladder
	// itself drops the unproductive low LODs and there is nothing left to
	// jump over — that regime is covered by the equivalence test.)
	margin := QueryOptions{Paradigm: FPR, Sched: SchedMargin}
	gotPairs, gotStats, err := e.WithinJoin(context.Background(), a, b, dist, margin)
	if err != nil {
		t.Fatal(err)
	}
	static := QueryOptions{Paradigm: FPR, Sched: SchedStatic}
	wantPairs, wantStats, err := e.WithinJoin(context.Background(), a, b, dist, static)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Errorf("margin results differ from static: got %v want %v", gotPairs, wantPairs)
	}
	if gotStats.LODsSkippedByMargin == 0 {
		t.Errorf("margin run skipped no LODs on a jump-heavy workload; stats: %v", gotStats)
	}
	if wantStats.LODsSkippedByMargin != 0 {
		t.Errorf("static run reported %d margin-skipped LODs, want 0", wantStats.LODsSkippedByMargin)
	}
}

// TestBoundsDecisiveWithin pins the bounds-only settles: a within threshold
// large enough that many pairs satisfy MAXDIST ≤ dist settles those pairs
// with no decode, counted in Stats.BoundsDecisive under both schedulers
// (the filter's definite acceptances are bounds verdicts too), with
// identical results.
func TestBoundsDecisiveWithin(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	// Large relative to the nuclei spacing in the 60³ space: MAXDIST of the
	// closest box pairs drops under it.
	const dist = 40.0

	static := QueryOptions{Paradigm: FPR, Sched: SchedStatic}
	wantPairs, wantStats, err := e.WithinJoin(context.Background(), a, b, dist, static)
	if err != nil {
		t.Fatal(err)
	}
	margin := QueryOptions{Paradigm: FPR, Sched: SchedMargin}
	gotPairs, gotStats, err := e.WithinJoin(context.Background(), a, b, dist, margin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Errorf("margin results differ from static: got %v want %v", gotPairs, wantPairs)
	}
	if len(wantPairs) == 0 {
		t.Fatal("workload produced no within pairs at dist=40; test is vacuous")
	}
	if gotStats.BoundsDecisive == 0 {
		t.Errorf("margin run settled no pairs from bounds at dist=%v; stats: %v", dist, gotStats)
	}
	if wantStats.BoundsDecisive == 0 {
		t.Errorf("static run settled no pairs from bounds at dist=%v; stats: %v", dist, wantStats)
	}
}

// TestCalibratorObserveAndLadder unit-tests the online model: seeding,
// EWMA updates, ladder selection against the §4.4 threshold, and that LODs
// with no evaluated pairs contribute no observation.
func TestCalibratorObserveAndLadder(t *testing.T) {
	c := newCalibrator()

	// Unseeded kind: full ladder.
	if got, want := c.ladder(WithinKind, 3), []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unseeded ladder = %v, want %v", got, want)
	}

	// One observation: LOD 0 prunes 60% (> threshold), LOD 1 prunes 10%
	// (≤ threshold), LOD 2 evaluated nothing (absent, probed on cadence).
	st := &Stats{
		PairsEvaluated: []int64{10, 10, 0, 5},
		PairsPruned:    []int64{6, 1, 0, 5},
	}
	c.observe(WithinKind, st)
	if got, want := c.ladder(WithinKind, 3), []int{0, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("calibrated ladder = %v, want %v", got, want)
	}

	// Other kinds stay unseeded — the model is per-kind.
	if got, want := c.ladder(NNKind, 3), []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-kind ladder = %v, want %v", got, want)
	}

	// EWMA pulls LOD 0 under the threshold after repeated zero-prune
	// queries: (0.8)^n · 0.6 < 0.25 within a dozen observations.
	zero := &Stats{PairsEvaluated: []int64{10}, PairsPruned: []int64{0}}
	for i := 0; i < 12; i++ {
		c.observe(WithinKind, zero)
	}
	if got, want := c.ladder(WithinKind, 3), []int{3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("post-decay ladder = %v, want %v", got, want)
	}
}

// TestCalibratorProbesDroppedLODs pins the anti-freeze rule: an excluded
// LOD is re-included every calProbeEvery consecutive exclusions so its
// estimate can recover after a workload shift.
func TestCalibratorProbesDroppedLODs(t *testing.T) {
	c := newCalibrator()
	// Seed LOD 0 below the threshold so the ladder drops it.
	c.observe(WithinKind, &Stats{PairsEvaluated: []int64{10, 10}, PairsPruned: []int64{0, 10}})

	probes := 0
	for i := 0; i < 2*calProbeEvery; i++ {
		lods := c.ladder(WithinKind, 1)
		for _, l := range lods {
			if l == 0 {
				probes++
			}
		}
	}
	if probes != 2 {
		t.Fatalf("LOD 0 probed %d times over %d ladders, want exactly 2 (every %d)",
			probes, 2*calProbeEvery, calProbeEvery)
	}
}

// TestScheduleRouting pins which queries take the static path: FR, explicit
// LODs, and SchedStatic never consult the calibrator.
func TestScheduleRouting(t *testing.T) {
	e := testEngine(t)
	// Bias the calibrator so a calibrated ladder is distinguishable from the
	// full one.
	e.cal.observe(WithinKind, &Stats{PairsEvaluated: []int64{10, 10}, PairsPruned: []int64{0, 10}})

	full := []int{0, 1, 2}
	cases := []struct {
		name string
		q    QueryOptions
		want []int
	}{
		{"fr", QueryOptions{Paradigm: FR}, []int{2}},
		{"static", QueryOptions{Paradigm: FPR, Sched: SchedStatic}, full},
		{"explicit", QueryOptions{Paradigm: FPR, LODs: []int{1}}, []int{1, 2}},
		{"margin", QueryOptions{Paradigm: FPR}, []int{1, 2}}, // calibrated: LOD 0 dropped, LOD 1 kept
	}
	for _, c := range cases {
		if got := e.schedule(&c.q, 2, WithinKind); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: schedule = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPlanWithinBounds unit-tests the sound pre-ladder verdicts.
func TestPlanWithinBounds(t *testing.T) {
	box := func(x0, x1 float64) geom.Box3 {
		return geom.Box3{Min: geom.V(x0, 0, 0), Max: geom.V(x1, 1, 1)}
	}
	a := box(0, 1)
	cases := []struct {
		name string
		b    geom.Box3
		dist float64
		want pairPlan
	}{
		// MAXDIST(a,b) bounded by the boxes' corner spread; overlapping unit
		// boxes within dist 10 must accept from bounds alone.
		{"accept", box(0.5, 1.5), 10, planAccept},
		{"reject", box(5, 6), 1, planReject}, // MINDIST 4 > 1
		{"walk", box(1.5, 2.5), 1, planWalk}, // MINDIST 0.5 ≤ 1 < MAXDIST
	}
	for _, c := range cases {
		if got := planWithin(a, c.b, c.dist); got != c.want {
			t.Errorf("%s: planWithin = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPlanIntersectDegenerateContact unit-tests the direct-routing rule:
// only zero-volume MBB contact routes to the top LOD.
func TestPlanIntersectDegenerateContact(t *testing.T) {
	unit := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(1, 1, 1)}
	touching := geom.Box3{Min: geom.V(1, 0, 0), Max: geom.V(2, 1, 1)} // shares the x=1 face
	overlapping := geom.Box3{Min: geom.V(0.5, 0, 0), Max: geom.V(2, 1, 1)}
	if got := planIntersect(unit, touching); got != planDirect {
		t.Errorf("face contact: planIntersect = %v, want planDirect", got)
	}
	if got := planIntersect(unit, overlapping); got != planWalk {
		t.Errorf("volume overlap: planIntersect = %v, want planWalk", got)
	}
	if got := planIntersect(unit, unit); got != planWalk {
		t.Errorf("identical boxes: planIntersect = %v, want planWalk", got)
	}
}

// TestSelectLODsBoundary pins the §4.4 rule's fixed comparison: a pruned
// fraction exactly at the threshold (1/r² with r=2 → 0.25) does NOT select
// the LOD — the paper's criterion is "greater than", and refining at
// exactly the break-even fraction saves nothing.
func TestSelectLODsBoundary(t *testing.T) {
	st := &Stats{
		PairsEvaluated: []int64{4, 4, 4, 1},
		PairsPruned:    []int64{1, 2, 0, 1}, // fractions 0.25, 0.5, 0
	}
	if got, want := selectLODs(st, 3, 0.25), []int{1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("selectLODs = %v, want %v (exactly-threshold LOD 0 must be excluded)", got, want)
	}
}

// TestSelectLODsSkipsUnevaluated pins the zero-evaluated-LOD rule: a LOD at
// which no pairs were evaluated (all candidates settled below it) carries
// no pruning evidence and is never selected, and the empty-stats edge
// degenerates to the top LOD alone.
func TestSelectLODsSkipsUnevaluated(t *testing.T) {
	st := &Stats{
		PairsEvaluated: []int64{4, 0, 4, 1},
		PairsPruned:    []int64{4, 0, 4, 1},
	}
	if got, want := selectLODs(st, 3, 0.25), []int{0, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("selectLODs = %v, want %v (unevaluated LOD 1 must be skipped)", got, want)
	}
	if got, want := selectLODs(&Stats{}, 3, 0.25), []int{3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("selectLODs on empty stats = %v, want %v", got, want)
	}
}
