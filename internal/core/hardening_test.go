package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// slowEngine returns an engine with the decode cache disabled so every
// decode passes through the core.decode fault-injection point.
func slowEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(EngineOptions{CacheBytes: -1, Workers: 4, GPUWorkers: 2, GPUBatch: 512})
	t.Cleanup(e.Close)
	return e
}

// armSlowDecodes makes every decode sleep and closes the returned channel
// when the first decode begins, so tests can cancel a join that is
// provably mid-flight.
func armSlowDecodes(delay time.Duration) <-chan struct{} {
	started := make(chan struct{})
	var once sync.Once
	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Hook: func() error {
		once.Do(func() { close(started) })
		time.Sleep(delay)
		return nil
	}})
	return started
}

// TestJoinCancelledMidJoin cancels a context while each join kind is in the
// middle of decoding and asserts the join returns context.Canceled within a
// bounded wall-clock, not after finishing the remaining work.
func TestJoinCancelledMidJoin(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := slowEngine(t)
	// The overlapping pair guarantees refinement work (and thus decodes)
	// for every join kind. Within's disjoint-interior precondition is
	// irrelevant here: the query never completes.
	a, b := buildPair(t, e)

	joins := map[string]func(ctx context.Context) error{
		"intersect": func(ctx context.Context) error {
			_, _, err := e.IntersectJoin(ctx, a, b, QueryOptions{})
			return err
		},
		"within": func(ctx context.Context) error {
			_, _, err := e.WithinJoin(ctx, a, b, 5, QueryOptions{})
			return err
		},
		"knn": func(ctx context.Context) error {
			_, _, err := e.KNNJoin(ctx, a, b, QueryOptions{K: 2})
			return err
		},
	}
	for name, join := range joins {
		t.Run(name, func(t *testing.T) {
			started := armSlowDecodes(3 * time.Millisecond)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				select {
				case <-started:
				case <-time.After(5 * time.Second):
				}
				cancel()
			}()
			t0 := time.Now()
			err := join(ctx)
			elapsed := time.Since(t0)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if elapsed > 2*time.Second {
				t.Fatalf("join took %v after cancellation", elapsed)
			}
		})
	}
}

// TestJoinDeadlineExceeded checks a context deadline surfaces as
// context.DeadlineExceeded instead of running unbounded.
func TestJoinDeadlineExceeded(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := slowEngine(t)
	a, b := buildPair(t, e)
	armSlowDecodes(3 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, _, err := e.IntersectJoin(ctx, a, b, QueryOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("join took %v after deadline", elapsed)
	}
}

// TestWorkerPanicBecomesError forces a panic inside one decode worker and
// asserts it fails only that query; the engine keeps answering.
func TestWorkerPanicBecomesError(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := slowEngine(t)
	a, b := buildPair(t, e)

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Panic: "decode blew up", Times: 1})
	_, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err == nil {
		t.Fatal("join with injected panic returned nil error")
	}
	if !strings.Contains(err.Error(), "worker panic") || !strings.Contains(err.Error(), "decode blew up") {
		t.Fatalf("panic not surfaced in error: %v", err)
	}

	// The fault is spent; the same engine must now answer correctly.
	pairs, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err != nil {
		t.Fatalf("join after recovered panic: %v", err)
	}
	if len(pairs) == 0 {
		t.Fatal("overlapping pair produced no intersections after recovery")
	}
}

// TestInjectedDecodeError checks an injected (non-panic) decode error also
// aborts the query cleanly.
func TestInjectedDecodeError(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := slowEngine(t)
	a, b := buildPair(t, e)
	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{
		Err: faultinject.ErrInjected, Times: 1,
	})
	_, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}
