package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestStatsStringCoversShardsAndTrace pins the statsexhaustive invariant
// that every Stats field surfaces in String: before issue 8 the summary
// silently dropped the per-shard breakdown and the trace timeline, so a
// logged coordinator query looked identical to a single-engine one.
func TestStatsStringCoversShardsAndTrace(t *testing.T) {
	s := &Stats{
		Shards: []ShardStat{{Shard: 0, Status: "ok"}, {Shard: 1, Status: "error"}},
		Trace:  []obs.TraceEvent{{Name: "decode", LOD: obs.NoLOD}},
	}
	out := s.String()
	if !strings.Contains(out, "shards=2") {
		t.Errorf("String() omits the shard breakdown: %q", out)
	}
	if !strings.Contains(out, "traceEvents=1") {
		t.Errorf("String() omits the trace events: %q", out)
	}
	// And a plain single-engine Stats must not grow noise fields.
	plain := (&Stats{}).String()
	if strings.Contains(plain, "shards=") || strings.Contains(plain, "traceEvents=") {
		t.Errorf("empty Stats should omit shard/trace fields: %q", plain)
	}
}
