package core

// The margin-governed LOD scheduler (ROADMAP item 3, the "Decode-Work Law"
// direction). Two mechanisms replace the paper's one-shot static §4.4 rule:
//
//  1. An engine-level online calibrator: every finished query feeds its
//     per-LOD pruned fractions into per-(kind, LOD) obs histograms and an
//     EWMA estimator. Under SchedMargin with no explicit QueryOptions.LODs
//     the ladder is re-derived per query from the live estimates instead of
//     a stale sample-cuboid profile.
//
//  2. A per-pair margin plan built from sound bounds. Before the ladder,
//     the MBB MINDIST/MAXDIST interval [lo, hi] the filter already computed
//     settles threshold-excluded pairs with no decode at all
//     (Stats.BoundsDecisive). On the ladder, the measured LOD-k distance —
//     a sound upper bound of the true distance under PPVP, obtained by
//     widening the evaluator's search bound to marginJumpFactor·dist — is
//     the margin: a pair measured far above the threshold is overwhelmingly
//     a reject, and under PPVP only the top LOD can reject, so it jumps
//     straight there instead of being re-evaluated at every intermediate
//     LOD (Stats.LODsSkippedByMargin); a near-miss keeps walking, because
//     the next LOD's smaller distance may still accept it. Box-derived
//     heuristics were measured and rejected for this routing: box MAXDIST
//     is corner-to-corner loose (everything would jump) and the box gap
//     fraction lo/dist does not separate accepts from rejects on
//     nuclei-like data — the measured distance does.
//
// Soundness / byte-equality with SchedStatic: a pair is only ever accepted
// on a sound upper bound (a measured low-LOD distance ≤ dist, a low-LOD
// face hit, or MBB MAXDIST ≤ dist) and only ever rejected at the top LOD or
// on a sound lower bound (MBB MINDIST > dist). Both properties hold for
// every routing above, so the final result set does not depend on which
// intermediate LODs a pair visits — the equivalence suite in sched_test.go
// pins this against the static per-pair reference.

import (
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/obs"
)

// calEWMAAlpha weights the newest query's pruned fraction in the EWMA —
// high enough to track workload shifts within tens of queries, low enough
// that one odd query does not flip the ladder.
const calEWMAAlpha = 0.2

// calProbeEvery bounds how long a dropped LOD stays dropped: once the
// calibrated ladder has excluded a LOD this many times in a row it is
// probed again (included for one query) so its estimate can refresh.
// Without the probe an excluded LOD would never be evaluated again and its
// estimate would freeze at the value that excluded it.
const calProbeEvery = 16

// fractionBuckets bucket pruned fractions (a value in [0, 1]); the 0.25
// bound sits exactly at the §4.4 threshold for r = 2.
var fractionBuckets = []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9}

// calKey is one (query kind, LOD) cell of the calibrator.
type calKey struct {
	kind QueryKind
	lod  int
}

// calCell is the model for one (kind, LOD): the full observation histogram
// (read back through obs.Histogram.Snapshot) and the recency-weighted EWMA.
type calCell struct {
	hist  *obs.Histogram
	ewma  float64
	skips int // consecutive ladder exclusions since the last probe
}

// calibrator is the engine-level online pruning model. All methods are
// safe for concurrent use; the mutex is touched once per query (observe)
// and once per margin-scheduled ladder derivation, never per pair.
type calibrator struct {
	mu    sync.Mutex
	cells map[calKey]*calCell
}

func newCalibrator() *calibrator {
	return &calibrator{cells: make(map[calKey]*calCell)}
}

// observe feeds one finished query's per-LOD pruned fractions into the
// model. LODs that evaluated no pairs contribute nothing — an absent
// observation, not a zero.
func (c *calibrator) observe(kind QueryKind, st *Stats) {
	if c == nil || st == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for lod := range st.PairsEvaluated {
		if st.PairsEvaluated[lod] == 0 {
			continue
		}
		frac := st.PrunedFraction(lod)
		cell, ok := c.cells[calKey{kind, lod}]
		if !ok {
			cell = &calCell{hist: obs.NewHistogram(fractionBuckets), ewma: frac}
			c.cells[calKey{kind, lod}] = cell
		} else {
			cell.ewma = calEWMAAlpha*frac + (1-calEWMAAlpha)*cell.ewma
		}
		cell.hist.Observe(frac)
	}
}

// ladder derives the calibrated LOD schedule for one query: every LOD
// below the top whose estimated pruned fraction strictly exceeds the §4.4
// threshold, plus the top LOD. With no evidence for the kind yet, every
// LOD is included (the paper's uncalibrated default) — those full-ladder
// queries are what seed the model.
func (c *calibrator) ladder(kind QueryKind, maxLOD int) []int {
	full := func() []int {
		out := make([]int, maxLOD+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if c == nil {
		return full()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seeded := false
	for l := 0; l < maxLOD; l++ {
		if _, ok := c.cells[calKey{kind, l}]; ok {
			seeded = true
			break
		}
	}
	if !seeded {
		return full()
	}
	out := make([]int, 0, maxLOD+1)
	for l := 0; l < maxLOD; l++ {
		cell, ok := c.cells[calKey{kind, l}]
		if !ok {
			// Never observed (e.g. the seeding queries' pairs all settled
			// below it): probe it on the same cadence as dropped LODs.
			cell = &calCell{hist: obs.NewHistogram(fractionBuckets)}
			c.cells[calKey{kind, l}] = cell
		}
		snap := cell.hist.Snapshot()
		if snap.Count > 0 && cell.ewma > DefaultPruneThreshold {
			cell.skips = 0
			out = append(out, l)
			continue
		}
		// Excluded: count the skip and periodically re-include the LOD so
		// the estimate can recover if the workload shifted.
		cell.skips++
		if cell.skips >= calProbeEvery {
			cell.skips = 0
			out = append(out, l)
		}
	}
	out = append(out, maxLOD)
	return out
}

// CalibrationEntry is one (kind, LOD) cell of the scheduler calibrator's
// state, serialized for /statusz and tests.
type CalibrationEntry struct {
	Kind string `json:"kind"`
	LOD  int    `json:"lod"`
	// EWMA is the recency-weighted pruned-fraction estimate the ladder rule
	// compares against the §4.4 threshold; Count and Mean summarize the full
	// observation histogram.
	EWMA  float64 `json:"ewma"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
}

// SchedCalibration snapshots the online LOD-schedule calibrator, one entry
// per observed (kind, LOD), ordered by kind then LOD.
func (e *Engine) SchedCalibration() []CalibrationEntry {
	c := e.cal
	c.mu.Lock()
	out := make([]CalibrationEntry, 0, len(c.cells))
	for k, cell := range c.cells {
		snap := cell.hist.Snapshot()
		if snap.Count == 0 {
			continue
		}
		out = append(out, CalibrationEntry{
			Kind: k.kind.String(), LOD: k.lod,
			EWMA: cell.ewma, Count: snap.Count, Mean: snap.Mean(),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].LOD < out[j].LOD
	})
	return out
}

// schedule returns the query's LOD ladder. Explicit q.LODs, FR, and
// SchedStatic take the static path (lodSchedule); a margin-scheduled FPR
// query with no pinned LODs gets the online-calibrated ladder.
func (e *Engine) schedule(q *QueryOptions, maxLOD int, kind QueryKind) []int {
	if q.Paradigm == FR || q.Sched == SchedStatic || len(q.LODs) > 0 {
		return q.lodSchedule(maxLOD, q.Paradigm)
	}
	return e.cal.ladder(kind, maxLOD)
}

// pairPlan is the margin scheduler's routing verdict for one candidate.
type pairPlan int

const (
	// planWalk rides the ladder from its first LOD (accept-leaning).
	planWalk pairPlan = iota
	// planDirect enters the ladder at the top LOD, skipping every
	// intermediate entry (degenerate-contact intersect candidates; within
	// pairs reach the same routing mid-ladder via marginJumpFactor).
	planDirect
	// planAccept and planReject settle the pair from bounds alone, with no
	// decode at any LOD.
	planAccept
	planReject
)

// marginJumpFactor widens the within-distance evaluator's search bound
// under SchedMargin: distances up to marginJumpFactor·dist are measured
// exactly instead of being cut off at dist. The measured value is a sound
// upper bound of the true distance (PPVP property 2), so a pair whose
// LOD-k distance still exceeds marginJumpFactor·dist would need the
// remaining rounds to shrink it by more than half to be accepted —
// overwhelmingly a reject, which only the top LOD can decide — and jumps
// straight there. A near-miss (between dist and the widened bound) keeps
// walking. The widened bound costs a slightly deeper bounded search per
// evaluation and buys the jump signal, so it is applied only at ladder
// rungs from which a jump can still skip an entry (two or more below the
// top) — the final rungs keep the narrow bound. The factor steers only
// work placement, never results — accepts still require a measured
// distance ≤ dist, exactly as under SchedStatic.
const marginJumpFactor = 2.0

// planWithin routes one within-distance candidate from its MBB bounds.
// The R-tree filter already removed MINDIST/MAXDIST-decisive entries, but
// the whole-object boxes compared here can differ from the (possibly
// sub-object) index entries, so the decisive checks stay for soundness.
// There is deliberately no bounds-based planDirect: measured on nuclei
// data, the box gap fraction lo/dist runs all the way to ~0.97 on pairs
// that ultimately accept, so pre-ladder reject-routing from boxes alone
// misroutes accept-heavy workloads; reject-leaning pairs are instead
// detected mid-ladder from their measured distance (marginJumpFactor).
func planWithin(tb, sb geom.Box3, dist float64) pairPlan {
	hi := tb.MaxDist(sb)
	if hi <= dist {
		return planAccept // true distance ≤ MAXDIST ≤ dist
	}
	if tb.MinDist(sb) > dist {
		return planReject // true distance ≥ MINDIST > dist
	}
	return planWalk
}

// planIntersect routes one intersection candidate. Intersection has no
// predicate threshold, so there is no bounds-only verdict and no margin
// interval; per-pair routing is limited to degenerate contacts — MBBs
// touching with zero-volume overlap — where a face hit would need
// triangles lying exactly in the contact plane: overwhelmingly rejects,
// which only the top LOD can decide, so walking the ladder would evaluate
// them at every LOD for nothing. Every other candidate walks; intersect
// adaptivity otherwise comes from the calibrated ladder.
func planIntersect(tb, sb geom.Box3) pairPlan {
	for ax := 0; ax < 3; ax++ {
		lo := maxFloat(tb.Min.Component(ax), sb.Min.Component(ax))
		hi := minFloat(tb.Max.Component(ax), sb.Max.Component(ax))
		if hi <= lo {
			return planDirect // degenerate contact: no interior overlap
		}
	}
	return planWalk
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
