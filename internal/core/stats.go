package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Stats describes one join execution: the wall-clock time, the per-phase
// breakdown the paper profiles in Fig. 10 (filtering, decompression,
// geometric computation), and the per-LOD evaluation/pruning counts behind
// Fig. 12. Phase times are summed across workers, so they represent CPU
// time and can exceed Elapsed.
type Stats struct {
	Elapsed    time.Duration
	FilterTime time.Duration
	DecodeTime time.Duration
	GeomTime   time.Duration

	// Candidates counts object pairs produced by the filtering step;
	// Results counts pairs in the final answer.
	Candidates int64
	Results    int64

	// Decodes counts actual (cache-missing) decode operations; CacheHits
	// counts decode requests served from the LRU cache during this query.
	Decodes   int64
	CacheHits int64

	// WarmStarts counts cache misses that resumed a retained progressive
	// decoder instead of replaying from LOD 0; RoundsApplied counts decode
	// rounds actually replayed during this query and RoundsSkipped the
	// rounds warm starts reused. The cold-path cost would have been
	// RoundsApplied + RoundsSkipped. Attribution is exact: the engine
	// passes a per-query counter set into every cache call and the cache
	// increments it at the same points it moves its own shard counters, so
	// concurrent queries on one engine never bleed into each other's
	// numbers.
	WarmStarts    int64
	RoundsApplied int64
	RoundsSkipped int64

	// PairsEvaluated[l] and PairsPruned[l] count the candidate pairs that
	// were evaluated at LOD l and the ones settled (accepted or rejected
	// for good) at LOD l. Index len-1 is the highest LOD.
	PairsEvaluated []int64
	PairsPruned    []int64

	// Margin-scheduler counters (see internal/core/sched.go).
	// LODsSkippedByMargin counts ladder entries the margin plan skipped
	// outright — a reject-leaning pair routed straight to the top LOD skips
	// len(ladder)−1 of them; always zero under SchedStatic. BoundsDecisive
	// counts pairs settled by MINDIST/MAXDIST bounds alone, with no decode
	// at the deciding step: the within filter's whole-subtree definite
	// acceptances, margin-plan accept/reject verdicts, and NN candidates
	// pruned before their decode by the shrinking MINMAXDIST threshold
	// (the filter acceptances and NN prunes also occur — and are counted —
	// under SchedStatic, where the same bounds drive §4.2 and Alg. 3).
	LODsSkippedByMargin int64
	BoundsDecisive      int64

	// Partial-failure accounting, populated only under the Degrade error
	// policy. The returned pairs are the certain answer (settled by the
	// PPVP guarantees independently of any failed object); Uncertain lists
	// the (target, source) pairs a failure left unsettled (Source -1 means
	// an unknown candidate set of that target), and UncertainIDs the
	// unsettled objects of single-dataset queries. Degraded lists each
	// skipped object once with its failure.
	Uncertain    []Pair
	UncertainIDs []int64
	Degraded     []ObjectError

	// QuarantineSkips counts decode requests refused because the object's
	// circuit breaker was open; DecodeRetries counts extra decode attempts
	// made under Degrade. Both policies record quarantine activity.
	QuarantineSkips int64
	DecodeRetries   int64
	// DecodeFailures counts this query's failed miss-path decodes. Like the
	// warm-start counters it is attributed exactly to this query, not
	// diffed from the shared cache's global counters.
	DecodeFailures int64

	// BatchesDispatched counts the face-pair batches this query's pipelined
	// executor submitted to the batch evaluator, and BatchPairs the total
	// face pairs those batches spanned (BatchPairs/BatchesDispatched is the
	// mean batch width; the device keeps the full pairs-per-batch histogram
	// for /metrics). Zero under the per-pair executor.
	BatchesDispatched int64
	BatchPairs        int64

	// Trace is the query's aggregated span timeline — one event per
	// (phase, LOD), with counts and first/last/total activity offsets —
	// recorded only when QueryOptions.Trace was set.
	Trace []obs.TraceEvent

	// Shards summarizes the per-shard outcomes of a query the sharded
	// coordinator (internal/shard) scatter-gathered; nil for single-engine
	// queries. The coordinator's counters above are exactly the sum of the
	// per-shard Stats referenced here.
	Shards []ShardStat
}

// ShardStat is one shard's outcome within a coordinated query.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Status is "ok", "error" (all attempts failed), "open" (the shard's
	// circuit breaker refused the call), or "skipped" (the shard holds no
	// objects relevant to the query and was never called).
	Status string `json:"status"`
	// Attempts counts transport attempts made (retries and hedges
	// included); Hedged reports whether a hedge attempt was launched, and
	// HedgeWon whether the hedge produced the accepted response.
	Attempts int  `json:"attempts"`
	Hedged   bool `json:"hedged,omitempty"`
	HedgeWon bool `json:"hedge_won,omitempty"`
	// Replica is the replica-chain index that served the group (0 = the
	// primary, k > 0 = the k-th failover target); -1 when no replica
	// answered. Always 0 in an unreplicated deployment.
	Replica int `json:"replica"`
	// Err is the final error of a failed shard call ("" on success).
	Err string `json:"error,omitempty"`
	// Elapsed is the shard call's wall-clock time as seen by the
	// coordinator (queueing, retries, and transport included).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Stats is the shard's own execution statistics (nil when the shard
	// never produced a response). Σ over non-nil per-shard Stats equals
	// the coordinator's merged counters.
	Stats *Stats `json:"-"`
}

// Merge folds other into s: phase times and counters add, the per-LOD
// slices add element-wise (growing s as needed, so an early-abort shard
// whose slices are short — or nil — never truncates a survivor's), and the
// degradation and shard lists append. Elapsed takes the maximum: per-shard
// wall clocks overlap, so summing them would double-count; coordinators
// overwrite it with their own wall clock anyway. Merging nil (a shard that
// died before producing statistics) is a no-op.
//
// Merge is commutative and associative up to list order: every numeric
// field is order-independent, and the Uncertain/UncertainIDs/Degraded/
// Shards/Trace lists hold the same elements in append order (callers that
// need a canonical order sort after the final merge).
func (s *Stats) Merge(other *Stats) {
	if s == nil || other == nil {
		return
	}
	if other.Elapsed > s.Elapsed {
		s.Elapsed = other.Elapsed
	}
	s.FilterTime += other.FilterTime
	s.DecodeTime += other.DecodeTime
	s.GeomTime += other.GeomTime
	s.Candidates += other.Candidates
	s.Results += other.Results
	s.Decodes += other.Decodes
	s.CacheHits += other.CacheHits
	s.WarmStarts += other.WarmStarts
	s.RoundsApplied += other.RoundsApplied
	s.RoundsSkipped += other.RoundsSkipped
	s.QuarantineSkips += other.QuarantineSkips
	s.DecodeRetries += other.DecodeRetries
	s.DecodeFailures += other.DecodeFailures
	s.BatchesDispatched += other.BatchesDispatched
	s.BatchPairs += other.BatchPairs
	s.LODsSkippedByMargin += other.LODsSkippedByMargin
	s.BoundsDecisive += other.BoundsDecisive
	if n := len(other.PairsEvaluated); n > len(s.PairsEvaluated) {
		s.PairsEvaluated = append(s.PairsEvaluated, make([]int64, n-len(s.PairsEvaluated))...)
	}
	for i, v := range other.PairsEvaluated {
		s.PairsEvaluated[i] += v
	}
	if n := len(other.PairsPruned); n > len(s.PairsPruned) {
		s.PairsPruned = append(s.PairsPruned, make([]int64, n-len(s.PairsPruned))...)
	}
	for i, v := range other.PairsPruned {
		s.PairsPruned[i] += v
	}
	s.Uncertain = append(s.Uncertain, other.Uncertain...)
	s.UncertainIDs = append(s.UncertainIDs, other.UncertainIDs...)
	s.Degraded = append(s.Degraded, other.Degraded...)
	s.Trace = append(s.Trace, other.Trace...)
	s.Shards = append(s.Shards, other.Shards...)
}

// PrunedFraction returns PairsPruned[l] / PairsEvaluated[l] (0 when no
// pairs were evaluated) — the quantity compared against 1/r² in §4.4.
func (s *Stats) PrunedFraction(lod int) float64 {
	if lod < 0 || lod >= len(s.PairsEvaluated) || s.PairsEvaluated[lod] == 0 {
		return 0
	}
	return float64(s.PairsPruned[lod]) / float64(s.PairsEvaluated[lod])
}

// String formats the stats as a one-line summary plus the LOD table.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%v filter=%v decode=%v geom=%v candidates=%d results=%d decodes=%d cacheHits=%d warmStarts=%d roundsApplied=%d roundsSkipped=%d",
		s.Elapsed.Round(time.Microsecond), s.FilterTime.Round(time.Microsecond),
		s.DecodeTime.Round(time.Microsecond), s.GeomTime.Round(time.Microsecond),
		s.Candidates, s.Results, s.Decodes, s.CacheHits,
		s.WarmStarts, s.RoundsApplied, s.RoundsSkipped)
	if s.BatchesDispatched > 0 {
		fmt.Fprintf(&b, " batches=%d batchPairs=%d", s.BatchesDispatched, s.BatchPairs)
	}
	if s.LODsSkippedByMargin > 0 || s.BoundsDecisive > 0 {
		fmt.Fprintf(&b, " marginSkips=%d boundsDecisive=%d", s.LODsSkippedByMargin, s.BoundsDecisive)
	}
	if len(s.Degraded) > 0 || len(s.Uncertain) > 0 || len(s.UncertainIDs) > 0 || s.QuarantineSkips > 0 || s.DecodeFailures > 0 {
		fmt.Fprintf(&b, " degraded=%d uncertain=%d quarantineSkips=%d decodeRetries=%d decodeFailures=%d",
			len(s.Degraded), len(s.Uncertain)+len(s.UncertainIDs), s.QuarantineSkips, s.DecodeRetries, s.DecodeFailures)
	}
	if len(s.Shards) > 0 {
		fmt.Fprintf(&b, " shards=%d", len(s.Shards))
	}
	if len(s.Trace) > 0 {
		fmt.Fprintf(&b, " traceEvents=%d", len(s.Trace))
	}
	for l := range s.PairsEvaluated {
		if s.PairsEvaluated[l] > 0 {
			fmt.Fprintf(&b, " lod%d=%d/%d", l, s.PairsPruned[l], s.PairsEvaluated[l])
		}
	}
	return b.String()
}

// collector accumulates statistics from concurrent workers.
type collector struct {
	filterNs        atomic.Int64
	decodeNs        atomic.Int64
	geomNs          atomic.Int64
	candidates      atomic.Int64
	results         atomic.Int64
	decodes         atomic.Int64
	cacheHits       atomic.Int64
	quarantineSkips atomic.Int64
	decodeRetries   atomic.Int64
	batches         atomic.Int64
	batchPairs      atomic.Int64
	lodsSkipped     atomic.Int64
	boundsDecisive  atomic.Int64
	evaluated       []atomic.Int64
	pruned          []atomic.Int64

	// cacheCtrs is this query's private attribution sink: every cache call
	// the query makes passes it down, and the cache increments it in step
	// with its own shard counters. Reading it at snapshot time therefore
	// yields the query's exact warm-start/rounds/failure numbers, immune to
	// other queries hammering the shared cache concurrently.
	//
	//lint:ignore statsexhaustive Hits/Misses are intentionally unread: the engine counts its own decodes/cacheHits in decodeOnce for per-LOD trace attribution, which the cache-side counters cannot provide
	cacheCtrs cache.Counters

	// tr aggregates span-style trace events when QueryOptions.Trace is set;
	// nil otherwise, and every obs.Recorder method is a no-op on nil, so
	// the hot path pays nothing when tracing is off.
	tr *obs.Recorder
}

func newCollector(maxLOD int, q QueryOptions, start time.Time) *collector {
	c := &collector{
		evaluated: make([]atomic.Int64, maxLOD+1),
		pruned:    make([]atomic.Int64, maxLOD+1),
	}
	if q.Trace {
		c.tr = obs.NewRecorder(start)
	}
	return c
}

// filterPhase times the filtering step and traces it as one span.
func (c *collector) filterPhase(fn func()) {
	t0 := time.Now()
	fn()
	d := time.Since(t0)
	c.filterNs.Add(d.Nanoseconds())
	c.tr.Observe("filter", obs.NoLOD, t0, d)
}

// decodeMiss records a cache-missing decode that started at t0.
func (c *collector) decodeMiss(lod int, t0 time.Time) {
	d := time.Since(t0)
	c.decodeNs.Add(d.Nanoseconds())
	c.tr.Observe("decode", lod, t0, d)
}

// cacheHit records a decode request served from the cache.
func (c *collector) cacheHit(lod int) {
	c.cacheHits.Add(1)
	c.tr.Count("cache_hit", lod, 1)
}

// geomDone records a geometric evaluation that started at t0. Call it via
// defer with time.Now() as the argument — arguments are evaluated at defer
// time, so no timing closure is needed.
func (c *collector) geomDone(lod int, t0 time.Time) {
	d := time.Since(t0)
	c.geomNs.Add(d.Nanoseconds())
	c.tr.Observe("geom", lod, t0, d)
}

// geomBatch credits one batch-kernel launch's wall time to the geometry
// phase. SoA launches span pairs at multiple LODs, so the span carries no
// single LOD.
func (c *collector) geomBatch(d time.Duration) {
	c.geomNs.Add(d.Nanoseconds())
	c.tr.Observe("geom", obs.NoLOD, time.Now().Add(-d), d)
}

// evalPair counts one candidate pair evaluated at lod.
func (c *collector) evalPair(lod int) {
	c.evaluated[lod].Add(1)
	c.tr.Count("evaluate", lod, 1)
}

// settlePair counts one candidate pair settled (accepted or rejected for
// good) at lod.
func (c *collector) settlePair(lod int) {
	c.pruned[lod].Add(1)
	c.tr.Count("settle", lod, 1)
}

// skipLODs counts n ladder entries the margin plan skipped for one pair.
func (c *collector) skipLODs(n int) {
	if n > 0 {
		c.lodsSkipped.Add(int64(n))
	}
}

// boundsDecided counts one pair settled by filter-phase bounds alone.
func (c *collector) boundsDecided() { c.boundsDecisive.Add(1) }

func (c *collector) snapshot(elapsed time.Duration) *Stats {
	s := &Stats{
		Elapsed:             elapsed,
		FilterTime:          time.Duration(c.filterNs.Load()),
		DecodeTime:          time.Duration(c.decodeNs.Load()),
		GeomTime:            time.Duration(c.geomNs.Load()),
		Candidates:          c.candidates.Load(),
		Results:             c.results.Load(),
		Decodes:             c.decodes.Load(),
		CacheHits:           c.cacheHits.Load(),
		QuarantineSkips:     c.quarantineSkips.Load(),
		DecodeRetries:       c.decodeRetries.Load(),
		BatchesDispatched:   c.batches.Load(),
		BatchPairs:          c.batchPairs.Load(),
		LODsSkippedByMargin: c.lodsSkipped.Load(),
		BoundsDecisive:      c.boundsDecisive.Load(),
		WarmStarts:          c.cacheCtrs.WarmStarts.Load(),
		RoundsApplied:       c.cacheCtrs.RoundsApplied.Load(),
		RoundsSkipped:       c.cacheCtrs.RoundsSkipped.Load(),
		DecodeFailures:      c.cacheCtrs.DecodeFailures.Load(),
		PairsEvaluated:      make([]int64, len(c.evaluated)),
		PairsPruned:         make([]int64, len(c.pruned)),
		Trace:               c.tr.Events(),
	}
	for i := range c.evaluated {
		s.PairsEvaluated[i] = c.evaluated[i].Load()
		s.PairsPruned[i] = c.pruned[i].Load()
	}
	return s
}
