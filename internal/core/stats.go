package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cache"
)

// Stats describes one join execution: the wall-clock time, the per-phase
// breakdown the paper profiles in Fig. 10 (filtering, decompression,
// geometric computation), and the per-LOD evaluation/pruning counts behind
// Fig. 12. Phase times are summed across workers, so they represent CPU
// time and can exceed Elapsed.
type Stats struct {
	Elapsed    time.Duration
	FilterTime time.Duration
	DecodeTime time.Duration
	GeomTime   time.Duration

	// Candidates counts object pairs produced by the filtering step;
	// Results counts pairs in the final answer.
	Candidates int64
	Results    int64

	// Decodes counts actual (cache-missing) decode operations; CacheHits
	// counts decode requests served from the LRU cache during this query.
	Decodes   int64
	CacheHits int64

	// WarmStarts counts cache misses that resumed a retained progressive
	// decoder instead of replaying from LOD 0; RoundsApplied counts decode
	// rounds actually replayed during this query and RoundsSkipped the
	// rounds warm starts reused. The cold-path cost would have been
	// RoundsApplied + RoundsSkipped. Counters are deltas of the shared
	// engine cache, so concurrent queries on one engine can bleed into each
	// other's numbers.
	WarmStarts    int64
	RoundsApplied int64
	RoundsSkipped int64

	// PairsEvaluated[l] and PairsPruned[l] count the candidate pairs that
	// were evaluated at LOD l and the ones settled (accepted or rejected
	// for good) at LOD l. Index len-1 is the highest LOD.
	PairsEvaluated []int64
	PairsPruned    []int64

	// Partial-failure accounting, populated only under the Degrade error
	// policy. The returned pairs are the certain answer (settled by the
	// PPVP guarantees independently of any failed object); Uncertain lists
	// the (target, source) pairs a failure left unsettled (Source -1 means
	// an unknown candidate set of that target), and UncertainIDs the
	// unsettled objects of single-dataset queries. Degraded lists each
	// skipped object once with its failure.
	Uncertain    []Pair
	UncertainIDs []int64
	Degraded     []ObjectError

	// QuarantineSkips counts decode requests refused because the object's
	// circuit breaker was open; DecodeRetries counts extra decode attempts
	// made under Degrade. Both policies record quarantine activity.
	QuarantineSkips int64
	DecodeRetries   int64
	// DecodeFailures is the engine cache's failed-decode delta during this
	// query (like the warm-start counters, concurrent queries on one engine
	// can bleed into each other's numbers).
	DecodeFailures int64
}

// PrunedFraction returns PairsPruned[l] / PairsEvaluated[l] (0 when no
// pairs were evaluated) — the quantity compared against 1/r² in §4.4.
func (s *Stats) PrunedFraction(lod int) float64 {
	if lod < 0 || lod >= len(s.PairsEvaluated) || s.PairsEvaluated[lod] == 0 {
		return 0
	}
	return float64(s.PairsPruned[lod]) / float64(s.PairsEvaluated[lod])
}

// captureCache folds the engine cache's counter movement between two
// snapshots (taken at query start and end) into the query stats.
func (s *Stats) captureCache(before, after cache.Stats) {
	d := after.Sub(before)
	s.WarmStarts = d.WarmStarts
	s.RoundsApplied = d.RoundsApplied
	s.RoundsSkipped = d.RoundsSkipped
	s.DecodeFailures = d.DecodeFailures
}

// String formats the stats as a one-line summary plus the LOD table.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%v filter=%v decode=%v geom=%v candidates=%d results=%d decodes=%d cacheHits=%d warmStarts=%d roundsApplied=%d roundsSkipped=%d",
		s.Elapsed.Round(time.Microsecond), s.FilterTime.Round(time.Microsecond),
		s.DecodeTime.Round(time.Microsecond), s.GeomTime.Round(time.Microsecond),
		s.Candidates, s.Results, s.Decodes, s.CacheHits,
		s.WarmStarts, s.RoundsApplied, s.RoundsSkipped)
	if len(s.Degraded) > 0 || len(s.Uncertain) > 0 || len(s.UncertainIDs) > 0 || s.QuarantineSkips > 0 {
		fmt.Fprintf(&b, " degraded=%d uncertain=%d quarantineSkips=%d decodeRetries=%d",
			len(s.Degraded), len(s.Uncertain)+len(s.UncertainIDs), s.QuarantineSkips, s.DecodeRetries)
	}
	for l := range s.PairsEvaluated {
		if s.PairsEvaluated[l] > 0 {
			fmt.Fprintf(&b, " lod%d=%d/%d", l, s.PairsPruned[l], s.PairsEvaluated[l])
		}
	}
	return b.String()
}

// collector accumulates statistics from concurrent workers.
type collector struct {
	filterNs        atomic.Int64
	decodeNs        atomic.Int64
	geomNs          atomic.Int64
	candidates      atomic.Int64
	results         atomic.Int64
	decodes         atomic.Int64
	cacheHits       atomic.Int64
	quarantineSkips atomic.Int64
	decodeRetries   atomic.Int64
	evaluated       []atomic.Int64
	pruned          []atomic.Int64
}

func newCollector(maxLOD int) *collector {
	return &collector{
		evaluated: make([]atomic.Int64, maxLOD+1),
		pruned:    make([]atomic.Int64, maxLOD+1),
	}
}

func (c *collector) snapshot(elapsed time.Duration) *Stats {
	s := &Stats{
		Elapsed:         elapsed,
		FilterTime:      time.Duration(c.filterNs.Load()),
		DecodeTime:      time.Duration(c.decodeNs.Load()),
		GeomTime:        time.Duration(c.geomNs.Load()),
		Candidates:      c.candidates.Load(),
		Results:         c.results.Load(),
		Decodes:         c.decodes.Load(),
		CacheHits:       c.cacheHits.Load(),
		QuarantineSkips: c.quarantineSkips.Load(),
		DecodeRetries:   c.decodeRetries.Load(),
		PairsEvaluated:  make([]int64, len(c.evaluated)),
		PairsPruned:     make([]int64, len(c.pruned)),
	}
	for i := range c.evaluated {
		s.PairsEvaluated[i] = c.evaluated[i].Load()
		s.PairsPruned[i] = c.pruned[i].Load()
	}
	return s
}
