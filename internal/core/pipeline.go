package core

// The pipelined batch refinement executor: the refine stage of IntersectJoin
// and WithinJoin restructured as four overlapped stages —
//
//	feeder (filter) → decode → pack → evaluate → gather
//
// The feeder runs the unchanged filtering step under runPerTarget and emits
// one work item per candidate pair at the bottom of the LOD ladder. Decode
// workers pull items from an unbounded queue and attach the two meshes at
// the item's current LOD (through the same guarded cache path as the
// per-pair executor, so quarantine, retries, and degrade semantics are
// identical). The pack stage folds decoded items into contiguous batches of
// gpusim.PairTask — SoA cross products under BruteForce, host closures for
// the tree/partition/GPU accelerators — and submits them to a
// double-buffered device stream. The gather stage collects verdicts in
// submission order and settles each pair exactly like the per-pair ladder
// would: accept, reject-at-top-LOD, or requeue at the next LOD.
//
// Decoding LOD k+1 of one pair therefore overlaps evaluation of LOD k of
// another, and the BruteForce tri-tri inner loops run over flat SoA lanes
// with per-pair box gating instead of pointer-heavy []Triangle values.
//
// Deadlock freedom: the only cycle in the stage graph is gather → decode
// (requeueing a surviving pair at the next LOD). The decode queue is
// unbounded, so the gather stage never blocks pushing to it; backpressure is
// applied at the stream (Submit blocks at StreamDepth in-flight launches),
// which gather alone drains. Termination: every emitted pair is settled
// exactly once (result, rejection, degrade-uncertain, or cancellation drop);
// when the feeder has finished and the outstanding count reaches zero the
// queue closes and the stages unwind in order.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpusim"
	"repro/internal/index/rtree"
	"repro/internal/quarantine"
	"repro/internal/storage"
)

// joinKind selects the predicate the pipeline evaluates.
type joinKind int

const (
	joinIntersect joinKind = iota
	joinWithin
)

func (k joinKind) queryKind() QueryKind {
	if k == joinWithin {
		return WithinKind
	}
	return IntersectKind
}

// maxBatchTasks caps the pair tasks per submitted batch, bounding gather
// latency and the memory pinned by an in-flight launch.
const maxBatchTasks = 64

// taskBufPool recycles the pack stage's batch buffers; the gather stage
// returns each buffer after processing its verdicts, so steady-state
// batching allocates nothing per batch.
var taskBufPool = sync.Pool{New: func() any {
	s := make([]gpusim.PairTask, 0, maxBatchTasks)
	return &s
}}

// pairWork is one candidate pair riding the pipeline. The same item is
// requeued with li advanced until the pair settles, so the pipeline
// allocates one item per candidate pair, not one per (pair, LOD).
type pairWork struct {
	t, s int64
	li   int // index into the LOD ladder
	// to and so are the decoded objects at lods[li], attached by the
	// decode stage and dropped again on requeue.
	to, so obj
}

// pairQueue is the unbounded MPMC queue feeding the decode stage. Unbounded
// is load-bearing: the gather stage requeues surviving pairs here and must
// never block, or the gather→decode cycle could deadlock against the
// stream's backpressure.
type pairQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []*pairWork
	head   int
	closed bool
}

func newPairQueue() *pairQueue {
	q := &pairQueue{}
	q.cond.L = &q.mu
	return q
}

func (q *pairQueue) push(w *pairWork) {
	q.mu.Lock()
	if !q.closed {
		// Compact the consumed prefix once it dominates the backing array.
		if q.head > 64 && q.head*2 >= len(q.items) {
			n := copy(q.items, q.items[q.head:])
			q.items = q.items[:n]
			q.head = 0
		}
		q.items = append(q.items, w)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

func (q *pairQueue) pop() (*pairWork, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return nil, false
	}
	w := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	return w, true
}

func (q *pairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// pipelinedJoin executes IntersectJoin (dist ignored) or WithinJoin through
// the batch pipeline. It is proven result-equal to the per-pair executor by
// the equivalence and property suites; the per-pair path remains the
// reference semantics.
func (e *Engine) pipelinedJoin(ctx context.Context, kind joinKind, target, source *Dataset, dist float64, q QueryOptions) ([]Pair, *Stats, error) {
	start := time.Now()
	col := newCollector(source.maxLOD, q, start)
	ec := newEvalCtx(e, q, col)
	workers := q.workers(e)
	// The pipeline has more concurrent actors than the per-pair executor:
	// feeder slots [0,W), decode slots [W,2W), and the gather slot 2W. The
	// degrader's per-slot buffers are sized accordingly; the feeder's filter
	// scratch keeps its W slots.
	gatherSlot := 2 * workers
	if ec.deg != nil {
		ec.deg = newDegrader(gatherSlot+1, q.ErrorBudget)
	}
	lods := e.schedule(&q, minInt(target.maxLOD, source.maxLOD), kind.queryKind())
	ftree := source.filterTree(q.Accel)
	sink := newResultSink(workers + 1)
	gatherSink := workers // sink slot owned by the gather goroutine

	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel(err)
		})
	}

	// upper is the distance bound handed to the evaluators under joinWithin,
	// matching the per-pair executor's call sites; upper2 seeds the SoA
	// distance kernels (squared, inflated so a distance exactly equal to the
	// bound is still found and returned exactly). Under margin scheduling a
	// second, widened bound pair serves the ladder rungs from which a jump
	// can still skip an entry (li two or more below the top): measured
	// distances up to marginJumpFactor·dist stay exact there — the gather
	// stage's jump signal (see sched.go) — while the final two rungs keep
	// the narrow bound, since a deeper search would buy nothing. Accepts
	// still require d ≤ dist under either bound, identical to the static
	// path.
	upper := math.Inf(1)
	upper2 := math.Inf(1)
	wideUpper, wideUpper2 := upper, upper2
	if kind == joinWithin {
		seed := func(u float64) (float64, float64) {
			u2 := u * u * nextAfterFactor
			if u2 == 0 {
				// dist == 0: keep the seed strictly above zero so touching
				// pairs (true distance exactly 0) still beat the bound.
				u2 = math.SmallestNonzeroFloat64
			}
			return u, u2
		}
		upper, upper2 = seed(dist * (1 + 1e-12))
		wideUpper, wideUpper2 = upper, upper2
		if q.marginSched() {
			wideUpper, wideUpper2 = seed(dist * marginJumpFactor * (1 + 1e-12))
		}
	}

	queue := newPairQueue()
	var outstanding atomic.Int64
	var feederDone atomic.Bool
	maybeClose := func() {
		if feederDone.Load() && outstanding.Load() == 0 {
			queue.close()
		}
	}
	// settle marks one pair finished (result, rejection, uncertain, or
	// cancellation drop); the last settle after the feeder finished closes
	// the queue and lets the stages unwind.
	settle := func() {
		if outstanding.Add(-1) == 0 {
			maybeClose()
		}
	}

	// Stage 1 — feeder: the unchanged filtering step, emitting pairs at the
	// ladder's first LOD. Within-distance whole-subtree acceptances need no
	// geometry and go to the sink straight from the feeder's slot.
	feedErr := make(chan error, 1)
	go func() {
		err := runPerTarget(ctx, target, workers, func(w int, o *storage.Object) error {
			sc := ec.scratch[w].reset()
			if kind == joinIntersect {
				ec.filterIntersect(ftree, target, source, o, sc)
			} else {
				ec.filterWithin(ftree, target, source, o, sc, dist)
			}
			col.candidates.Add(int64(len(sc.def) + len(sc.ids)))
			sortIDs(sc.def)
			for _, id := range sc.def {
				col.boundsDecided() // filter-phase MAXDIST acceptance, no decode
				sink.add(w, Pair{Target: o.ID, Source: id})
				col.results.Add(1)
			}
			sortIDs(sc.ids)
			// Margin plan (sched.go): settle bounds-decisive pairs here in
			// the feeder — they never enter the pipeline at all — and emit
			// reject-leaning pairs at the top of the ladder instead of the
			// bottom. Routing never changes a verdict, only where it is
			// reached, so the pipeline stays result-equal to the per-pair
			// reference under either scheduler.
			margin := q.marginSched()
			topLI := len(lods) - 1
			tb := o.MBB()
			for _, id := range sc.ids {
				li := 0
				if margin {
					if so := source.Tileset.Object(id); so != nil {
						if kind == joinWithin {
							switch planWithin(tb, so.MBB(), dist) {
							case planAccept:
								col.boundsDecided()
								sink.add(w, Pair{Target: o.ID, Source: id})
								col.results.Add(1)
								continue
							case planReject:
								col.boundsDecided()
								continue
							}
						} else if planIntersect(tb, so.MBB()) == planDirect {
							col.skipLODs(topLI)
							li = topLI
						}
					}
				}
				outstanding.Add(1)
				queue.push(&pairWork{t: o.ID, s: id, li: li})
			}
			return nil
		}, ec.deg.backstop(e, target))
		feederDone.Store(true)
		maybeClose()
		feedErr <- err
	}()

	// Stage 2 — decode workers: attach both meshes at the item's current
	// LOD through the guarded cache path. Failures follow the per-pair
	// degrade contract: record the object once, mark this pair uncertain,
	// abort under FailFast or on budget/context errors.
	ready := make(chan *pairWork, 4*workers)
	var decWG sync.WaitGroup
	for i := 0; i < workers; i++ {
		slot := workers + i
		decWG.Add(1)
		go func() {
			defer decWG.Done()
			for {
				w, ok := queue.pop()
				if !ok {
					return
				}
				if ctx.Err() != nil {
					settle()
					continue
				}
				if !ec.decodePair(target, source, w, lods[w.li], slot, fail) {
					settle()
					continue
				}
				select {
				case ready <- w:
				case <-ctx.Done():
					settle()
				}
			}
		}()
	}
	go func() {
		decWG.Wait()
		close(ready)
	}()

	// Stage 3 — pack: fold decoded pairs into contiguous batches and submit
	// them to the double-buffered stream. A batch flushes when full or when
	// no further input is immediately available, so a trickle of pairs never
	// stalls behind a half-built batch.
	stream := e.dev.NewStream()
	if q.Accel == BruteForce {
		// SoA kernels have no per-call geometry accounting of their own;
		// credit each launch's wall time to the geometry phase. Host tasks
		// (every other accelerator) self-account inside ec.intersects /
		// ec.minDist, exactly like the per-pair executor.
		stream.OnBatchDone = col.geomBatch
	}
	packDone := make(chan struct{})
	go func() {
		defer close(packDone)
		defer stream.CloseSubmit()
		ec.packLoop(ctx, kind, ready, stream, lods, upper, upper2, wideUpper, wideUpper2)
	}()

	// Stage 4 — gather: settle verdicts in submission order, requeueing
	// survivors at the next LOD.
	gatherDone := make(chan struct{})
	go func() {
		defer close(gatherDone)
		for {
			tasks, verdicts, ok := stream.Collect()
			if !ok {
				return
			}
			for i := range tasks {
				w := tasks[i].Tag.(*pairWork)
				if ctx.Err() != nil {
					settle()
					continue
				}
				requeued, err := ec.gatherOne(kind, target, source, &tasks[i], verdicts[i], lods, dist, sink, gatherSink)
				if err != nil {
					ec.gatherFailure(gatherSlot, target, w, err, fail)
					settle()
					continue
				}
				if requeued {
					queue.push(w)
				} else {
					settle()
				}
			}
			e.dev.PutVerdicts(verdicts)
			tasks = tasks[:0]
			taskBufPool.Put(&tasks)
		}
	}()

	if err := <-feedErr; err != nil {
		fail(err)
	}
	<-packDone
	<-gatherDone
	// All stage goroutines have exited (packDone implies the decode workers
	// finished), so firstErr is stable.
	if firstErr == nil && ctx.Err() != nil {
		// The stages drop pairs silently on cancellation; surface the cause
		// the way runPerTarget does for the per-pair executor.
		firstErr = context.Cause(ctx)
	}
	if firstErr != nil {
		return nil, ec.finish(start), firstErr
	}
	st := ec.finish(start)
	if q.Paradigm == FPR {
		e.cal.observe(kind.queryKind(), st)
	}
	return sink.sorted(), st, nil
}

// filterIntersect is the IntersectJoin filtering step, verbatim from the
// per-pair executor: MBB intersection against the global index with
// per-worker dedup scratch.
func (c *evalCtx) filterIntersect(tree *rtree.Tree, target, source *Dataset, o *storage.Object, sc *filterScratch) {
	c.col.filterPhase(func() {
		tree.SearchIntersect(o.MBB(), func(ent rtree.Entry) bool {
			if target.seq == source.seq && ent.ID == o.ID {
				return true
			}
			if _, dup := sc.seen[ent.ID]; !dup {
				sc.seen[ent.ID] = struct{}{}
				sc.ids = append(sc.ids, ent.ID)
			}
			return true
		})
	})
}

// filterWithin is the WithinJoin filtering step, verbatim from the per-pair
// executor: MINDIST/MAXDIST pruning splits the index answer into definite
// acceptances (sc.def) and refinement candidates (sc.ids).
func (c *evalCtx) filterWithin(tree *rtree.Tree, target, source *Dataset, o *storage.Object, sc *filterScratch, dist float64) {
	c.col.filterPhase(func() {
		r := tree.SearchWithin(o.MBB(), dist)
		for _, ent := range r.Definite {
			if target.seq == source.seq && ent.ID == o.ID {
				continue
			}
			if _, dup := sc.seen[ent.ID]; dup {
				continue
			}
			sc.seen[ent.ID] = struct{}{}
			sc.def = append(sc.def, ent.ID)
		}
		for _, ent := range r.Candidates {
			if target.seq == source.seq && ent.ID == o.ID {
				continue
			}
			if _, dup := sc.seen[ent.ID]; dup {
				continue
			}
			sc.seen[ent.ID] = struct{}{}
			sc.ids = append(sc.ids, ent.ID)
		}
	})
}

// decodePair attaches both meshes of w at lod, returning false when the pair
// is finished (decode failure — recorded per the degrade contract, or
// aborting the query via fail). A panic out of the FailFast decode path is
// converted to the same per-object error shape the per-pair executor's
// callRecovered would produce.
func (c *evalCtx) decodePair(target, source *Dataset, w *pairWork, lod, slot int, fail func(error)) (ok bool) {
	handle := func(ds *Dataset, id int64, err error) {
		skip, aerr := c.degradeErr(slot, ds, id, err)
		if !skip {
			fail(aerr)
			return
		}
		c.deg.uncertain(slot, Pair{Target: w.t, Source: w.s})
	}
	defer func() {
		if r := recover(); r != nil {
			handle(target, w.t, fmt.Errorf("core: worker panic on object %d: %v", w.t, r))
			ok = false
		}
	}()
	to, err := c.decode(target, w.t, lod)
	if err != nil {
		handle(target, w.t, err)
		return false
	}
	so, err := c.decode(source, w.s, lod)
	if err != nil {
		handle(source, w.s, err)
		return false
	}
	w.to, w.so = to, so
	return true
}

// packLoop drains ready into batches and submits them. Counting evalPair at
// pack time mirrors the per-pair executor, which counts immediately before
// each evaluation.
func (c *evalCtx) packLoop(ctx context.Context, kind joinKind, ready <-chan *pairWork, stream *gpusim.Stream, lods []int, upper, upper2, wideUpper, wideUpper2 float64) {
	buf := taskBufPool.Get().(*[]gpusim.PairTask)
	batch := (*buf)[:0]
	var batchPairs int64
	aborted := false

	flush := func() {
		if len(batch) == 0 {
			return
		}
		c.col.batches.Add(1)
		c.col.batchPairs.Add(batchPairs)
		batchPairs = 0
		*buf = batch
		stream.Submit(batch)
		buf = taskBufPool.Get().(*[]gpusim.PairTask)
		batch = (*buf)[:0]
	}
	add := func(w *pairWork) {
		if ctx.Err() != nil && !aborted {
			// The query is aborting: stop burning kernels, but keep routing
			// pairs through so the gather stage settles every one of them.
			stream.Abort()
			aborted = true
		}
		c.col.evalPair(lods[w.li])
		batchPairs += int64(w.to.mesh.NumFaces()) * int64(w.so.mesh.NumFaces())
		// Widened bound only where a jump can still skip a ladder entry.
		u, u2 := upper, upper2
		if w.li < len(lods)-2 {
			u, u2 = wideUpper, wideUpper2
		}
		batch = append(batch, c.makeTask(kind, w, u, u2))
		if len(batch) >= maxBatchTasks {
			flush()
		}
	}

	for {
		if len(batch) == 0 {
			w, ok := <-ready
			if !ok {
				break
			}
			add(w)
			continue
		}
		select {
		case w, ok := <-ready:
			if !ok {
				flush()
				return
			}
			add(w)
		default:
			flush()
		}
	}
	flush()
}

// makeTask turns one decoded pair into its batch task. Under BruteForce the
// pair becomes a flat SoA cross product evaluated by the batch kernels;
// every other accelerator wraps the per-pair evaluator in a host closure so
// the accelerated paths (and their self-accounting) are reused bit-for-bit.
// Host within-closures return the evaluator's plain distance in D2 (not its
// square) so the gather stage can apply the per-pair comparison verbatim.
func (c *evalCtx) makeTask(kind joinKind, w *pairWork, upper, upper2 float64) gpusim.PairTask {
	if c.opts.Accel == BruteForce {
		if kind == joinIntersect {
			return gpusim.PairTask{Kind: gpusim.PairIntersect, A: w.to.mesh.SoA(), B: w.so.mesh.SoA(), Tag: w}
		}
		return gpusim.PairTask{Kind: gpusim.PairMinDist, A: w.to.mesh.SoA(), B: w.so.mesh.SoA(), Upper2: upper2, Tag: w}
	}
	if kind == joinIntersect {
		return gpusim.PairTask{Kind: gpusim.PairHost, Tag: w, Fn: func() gpusim.PairVerdict {
			return gpusim.PairVerdict{Hit: c.intersects(w.to, w.so)}
		}}
	}
	return gpusim.PairTask{Kind: gpusim.PairHost, Tag: w, Fn: func() gpusim.PairVerdict {
		return gpusim.PairVerdict{D2: c.minDist(w.to, w.so, upper)}
	}}
}

// gatherOne settles one verdict. requeued=true means the pair survived this
// LOD and was advanced (the caller pushes it back to the decode queue); a
// non-nil error is a host-closure or kernel failure for the caller's degrade
// handling. The accept/reject logic is a transcription of the per-pair
// ladder bodies in IntersectJoin and WithinJoin.
func (c *evalCtx) gatherOne(kind joinKind, target, source *Dataset, task *gpusim.PairTask, v gpusim.PairVerdict, lods []int, dist float64, sink *resultSink, sinkSlot int) (requeued bool, err error) {
	w := task.Tag.(*pairWork)
	if v.Err != nil {
		return false, v.Err
	}
	defer func() {
		if r := recover(); r != nil {
			requeued = false
			err = fmt.Errorf("core: worker panic on object %d: %v", w.t, r)
		}
	}()
	lod := lods[w.li]
	last := w.li == len(lods)-1

	if kind == joinWithin {
		// Reconstruct the per-pair decision d ≤ dist. SoA verdicts carry the
		// squared distance — or the untouched seed, meaning "no pair beat
		// the bound", which implies the true distance exceeds dist. Host
		// verdicts carry the evaluator's plain distance already.
		accept := false
		if task.Kind == gpusim.PairMinDist {
			if v.D2 < task.Upper2 {
				accept = math.Sqrt(v.D2) <= dist
			}
		} else {
			accept = v.D2 <= dist
		}
		if accept {
			c.col.settlePair(lod)
			sink.add(sinkSlot, Pair{Target: w.t, Source: w.s})
			c.col.results.Add(1)
			return false, nil
		}
		if last {
			c.col.settlePair(lod) // settled by rejection at top LOD
			return false, nil
		}
		if c.opts.marginSched() && w.li < len(lods)-2 {
			// Margin jump (sched.go): an untouched SoA seed means the true
			// distance exceeds the widened bound; host verdicts carry the
			// plain distance. Either way the pair measured over
			// marginJumpFactor·dist — overwhelmingly a reject — and requeues
			// at the top LOD instead of the next ladder entry. (At the rung
			// just below the top the pack stage kept the narrow bound and a
			// jump would skip nothing, so the pair simply walks.)
			jump := false
			if task.Kind == gpusim.PairMinDist {
				jump = v.D2 >= task.Upper2 || math.Sqrt(v.D2) > dist*marginJumpFactor
			} else {
				jump = v.D2 > dist*marginJumpFactor
			}
			if jump {
				topLI := len(lods) - 1
				c.col.skipLODs(topLI - w.li - 1)
				w.li = topLI
				w.to, w.so = obj{}, obj{}
				return true, nil
			}
		}
		w.li++
		w.to, w.so = obj{}, obj{}
		return true, nil
	}

	// joinIntersect: a face hit — or, for MBB-nested pairs, a vertex of one
	// low-LOD mesh inside the other low-LOD solid (sound by the PPVP subset
	// property) — settles the pair at this LOD.
	hit := v.Hit
	if !hit {
		oMBB := target.Tileset.Object(w.t).MBB()
		cMBB := source.Tileset.Object(w.s).MBB()
		if oMBB.Contains(cMBB) && len(w.so.mesh.Vertices) > 0 {
			hit = c.pointInside(w.to, w.so.mesh.Vertices[0])
		} else if cMBB.Contains(oMBB) && len(w.to.mesh.Vertices) > 0 {
			hit = c.pointInside(w.so, w.to.mesh.Vertices[0])
		}
	}
	if hit {
		c.col.settlePair(lod)
		sink.add(sinkSlot, Pair{Target: w.t, Source: w.s})
		c.col.results.Add(1)
		return false, nil
	}
	if last {
		// Containment handling at the highest LOD (Alg. 1, steps 8–12);
		// both meshes are already decoded at the top LOD here.
		if c.containsObject(w.to, w.so) || c.containsObject(w.so, w.to) {
			sink.add(sinkSlot, Pair{Target: w.t, Source: w.s})
			c.col.results.Add(1)
		}
		return false, nil
	}
	w.li++
	w.to, w.so = obj{}, obj{}
	return true, nil
}

// gatherFailure applies the degrade contract to an evaluation failure: the
// target object is quarantined and recorded (mirroring the per-pair
// executor's backstop), the pair marked uncertain; FailFast aborts.
func (c *evalCtx) gatherFailure(slot int, target *Dataset, w *pairWork, err error, fail func(error)) {
	if c.deg == nil || isCtxErr(err) {
		fail(err)
		return
	}
	c.e.quar.Failure(quarantine.Key{Dataset: target.seq, Object: w.t}, firstLine(err.Error()))
	if aerr := c.deg.fail(slot, target, w.t, err); aerr != nil {
		fail(aerr)
		return
	}
	c.deg.uncertain(slot, Pair{Target: w.t, Source: w.s})
}
