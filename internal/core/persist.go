package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/geom"
	"repro/internal/index/rtree"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/ppvp"
	"repro/internal/quarantine"
	"repro/internal/storage"
)

// datasetManifest is the JSON sidecar stored next to the tile files. Tiles
// hold the compressed objects; the manifest records the grid geometry so a
// load rebuilds identical cuboid assignments. Indexes and skeletons are
// rebuilt on load (they are derived data).
type datasetManifest struct {
	Name                 string     `json:"name"`
	SpaceMin             [3]float64 `json:"space_min"`
	SpaceMax             [3]float64 `json:"space_max"`
	Nx                   int        `json:"nx"`
	Ny                   int        `json:"ny"`
	Nz                   int        `json:"nz"`
	PartitionTargetFaces int        `json:"partition_target_faces"`
	// Objects is the saved object count (0 in pre-existing manifests). A
	// salvage load uses it to account for trailing objects whose records
	// were destroyed — without it, an object with the highest ID could
	// vanish without a trace in the report.
	Objects int `json:"objects,omitempty"`
}

const manifestFile = "dataset.json"

// SaveDataset persists a dataset as tile files plus a manifest under dir.
// The layout matches the paper's storage design: one file per cuboid with
// the compressed blobs of its objects, loadable back into memory as a unit.
func (d *Dataset) SaveDataset(dir string) error {
	if err := d.Tileset.SaveTiles(dir); err != nil {
		return err
	}
	g := d.Tileset.Grid
	man := datasetManifest{
		Name:     d.Name,
		SpaceMin: [3]float64{g.Space.Min.X, g.Space.Min.Y, g.Space.Min.Z},
		SpaceMax: [3]float64{g.Space.Max.X, g.Space.Max.Y, g.Space.Max.Z},
		Nx:       g.Nx, Ny: g.Ny, Nz: g.Nz,
		PartitionTargetFaces: d.partitionTargetFaces,
		Objects:              d.Len(),
	}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	// Atomic replace: a crash mid-save never leaves a truncated manifest
	// masking the tiles already on disk.
	return storage.AtomicWriteFile(filepath.Join(dir, manifestFile), blob, 0o644)
}

// loadManifest reads and validates the dataset manifest of dir, returning
// the recorded grid geometry.
func loadManifest(dir string) (datasetManifest, storage.Grid, error) {
	var man datasetManifest
	blob, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return man, storage.Grid{}, fmt.Errorf("core: reading dataset manifest: %w", err)
	}
	if err := json.Unmarshal(blob, &man); err != nil {
		return man, storage.Grid{}, fmt.Errorf("core: parsing dataset manifest: %w", err)
	}
	grid := storage.Grid{
		Space: geom.Box3{
			Min: geom.V(man.SpaceMin[0], man.SpaceMin[1], man.SpaceMin[2]),
			Max: geom.V(man.SpaceMax[0], man.SpaceMax[1], man.SpaceMax[2]),
		},
		Nx: man.Nx, Ny: man.Ny, Nz: man.Nz,
	}
	return man, grid, nil
}

// LoadDataset restores a dataset saved with SaveDataset: tiles are read
// back, and the R-trees and skeletons are rebuilt from the compressed
// objects (decoding the highest LOD once per object when partitioning was
// enabled).
func (e *Engine) LoadDataset(dir string) (*Dataset, error) {
	man, grid, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	ts, err := storage.LoadTiles(dir, grid)
	if err != nil {
		return nil, err
	}
	if len(ts.Objects) == 0 {
		return nil, fmt.Errorf("core: dataset in %s has no objects", dir)
	}
	if man.Objects > 0 && man.Objects != len(ts.Objects) {
		return nil, fmt.Errorf("core: dataset in %s has %d objects, manifest says %d",
			dir, len(ts.Objects), man.Objects)
	}

	d := &Dataset{
		Name:                 man.Name,
		seq:                  e.nextSeq.Add(1),
		Tileset:              ts,
		maxLOD:               ts.Objects[0].Comp.MaxLOD(),
		partitionTargetFaces: man.PartitionTargetFaces,
	}
	entries := make([]rtree.Entry, len(ts.Objects))
	for i, o := range ts.Objects {
		if o.Comp.MaxLOD() < d.maxLOD {
			d.maxLOD = o.Comp.MaxLOD()
		}
		entries[i] = rtree.Entry{Box: o.MBB(), ID: o.ID}
	}
	d.tree = rtree.BulkLoad(entries)

	if man.PartitionTargetFaces > 0 {
		if err := d.rebuildPartitions(e, man.PartitionTargetFaces, nil); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// LoadDatasetSalvage restores as much of a damaged dataset as possible:
// tiles are read in salvage mode (per-object checksums let undamaged
// objects survive a corrupted neighbor), every object that could not be
// loaded is quarantined under the new dataset's sequence number, and the
// returned report says exactly what was skipped. The load fails only when
// the manifest is unreadable or no object survives — anything less is a
// degraded success.
func (e *Engine) LoadDatasetSalvage(dir string) (*Dataset, *storage.SalvageReport, error) {
	man, grid, err := loadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	ts, rep, err := storage.LoadTilesSalvage(dir, grid)
	if err != nil {
		return nil, nil, err
	}
	// The tileset is sized by the highest surviving ID; the manifest's count
	// restores the trailing holes whose records were destroyed outright.
	for len(ts.Objects) < man.Objects {
		ts.Objects = append(ts.Objects, nil)
	}

	d := &Dataset{
		Name:                 man.Name,
		seq:                  e.nextSeq.Add(1),
		Tileset:              ts,
		maxLOD:               -1,
		partitionTargetFaces: man.PartitionTargetFaces,
	}
	entries := make([]rtree.Entry, 0, rep.ObjectsLoaded)
	for _, o := range ts.Objects {
		if o == nil {
			continue
		}
		if d.maxLOD < 0 || o.Comp.MaxLOD() < d.maxLOD {
			d.maxLOD = o.Comp.MaxLOD()
		}
		entries = append(entries, rtree.Entry{Box: o.MBB(), ID: o.ID})
	}
	if len(entries) == 0 {
		return nil, rep, fmt.Errorf("core: dataset in %s has no loadable objects", dir)
	}
	d.tree = rtree.BulkLoad(entries)

	// Quarantine the holes so queries skip them with a recorded reason
	// instead of tripping the breaker one failure at a time, and make the
	// report authoritative: a record whose ID field was itself corrupted is
	// reported under its garbage ID by the tile walk, so every hole not
	// already covered gets its own entry.
	reported := make(map[int64]bool, len(rep.ObjectsDropped))
	for _, dr := range rep.ObjectsDropped {
		reported[dr.ID] = true
	}
	for i, o := range ts.Objects {
		if o == nil {
			e.quar.Trip(quarantine.Key{Dataset: d.seq, Object: int64(i)}, "dropped during salvage load")
			if !reported[int64(i)] {
				rep.ObjectsDropped = append(rep.ObjectsDropped, storage.DroppedObject{
					ID: int64(i), Reason: "not recovered from any tile",
				})
			}
		}
	}

	if man.PartitionTargetFaces > 0 {
		if err := d.rebuildPartitions(e, man.PartitionTargetFaces, rep); err != nil {
			return nil, rep, err
		}
	}
	return d, rep, nil
}

// rebuildPartitions recomputes skeletons and the sub-object R-tree from the
// stored objects (decoding each at its highest LOD). With a non-nil salvage
// report the rebuild is lenient: nil holes are skipped, and an object whose
// blob passed its checksum but fails to decode is quarantined and recorded
// as dropped instead of failing the load (it keeps its whole-MBB entry so
// the filter trees stay consistent; queries will skip it as quarantined).
func (d *Dataset) rebuildPartitions(e *Engine, targetFaces int, salvage *storage.SalvageReport) error {
	d.skeletons = make([][]geom.Vec3, len(d.Tileset.Objects))
	var (
		mu          sync.Mutex
		partEntries []rtree.Entry
		wg          sync.WaitGroup
		firstErr    error
	)
	sem := make(chan struct{}, e.opts.Workers)
	for i, o := range d.Tileset.Objects {
		if o == nil {
			continue
		}
		wg.Add(1)
		go func(i int, comp *ppvp.Compressed) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := decodeRecovered(comp)
			if err != nil {
				if salvage != nil {
					e.quar.Trip(quarantine.Key{Dataset: d.seq, Object: int64(i)}, firstLine(err.Error()))
					mu.Lock()
					salvage.ObjectsDropped = append(salvage.ObjectsDropped, storage.DroppedObject{
						ID: int64(i), Reason: "decode failed: " + firstLine(err.Error()),
					})
					partEntries = append(partEntries, rtree.Entry{Box: comp.MBB(), ID: int64(i)})
					mu.Unlock()
					return
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			k := partition.GroupCount(m.NumFaces(), targetFaces)
			if k <= 1 {
				mu.Lock()
				partEntries = append(partEntries, rtree.Entry{Box: comp.MBB(), ID: int64(i)})
				mu.Unlock()
				return
			}
			skel := partition.Skeleton(m, k)
			groups := partition.AssignFaces(m, skel)
			mu.Lock()
			d.skeletons[i] = skel
			for _, g := range groups {
				partEntries = append(partEntries, rtree.Entry{Box: g.Box, ID: int64(i)})
			}
			mu.Unlock()
		}(i, o.Comp)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	d.partTree = rtree.BulkLoad(partEntries)
	return nil
}

// decodeRecovered decodes the object's top LOD, converting decoder panics
// into errors: a salvaged blob can pass its checksum (the corruption
// predates the save) and still be hostile to the decoder.
func decodeRecovered(comp *ppvp.Compressed) (m *mesh.Mesh, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decode panic: %v", r)
		}
	}()
	return comp.Decode(comp.MaxLOD())
}
