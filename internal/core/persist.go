package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/geom"
	"repro/internal/index/rtree"
	"repro/internal/partition"
	"repro/internal/ppvp"
	"repro/internal/storage"
)

// datasetManifest is the JSON sidecar stored next to the tile files. Tiles
// hold the compressed objects; the manifest records the grid geometry so a
// load rebuilds identical cuboid assignments. Indexes and skeletons are
// rebuilt on load (they are derived data).
type datasetManifest struct {
	Name                 string     `json:"name"`
	SpaceMin             [3]float64 `json:"space_min"`
	SpaceMax             [3]float64 `json:"space_max"`
	Nx                   int        `json:"nx"`
	Ny                   int        `json:"ny"`
	Nz                   int        `json:"nz"`
	PartitionTargetFaces int        `json:"partition_target_faces"`
}

const manifestFile = "dataset.json"

// SaveDataset persists a dataset as tile files plus a manifest under dir.
// The layout matches the paper's storage design: one file per cuboid with
// the compressed blobs of its objects, loadable back into memory as a unit.
func (d *Dataset) SaveDataset(dir string) error {
	if err := d.Tileset.SaveTiles(dir); err != nil {
		return err
	}
	g := d.Tileset.Grid
	man := datasetManifest{
		Name:     d.Name,
		SpaceMin: [3]float64{g.Space.Min.X, g.Space.Min.Y, g.Space.Min.Z},
		SpaceMax: [3]float64{g.Space.Max.X, g.Space.Max.Y, g.Space.Max.Z},
		Nx:       g.Nx, Ny: g.Ny, Nz: g.Nz,
		PartitionTargetFaces: d.partitionTargetFaces,
	}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestFile), blob, 0o644)
}

// LoadDataset restores a dataset saved with SaveDataset: tiles are read
// back, and the R-trees and skeletons are rebuilt from the compressed
// objects (decoding the highest LOD once per object when partitioning was
// enabled).
func (e *Engine) LoadDataset(dir string) (*Dataset, error) {
	blob, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("core: reading dataset manifest: %w", err)
	}
	var man datasetManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, fmt.Errorf("core: parsing dataset manifest: %w", err)
	}
	grid := storage.Grid{
		Space: geom.Box3{
			Min: geom.V(man.SpaceMin[0], man.SpaceMin[1], man.SpaceMin[2]),
			Max: geom.V(man.SpaceMax[0], man.SpaceMax[1], man.SpaceMax[2]),
		},
		Nx: man.Nx, Ny: man.Ny, Nz: man.Nz,
	}
	ts, err := storage.LoadTiles(dir, grid)
	if err != nil {
		return nil, err
	}
	if len(ts.Objects) == 0 {
		return nil, fmt.Errorf("core: dataset in %s has no objects", dir)
	}

	d := &Dataset{
		Name:                 man.Name,
		seq:                  e.nextSeq.Add(1),
		Tileset:              ts,
		maxLOD:               ts.Objects[0].Comp.MaxLOD(),
		partitionTargetFaces: man.PartitionTargetFaces,
	}
	entries := make([]rtree.Entry, len(ts.Objects))
	for i, o := range ts.Objects {
		if o.Comp.MaxLOD() < d.maxLOD {
			d.maxLOD = o.Comp.MaxLOD()
		}
		entries[i] = rtree.Entry{Box: o.MBB(), ID: o.ID}
	}
	d.tree = rtree.BulkLoad(entries)

	if man.PartitionTargetFaces > 0 {
		if err := d.rebuildPartitions(e, man.PartitionTargetFaces); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// rebuildPartitions recomputes skeletons and the sub-object R-tree from the
// stored objects (decoding each at its highest LOD).
func (d *Dataset) rebuildPartitions(e *Engine, targetFaces int) error {
	d.skeletons = make([][]geom.Vec3, len(d.Tileset.Objects))
	var (
		mu          sync.Mutex
		partEntries []rtree.Entry
		wg          sync.WaitGroup
		firstErr    error
	)
	sem := make(chan struct{}, e.opts.Workers)
	for i, o := range d.Tileset.Objects {
		wg.Add(1)
		go func(i int, comp *ppvp.Compressed) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := comp.Decode(comp.MaxLOD())
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			k := partition.GroupCount(m.NumFaces(), targetFaces)
			if k <= 1 {
				mu.Lock()
				partEntries = append(partEntries, rtree.Entry{Box: comp.MBB(), ID: int64(i)})
				mu.Unlock()
				return
			}
			skel := partition.Skeleton(m, k)
			groups := partition.AssignFaces(m, skel)
			mu.Lock()
			d.skeletons[i] = skel
			for _, g := range groups {
				partEntries = append(partEntries, rtree.Entry{Box: g.Box, ID: int64(i)})
			}
			mu.Unlock()
		}(i, o.Comp)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	d.partTree = rtree.BulkLoad(partEntries)
	return nil
}
