package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

// testEngine returns a small engine suitable for unit tests.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(EngineOptions{CacheBytes: 64 << 20, Workers: 4, GPUWorkers: 2, GPUBatch: 512})
	t.Cleanup(e.Close)
	return e
}

// fastCompression keeps unit-test ingest quick: fewer rounds, smaller meshes.
func fastDatasetOptions() DatasetOptions {
	c := ppvp.DefaultOptions()
	c.Rounds = 6
	return DatasetOptions{Compression: c, Cuboids: 8, PartitionTargetFaces: 64}
}

// buildPair ingests two overlapping nuclei datasets (the "two segmentation
// algorithms" workload) — used for intersection joins.
func buildPair(t *testing.T, e *Engine) (*Dataset, *Dataset) {
	t.Helper()
	gen := datagen.NucleiOptions{Count: 12, SubdivisionLevel: 1, Seed: 21}
	a, err := e.BuildDataset("nucleiA", datagen.Nuclei(gen), fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen2 := gen
	gen2.Seed = 22
	gen2.Offset = geom.V(2.5, 1.5, 1)
	b, err := e.BuildDataset("nucleiB", datagen.Nuclei(gen2), fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// buildDisjointPair ingests two interior-disjoint nuclei datasets — the
// precondition for distance queries (see the core package doc).
func buildDisjointPair(t *testing.T, e *Engine) (*Dataset, *Dataset) {
	t.Helper()
	space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(60, 60, 60)}
	ma, mb := datagen.NucleiPair(datagen.NucleiOptions{Count: 10, SubdivisionLevel: 1, Seed: 31, Space: space})
	a, err := e.BuildDataset("disjA", ma, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.BuildDataset("disjB", mb, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// groundTruth decodes every object at the highest LOD.
func decodeAll(t *testing.T, d *Dataset) []*mesh.Mesh {
	t.Helper()
	out := make([]*mesh.Mesh, d.Len())
	for i := range out {
		m, err := d.Tileset.Object(int64(i)).Comp.Decode(d.MaxLOD())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

func bruteIntersectJoin(t *testing.T, ta, tb []*mesh.Mesh) map[Pair]bool {
	t.Helper()
	res := map[Pair]bool{}
	for i, a := range ta {
		for j, b := range tb {
			if !a.Bounds().Intersects(b.Bounds()) {
				continue
			}
			if bruteIntersects(a.Triangles(), b.Triangles()) ||
				containsBrute(a, b) || containsBrute(b, a) {
				res[Pair{int64(i), int64(j)}] = true
			}
		}
	}
	return res
}

func containsBrute(outer, inner *mesh.Mesh) bool {
	if !outer.Bounds().Contains(inner.Bounds()) {
		return false
	}
	return geom.PointInTriangles(inner.Vertices[0], outer.Triangles())
}

func pairsToSet(ps []Pair) map[Pair]bool {
	m := make(map[Pair]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func sameSets(t *testing.T, name string, got []Pair, want map[Pair]bool) {
	t.Helper()
	gs := pairsToSet(got)
	if len(gs) != len(got) {
		t.Errorf("%s: duplicate pairs in result", name)
	}
	for p := range gs {
		if !want[p] {
			t.Errorf("%s: spurious pair %v", name, p)
		}
	}
	for p := range want {
		if !gs[p] {
			t.Errorf("%s: missing pair %v", name, p)
		}
	}
}

var allAccels = []Accel{BruteForce, AABB, Partition, GPU, PartitionGPU}

func TestIntersectJoinAllConfigsMatchBrute(t *testing.T) {
	e := testEngine(t)
	a, b := buildPair(t, e)
	want := bruteIntersectJoin(t, decodeAll(t, a), decodeAll(t, b))
	if len(want) == 0 {
		t.Fatal("workload produced no intersections; tests would be vacuous")
	}

	for _, paradigm := range []Paradigm{FR, FPR} {
		for _, accel := range allAccels {
			got, stats, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Paradigm: paradigm, Accel: accel})
			if err != nil {
				t.Fatalf("%v/%v: %v", paradigm, accel, err)
			}
			sameSets(t, paradigm.String()+"/"+accel.String(), got, want)
			if stats.Results != int64(len(got)) {
				t.Errorf("%v/%v: stats.Results=%d len=%d", paradigm, accel, stats.Results, len(got))
			}
		}
	}
}

func TestWithinJoinAllConfigsMatchBrute(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	ta, tb := decodeAll(t, a), decodeAll(t, b)
	const dist = 12.0

	want := map[Pair]bool{}
	for i, x := range ta {
		for j, y := range tb {
			if x.Bounds().MinDist(y.Bounds()) > dist {
				continue
			}
			if bruteMinDist(x.Triangles(), y.Triangles()) <= dist {
				want[Pair{int64(i), int64(j)}] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("no within pairs; tests would be vacuous")
	}

	for _, paradigm := range []Paradigm{FR, FPR} {
		for _, accel := range allAccels {
			got, _, err := e.WithinJoin(context.Background(), a, b, dist, QueryOptions{Paradigm: paradigm, Accel: accel})
			if err != nil {
				t.Fatalf("%v/%v: %v", paradigm, accel, err)
			}
			sameSets(t, paradigm.String()+"/"+accel.String(), got, want)
		}
	}
}

func TestNNJoinAllConfigsMatchBrute(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	ta, tb := decodeAll(t, a), decodeAll(t, b)

	wantDist := make([]float64, len(ta))
	for i, x := range ta {
		best := math.Inf(1)
		for _, y := range tb {
			if d := bruteMinDist(x.Triangles(), y.Triangles()); d < best {
				best = d
			}
		}
		wantDist[i] = best
	}

	for _, paradigm := range []Paradigm{FR, FPR} {
		for _, accel := range allAccels {
			got, _, err := e.NNJoin(context.Background(), a, b, QueryOptions{Paradigm: paradigm, Accel: accel})
			if err != nil {
				t.Fatalf("%v/%v: %v", paradigm, accel, err)
			}
			if len(got) != len(ta) {
				t.Fatalf("%v/%v: %d results, want %d", paradigm, accel, len(got), len(ta))
			}
			for _, n := range got {
				if math.Abs(n.Dist-wantDist[n.Target]) > 1e-6 {
					t.Errorf("%v/%v: target %d NN dist %v, want %v",
						paradigm, accel, n.Target, n.Dist, wantDist[n.Target])
				}
			}
		}
	}
}

func TestKNNJoinMatchesBrute(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	ta, tb := decodeAll(t, a), decodeAll(t, b)
	const k = 3

	got, _, err := e.KNNJoin(context.Background(), a, b, QueryOptions{Paradigm: FPR, Accel: AABB, K: k})
	if err != nil {
		t.Fatal(err)
	}
	perTarget := map[int64][]Neighbor{}
	for _, n := range got {
		perTarget[n.Target] = append(perTarget[n.Target], n)
	}
	for i, x := range ta {
		dists := make([]float64, len(tb))
		for j, y := range tb {
			dists[j] = bruteMinDist(x.Triangles(), y.Triangles())
		}
		ns := perTarget[int64(i)]
		if len(ns) != k {
			t.Fatalf("target %d: %d neighbors, want %d", i, len(ns), k)
		}
		// The engine's k distances must be the k smallest brute distances.
		sortFloats(dists)
		for r := 0; r < k; r++ {
			if math.Abs(ns[r].Dist-dists[r]) > 1e-6 {
				t.Errorf("target %d rank %d: dist %v, want %v", i, r, ns[r].Dist, dists[r])
			}
		}
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestIntersectJoinContainment(t *testing.T) {
	e := testEngine(t)
	// Object 0 of A contains object 0 of B; their surfaces never touch.
	big := mesh.Icosphere(10, 2)
	small := mesh.Icosphere(1, 2)
	far := mesh.Icosphere(1, 2)
	far.Translate(geom.V(50, 0, 0))

	a, err := e.BuildDataset("big", []*mesh.Mesh{big}, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.BuildDataset("smalls", []*mesh.Mesh{small, far}, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, paradigm := range []Paradigm{FR, FPR} {
		got, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Paradigm: paradigm})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != (Pair{0, 0}) {
			t.Errorf("%v: got %v, want [(0,0)]", paradigm, got)
		}
		// Reverse direction: B's small object is inside A's big object.
		rev, _, err := e.IntersectJoin(context.Background(), b, a, QueryOptions{Paradigm: paradigm})
		if err != nil {
			t.Fatal(err)
		}
		if len(rev) != 1 || rev[0] != (Pair{0, 0}) {
			t.Errorf("%v reverse: got %v", paradigm, rev)
		}
	}
}

func TestSelfJoinSkipsSelf(t *testing.T) {
	e := testEngine(t)
	a, _ := buildPair(t, e)
	got, _, err := e.IntersectJoin(context.Background(), a, a, QueryOptions{Paradigm: FPR})
	if err != nil {
		t.Fatal(err)
	}
	// Nuclei within one dataset are disjoint by construction.
	if len(got) != 0 {
		t.Errorf("self intersect join returned %v", got)
	}

	ns, _, err := e.NNJoin(context.Background(), a, a, QueryOptions{Paradigm: FPR, Accel: AABB})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		if n.Target == n.Source {
			t.Errorf("object %d is its own nearest neighbor", n.Target)
		}
		if n.Dist <= 0 {
			t.Errorf("self-join NN dist %v for target %d", n.Dist, n.Target)
		}
	}
}

func TestLODSchedule(t *testing.T) {
	q := QueryOptions{}
	if got := q.lodSchedule(5, FR); len(got) != 1 || got[0] != 5 {
		t.Errorf("FR schedule = %v", got)
	}
	if got := q.lodSchedule(3, FPR); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("FPR default schedule = %v", got)
	}
	q.LODs = []int{1, 3}
	if got := q.lodSchedule(5, FPR); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("custom schedule = %v", got)
	}
	q.LODs = []int{9, -1, 2, 2}
	if got := q.lodSchedule(5, FPR); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("sanitized schedule = %v", got)
	}
}

func TestFPRPrunesAtLowLODs(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	_, stats, err := e.WithinJoin(context.Background(), a, b, 12, QueryOptions{Paradigm: FPR})
	if err != nil {
		t.Fatal(err)
	}
	var lowPruned int64
	for l := 0; l < len(stats.PairsPruned)-1; l++ {
		lowPruned += stats.PairsPruned[l]
	}
	if lowPruned == 0 {
		t.Error("FPR settled nothing below the highest LOD")
	}
	if stats.GeomTime == 0 || stats.DecodeTime == 0 || stats.FilterTime == 0 {
		t.Errorf("phase breakdown has zeros: %v", stats)
	}
}

func TestFPRBeatsFRInPairEvaluations(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	_, fr, err := e.WithinJoin(context.Background(), a, b, 12, QueryOptions{Paradigm: FR})
	if err != nil {
		t.Fatal(err)
	}
	_, fpr, err := e.WithinJoin(context.Background(), a, b, 12, QueryOptions{Paradigm: FPR})
	if err != nil {
		t.Fatal(err)
	}
	top := len(fr.PairsEvaluated) - 1
	if fpr.PairsEvaluated[top] >= fr.PairsEvaluated[top] {
		t.Errorf("FPR evaluated %d pairs at top LOD, FR %d — expected fewer",
			fpr.PairsEvaluated[top], fr.PairsEvaluated[top])
	}
}

func TestProfileLODs(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	lods, stats, err := e.ProfileLODs(context.Background(), a, b, WithinKind, 8, QueryOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lods) == 0 {
		t.Fatal("empty schedule")
	}
	top := minInt(a.MaxLOD(), b.MaxLOD())
	if lods[len(lods)-1] != top {
		t.Errorf("schedule %v does not end at top LOD %d", lods, top)
	}
	for i := 1; i < len(lods); i++ {
		if lods[i] <= lods[i-1] {
			t.Errorf("schedule not ascending: %v", lods)
		}
	}
	if stats == nil {
		t.Error("no sample stats")
	}

	// The profiled schedule must still produce exact results.
	want, _, err := e.WithinJoin(context.Background(), a, b, 12, QueryOptions{Paradigm: FPR})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.WithinJoin(context.Background(), a, b, 12, QueryOptions{Paradigm: FPR, LODs: lods})
	if err != nil {
		t.Fatal(err)
	}
	sameSets(t, "profiled schedule", got, pairsToSet(want))
}

func TestDatasetBuildErrors(t *testing.T) {
	e := testEngine(t)
	if _, err := e.BuildDataset("empty", nil, fastDatasetOptions()); err == nil {
		t.Error("empty dataset accepted")
	}
	open := &mesh.Mesh{
		Vertices: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)},
		Faces:    []mesh.Face{{0, 1, 2}},
	}
	if _, err := e.BuildDataset("bad", []*mesh.Mesh{open}, fastDatasetOptions()); err == nil {
		t.Error("invalid mesh accepted")
	}
}

func TestDatasetAccessors(t *testing.T) {
	e := testEngine(t)
	a, _ := buildPair(t, e)
	if a.Len() != 12 {
		t.Errorf("Len = %d", a.Len())
	}
	if a.MaxLOD() < 1 {
		t.Errorf("MaxLOD = %d", a.MaxLOD())
	}
	if a.Tree().Len() != 12 {
		t.Errorf("tree Len = %d", a.Tree().Len())
	}
	if a.CompressedBytes() <= 0 {
		t.Error("CompressedBytes <= 0")
	}
	if a.CompressStats.VerticesRemoved == 0 {
		t.Error("no compression stats aggregated")
	}
}

func TestEngineDist(t *testing.T) {
	e := testEngine(t)
	m1 := mesh.Icosphere(2, 2)
	m2 := mesh.Icosphere(2, 2)
	m2.Translate(geom.V(10, 0, 0))
	d1, err := e.BuildDataset("d1", []*mesh.Mesh{m1}, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.BuildDataset("d2", []*mesh.Mesh{m2}, fastDatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ExactDistance(d1, 0, d2, 0, QueryOptions{Accel: AABB})
	if err != nil {
		t.Fatal(err)
	}
	// Two radius-2 spheres 10 apart: distance ≈ 6 (slightly more due to
	// faceting).
	if got < 5.9 || got > 6.2 {
		t.Errorf("Dist = %v, want ≈ 6", got)
	}
}

func TestParadigmAccelStrings(t *testing.T) {
	if FR.String() != "FR" || FPR.String() != "FPR" {
		t.Error("Paradigm strings")
	}
	wants := map[Accel]string{
		BruteForce: "brute", AABB: "aabb", Partition: "partition",
		GPU: "gpu", PartitionGPU: "partition+gpu", Accel(99): "unknown",
	}
	for a, w := range wants {
		if a.String() != w {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), w)
		}
	}
	if !PartitionGPU.UsesGPU() || !PartitionGPU.UsesPartition() {
		t.Error("PartitionGPU flags")
	}
	if BruteForce.UsesGPU() || AABB.UsesPartition() {
		t.Error("flag false positives")
	}
}

func TestQueryCancellation(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)

	// Already-cancelled context: the join must fail fast with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.NNJoin(ctx, a, b, QueryOptions{Paradigm: FPR, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, _, err = e.WithinJoin(ctx, a, b, 12, QueryOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("within err = %v, want context.Canceled", err)
	}
	_, _, err = e.IntersectJoin(ctx, a, b, QueryOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("intersect err = %v, want context.Canceled", err)
	}

	// A nil context behaves like Background.
	if _, _, err := e.IntersectJoin(nil, a, b, QueryOptions{}); err != nil { //nolint:staticcheck
		t.Fatalf("nil ctx: %v", err)
	}
}

func TestKNNJoinPartitionAccel(t *testing.T) {
	// kNN through the sub-object index: partitioned filtering must return
	// the same k nearest objects as the whole-object path.
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	const k = 3
	want, _, err := e.KNNJoin(context.Background(), a, b, QueryOptions{Paradigm: FPR, Accel: AABB, K: k})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.KNNJoin(context.Background(), a, b, QueryOptions{Paradigm: FPR, Accel: Partition, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("results: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Target != want[i].Target || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
