package core

import (
	"context"
	"slices"
	"time"

	"repro/internal/index/rtree"
	"repro/internal/storage"
)

// IntersectJoin returns, for each object o of target, every object of
// source whose geometry intersects o (touching or containment counts).
// When target and source are the same dataset, an object never matches
// itself.
//
// Under FPR (Alg. 1 of the paper) candidates are tested with faces decoded
// at ascending LODs: an intersection found at a low LOD is final thanks to
// the PPVP progressive-approximation property, so the candidate is settled
// without ever decoding the higher LODs. Containment — which produces no
// face intersection — is resolved at the highest LOD for the survivors.
func (e *Engine) IntersectJoin(ctx context.Context, target, source *Dataset, q QueryOptions) ([]Pair, *Stats, error) {
	if q.usePipeline() {
		return e.pipelinedJoin(ctx, joinIntersect, target, source, 0, q)
	}
	start := time.Now()
	col := newCollector(source.maxLOD, q, start)
	ec := newEvalCtx(e, q, col)
	lods := e.schedule(&q, minInt(target.maxLOD, source.maxLOD), IntersectKind)
	tree := source.filterTree(q.Accel)
	sink := newResultSink(q.workers(e))

	err := runPerTarget(ctx, target, q.workers(e), func(w int, o *storage.Object) error {
		// Filtering step: MBB intersection against the global index. The
		// dedup set and candidate buffer are per-worker scratch, reused
		// across targets instead of reallocated for each one.
		sc := ec.scratch[w].reset()
		col.filterPhase(func() {
			tree.SearchIntersect(o.MBB(), func(ent rtree.Entry) bool {
				if target.seq == source.seq && ent.ID == o.ID {
					return true
				}
				if _, dup := sc.seen[ent.ID]; !dup {
					sc.seen[ent.ID] = struct{}{}
					sc.ids = append(sc.ids, ent.ID)
				}
				return true
			})
		})
		candIDs := sc.ids
		col.candidates.Add(int64(len(candIDs)))
		if len(candIDs) == 0 {
			return nil
		}
		sortIDs(candIDs)

		// Progressive refinement: settle candidates at the lowest LOD that
		// exhibits a face intersection — or, for MBB-nested pairs, a vertex
		// of one low-LOD mesh inside the other low-LOD solid. The latter is
		// sound by the subset property: a point on a low-LOD surface lies
		// inside that object's full solid, so finding it inside the other
		// object's low-LOD solid (⊆ its full solid) proves the two solids
		// overlap.
		oMBB := target.Tileset.Object(o.ID).MBB()
		remaining := candIDs
		var dir []int64
		if q.marginSched() {
			// Margin plan: barely-overlapping MBB pairs rarely intersect, and
			// only the top LOD (plus the containment pass) can reject them —
			// send them straight there and spend the intermediate decodes on
			// the deeply-overlapping pairs a low LOD can settle early.
			dir = sc.dir
			keep := remaining[:0]
			for _, id := range remaining {
				so := source.Tileset.Object(id)
				if so == nil {
					keep = append(keep, id) // let decode surface the error
					continue
				}
				if planIntersect(oMBB, so.MBB()) == planDirect {
					col.skipLODs(len(lods) - 1)
					dir = append(dir, id)
					continue
				}
				keep = append(keep, id)
			}
			remaining = keep
			sc.dir = dir
		}
		for li, lod := range lods {
			last := li == len(lods)-1
			if last && len(dir) > 0 {
				// Direct-routed pairs join the walkers for the exact pass.
				remaining = append(remaining, dir...)
				sortIDs(remaining)
				dir = dir[:0]
			}
			if len(remaining) == 0 {
				if len(dir) == 0 {
					break
				}
				continue
			}
			to, err := ec.decode(target, o.ID, lod)
			if err != nil {
				// Degrade: the target itself is unusable from this LOD on;
				// pairs settled at lower LODs stay certain, the remaining
				// candidates become uncertain.
				skip, aerr := ec.degradeErr(w, target, o.ID, err)
				if !skip {
					return aerr
				}
				ec.deg.uncertainAll(w, o.ID, remaining)
				ec.deg.uncertainAll(w, o.ID, dir)
				return nil
			}
			next := remaining[:0]
			for _, id := range remaining {
				so, err := ec.decode(source, id, lod)
				if err != nil {
					skip, aerr := ec.degradeErr(w, source, id, err)
					if !skip {
						return aerr
					}
					ec.deg.uncertain(w, Pair{Target: o.ID, Source: id})
					continue
				}
				col.evalPair(lod)
				hit := ec.intersects(to, so)
				if !hit {
					cMBB := source.Tileset.Object(id).MBB()
					if oMBB.Contains(cMBB) && len(so.mesh.Vertices) > 0 {
						hit = ec.pointInside(to, so.mesh.Vertices[0])
					} else if cMBB.Contains(oMBB) && len(to.mesh.Vertices) > 0 {
						hit = ec.pointInside(so, to.mesh.Vertices[0])
					}
				}
				if hit {
					col.settlePair(lod)
					sink.add(w, Pair{Target: o.ID, Source: id})
					col.results.Add(1)
					continue
				}
				next = append(next, id)
			}
			remaining = next
		}

		// Containment handling at the highest LOD (Alg. 1, steps 8–12).
		if len(remaining) > 0 {
			top := lods[len(lods)-1]
			to, err := ec.decode(target, o.ID, top)
			if err != nil {
				skip, aerr := ec.degradeErr(w, target, o.ID, err)
				if !skip {
					return aerr
				}
				ec.deg.uncertainAll(w, o.ID, remaining)
				return nil
			}
			for _, id := range remaining {
				so, err := ec.decode(source, id, top)
				if err != nil {
					skip, aerr := ec.degradeErr(w, source, id, err)
					if !skip {
						return aerr
					}
					ec.deg.uncertain(w, Pair{Target: o.ID, Source: id})
					continue
				}
				if ec.containsObject(to, so) || ec.containsObject(so, to) {
					sink.add(w, Pair{Target: o.ID, Source: id})
					col.results.Add(1)
				}
			}
		}
		return nil
	}, ec.deg.backstop(e, target))
	if err != nil {
		// Even an aborted query reports the work it did: phase times and
		// exact cache attribution up to the failure point.
		return nil, ec.finish(start), err
	}
	st := ec.finish(start)
	if q.Paradigm == FPR {
		e.cal.observe(IntersectKind, st)
	}
	return sink.sorted(), st, nil
}

func sortIDs(ids []int64) { slices.Sort(ids) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
