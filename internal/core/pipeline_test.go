package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/leakcheck"
)

// samePairs asserts two join answers are identical (both are sorted by the
// executors' deterministic output contract).
func samePairs(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d\n got=%v\nwant=%v", name, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestPipelineMatchesPerPairAllAccels proves the batch pipeline result-equal
// to the per-pair reference executor across every accelerator and both
// paradigms, for intersection and within-distance joins.
func TestPipelineMatchesPerPairAllAccels(t *testing.T) {
	e := testEngine(t)
	a, b := buildPair(t, e)
	da, db := buildDisjointPair(t, e)

	accels := []Accel{BruteForce, AABB, Partition, GPU, PartitionGPU}
	for _, par := range []Paradigm{FPR, FR} {
		for _, ac := range accels {
			name := fmt.Sprintf("%v/%v", par, ac)
			t.Run("intersect/"+name, func(t *testing.T) {
				q := QueryOptions{Paradigm: par, Accel: ac}
				q.Exec = ExecPerPair
				want, _, err := e.IntersectJoin(context.Background(), a, b, q)
				if err != nil {
					t.Fatal(err)
				}
				q.Exec = ExecPipeline
				got, st, err := e.IntersectJoin(context.Background(), a, b, q)
				if err != nil {
					t.Fatal(err)
				}
				samePairs(t, name, got, want)
				if st.BatchesDispatched == 0 && st.Candidates > 0 {
					t.Error("pipeline run reported no batches")
				}
			})
			t.Run("within/"+name, func(t *testing.T) {
				q := QueryOptions{Paradigm: par, Accel: ac}
				for _, dist := range []float64{0, 0.5, 2, 8} {
					q.Exec = ExecPerPair
					want, _, err := e.WithinJoin(context.Background(), da, db, dist, q)
					if err != nil {
						t.Fatal(err)
					}
					q.Exec = ExecPipeline
					got, _, err := e.WithinJoin(context.Background(), da, db, dist, q)
					if err != nil {
						t.Fatal(err)
					}
					samePairs(t, fmt.Sprintf("%s dist=%v", name, dist), got, want)
				}
			})
		}
	}
}

// TestPipelineMatchesPerPairEveryLOD pins the equivalence at each single-LOD
// ladder: settling early at LOD l through the batch kernels must accept and
// reject exactly the pairs the per-pair evaluator does at that LOD.
func TestPipelineMatchesPerPairEveryLOD(t *testing.T) {
	e := testEngine(t)
	a, b := buildPair(t, e)
	da, db := buildDisjointPair(t, e)
	maxLOD := minInt(a.MaxLOD(), b.MaxLOD())

	for lod := 0; lod <= maxLOD; lod++ {
		q := QueryOptions{LODs: []int{lod}}
		q.Exec = ExecPerPair
		wantI, _, err := e.IntersectJoin(context.Background(), a, b, q)
		if err != nil {
			t.Fatal(err)
		}
		wantW, _, err := e.WithinJoin(context.Background(), da, db, 1.5, q)
		if err != nil {
			t.Fatal(err)
		}
		q.Exec = ExecPipeline
		gotI, _, err := e.IntersectJoin(context.Background(), a, b, q)
		if err != nil {
			t.Fatal(err)
		}
		gotW, _, err := e.WithinJoin(context.Background(), da, db, 1.5, q)
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, fmt.Sprintf("intersect lod=%d", lod), gotI, wantI)
		samePairs(t, fmt.Sprintf("within lod=%d", lod), gotW, wantW)
	}
}

// TestPipelineNearThresholdProperty is the randomized near-miss/near-hit
// property: datasets placed so many pair distances land close to the query
// threshold, swept with distances sampled around the true inter-object
// distances. The pipeline and per-pair executors must agree on every single
// accept/reject decision, at full ladders and truncated ones.
func TestPipelineNearThresholdProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 3; round++ {
		e := testEngine(t)
		space := geom.Box3{Min: geom.V(0, 0, 0), Max: geom.V(40, 40, 40)}
		ma, mb := datagen.NucleiPair(datagen.NucleiOptions{
			Count: 8, SubdivisionLevel: 1, Seed: int64(1000 + round), Space: space,
		})
		da, err := e.BuildDataset("propA", ma, fastDatasetOptions())
		if err != nil {
			t.Fatal(err)
		}
		db, err := e.BuildDataset("propB", mb, fastDatasetOptions())
		if err != nil {
			t.Fatal(err)
		}

		// Sample true distances so the sweep straddles real accept/reject
		// boundaries: exactly at a pair distance, a hair below, a hair above.
		dists := []float64{0.25, 1, 4}
		for i := 0; i < 3; i++ {
			ta, sb := rng.Int63n(int64(da.Len())), rng.Int63n(int64(db.Len()))
			d, err := e.ExactDistance(da, ta, db, sb, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			dists = append(dists, d, d*(1-1e-9), d*(1+1e-9))
		}
		ladders := [][]int{nil, {0}, {0, da.MaxLOD()}}
		for _, lods := range ladders {
			for _, dist := range dists {
				q := QueryOptions{LODs: lods}
				q.Exec = ExecPerPair
				want, _, err := e.WithinJoin(context.Background(), da, db, dist, q)
				if err != nil {
					t.Fatal(err)
				}
				q.Exec = ExecPipeline
				got, _, err := e.WithinJoin(context.Background(), da, db, dist, q)
				if err != nil {
					t.Fatal(err)
				}
				samePairs(t, fmt.Sprintf("round=%d lods=%v dist=%v", round, lods, dist), got, want)
			}
		}
		e.Close()
	}
}

// TestPipelineBatchCounters checks the executor's batch accounting: the
// pipeline reports batches and face pairs, the per-pair executor reports
// zero, and the device-level histogram advances with the dispatches.
func TestPipelineBatchCounters(t *testing.T) {
	e := testEngine(t)
	a, b := buildPair(t, e)

	_, stPer, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Exec: ExecPerPair})
	if err != nil {
		t.Fatal(err)
	}
	if stPer.BatchesDispatched != 0 || stPer.BatchPairs != 0 {
		t.Fatalf("per-pair run reported batches: %d/%d", stPer.BatchesDispatched, stPer.BatchPairs)
	}

	before := e.Device().BatchesDispatched()
	_, st, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Exec: ExecPipeline})
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchesDispatched == 0 {
		t.Fatal("pipeline run dispatched no batches")
	}
	if st.BatchPairs == 0 {
		t.Fatal("pipeline run reported no batch pairs")
	}
	if st.BatchPairs < st.BatchesDispatched {
		t.Fatalf("BatchPairs=%d < BatchesDispatched=%d", st.BatchPairs, st.BatchesDispatched)
	}
	if got := e.Device().BatchesDispatched() - before; got < st.BatchesDispatched {
		t.Fatalf("device saw %d batches, query reported %d", got, st.BatchesDispatched)
	}
	buckets := e.Device().PairsPerBatchBuckets()
	if buckets[len(buckets)-1] != e.Device().BatchesDispatched() {
		t.Fatalf("histogram +Inf bucket %d != batches %d",
			buckets[len(buckets)-1], e.Device().BatchesDispatched())
	}
}

// TestPipelineHammerCancellation is the race-detector hammer: concurrent
// pipelined joins with contexts cancelled at random points mid-batch. Every
// run must terminate promptly with either a clean answer or a context error
// — never a deadlock, never a corrupted result.
func TestPipelineHammerCancellation(t *testing.T) {
	leakcheck.Check(t) // before testEngine: the diff must run after Close drains the stages
	t.Cleanup(faultinject.Reset)
	e := testEngine(t)
	a, b := buildPair(t, e)

	want, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Exec: ExecPipeline})
	if err != nil {
		t.Fatal(err)
	}

	const runs = 20
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// Stagger cancellation across the pipeline's lifetime, from
			// before the feeder starts to after the gather likely drained.
			delay := time.Duration(i) * 500 * time.Microsecond
			timer := time.AfterFunc(delay, cancel)
			defer timer.Stop()
			got, _, err := e.IntersectJoin(ctx, a, b, QueryOptions{Exec: ExecPipeline})
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					errs[i] = err
				}
				return
			}
			// Completed despite the cancel racing in: the answer must be
			// the full, correct one.
			if len(got) != len(want) {
				errs[i] = fmt.Errorf("run %d: %d pairs, want %d", i, len(got), len(want))
				return
			}
			for j := range got {
				if got[j] != want[j] {
					errs[i] = fmt.Errorf("run %d: pair %d = %v, want %v", i, j, got[j], want[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelineDegradedObjectsInBatch floods the decode point with transient
// faults while the pipeline runs under Degrade: batches then mix healthy and
// failing pairs. The soundness contract must hold exactly as for the
// per-pair executor — no invented pairs, and every dropped clean pair
// flagged uncertain.
func TestPipelineDegradedObjectsInBatch(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := testEngine(t)
	a, b := buildPair(t, e)

	clean, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{Exec: ExecPipeline})
	if err != nil {
		t.Fatal(err)
	}
	e.Cache().Clear()

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Err: faultinject.ErrInjected, Times: 8})
	got, st, err := e.IntersectJoin(context.Background(), a, b,
		QueryOptions{Exec: ExecPipeline, OnError: Degrade, ErrorBudget: -1})
	if err != nil {
		t.Fatalf("degrade pipeline join failed: %v", err)
	}
	cleanSet := pairSet(clean)
	for _, p := range got {
		if !cleanSet[p] {
			t.Fatalf("degraded pipeline invented pair %v", p)
		}
	}
	gotSet := pairSet(got)
	for _, p := range clean {
		if !gotSet[p] && !uncertainCovers(st, p) {
			t.Fatalf("dropped pair %v not flagged uncertain (uncertain=%v degraded=%v)",
				p, st.Uncertain, st.Degraded)
		}
	}
	if len(st.Degraded) == 0 {
		t.Fatal("faults injected but nothing degraded")
	}
}
