// Package core implements the 3DPro query engine: the Filter-Progressive-
// Refine paradigm of the paper built on PPVP-compressed datasets, a global
// R-tree, an LRU decode cache, and three interchangeable refinement
// accelerators (AABB-trees, skeleton partitioning, and the simulated GPU).
//
// The engine answers three spatial joins — intersection, within-distance,
// and (k-)nearest-neighbor — under either the traditional Filter-Refine
// paradigm (decode everything to the highest LOD, then refine) or the
// paper's Filter-Progressive-Refine paradigm (refine candidates at
// ascending LODs and settle them as early as the PPVP guarantees allow).
//
// Precondition for distance queries (WithinJoin, NNJoin, KNNJoin): the two
// datasets' object interiors must be mutually disjoint, as the paper's
// tissue datasets are ("the objects in the same dataset do not intersect").
// The PPVP distance property — a low-LOD distance upper-bounds the true
// distance — holds for solids with disjoint interiors; when one object
// nests inside another, the surface distance of shrunken LODs can move in
// either direction and early acceptance would be unsound. IntersectJoin has
// no such precondition. Use datagen.NucleiPair (or equivalently placed
// data) for distance workloads.
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/gpusim"
	"repro/internal/quarantine"
)

// Paradigm selects how the refinement step walks the LODs.
type Paradigm int

const (
	// FR is the traditional Filter-Refine paradigm: all candidates are
	// decoded to the highest LOD before any geometric evaluation.
	FR Paradigm = iota
	// FPR is the paper's Filter-Progressive-Refine paradigm: candidates
	// are evaluated at ascending LODs and removed as soon as the
	// progressive-approximation properties settle them.
	FPR
)

func (p Paradigm) String() string {
	if p == FR {
		return "FR"
	}
	return "FPR"
}

// Accel selects the intra-geometry acceleration technique applied during
// refinement (§5.1 of the paper). All of them compose with either paradigm.
type Accel int

const (
	// BruteForce evaluates every face pair.
	BruteForce Accel = iota
	// AABB builds AABB-trees over decoded faces and uses tree-vs-tree
	// traversals.
	AABB
	// Partition groups decoded faces by the object's skeleton points and
	// prunes group pairs by their bounding boxes.
	Partition
	// GPU ships face-pair batches to the simulated GPU device.
	GPU
	// PartitionGPU combines skeleton partitioning with GPU batch
	// evaluation of the surviving group pairs.
	PartitionGPU
)

func (a Accel) String() string {
	switch a {
	case BruteForce:
		return "brute"
	case AABB:
		return "aabb"
	case Partition:
		return "partition"
	case GPU:
		return "gpu"
	case PartitionGPU:
		return "partition+gpu"
	default:
		return "unknown"
	}
}

// UsesPartition reports whether the accelerator needs skeletons.
func (a Accel) UsesPartition() bool { return a == Partition || a == PartitionGPU }

// UsesGPU reports whether the accelerator needs the simulated device.
func (a Accel) UsesGPU() bool { return a == GPU || a == PartitionGPU }

// Exec selects the refinement executor for the join kinds that support
// batching (IntersectJoin, WithinJoin). The other query kinds always use the
// per-pair executor.
type Exec int

const (
	// ExecAuto uses the pipelined batch executor where available — the
	// default.
	ExecAuto Exec = iota
	// ExecPipeline forces the pipelined batch executor.
	ExecPipeline
	// ExecPerPair forces the per-pair reference executor: candidates are
	// refined one pair at a time inside the filter workers. It is the
	// semantics baseline the pipeline is proven against.
	ExecPerPair
)

func (x Exec) String() string {
	switch x {
	case ExecPipeline:
		return "pipeline"
	case ExecPerPair:
		return "per-pair"
	default:
		return "auto"
	}
}

// Sched selects the LOD scheduling policy progressive refinement uses.
type Sched int

const (
	// SchedMargin — the default — is the margin-governed scheduler: the LOD
	// ladder is calibrated online from the engine's per-(kind, LOD) pruning
	// histograms, and each candidate pair is routed by its own distance
	// margin (derived from the MBB MINDIST/MAXDIST bounds the filter already
	// computed): bound-decisive pairs go straight to their verdict with no
	// decode at all, reject-leaning pairs jump directly to the top LOD, and
	// accept-leaning pairs walk the ladder. Results are byte-identical to
	// SchedStatic: accepts only ever happen on sound upper bounds and
	// rejects only at the top LOD, so the final answer is independent of
	// which intermediate LODs a pair visits.
	SchedMargin Sched = iota
	// SchedStatic is the paper's §4.4 reference semantics: every candidate
	// rides the one query-wide ladder (QueryOptions.LODs, typically from a
	// one-shot ProfileLODs run; every LOD when empty).
	SchedStatic
)

func (s Sched) String() string {
	if s == SchedStatic {
		return "static"
	}
	return "margin"
}

// EngineOptions configures a query engine instance.
type EngineOptions struct {
	// CacheBytes is the decode cache budget (paper: 80 GB; default here
	// 256 MB). Zero disables the cache, reproducing Table 2's "no cache"
	// column.
	CacheBytes int64
	// Workers bounds query parallelism (default GOMAXPROCS).
	Workers int
	// GPUWorkers and GPUBatch configure the simulated GPU device.
	GPUWorkers int
	GPUBatch   int

	// QuarantineThreshold is the per-object failure count that trips the
	// quarantine circuit breaker open (default 3); QuarantineCooldown is how
	// long a tripped object stays blocked before a half-open probe is
	// admitted (default 30s). See package quarantine.
	QuarantineThreshold int
	QuarantineCooldown  time.Duration

	// DecodeRetries is how many extra decode attempts Degrade-policy queries
	// make per object before recording the failure (default 1; negative
	// disables retries). FailFast queries never retry: their fault contract
	// is "first failure aborts". DecodeRetryBackoff is the sleep before the
	// first retry, doubling each attempt (default 1ms; negative disables).
	DecodeRetries      int
	DecodeRetryBackoff time.Duration
}

func (o *EngineOptions) setDefaults() {
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.CacheBytes < 0 {
		o.CacheBytes = 0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DecodeRetries == 0 {
		o.DecodeRetries = 1
	} else if o.DecodeRetries < 0 {
		o.DecodeRetries = 0
	}
	if o.DecodeRetryBackoff == 0 {
		o.DecodeRetryBackoff = time.Millisecond
	} else if o.DecodeRetryBackoff < 0 {
		o.DecodeRetryBackoff = 0
	}
}

// Engine owns the shared query-processing resources: the decode cache and
// the simulated GPU. Datasets are built through it and queried against each
// other. An Engine is safe for concurrent use; Close releases the device.
type Engine struct {
	opts    EngineOptions
	cache   *cache.Cache
	dev     *gpusim.Device
	quar    *quarantine.Registry
	cal     *calibrator
	nextSeq atomic.Int64
}

// NewEngine creates an engine.
func NewEngine(opts EngineOptions) *Engine {
	opts.setDefaults()
	return &Engine{
		opts:  opts,
		cache: cache.New(opts.CacheBytes),
		dev:   gpusim.New(opts.GPUWorkers, opts.GPUBatch),
		quar: quarantine.New(quarantine.Options{
			Threshold: opts.QuarantineThreshold,
			Cooldown:  opts.QuarantineCooldown,
		}),
		cal: newCalibrator(),
	}
}

// Close releases the simulated GPU device.
func (e *Engine) Close() { e.dev.Close() }

// Cache exposes the decode cache (for statistics and experiments).
func (e *Engine) Cache() *cache.Cache { return e.cache }

// Device exposes the simulated GPU (for statistics).
func (e *Engine) Device() *gpusim.Device { return e.dev }

// Quarantine exposes the per-object circuit-breaker registry (for
// statistics, readiness probes, and operator inspection).
func (e *Engine) Quarantine() *quarantine.Registry { return e.quar }

// QueryOptions configures one join execution.
type QueryOptions struct {
	// Paradigm selects FR or FPR.
	Paradigm Paradigm
	// Accel selects the refinement accelerator.
	Accel Accel
	// LODs lists the LODs progressive refinement visits, ascending. The
	// engine appends the dataset's highest LOD if missing so results are
	// always exact. Empty means every LOD (0..max). Ignored under FR.
	LODs []int
	// Workers overrides the engine-level parallelism for this query.
	Workers int
	// K is the neighbor count for KNNJoin (default 1).
	K int
	// OnError selects the partial-failure policy: FailFast (default) aborts
	// on the first object failure; Degrade skips failing objects and
	// reports them in Stats.Degraded, with unsettled pairs in
	// Stats.Uncertain.
	OnError ErrorPolicy
	// ErrorBudget bounds the distinct failed objects a Degrade-policy query
	// tolerates before aborting anyway (0 = default 64; negative =
	// unlimited). Quarantine skips don't consume the budget.
	ErrorBudget int
	// Trace enables per-query span recording: phase activity aggregated by
	// (phase, LOD) is returned in Stats.Trace. Off by default — each traced
	// span takes a mutex on the hot path.
	Trace bool
	// Exec selects the refinement executor (pipelined batches vs per-pair)
	// for IntersectJoin and WithinJoin. Defaults to the pipeline.
	Exec Exec
	// Sched selects the LOD scheduling policy: SchedMargin (the default)
	// routes each candidate pair by its distance margin over an
	// online-calibrated ladder; SchedStatic is the paper's static reference
	// rule. Both produce byte-identical results.
	Sched Sched
}

// usePipeline reports whether the batch pipeline executor should run.
func (q *QueryOptions) usePipeline() bool { return q.Exec != ExecPerPair }

// marginSched reports whether the per-pair margin scheduler is active: only
// under FPR (FR is the decode-everything baseline and stays untouched as
// reference semantics).
func (q *QueryOptions) marginSched() bool { return q.Sched == SchedMargin && q.Paradigm == FPR }

func (q *QueryOptions) workers(e *Engine) int {
	if q.Workers > 0 {
		return q.Workers
	}
	return e.opts.Workers
}

// lodSchedule returns the LOD ladder for a dataset pair under the options.
func (q *QueryOptions) lodSchedule(maxLOD int, paradigm Paradigm) []int {
	if paradigm == FR {
		return []int{maxLOD}
	}
	if len(q.LODs) == 0 {
		out := make([]int, maxLOD+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, len(q.LODs)+1)
	prev := -1
	for _, l := range q.LODs {
		if l < 0 || l > maxLOD || l <= prev {
			continue
		}
		out = append(out, l)
		prev = l
	}
	if len(out) == 0 || out[len(out)-1] != maxLOD {
		out = append(out, maxLOD)
	}
	return out
}

// Pair is one join result: source object src satisfies the predicate with
// target object tgt.
type Pair struct {
	Target int64 `json:"target"`
	Source int64 `json:"source"`
}

func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.Target, p.Source) }

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	Target int64   `json:"target"`
	Source int64   `json:"source"`
	Dist   float64 `json:"dist"`
}
