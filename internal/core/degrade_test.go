package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/quarantine"
	"repro/internal/storage"
)

func pairSet(pairs []Pair) map[Pair]bool {
	m := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		m[p] = true
	}
	return m
}

// uncertainCovers reports whether the stats mark the pair unsettled, either
// explicitly or through a whole-target wildcard (Source -1).
func uncertainCovers(st *Stats, p Pair) bool {
	for _, u := range st.Uncertain {
		if u == p || (u.Target == p.Target && u.Source == -1) {
			return true
		}
	}
	return false
}

// TestDegradeIntersectSoundness floods the decode point with transient
// errors and asserts the Degrade-policy contract: the query finishes, every
// returned pair is in the clean answer (no false accepts), and every clean
// pair the degraded run dropped is flagged uncertain.
func TestDegradeIntersectSoundness(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := testEngine(t)
	a, b := buildPair(t, e)

	clean, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e.Cache().Clear()

	// Enough failures to hurt several objects even after retries.
	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Err: faultinject.ErrInjected, Times: 8})
	got, st, err := e.IntersectJoin(context.Background(), a, b,
		QueryOptions{OnError: Degrade, ErrorBudget: -1})
	if err != nil {
		t.Fatalf("degrade join failed: %v", err)
	}
	cleanSet := pairSet(clean)
	for _, p := range got {
		if !cleanSet[p] {
			t.Fatalf("degraded run invented pair %v", p)
		}
	}
	gotSet := pairSet(got)
	for _, p := range clean {
		if !gotSet[p] && !uncertainCovers(st, p) {
			t.Fatalf("clean pair %v silently missing: not returned, not uncertain (stats: %v)", p, st)
		}
	}
	if len(got) < len(clean) && len(st.Degraded) == 0 {
		t.Fatal("pairs were dropped but Stats.Degraded is empty")
	}
}

// TestDegradeRetryRecoversTransient arms a single transient decode error
// and checks the Degrade retry absorbs it: full results, a recorded retry,
// nothing degraded.
func TestDegradeRetryRecoversTransient(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := testEngine(t)
	a, b := buildPair(t, e)

	clean, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e.Cache().Clear()

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Err: faultinject.ErrInjected, Times: 1})
	got, st, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{OnError: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(clean) {
		t.Fatalf("results = %d pairs, want %d (retry should have recovered)", len(got), len(clean))
	}
	if st.DecodeRetries == 0 {
		t.Fatal("no retry recorded")
	}
	if len(st.Degraded) != 0 {
		t.Fatalf("degraded = %+v, want none", st.Degraded)
	}
}

// TestDegradeRetryRecoversPanic is the same contract for a decode panic:
// under Degrade the panic becomes a retryable per-object error instead of
// aborting the query (FailFast keeps the strict panic behavior, covered by
// TestWorkerPanicBecomesError).
func TestDegradeRetryRecoversPanic(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := testEngine(t)
	a, b := buildPair(t, e)

	clean, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e.Cache().Clear()

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Panic: "decode blew up", Times: 1})
	got, st, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{OnError: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(clean) {
		t.Fatalf("results = %d pairs, want %d", len(got), len(clean))
	}
	if st.DecodeRetries == 0 {
		t.Fatal("no retry recorded")
	}
}

// TestErrorBudgetAborts checks both sides of the budget: a tiny budget
// aborts a heavily failing Degrade query, an unlimited one rides it out.
func TestErrorBudgetAborts(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := NewEngine(EngineOptions{CacheBytes: 64 << 20, Workers: 4, DecodeRetries: -1})
	t.Cleanup(e.Close)
	a, b := buildPair(t, e)
	e.Cache().Clear()

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Err: faultinject.ErrInjected})
	_, _, err := e.IntersectJoin(context.Background(), a, b,
		QueryOptions{OnError: Degrade, ErrorBudget: 2})
	if err == nil || !strings.Contains(err.Error(), "error budget") {
		t.Fatalf("err = %v, want error budget exceeded", err)
	}

	faultinject.Reset()
	e.Quarantine().Reset()
	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Err: faultinject.ErrInjected})
	got, st, err := e.IntersectJoin(context.Background(), a, b,
		QueryOptions{OnError: Degrade, ErrorBudget: -1})
	if err != nil {
		t.Fatalf("unlimited budget still aborted: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("every decode failed yet %d pairs returned", len(got))
	}
	if len(st.Degraded) == 0 {
		t.Fatal("every decode failed yet nothing degraded")
	}
}

// TestFailFastNamesObject asserts the strict policy's error identifies the
// failing object and dataset.
func TestFailFastNamesObject(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := testEngine(t)
	a, b := buildPair(t, e)
	e.Cache().Clear()

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Err: faultinject.ErrInjected})
	_, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "decoding object ") || !strings.Contains(err.Error(), "at LOD") {
		t.Fatalf("error does not name the failing object: %v", err)
	}
}

// TestQuarantinedObjectsSkipped trips one target and one source object and
// checks the Degrade answer is exactly the clean answer minus pairs touching
// them, with the skips recorded; FailFast refuses with a named error.
func TestQuarantinedObjectsSkipped(t *testing.T) {
	e := testEngine(t)
	a, b := buildPair(t, e)

	clean, _, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("workload produced no pairs")
	}
	badTarget, badSource := clean[0].Target, clean[len(clean)-1].Source
	e.Quarantine().Trip(quarantine.Key{Dataset: a.Seq(), Object: badTarget}, "test trip")
	e.Quarantine().Trip(quarantine.Key{Dataset: b.Seq(), Object: badSource}, "test trip")

	got, st, err := e.IntersectJoin(context.Background(), a, b, QueryOptions{OnError: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Pair, 0, len(clean))
	for _, p := range clean {
		if p.Target != badTarget && p.Source != badSource {
			want = append(want, p)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d (clean %d)", len(got), len(want), len(clean))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if st.QuarantineSkips == 0 {
		t.Fatal("no quarantine skips recorded")
	}
	foundTarget, foundSource := false, false
	for _, d := range st.Degraded {
		if d.Dataset == a.Name && d.Object == badTarget {
			foundTarget = true
		}
		if d.Dataset == b.Name && d.Object == badSource {
			foundSource = true
		}
		if !strings.Contains(d.Err, "quarantined") {
			t.Fatalf("degraded entry lacks quarantine reason: %+v", d)
		}
	}
	if !foundTarget || !foundSource {
		t.Fatalf("degraded list misses tripped objects: %+v", st.Degraded)
	}

	// FailFast refuses the quarantined object by name instead of degrading.
	_, _, err = e.IntersectJoin(context.Background(), a, b, QueryOptions{})
	if err == nil || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("fail-fast err = %v, want ErrQuarantined", err)
	}
	if !strings.Contains(err.Error(), "object ") {
		t.Fatalf("fail-fast error does not name the object: %v", err)
	}
}

// TestRepeatFailuresTripQuarantine drives repeated decode failures through
// Degrade queries and checks the circuit breaker opens, after which a clean
// FailFast query still refuses the object (the breaker outlives the fault).
func TestRepeatFailuresTripQuarantine(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := NewEngine(EngineOptions{CacheBytes: 64 << 20, Workers: 4, DecodeRetries: -1})
	t.Cleanup(e.Close)
	a, b := buildPair(t, e)

	faultinject.Arm(faultinject.PointCoreDecode, faultinject.Fault{Err: faultinject.ErrInjected})
	for i := 0; i < 4 && e.Quarantine().Len() == 0; i++ {
		e.Cache().Clear()
		if _, _, err := e.IntersectJoin(context.Background(), a, b,
			QueryOptions{OnError: Degrade, ErrorBudget: -1}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Quarantine().Len() == 0 {
		t.Fatal("breaker never tripped despite persistent failures")
	}
	st := e.Quarantine().Stats()
	if st.Trips == 0 || st.Failures == 0 {
		t.Fatalf("quarantine stats = %+v", st)
	}
}

// TestKNNDegradeMarksDisplacedNeighbors trips the clean nearest neighbor of
// a target and checks it disappears from the answer with the relation
// flagged uncertain (its distance lower bound cannot rule it out).
func TestKNNDegradeMarksDisplacedNeighbors(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)

	clean, _, err := e.NNJoin(context.Background(), a, b, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("workload produced no neighbors")
	}
	bad := clean[0]
	e.Quarantine().Trip(quarantine.Key{Dataset: b.Seq(), Object: bad.Source}, "test trip")

	got, st, err := e.NNJoin(context.Background(), a, b, QueryOptions{OnError: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range got {
		if n.Target == bad.Target && n.Source == bad.Source {
			t.Fatalf("quarantined neighbor still reported: %+v", n)
		}
	}
	if !uncertainCovers(st, Pair{Target: bad.Target, Source: bad.Source}) {
		t.Fatalf("displaced nearest neighbor not flagged uncertain (uncertain: %v)", st.Uncertain)
	}
}

// TestWithinDegradeSoundness trips a source object and checks the within
// join keeps its certain accepts and flags pairs touching it.
func TestWithinDegradeSoundness(t *testing.T) {
	e := testEngine(t)
	a, b := buildDisjointPair(t, e)
	const dist = 12.0

	clean, _, err := e.WithinJoin(context.Background(), a, b, dist, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("workload produced no pairs")
	}
	bad := clean[0].Source
	e.Quarantine().Trip(quarantine.Key{Dataset: b.Seq(), Object: bad}, "test trip")

	got, st, err := e.WithinJoin(context.Background(), a, b, dist, QueryOptions{OnError: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	gotSet := pairSet(got)
	for _, p := range clean {
		if gotSet[p] {
			continue
		}
		// Dropped pairs must reference the tripped object and be flagged —
		// unless they were MBB-definite accepts, which never decode and so
		// survive even a tripped breaker.
		if p.Source != bad {
			t.Fatalf("pair %v lost without involving the tripped object", p)
		}
		if !uncertainCovers(st, p) {
			t.Fatalf("dropped pair %v not flagged uncertain", p)
		}
	}
	for _, p := range got {
		if !pairSet(clean)[p] {
			t.Fatalf("degraded run invented pair %v", p)
		}
	}
}

// TestRangeQueryDegradeUncertainIDs trips an object that needs geometry to
// resolve a range query and checks it lands in UncertainIDs.
func TestRangeQueryDegradeUncertainIDs(t *testing.T) {
	e := testEngine(t)
	a, _ := buildPair(t, e)

	// A box covering half of object 0's MBB: the object is a candidate but
	// not an MBB-definite accept, so resolving it requires its geometry.
	mbb := a.Tileset.Object(0).MBB()
	box := mbb
	box.Max.X = (mbb.Min.X + mbb.Max.X) / 2

	e.Quarantine().Trip(quarantine.Key{Dataset: a.Seq(), Object: 0}, "test trip")
	out, st, err := e.RangeQuery(context.Background(), a, box, QueryOptions{OnError: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range out {
		if id == 0 {
			t.Fatal("quarantined object reported as a certain result")
		}
	}
	found := false
	for _, id := range st.UncertainIDs {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("object 0 not in UncertainIDs (%v)", st.UncertainIDs)
	}
}

// TestRunPerTargetOnErr unit-tests the degraded dispatch: a swallowing hook
// keeps the run alive past failures, a propagating hook aborts it.
func TestRunPerTargetOnErr(t *testing.T) {
	e := testEngine(t)
	a, _ := buildPair(t, e)

	var mu sync.Mutex
	processed := map[int64]bool{}
	var hookErrs []error
	err := runPerTarget(context.Background(), a, 4, func(w int, o *storage.Object) error {
		if o.ID%3 == 0 {
			return errors.New("boom")
		}
		mu.Lock()
		processed[o.ID] = true
		mu.Unlock()
		return nil
	}, func(w int, o *storage.Object, err error) error {
		mu.Lock()
		hookErrs = append(hookErrs, err)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("swallowed errors still aborted: %v", err)
	}
	if len(hookErrs) == 0 {
		t.Fatal("hook never saw the failures")
	}
	for id := int64(0); id < int64(a.Len()); id++ {
		if id%3 != 0 && !processed[id] {
			t.Fatalf("object %d was not processed after sibling failures", id)
		}
	}

	err = runPerTarget(context.Background(), a, 4, func(w int, o *storage.Object) error {
		return errors.New("boom")
	}, func(w int, o *storage.Object, err error) error {
		return err
	})
	if err == nil {
		t.Fatal("propagating hook did not abort the run")
	}
}

// TestResultSinkOrderingAndDuplicates is the regression test for the
// slices.SortFunc merge: pairs from different workers merge into one
// deterministic target-then-source order, duplicates preserved.
func TestResultSinkOrderingAndDuplicates(t *testing.T) {
	s := newResultSink(3)
	s.add(2, Pair{Target: 5, Source: 1})
	s.add(0, Pair{Target: 1, Source: 9})
	s.add(1, Pair{Target: 1, Source: 2})
	s.add(0, Pair{Target: 5, Source: 1}) // duplicate across workers
	s.add(2, Pair{Target: 0, Source: 7})
	s.add(1, Pair{Target: 1, Source: 2}) // duplicate across workers

	want := []Pair{{0, 7}, {1, 2}, {1, 2}, {1, 9}, {5, 1}, {5, 1}}
	got := s.sorted()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted()[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}
