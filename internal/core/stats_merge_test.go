package core

import (
	"reflect"
	"slices"
	"sort"
	"testing"
	"time"
)

// mergeFixture returns three deliberately ragged Stats values: different
// LOD-slice lengths (including nil), nonempty degradation lists, and
// distinct counter values, so a merge that drops or truncates anything
// shows up.
func mergeFixture() (*Stats, *Stats, *Stats) {
	a := &Stats{
		Elapsed: 5 * time.Millisecond, FilterTime: time.Millisecond,
		DecodeTime: 2 * time.Millisecond, GeomTime: 3 * time.Millisecond,
		Candidates: 10, Results: 4, Decodes: 7, CacheHits: 2,
		WarmStarts: 1, RoundsApplied: 12, RoundsSkipped: 6,
		QuarantineSkips: 1, DecodeRetries: 2, DecodeFailures: 1,
		PairsEvaluated: []int64{5, 3, 1}, PairsPruned: []int64{2, 2, 1},
		Uncertain:    []Pair{{Target: 1, Source: 2}},
		UncertainIDs: []int64{9},
		Degraded:     []ObjectError{{Dataset: "a", Object: 3, Err: "boom"}},
	}
	// b is an "early abort" shape: nil LOD slices, zero phase times.
	b := &Stats{
		Elapsed: 9 * time.Millisecond, Candidates: 1, Decodes: 1,
	}
	c := &Stats{
		Elapsed: time.Millisecond, FilterTime: 4 * time.Millisecond,
		Candidates: 2, Results: 1, CacheHits: 5,
		PairsEvaluated: []int64{1}, PairsPruned: []int64{1},
		UncertainIDs: []int64{4, 2},
	}
	return a, b, c
}

// normalize sorts the order-free lists so merge results assembled in
// different orders compare equal.
func normalize(s *Stats) *Stats {
	slices.SortFunc(s.Uncertain, comparePairs)
	slices.Sort(s.UncertainIDs)
	sort.Slice(s.Degraded, func(i, j int) bool {
		if s.Degraded[i].Dataset != s.Degraded[j].Dataset {
			return s.Degraded[i].Dataset < s.Degraded[j].Dataset
		}
		return s.Degraded[i].Object < s.Degraded[j].Object
	})
	sort.Slice(s.Shards, func(i, j int) bool { return s.Shards[i].Shard < s.Shards[j].Shard })
	return s
}

func cloneStats(s *Stats) *Stats {
	c := *s
	c.PairsEvaluated = slices.Clone(s.PairsEvaluated)
	c.PairsPruned = slices.Clone(s.PairsPruned)
	c.Uncertain = slices.Clone(s.Uncertain)
	c.UncertainIDs = slices.Clone(s.UncertainIDs)
	c.Degraded = slices.Clone(s.Degraded)
	c.Trace = slices.Clone(s.Trace)
	c.Shards = slices.Clone(s.Shards)
	return &c
}

func TestStatsMergeCommutative(t *testing.T) {
	a, b, c := mergeFixture()
	for _, pair := range [][2]*Stats{{a, b}, {a, c}, {b, c}} {
		x := cloneStats(pair[0])
		x.Merge(cloneStats(pair[1]))
		y := cloneStats(pair[1])
		y.Merge(cloneStats(pair[0]))
		if !reflect.DeepEqual(normalize(x), normalize(y)) {
			t.Errorf("merge not commutative:\n a·b = %+v\n b·a = %+v", x, y)
		}
	}
}

func TestStatsMergeAssociative(t *testing.T) {
	a, b, c := mergeFixture()

	left := cloneStats(a)
	left.Merge(cloneStats(b))
	left.Merge(cloneStats(c))

	bc := cloneStats(b)
	bc.Merge(cloneStats(c))
	right := cloneStats(a)
	right.Merge(bc)

	if !reflect.DeepEqual(normalize(left), normalize(right)) {
		t.Fatalf("merge not associative:\n (a·b)·c = %+v\n a·(b·c) = %+v", left, right)
	}
}

// TestStatsMergeNilAndShortSlices is the regression test for the shard
// merge edge: folding in a nil Stats (a shard that died before answering)
// or one with shorter/absent LOD slices (an early abort) must not drop the
// surviving shard's phase times, counters, or LOD cells.
func TestStatsMergeNilAndShortSlices(t *testing.T) {
	a, b, _ := mergeFixture()
	merged := cloneStats(a)
	merged.Merge(nil) // dead shard: no-op
	merged.Merge(cloneStats(b))
	if merged.FilterTime != a.FilterTime || merged.DecodeTime != a.DecodeTime || merged.GeomTime != a.GeomTime {
		t.Fatalf("phase times dropped: %+v", merged)
	}
	if got := merged.Candidates; got != a.Candidates+b.Candidates {
		t.Fatalf("candidates = %d, want %d", got, a.Candidates+b.Candidates)
	}
	if !slices.Equal(merged.PairsEvaluated, a.PairsEvaluated) {
		t.Fatalf("LOD slice truncated by nil-slice merge: %v", merged.PairsEvaluated)
	}
	// Now the other direction: the accumulator starts as the early abort.
	merged = cloneStats(b)
	merged.Merge(cloneStats(a))
	if !slices.Equal(merged.PairsEvaluated, a.PairsEvaluated) {
		t.Fatalf("LOD slice not grown: %v", merged.PairsEvaluated)
	}
	if merged.Elapsed != b.Elapsed {
		t.Fatalf("elapsed = %v, want max %v", merged.Elapsed, b.Elapsed)
	}
	// A nil receiver must also be safe (shard responses can be absent).
	var nilStats *Stats
	nilStats.Merge(a)
}

// TestStatsMergeSums spot-checks that every counter is the exact sum.
func TestStatsMergeSums(t *testing.T) {
	a, b, c := mergeFixture()
	merged := &Stats{}
	for _, s := range []*Stats{a, b, c} {
		merged.Merge(s)
	}
	if got, want := merged.Decodes, a.Decodes+b.Decodes+c.Decodes; got != want {
		t.Fatalf("decodes = %d, want %d", got, want)
	}
	if got, want := merged.CacheHits, a.CacheHits+b.CacheHits+c.CacheHits; got != want {
		t.Fatalf("cacheHits = %d, want %d", got, want)
	}
	if got, want := merged.FilterTime, a.FilterTime+b.FilterTime+c.FilterTime; got != want {
		t.Fatalf("filterTime = %v, want %v", got, want)
	}
	if got, want := len(merged.UncertainIDs), 3; got != want {
		t.Fatalf("uncertainIDs = %d entries, want %d", got, want)
	}
	if got, want := merged.PairsEvaluated[0], a.PairsEvaluated[0]+c.PairsEvaluated[0]; got != want {
		t.Fatalf("pairsEvaluated[0] = %d, want %d", got, want)
	}
	if got, want := merged.Elapsed, 9*time.Millisecond; got != want {
		t.Fatalf("elapsed = %v, want max %v", got, want)
	}
}
