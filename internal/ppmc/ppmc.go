// Package ppmc exposes classic progressive polygon mesh compression — the
// PPMC baseline of the paper's §2.3/§3.2 — through the same machinery as
// package ppvp, but with the any-vertex pruning policy: decimation removes
// recessing vertices as happily as protruding ones.
//
// The consequence, and the paper's motivation for PPVP, is that a PPMC
// low-LOD polyhedron is neither a progressive nor a conservative
// approximation of the original: removing a recessing vertex fills a pit
// (the object grows), removing a protruding one cuts a bump (it shrinks).
// Neither early-return property of §2.2 holds, so progressive refinement
// cannot settle queries at low LODs with PPMC-compressed data.
package ppmc

import (
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

// Options mirrors ppvp.Options (the policy is forced to PruneAny).
type Options = ppvp.Options

// DefaultOptions returns the PPMC configuration matching the paper's setup.
func DefaultOptions() Options {
	o := ppvp.DefaultOptions()
	o.Policy = ppvp.PruneAny
	return o
}

// Compress encodes m with classic any-vertex progressive compression.
func Compress(m *mesh.Mesh, opts Options) (*ppvp.Compressed, ppvp.Stats, error) {
	opts.Policy = ppvp.PruneAny
	return ppvp.Compress(m, opts)
}

// FromBytes parses a blob (shared format with PPVP; the policy byte records
// which encoder produced it).
func FromBytes(blob []byte) (*ppvp.Compressed, error) {
	return ppvp.FromBytes(blob)
}
