package ppmc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/ppvp"
)

// dentedSphere returns a sphere with a deep pit — plenty of recessing
// vertices for PPMC to remove.
func dentedSphere() *mesh.Mesh {
	m := mesh.Icosphere(10, 3)
	for i, v := range m.Vertices {
		// Push vertices near the +X pole inward.
		if v.X > 7 {
			f := (v.X - 7) / 3 // 0..1
			m.Vertices[i] = v.Mul(1 - 0.45*f)
		}
	}
	return m
}

func TestPPMCCompressesMoreButGuaranteesNothing(t *testing.T) {
	m := dentedSphere()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	cAny, stAny, err := Compress(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cAny.PolicyUsed() != ppvp.PruneAny {
		t.Fatalf("policy = %v", cAny.PolicyUsed())
	}
	_, stPPVP, err := ppvp.Compress(m, ppvp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// PPMC can remove recessing vertices too, so it decimates at least as
	// aggressively on a dented shape.
	if stAny.VerticesRemoved < stPPVP.VerticesRemoved {
		t.Errorf("PPMC removed %d < PPVP %d", stAny.VerticesRemoved, stPPVP.VerticesRemoved)
	}

	// Every LOD still decodes to a valid closed manifold and the top LOD
	// is lossless.
	for lod := 0; lod <= cAny.MaxLOD(); lod++ {
		g, err := cAny.Decode(lod)
		if err != nil {
			t.Fatalf("lod %d: %v", lod, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("lod %d invalid: %v", lod, err)
		}
	}
	top, _ := cAny.Decode(cAny.MaxLOD())
	if top.NumFaces() != m.NumFaces() {
		t.Errorf("top LOD faces = %d, want %d", top.NumFaces(), m.NumFaces())
	}
}

func TestPPMCFillsPits(t *testing.T) {
	// The paper's §3.2 observation: with PPMC, some removals make the
	// polyhedron thicker (filling pits). On a dented sphere this shows up
	// as a low-LOD volume exceeding what pure pruning could produce; we
	// detect it directly: some LOD transition loses volume while decoding
	// upward, which is impossible under PPVP's prune-only guarantee.
	m := dentedSphere()
	cAny, _, err := Compress(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Detect a subset violation directly: sample interior points of a
	// lower LOD and look for one outside the full-resolution mesh — a
	// filled pit. (Volume alone can stay monotone by accident.)
	top, err := cAny.Decode(cAny.MaxLOD())
	if err != nil {
		t.Fatal(err)
	}
	topTris := top.Triangles()
	rng := rand.New(rand.NewSource(77))
	violated := false
	for lod := 0; lod < cAny.MaxLOD() && !violated; lod++ {
		g, err := cAny.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
		b := g.Bounds()
		checked := 0
		for i := 0; i < 30000 && checked < 400; i++ {
			p := geom.V(
				b.Min.X+rng.Float64()*b.Size().X,
				b.Min.Y+rng.Float64()*b.Size().Y,
				b.Min.Z+rng.Float64()*b.Size().Z,
			)
			if !g.ContainsPoint(p) {
				continue
			}
			checked++
			if !geom.PointInTriangles(p, topTris) {
				violated = true // pit filled: low LOD pokes outside the original
				break
			}
		}
	}
	if !violated {
		t.Skip("PPMC happened to produce subsets on this mesh; no guarantee was promised either way")
	}

	// PPVP on the same mesh must stay monotone.
	cP, _, err := ppvp.Compress(m, ppvp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prev := -math.MaxFloat64
	for lod := 0; lod <= cP.MaxLOD(); lod++ {
		g, err := cP.Decode(lod)
		if err != nil {
			t.Fatal(err)
		}
		if g.Volume() < prev-1e-9 {
			t.Fatalf("PPVP volume decreased at LOD %d", lod)
		}
		prev = g.Volume()
	}
}

func TestPPMCSharedFormat(t *testing.T) {
	m := mesh.Icosphere(3, 2)
	c, _, err := Compress(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := FromBytes(c.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c2.PolicyUsed() != ppvp.PruneAny {
		t.Errorf("round-tripped policy = %v", c2.PolicyUsed())
	}
	g1, err := c.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c2.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumFaces() != g2.NumFaces() {
		t.Error("decode mismatch after round trip")
	}
}
