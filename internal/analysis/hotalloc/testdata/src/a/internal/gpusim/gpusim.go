// Package gpusim is the hotalloc fixture for the simulated device tier,
// brought into scope by issue 8: the device's own stage goroutines (launched
// by NewStream-calling drivers) run once per batch and must recycle their
// buffers exactly like the core pipeline's stages.
package gpusim

import "sync"

type stream struct{ submitted int }

func (s *stream) Submit(batch []float32) { s.submitted += len(batch) }

type device struct{}

func (d *device) NewStream() *stream { return &stream{} }

var batchPool = sync.Pool{New: func() any { b := make([]float32, 0, 16); return &b }}

// Collect is the positive fixture: the gather goroutine builds a fresh
// result slice per batch.
func Collect(d *device, n int) {
	st := d.NewStream()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			out := make([]float32, 0, 16) // want "slice allocation reachable from a pipeline stage goroutine"
			out = append(out, float32(i))
			st.Submit(out)
		}
	}()
	<-done
}

// CollectPooled is the sanctioned shape: batch buffers cycle through a pool.
func CollectPooled(d *device, n int) {
	st := d.NewStream()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			bp := batchPool.Get().(*[]float32)
			out := (*bp)[:0]
			out = append(out, float32(i))
			st.Submit(out)
			*bp = out
			batchPool.Put(bp)
		}
	}()
	<-done
}

// warmup allocates at driver level, before any stage goroutine: per-query,
// not per-batch, so no finding.
func warmup(d *device) []float32 {
	st := d.NewStream()
	seed := make([]float32, 4)
	st.Submit(seed)
	return seed
}
