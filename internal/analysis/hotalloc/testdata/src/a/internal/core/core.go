// Package core is the hot-path fixture: its package path ends in
// internal/core, so hotalloc applies both rules here.
package core

import (
	"sync"

	"a/internal/mesh"
)

// runPerTarget mimics the engine's per-object dispatcher; hotalloc treats
// function literals passed to any callee named runPerTarget as hot roots.
// Its own body runs once per query, so its allocation is exempt even when a
// pipeline stage goroutine calls it (see PipelinedFeeder).
func runPerTarget(workers int, fn func(w int, o int) error) error {
	order := make([]int, 0, 4) // per-query dispatch scratch: dispatcher body is exempt
	for o := 0; o < 4; o++ {
		order = append(order, o)
	}
	for _, o := range order {
		if err := fn(o%workers, o); err != nil {
			return err
		}
	}
	return nil
}

// Evaluate is the positive fixture: allocations inside (or reachable from)
// the callback are flagged; single-flighted and pre-loop allocations are
// not.
func Evaluate(m *mesh.Mesh, workers int) error {
	scratch := make([][]int, workers) // pre-loop per-worker scratch: not reachable, OK
	var once sync.Once
	var cached []mesh.Triangle
	return runPerTarget(workers, func(w int, o int) error {
		tris := m.Triangles() // want "TrianglesCached"
		_ = tris
		buf := make([]float64, o) // want "slice allocation reachable from a runPerTarget callback"
		_ = buf
		ids := []int{o} // want "slice literal reachable from a runPerTarget callback"
		_ = ids
		seen := make(map[int]bool) // map allocation: not a slice, OK
		_ = seen
		scratch[w] = scratch[w][:0] // reuse: OK
		once.Do(func() {
			cached = make([]mesh.Triangle, 8) // single-flighted build: OK
		})
		_ = cached
		helper(o)
		return nil
	})
}

// helper is reachable from the callback, so its allocation is hot too.
func helper(n int) []int {
	return make([]int, n) // want "slice allocation reachable from a runPerTarget callback"
}

// coldPath is never called from a runPerTarget callback; its allocations
// are fine.
func coldPath(m *mesh.Mesh) []mesh.Triangle {
	out := make([]mesh.Triangle, 0, 8)
	out = append(out, m.TrianglesCached()...) // cached accessor: OK
	return out
}

// Cached uses the sanctioned accessor inside the callback.
func Cached(m *mesh.Mesh, workers int) error {
	return runPerTarget(workers, func(w int, o int) error {
		_ = m.TrianglesCached()
		return nil
	})
}

// Suppressed shows a vetted false positive being silenced.
func Suppressed(workers int) error {
	return runPerTarget(workers, func(w int, o int) error {
		//lint:ignore hotalloc fixture: bounded one-element slice, measured irrelevant
		tiny := make([]int, 1)
		_ = tiny
		return nil
	})
}
