// Pipeline fixtures: a function that opens a device stream via NewStream is
// a pipeline driver, and every goroutine literal it launches is a per-batch
// stage. Slice allocations reachable from a stage body are flagged; pooled
// buffers and driver-level (per-query) allocations are not.
package core

import "sync"

type stream struct{ submitted int }

func (s *stream) Submit(batch []int) { s.submitted += len(batch) }

type device struct{}

func (d *device) NewStream() *stream { return &stream{} }

var bufPool = sync.Pool{New: func() any { s := make([]int, 0, 8); return &s }}

// Pipelined is the positive fixture: the pack goroutine builds a fresh batch
// slice per iteration instead of recycling one.
func Pipelined(d *device) {
	st := d.NewStream()
	done := make(chan struct{}) // driver-level, and a channel besides: OK
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			batch := make([]int, 0, 8) // want "slice allocation reachable from a pipeline stage goroutine"
			batch = append(batch, i)
			st.Submit(batch)
			st.Submit(stageHelper(i))
		}
	}()
	<-done
}

// stageHelper is reachable from a stage goroutine, so its allocation is
// per-batch too.
func stageHelper(n int) []int {
	return []int{n} // want "slice literal reachable from a pipeline stage goroutine"
}

// PipelinedPooled is the sanctioned shape: stage buffers recycle through a
// sync.Pool, so steady state allocates nothing per batch.
func PipelinedPooled(d *device) {
	st := d.NewStream()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			bp := bufPool.Get().(*[]int)
			batch := (*bp)[:0]
			batch = append(batch, i)
			st.Submit(batch)
			*bp = batch
			bufPool.Put(bp)
		}
	}()
	<-done
}

// PipelinedFeeder shows the dispatcher exemption: a stage goroutine may run
// the per-query dispatcher without dragging its driver-level allocations
// into the per-batch region; the callback stays a per-pair root via the
// runPerTarget rule.
func PipelinedFeeder(d *device, workers int) {
	st := d.NewStream()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = runPerTarget(workers, func(w int, o int) error {
			return nil
		})
		st.Submit(nil)
	}()
	<-done
}

// background launches a goroutine but opens no stream: not a pipeline
// driver, so the allocation is fine.
func background() {
	go func() {
		buf := make([]int, 8) // no NewStream in the enclosing function: OK
		_ = buf
	}()
}
