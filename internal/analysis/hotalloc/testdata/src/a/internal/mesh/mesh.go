// Package mesh is a fixture stub of repro/internal/mesh: hotalloc matches
// the Mesh type and its Triangles methods by package-path suffix, so this
// stand-in exercises the analyzer without importing the real engine.
package mesh

type Triangle struct{ A, B, C [3]float64 }

type Mesh struct{ faces []Triangle }

func (m *Mesh) Triangles() []Triangle {
	out := make([]Triangle, len(m.faces))
	copy(out, m.faces)
	return out
}

func (m *Mesh) TrianglesCached() []Triangle { return m.faces }
