// Package shard is the hotalloc fixture for the coordinator tier, brought
// into scope by issue 8: merge callbacks run per result pair and local
// refinement must not rebuild triangle soups per call.
package shard

import "a/internal/mesh"

// localRefine falls back to engine-local refinement when a shard dies; it
// runs inside the candidate loop, so Triangles() is the per-call allocation
// the cache exists to avoid.
func localRefine(m *mesh.Mesh) int {
	tris := m.Triangles() // want "must use TrianglesCached"
	return len(tris)
}

func localRefineCached(m *mesh.Mesh) int {
	return len(m.TrianglesCached())
}

// runPerTarget mirrors the core dispatcher's shape; the analyzer roots the
// per-pair region at its callback literals by callee name.
func runPerTarget(workers int, fn func(w int, o int) error) error {
	for w := 0; w < workers; w++ {
		if err := fn(w, w); err != nil {
			return err
		}
	}
	return nil
}

// mergeShards hands runPerTarget a callback that allocates a scratch slice
// per object: flagged.
func mergeShards(workers int) error {
	return runPerTarget(workers, func(w int, o int) error {
		buf := make([]int, 0, 4) // want "slice allocation reachable from a runPerTarget callback"
		buf = append(buf, o)
		return nil
	})
}

// mergeShardsScratch indexes per-worker scratch instead: no finding.
func mergeShardsScratch(workers int, scratch [][]int) error {
	return runPerTarget(workers, func(w int, o int) error {
		scratch[w] = append(scratch[w][:0], o)
		return nil
	})
}
