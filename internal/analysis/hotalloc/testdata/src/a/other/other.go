// Package other is outside the hot-path scope: Triangles() and per-pair
// allocations are allowed here, so hotalloc must stay silent.
package other

import "a/internal/mesh"

func Render(m *mesh.Mesh) int {
	tris := m.Triangles() // out of scope: OK
	buf := make([]int, len(tris))
	return len(buf)
}
