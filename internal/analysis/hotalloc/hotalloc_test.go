package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer,
		"a/internal/core",   // flagging fixtures
		"a/internal/shard",  // coordinator tier, in scope since issue 8
		"a/internal/gpusim", // device tier, in scope since issue 8
		"a/other",           // out-of-scope package: no findings expected
	)
}
