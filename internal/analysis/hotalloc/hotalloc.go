// Package hotalloc enforces the refine hot path's allocation discipline.
//
// Two invariants from the PR-2 hot-path overhaul:
//
//  1. Code in internal/core and internal/index/aabbtree must call
//     mesh.TrianglesCached(), never mesh.Triangles(): Triangles() builds a
//     fresh []geom.Triangle on every call, and the candidate loop evaluates
//     thousands of pairs per query.
//
//  2. Functions reachable from the per-object callbacks handed to
//     runPerTarget must not allocate slices per pair — per-worker scratch
//     (slot-indexed, see evalCtx.scratch) or a sync.Pool is required.
//     Allocations inside sync.Once.Do closures are exempt: those are
//     single-flighted builds, not per-pair work.
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid mesh.Triangles() and per-pair slice allocation on the refine hot path\n\n" +
		"In internal/core and internal/index/aabbtree, (*mesh.Mesh).Triangles() must be\n" +
		"(*mesh.Mesh).TrianglesCached(), and functions reachable from runPerTarget\n" +
		"callbacks must not allocate slices (use per-worker scratch or a pool).",
	Run: run,
}

// hotPackages are the path-segment suffixes of packages on the refine hot
// path. Fixture packages match by the same suffixes.
var hotPackages = []string{"internal/core", "internal/index/aabbtree"}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.PkgPath, hotPackages...) {
		return nil
	}
	checkTrianglesCalls(pass)
	checkHotPathAllocs(pass)
	return nil
}

// checkTrianglesCalls flags every call of (*mesh.Mesh).Triangles().
func checkTrianglesCalls(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := analysis.CalleeFunc(pass.Info, call); callee != nil &&
				analysis.IsMethodOn(callee, "internal/mesh", "Mesh", "Triangles") {
				pass.Reportf(call.Pos(),
					"(*mesh.Mesh).Triangles() allocates per call; hot-path package must use TrianglesCached()")
			}
			return true
		})
	}
}

// checkHotPathAllocs builds the package-local static call graph, marks
// everything reachable from function literals passed to runPerTarget, and
// flags slice allocations (make of a slice type, slice composite literals)
// inside the reachable region.
func checkHotPathAllocs(pass *analysis.Pass) {
	// Map every function declaration's object to its body node, so static
	// calls can be followed.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Roots: function literals appearing as arguments to a runPerTarget
	// call. The callback runs once per target object, so everything it
	// reaches is per-pair-or-worse.
	var worklist []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.Info, call)
			if callee == nil || callee.Name() != "runPerTarget" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					worklist = append(worklist, lit.Body)
				}
			}
			return true
		})
	}

	// Reachability over package-local static calls. Edges into sync.Once.Do
	// closures are not followed: a Do body runs once per (object, LOD) key,
	// not once per pair.
	visited := make(map[ast.Node]bool)
	reachedFns := make(map[*types.Func]bool)
	for len(worklist) > 0 {
		body := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		if visited[body] {
			continue
		}
		visited[body] = true
		flagSliceAllocs(pass, body)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.Info, call)
			if callee == nil {
				return true
			}
			if analysis.IsMethodOn(callee, "sync", "Once", "Do") {
				return false // the Do closure is single-flighted, not per-pair
			}
			if fd, ok := decls[callee]; ok && !reachedFns[callee] {
				reachedFns[callee] = true
				worklist = append(worklist, fd.Body)
			}
			return true
		})
	}
}

// flagSliceAllocs reports make([]T, ...) and []T{...} inside body, skipping
// nested function literals that are sync.Once.Do arguments.
func flagSliceAllocs(pass *analysis.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := analysis.CalleeFunc(pass.Info, n); callee != nil &&
				analysis.IsMethodOn(callee, "sync", "Once", "Do") {
				// The Do closure is single-flighted; skip its subtree.
				return false
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if isSliceType(pass.Info.Types[n.Args[0]].Type) {
						pass.Reportf(n.Pos(),
							"slice allocation reachable from a runPerTarget callback (per-pair hot path); use per-worker scratch or a sync.Pool")
					}
				}
			}
		case *ast.CompositeLit:
			if isSliceType(pass.Info.Types[n].Type) {
				pass.Reportf(n.Pos(),
					"slice literal reachable from a runPerTarget callback (per-pair hot path); use per-worker scratch or a sync.Pool")
				return false // don't double-report nested element literals
			}
		}
		return true
	})
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
