// Package hotalloc enforces the refine hot path's allocation discipline.
//
// Two invariants from the PR-2 hot-path overhaul:
//
//  1. Code in internal/core and internal/index/aabbtree must call
//     mesh.TrianglesCached(), never mesh.Triangles(): Triangles() builds a
//     fresh []geom.Triangle on every call, and the candidate loop evaluates
//     thousands of pairs per query.
//
//  2. Functions reachable from the per-object callbacks handed to
//     runPerTarget must not allocate slices per pair — per-worker scratch
//     (slot-indexed, see evalCtx.scratch) or a sync.Pool is required.
//     Allocations inside sync.Once.Do closures are exempt: those are
//     single-flighted builds, not per-pair work.
//
// One more from the PR-7 batch pipeline:
//
//  3. The pipeline's stage goroutines — every `go func() { ... }()` inside a
//     driver that opens a device stream (calls a method named NewStream) —
//     must not allocate slices per batch: the pack and gather stages recycle
//     their batch buffers through a sync.Pool. The same package-local
//     reachability applies, rooted at the stage goroutine bodies. The
//     runPerTarget dispatcher itself is exempt (its body runs once per
//     query; its callbacks are already per-pair roots via rule 2).
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid mesh.Triangles() and per-pair slice allocation on the refine hot path\n\n" +
		"In internal/core, internal/index/aabbtree, internal/shard, and internal/gpusim,\n" +
		"(*mesh.Mesh).Triangles() must be\n" +
		"(*mesh.Mesh).TrianglesCached(), functions reachable from runPerTarget\n" +
		"callbacks must not allocate slices (use per-worker scratch or a pool), and\n" +
		"goroutines launched by pipeline drivers (functions calling NewStream) must\n" +
		"not allocate slices per batch (use pooled batch buffers).",
	Run: run,
}

// hotPackages are the path-segment suffixes of packages on the refine hot
// path. Fixture packages match by the same suffixes. internal/shard and
// internal/gpusim joined in issue 8: the coordinator's merge path and the
// simulated device's stage goroutines run per query and per batch
// respectively, so the same allocation discipline applies.
var hotPackages = []string{"internal/core", "internal/index/aabbtree", "internal/shard", "internal/gpusim"}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySuffix(pass.PkgPath, hotPackages...) {
		return nil
	}
	checkTrianglesCalls(pass)
	checkHotPathAllocs(pass)
	return nil
}

// checkTrianglesCalls flags every call of (*mesh.Mesh).Triangles().
func checkTrianglesCalls(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := analysis.CalleeFunc(pass.Info, call); callee != nil &&
				analysis.IsMethodOn(callee, "internal/mesh", "Mesh", "Triangles") {
				pass.Reportf(call.Pos(),
					"(*mesh.Mesh).Triangles() allocates per call; hot-path package must use TrianglesCached()")
			}
			return true
		})
	}
}

// checkHotPathAllocs builds the package-local static call graph, marks
// everything reachable from the two kinds of hot roots — function literals
// passed to runPerTarget (per-pair) and stage goroutines of NewStream-calling
// pipeline drivers (per-batch) — and flags slice allocations (make of a slice
// type, slice composite literals) inside the reachable region.
func checkHotPathAllocs(pass *analysis.Pass) {
	// Map every function declaration's object to its body node, so static
	// calls can be followed.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Per-pair roots: function literals appearing as arguments to a
	// runPerTarget call. The callback runs once per target object, so
	// everything it reaches is per-pair-or-worse.
	var perPairRoots []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.Info, call)
			if callee == nil || callee.Name() != "runPerTarget" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					perPairRoots = append(perPairRoots, lit.Body)
				}
			}
			return true
		})
	}

	// Per-batch roots: a function that opens a device stream (calls a
	// method named NewStream) is a pipeline driver; every goroutine literal
	// it launches is a stage whose body runs once per work item or batch.
	var stageRoots []ast.Node
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !callsNewStream(pass, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
						stageRoots = append(stageRoots, lit.Body)
					}
				}
				return true
			})
		}
	}

	// Flag the per-pair region first: helpers shared by both regions then
	// report the runPerTarget wording deterministically.
	visited := make(map[ast.Node]bool)
	reachedFns := make(map[*types.Func]bool)
	flagReachable(pass, decls, perPairRoots, visited, reachedFns,
		"a runPerTarget callback (per-pair hot path); use per-worker scratch or a sync.Pool")
	flagReachable(pass, decls, stageRoots, visited, reachedFns,
		"a pipeline stage goroutine (per-batch hot path); use pooled batch buffers")
}

// callsNewStream reports whether body contains a call to any function or
// method named NewStream — the marker that a function drives a device
// stream pipeline.
func callsNewStream(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := analysis.CalleeFunc(pass.Info, call); callee != nil && callee.Name() == "NewStream" {
			found = true
			return false
		}
		return true
	})
	return found
}

// flagReachable walks the package-local static call graph from the given
// root bodies, flagging slice allocations in every newly visited body with
// the given context wording. Edges into sync.Once.Do closures are not
// followed (a Do body is single-flighted, not per-pair); edges into
// runPerTarget are not followed either — the dispatcher body runs once per
// query, and its callbacks are already roots of the per-pair region.
func flagReachable(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, worklist []ast.Node, visited map[ast.Node]bool, reachedFns map[*types.Func]bool, context string) {
	for len(worklist) > 0 {
		body := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		if visited[body] {
			continue
		}
		visited[body] = true
		flagSliceAllocs(pass, body, context)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.Info, call)
			if callee == nil {
				return true
			}
			if analysis.IsMethodOn(callee, "sync", "Once", "Do") {
				return false // the Do closure is single-flighted, not per-pair
			}
			if callee.Name() == "runPerTarget" {
				return false // per-query dispatcher; callbacks are separate roots
			}
			if fd, ok := decls[callee]; ok && !reachedFns[callee] {
				reachedFns[callee] = true
				worklist = append(worklist, fd.Body)
			}
			return true
		})
	}
}

// flagSliceAllocs reports make([]T, ...) and []T{...} inside body, skipping
// subtrees of sync.Once.Do calls (single-flighted) and runPerTarget calls
// (whose callback literals are flagged as their own roots).
func flagSliceAllocs(pass *analysis.Pass, body ast.Node, context string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := analysis.CalleeFunc(pass.Info, n); callee != nil {
				if analysis.IsMethodOn(callee, "sync", "Once", "Do") {
					// The Do closure is single-flighted; skip its subtree.
					return false
				}
				if callee.Name() == "runPerTarget" {
					// The callback literal is a per-pair root of its own;
					// skipping here avoids double reports.
					return false
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if isSliceType(pass.Info.Types[n.Args[0]].Type) {
						pass.Reportf(n.Pos(), "slice allocation reachable from %s", context)
					}
				}
			}
		case *ast.CompositeLit:
			if isSliceType(pass.Info.Types[n].Type) {
				pass.Reportf(n.Pos(), "slice literal reachable from %s", context)
				return false // don't double-report nested element literals
			}
		}
		return true
	})
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
